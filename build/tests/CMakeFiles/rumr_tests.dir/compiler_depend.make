# Empty compiler generated dependencies file for rumr_tests.
# This may be replaced when dependencies are built.
