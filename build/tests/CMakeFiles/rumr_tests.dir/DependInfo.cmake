
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive_rumr.cpp" "tests/CMakeFiles/rumr_tests.dir/test_adaptive_rumr.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_adaptive_rumr.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/rumr_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/rumr_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_des.cpp" "tests/CMakeFiles/rumr_tests.dir/test_des.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_des.cpp.o.d"
  "/root/repo/tests/test_error_model.cpp" "tests/CMakeFiles/rumr_tests.dir/test_error_model.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_error_model.cpp.o.d"
  "/root/repo/tests/test_error_process.cpp" "tests/CMakeFiles/rumr_tests.dir/test_error_process.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_error_process.cpp.o.d"
  "/root/repo/tests/test_factoring.cpp" "tests/CMakeFiles/rumr_tests.dir/test_factoring.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_factoring.cpp.o.d"
  "/root/repo/tests/test_fsc.cpp" "tests/CMakeFiles/rumr_tests.dir/test_fsc.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_fsc.cpp.o.d"
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/rumr_tests.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_grid.cpp.o.d"
  "/root/repo/tests/test_heterogeneity.cpp" "tests/CMakeFiles/rumr_tests.dir/test_heterogeneity.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_heterogeneity.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/rumr_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/rumr_tests.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_linalg.cpp.o.d"
  "/root/repo/tests/test_loop_scheduling.cpp" "tests/CMakeFiles/rumr_tests.dir/test_loop_scheduling.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_loop_scheduling.cpp.o.d"
  "/root/repo/tests/test_metamorphic.cpp" "tests/CMakeFiles/rumr_tests.dir/test_metamorphic.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_metamorphic.cpp.o.d"
  "/root/repo/tests/test_multi_installment.cpp" "tests/CMakeFiles/rumr_tests.dir/test_multi_installment.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_multi_installment.cpp.o.d"
  "/root/repo/tests/test_platform.cpp" "tests/CMakeFiles/rumr_tests.dir/test_platform.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_platform.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/rumr_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/rumr_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_resource_selection.cpp" "tests/CMakeFiles/rumr_tests.dir/test_resource_selection.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_resource_selection.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/rumr_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_rumr.cpp" "tests/CMakeFiles/rumr_tests.dir/test_rumr.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_rumr.cpp.o.d"
  "/root/repo/tests/test_runner.cpp" "tests/CMakeFiles/rumr_tests.dir/test_runner.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_runner.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/rumr_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_sim_extensions.cpp" "tests/CMakeFiles/rumr_tests.dir/test_sim_extensions.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_sim_extensions.cpp.o.d"
  "/root/repo/tests/test_summary.cpp" "tests/CMakeFiles/rumr_tests.dir/test_summary.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_summary.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/rumr_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/rumr_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_json.cpp" "tests/CMakeFiles/rumr_tests.dir/test_trace_json.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_trace_json.cpp.o.d"
  "/root/repo/tests/test_umr_policy.cpp" "tests/CMakeFiles/rumr_tests.dir/test_umr_policy.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_umr_policy.cpp.o.d"
  "/root/repo/tests/test_umr_solver.cpp" "tests/CMakeFiles/rumr_tests.dir/test_umr_solver.cpp.o" "gcc" "tests/CMakeFiles/rumr_tests.dir/test_umr_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rumr_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
