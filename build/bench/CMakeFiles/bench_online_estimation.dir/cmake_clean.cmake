file(REMOVE_RECURSE
  "CMakeFiles/bench_online_estimation.dir/bench_online_estimation.cpp.o"
  "CMakeFiles/bench_online_estimation.dir/bench_online_estimation.cpp.o.d"
  "bench_online_estimation"
  "bench_online_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
