# Empty compiler generated dependencies file for bench_online_estimation.
# This may be replaced when dependencies are built.
