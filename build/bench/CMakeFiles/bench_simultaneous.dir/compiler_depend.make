# Empty compiler generated dependencies file for bench_simultaneous.
# This may be replaced when dependencies are built.
