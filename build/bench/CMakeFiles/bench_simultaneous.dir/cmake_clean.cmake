file(REMOVE_RECURSE
  "CMakeFiles/bench_simultaneous.dir/bench_simultaneous.cpp.o"
  "CMakeFiles/bench_simultaneous.dir/bench_simultaneous.cpp.o.d"
  "bench_simultaneous"
  "bench_simultaneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simultaneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
