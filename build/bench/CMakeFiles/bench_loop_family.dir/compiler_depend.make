# Empty compiler generated dependencies file for bench_loop_family.
# This may be replaced when dependencies are built.
