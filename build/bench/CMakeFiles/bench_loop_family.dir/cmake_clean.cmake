file(REMOVE_RECURSE
  "CMakeFiles/bench_loop_family.dir/bench_loop_family.cpp.o"
  "CMakeFiles/bench_loop_family.dir/bench_loop_family.cpp.o.d"
  "bench_loop_family"
  "bench_loop_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loop_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
