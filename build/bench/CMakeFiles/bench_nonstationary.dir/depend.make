# Empty dependencies file for bench_nonstationary.
# This may be replaced when dependencies are built.
