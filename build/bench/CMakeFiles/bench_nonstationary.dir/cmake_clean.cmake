file(REMOVE_RECURSE
  "CMakeFiles/bench_nonstationary.dir/bench_nonstationary.cpp.o"
  "CMakeFiles/bench_nonstationary.dir/bench_nonstationary.cpp.o.d"
  "bench_nonstationary"
  "bench_nonstationary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonstationary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
