file(REMOVE_RECURSE
  "CMakeFiles/rumr_bench_common.dir/common.cpp.o"
  "CMakeFiles/rumr_bench_common.dir/common.cpp.o.d"
  "librumr_bench_common.a"
  "librumr_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
