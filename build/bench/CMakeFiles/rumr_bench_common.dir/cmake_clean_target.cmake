file(REMOVE_RECURSE
  "librumr_bench_common.a"
)
