# Empty dependencies file for rumr_bench_common.
# This may be replaced when dependencies are built.
