
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_buffering.cpp" "bench/CMakeFiles/bench_ablation_buffering.dir/bench_ablation_buffering.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_buffering.dir/bench_ablation_buffering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rumr_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
