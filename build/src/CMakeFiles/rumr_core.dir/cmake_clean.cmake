file(REMOVE_RECURSE
  "CMakeFiles/rumr_core.dir/core/adaptive_rumr.cpp.o"
  "CMakeFiles/rumr_core.dir/core/adaptive_rumr.cpp.o.d"
  "CMakeFiles/rumr_core.dir/core/resource_selection.cpp.o"
  "CMakeFiles/rumr_core.dir/core/resource_selection.cpp.o.d"
  "CMakeFiles/rumr_core.dir/core/rumr.cpp.o"
  "CMakeFiles/rumr_core.dir/core/rumr.cpp.o.d"
  "CMakeFiles/rumr_core.dir/core/umr.cpp.o"
  "CMakeFiles/rumr_core.dir/core/umr.cpp.o.d"
  "CMakeFiles/rumr_core.dir/core/umr_policy.cpp.o"
  "CMakeFiles/rumr_core.dir/core/umr_policy.cpp.o.d"
  "librumr_core.a"
  "librumr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
