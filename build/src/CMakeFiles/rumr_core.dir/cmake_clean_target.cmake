file(REMOVE_RECURSE
  "librumr_core.a"
)
