# Empty dependencies file for rumr_core.
# This may be replaced when dependencies are built.
