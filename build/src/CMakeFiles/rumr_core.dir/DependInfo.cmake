
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_rumr.cpp" "src/CMakeFiles/rumr_core.dir/core/adaptive_rumr.cpp.o" "gcc" "src/CMakeFiles/rumr_core.dir/core/adaptive_rumr.cpp.o.d"
  "/root/repo/src/core/resource_selection.cpp" "src/CMakeFiles/rumr_core.dir/core/resource_selection.cpp.o" "gcc" "src/CMakeFiles/rumr_core.dir/core/resource_selection.cpp.o.d"
  "/root/repo/src/core/rumr.cpp" "src/CMakeFiles/rumr_core.dir/core/rumr.cpp.o" "gcc" "src/CMakeFiles/rumr_core.dir/core/rumr.cpp.o.d"
  "/root/repo/src/core/umr.cpp" "src/CMakeFiles/rumr_core.dir/core/umr.cpp.o" "gcc" "src/CMakeFiles/rumr_core.dir/core/umr.cpp.o.d"
  "/root/repo/src/core/umr_policy.cpp" "src/CMakeFiles/rumr_core.dir/core/umr_policy.cpp.o" "gcc" "src/CMakeFiles/rumr_core.dir/core/umr_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rumr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
