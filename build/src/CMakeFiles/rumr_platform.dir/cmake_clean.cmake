file(REMOVE_RECURSE
  "CMakeFiles/rumr_platform.dir/platform/heterogeneity.cpp.o"
  "CMakeFiles/rumr_platform.dir/platform/heterogeneity.cpp.o.d"
  "CMakeFiles/rumr_platform.dir/platform/platform.cpp.o"
  "CMakeFiles/rumr_platform.dir/platform/platform.cpp.o.d"
  "librumr_platform.a"
  "librumr_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
