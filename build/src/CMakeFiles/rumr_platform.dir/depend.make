# Empty dependencies file for rumr_platform.
# This may be replaced when dependencies are built.
