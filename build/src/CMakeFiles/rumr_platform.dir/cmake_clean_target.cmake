file(REMOVE_RECURSE
  "librumr_platform.a"
)
