file(REMOVE_RECURSE
  "librumr_analysis.a"
)
