file(REMOVE_RECURSE
  "CMakeFiles/rumr_analysis.dir/analysis/bounds.cpp.o"
  "CMakeFiles/rumr_analysis.dir/analysis/bounds.cpp.o.d"
  "librumr_analysis.a"
  "librumr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
