# Empty compiler generated dependencies file for rumr_analysis.
# This may be replaced when dependencies are built.
