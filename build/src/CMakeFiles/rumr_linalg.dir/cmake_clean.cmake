file(REMOVE_RECURSE
  "CMakeFiles/rumr_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/rumr_linalg.dir/linalg/lu.cpp.o.d"
  "librumr_linalg.a"
  "librumr_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
