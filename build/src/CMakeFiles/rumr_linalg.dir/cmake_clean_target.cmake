file(REMOVE_RECURSE
  "librumr_linalg.a"
)
