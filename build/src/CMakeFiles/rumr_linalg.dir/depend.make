# Empty dependencies file for rumr_linalg.
# This may be replaced when dependencies are built.
