file(REMOVE_RECURSE
  "librumr_sim.a"
)
