file(REMOVE_RECURSE
  "CMakeFiles/rumr_sim.dir/sim/master_worker.cpp.o"
  "CMakeFiles/rumr_sim.dir/sim/master_worker.cpp.o.d"
  "CMakeFiles/rumr_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/rumr_sim.dir/sim/trace.cpp.o.d"
  "CMakeFiles/rumr_sim.dir/sim/trace_json.cpp.o"
  "CMakeFiles/rumr_sim.dir/sim/trace_json.cpp.o.d"
  "librumr_sim.a"
  "librumr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
