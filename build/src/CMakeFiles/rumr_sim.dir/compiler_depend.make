# Empty compiler generated dependencies file for rumr_sim.
# This may be replaced when dependencies are built.
