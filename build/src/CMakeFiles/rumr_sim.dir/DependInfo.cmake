
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/master_worker.cpp" "src/CMakeFiles/rumr_sim.dir/sim/master_worker.cpp.o" "gcc" "src/CMakeFiles/rumr_sim.dir/sim/master_worker.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/rumr_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/rumr_sim.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/trace_json.cpp" "src/CMakeFiles/rumr_sim.dir/sim/trace_json.cpp.o" "gcc" "src/CMakeFiles/rumr_sim.dir/sim/trace_json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rumr_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
