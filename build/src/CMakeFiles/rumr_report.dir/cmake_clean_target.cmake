file(REMOVE_RECURSE
  "librumr_report.a"
)
