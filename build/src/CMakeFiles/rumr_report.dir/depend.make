# Empty dependencies file for rumr_report.
# This may be replaced when dependencies are built.
