file(REMOVE_RECURSE
  "CMakeFiles/rumr_report.dir/report/ascii_plot.cpp.o"
  "CMakeFiles/rumr_report.dir/report/ascii_plot.cpp.o.d"
  "CMakeFiles/rumr_report.dir/report/csv.cpp.o"
  "CMakeFiles/rumr_report.dir/report/csv.cpp.o.d"
  "CMakeFiles/rumr_report.dir/report/series.cpp.o"
  "CMakeFiles/rumr_report.dir/report/series.cpp.o.d"
  "CMakeFiles/rumr_report.dir/report/table.cpp.o"
  "CMakeFiles/rumr_report.dir/report/table.cpp.o.d"
  "librumr_report.a"
  "librumr_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
