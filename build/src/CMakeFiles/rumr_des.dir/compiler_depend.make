# Empty compiler generated dependencies file for rumr_des.
# This may be replaced when dependencies are built.
