file(REMOVE_RECURSE
  "CMakeFiles/rumr_des.dir/des/simulator.cpp.o"
  "CMakeFiles/rumr_des.dir/des/simulator.cpp.o.d"
  "librumr_des.a"
  "librumr_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
