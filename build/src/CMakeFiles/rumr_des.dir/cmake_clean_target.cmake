file(REMOVE_RECURSE
  "librumr_des.a"
)
