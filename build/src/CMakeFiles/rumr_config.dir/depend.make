# Empty dependencies file for rumr_config.
# This may be replaced when dependencies are built.
