file(REMOVE_RECURSE
  "librumr_config.a"
)
