
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/config_file.cpp" "src/CMakeFiles/rumr_config.dir/config/config_file.cpp.o" "gcc" "src/CMakeFiles/rumr_config.dir/config/config_file.cpp.o.d"
  "/root/repo/src/config/run_description.cpp" "src/CMakeFiles/rumr_config.dir/config/run_description.cpp.o" "gcc" "src/CMakeFiles/rumr_config.dir/config/run_description.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rumr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
