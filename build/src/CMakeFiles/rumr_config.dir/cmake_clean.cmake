file(REMOVE_RECURSE
  "CMakeFiles/rumr_config.dir/config/config_file.cpp.o"
  "CMakeFiles/rumr_config.dir/config/config_file.cpp.o.d"
  "CMakeFiles/rumr_config.dir/config/run_description.cpp.o"
  "CMakeFiles/rumr_config.dir/config/run_description.cpp.o.d"
  "librumr_config.a"
  "librumr_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
