# Empty compiler generated dependencies file for rumr_stats.
# This may be replaced when dependencies are built.
