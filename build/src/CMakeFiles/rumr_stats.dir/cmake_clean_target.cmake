file(REMOVE_RECURSE
  "librumr_stats.a"
)
