file(REMOVE_RECURSE
  "CMakeFiles/rumr_stats.dir/stats/error_model.cpp.o"
  "CMakeFiles/rumr_stats.dir/stats/error_model.cpp.o.d"
  "CMakeFiles/rumr_stats.dir/stats/error_process.cpp.o"
  "CMakeFiles/rumr_stats.dir/stats/error_process.cpp.o.d"
  "CMakeFiles/rumr_stats.dir/stats/rng.cpp.o"
  "CMakeFiles/rumr_stats.dir/stats/rng.cpp.o.d"
  "CMakeFiles/rumr_stats.dir/stats/summary.cpp.o"
  "CMakeFiles/rumr_stats.dir/stats/summary.cpp.o.d"
  "librumr_stats.a"
  "librumr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
