
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/error_model.cpp" "src/CMakeFiles/rumr_stats.dir/stats/error_model.cpp.o" "gcc" "src/CMakeFiles/rumr_stats.dir/stats/error_model.cpp.o.d"
  "/root/repo/src/stats/error_process.cpp" "src/CMakeFiles/rumr_stats.dir/stats/error_process.cpp.o" "gcc" "src/CMakeFiles/rumr_stats.dir/stats/error_process.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/CMakeFiles/rumr_stats.dir/stats/rng.cpp.o" "gcc" "src/CMakeFiles/rumr_stats.dir/stats/rng.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/rumr_stats.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/rumr_stats.dir/stats/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
