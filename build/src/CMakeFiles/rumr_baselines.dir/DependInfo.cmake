
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/factoring.cpp" "src/CMakeFiles/rumr_baselines.dir/baselines/factoring.cpp.o" "gcc" "src/CMakeFiles/rumr_baselines.dir/baselines/factoring.cpp.o.d"
  "/root/repo/src/baselines/fsc.cpp" "src/CMakeFiles/rumr_baselines.dir/baselines/fsc.cpp.o" "gcc" "src/CMakeFiles/rumr_baselines.dir/baselines/fsc.cpp.o.d"
  "/root/repo/src/baselines/loop_scheduling.cpp" "src/CMakeFiles/rumr_baselines.dir/baselines/loop_scheduling.cpp.o" "gcc" "src/CMakeFiles/rumr_baselines.dir/baselines/loop_scheduling.cpp.o.d"
  "/root/repo/src/baselines/multi_installment.cpp" "src/CMakeFiles/rumr_baselines.dir/baselines/multi_installment.cpp.o" "gcc" "src/CMakeFiles/rumr_baselines.dir/baselines/multi_installment.cpp.o.d"
  "/root/repo/src/baselines/static_sequence.cpp" "src/CMakeFiles/rumr_baselines.dir/baselines/static_sequence.cpp.o" "gcc" "src/CMakeFiles/rumr_baselines.dir/baselines/static_sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rumr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rumr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
