# Empty dependencies file for rumr_baselines.
# This may be replaced when dependencies are built.
