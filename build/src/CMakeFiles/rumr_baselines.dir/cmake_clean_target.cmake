file(REMOVE_RECURSE
  "librumr_baselines.a"
)
