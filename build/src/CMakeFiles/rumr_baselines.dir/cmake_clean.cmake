file(REMOVE_RECURSE
  "CMakeFiles/rumr_baselines.dir/baselines/factoring.cpp.o"
  "CMakeFiles/rumr_baselines.dir/baselines/factoring.cpp.o.d"
  "CMakeFiles/rumr_baselines.dir/baselines/fsc.cpp.o"
  "CMakeFiles/rumr_baselines.dir/baselines/fsc.cpp.o.d"
  "CMakeFiles/rumr_baselines.dir/baselines/loop_scheduling.cpp.o"
  "CMakeFiles/rumr_baselines.dir/baselines/loop_scheduling.cpp.o.d"
  "CMakeFiles/rumr_baselines.dir/baselines/multi_installment.cpp.o"
  "CMakeFiles/rumr_baselines.dir/baselines/multi_installment.cpp.o.d"
  "CMakeFiles/rumr_baselines.dir/baselines/static_sequence.cpp.o"
  "CMakeFiles/rumr_baselines.dir/baselines/static_sequence.cpp.o.d"
  "librumr_baselines.a"
  "librumr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
