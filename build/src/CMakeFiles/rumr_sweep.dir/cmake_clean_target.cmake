file(REMOVE_RECURSE
  "librumr_sweep.a"
)
