# Empty dependencies file for rumr_sweep.
# This may be replaced when dependencies are built.
