file(REMOVE_RECURSE
  "CMakeFiles/rumr_sweep.dir/sweep/grid.cpp.o"
  "CMakeFiles/rumr_sweep.dir/sweep/grid.cpp.o.d"
  "CMakeFiles/rumr_sweep.dir/sweep/runner.cpp.o"
  "CMakeFiles/rumr_sweep.dir/sweep/runner.cpp.o.d"
  "CMakeFiles/rumr_sweep.dir/sweep/scheduler_factory.cpp.o"
  "CMakeFiles/rumr_sweep.dir/sweep/scheduler_factory.cpp.o.d"
  "CMakeFiles/rumr_sweep.dir/sweep/thread_pool.cpp.o"
  "CMakeFiles/rumr_sweep.dir/sweep/thread_pool.cpp.o.d"
  "librumr_sweep.a"
  "librumr_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
