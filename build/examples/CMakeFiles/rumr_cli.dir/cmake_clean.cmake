file(REMOVE_RECURSE
  "CMakeFiles/rumr_cli.dir/rumr_cli.cpp.o"
  "CMakeFiles/rumr_cli.dir/rumr_cli.cpp.o.d"
  "rumr_cli"
  "rumr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
