# Empty compiler generated dependencies file for rumr_cli.
# This may be replaced when dependencies are built.
