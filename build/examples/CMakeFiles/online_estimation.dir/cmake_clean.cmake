file(REMOVE_RECURSE
  "CMakeFiles/online_estimation.dir/online_estimation.cpp.o"
  "CMakeFiles/online_estimation.dir/online_estimation.cpp.o.d"
  "online_estimation"
  "online_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
