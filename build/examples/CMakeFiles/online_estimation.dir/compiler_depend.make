# Empty compiler generated dependencies file for online_estimation.
# This may be replaced when dependencies are built.
