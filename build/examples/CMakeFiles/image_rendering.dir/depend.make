# Empty dependencies file for image_rendering.
# This may be replaced when dependencies are built.
