file(REMOVE_RECURSE
  "CMakeFiles/image_rendering.dir/image_rendering.cpp.o"
  "CMakeFiles/image_rendering.dir/image_rendering.cpp.o.d"
  "image_rendering"
  "image_rendering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_rendering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
