// Reproduces the paper's Figure 6: RUMR scheduling a FIXED percentage of
// the workload in phase 1 (50%..90%), normalized to original RUMR (which
// sizes phase 2 as error * W with the overhead threshold), versus error.
// Expected shape: every fixed split loses clearly at low error (original
// RUMR skips phase 2 entirely there); larger phase-1 shares converge best at
// low error and degrade at high error; 80% is the best fixed choice on
// average (the paper's practical recommendation when error is unknown).

#include <iostream>

#include "common.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace rumr;
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);
  const sweep::GridSpec grid = bench::bench_grid(settings);
  const auto errors = bench::bench_errors(settings);
  const std::size_t reps = bench::bench_reps(settings, 8);
  bench::print_banner(std::cout, "Figure 6: fixed phase-1 percentage vs original RUMR", settings,
                      grid, errors.size(), reps);

  std::vector<sweep::AlgorithmSpec> algorithms{sweep::rumr_spec()};
  const std::vector<double> percents = {50.0, 60.0, 70.0, 80.0, 90.0};
  for (double percent : percents) algorithms.push_back(sweep::rumr_fixed_spec(percent));

  const sweep::SweepResult result = run_sweep(sweep::make_grid(grid), algorithms,
                                              bench::bench_sweep_options(settings, errors, reps));
  bench::emit_figure(
      std::cout, bench::normalized_series(result, "Figure 6: fixed splits vs original RUMR"),
      "fig6.csv");

  // The paper's summary: averaged over error, the 80% split is the best
  // fixed choice, within ~15% of original RUMR.
  std::cout << "mean normalized makespan over the whole error range:\n";
  std::size_t best = 1;
  double best_mean = 1e300;
  for (std::size_t a = 1; a < result.algorithms().size(); ++a) {
    stats::Accumulator acc;
    for (std::size_t e = 0; e < result.errors().size(); ++e) {
      acc.add(result.mean_normalized_makespan(e, a));
    }
    std::cout << "  " << result.algorithms()[a] << ": " << acc.mean() << '\n';
    if (acc.mean() < best_mean) {
      best_mean = acc.mean();
      best = a;
    }
  }
  std::cout << "best fixed split: " << result.algorithms()[best] << " at " << best_mean
            << "x original RUMR (paper: RUMR-80, within ~1.15x)\n";
  return 0;
}
