// Reproduces the paper's Figure 5: normalized makespans at one
// high-communication-latency point of the parameter space —
// cLat = 0.3, nLat = 0.9, N = 20, B = 36 (r = 1.8 * N).
// The paper's landmark feature is a sharp improvement of RUMR (a jump in
// every competitor's normalized makespan) at error ~= 0.18, where RUMR
// starts using phase 2; our threshold reading is calibrated to the same
// onset (see DESIGN.md).

#include <iostream>

#include "common.hpp"
#include "core/rumr.hpp"

int main(int argc, char** argv) {
  using namespace rumr;
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);

  sweep::GridSpec grid;
  grid.n_values = {20};
  grid.b_over_n_values = {1.8};
  grid.clat_values = {0.3};
  grid.nlat_values = {0.9};
  const auto errors = sweep::error_axis(0.48, 0.02);  // Fine axis; single config is cheap.
  const std::size_t reps = bench::bench_reps(settings, 40);
  bench::print_banner(std::cout, "Figure 5: cLat=0.3, nLat=0.9, N=20, B=36", settings, grid,
                      errors.size(), reps);

  const auto configs = sweep::make_grid(grid);
  const sweep::SweepResult result = run_sweep(configs, sweep::paper_competitors(),
                                              bench::bench_sweep_options(settings, errors, reps));
  bench::emit_figure(std::cout,
                     bench::normalized_series(result, "Figure 5: high-nLat configuration"),
                     "fig5.csv");

  // Show where phase 2 engages, the mechanism behind the jump.
  const platform::StarPlatform platform = configs[0].to_platform();
  std::cout << "RUMR phase-2 share of the workload by error level:\n  ";
  for (double error : errors) {
    core::RumrOptions options;
    options.known_error = error;
    const double w2 = core::rumr_phase2_work(platform, 1000.0, options);
    std::cout << error << ":" << w2 / 10.0 << "% ";
  }
  std::cout << "\n(paper: phase 2 engages at error ~= 0.18 for this configuration)\n";
  return 0;
}
