#include "common.hpp"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <ostream>

#include "report/ascii_plot.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace rumr::bench {

namespace {

std::size_t env_size_t(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return 0;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

}  // namespace

BenchSettings parse_settings(int argc, char** argv) {
  BenchSettings settings;
  const char* full_env = std::getenv("RUMR_FULL");
  settings.full = full_env != nullptr && std::strcmp(full_env, "0") != 0;
  settings.reps_override = env_size_t("RUMR_REPS");
  settings.threads = env_size_t("RUMR_THREADS");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) settings.full = true;
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      settings.reps_override = static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      settings.threads = static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return settings;
}

sweep::GridSpec bench_grid(const BenchSettings& settings) {
  if (settings.full) return sweep::GridSpec::paper_full();
  sweep::GridSpec spec;
  spec.n_values = {10, 30, 50};
  spec.b_over_n_values = {1.2, 1.6, 2.0};
  spec.clat_values = {0.0, 0.3, 0.7, 1.0};
  spec.nlat_values = {0.0, 0.3, 0.7, 1.0};
  return spec;
}

std::vector<double> bench_errors(const BenchSettings& settings, double quick_step) {
  return sweep::error_axis(0.48, settings.full ? 0.02 : quick_step);
}

std::size_t bench_reps(const BenchSettings& settings, std::size_t quick_reps) {
  if (settings.reps_override > 0) return settings.reps_override;
  return settings.full ? 40 : quick_reps;
}

sweep::SweepOptions bench_sweep_options(const BenchSettings& settings,
                                        std::vector<double> errors, std::size_t reps) {
  sweep::SweepOptions options;
  options.errors = std::move(errors);
  options.repetitions = reps;
  options.threads = settings.threads;
  return options;
}

void print_banner(std::ostream& out, const std::string& title, const BenchSettings& settings,
                  const sweep::GridSpec& grid, std::size_t errors, std::size_t reps) {
  out << "=== " << title << " ===\n"
      << (settings.full ? "paper-exact grid" : "quick grid (pass --full for the paper-exact one)")
      << ": " << grid.size() << " configurations x " << errors << " error levels x " << reps
      << " repetitions\n\n";
}

void print_win_table(std::ostream& out, const sweep::SweepResult& result, bool by_margin,
                     const std::vector<PaperRow>& paper_rows) {
  std::vector<std::string> headers = {"Algorithm"};
  for (const std::string& label : sweep::error_band_labels()) headers.push_back(label);
  report::TextTable table(std::move(headers));
  for (std::size_t a = 1; a < result.algorithms().size(); ++a) {
    std::vector<double> row;
    row.reserve(5);
    for (std::size_t band = 0; band < 5; ++band) {
      row.push_back(result.win_percentage(band, a, by_margin));
    }
    table.add_row(result.algorithms()[a], row, 2);
    for (const PaperRow& paper : paper_rows) {
      if (paper.algorithm == result.algorithms()[a]) {
        table.add_row("  (paper)", paper.values, 2);
      }
    }
  }
  table.print(out);
}

report::SeriesSet normalized_series(const sweep::SweepResult& result, const std::string& title) {
  report::SeriesSet set;
  set.title = title;
  set.x_label = "error";
  set.y_label = "makespan normalized to " + result.algorithms()[0];
  for (std::size_t a = 1; a < result.algorithms().size(); ++a) {
    report::Series series;
    series.name = result.algorithms()[a];
    for (std::size_t e = 0; e < result.errors().size(); ++e) {
      series.add(result.errors()[e], result.mean_normalized_makespan(e, a));
    }
    set.series.push_back(std::move(series));
  }
  return set;
}

void emit_figure(std::ostream& out, const report::SeriesSet& series, const std::string& csv_name) {
  out << report::render_plot(series) << '\n';
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string path = "results/" + csv_name;
  if (report::save_csv(path, series)) {
    out << "exact numbers written to " << path << "\n\n";
  }
}

}  // namespace rumr::bench
