// Reproduces the paper's Table 2 (percentage of experiments in which RUMR
// outperforms each competitor, per error band) and Table 3 (outperforms by
// at least 10%), plus the "RUMR wins 79% overall" headline. FSC — which the
// paper measured but did not tabulate — is included as an extra row.

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace rumr;
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);
  const sweep::GridSpec grid = bench::bench_grid(settings);
  const auto errors = bench::bench_errors(settings);
  const std::size_t reps = bench::bench_reps(settings, 8);
  bench::print_banner(std::cout, "Tables 2 & 3: RUMR win percentages vs competitors", settings,
                      grid, errors.size(), reps);

  const sweep::SweepResult result =
      run_sweep(sweep::make_grid(grid), sweep::extended_competitors(),
                bench::bench_sweep_options(settings, errors, reps));

  const std::vector<bench::PaperRow> table2_paper = {
      {"UMR", {54.96, 56.60, 73.45, 81.99, 86.48}},
      {"MI-1", {98.27, 86.08, 75.27, 68.27, 69.82}},
      {"MI-2", {94.44, 88.38, 94.95, 98.91, 98.61}},
      {"MI-3", {94.70, 95.70, 97.33, 98.76, 99.94}},
      {"MI-4", {95.55, 97.77, 98.17, 98.71, 99.84}},
      {"Factoring", {98.21, 94.06, 93.84, 90.16, 84.74}},
  };
  const std::vector<bench::PaperRow> table3_paper = {
      {"UMR", {0.00, 4.64, 27.59, 43.29, 55.80}},
      {"MI-1", {68.89, 44.97, 48.70, 56.25, 57.02}},
      {"MI-2", {59.67, 56.64, 65.55, 69.74, 70.03}},
      {"MI-3", {69.55, 68.51, 85.24, 90.92, 93.03}},
      {"MI-4", {76.46, 78.49, 90.18, 94.73, 96.70}},
      {"Factoring", {90.09, 61.88, 45.62, 35.39, 23.86}},
  };

  std::cout << "Table 2 — % of experiments in which RUMR outperforms each algorithm\n"
               "(an experiment = one configuration x error value, mean over repetitions):\n\n";
  bench::print_win_table(std::cout, result, /*by_margin=*/false, table2_paper);

  std::cout << "\nTable 3 — % of experiments in which RUMR outperforms by at least 10%:\n\n";
  bench::print_win_table(std::cout, result, /*by_margin=*/true, table3_paper);

  double overall = 0.0;
  for (std::size_t a = 1; a < result.algorithms().size(); ++a) {
    overall += result.overall_win_percentage(a);
  }
  overall /= static_cast<double>(result.algorithms().size() - 1);
  std::cout << "\nOverall: RUMR outperforms its competitors in " << overall
            << "% of experiments (paper: 79%).\n";
  return 0;
}
