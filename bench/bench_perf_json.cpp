// bench_perf_json — machine-readable performance snapshot.
//
// Times the two quantities that bound sweep capacity — raw DES event
// throughput and full master-worker engine runs — with plain steady_clock
// timing (no google-benchmark dependency, so it runs in any build) and
// writes results/BENCH_des.json:
//
//   {
//     "des_chain_events_per_sec":  ...,   // serial event chain
//     "des_fanout_events_per_sec": ...,   // wide pre-scheduled fan-out
//     "engine_runs_per_sec":       ...,   // UMR runs under 30% error
//     "engine_events_per_sec":     ...,   // DES events inside those runs
//     "jobs_per_sec":              ...,   // open-system jobs served end to end
//     "sweep_cells_per_sec":       ...,   // sharded sweep grid cells completed
//     "race_sims_saved_ratio":     ...,   // fixed-budget sims / raced sims
//     "serve_requests_per_sec":    ...,   // warm-cache what-if batches served
//     "serve_warm_over_cold_ratio": ...   // cold request time / warm request time
//   }
//
// CI archives the file per commit; regression tooling diffs it. Numbers are
// machine-dependent by nature, so the file carries only rates — nothing that
// varies run-to-run at fixed performance (no dates, no hostnames).
//
// Usage: bench_perf_json [output-path]   (default results/BENCH_des.json)

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <vector>

#include "api/rumr.hpp"

namespace {

using namespace rumr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Serial dependent chain: each event schedules the next, so throughput is
/// bounded by per-event scheduling + dispatch cost.
double des_chain_events_per_sec() {
  constexpr std::size_t kChain = 200000;
  constexpr int kRounds = 5;
  std::size_t events = 0;
  const auto start = Clock::now();
  for (int round = 0; round < kRounds; ++round) {
    des::Simulator sim;
    std::size_t remaining = kChain;
    std::function<void()> next = [&] {
      if (--remaining > 0) sim.schedule_in(1.0, next);
    };
    sim.schedule_at(0.0, next);
    sim.run();
    events += sim.events_processed();
  }
  return static_cast<double>(events) / seconds_since(start);
}

/// Wide fan-out: everything pre-scheduled, so throughput is bounded by the
/// priority-queue push/pop cost at depth.
double des_fanout_events_per_sec() {
  constexpr std::size_t kWidth = 100000;
  constexpr int kRounds = 5;
  std::size_t events = 0;
  const auto start = Clock::now();
  for (int round = 0; round < kRounds; ++round) {
    des::Simulator sim;
    for (std::size_t i = 0; i < kWidth; ++i) {
      sim.schedule_at(static_cast<double>(i % 97), [] {});
    }
    sim.run();
    events += sim.events_processed();
  }
  return static_cast<double>(events) / seconds_since(start);
}

struct EngineRates {
  double runs_per_sec = 0.0;
  double events_per_sec = 0.0;
};

/// Full engine runs: UMR on the paper's 10-worker platform under 30% error,
/// the sweep harness's unit of work.
EngineRates engine_rates() {
  constexpr int kRuns = 200;
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 10, .speed = 1.0, .bandwidth = 15.0, .comp_latency = 0.2,
       .comm_latency = 0.1});
  std::size_t events = 0;
  const auto start = Clock::now();
  for (int run = 0; run < kRuns; ++run) {
    core::UmrPolicy policy(p, 1000.0);
    const sim::SimResult result =
        simulate(p, policy,
                 sim::SimOptions::with_error(0.3, static_cast<std::uint64_t>(run + 1)));
    events += result.events;
  }
  const double elapsed = seconds_since(start);
  return {static_cast<double>(kRuns) / elapsed, static_cast<double>(events) / elapsed};
}

/// Open-system throughput: jobs served end to end (arrival -> departure) by
/// the multi-job engine under fractional sharing at 70% offered load — the
/// unit of work of an open-system sweep point.
double jobs_per_sec() {
  constexpr int kRounds = 10;
  constexpr std::size_t kJobsPerRound = 40;
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 10, .speed = 1.0, .bandwidth = 15.0, .comp_latency = 0.2,
       .comm_latency = 0.1});
  std::size_t completed = 0;
  const auto start = Clock::now();
  for (int round = 0; round < kRounds; ++round) {
    jobs::JobsOptions options;
    options.sharing = jobs::SharingPolicy::kFractional;
    options.stream = jobs::JobStreamSpec::poisson(
        jobs::JobStreamSpec::rate_for_load(p, 0.7, 300.0), kJobsPerRound, 300.0);
    options.stream.size_dist = jobs::SizeDistribution::kUniform;
    options.stream.size_spread = 0.4;
    options.known_error = 0.2;
    options.sim = sim::SimOptions::with_error(0.2, static_cast<std::uint64_t>(round + 1));
    completed += jobs::run_jobs(p, options).completed;
  }
  return static_cast<double>(completed) / seconds_since(start);
}

/// Sharded sweep throughput: completed grid cells per second through
/// run_sweep_streaming on a small closed-system grid (every hardware
/// thread), the unit of capacity behind "10^6-cell sweeps overnight".
double sweep_cells_per_sec() {
  constexpr int kRounds = 3;
  const std::vector<sweep::SweepPlatform> platforms = {
      sweep::SweepPlatform::from_config({10, 1.5, 0.1, 0.05}),
      sweep::SweepPlatform::from_config({4, 2.0, 0.3, 0.1})};
  const std::vector<sweep::AlgorithmSpec> lineup = {
      sweep::rumr_spec(), sweep::umr_spec(), sweep::factoring_spec()};
  sweep::SweepOptions options;
  options.errors = {0.0, 0.2, 0.4};
  options.repetitions = 8;
  options.rep_block = 2;
  options.w_total = 300.0;
  std::size_t cells = 0;
  const auto start = Clock::now();
  for (int round = 0; round < kRounds; ++round) {
    sweep::run_sweep_streaming(platforms, lineup, options,
                               [&cells](const sweep::SweepCell&) { ++cells; });
  }
  return static_cast<double>(cells) / seconds_since(start);
}

/// Racing economy: how many fixed-budget simulations one raced cell of the
/// EXPERIMENTS.md demo grid replaces per simulation actually run. The race is
/// seeded and single-valued, so unlike the wall-clock rates above this metric
/// is exactly reproducible — any drift below baseline means the elimination
/// rule got less decisive, not that the machine got slower.
double race_sims_saved_ratio() {
  race::RaceOptions options;
  options.delta = 0.05;
  options.block = 16;
  options.max_reps = 2048;
  options.w_total = 300.0;
  options.threads = 0;
  const race::RaceResult result =
      race::race_cell(sweep::SweepPlatform::from_config({10, 1.5, 0.1, 0.05}),
                      sweep::extended_competitors(), 0.3, options);
  return result.sims_saved_ratio();
}

struct ServeRates {
  double requests_per_sec = 0.0;  ///< Warm-cache batch requests served per second.
  double warm_over_cold = 0.0;    ///< Cold request time / warm request time.
};

/// Serving throughput: one 16-query what-if batch handled end to end
/// (parse -> admission -> plan cache -> response bytes). Warm numbers come
/// from a cached server after one priming request; cold numbers from a
/// pass-through (capacity-0) server that re-solves every query — so the
/// ratio is the plan cache's speedup on a repeated request, the number the
/// serving acceptance criterion (>= 10x) gates on.
ServeRates serve_rates() {
  std::string payload = "{\"type\":\"batch\",\"id\":1,\"queries\":[";
  for (int i = 0; i < 16; ++i) {
    if (i != 0) payload += ',';
    payload +=
        "{\"platform\":{\"homogeneous\":{\"workers\":10,\"speed\":1,\"bandwidth\":15,"
        "\"comp_latency\":0.2,\"comm_latency\":0.1}},\"workload\":1000,"
        "\"algorithm\":\"rumr\",\"known_error\":0.3,\"error\":0.3,\"seed\":" +
        std::to_string(i + 1) + "}";
  }
  payload += "]}";

  serve::ServerOptions pass_through;
  pass_through.cache_capacity = 0;
  serve::Server cold_server{pass_through};
  constexpr int kColdRounds = 20;
  const auto cold_start = Clock::now();
  for (int round = 0; round < kColdRounds; ++round) (void)cold_server.handle(payload);
  const double cold_per_request = seconds_since(cold_start) / kColdRounds;

  serve::Server warm_server{serve::ServerOptions{}};
  (void)warm_server.handle(payload);  // Prime the cache.
  constexpr int kWarmRounds = 400;
  const auto warm_start = Clock::now();
  for (int round = 0; round < kWarmRounds; ++round) (void)warm_server.handle(payload);
  const double warm_per_request = seconds_since(warm_start) / kWarmRounds;

  return {1.0 / warm_per_request, cold_per_request / warm_per_request};
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "results/BENCH_des.json";

  const double chain = des_chain_events_per_sec();
  const double fanout = des_fanout_events_per_sec();
  const EngineRates engine = engine_rates();
  const double jobs_rate = jobs_per_sec();
  const double sweep_rate = sweep_cells_per_sec();
  const double race_ratio = race_sims_saved_ratio();
  const ServeRates serve = serve_rates();

  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_perf_json: cannot open %s for writing\n", path);
    return 1;
  }
  out << "{\n"
      << "  \"des_chain_events_per_sec\": " << chain << ",\n"
      << "  \"des_fanout_events_per_sec\": " << fanout << ",\n"
      << "  \"engine_runs_per_sec\": " << engine.runs_per_sec << ",\n"
      << "  \"engine_events_per_sec\": " << engine.events_per_sec << ",\n"
      << "  \"jobs_per_sec\": " << jobs_rate << ",\n"
      << "  \"sweep_cells_per_sec\": " << sweep_rate << ",\n"
      << "  \"race_sims_saved_ratio\": " << race_ratio << ",\n"
      << "  \"serve_requests_per_sec\": " << serve.requests_per_sec << ",\n"
      << "  \"serve_warm_over_cold_ratio\": " << serve.warm_over_cold << "\n"
      << "}\n";
  out.close();

  std::printf("DES chain : %.3g events/s\n", chain);
  std::printf("DES fanout: %.3g events/s\n", fanout);
  std::printf("engine    : %.3g runs/s, %.3g events/s\n", engine.runs_per_sec,
              engine.events_per_sec);
  std::printf("jobs      : %.3g jobs/s\n", jobs_rate);
  std::printf("sweep     : %.3g cells/s\n", sweep_rate);
  std::printf("race      : %.3gx sims saved\n", race_ratio);
  std::printf("serve     : %.3g req/s warm, %.3gx over cold\n", serve.requests_per_sec,
              serve.warm_over_cold);
  std::printf("written to %s\n", path);
  return 0;
}
