// Ablation of a simulator modeling choice DESIGN.md calls out: worker
// receive-buffer depth. Capacity 1 is the classic double-buffered front end
// (a send to a full worker blocks the uplink — rendezvous semantics);
// SIZE_MAX is the idealized infinitely-buffered worker. The blocking model
// is what makes precalculated in-order schedules fragile under prediction
// error and gives RUMR's out-of-order phase 1 its measurable edge.

#include <iostream>

#include "common.hpp"
#include "core/rumr.hpp"
#include "core/umr_policy.hpp"
#include "report/table.hpp"
#include "sim/master_worker.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace rumr;
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);
  sweep::GridSpec grid;
  grid.n_values = {10, 30};
  grid.b_over_n_values = {1.4, 1.8};
  grid.clat_values = {0.1, 0.5};
  grid.nlat_values = {0.1, 0.5};
  const std::vector<double> errors = {0.0, 0.16, 0.32, 0.48};
  const std::size_t reps = bench::bench_reps(settings, 20);
  bench::print_banner(std::cout, "Ablation: worker buffer depth (blocking vs infinite)",
                      settings, grid, errors.size(), reps);

  const auto configs = sweep::make_grid(grid);
  std::vector<std::string> headers = {"capacity / metric"};
  for (double e : errors) headers.push_back("e=" + report::format_double(e, 2));
  report::TextTable table(std::move(headers));

  for (const std::size_t capacity : {std::size_t{1}, std::size_t{2}, SIZE_MAX}) {
    std::vector<double> timed_vs_rumr(errors.size());
    std::vector<double> eager_vs_rumr(errors.size());
    std::vector<double> inorder_vs_ooo(errors.size());
    for (std::size_t e = 0; e < errors.size(); ++e) {
      stats::Accumulator timed_ratio;
      stats::Accumulator eager_ratio;
      stats::Accumulator order_ratio;
      for (const auto& config : configs) {
        const platform::StarPlatform platform = config.to_platform();
        stats::Accumulator timed_acc;
        stats::Accumulator eager_acc;
        stats::Accumulator ooo_acc;
        stats::Accumulator rumr_acc;
        for (std::size_t rep = 0; rep < reps; ++rep) {
          sim::SimOptions options = sim::SimOptions::with_error(
              errors[e], stats::mix_seed(0xb1f, config.n, static_cast<std::uint64_t>(e), rep));
          options.worker_buffer_capacity = capacity;
          core::UmrPolicy timed(platform, 1000.0, core::DispatchOrder::kTimetable);
          timed_acc.add(simulate(platform, timed, options).makespan);
          core::UmrPolicy eager(platform, 1000.0, core::DispatchOrder::kInOrder);
          eager_acc.add(simulate(platform, eager, options).makespan);
          core::UmrPolicy ooo(platform, 1000.0, core::DispatchOrder::kOutOfOrder);
          ooo_acc.add(simulate(platform, ooo, options).makespan);
          core::RumrOptions rumr_options;
          rumr_options.known_error = errors[e];
          core::RumrPolicy rumr(platform, 1000.0, std::move(rumr_options));
          rumr_acc.add(simulate(platform, rumr, options).makespan);
        }
        timed_ratio.add(timed_acc.mean() / rumr_acc.mean());
        eager_ratio.add(eager_acc.mean() / rumr_acc.mean());
        order_ratio.add(eager_acc.mean() / ooo_acc.mean());
      }
      timed_vs_rumr[e] = timed_ratio.mean();
      eager_vs_rumr[e] = eager_ratio.mean();
      inorder_vs_ooo[e] = order_ratio.mean();
    }
    const std::string label = capacity == SIZE_MAX ? "inf" : std::to_string(capacity);
    table.add_row("cap=" + label + "  UMR-timed/RUMR", timed_vs_rumr, 4);
    table.add_row("cap=" + label + "  UMR-eager/RUMR", eager_vs_rumr, 4);
    table.add_row("cap=" + label + "  eager/out-of-order", inorder_vs_ooo, 4);
  }
  table.print(std::cout);
  std::cout << "\nexpected: the timetabled UMR (the paper's precalculated baseline) trails\n"
               "RUMR increasingly with error; eager execution closes most of that gap\n"
               "(pre-buffering when transfers finish early); with cap=1 out-of-order\n"
               "dispatch adds ~1% at high error, evaporating with infinite buffers.\n";
  return 0;
}
