// Extension experiment: RUMR against the whole loop self-scheduling family
// (Factoring, Weighted Factoring, GSS, TSS, FSC). The paper compares only
// against Factoring and (unreported) FSC; this bench positions RUMR within
// the complete classical family the robustness literature [14, 15] comes
// from.

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace rumr;
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);
  const sweep::GridSpec grid = bench::bench_grid(settings);
  const auto errors = bench::bench_errors(settings, 0.08);
  const std::size_t reps = bench::bench_reps(settings, 8);
  bench::print_banner(std::cout, "Loop self-scheduling family vs RUMR (extension)", settings,
                      grid, errors.size(), reps);

  const sweep::SweepResult result =
      run_sweep(sweep::make_grid(grid), sweep::loop_family_competitors(),
                bench::bench_sweep_options(settings, errors, reps));

  bench::emit_figure(std::cout,
                     bench::normalized_series(result, "Loop self-scheduling family vs RUMR"),
                     "loop_family.csv");

  std::cout << "win percentages (RUMR outperforms, per error band):\n\n";
  bench::print_win_table(std::cout, result, /*by_margin=*/false, {});
  std::cout << "\nexpected: every pure self-scheduler trails RUMR — they pay per-chunk\n"
               "latencies without UMR's overlap phase — with GSS's huge first chunks\n"
               "hurting most at high error and FSC/TSS sitting between Factoring and GSS.\n";
  return 0;
}
