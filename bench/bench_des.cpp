// Google-benchmark microbenchmarks for the simulation substrate: raw DES
// event throughput and full master-worker runs — the quantities that bound
// how large a parameter sweep the harness can afford.

#include <benchmark/benchmark.h>

#include "core/rumr.hpp"
#include "core/umr_policy.hpp"
#include "des/simulator.hpp"
#include "sim/master_worker.hpp"

namespace {

using namespace rumr;

void BM_DesEventThroughput(benchmark::State& state) {
  const auto chain = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulator sim;
    std::size_t remaining = chain;
    std::function<void()> next = [&] {
      if (--remaining > 0) sim.schedule_in(1.0, next);
    };
    sim.schedule_at(0.0, next);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chain));
}
BENCHMARK(BM_DesEventThroughput)->Arg(1000)->Arg(100000);

void BM_DesWideFanout(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulator sim;
    for (std::size_t i = 0; i < width; ++i) {
      sim.schedule_at(static_cast<double>(i % 97), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width));
}
BENCHMARK(BM_DesWideFanout)->Arg(10000);

platform::StarPlatform make_platform(std::size_t n) {
  return platform::StarPlatform::homogeneous(
      {.workers = n, .speed = 1.0, .bandwidth = 1.5 * static_cast<double>(n),
       .comp_latency = 0.2, .comm_latency = 0.1});
}

void BM_SimulateUmr(benchmark::State& state) {
  const platform::StarPlatform p = make_platform(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::UmrPolicy policy(p, 1000.0);
    benchmark::DoNotOptimize(
        simulate(p, policy, sim::SimOptions::with_error(0.3, seed++)).makespan);
  }
}
BENCHMARK(BM_SimulateUmr)->Arg(10)->Arg(50);

void BM_SimulateRumr(benchmark::State& state) {
  const platform::StarPlatform p = make_platform(static_cast<std::size_t>(state.range(0)));
  core::RumrOptions options;
  options.known_error = 0.3;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::RumrPolicy policy(p, 1000.0, options);
    benchmark::DoNotOptimize(
        simulate(p, policy, sim::SimOptions::with_error(0.3, seed++)).makespan);
  }
}
BENCHMARK(BM_SimulateRumr)->Arg(10)->Arg(50);

void BM_SimulateWithTrace(benchmark::State& state) {
  const platform::StarPlatform p = make_platform(10);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::UmrPolicy policy(p, 1000.0);
    sim::SimOptions options = sim::SimOptions::with_error(0.3, seed++);
    options.record_trace = true;
    benchmark::DoNotOptimize(simulate(p, policy, options).trace.size());
  }
}
BENCHMARK(BM_SimulateWithTrace);

}  // namespace

BENCHMARK_MAIN();
