// Extension experiment (paper sections 4.1/6 future work): non-stationary
// prediction errors. The paper conjectures RUMR "should still be effective"
// when the error distribution drifts slowly, because phase 2 uses no
// predictions at all. We compare stationary, random-walk, and burst error
// processes with comparable magnitudes across RUMR (told the stationary
// magnitude), adaptive RUMR, UMR, and Factoring.

#include <iostream>

#include "common.hpp"
#include "core/adaptive_rumr.hpp"
#include "core/rumr.hpp"
#include "core/umr_policy.hpp"
#include "baselines/factoring.hpp"
#include "report/table.hpp"
#include "sim/master_worker.hpp"
#include "stats/summary.hpp"

namespace {

using namespace rumr;

stats::ErrorProcessSpec make_spec(stats::ErrorDynamics dynamics, double level) {
  stats::ErrorProcessSpec spec;
  spec.base = stats::ErrorModel::truncated_normal(level);
  spec.dynamics = dynamics;
  spec.walk_step = 0.02;
  spec.walk_max = 2.0 * level;
  spec.burst_factor = 3.0;
  spec.switch_probability = 0.02;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);
  const std::size_t reps = bench::bench_reps(settings, 16);
  const double level = 0.2;

  sweep::GridSpec grid;
  grid.n_values = {10, 20, 40};
  grid.b_over_n_values = {1.4, 1.8};
  grid.clat_values = {0.1, 0.4};
  grid.nlat_values = {0.05, 0.2};
  const auto configs = sweep::make_grid(grid);

  std::cout << "=== Non-stationary error processes (extension) ===\n"
            << configs.size() << " configurations, base error level " << level << ", " << reps
            << " repetitions\n\n";

  report::TextTable table(
      {"dynamics", "UMR/RUMR", "Factoring/RUMR", "adaptive/RUMR", "RUMR mean (s)"});
  const struct {
    const char* name;
    stats::ErrorDynamics dynamics;
  } cases[] = {{"stationary", stats::ErrorDynamics::kStationary},
               {"random walk", stats::ErrorDynamics::kRandomWalk},
               {"burst", stats::ErrorDynamics::kBurst}};

  for (const auto& dynamics_case : cases) {
    stats::Accumulator umr_ratio;
    stats::Accumulator factoring_ratio;
    stats::Accumulator adaptive_ratio;
    stats::Accumulator rumr_mean;
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const platform::StarPlatform p = configs[c].to_platform();
      stats::Accumulator rumr_acc;
      stats::Accumulator umr_acc;
      stats::Accumulator factoring_acc;
      stats::Accumulator adaptive_acc;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        sim::SimOptions options;
        options.comm_error = make_spec(dynamics_case.dynamics, level);
        options.comp_error = make_spec(dynamics_case.dynamics, level);
        options.seed = stats::mix_seed(0xd1f, c, rep,
                                       static_cast<std::uint64_t>(dynamics_case.dynamics));

        core::RumrOptions rumr_options;
        rumr_options.known_error = level;  // RUMR only knows the base level.
        core::RumrPolicy rumr(p, 1000.0, std::move(rumr_options));
        rumr_acc.add(simulate(p, rumr, options).makespan);

        core::UmrPolicy umr(p, 1000.0, core::DispatchOrder::kTimetable);
        umr_acc.add(simulate(p, umr, options).makespan);

        const auto factoring = baselines::make_factoring_policy(p, 1000.0);
        factoring_acc.add(simulate(p, *factoring, options).makespan);

        core::AdaptiveRumrPolicy adaptive(p, 1000.0);
        adaptive_acc.add(simulate(p, adaptive, options).makespan);
      }
      umr_ratio.add(umr_acc.mean() / rumr_acc.mean());
      factoring_ratio.add(factoring_acc.mean() / rumr_acc.mean());
      adaptive_ratio.add(adaptive_acc.mean() / rumr_acc.mean());
      rumr_mean.add(rumr_acc.mean());
    }
    table.add_row({dynamics_case.name, report::format_double(umr_ratio.mean(), 3),
                   report::format_double(factoring_ratio.mean(), 3),
                   report::format_double(adaptive_ratio.mean(), 3),
                   report::format_double(rumr_mean.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: RUMR's edge over UMR persists under drifting and bursty\n"
               "errors (its phase 2 is prediction-free); the adaptive variant tracks\n"
               "RUMR since its pilot estimate follows the effective magnitude.\n";
  return 0;
}
