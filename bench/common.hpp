#pragma once

/// \file common.hpp
/// Shared plumbing for the table/figure reproduction harnesses: grid sizing
/// (quick default vs --full paper-exact), sweep execution, and the
/// side-by-side "paper vs measured" presentation.

#include <iosfwd>
#include <string>
#include <vector>

#include "report/series.hpp"
#include "sweep/runner.hpp"

namespace rumr::bench {

/// Command-line / environment knobs shared by every harness.
struct BenchSettings {
  /// --full or RUMR_FULL=1: run the paper-exact Table 1 grid (9801
  /// configurations x 25 error levels x 40 repetitions — hours of CPU).
  bool full = false;
  /// --reps N or RUMR_REPS=N: override the repetition count.
  std::size_t reps_override = 0;
  /// --threads N or RUMR_THREADS=N (0 = hardware concurrency).
  std::size_t threads = 0;
};

/// Parses argv and the environment. Unknown arguments are ignored so the
/// harnesses tolerate being launched by generic runners.
[[nodiscard]] BenchSettings parse_settings(int argc, char** argv);

/// The platform grid: paper-exact Table 1 when full, otherwise a 144-point
/// grid spanning the same ranges (N in {10,30,50}, B/N in {1.2,1.6,2.0},
/// cLat and nLat in {0,0.3,0.7,1.0}).
[[nodiscard]] sweep::GridSpec bench_grid(const BenchSettings& settings);

/// The error axis: 0..0.48 at the paper's 0.02 step when full, at
/// `quick_step` otherwise.
[[nodiscard]] std::vector<double> bench_errors(const BenchSettings& settings,
                                               double quick_step = 0.04);

/// Repetition count: the paper's 40 when full, `quick_reps` otherwise,
/// unless overridden.
[[nodiscard]] std::size_t bench_reps(const BenchSettings& settings, std::size_t quick_reps);

/// Assembles SweepOptions from the pieces above.
[[nodiscard]] sweep::SweepOptions bench_sweep_options(const BenchSettings& settings,
                                                      std::vector<double> errors,
                                                      std::size_t reps);

/// Prints a one-line banner describing the run scale.
void print_banner(std::ostream& out, const std::string& title, const BenchSettings& settings,
                  const sweep::GridSpec& grid, std::size_t errors, std::size_t reps);

/// Prints the win-percentage table (paper Tables 2/3 layout) with an
/// optional row of the paper's published values under each measured row.
struct PaperRow {
  std::string algorithm;
  std::vector<double> values;  // One per error band.
};
void print_win_table(std::ostream& out, const sweep::SweepResult& result, bool by_margin,
                     const std::vector<PaperRow>& paper_rows);

/// Builds the Figure 4-style series set: mean normalized makespan vs error,
/// one series per non-reference algorithm.
[[nodiscard]] report::SeriesSet normalized_series(const sweep::SweepResult& result,
                                                  const std::string& title);

/// Renders the series as an ASCII plot, prints it, and saves the exact
/// numbers as CSV under results/ in the working directory (path printed;
/// the directory is created on demand).
void emit_figure(std::ostream& out, const report::SeriesSet& series, const std::string& csv_name);

}  // namespace rumr::bench
