// Reproduces the paper's Figure 7: RUMR with a PLAIN (in-order) UMR in
// phase 1, normalized to original RUMR (out-of-order phase 1), versus error.
// Expected shape: out-of-order dispatch buys only ~1% at high error and is
// marginally counterproductive at very low error — "most of the
// effectiveness of RUMR comes from the division into two phases".

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace rumr;
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);
  const sweep::GridSpec grid = bench::bench_grid(settings);
  const auto errors = bench::bench_errors(settings, 0.04);
  const std::size_t reps = bench::bench_reps(settings, 12);
  bench::print_banner(std::cout, "Figure 7: in-order (plain-UMR) phase 1 vs original RUMR",
                      settings, grid, errors.size(), reps);

  const std::vector<sweep::AlgorithmSpec> algorithms{sweep::rumr_spec(),
                                                     sweep::rumr_inorder_spec()};
  const sweep::SweepResult result = run_sweep(sweep::make_grid(grid), algorithms,
                                              bench::bench_sweep_options(settings, errors, reps));

  report::SeriesSet series =
      bench::normalized_series(result, "Figure 7: plain-UMR phase 1 vs original RUMR");
  bench::emit_figure(std::cout, series, "fig7.csv");

  std::cout << "normalized makespan of the in-order variant by error:\n";
  for (std::size_t e = 0; e < result.errors().size(); ++e) {
    std::cout << "  error " << result.errors()[e] << ": "
              << result.mean_normalized_makespan(e, 1) << '\n';
  }
  std::cout << "(paper: ~1.01 at high error, fractionally below 1 at very low error)\n";
  return 0;
}
