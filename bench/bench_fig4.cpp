// Reproduces the paper's Figure 4: mean makespan of UMR, MI-1..4, and
// Factoring normalized to RUMR, versus the prediction-error level.
//   (a) over the whole Table 1 parameter space;
//   (b) over the low-latency subset cLat < 0.3, nLat < 0.3.
// Expected shapes: UMR rises with error (and dips below 1 only at tiny
// error); Factoring falls toward RUMR as error grows; MI-x stays well above
// 1, decreasing over the full space (4a) but rising again once RUMR's phase
// 2 engages in the low-latency subset (4b).

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace rumr;
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);
  const auto errors = bench::bench_errors(settings);
  const std::size_t reps = bench::bench_reps(settings, 8);

  {
    const sweep::GridSpec grid = bench::bench_grid(settings);
    bench::print_banner(std::cout, "Figure 4(a): normalized makespan vs error, all parameters",
                        settings, grid, errors.size(), reps);
    const sweep::SweepResult result =
        run_sweep(sweep::make_grid(grid), sweep::paper_competitors(),
                  bench::bench_sweep_options(settings, errors, reps));
    bench::emit_figure(std::cout,
                       bench::normalized_series(result, "Figure 4(a): all Table 1 parameters"),
                       "fig4a.csv");
  }

  {
    // Low-latency subset. The quick grid's own low-latency slice is too
    // coarse (only zeros), so use the paper's step inside the subset.
    sweep::GridSpec grid = bench::bench_grid(settings);
    if (!settings.full) {
      grid.clat_values = {0.0, 0.1, 0.2};
      grid.nlat_values = {0.0, 0.1, 0.2};
    } else {
      grid = grid.restrict_low_latency();
    }
    bench::print_banner(std::cout, "Figure 4(b): low-latency subset (cLat<0.3, nLat<0.3)",
                        settings, grid, errors.size(), reps);
    const sweep::SweepResult result =
        run_sweep(sweep::make_grid(grid), sweep::paper_competitors(),
                  bench::bench_sweep_options(settings, errors, reps));
    bench::emit_figure(std::cout,
                       bench::normalized_series(result, "Figure 4(b): cLat<0.3, nLat<0.3"),
                       "fig4b.csv");
  }
  return 0;
}
