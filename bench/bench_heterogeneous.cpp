// Extension experiment (the heterogeneity study the paper defers to its UMR
// companion [17, 13]): scheduler performance as platform heterogeneity
// grows. Worker speeds and link bandwidths are drawn with increasing
// coefficients of variation; heterogeneous UMR sizes per-worker chunks so
// rounds finish simultaneously, and greedy resource selection drops workers
// when the aggregate compute outruns the uplink. Weighted Factoring is the
// natural heterogeneous self-scheduling baseline.

#include <iostream>

#include "common.hpp"
#include "baselines/factoring.hpp"
#include "baselines/loop_scheduling.hpp"
#include "core/rumr.hpp"
#include "core/umr.hpp"
#include "core/umr_policy.hpp"
#include "platform/heterogeneity.hpp"
#include "report/table.hpp"
#include "sim/master_worker.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace rumr;
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);
  const std::size_t platforms_per_cv = settings.full ? 40 : 12;
  const std::size_t reps = bench::bench_reps(settings, 8);
  const double error = 0.25;
  const std::vector<double> cvs = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  std::cout << "=== Heterogeneity study (extension; cf. UMR [17,13]) ===\n"
            << platforms_per_cv << " random platforms per heterogeneity level, error = " << error
            << ", " << reps << " repetitions each\n\n";

  report::TextTable table({"speed/bandwidth CV", "UMR/RUMR", "Factoring/RUMR", "WF/RUMR",
                           "GSS/RUMR", "selection used"});
  for (double cv : cvs) {
    stats::Accumulator umr_ratio;
    stats::Accumulator factoring_ratio;
    stats::Accumulator wf_ratio;
    stats::Accumulator gss_ratio;
    std::size_t selections = 0;
    for (std::size_t draw = 0; draw < platforms_per_cv; ++draw) {
      platform::HeterogeneityParams params;
      params.workers = 16;
      params.speed_cv = cv;
      params.bandwidth_cv = cv;
      params.bandwidth_over_ns = 1.5;
      params.mean_comp_latency = 0.2;
      params.mean_comm_latency = 0.1;
      stats::Rng platform_rng(stats::mix_seed(0x4e7, static_cast<std::uint64_t>(cv * 100), draw));
      const platform::StarPlatform p = platform::random_heterogeneous(params, platform_rng);
      if (core::solve_umr(p, 1000.0).used_resource_selection) ++selections;

      stats::Accumulator rumr_acc;
      stats::Accumulator umr_acc;
      stats::Accumulator factoring_acc;
      stats::Accumulator wf_acc;
      stats::Accumulator gss_acc;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const sim::SimOptions options = sim::SimOptions::with_error(
            error, stats::mix_seed(0x4e8, draw, rep));
        core::RumrOptions rumr_options;
        rumr_options.known_error = error;
        core::RumrPolicy rumr(p, 1000.0, std::move(rumr_options));
        rumr_acc.add(simulate(p, rumr, options).makespan);
        core::UmrPolicy umr(p, 1000.0, core::DispatchOrder::kTimetable);
        umr_acc.add(simulate(p, umr, options).makespan);
        const auto factoring = baselines::make_factoring_policy(p, 1000.0);
        factoring_acc.add(simulate(p, *factoring, options).makespan);
        const auto wf = baselines::make_weighted_factoring_policy(p, 1000.0);
        wf_acc.add(simulate(p, *wf, options).makespan);
        const auto gss = baselines::make_gss_policy(p, 1000.0);
        gss_acc.add(simulate(p, *gss, options).makespan);
      }
      umr_ratio.add(umr_acc.mean() / rumr_acc.mean());
      factoring_ratio.add(factoring_acc.mean() / rumr_acc.mean());
      wf_ratio.add(wf_acc.mean() / rumr_acc.mean());
      gss_ratio.add(gss_acc.mean() / rumr_acc.mean());
    }
    table.add_row({report::format_double(cv, 1), report::format_double(umr_ratio.mean(), 3),
                   report::format_double(factoring_ratio.mean(), 3),
                   report::format_double(wf_ratio.mean(), 3),
                   report::format_double(gss_ratio.mean(), 3),
                   std::to_string(selections) + "/" + std::to_string(platforms_per_cv)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: RUMR stays ahead as heterogeneity grows; plain Factoring\n"
               "degrades fastest (it ignores worker speeds entirely), Weighted Factoring\n"
               "tracks better; resource selection engages once skewed bandwidth draws\n"
               "push sum S_i/B_i past the full-utilization budget.\n";
  return 0;
}
