// Extension experiment (paper sections 4.1 / 5.2.1 future work): on-line
// error estimation. Compares (1) oracle RUMR (told the true error), (2) the
// adaptive policy that estimates error from pilot-phase completion timings,
// and (3) the fixed 80/20 split the paper recommends when no estimate
// exists. The paper's conjecture is that even a coarse estimate recovers
// most of the oracle's advantage.

#include <iostream>

#include "common.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace rumr;
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);
  sweep::GridSpec grid;
  grid.n_values = {10, 20, 40};
  grid.b_over_n_values = {1.4, 1.8};
  grid.clat_values = {0.1, 0.4};
  grid.nlat_values = {0.05, 0.2};
  const auto errors = bench::bench_errors(settings, 0.08);
  const std::size_t reps = bench::bench_reps(settings, 12);
  bench::print_banner(std::cout, "On-line error estimation (extension)", settings, grid,
                      errors.size(), reps);

  const std::vector<sweep::AlgorithmSpec> algorithms{
      sweep::rumr_spec(), sweep::rumr_adaptive_spec(), sweep::rumr_fixed_spec(80.0)};
  const sweep::SweepResult result = run_sweep(sweep::make_grid(grid), algorithms,
                                              bench::bench_sweep_options(settings, errors, reps));

  std::vector<std::string> headers = {"vs oracle RUMR"};
  for (double e : errors) headers.push_back("e=" + report::format_double(e, 2));
  report::TextTable table(std::move(headers));
  for (std::size_t a = 1; a < algorithms.size(); ++a) {
    std::vector<double> row;
    for (std::size_t e = 0; e < errors.size(); ++e) {
      row.push_back(result.mean_normalized_makespan(e, a));
    }
    table.add_row(result.algorithms()[a], row, 3);
  }
  table.print(std::cout);
  std::cout << "\nexpected: the adaptive policy tracks the oracle more closely than the\n"
               "fixed 80/20 split once the error is large enough to matter.\n";
  return 0;
}
