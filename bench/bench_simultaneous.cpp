// Extension experiment (paper section 3.1: "it could be beneficial to allow
// for simultaneous transfers for better throughput in some cases (e.g.
// WANs). We have provided an initial investigation of this issue in [17]
// and leave a more complete study for future work"): the effect of multiple
// master uplink channels on UMR and RUMR makespans, especially when the
// single-channel uplink is the bottleneck (utilization ratio near 1).

#include <iostream>

#include "common.hpp"
#include "core/rumr.hpp"
#include "core/umr_policy.hpp"
#include "report/table.hpp"
#include "sim/master_worker.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace rumr;
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);
  const std::size_t reps = bench::bench_reps(settings, 16);
  const double error = 0.2;

  std::cout << "=== Simultaneous transfers (extension; paper section 3.1 future work) ===\n"
            << "mean makespans with k parallel uplink channels, error = " << error << ", " << reps
            << " repetitions\n\n";

  report::TextTable table({"platform", "algo", "k=1", "k=2", "k=4", "gain k=4"});
  const struct {
    const char* label;
    double b_over_n;  // Near 1.0 = uplink-bound; 2.0 = compute-bound.
  } platforms[] = {{"uplink-bound (B=1.05*N)", 1.05}, {"balanced (B=1.4*N)", 1.4},
                   {"compute-bound (B=2*N)", 2.0}};

  for (const auto& platform_case : platforms) {
    platform::HomogeneousParams params;
    params.workers = 20;
    params.bandwidth = platform_case.b_over_n * 20.0;
    params.comp_latency = 0.2;
    params.comm_latency = 0.1;
    const platform::StarPlatform p = platform::StarPlatform::homogeneous(params);

    for (const bool use_rumr : {false, true}) {
      std::vector<double> means;
      for (const std::size_t channels : {1u, 2u, 4u}) {
        stats::Accumulator acc;
        for (std::size_t rep = 0; rep < reps; ++rep) {
          sim::SimOptions options = sim::SimOptions::with_error(
              error, stats::mix_seed(0x51a, static_cast<std::uint64_t>(platform_case.b_over_n * 100),
                                     channels, rep));
          options.uplink_channels = channels;
          if (use_rumr) {
            core::RumrOptions rumr_options;
            rumr_options.known_error = error;
            core::RumrPolicy policy(p, 1000.0, std::move(rumr_options));
            acc.add(simulate(p, policy, options).makespan);
          } else {
            core::UmrPolicy policy(p, 1000.0, core::DispatchOrder::kTimetable);
            acc.add(simulate(p, policy, options).makespan);
          }
        }
        means.push_back(acc.mean());
      }
      const double gain = 100.0 * (means[0] - means[2]) / means[0];
      table.add_row({platform_case.label, use_rumr ? "RUMR" : "UMR",
                     report::format_double(means[0], 1), report::format_double(means[1], 1),
                     report::format_double(means[2], 1), report::format_double(gain, 1) + "%"});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: extra channels pay off mainly when the uplink is the\n"
               "bottleneck (B close to N*S); compute-bound platforms see little gain —\n"
               "matching the paper's intuition that simultaneous transfers matter for\n"
               "WAN-like (bandwidth-poor) settings.\n";
  return 0;
}
