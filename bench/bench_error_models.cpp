// Extension experiment (paper section 4.1: "We also ran all the experiments
// under a uniformly distributed error model, but our results were
// essentially similar"): the Figure 4(a) comparison under the
// truncated-normal model and the matched-standard-deviation uniform model,
// side by side.

#include <iostream>

#include "common.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace rumr;
  const bench::BenchSettings settings = bench::parse_settings(argc, argv);
  sweep::GridSpec grid = bench::bench_grid(settings);
  if (!settings.full) {
    grid.clat_values = {0.0, 0.5, 1.0};  // Trim the quick grid: two sweeps below.
    grid.nlat_values = {0.0, 0.5, 1.0};
  }
  const auto errors = bench::bench_errors(settings, 0.08);
  const std::size_t reps = bench::bench_reps(settings, 8);
  bench::print_banner(std::cout, "Error-model robustness: truncated normal vs uniform", settings,
                      grid, errors.size(), reps);

  const auto algorithms = sweep::paper_competitors();
  sweep::SweepOptions normal_options = bench::bench_sweep_options(settings, errors, reps);
  sweep::SweepOptions uniform_options = normal_options;
  uniform_options.distribution = stats::ErrorDistribution::kUniform;

  const sweep::SweepResult normal =
      run_sweep(sweep::make_grid(grid), algorithms, normal_options);
  const sweep::SweepResult uniform =
      run_sweep(sweep::make_grid(grid), algorithms, uniform_options);

  std::vector<std::string> headers = {"Algorithm"};
  for (double e : errors) headers.push_back("e=" + report::format_double(e, 2));
  report::TextTable table(std::move(headers));
  for (std::size_t a = 1; a < algorithms.size(); ++a) {
    std::vector<double> normal_row;
    std::vector<double> uniform_row;
    for (std::size_t e = 0; e < errors.size(); ++e) {
      normal_row.push_back(normal.mean_normalized_makespan(e, a));
      uniform_row.push_back(uniform.mean_normalized_makespan(e, a));
    }
    table.add_row(algorithms[a].name + " (normal)", normal_row, 3);
    table.add_row(algorithms[a].name + " (uniform)", uniform_row, 3);
  }
  std::cout << "mean makespan normalized to RUMR under both error models:\n\n";
  table.print(std::cout);
  std::cout << "\nexpected: the two rows of each pair nearly coincide — the paper's\n"
               "\"essentially similar\" claim.\n";
  return 0;
}
