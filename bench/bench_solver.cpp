// Google-benchmark microbenchmarks for the schedule solvers. Context: the
// paper reports its bisection solve takes ~0.07 s on a 400 MHz PIII; both of
// our solvers are orders of magnitude below that on modern hardware, so the
// "schedule computation is negligible" assumption holds with huge margin.

#include <benchmark/benchmark.h>

#include "baselines/factoring.hpp"
#include "baselines/multi_installment.hpp"
#include "core/rumr.hpp"
#include "core/umr.hpp"

namespace {

using namespace rumr;

platform::StarPlatform make_platform(std::size_t n) {
  return platform::StarPlatform::homogeneous(
      {.workers = n, .speed = 1.0, .bandwidth = 1.5 * static_cast<double>(n),
       .comp_latency = 0.2, .comm_latency = 0.1});
}

void BM_UmrSolveScan(benchmark::State& state) {
  const platform::StarPlatform p = make_platform(static_cast<std::size_t>(state.range(0)));
  core::UmrOptions options;
  options.method = core::UmrSolverMethod::kScan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_umr(p, 1000.0, options));
  }
}
BENCHMARK(BM_UmrSolveScan)->Arg(10)->Arg(50)->Arg(200);

void BM_UmrSolveBisection(benchmark::State& state) {
  const platform::StarPlatform p = make_platform(static_cast<std::size_t>(state.range(0)));
  core::UmrOptions options;
  options.method = core::UmrSolverMethod::kBisection;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_umr(p, 1000.0, options));
  }
}
BENCHMARK(BM_UmrSolveBisection)->Arg(10)->Arg(50)->Arg(200);

void BM_UmrSolveHeterogeneous(benchmark::State& state) {
  std::vector<platform::WorkerSpec> workers;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    const double speed = 1.0 + static_cast<double>(i % 4);
    workers.push_back({speed, 3.0 * speed * static_cast<double>(n), 0.2, 0.1, 0.0});
  }
  const platform::StarPlatform p{std::move(workers)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_umr(p, 1000.0));
  }
}
BENCHMARK(BM_UmrSolveHeterogeneous)->Arg(10)->Arg(50);

void BM_MiSolve(benchmark::State& state) {
  const platform::StarPlatform p = make_platform(static_cast<std::size_t>(state.range(0)));
  const auto installments = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::solve_multi_installment(p, 1000.0, installments));
  }
}
BENCHMARK(BM_MiSolve)->Args({10, 2})->Args({10, 4})->Args({50, 4});

void BM_FactoringChunks(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  baselines::FactoringOptions options;
  options.min_chunk = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::factoring_chunks(1000.0, n, options));
  }
}
BENCHMARK(BM_FactoringChunks)->Arg(10)->Arg(50);

void BM_RumrConstruction(benchmark::State& state) {
  const platform::StarPlatform p = make_platform(static_cast<std::size_t>(state.range(0)));
  core::RumrOptions options;
  options.known_error = 0.3;
  for (auto _ : state) {
    core::RumrPolicy policy(p, 1000.0, options);
    benchmark::DoNotOptimize(policy.phase2_work());
  }
}
BENCHMARK(BM_RumrConstruction)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
