#!/usr/bin/env bash
# CI driver: builds and tests every correctness configuration.
#
#   ./ci.sh            all stages
#   ./ci.sh release    one stage: release | asan-ubsan | tsan | tidy | lint |
#                      metrics | jobs | sweep | race | chaos | serve | perf
#
# Stages (each uses the matching CMakePresets.json preset, building into
# build/<preset>; every preset sets RUMR_WARNINGS_AS_ERRORS=ON):
#   release     Release build + full ctest suite + determinism harness
#   asan-ubsan  Debug + ASan/UBSan + expensive-tier RUMR_CHECKs + ctest
#   tsan        RelWithDebInfo + TSan + expensive-tier RUMR_CHECKs + ctest
#   tidy        clang-tidy over src/ with the repo .clang-tidy, zero-warning
#               gate (skipped with a notice when clang-tidy is not installed)
#   lint        self-hosted determinism lint (tools/rumr_lint): zero-finding
#               gate over src/, tools/, and bench/ enforcing the rule catalog
#               in DESIGN.md §12 (no ambient randomness, no wall clocks
#               outside the obs allowlist, no unordered/pointer-keyed
#               iteration, no mutable statics, no exact float compares in
#               policy code, #pragma once, suppression hygiene), plus the
#               header self-sufficiency gate (every src/ header compiles as
#               a standalone TU). Unlike tidy, this stage has no external
#               dependency and always runs.
#   metrics     self-auditing observability demo (tools/metrics_demo) under
#               the release and asan-ubsan presets; every scenario's metrics
#               must satisfy the check:: identity audits
#   jobs        multi-job open-system demo (tools/jobs_demo) under the release
#               and asan-ubsan presets; every run must pass
#               check::audit_service_result and drain its admitted jobs
#   sweep       sharded streaming sweep demo (tools/sweep_demo) under the
#               release and asan-ubsan presets: byte-identity across thread
#               counts, rep_block merge-tree tolerance, exactly-once
#               streaming, and open-system thread invariance; the demo exits
#               nonzero on any violation
#   race        best-arm racing demo (tools/race_demo) under the release and
#               asan-ubsan presets: every cell of the raced grid must certify
#               a single winner at delta = 0.05 with an audit-clean
#               elimination ledger, match the fixed-repetition argmin over
#               the same seed lanes, save >= 3x the simulations, and be
#               byte-identical across thread counts; nonzero exit on any
#               violation
#   chaos       seeded fault-injection campaign (tools/chaos_campaign) under
#               the release and asan-ubsan presets: the small grid sweeps
#               message loss x bandwidth degradation x worker MTBF x workload
#               error for every policy, self-audits each cell, and
#               --error-exit fails the stage on any audit violation or
#               non-converging run
#   serve       what-if scheduling server (tools/rumr_serve) under the release
#               and asan-ubsan presets: --self-test covers cached-vs-cold
#               byte identity (including a pass-through cache), concurrent
#               exactly-once solving, reject/shed admission, and the
#               rumr::Serve stream pump; then a full framed session round
#               trip (--emit-demo-requests -> --stdio -> the verifier, which
#               requires warm == cold bytes and the expected cache-hit
#               ledger); nonzero exit on any violation
#   perf        fresh bench_perf_json snapshot (results/BENCH_des.json) gated
#               by tools/perf_gate against the checked-in
#               results/BENCH_baseline.json: any rate more than 20% below
#               baseline fails the stage; every snapshot is appended to
#               results/BENCH_history.jsonl for the trajectory
#
# The release, asan-ubsan, and tsan stages each finish with an explicit
# `ctest -L regression` pass: the golden-trace replays and the DES
# property/fuzz suite are the lockdown for kernel/engine rework, so they run
# visibly in every sanitizer configuration, not just inside the full suite.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
STAGES=("${@:-release asan-ubsan tsan tidy lint metrics jobs sweep race chaos serve perf}")
# Re-split in case the default string was taken as one word.
read -r -a STAGES <<< "${STAGES[*]}"

banner() { printf '\n=== %s ===\n' "$*"; }

# Reject typos up front, before any stage burns build time.
for stage in "${STAGES[@]}"; do
  case "$stage" in
    release|asan-ubsan|tsan|tidy|lint|metrics|jobs|sweep|race|chaos|serve|perf) ;;
    *)
      echo "ci.sh: unknown stage '$stage' (valid: release | asan-ubsan | tsan | tidy | lint | metrics | jobs | sweep | race | chaos | serve | perf)" >&2
      exit 2
      ;;
  esac
done

build_and_test() {
  local preset="$1"
  banner "configure [$preset]"
  cmake --preset "$preset"
  banner "build [$preset]"
  cmake --build --preset "$preset" -j "$JOBS"
  banner "ctest [$preset]"
  ctest --preset "$preset" -j "$JOBS"
  banner "regression suite [$preset]"
  ctest --preset "$preset" -L regression
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    release)
      build_and_test release
      banner "determinism harness [release]"
      ./build/release/tools/determinism_check
      banner "robustness demo [release]"
      ./build/release/tools/robustness_demo
      ;;
    asan-ubsan)
      build_and_test asan-ubsan
      banner "determinism harness [asan-ubsan]"
      ./build/asan-ubsan/tools/determinism_check
      banner "robustness demo [asan-ubsan]"
      ./build/asan-ubsan/tools/robustness_demo
      ;;
    tsan)
      # Suppress nothing: the suite must be race-free as-is.
      TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" build_and_test tsan
      banner "robustness demo [tsan]"
      TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" ./build/tsan/tools/robustness_demo
      ;;
    tidy)
      if ! command -v clang-tidy > /dev/null 2>&1; then
        banner "tidy SKIPPED: clang-tidy not installed"
        continue
      fi
      banner "configure [tidy]"
      cmake --preset tidy
      banner "clang-tidy over src/ [zero-warning gate]"
      cmake --build --preset tidy -j "$JOBS"
      ;;
    lint)
      banner "configure+build rumr_lint [release]"
      cmake --preset release
      cmake --build --preset release -j "$JOBS" --target rumr_lint
      banner "determinism lint over src/ tools/ bench/ [zero-finding gate]"
      ./build/release/tools/rumr_lint --root . \
        --compile-commands build/release/compile_commands.json --error-exit
      banner "header self-sufficiency [every src/ header as a standalone TU]"
      cmake --build --preset release -j "$JOBS" --target rumr_header_selfcheck
      ;;
    metrics)
      # The demo exits nonzero when any scenario's metrics violate the
      # observability identities, so this is a real gate, not a smoke run.
      for preset in release asan-ubsan; do
        banner "configure+build metrics_demo [$preset]"
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" --target metrics_demo
        banner "metrics demo [$preset]"
        "./build/$preset/tools/metrics_demo"
      done
      ;;
    jobs)
      # The demo exits nonzero when any open-system run fails its service
      # audit or strands admitted jobs, so this is a real gate too.
      for preset in release asan-ubsan; do
        banner "configure+build jobs_demo [$preset]"
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" --target jobs_demo
        banner "jobs demo [$preset]"
        "./build/$preset/tools/jobs_demo"
      done
      ;;
    sweep)
      # The demo exits nonzero when the sharded engine breaks its
      # determinism contract (thread-count or shard-shape dependence,
      # dropped/duplicated streamed cells), so this gates the sweep engine
      # end to end through the rumr::Sweep facade.
      for preset in release asan-ubsan; do
        banner "configure+build sweep_demo [$preset]"
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" --target sweep_demo
        banner "sweep demo [$preset]"
        "./build/$preset/tools/sweep_demo"
      done
      ;;
    race)
      # The demo exits nonzero when any raced cell fails to certify within
      # budget, its elimination ledger fails check::audit_race_result, the
      # raced winner disagrees with the fixed-repetition argmin, the
      # simulations-saved ratio drops below 3x, or a thread count perturbs
      # the result, so this gates the racing engine end to end through the
      # rumr::Sweep and rumr::Race facades.
      for preset in release asan-ubsan; do
        banner "configure+build race_demo [$preset]"
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" --target race_demo
        banner "race demo [$preset]"
        "./build/$preset/tools/race_demo"
      done
      ;;
    chaos)
      # Every cell of the campaign self-audits (work conservation, banked-work
      # accounting, span sanity) and must converge within its event budget;
      # --error-exit turns any violation into a stage failure. The seed is
      # pinned so a red stage is reproducible bit-for-bit.
      for preset in release asan-ubsan; do
        banner "configure+build chaos_campaign [$preset]"
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" --target chaos_campaign
        banner "chaos campaign, small grid [$preset]"
        "./build/$preset/tools/chaos_campaign" --grid small --seed 802537 \
          --out "build/$preset/CHAOS.json" --error-exit
      done
      ;;
    serve)
      # The self-test exits nonzero when the serving path breaks any of its
      # contracts; the framed round trip then exercises the wire protocol
      # end to end and the verifier re-checks byte identity and the
      # cache-hit ledger on the decoded frames.
      for preset in release asan-ubsan; do
        banner "configure+build rumr_serve [$preset]"
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" --target rumr_serve
        banner "serve self-test [$preset]"
        "./build/$preset/tools/rumr_serve" --self-test
        banner "serve framed session round trip [$preset]"
        "./build/$preset/tools/rumr_serve" --emit-demo-requests \
          "build/$preset/serve_requests.bin"
        "./build/$preset/tools/rumr_serve" --stdio \
          < "build/$preset/serve_requests.bin" \
          > "build/$preset/serve_responses.bin"
        "./build/$preset/tools/rumr_serve" --verify-demo-responses \
          "build/$preset/serve_responses.bin"
      done
      ;;
    perf)
      banner "configure+build perf gate [release]"
      cmake --preset release
      cmake --build --preset release -j "$JOBS" --target bench_perf_json perf_gate
      banner "perf snapshot [release]"
      ./build/release/bench/bench_perf_json results/BENCH_des.json
      banner "perf gate vs results/BENCH_baseline.json [>20% regression fails]"
      ./build/release/tools/perf_gate results/BENCH_des.json results/BENCH_baseline.json \
        --threshold 0.20 --history results/BENCH_history.jsonl
      ;;
    *)
      echo "unknown stage '$stage' (release|asan-ubsan|tsan|tidy|lint|metrics|jobs|sweep|race|chaos|serve|perf)" >&2
      exit 2
      ;;
  esac
done

banner "ci.sh: all requested stages passed"
