// rumr_cli — run a scheduling algorithm described by a configuration file
// and report makespans (the APST-style "practical execution environment"
// front end of the paper's section 6, in simulation).
//
// Usage:
//   rumr_cli <run-description-file> [--gantt] [--algorithm NAME]
//
// See examples/cluster.rumr for the file format. --algorithm overrides the
// [schedule] section, making A/B comparisons a shell loop:
//
//   for a in rumr umr factoring; do ./rumr_cli cluster.rumr --algorithm $a; done

#include <cstdio>
#include <cstring>
#include <exception>

#include "config/run_description.hpp"
#include "sim/master_worker.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace rumr;

  const char* path = nullptr;
  const char* algorithm_override = nullptr;
  bool gantt = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gantt") == 0) {
      gantt = true;
    } else if (std::strcmp(argv[i], "--algorithm") == 0 && i + 1 < argc) {
      algorithm_override = argv[++i];
    } else if (argv[i][0] != '-') {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: rumr_cli <run-description-file> [--gantt] [--algorithm NAME]\n"
                 "see examples/cluster.rumr for the file format\n");
    return 2;
  }

  try {
    config::RunDescription run = config::run_from_config(config::ConfigFile::load(path));
    if (algorithm_override != nullptr) run.algorithm = algorithm_override;

    std::printf("platform  : %s\n", run.platform.describe().c_str());
    std::printf("workload  : %.0f units\n", run.w_total);
    std::printf("algorithm : %s (planning error %.2f)\n", run.algorithm.c_str(),
                run.known_error);
    std::printf("simulation: error %.2f, %zu repetition(s)\n\n",
                run.sim_options.comm_error.base.error(), run.repetitions);

    stats::Accumulator makespans;
    sim::SimResult last;
    for (std::size_t rep = 0; rep < run.repetitions; ++rep) {
      const auto policy = config::make_policy(run);
      sim::SimOptions options = run.sim_options;
      options.seed = stats::mix_seed(options.seed, rep);
      options.record_trace = gantt && rep + 1 == run.repetitions;
      last = simulate(run.platform, *policy, options);
      makespans.add(last.makespan);
    }

    if (run.repetitions == 1) {
      std::printf("makespan  : %.3f s\n", makespans.mean());
    } else {
      std::printf("makespan  : %.3f s mean, %.3f s sd, [%.3f, %.3f] min/max over %zu reps\n",
                  makespans.mean(), makespans.stddev(), makespans.min(), makespans.max(),
                  run.repetitions);
    }
    std::printf("chunks    : %zu dispatched, mean worker utilization %.1f%%\n",
                last.chunks_dispatched, 100.0 * last.mean_worker_utilization());
    if (gantt) {
      std::printf("\n%s", last.trace.render_gantt(run.platform.size(), 96).c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
