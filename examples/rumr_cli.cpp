// rumr_cli — run a scheduling algorithm described by a configuration file
// and report makespans (the APST-style "practical execution environment"
// front end of the paper's section 6, in simulation).
//
// Usage:
//   rumr_cli <run-description-file> [--gantt] [--metrics] [--algorithm NAME]
//
// See examples/cluster.rumr for the file format. --algorithm overrides the
// [schedule] section, making A/B comparisons a shell loop:
//
//   for a in rumr umr factoring; do ./rumr_cli cluster.rumr --algorithm $a; done
//
// --metrics dumps the final repetition's full observability record as JSON.

#include <cstdio>
#include <cstring>
#include <exception>

#include "api/rumr.hpp"

int main(int argc, char** argv) {
  using namespace rumr;

  const char* path = nullptr;
  const char* algorithm_override = nullptr;
  bool gantt = false;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gantt") == 0) {
      gantt = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--algorithm") == 0 && i + 1 < argc) {
      algorithm_override = argv[++i];
    } else if (argv[i][0] != '-') {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: rumr_cli <run-description-file> [--gantt] [--metrics] "
                 "[--algorithm NAME]\n"
                 "see examples/cluster.rumr for the file format\n");
    return 2;
  }

  try {
    Run run = Run::from_file(path);
    if (algorithm_override != nullptr) run.algorithm(algorithm_override);
    run.record_trace(gantt);
    const config::RunDescription& desc = run.description();

    std::printf("platform  : %s\n", desc.platform.describe().c_str());
    std::printf("workload  : %.0f units\n", desc.w_total);
    std::printf("algorithm : %s (planning error %.2f)\n", desc.algorithm.c_str(),
                desc.known_error);
    std::printf("simulation: error %.2f, %zu repetition(s)\n\n",
                desc.sim_options.comm_error.base.error(), desc.repetitions);

    const std::vector<RunResult> results = run.execute_all();
    stats::Accumulator makespans;
    for (const RunResult& r : results) makespans.add(r.makespan);
    const RunResult& last = results.back();

    if (results.size() == 1) {
      std::printf("makespan  : %.3f s\n", makespans.mean());
    } else {
      std::printf("makespan  : %.3f s mean, %.3f s sd, [%.3f, %.3f] min/max over %zu reps\n",
                  makespans.mean(), makespans.stddev(), makespans.min(), makespans.max(),
                  results.size());
    }
    std::printf("chunks    : %zu dispatched, mean worker utilization %.1f%%, "
                "uplink busy %.1f%%\n",
                last.metrics.engine.dispatches,
                100.0 * last.metrics.engine.mean_worker_utilization,
                100.0 * last.metrics.engine.uplink_utilization);
    if (gantt) {
      std::printf("\n%s", last.trace.render_gantt(desc.platform.size(), 96).c_str());
    }
    if (metrics) {
      std::printf("\n%s\n", obs::to_json(last.metrics).c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
