// Image rendering / feature extraction: the paper's introductory motivating
// workload. A large image is cut into segments, each segment is shipped to a
// worker and processed there; the per-segment processing time is strongly
// data dependent (a ray through an empty sky costs nothing, one through a
// glass sphere is expensive) — exactly the application-side source of
// prediction error the paper describes for ray tracing.
//
// This example treats the image as a divisible workload (one unit = one
// 64x64 pixel block), sweeps the prediction-error level with the rumr::Sweep
// builder, and races the full competitor line-up from the paper's section
// 5.1. The sweep is sharded across all cores and every repetition is
// self-audited.

#include <cstdio>
#include <vector>

#include "api/rumr.hpp"

int main() {
  using namespace rumr;

  // An 8K frame (7680 x 4320) in 64x64 blocks: 120 * 67.5 -> 8100 blocks.
  const double blocks = 8100.0;
  // Rendering cluster: 16 nodes, each renders 4 blocks/s; master pushes
  // compressed scene tiles at 96 blocks/s over a LAN with realistic setup
  // costs.
  platform::StarPlatform cluster = platform::StarPlatform::homogeneous({
      .workers = 16,
      .speed = 4.0,
      .bandwidth = 96.0,
      .comp_latency = 0.15,   // renderer warm-up per segment
      .comm_latency = 0.05,   // TCP connection + request setup
      .transfer_latency = 0.01,
  });

  std::printf("scene        : 8K frame, %.0f blocks of 64x64 pixels\n", blocks);
  std::printf("render farm  : %s\n\n", cluster.describe().c_str());

  const std::vector<double> error_levels = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  const std::vector<sweep::AlgorithmSpec> algorithms = sweep::paper_competitors();
  const std::size_t reps = 25;

  const std::vector<sweep::SweepCell> cells = Sweep()
                                                  .platform(cluster, "render-farm-16")
                                                  .errors(error_levels)
                                                  .policies(algorithms)
                                                  .workload(blocks)
                                                  .reps(reps)
                                                  .seed(0xf00d)
                                                  .threads(0)
                                                  .execute();

  // cells arrive sorted by (platform, error, algorithm); with one platform,
  // cell index = error * |algorithms| + algorithm.
  const auto mean_at = [&](std::size_t algo, std::size_t err) {
    return cells[err * algorithms.size() + algo].stats.makespan.mean();
  };

  std::vector<std::string> headers = {"algorithm"};
  for (double e : error_levels) headers.push_back("err=" + report::format_double(e, 1));
  report::TextTable table(std::move(headers));
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    std::vector<double> row(error_levels.size());
    for (std::size_t e = 0; e < error_levels.size(); ++e) row[e] = mean_at(a, e);
    table.add_row(algorithms[a].name, row, 1);
  }
  std::printf("mean frame render time (s) over %zu repetitions:\n\n%s\n", reps,
              table.to_string().c_str());

  // Normalized view (the paper's preferred presentation).
  std::vector<std::string> norm_headers = {"vs RUMR"};
  for (double e : error_levels) norm_headers.push_back("err=" + report::format_double(e, 1));
  report::TextTable normalized(std::move(norm_headers));
  for (std::size_t a = 1; a < algorithms.size(); ++a) {
    std::vector<double> row(error_levels.size());
    for (std::size_t e = 0; e < error_levels.size(); ++e) {
      row[e] = mean_at(a, e) / mean_at(0, e);
    }
    normalized.add_row(algorithms[a].name, row, 3);
  }
  std::printf("makespan normalized to RUMR (>1 means RUMR is faster):\n\n%s",
              normalized.to_string().c_str());

  // The sketch gives distribution tails without storing the repetitions.
  const sweep::CellStats& rumr_worst =
      cells[(error_levels.size() - 1) * algorithms.size()].stats;
  std::printf("\nRUMR at err=%.1f: median %.1f s, p95 %.1f s over %zu reps\n",
              error_levels.back(), rumr_worst.makespan_quantiles.quantile(0.5),
              rumr_worst.makespan_quantiles.quantile(0.95), rumr_worst.reps);
  return 0;
}
