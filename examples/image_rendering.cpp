// Image rendering / feature extraction: the paper's introductory motivating
// workload. A large image is cut into segments, each segment is shipped to a
// worker and processed there; the per-segment processing time is strongly
// data dependent (a ray through an empty sky costs nothing, one through a
// glass sphere is expensive) — exactly the application-side source of
// prediction error the paper describes for ray tracing.
//
// This example treats the image as a divisible workload (one unit = one
// 64x64 pixel block), sweeps the prediction-error level, and races the full
// competitor line-up from the paper's section 5.1.

#include <cstdio>
#include <vector>

#include "api/rumr.hpp"

int main() {
  using namespace rumr;

  // An 8K frame (7680 x 4320) in 64x64 blocks: 120 * 67.5 -> 8100 blocks.
  const double blocks = 8100.0;
  // Rendering cluster: 16 nodes, each renders 4 blocks/s; master pushes
  // compressed scene tiles at 96 blocks/s over a LAN with realistic setup
  // costs.
  platform::StarPlatform cluster = platform::StarPlatform::homogeneous({
      .workers = 16,
      .speed = 4.0,
      .bandwidth = 96.0,
      .comp_latency = 0.15,   // renderer warm-up per segment
      .comm_latency = 0.05,   // TCP connection + request setup
      .transfer_latency = 0.01,
  });

  std::printf("scene        : 8K frame, %.0f blocks of 64x64 pixels\n", blocks);
  std::printf("render farm  : %s\n\n", cluster.describe().c_str());

  const std::vector<double> error_levels = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  const std::vector<sweep::AlgorithmSpec> algorithms = sweep::paper_competitors();
  const int reps = 25;

  std::vector<std::string> headers = {"algorithm"};
  for (double e : error_levels) headers.push_back("err=" + report::format_double(e, 1));
  report::TextTable table(std::move(headers));

  std::vector<std::vector<double>> means(algorithms.size(),
                                         std::vector<double>(error_levels.size(), 0.0));
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    for (std::size_t e = 0; e < error_levels.size(); ++e) {
      stats::Accumulator acc;
      for (int rep = 0; rep < reps; ++rep) {
        const auto policy = algorithms[a].make(cluster, blocks, error_levels[e]);
        const auto seed = stats::mix_seed(0xf00d, e, static_cast<std::uint64_t>(rep));
        sim::SimOptions options = sim::SimOptions::with_error(error_levels[e], seed);
        acc.add(simulate(cluster, *policy, options).makespan);
      }
      means[a][e] = acc.mean();
    }
    table.add_row(algorithms[a].name, means[a], 1);
  }

  std::printf("mean frame render time (s) over %d repetitions:\n\n%s\n", reps,
              table.to_string().c_str());

  // Normalized view (the paper's preferred presentation).
  std::vector<std::string> norm_headers = {"vs RUMR"};
  for (double e : error_levels) norm_headers.push_back("err=" + report::format_double(e, 1));
  report::TextTable normalized(std::move(norm_headers));
  for (std::size_t a = 1; a < algorithms.size(); ++a) {
    std::vector<double> row(error_levels.size());
    for (std::size_t e = 0; e < error_levels.size(); ++e) row[e] = means[a][e] / means[0][e];
    normalized.add_row(algorithms[a].name, row, 3);
  }
  std::printf("makespan normalized to RUMR (>1 means RUMR is faster):\n\n%s",
              normalized.to_string().c_str());
  return 0;
}
