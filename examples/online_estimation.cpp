// On-line error estimation (the paper's section 5.2.1 punchline): RUMR with
// a *known* error magnitude beats any fixed phase split, so estimating the
// error is worth real makespan. This example runs the adaptive extension —
// a UMR pilot whose completion timings estimate `error` on the fly — against
// (a) RUMR told the true error (oracle), and (b) the practical fixed 80/20
// split the paper recommends when no estimate exists.

#include <cstdio>
#include <vector>

#include "api/rumr.hpp"

int main() {
  using namespace rumr;

  const platform::StarPlatform cluster = platform::StarPlatform::homogeneous({
      .workers = 20,
      .speed = 1.0,
      .bandwidth = 32.0,  // B = 1.6 * N
      .comp_latency = 0.3,
      .comm_latency = 0.2,
      .transfer_latency = 0.0,
  });
  const double workload = 1000.0;
  const int reps = 30;
  const std::vector<double> true_errors = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5};

  std::printf("platform: %s, workload %.0f units\n\n", cluster.describe().c_str(), workload);

  report::TextTable table({"true error", "oracle RUMR (s)", "adaptive (s)", "fixed 80/20 (s)",
                           "adaptive est.", "adaptive vs fixed"});
  for (double error : true_errors) {
    stats::Accumulator oracle_acc;
    stats::Accumulator adaptive_acc;
    stats::Accumulator fixed_acc;
    stats::Accumulator estimate_acc;
    for (int rep = 0; rep < reps; ++rep) {
      const auto seed = stats::mix_seed(0xada3, static_cast<std::uint64_t>(error * 1000),
                                        static_cast<std::uint64_t>(rep));
      const sim::SimOptions options = sim::SimOptions::with_error(error, seed);

      core::RumrOptions oracle_options;
      oracle_options.known_error = error;
      core::RumrPolicy oracle(cluster, workload, oracle_options);
      oracle_acc.add(simulate(cluster, oracle, options).makespan);

      core::AdaptiveRumrPolicy adaptive(cluster, workload);
      adaptive_acc.add(simulate(cluster, adaptive, options).makespan);
      if (adaptive.estimated_error()) estimate_acc.add(*adaptive.estimated_error());

      core::RumrPolicy fixed(cluster, workload, core::rumr_fixed_split_options(80.0));
      fixed_acc.add(simulate(cluster, fixed, options).makespan);
    }
    const double gain = 100.0 * (fixed_acc.mean() - adaptive_acc.mean()) / fixed_acc.mean();
    table.add_row({report::format_double(error, 2), report::format_double(oracle_acc.mean(), 1),
                   report::format_double(adaptive_acc.mean(), 1),
                   report::format_double(fixed_acc.mean(), 1),
                   report::format_double(estimate_acc.mean(), 3),
                   report::format_double(gain, 1) + "%"});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("'adaptive est.' is the mean on-line estimate of the error magnitude;\n"
              "'adaptive vs fixed' > 0 means estimating the error beat the fixed split.\n");
  return 0;
}
