// Sequence matching on a heterogeneous campus grid (the paper's BLAST-style
// motivating application [2, 20]): one query sequence is compared against a
// large dictionary file; running time is proportional to the letters
// scanned, so the dictionary is a textbook divisible workload.
//
// The platform is deliberately heterogeneous and over-subscribed: a mix of
// fast/slow nodes behind fast/slow links whose aggregate compute outstrips
// the master's uplink. This exercises two pieces the homogeneous benchmarks
// don't: the heterogeneous UMR solver (per-worker chunk fractions) and
// greedy resource selection (the full-utilization condition from the UMR
// paper).

#include <cstdio>
#include <vector>

#include "api/rumr.hpp"

int main() {
  using namespace rumr;

  // Dictionary: 36 gigaletters, in units of 10 megaletters => 3600 units.
  const double dictionary = 3600.0;

  // A campus grid: 4 fast cluster nodes, 6 mid lab machines, 8 slow desktops.
  // Speeds in units/s; bandwidths in units/s from the master's NFS server.
  std::vector<platform::WorkerSpec> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back({8.0, 40.0, 0.3, 0.05, 0.01});
  for (int i = 0; i < 6; ++i) nodes.push_back({4.0, 18.0, 0.4, 0.08, 0.02});
  for (int i = 0; i < 8; ++i) nodes.push_back({1.5, 4.0, 0.6, 0.15, 0.05});
  const platform::StarPlatform grid{std::move(nodes)};

  std::printf("dictionary : %.0f units (10 Mletters each)\n", dictionary);
  std::printf("grid       : %s\n", grid.describe().c_str());
  std::printf("             sum S_i/B_i = %.2f -> %s\n\n", grid.utilization_ratio(),
              grid.utilization_ratio() < 1.0 ? "network can feed all nodes"
                                             : "uplink saturated, selection required");

  // Heterogeneous UMR with resource selection.
  const core::UmrSchedule schedule = core::solve_umr(grid, dictionary);
  std::printf("UMR selected %zu of %zu workers%s, M = %zu rounds\n",
              schedule.selected_workers.size(), grid.size(),
              schedule.used_resource_selection ? " (dropped saturating nodes)" : "",
              schedule.rounds);
  std::printf("round-0 per-worker chunks:");
  for (std::size_t k = 0; k < schedule.chunk[0].size(); ++k) {
    std::printf(" %.1f", schedule.chunk[0][k]);
  }
  std::printf("\npredicted makespan: %.1f s\n\n", schedule.predicted_makespan);

  // Race RUMR against UMR and Factoring under load-dependent uncertainty
  // (shared lab machines: ~25% error).
  const double error = 0.25;
  const int reps = 30;
  stats::Accumulator umr_acc;
  stats::Accumulator rumr_acc;
  stats::Accumulator factoring_acc;
  for (int rep = 0; rep < reps; ++rep) {
    const auto seed = static_cast<std::uint64_t>(1000 + rep);
    const sim::SimOptions options = sim::SimOptions::with_error(error, seed);

    core::UmrPolicy umr(grid, dictionary);
    umr_acc.add(simulate(grid, umr, options).makespan);

    core::RumrOptions rumr_options;
    rumr_options.known_error = error;
    core::RumrPolicy rumr(grid, dictionary, rumr_options);
    rumr_acc.add(simulate(grid, rumr, options).makespan);

    const auto factoring = baselines::make_factoring_policy(grid, dictionary);
    factoring_acc.add(simulate(grid, *factoring, options).makespan);
  }

  std::printf("makespans under %.0f%% prediction error (%d reps, mean +/- sd):\n",
              100.0 * error, reps);
  std::printf("  UMR       : %7.1f s +/- %.1f\n", umr_acc.mean(), umr_acc.stddev());
  std::printf("  Factoring : %7.1f s +/- %.1f\n", factoring_acc.mean(), factoring_acc.stddev());
  std::printf("  RUMR      : %7.1f s +/- %.1f  (%.1f%% faster than UMR, %.1f%% than Factoring)\n",
              rumr_acc.mean(), rumr_acc.stddev(),
              100.0 * (umr_acc.mean() - rumr_acc.mean()) / umr_acc.mean(),
              100.0 * (factoring_acc.mean() - rumr_acc.mean()) / factoring_acc.mean());
  return 0;
}
