// Quickstart: schedule a divisible workload with RUMR and compare it with
// plain UMR under prediction errors.
//
// The single include below is the library's whole public surface. This walks
// it once:
//   1. describe the platform            (rumr::platform::StarPlatform)
//   2. solve & inspect a UMR schedule   (rumr::core::solve_umr)
//   3. execute audited runs             (rumr::Run -> rumr::RunResult)
//   4. read the observability record    (rumr::obs::RunMetrics)
//   5. render an execution Gantt trace  (rumr::sim::Trace) — the textual
//      equivalent of the paper's Figures 2 and 3.

#include <cstdio>
#include <filesystem>

#include "api/rumr.hpp"

int main() {
  using namespace rumr;

  // A homogeneous cluster out of the paper's Table 1: N = 10 workers,
  // bandwidth 1.5x the aggregate compute rate, non-trivial latencies.
  platform::HomogeneousParams params;
  params.workers = 10;
  params.speed = 1.0;        // 1 workload unit per second per worker
  params.bandwidth = 15.0;   // B = 1.5 * N * S
  params.comp_latency = 0.2; // 200 ms to start a computation
  params.comm_latency = 0.1; // 100 ms to initiate a transfer
  const platform::StarPlatform cluster = platform::StarPlatform::homogeneous(params);
  const double workload = 1000.0;

  std::printf("platform: %s\n", cluster.describe().c_str());
  std::printf("workload: %.0f units\n\n", workload);

  // --- 1. Inspect the UMR schedule ---------------------------------------
  const core::UmrSchedule schedule = core::solve_umr(cluster, workload);
  std::printf("UMR chooses M = %zu rounds (chunk growth ratio %.3f per round)\n",
              schedule.rounds, schedule.growth);
  std::printf("round chunk sizes (per worker): ");
  for (std::size_t j = 0; j < schedule.rounds; ++j) {
    std::printf("%s%.2f", j ? ", " : "", schedule.chunk[j][0]);
  }
  std::printf("\npredicted makespan: %.2f s\n\n", schedule.predicted_makespan);

  // --- 2. Perfect predictions: UMR's home turf ---------------------------
  // "umr-eager" is the dispatch-on-demand UMR variant (chunks go out as soon
  // as the uplink frees); every execute() is audited against the engine's
  // invariants before it returns.
  {
    const RunResult result = Run()
                                 .platform(cluster)
                                 .workload(workload)
                                 .algorithm("umr-eager")
                                 .record_trace()
                                 .execute();
    const obs::RunMetrics& m = result.metrics;
    std::printf("UMR with perfect predictions: makespan %.2f s, %zu chunks, "
                "mean worker utilization %.1f%%\n",
                result.makespan, m.engine.dispatches,
                100.0 * m.engine.mean_worker_utilization);
    std::printf("observability: uplink busy %.1f%% of the run, %zu DES events, "
                "peak event-queue depth %zu\n",
                100.0 * m.engine.uplink_utilization, m.des.events_executed,
                m.des.queue_depth_high_water);
    std::printf("\nexecution trace (cf. paper Figs. 2-3):\n%s\n",
                result.trace.render_gantt(cluster.size(), 96).c_str());

    // How close is that to provably optimal?
    const analysis::ScheduleQuality quality =
        analysis::analyze_run(cluster, result.sim, workload);
    std::printf("schedule quality: %.1f%% worker efficiency, %.2fx the analytic lower bound\n",
                100.0 * quality.worker_efficiency, quality.optimality_gap);

    // Full-fidelity trace for chrome://tracing / Perfetto.
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    if (sim::save_chrome_tracing("results/quickstart_trace.json", result.trace)) {
      std::printf(
          "detailed trace written to results/quickstart_trace.json (open in chrome://tracing)\n");
    }
  }

  // --- 3. Prediction errors: where RUMR earns its R ----------------------
  std::printf("\nwith 30%% prediction error (40 repetitions each):\n");
  const std::size_t reps = 40;
  const double error = 0.3;
  stats::Accumulator umr_makespans;
  stats::Accumulator rumr_makespans;
  for (const RunResult& r : Run()
                                .platform(cluster)
                                .workload(workload)
                                .algorithm("umr-eager")
                                .error(error)
                                .repetitions(reps)
                                .execute_all()) {
    umr_makespans.add(r.makespan);
  }
  for (const RunResult& r : Run()
                                .platform(cluster)
                                .workload(workload)
                                .algorithm("rumr")
                                .known_error(error)
                                .error(error)
                                .repetitions(reps)
                                .execute_all()) {
    rumr_makespans.add(r.makespan);
  }
  std::printf("  UMR : %.2f s mean makespan\n", umr_makespans.mean());
  std::printf("  RUMR: %.2f s mean makespan  (%.1f%% better)\n", rumr_makespans.mean(),
              100.0 * (umr_makespans.mean() - rumr_makespans.mean()) / umr_makespans.mean());

  core::RumrOptions options;
  options.known_error = error;
  const core::RumrPolicy probe(cluster, workload, options);
  std::printf("  RUMR reserved %.0f units (%.0f%%) for its Factoring phase 2\n",
              probe.phase2_work(), 100.0 * probe.phase2_work() / workload);
  return 0;
}
