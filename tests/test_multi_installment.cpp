// Tests for the Multi-Installment baseline (baselines/multi_installment.hpp):
// the closed-form MI-1 geometric solution, the just-in-time property of the
// general solution, conservation, and execution.

#include "baselines/multi_installment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/master_worker.hpp"

namespace rumr::baselines {
namespace {

platform::StarPlatform latency_free(std::size_t n, double s, double b) {
  return platform::StarPlatform::homogeneous({.workers = n, .speed = s, .bandwidth = b});
}

TEST(MultiInstallment, RejectsBadArguments) {
  const platform::StarPlatform p = latency_free(4, 1.0, 6.0);
  EXPECT_THROW((void)solve_multi_installment(p, 1000.0, 0), std::invalid_argument);
  EXPECT_THROW((void)solve_multi_installment(p, 0.0, 1), std::invalid_argument);
}

TEST(MultiInstallment, Mi1MatchesClosedFormGeometricSolution) {
  // One-round divisible load on a homogeneous star: alpha_{i+1}/alpha_i =
  // B/(B+S), sum = W.
  const double w = 1000.0;
  const double b = 6.0;
  const double s = 1.0;
  const MiSchedule mi = solve_multi_installment(latency_free(4, s, b), w, 1);
  EXPECT_FALSE(mi.clamped);
  const double ratio = b / (b + s);
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    EXPECT_NEAR(mi.chunk[0][i + 1] / mi.chunk[0][i], ratio, 1e-9);
  }
  EXPECT_NEAR(mi.total(), w, 1e-6);
}

TEST(MultiInstallment, ConservesWorkloadForAllX) {
  const platform::StarPlatform p = latency_free(10, 1.0, 12.0);
  for (std::size_t x = 1; x <= 4; ++x) {
    const MiSchedule mi = solve_multi_installment(p, 1000.0, x);
    EXPECT_NEAR(mi.total(), 1000.0, 1e-6) << "x=" << x;
    EXPECT_EQ(mi.installments, x);
    EXPECT_FALSE(mi.clamped) << "x=" << x;
  }
}

TEST(MultiInstallment, SatisfiesJustInTimeProperty) {
  // For every worker i and installment j, the arrival of chunk (j+1, i)
  // under the zero-latency model equals the completion of chunk (j, i).
  const std::size_t n = 6;
  const std::size_t x = 3;
  const double b = 9.0;
  const double s = 1.0;
  const MiSchedule mi = solve_multi_installment(latency_free(n, s, b), 600.0, x);
  ASSERT_FALSE(mi.clamped);

  // Serialized arrival times in dispatch order.
  std::vector<std::vector<double>> arrival(x, std::vector<double>(n, 0.0));
  double clock = 0.0;
  for (std::size_t j = 0; j < x; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      clock += mi.chunk[j][i] / b;
      arrival[j][i] = clock;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    double finish = arrival[0][i];
    for (std::size_t j = 0; j + 1 < x; ++j) {
      finish += mi.chunk[j][i] / s;
      EXPECT_NEAR(arrival[j + 1][i], finish, 1e-6) << "worker " << i << " installment " << j;
    }
  }
}

TEST(MultiInstallment, AllWorkersFinishSimultaneously) {
  const std::size_t n = 5;
  const std::size_t x = 2;
  const double b = 8.0;
  const MiSchedule mi = solve_multi_installment(latency_free(n, 1.0, b), 500.0, x);
  std::vector<double> arrival0(n, 0.0);
  double clock = 0.0;
  for (std::size_t j = 0; j < x; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      clock += mi.chunk[j][i] / b;
      if (j == 0) arrival0[i] = clock;
    }
  }
  double reference = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    double finish = arrival0[i];
    for (std::size_t j = 0; j < x; ++j) finish += mi.chunk[j][i];
    if (reference < 0.0) reference = finish;
    EXPECT_NEAR(finish, reference, 1e-6) << "worker " << i;
  }
  EXPECT_NEAR(mi.predicted_makespan, reference, 1e-6);
}

TEST(MultiInstallment, MoreInstallmentsReducePredictedMakespan) {
  const platform::StarPlatform p = latency_free(8, 1.0, 12.0);
  double previous = 1e300;
  for (std::size_t x = 1; x <= 4; ++x) {
    const MiSchedule mi = solve_multi_installment(p, 1000.0, x);
    EXPECT_LT(mi.predicted_makespan, previous) << "x=" << x;
    previous = mi.predicted_makespan;
  }
}

TEST(MultiInstallment, HandlesHeterogeneousPlatforms) {
  const platform::StarPlatform p(
      {{2.0, 12.0, 0.0, 0.0, 0.0}, {1.0, 8.0, 0.0, 0.0, 0.0}, {3.0, 18.0, 0.0, 0.0, 0.0}});
  const MiSchedule mi = solve_multi_installment(p, 300.0, 2);
  EXPECT_NEAR(mi.total(), 300.0, 1e-6);
  for (const auto& round : mi.chunk) {
    for (double c : round) EXPECT_GE(c, 0.0);
  }
}

TEST(MultiInstallment, ToPlanPreservesOrderAndMass) {
  const MiSchedule mi = solve_multi_installment(latency_free(3, 1.0, 6.0), 300.0, 2);
  const auto plan = mi.to_plan();
  ASSERT_EQ(plan.size(), 6u);
  // Installment-major, worker-minor order.
  EXPECT_EQ(plan[0].worker, 0u);
  EXPECT_EQ(plan[1].worker, 1u);
  EXPECT_EQ(plan[2].worker, 2u);
  EXPECT_EQ(plan[3].worker, 0u);
  double total = 0.0;
  for (const auto& d : plan) total += d.chunk;
  EXPECT_NEAR(total, 300.0, 1e-9);
}

TEST(MultiInstallment, PolicyExecutesOnLatencyfulPlatform) {
  // MI computes its schedule without latencies but must still run correctly
  // on a platform that has them (the paper's evaluation setup).
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 5, .speed = 1.0, .bandwidth = 8.0, .comp_latency = 0.3,
       .comm_latency = 0.2});
  const auto policy = make_mi_policy(p, 500.0, 3);
  EXPECT_EQ(policy->name(), "MI-3");
  const sim::SimResult r = simulate(p, *policy, sim::SimOptions{});
  EXPECT_NEAR(r.work_dispatched, 500.0, 1e-6);
  // With latencies the real makespan exceeds MI's zero-latency prediction.
  const MiSchedule mi = solve_multi_installment(p, 500.0, 3);
  EXPECT_GT(r.makespan, mi.predicted_makespan);
}

}  // namespace
}  // namespace rumr::baselines
