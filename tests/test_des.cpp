// Unit tests for the discrete-event simulation kernel (des/simulator.hpp).

#include "des/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rumr::des {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  const Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_processed(), 0u);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(1.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(0));
  EXPECT_FALSE(sim.cancel(12345));
}

TEST(Simulator, DoubleCancelReportsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  const std::size_t executed = sim.run_until(2.5);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  // Events at exactly the deadline run.
  sim.run_until(3.0);
  EXPECT_EQ(fired.back(), 3.0);
  sim.run();
  EXPECT_EQ(fired.back(), 4.0);
}

TEST(Simulator, RunUntilSkipsCancelledHeads) {
  Simulator sim;
  bool fired = false;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.cancel(a);
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, MaxEventsGuardStopsRunawayLoops) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule_in(1.0, forever); };
  sim.schedule_at(0.0, forever);
  const std::size_t executed = sim.run(1000);
  EXPECT_EQ(executed, 1000u);
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.events_pending(), 1u);
}

}  // namespace
}  // namespace rumr::des
