// Tests for the UMR solver (core/umr.hpp): recurrence structure, workload
// conservation, optimality of the round scan, agreement between the two
// solver methods, and — the strongest check — exact agreement between the
// solver's predicted makespan and the independent discrete-event simulation
// at zero error.

#include "core/umr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/umr_policy.hpp"
#include "sim/master_worker.hpp"

namespace rumr::core {
namespace {

platform::StarPlatform paperish(std::size_t n = 10, double b_over_n = 1.5, double clat = 0.2,
                                double nlat = 0.1) {
  return platform::StarPlatform::homogeneous(
      {.workers = n, .speed = 1.0, .bandwidth = b_over_n * static_cast<double>(n),
       .comp_latency = clat, .comm_latency = nlat});
}

TEST(UmrSolver, RejectsBadWorkload) {
  const platform::StarPlatform p = paperish();
  EXPECT_THROW((void)solve_umr(p, 0.0), std::invalid_argument);
  EXPECT_THROW((void)solve_umr(p, -5.0), std::invalid_argument);
}

TEST(UmrSolver, ConservesWorkload) {
  const platform::StarPlatform p = paperish();
  const UmrSchedule s = solve_umr(p, 1000.0);
  EXPECT_NEAR(s.total(), 1000.0, 1e-6);
}

TEST(UmrSolver, HomogeneousChunksFollowRecurrence) {
  // chunk_{j+1} = theta * chunk_j + gamma with theta = B/(N*S) and
  // gamma = B*(cLat - N*nLat)/N.
  const std::size_t n = 10;
  const double b = 15.0;
  const double clat = 0.2;
  const double nlat = 0.1;
  const platform::StarPlatform p = paperish(n, b / n, clat, nlat);
  const UmrSchedule s = solve_umr(p, 1000.0);
  ASSERT_GE(s.rounds, 2u);
  const double theta = b / static_cast<double>(n);
  const double gamma = b * (clat - static_cast<double>(n) * nlat) / static_cast<double>(n);
  for (std::size_t j = 0; j + 1 < s.rounds; ++j) {
    EXPECT_NEAR(s.chunk[j + 1][0], theta * s.chunk[j][0] + gamma, 1e-6)
        << "round " << j;
  }
  EXPECT_DOUBLE_EQ(s.growth, theta);
}

TEST(UmrSolver, ChunksAreUniformWithinRounds) {
  const platform::StarPlatform p = paperish();
  const UmrSchedule s = solve_umr(p, 1000.0);
  for (const auto& round : s.chunk) {
    for (double c : round) EXPECT_NEAR(c, round[0], 1e-9);
  }
}

TEST(UmrSolver, ChunksIncreaseWhenThetaAboveOne) {
  const platform::StarPlatform p = paperish(10, 1.5);
  const UmrSchedule s = solve_umr(p, 1000.0);
  for (std::size_t j = 0; j + 1 < s.rounds; ++j) {
    EXPECT_GT(s.chunk[j + 1][0], s.chunk[j][0]);
  }
}

TEST(UmrSolver, AllChunksPositive) {
  for (double b_over_n : {1.2, 1.5, 2.0}) {
    for (double clat : {0.0, 0.5, 1.0}) {
      for (double nlat : {0.0, 0.5, 1.0}) {
        const UmrSchedule s = solve_umr(paperish(20, b_over_n, clat, nlat), 1000.0);
        for (const auto& round : s.chunk) {
          for (double c : round) EXPECT_GT(c, 0.0);
        }
      }
    }
  }
}

TEST(UmrSolver, ScanPicksTheIntegerOptimum) {
  const platform::StarPlatform p = paperish();
  const double w = 1000.0;
  const UmrSchedule s = solve_umr(p, w);
  const double chosen = umr_predicted_makespan(p, w, s.rounds);
  for (std::size_t m = 1; m <= 60; ++m) {
    const double e = umr_predicted_makespan(p, w, m);
    if (std::isfinite(e)) {
      EXPECT_GE(e, chosen - 1e-6) << "M=" << m << " beats the scan's choice";
    }
  }
}

TEST(UmrSolver, BisectionAgreesWithScan) {
  for (double b_over_n : {1.2, 1.6, 2.0}) {
    for (double clat : {0.1, 0.5, 1.0}) {
      for (double nlat : {0.1, 0.5}) {
        const platform::StarPlatform p = paperish(15, b_over_n, clat, nlat);
        UmrOptions scan_opt;
        scan_opt.method = UmrSolverMethod::kScan;
        UmrOptions bisect_opt;
        bisect_opt.method = UmrSolverMethod::kBisection;
        const UmrSchedule scan = solve_umr(p, 1000.0, scan_opt);
        const UmrSchedule bisect = solve_umr(p, 1000.0, bisect_opt);
        // Continuous relaxation may land one integer off; makespans must be
        // within a whisker of each other.
        EXPECT_NEAR(bisect.predicted_makespan, scan.predicted_makespan,
                    0.01 * scan.predicted_makespan)
            << "B/N=" << b_over_n << " cLat=" << clat << " nLat=" << nlat;
      }
    }
  }
}

TEST(UmrSolver, SingleRoundFallbackIsProportionalSplit) {
  // With enormous latencies every extra round costs too much: M = 1 and each
  // worker gets W/N.
  const platform::StarPlatform p = paperish(10, 1.5, 20.0, 20.0);
  const UmrSchedule s = solve_umr(p, 1000.0);
  EXPECT_EQ(s.rounds, 1u);
  for (double c : s.chunk[0]) EXPECT_NEAR(c, 100.0, 1e-6);
}

TEST(UmrSolver, ZeroLatencyUsesManyRoundsButTerminates) {
  const platform::StarPlatform p = paperish(10, 1.5, 0.0, 0.0);
  const UmrSchedule s = solve_umr(p, 1000.0);
  EXPECT_GT(s.rounds, 5u);
  EXPECT_LE(s.rounds, 4096u);
  EXPECT_NEAR(s.total(), 1000.0, 1e-6);
}

TEST(UmrSolver, PredictionMatchesSimulationAtZeroError) {
  // The solver's E(M) and the DES engine are written independently; at zero
  // error they must agree to floating-point accuracy. This validates both.
  for (double b_over_n : {1.2, 1.5, 2.0}) {
    for (double clat : {0.0, 0.3, 1.0}) {
      for (double nlat : {0.0, 0.3, 1.0}) {
        const platform::StarPlatform p = paperish(10, b_over_n, clat, nlat);
        const UmrSchedule s = solve_umr(p, 1000.0);
        UmrPolicy policy(s, DispatchOrder::kInOrder);
        const sim::SimResult r = simulate(p, policy, sim::SimOptions{});
        EXPECT_NEAR(r.makespan, s.predicted_makespan, 1e-6 * s.predicted_makespan)
            << "B/N=" << b_over_n << " cLat=" << clat << " nLat=" << nlat
            << " M=" << s.rounds;
      }
    }
  }
}

TEST(UmrSolver, HeterogeneousRoundsFinishSimultaneously) {
  // chunk_{j,i} = S_i * (tau_j - cLat_i): within a round every worker's
  // compute time equals tau_j.
  const platform::StarPlatform p({{2.0, 20.0, 0.1, 0.05, 0.0},
                                  {1.0, 15.0, 0.3, 0.10, 0.0},
                                  {4.0, 30.0, 0.2, 0.02, 0.0}});
  const UmrSchedule s = solve_umr(p, 500.0);
  ASSERT_EQ(s.selected_workers.size(), 3u);
  for (std::size_t j = 0; j < s.rounds; ++j) {
    for (std::size_t k = 0; k < 3; ++k) {
      const platform::WorkerSpec& w = p.worker(s.selected_workers[k]);
      const double tcomp = w.comp_latency + s.chunk[j][k] / w.speed;
      EXPECT_NEAR(tcomp, s.round_time[j], 1e-9 * (1.0 + s.round_time[j]));
    }
  }
  EXPECT_NEAR(s.total(), 500.0, 1e-6);
}

TEST(UmrSolver, ResourceSelectionTriggersWhenSaturated) {
  // N*S/B = 20/10 = 2 > 1: the uplink cannot feed everyone.
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 20, .speed = 1.0, .bandwidth = 10.0, .comp_latency = 0.1,
       .comm_latency = 0.1});
  const UmrSchedule s = solve_umr(p, 1000.0);
  EXPECT_TRUE(s.used_resource_selection);
  EXPECT_LT(s.selected_workers.size(), 20u);
  EXPECT_GE(s.selected_workers.size(), 1u);
  EXPECT_NEAR(s.total(), 1000.0, 1e-6);
  // The selected subset satisfies the utilization budget.
  const platform::StarPlatform active = p.subset(s.selected_workers);
  EXPECT_LE(active.utilization_ratio(), 0.95 + 1e-12);
}

TEST(UmrSolver, ResourceSelectionCanBeDisabled) {
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 20, .speed = 1.0, .bandwidth = 10.0});
  UmrOptions options;
  options.allow_resource_selection = false;
  const UmrSchedule s = solve_umr(p, 1000.0, options);
  EXPECT_FALSE(s.used_resource_selection);
  EXPECT_EQ(s.selected_workers.size(), 20u);
  EXPECT_NEAR(s.total(), 1000.0, 1e-6);
}

TEST(UmrSolver, ToPlanCoversSelectedWorkersEachRound) {
  const platform::StarPlatform p = paperish(8);
  const UmrSchedule s = solve_umr(p, 800.0);
  const auto plan = s.to_plan();
  EXPECT_EQ(plan.size(), s.rounds * 8u);
  double total = 0.0;
  for (const auto& d : plan) {
    EXPECT_LT(d.worker, 8u);
    EXPECT_GT(d.chunk, 0.0);
    total += d.chunk;
  }
  EXPECT_NEAR(total, 800.0, 1e-6);
}

}  // namespace
}  // namespace rumr::core
