// Tests for the what-if scheduling server (rumr::serve): wire framing
// (including property-style incremental decoding at every chunk size),
// request parsing, canonical cache keys, the content-addressed plan cache
// (exactly-once under concurrency — the TSan target — plus eviction and
// failure ledgers), server byte-identity and admission behavior, the
// rumr::Serve facade, and the [serve] config bridge.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/rumr.hpp"
#include "check/serve_audit.hpp"
#include "config/config_file.hpp"
#include "serve/plan_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/serve_config.hpp"

namespace rumr::serve {
namespace {

// --- Helpers ----------------------------------------------------------------

/// A small, fully explicit query payload; vary `seed` for distinct cache keys.
std::string query_json(std::uint64_t seed, const std::string& algorithm = "rumr") {
  return "{\"platform\":{\"homogeneous\":{\"workers\":4,\"speed\":1,\"bandwidth\":12}},"
         "\"workload\":250,\"algorithm\":\"" +
         algorithm + "\",\"known_error\":0.3,\"error\":0.3,\"seed\":" + std::to_string(seed) +
         "}";
}

std::string batch_json(std::int64_t id, const std::vector<std::string>& queries) {
  std::string payload = "{\"type\":\"batch\",\"id\":" + std::to_string(id) + ",\"queries\":[";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i != 0) payload += ',';
    payload += queries[i];
  }
  payload += "]}";
  return payload;
}

ProtocolError::Kind decode_kind(const std::string& bytes) {
  FrameDecoder decoder;
  try {
    decoder.feed(bytes);
    decoder.finish();
    while (decoder.next()) {
    }
  } catch (const ProtocolError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a ProtocolError for: " << bytes;
  return ProtocolError::Kind::kBadRequest;
}

// --- Framing ----------------------------------------------------------------

TEST(ServeFraming, RoundTripThroughStream) {
  std::stringstream wire;
  write_frame(wire, "{\"a\":1}");
  write_frame(wire, "");
  write_frame(wire, std::string(1000, 'x'));

  EXPECT_EQ(read_frame(wire).value(), "{\"a\":1}");
  EXPECT_EQ(read_frame(wire).value(), "");
  EXPECT_EQ(read_frame(wire).value(), std::string(1000, 'x'));
  EXPECT_FALSE(read_frame(wire).has_value());  // Clean EOF at a boundary.
}

TEST(ServeFraming, DecoderRecoversFramesAtEveryChunkSize) {
  const std::vector<std::string> payloads = {"", "a", "{\"k\":[1,2,3]}",
                                             std::string(257, 'z')};
  std::string stream;
  for (const std::string& p : payloads) stream += encode_frame(p);

  // Property: however the bytes are sliced, the same frames come out.
  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    FrameDecoder decoder;
    std::vector<std::string> got;
    for (std::size_t pos = 0; pos < stream.size(); pos += chunk) {
      decoder.feed(std::string_view(stream).substr(pos, chunk));
      while (auto frame = decoder.next()) got.push_back(*std::move(frame));
    }
    decoder.finish();
    while (auto frame = decoder.next()) got.push_back(*std::move(frame));
    EXPECT_EQ(got, payloads) << "chunk size " << chunk;
    EXPECT_TRUE(decoder.at_boundary());
  }
}

TEST(ServeFraming, BadMagicIsDetectedFromTheFirstByte) {
  FrameDecoder decoder;
  decoder.feed("X");  // One byte of evidence is enough.
  EXPECT_THROW((void)decoder.next(), ProtocolError);
  EXPECT_EQ(decode_kind("XU\x01"), ProtocolError::Kind::kBadMagic);
  EXPECT_EQ(decode_kind("RV"), ProtocolError::Kind::kBadMagic);
}

TEST(ServeFraming, BadVersionAndFlagsAreNamedErrors) {
  EXPECT_EQ(decode_kind(std::string("RU\x02\x00", 4)), ProtocolError::Kind::kBadVersion);
  EXPECT_EQ(decode_kind(std::string("RU\x01\x01", 4)), ProtocolError::Kind::kBadFlags);
}

TEST(ServeFraming, OversizedLengthPrefixFailsBeforeAllocation) {
  // Length field = kMaxPayloadBytes + 1, little-endian.
  const std::uint32_t length = static_cast<std::uint32_t>(kMaxPayloadBytes) + 1;
  std::string header = {'R', 'U', 1, 0};
  for (int shift = 0; shift < 32; shift += 8) {
    header.push_back(static_cast<char>((length >> shift) & 0xffu));
  }
  EXPECT_EQ(decode_kind(header), ProtocolError::Kind::kOversized);

  std::stringstream wire(header);
  try {
    (void)read_frame(wire);
    FAIL() << "oversized frame was accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolError::Kind::kOversized);
    EXPECT_TRUE(e.session_fatal());
  }
}

TEST(ServeFraming, TruncationIsFatalInHeaderAndPayload) {
  const std::string frame = encode_frame("{\"type\":\"ping\",\"id\":1}");
  // Inside the header.
  EXPECT_EQ(decode_kind(frame.substr(0, 3)), ProtocolError::Kind::kTruncated);
  // Inside the payload.
  EXPECT_EQ(decode_kind(frame.substr(0, frame.size() - 1)),
            ProtocolError::Kind::kTruncated);

  std::stringstream wire(frame.substr(0, frame.size() - 1));
  EXPECT_THROW((void)read_frame(wire), ProtocolError);
}

// --- Request parsing --------------------------------------------------------

TEST(ServeRequest, ParsesControlAndBatchRequests) {
  const Request ping = parse_request("{\"type\":\"ping\",\"id\":8}");
  EXPECT_EQ(ping.type, RequestType::kPing);
  EXPECT_EQ(ping.id, 8);

  const Request stats = parse_request("{\"type\":\"stats\",\"id\":9}");
  EXPECT_EQ(stats.type, RequestType::kStats);

  const Request batch =
      parse_request(batch_json(7, {query_json(1), query_json(2)}));
  EXPECT_EQ(batch.type, RequestType::kBatch);
  EXPECT_EQ(batch.id, 7);
  ASSERT_EQ(batch.queries.size(), 2u);
  ASSERT_TRUE(batch.queries[0].query.has_value());
  EXPECT_EQ(batch.queries[0].query->workers.size(), 4u);
  EXPECT_EQ(batch.queries[0].query->seed, 1u);
}

TEST(ServeRequest, EnvelopeProblemsAreNonFatalProtocolErrors) {
  const std::vector<std::string> bad = {
      "not json at all",
      "[1,2,3]",
      "{\"type\":\"frob\",\"id\":1}",
      "{\"type\":\"ping\"}",                      // Missing id.
      "{\"type\":\"ping\",\"id\":1,\"x\":2}",     // Unknown envelope key.
      "{\"type\":\"batch\",\"id\":1,\"queries\":[]}",  // Empty batch, by contract.
  };
  for (const std::string& payload : bad) {
    try {
      (void)parse_request(payload);
      ADD_FAILURE() << "accepted: " << payload;
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.kind(), ProtocolError::Kind::kBadRequest) << payload;
      EXPECT_FALSE(e.session_fatal()) << payload;
    }
  }
}

TEST(ServeRequest, QueryProblemsLandInTheSlotNotTheEnvelope) {
  const Request batch = parse_request(
      batch_json(3, {query_json(1), "{\"workload\":250,\"bogus\":1}"}));
  ASSERT_EQ(batch.queries.size(), 2u);
  EXPECT_TRUE(batch.queries[0].query.has_value());
  EXPECT_FALSE(batch.queries[1].query.has_value());
  EXPECT_FALSE(batch.queries[1].error.empty());
}

TEST(ServeRequest, SeedAcceptsDecimalStringsBeyondDoublePrecision) {
  const Request batch = parse_request(batch_json(
      1, {"{\"workload\":100,\"seed\":\"18446744073709551615\"}"}));
  ASSERT_TRUE(batch.queries[0].query.has_value());
  EXPECT_EQ(batch.queries[0].query->seed, 18446744073709551615ull);
  const std::string key = canonical_query_key(*batch.queries[0].query);
  EXPECT_NE(key.find("\"seed\":\"18446744073709551615\""), std::string::npos);
}

// --- Canonical keys ---------------------------------------------------------

TEST(ServeCanonicalKey, HomogeneousShorthandMatchesExplicitList) {
  const Request shorthand = parse_request(batch_json(
      1, {"{\"platform\":{\"homogeneous\":{\"workers\":3,\"speed\":2,\"bandwidth\":8}},"
          "\"workload\":500,\"seed\":7}"}));
  const Request explicit_list = parse_request(batch_json(
      1, {"{\"platform\":{\"workers\":["
          "{\"speed\":2,\"bandwidth\":8},{\"speed\":2,\"bandwidth\":8},"
          "{\"speed\":2,\"bandwidth\":8}]},\"workload\":500,\"seed\":7}"}));
  ASSERT_TRUE(shorthand.queries[0].query.has_value());
  ASSERT_TRUE(explicit_list.queries[0].query.has_value());
  EXPECT_EQ(canonical_query_key(*shorthand.queries[0].query),
            canonical_query_key(*explicit_list.queries[0].query));
}

TEST(ServeCanonicalKey, EveryFieldParticipates) {
  const Query base = *parse_request(batch_json(1, {query_json(7)})).queries[0].query;
  const std::string base_key = canonical_query_key(base);

  Query changed = base;
  changed.seed = 8;
  EXPECT_NE(canonical_query_key(changed), base_key);
  changed = base;
  changed.workload = 251;
  EXPECT_NE(canonical_query_key(changed), base_key);
  changed = base;
  changed.algorithm = "umr";
  EXPECT_NE(canonical_query_key(changed), base_key);
  changed = base;
  changed.workers.push_back(changed.workers.front());
  EXPECT_NE(canonical_query_key(changed), base_key);
}

TEST(ServeCanonicalKey, Fnv1a64MatchesReferenceConstants) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);  // FNV-1a offset basis.
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

// --- Plan cache -------------------------------------------------------------

TEST(PlanCache, ExactlyOnceUnderConcurrentLookups) {
  // The TSan target: many client threads race overlapping keys; every
  // distinct key must be solved exactly once and every lookup must land in
  // the hit or miss ledger.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kLookupsEach = 200;
  constexpr std::size_t kDistinctKeys = 16;

  PlanCache cache;
  std::atomic<std::size_t> solves{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t i = 0; i < kLookupsEach; ++i) {
        const std::size_t k = (t * 31 + i) % kDistinctKeys;
        const std::string key = "key-" + std::to_string(k);
        const auto plan = cache.get_or_compute(key, [&, k] {
          solves.fetch_add(1, std::memory_order_relaxed);
          return "plan-" + std::to_string(k);
        });
        ASSERT_EQ(*plan, "plan-" + std::to_string(k));
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(solves.load(), kDistinctKeys);
  const obs::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, kThreads * kLookupsEach);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.misses, kDistinctKeys);
  EXPECT_EQ(stats.insertions, kDistinctKeys);
  EXPECT_EQ(stats.entries, kDistinctKeys);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.failed_solves, 0u);
}

TEST(PlanCache, EvictsLeastRecentlyUsedWithinCapacity) {
  PlanCache cache(PlanCacheOptions{/*capacity=*/2, /*max_bytes=*/1u << 20,
                                   /*shards=*/1});
  const auto solve = [](const std::string& key) {
    return [key] { return "plan:" + key; };
  };
  (void)cache.get_or_compute("a", solve("a"));
  (void)cache.get_or_compute("b", solve("b"));
  (void)cache.get_or_compute("a", solve("a"));  // Refresh a; b becomes LRU.
  (void)cache.get_or_compute("c", solve("c"));  // Evicts b.

  obs::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);

  (void)cache.get_or_compute("a", solve("a"));
  EXPECT_EQ(cache.stats().hits, 2u);  // a survived both passes.
  (void)cache.get_or_compute("b", solve("b"));
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 4u);  // b was really gone.
  EXPECT_EQ(stats.entries + stats.evictions, stats.insertions);
}

TEST(PlanCache, ZeroCapacityIsAccountedPassThrough) {
  PlanCache cache(PlanCacheOptions{/*capacity=*/0, /*max_bytes=*/1u << 20,
                                   /*shards=*/1});
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(*cache.get_or_compute("k", [] { return std::string("v"); }), "v");
  }
  const obs::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.hits, 0u);  // Nothing is ever resident.
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 3u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_cached, 0u);
}

TEST(PlanCache, ByteBudgetBoundsResidency) {
  PlanCache cache(PlanCacheOptions{/*capacity=*/100, /*max_bytes=*/1,
                                   /*shards=*/1});
  (void)cache.get_or_compute("key-one", [] { return std::string(100, 'p'); });
  (void)cache.get_or_compute("key-two", [] { return std::string(100, 'q'); });
  const obs::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);  // Every plan is over the byte budget alone.
  EXPECT_EQ(stats.evictions, stats.insertions);
  EXPECT_EQ(stats.bytes_cached, 0u);
}

TEST(PlanCache, SolverFailureReachesCallerAndAllowsRetry) {
  PlanCache cache;
  EXPECT_THROW((void)cache.get_or_compute(
                   "k", []() -> std::string { throw std::runtime_error("solver died"); }),
               std::runtime_error);
  obs::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.failed_solves, 1u);
  EXPECT_EQ(stats.entries, 0u);  // Failed entry was removed...

  EXPECT_EQ(*cache.get_or_compute("k", [] { return std::string("ok"); }), "ok");
  stats = cache.stats();  // ...so the retry solves and caches.
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.insertions + stats.collisions + stats.failed_solves, stats.misses);
}

// --- Server -----------------------------------------------------------------

TEST(ServeServer, WarmResponsesAreByteIdenticalToCold) {
  const std::string payload =
      batch_json(2, {query_json(7), query_json(8), query_json(7, "umr")});

  Server cached{ServerOptions{}};
  const std::string cold = cached.handle(payload);
  const std::string warm = cached.handle(payload);
  EXPECT_EQ(cold, warm);
  EXPECT_NE(cold.find("\"type\":\"result\""), std::string::npos);
  EXPECT_NE(cold.find("\"makespan\":"), std::string::npos);

  // A pass-through server (capacity 0) recomputes everything and must still
  // produce the same bytes: identity is a property of the solver, the cache
  // only preserves it.
  ServerOptions pass_through;
  pass_through.cache_capacity = 0;
  Server uncached{pass_through};
  EXPECT_EQ(uncached.handle(payload), cold);

  const obs::ServeStats stats = cached.stats();
  EXPECT_EQ(stats.queries, 6u);
  EXPECT_EQ(stats.solves, 3u);
  EXPECT_EQ(stats.plan_cache.hits, 3u);
  EXPECT_TRUE(check::audit_serve_stats(stats, /*drained=*/true).ok());
}

TEST(ServeServer, BatchFanOutWidthDoesNotChangeResponseBytes) {
  std::vector<std::string> queries;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) queries.push_back(query_json(seed));
  const std::string payload = batch_json(4, queries);

  ServerOptions serial;
  serial.batch_threads = 1;
  ServerOptions wide;
  wide.batch_threads = 4;
  Server a{serial};
  Server b{wide};
  EXPECT_EQ(a.handle(payload), b.handle(payload));
}

TEST(ServeServer, MalformedPayloadIsAnsweredInSession) {
  Server server{ServerOptions{}};
  const std::string response = server.handle("definitely not a request");
  EXPECT_NE(response.find("\"type\":\"error\""), std::string::npos);
  EXPECT_NE(response.find("\"id\":-1"), std::string::npos);

  const obs::ServeStats stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.received, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_TRUE(check::audit_serve_stats(stats, /*drained=*/true).ok());
}

TEST(ServeServer, PerQueryErrorsDoNotPoisonTheBatch) {
  Server server{ServerOptions{}};
  const std::string response = server.handle(batch_json(
      5, {query_json(1), query_json(1, "frobnicate"), "{\"bogus\":true}"}));
  EXPECT_NE(response.find("\"makespan\":"), std::string::npos);
  EXPECT_NE(response.find("unknown algorithm"), std::string::npos);

  const obs::ServeStats stats = server.stats();
  EXPECT_EQ(stats.queries, 3u);
  // One parse failure; the unknown algorithm fails in the solver instead.
  EXPECT_EQ(stats.query_errors, 1u);
  EXPECT_EQ(stats.plan_cache.failed_solves, 1u);
  EXPECT_TRUE(check::audit_serve_stats(stats, /*drained=*/true).ok());
}

TEST(ServeServer, PingAndStatsAnswerInline) {
  Server server{ServerOptions{}};
  EXPECT_EQ(server.handle("{\"type\":\"ping\",\"id\":8}"), "{\"type\":\"pong\",\"id\":8}");
  const std::string stats_response = server.handle("{\"type\":\"stats\",\"id\":9}");
  EXPECT_NE(stats_response.find("\"type\":\"stats\""), std::string::npos);
  EXPECT_NE(stats_response.find("\"plan_cache\""), std::string::npos);
}

TEST(ServeServer, RejectNewAdmissionFillsQueueThenRejects) {
  // A width-1 executor runs the submitting client's batch inline, so a
  // client thread pins the server while the main thread probes admission.
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 2;
  Server server{options};

  std::vector<std::string> big;
  for (std::uint64_t seed = 1; seed <= 192; ++seed) big.push_back(query_json(seed));
  std::thread client([&] { (void)server.handle(batch_json(1, big)); });
  while (server.stats().admitted < 1) std::this_thread::yield();

  std::vector<std::future<std::string>> fillers;
  for (std::int64_t id = 10; id < 13; ++id) {
    fillers.push_back(server.submit(batch_json(id, {query_json(7)})));
  }
  // Two waited, the third found the queue full.
  EXPECT_NE(fillers[2].get().find("rejected: request queue is full"), std::string::npos);
  EXPECT_NE(fillers[0].get().find("\"type\":\"result\""), std::string::npos);
  EXPECT_NE(fillers[1].get().find("\"type\":\"result\""), std::string::npos);
  client.join();
  server.wait_idle();

  const obs::ServeStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queue_depth_high_water, 2u);
  EXPECT_EQ(stats.admitted + stats.rejected + stats.shed, stats.received);
  EXPECT_TRUE(check::audit_serve_stats(stats, /*drained=*/true).ok());
}

TEST(ServeServer, ShedOldestDisplacesTheLongestWaiter) {
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  options.admission = jobs::AdmissionPolicy::kShedOldest;
  Server server{options};

  std::vector<std::string> big;
  for (std::uint64_t seed = 1; seed <= 192; ++seed) big.push_back(query_json(seed));
  std::thread client([&] { (void)server.handle(batch_json(1, big)); });
  while (server.stats().admitted < 1) std::this_thread::yield();

  std::future<std::string> first = server.submit(batch_json(10, {query_json(3)}));
  std::future<std::string> second = server.submit(batch_json(11, {query_json(4)}));
  EXPECT_NE(first.get().find("shed: displaced by a newer request"), std::string::npos);
  EXPECT_NE(second.get().find("\"type\":\"result\""), std::string::npos);
  client.join();
  server.wait_idle();

  const obs::ServeStats stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_TRUE(check::audit_serve_stats(stats, /*drained=*/true).ok());
}

TEST(ServeServer, StreamSessionAnswersInRequestOrder) {
  const std::string batch = batch_json(2, {query_json(7), query_json(8)});
  std::stringstream in;
  write_frame(in, "{\"type\":\"ping\",\"id\":1}");
  write_frame(in, batch);
  write_frame(in, batch);  // Identical request: must serve from cache, same bytes.
  write_frame(in, "{\"type\":\"stats\",\"id\":9}");

  std::stringstream out;
  Server server{ServerOptions{}};
  server.serve_stream(in, out);

  std::vector<std::string> responses;
  while (auto frame = read_frame(out)) responses.push_back(*std::move(frame));
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0], "{\"type\":\"pong\",\"id\":1}");
  EXPECT_EQ(responses[1], responses[2]);
  EXPECT_NE(responses[3].find("\"type\":\"stats\""), std::string::npos);
  EXPECT_EQ(server.stats().plan_cache.hits, 2u);
}

TEST(ServeServer, StreamSessionClosesOnFatalFramingError) {
  std::stringstream in;
  write_frame(in, "{\"type\":\"ping\",\"id\":1}");
  in << "XX garbage after a valid frame";

  std::stringstream out;
  Server server{ServerOptions{}};
  server.serve_stream(in, out);

  std::vector<std::string> responses;
  while (auto frame = read_frame(out)) responses.push_back(*std::move(frame));
  ASSERT_EQ(responses.size(), 2u);  // The in-flight ping, then the fatal error.
  EXPECT_EQ(responses[0], "{\"type\":\"pong\",\"id\":1}");
  EXPECT_NE(responses[1].find("\"type\":\"error\""), std::string::npos);
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

// --- Facade -----------------------------------------------------------------

TEST(ServeFacade, ValidateNamesEveryProblem) {
  EXPECT_TRUE(rumr::Serve().validate().empty());

  rumr::Serve bad;
  bad.cache_shards(0)
      .queue_capacity(0)
      .admission(jobs::AdmissionPolicy::kShedOldest);
  const std::vector<std::string> problems = bad.validate();
  EXPECT_EQ(problems.size(), 2u);
  EXPECT_THROW((void)bad.make_server(), std::invalid_argument);
}

TEST(ServeFacade, RunPumpsASessionAndAuditsTheLedger) {
  std::stringstream in;
  write_frame(in, batch_json(1, {query_json(5)}));
  write_frame(in, batch_json(1, {query_json(5)}));

  std::stringstream out;
  const obs::ServeStats stats = rumr::Serve().threads(2).run(in, out);
  EXPECT_EQ(stats.received, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.plan_cache.hits, 1u);

  const std::optional<std::string> first = read_frame(out);
  const std::optional<std::string> second = read_frame(out);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(*first, *second);
}

// --- Config bridge ----------------------------------------------------------

TEST(ServeConfig, ParsesTheFullSection) {
  const ServerOptions options = server_options_from_config(config::ConfigFile::parse(
      "[serve]\n"
      "threads = 3\n"
      "batch_threads = 2\n"
      "cache_capacity = 128\n"
      "cache_bytes = 4096\n"
      "cache_shards = 4\n"
      "queue = priority\n"
      "admission = shed\n"
      "queue_capacity = 9\n"
      "audit = false\n"));
  EXPECT_EQ(options.threads, 3u);
  EXPECT_EQ(options.batch_threads, 2u);
  EXPECT_EQ(options.cache_capacity, 128u);
  EXPECT_EQ(options.cache_max_bytes, 4096u);
  EXPECT_EQ(options.cache_shards, 4u);
  EXPECT_EQ(options.discipline, jobs::QueueDiscipline::kPriority);
  EXPECT_EQ(options.admission, jobs::AdmissionPolicy::kShedOldest);
  EXPECT_EQ(options.queue_capacity, 9u);
  EXPECT_FALSE(options.audit);
}

TEST(ServeConfig, DefaultsWhenSectionAbsentAndRejectsBadEnums) {
  const ServerOptions defaults =
      server_options_from_config(config::ConfigFile::parse(""));
  EXPECT_EQ(defaults.cache_capacity, ServerOptions{}.cache_capacity);
  EXPECT_EQ(defaults.admission, jobs::AdmissionPolicy::kRejectNew);

  EXPECT_THROW((void)server_options_from_config(
                   config::ConfigFile::parse("[serve]\nadmission = drop\n")),
               config::ConfigError);
  EXPECT_THROW((void)server_options_from_config(
                   config::ConfigFile::parse("[serve]\nqueue = lifo\n")),
               config::ConfigError);
}

}  // namespace
}  // namespace rumr::serve
