// Unit tests for the star platform model (platform/platform.hpp), section
// 3.1 of the paper.

#include "platform/platform.hpp"

#include <gtest/gtest.h>

namespace rumr::platform {
namespace {

TEST(StarPlatform, RejectsEmptyPlatform) {
  EXPECT_THROW(StarPlatform(std::vector<WorkerSpec>{}), PlatformError);
  EXPECT_THROW(StarPlatform::homogeneous({.workers = 0}), PlatformError);
}

TEST(StarPlatform, RejectsInvalidRates) {
  EXPECT_THROW(StarPlatform({{0.0, 1.0, 0.0, 0.0, 0.0}}), PlatformError);
  EXPECT_THROW(StarPlatform({{-1.0, 1.0, 0.0, 0.0, 0.0}}), PlatformError);
  EXPECT_THROW(StarPlatform({{1.0, 0.0, 0.0, 0.0, 0.0}}), PlatformError);
}

TEST(StarPlatform, RejectsNegativeLatencies) {
  EXPECT_THROW(StarPlatform({{1.0, 1.0, -0.1, 0.0, 0.0}}), PlatformError);
  EXPECT_THROW(StarPlatform({{1.0, 1.0, 0.0, -0.1, 0.0}}), PlatformError);
  EXPECT_THROW(StarPlatform({{1.0, 1.0, 0.0, 0.0, -0.1}}), PlatformError);
}

TEST(StarPlatform, HomogeneousBuilderReplicatesSpec) {
  const StarPlatform p = StarPlatform::homogeneous(
      {.workers = 5, .speed = 2.0, .bandwidth = 20.0, .comp_latency = 0.3,
       .comm_latency = 0.1, .transfer_latency = 0.05});
  EXPECT_EQ(p.size(), 5u);
  EXPECT_TRUE(p.is_homogeneous());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.worker(i).speed, 2.0);
    EXPECT_EQ(p.worker(i).bandwidth, 20.0);
  }
  EXPECT_DOUBLE_EQ(p.total_speed(), 10.0);
}

TEST(StarPlatform, Equation1ComputationTime) {
  // Tcomp = cLat + chunk / S (paper Eq. 1).
  const StarPlatform p = StarPlatform::homogeneous(
      {.workers = 1, .speed = 4.0, .bandwidth = 10.0, .comp_latency = 0.5});
  EXPECT_DOUBLE_EQ(p.comp_time(0, 8.0), 0.5 + 2.0);
}

TEST(StarPlatform, Equation2CommunicationTime) {
  // Tcomm = nLat + chunk / B + tLat (paper Eq. 2); the serial part excludes tLat.
  const StarPlatform p = StarPlatform::homogeneous(
      {.workers = 1, .speed = 1.0, .bandwidth = 5.0, .comp_latency = 0.0,
       .comm_latency = 0.2, .transfer_latency = 0.1});
  EXPECT_DOUBLE_EQ(p.comm_serial_time(0, 10.0), 0.2 + 2.0);
  EXPECT_DOUBLE_EQ(p.comm_time(0, 10.0), 0.2 + 2.0 + 0.1);
}

TEST(StarPlatform, ThetaAndUtilizationRatio) {
  // theta = B / (N*S); utilization A = N*S/B = 1/theta.
  const StarPlatform p = StarPlatform::homogeneous(
      {.workers = 10, .speed = 1.0, .bandwidth = 15.0});
  EXPECT_DOUBLE_EQ(p.theta(), 1.5);
  EXPECT_DOUBLE_EQ(p.utilization_ratio(), 10.0 / 15.0);
}

TEST(StarPlatform, ThetaThrowsOnHeterogeneous) {
  const StarPlatform p({{1.0, 10.0, 0.0, 0.0, 0.0}, {2.0, 10.0, 0.0, 0.0, 0.0}});
  EXPECT_FALSE(p.is_homogeneous());
  EXPECT_THROW((void)p.theta(), PlatformError);
}

TEST(StarPlatform, HeterogeneousUtilizationSumsPerWorker) {
  const StarPlatform p({{1.0, 4.0, 0.0, 0.0, 0.0}, {2.0, 8.0, 0.0, 0.0, 0.0}});
  EXPECT_DOUBLE_EQ(p.utilization_ratio(), 0.25 + 0.25);
}

TEST(StarPlatform, SubsetSelectsAndReorders) {
  const StarPlatform p({{1.0, 10.0, 0.0, 0.0, 0.0},
                        {2.0, 20.0, 0.0, 0.0, 0.0},
                        {3.0, 30.0, 0.0, 0.0, 0.0}});
  const StarPlatform sub = p.subset({2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.worker(0).speed, 3.0);
  EXPECT_EQ(sub.worker(1).speed, 1.0);
}

TEST(StarPlatform, DescribeMentionsShape) {
  const StarPlatform homo = StarPlatform::homogeneous({.workers = 3, .bandwidth = 6.0});
  EXPECT_NE(homo.describe().find("homogeneous"), std::string::npos);
  const StarPlatform hetero({{1.0, 10.0, 0.0, 0.0, 0.0}, {2.0, 10.0, 0.0, 0.0, 0.0}});
  EXPECT_NE(hetero.describe().find("heterogeneous"), std::string::npos);
}

TEST(StarPlatform, WorkerAccessorBoundsChecked) {
  const StarPlatform p = StarPlatform::homogeneous({.workers = 2, .bandwidth = 4.0});
  EXPECT_THROW((void)p.worker(2), std::out_of_range);
}

}  // namespace
}  // namespace rumr::platform
