/// \file test_race.cpp
/// Best-arm racing (race/race.hpp): statistical certification of the
/// successive-elimination core against synthetic known-gap oracles, the
/// anytime-bound helpers, thread byte-identity of engine-backed races, the
/// race auditor's violation coverage, and the facade's validation parity.
///
/// The certification suite is the empirical license for the observed-range
/// approximation documented in race/bounds.hpp: across >= 1000 seeded trials
/// per oracle family, the wrong-winner rate must stay at or below delta.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "api/rumr.hpp"
#include "check/race_audit.hpp"
#include "race/bounds.hpp"
#include "race/race.hpp"
#include "race/result.hpp"
#include "stats/rng.hpp"
#include "sweep/grid.hpp"
#include "sweep/scheduler_factory.hpp"

namespace {

using namespace rumr;

// --- helpers -----------------------------------------------------------------

bool same_accumulator(const stats::Accumulator& a, const stats::Accumulator& b) {
  return a.count() == b.count() && a.sum() == b.sum() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() && a.max() == b.max();
}

void expect_same_race(const race::RaceResult& a, const race::RaceResult& b) {
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_samples, b.total_samples);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
  ASSERT_EQ(a.arms.size(), b.arms.size());
  for (std::size_t i = 0; i < a.arms.size(); ++i) {
    EXPECT_EQ(a.arms[i].name, b.arms[i].name);
    EXPECT_EQ(a.arms[i].samples, b.arms[i].samples);
    EXPECT_EQ(a.arms[i].eliminated, b.arms[i].eliminated);
    EXPECT_EQ(a.arms[i].eliminated_round, b.arms[i].eliminated_round);
    EXPECT_EQ(a.arms[i].lane_fingerprint, b.arms[i].lane_fingerprint);
    EXPECT_TRUE(same_accumulator(a.arms[i].reward, b.arms[i].reward));
  }
  ASSERT_EQ(a.eliminations.size(), b.eliminations.size());
  for (std::size_t i = 0; i < a.eliminations.size(); ++i) {
    EXPECT_EQ(a.eliminations[i].arm, b.eliminations[i].arm);
    EXPECT_EQ(a.eliminations[i].round, b.eliminations[i].round);
    EXPECT_EQ(a.eliminations[i].arm_lcb, b.eliminations[i].arm_lcb);
    EXPECT_EQ(a.eliminations[i].best_ucb, b.eliminations[i].best_ucb);
  }
}

/// A deterministic two-arm oracle with a structural gap: arm 0 always 0, arm
/// 1 always 1 (plus a tiny rep-dependent wobble so variances are nonzero).
/// Separates after a handful of rounds — the cheap source of audit-clean
/// results for the tamper tests.
race::RaceResult separable_race() {
  const race::ArmOracle oracle = [](std::size_t arm, std::size_t rep) {
    return static_cast<double>(arm) + 1e-3 * static_cast<double>(rep % 7);
  };
  race::RaceOptions options;
  options.block = 8;
  options.max_reps = 512;
  options.threads = 1;
  return race::run_race({"zero", "one"}, oracle, options);
}

// --- bounds ------------------------------------------------------------------

TEST(RaceBounds, RoundDeltaUnionStaysWithinDelta) {
  const double delta = 0.05;
  const std::size_t arms = 7;
  double spent = 0.0;
  for (std::size_t round = 1; round <= 10000; ++round) {
    spent += static_cast<double>(arms) * race::round_delta(delta, arms, round);
  }
  // sum_t 1/(t(t+1)) telescopes to 1: the union over arms and rounds can
  // never spend more than delta.
  EXPECT_LE(spent, delta * (1.0 + 1e-12));
  EXPECT_GT(spent, delta * 0.999);  // ...and it uses nearly all of it.
}

TEST(RaceBounds, ConfidenceRadiusGuardsAndMonotonicity) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(race::confidence_radius(1.0, 1.0, 0, 0.01), inf);
  EXPECT_EQ(race::confidence_radius(1.0, 1.0, 1, 0.01), inf);
  EXPECT_EQ(race::confidence_radius(1.0, 1.0, 100, 0.0), inf);
  EXPECT_EQ(race::confidence_radius(1.0, 1.0, 100, 1.0), inf);

  const double r100 = race::confidence_radius(1.0, 2.0, 100, 0.01);
  const double r400 = race::confidence_radius(1.0, 2.0, 400, 0.01);
  EXPECT_GT(r100, 0.0);
  EXPECT_LT(r400, r100);  // Shrinks with samples.
  // Grows with variance, range, and confidence demand.
  EXPECT_GT(race::confidence_radius(4.0, 2.0, 100, 0.01), r100);
  EXPECT_GT(race::confidence_radius(1.0, 8.0, 100, 0.01), r100);
  EXPECT_GT(race::confidence_radius(1.0, 2.0, 100, 0.0001), r100);
}

// --- statistical certification (synthetic known-gap oracles) -----------------

TEST(RaceCertification, GaussianArmsStayWithinDelta) {
  const std::vector<std::string> names = {"best", "second", "third", "worst"};
  const double means[] = {1.0, 1.3, 1.6, 2.0};
  const double sigma = 0.3;  // Runner-up gap equals one standard deviation.

  race::RaceOptions options;
  options.delta = 0.05;
  options.block = 50;
  options.max_reps = 4000;
  options.threads = 1;

  const std::size_t trials = 1000;
  std::size_t wrong = 0;
  std::size_t exhausted = 0;
  std::size_t top2_samples = 0;
  std::size_t rest_samples = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const race::ArmOracle oracle = [&means, sigma, trial](std::size_t arm, std::size_t rep) {
      // Pure function of (arm, rep): one throwaway engine per draw, seeded
      // from the full coordinate — the determinism contract the core needs.
      stats::Rng rng(stats::mix_seed(0xc0ffee, trial, arm, rep));
      return means[arm] + sigma * rng.standard_normal();
    };
    // audit_result stays on: every one of the 1000 ledgers also replays
    // through check::audit_race_result (throws on any violation).
    const race::RaceResult result = race::run_race(names, oracle, options);
    if (result.budget_exhausted) {
      ++exhausted;
    } else if (result.winner != 0) {
      ++wrong;
    }
    top2_samples += result.arms[0].samples + result.arms[1].samples;
    rest_samples += result.arms[2].samples + result.arms[3].samples;
  }

  // The certification guarantee: wrong winners at most delta of the trials.
  EXPECT_LE(static_cast<double>(wrong),
            options.delta * static_cast<double>(trials));
  // The budget is sized so exhaustion stays rare — an exhausted race makes
  // no certification claim, so a high rate would hollow the test out.
  EXPECT_LE(exhausted, trials / 20);
  // Sampling concentrates where the decision is hard: the top-2 arms must
  // absorb the clear majority of the simulation effort.
  EXPECT_GT(top2_samples, 2 * rest_samples);
}

TEST(RaceCertification, BernoulliArmsStayWithinDelta) {
  const std::vector<std::string> names = {"p20", "p50", "p80"};
  const double ps[] = {0.2, 0.5, 0.8};

  race::RaceOptions options;
  options.delta = 0.05;
  options.block = 50;
  options.max_reps = 2000;
  options.threads = 1;

  // Constant early blocks (all-zero or all-one) give an arm zero variance
  // AND zero per-arm spread — the degenerate case the pooled range exists
  // for. A spurious early elimination here would show up as a wrong winner.
  const std::size_t trials = 250;
  std::size_t wrong = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const race::ArmOracle oracle = [&ps, trial](std::size_t arm, std::size_t rep) {
      stats::Rng rng(stats::mix_seed(0xbead, trial, arm, rep));
      return rng.uniform01() < ps[arm] ? 1.0 : 0.0;
    };
    const race::RaceResult result = race::run_race(names, oracle, options);
    if (!result.budget_exhausted && result.winner != 0) ++wrong;
  }
  EXPECT_LE(static_cast<double>(wrong),
            options.delta * static_cast<double>(trials));
}

// --- determinism -------------------------------------------------------------

TEST(Race, SyntheticRaceByteIdenticalAcrossThreads) {
  const std::vector<std::string> names = {"a", "b", "c", "d", "e"};
  const race::ArmOracle oracle = [](std::size_t arm, std::size_t rep) {
    stats::Rng rng(stats::mix_seed(0xfeed, arm, rep));
    return static_cast<double>(arm) * 0.25 + rng.standard_normal();
  };
  race::RaceOptions options;
  options.block = 16;
  options.max_reps = 256;

  options.threads = 1;
  const race::RaceResult reference = race::run_race(names, oracle, options);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
    options.threads = threads;
    expect_same_race(race::run_race(names, oracle, options), reference);
  }
}

TEST(Race, EngineRaceByteIdenticalAcrossThreads) {
  const sweep::SweepPlatform platform = sweep::SweepPlatform::from_config({6, 1.5, 0.1, 0.05});
  const std::vector<sweep::AlgorithmSpec> arms = {sweep::rumr_spec(), sweep::umr_spec(),
                                                  sweep::factoring_spec()};
  race::RaceOptions options;
  options.block = 8;
  options.max_reps = 48;
  options.w_total = 200.0;

  options.threads = 1;
  const race::RaceResult reference = race::race_cell(platform, arms, 0.3, options);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
    options.threads = threads;
    expect_same_race(race::race_cell(platform, arms, 0.3, options), reference);
  }
}

TEST(Race, SlowdownObjectiveRescalesWithoutReordering) {
  const sweep::SweepPlatform platform = sweep::SweepPlatform::from_config({6, 1.5, 0.1, 0.05});
  const std::vector<sweep::AlgorithmSpec> arms = {sweep::rumr_spec(), sweep::umr_spec(),
                                                  sweep::factoring_spec()};
  race::RaceOptions options;
  options.block = 8;
  options.max_reps = 32;
  options.w_total = 200.0;
  options.threads = 1;
  const race::RaceResult makespan = race::race_cell(platform, arms, 0.3, options);

  options.objective = race::Objective::kSlowdown;
  const race::RaceResult slowdown = race::race_cell(platform, arms, 0.3, options);

  EXPECT_EQ(makespan.winner, slowdown.winner);
  const double bound =
      analysis::makespan_lower_bounds(platform.platform, options.w_total).combined();
  ASSERT_GT(bound, 0.0);
  for (std::size_t a = 0; a < makespan.arms.size(); ++a) {
    EXPECT_EQ(makespan.arms[a].samples, slowdown.arms[a].samples);
    EXPECT_NEAR(slowdown.arms[a].reward.mean(), makespan.arms[a].reward.mean() / bound,
                1e-9 * makespan.arms[a].reward.mean());
    EXPECT_GE(slowdown.arms[a].reward.mean(), 1.0);  // Never beats the bound.
  }
}

// --- the auditor's coverage --------------------------------------------------

TEST(RaceAudit, CleanLedgerPasses) {
  const race::RaceResult result = separable_race();
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.winner, 0u);
  ASSERT_EQ(result.eliminations.size(), 1u);
  EXPECT_TRUE(check::audit_race_result(result).ok());
}

TEST(RaceAudit, CatchesSampleLedgerMismatch) {
  race::RaceResult result = separable_race();
  result.total_samples += 1;
  const check::AuditReport report = check::audit_race_result(result);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("sample ledger"), std::string::npos);
}

TEST(RaceAudit, CatchesEliminatedWinner) {
  race::RaceResult result = separable_race();
  result.winner = 1;  // The eliminated arm.
  const check::AuditReport report = check::audit_race_result(result);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("was eliminated"), std::string::npos);
}

TEST(RaceAudit, CatchesNonExcludingBound) {
  race::RaceResult result = separable_race();
  // Claim the decision was made on a bound that did not actually exclude
  // the incumbent (and no longer recomputes from the tuple).
  result.eliminations.front().arm_lcb = result.eliminations.front().best_ucb - 1.0;
  const check::AuditReport report = check::audit_race_result(result);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("did NOT exclude"), std::string::npos);
}

TEST(RaceAudit, CatchesInconsistentBudgetFlag) {
  race::RaceResult result = separable_race();
  result.budget_exhausted = true;  // ...but only one arm survives.
  EXPECT_FALSE(check::audit_race_result(result).ok());
}

TEST(RaceAudit, CatchesPostEliminationSampling) {
  race::RaceResult result = separable_race();
  result.arms[1].reward.add(0.5);  // The eliminated arm kept sampling.
  result.arms[1].samples += 1;
  result.total_samples += 1;
  const check::AuditReport report = check::audit_race_result(result);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("kept sampling"), std::string::npos);
}

// --- validation parity -------------------------------------------------------

TEST(Race, OptionsValidateListsEveryProblem) {
  race::RaceOptions options;
  options.delta = 0.0;
  options.block = 1;
  options.max_reps = 1;
  options.w_total = -5.0;
  EXPECT_EQ(options.validate().size(), 4u);
}

TEST(Race, RunRaceRejectsEmptyRequest) {
  race::RaceOptions options;
  EXPECT_THROW((void)race::run_race({}, nullptr, options), std::invalid_argument);
}

TEST(Race, BuilderValidateReportsEveryProblem) {
  rumr::Race builder;
  EXPECT_TRUE(builder.validate().empty());  // Defaults are executable.

  builder.policies(std::vector<std::string>{"no-such-policy"}).delta(2.0).error(-0.1);
  const std::vector<std::string> problems = builder.validate();
  EXPECT_EQ(problems.size(), 3u);
  EXPECT_THROW((void)builder.execute(), std::invalid_argument);
}

TEST(Race, SweepFacadeRaceMatchesRaceCell) {
  const sweep::PlatformConfig config{6, 1.5, 0.1, 0.05};
  const std::vector<sweep::AlgorithmSpec> arms = {sweep::rumr_spec(), sweep::umr_spec(),
                                                  sweep::factoring_spec()};
  rumr::Sweep sweep;
  sweep.platforms(std::vector<sweep::PlatformConfig>{config})
      .errors({0.3})
      .policies(arms)
      .workload(200.0)
      .race(0.05)
      .reps(48)
      .rep_block(8)
      .threads(4);
  const std::vector<race::RaceCell> cells = sweep.execute_race();
  ASSERT_EQ(cells.size(), 1u);

  race::RaceOptions options;
  options.block = 8;
  options.max_reps = 48;
  options.w_total = 200.0;
  options.threads = 1;
  const race::RaceResult direct =
      race::race_cell(sweep::SweepPlatform::from_config(config), arms, 0.3, options);
  expect_same_race(cells.front().result, direct);
}

TEST(Race, SweepFacadeCatchesModeConflicts) {
  rumr::Sweep raced_and_open;
  raced_and_open.platforms(std::vector<sweep::PlatformConfig>{{6, 1.5, 0.1, 0.05}})
      .loads({0.5})
      .race(0.05);
  const std::vector<std::string> problems = raced_and_open.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems.front().find("either open-system or raced"), std::string::npos);

  rumr::Sweep closed_with_race_sink;
  closed_with_race_sink.platforms(std::vector<sweep::PlatformConfig>{{6, 1.5, 0.1, 0.05}})
      .on_cell(race::RaceConsumer([](const race::RaceCell&) {}));
  bool flagged = false;
  for (const std::string& p : closed_with_race_sink.validate()) {
    flagged = flagged || p.find("race on_cell consumer") != std::string::npos;
  }
  EXPECT_TRUE(flagged);

  rumr::Sweep raced_with_closed_sink;
  raced_with_closed_sink.platforms(std::vector<sweep::PlatformConfig>{{6, 1.5, 0.1, 0.05}})
      .race(0.05)
      .on_cell(sweep::CellConsumer([](const sweep::SweepCell&) {}));
  flagged = false;
  for (const std::string& p : raced_with_closed_sink.validate()) {
    flagged = flagged || p.find("closed-system on_cell consumer") != std::string::npos;
  }
  EXPECT_TRUE(flagged);

  EXPECT_THROW((void)raced_with_closed_sink.execute(), std::invalid_argument);
}

}  // namespace
