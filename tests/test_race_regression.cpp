/// \file test_race_regression.cpp
/// Raced-winner cross-check property: on pinned seeds, the winner a race
/// certifies must equal the argmin of a full fixed-repetition sweep over the
/// SAME seed lanes — two Table 1 platforms x two error regimes. The race and
/// the fixed sweep both derive repetition seeds from
/// sweep::derive_rep_seed(base_seed, label, error, rep), so the fixed sweep's
/// per-arm means are exactly the full-lane means the race's survivors were
/// converging to; a disagreement means the elimination rule discarded the
/// true argmin. Everything is deterministic (pinned base seed), so this is a
/// regression property, not a flaky statistical one — hence the
/// "regression" ctest label.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "race/race.hpp"
#include "sweep/grid.hpp"
#include "sweep/runner.hpp"
#include "sweep/scheduler_factory.hpp"

namespace {

using namespace rumr;

TEST(RaceRegression, RacedWinnerMatchesFixedRepArgmin) {
  const std::vector<sweep::SweepPlatform> platforms = {
      sweep::SweepPlatform::from_config({10, 1.5, 0.1, 0.05}),
      sweep::SweepPlatform::from_config({20, 1.2, 0.3, 0.1}),
  };
  const std::vector<double> errors = {0.3, 0.45};
  const std::vector<sweep::AlgorithmSpec> lineup = sweep::extended_competitors();
  constexpr std::uint64_t kSeed = 0x5eed5eed5eedULL;
  constexpr std::size_t kBudget = 512;
  constexpr double kWorkload = 300.0;

  // The fixed-repetition reference: every arm spends the full budget.
  sweep::SweepOptions fixed;
  fixed.errors = errors;
  fixed.repetitions = kBudget;
  fixed.w_total = kWorkload;
  fixed.base_seed = kSeed;
  fixed.threads = 4;
  std::map<std::pair<std::size_t, std::size_t>, std::pair<std::string, double>> argmin;
  sweep::run_sweep_streaming(platforms, lineup, fixed, [&argmin](const sweep::SweepCell& cell) {
    const auto key = std::make_pair(cell.platform_index, cell.error_index);
    const double mean = cell.stats.makespan.mean();
    const auto it = argmin.find(key);
    if (it == argmin.end() || mean < it->second.second) {
      argmin[key] = {cell.algorithm, mean};
    }
  });
  ASSERT_EQ(argmin.size(), platforms.size() * errors.size());

  // The raced grid over the same seed lanes.
  race::RaceOptions options;
  options.block = 16;
  options.max_reps = kBudget;
  options.base_seed = kSeed;
  options.w_total = kWorkload;
  options.threads = 4;
  std::size_t cells = 0;
  race::run_race_sweep(platforms, lineup, errors, options, [&](const race::RaceCell& cell) {
    ++cells;
    const std::string& raced = cell.result.arms[cell.result.winner].name;
    const auto& fixed_best = argmin.at({cell.platform_index, cell.error_index});
    EXPECT_EQ(raced, fixed_best.first)
        << cell.platform_label << " err=" << cell.error << ": race certified '" << raced
        << "' (budget_exhausted=" << cell.result.budget_exhausted
        << ") but the fixed-rep argmin is '" << fixed_best.first << "' (mean "
        << fixed_best.second << ")";
  });
  EXPECT_EQ(cells, platforms.size() * errors.size());
}

}  // namespace
