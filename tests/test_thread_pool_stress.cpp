// TSan-targeted stress tests for rumr::sweep::ThreadPool and parallel_for.
// These are sized to finish quickly in a plain build yet give
// -DRUMR_SANITIZE=thread real interleavings to chew on: concurrent
// submitters, wait_idle racing submit, exception propagation, and
// construction/destruction churn. All assertions are on atomics or on data
// published via the pool's own synchronization, so a clean TSan run means
// the pool's locking — not the test — provides the ordering.

#include "sweep/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace rumr::sweep {
namespace {

TEST(ParallelForStress, DisjointWritesAndAtomicSum) {
  constexpr std::size_t kCount = 5000;
  std::vector<std::size_t> out(kCount, 0);
  std::atomic<std::size_t> sum{0};
  parallel_for(kCount, [&](std::size_t i) {
    out[i] = i + 1;  // Disjoint per-index slot: a race here is a pool bug.
    sum.fetch_add(1, std::memory_order_relaxed);
  }, 4);
  EXPECT_EQ(sum.load(), kCount);
  // Every index ran exactly once.
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}),
            kCount * (kCount + 1) / 2);
}

TEST(ParallelForStress, PropagatesFirstExceptionAfterJoin) {
  std::atomic<std::size_t> ran{0};
  try {
    parallel_for(1000, [&](std::size_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 137) throw std::runtime_error("index 137 failed");
    }, 4);
    FAIL() << "exception did not propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "index 137 failed");
  }
  // All workers joined before the rethrow: the count is final, not racing.
  EXPECT_GE(ran.load(), 1u);
  EXPECT_LE(ran.load(), 1000u);
}

TEST(ParallelForStress, ManyExceptionsStillRethrowExactlyOne) {
  EXPECT_THROW(
      parallel_for(500, [](std::size_t i) {
        if (i % 7 == 0) throw std::invalid_argument("multiple of seven");
      }, 8),
      std::invalid_argument);
}

TEST(ParallelForStress, NestedParallelForDoesNotDeadlock) {
  std::atomic<std::size_t> inner_total{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(16, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    }, 2);
  }, 4);
  EXPECT_EQ(inner_total.load(), 8u * 16u);
}

TEST(ThreadPoolStress, ConcurrentSubmittersRaceWaitIdle) {
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kTasksEach = 500;
  ThreadPool pool(4);
  std::atomic<std::size_t> done{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &done] {
      for (std::size_t i = 0; i < kTasksEach; ++i) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  // Race wait_idle against the submitters: it may observe any intermediate
  // quiesce point, but must never tear state or deadlock.
  for (int i = 0; i < 50; ++i) pool.wait_idle();
  for (std::thread& t : submitters) t.join();
  pool.wait_idle();  // All submits are in; now the count must be final.
  EXPECT_EQ(done.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStress, WaitIdleFromMultipleThreads) {
  ThreadPool pool(2);
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < 200; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  std::vector<std::thread> waiters;
  waiters.reserve(3);
  for (int w = 0; w < 3; ++w) waiters.emplace_back([&pool] { pool.wait_idle(); });
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(done.load(), 200u);
}

TEST(ThreadPoolStress, TasksSubmittingTasks) {
  ThreadPool pool(3);
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < 50; ++i) {
    pool.submit([&pool, &done] {
      done.fetch_add(1, std::memory_order_relaxed);
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  // wait_idle counts queued work: once idle, the re-submitted tasks ran too.
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100u);
}

TEST(ThreadPoolStress, DestructionAfterBurstsChurn) {
  // Construct/destruct repeatedly with work in flight at teardown request
  // time; the destructor must drain cleanly with no leaks or races.
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> done{0};
    {
      ThreadPool pool(2);
      for (std::size_t i = 0; i < 64; ++i) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
      pool.wait_idle();
    }
    EXPECT_EQ(done.load(), 64u);
  }
}

TEST(ThreadPoolStress, ParallelForFromManyThreadsAtOnce) {
  // Two concurrent parallel_for calls share nothing; each spawns its own
  // workers. TSan verifies the implementations don't touch hidden globals.
  std::atomic<std::size_t> a{0};
  std::atomic<std::size_t> b{0};
  std::thread t1([&a] {
    parallel_for(1000, [&a](std::size_t) { a.fetch_add(1, std::memory_order_relaxed); }, 3);
  });
  std::thread t2([&b] {
    parallel_for(1000, [&b](std::size_t) { b.fetch_add(1, std::memory_order_relaxed); }, 3);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 1000u);
  EXPECT_EQ(b.load(), 1000u);
}

}  // namespace
}  // namespace rumr::sweep
