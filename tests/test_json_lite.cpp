// Tests for the minimal JSON reader (util/json_lite.hpp) used by the golden
// fixtures and the perf-gate baselines.

#include "util/json_lite.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rumr::util {
namespace {

TEST(JsonLite, ParsesFlatRateObject) {
  const JsonValue doc = JsonValue::parse(R"({"a": 1.5, "b": 2e6, "c": -3})");
  ASSERT_EQ(doc.as_object().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(doc.at("b").as_number(), 2e6);
  EXPECT_DOUBLE_EQ(doc.at("c").as_number(), -3.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), std::runtime_error);
}

TEST(JsonLite, ParsesNestedStructure) {
  const JsonValue doc = JsonValue::parse(
      R"({"name": "homogeneous-10", "cases": [{"ok": true}, {"ok": false}], "none": null})");
  EXPECT_EQ(doc.at("name").as_string(), "homogeneous-10");
  ASSERT_EQ(doc.at("cases").as_array().size(), 2u);
  EXPECT_TRUE(doc.at("cases").as_array()[0].at("ok").as_bool());
  EXPECT_FALSE(doc.at("cases").as_array()[1].at("ok").as_bool());
}

TEST(JsonLite, RoundTripsFullPrecisionDoubles) {
  // Golden fixtures are written with 17 significant digits; the reader must
  // reproduce the exact bit pattern.
  const double value = 134.88428544543922;
  const JsonValue doc = JsonValue::parse(R"({"makespan": 134.88428544543922})");
  EXPECT_EQ(doc.at("makespan").as_number(), value);
}

TEST(JsonLite, ParsesStringEscapes) {
  const JsonValue doc = JsonValue::parse(R"({"s": "a\"b\\c\nd"})");
  EXPECT_EQ(doc.at("s").as_string(), "a\"b\\c\nd");
}

TEST(JsonLite, KindMismatchesThrow) {
  const JsonValue doc = JsonValue::parse(R"({"n": 1})");
  EXPECT_THROW((void)doc.at("n").as_string(), std::runtime_error);
  EXPECT_THROW((void)doc.at("n").as_bool(), std::runtime_error);
  EXPECT_THROW((void)doc.at("n").as_array(), std::runtime_error);
  EXPECT_THROW((void)doc.as_number(), std::runtime_error);
}

TEST(JsonLite, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": })"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": 1e})"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": inf})"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": "unterminated})"), std::runtime_error);
  // \u escapes are deliberately unsupported (the repo's writers never emit
  // them); the reader must reject rather than silently mangle.
  EXPECT_THROW((void)JsonValue::parse("{\"a\": \"\\u0041\"}"), std::runtime_error);
}

TEST(JsonLite, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW((void)JsonValue::parse(deep), std::runtime_error);
}

}  // namespace
}  // namespace rumr::util
