// Tests for the minimal JSON reader (util/json_lite.hpp) used by the golden
// fixtures and the perf-gate baselines.

#include "util/json_lite.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

namespace rumr::util {
namespace {

TEST(JsonLite, ParsesFlatRateObject) {
  const JsonValue doc = JsonValue::parse(R"({"a": 1.5, "b": 2e6, "c": -3})");
  ASSERT_EQ(doc.as_object().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(doc.at("b").as_number(), 2e6);
  EXPECT_DOUBLE_EQ(doc.at("c").as_number(), -3.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), std::runtime_error);
}

TEST(JsonLite, ParsesNestedStructure) {
  const JsonValue doc = JsonValue::parse(
      R"({"name": "homogeneous-10", "cases": [{"ok": true}, {"ok": false}], "none": null})");
  EXPECT_EQ(doc.at("name").as_string(), "homogeneous-10");
  ASSERT_EQ(doc.at("cases").as_array().size(), 2u);
  EXPECT_TRUE(doc.at("cases").as_array()[0].at("ok").as_bool());
  EXPECT_FALSE(doc.at("cases").as_array()[1].at("ok").as_bool());
}

TEST(JsonLite, RoundTripsFullPrecisionDoubles) {
  // Golden fixtures are written with 17 significant digits; the reader must
  // reproduce the exact bit pattern.
  const double value = 134.88428544543922;
  const JsonValue doc = JsonValue::parse(R"({"makespan": 134.88428544543922})");
  EXPECT_EQ(doc.at("makespan").as_number(), value);
}

TEST(JsonLite, ParsesStringEscapes) {
  const JsonValue doc = JsonValue::parse(R"({"s": "a\"b\\c\nd"})");
  EXPECT_EQ(doc.at("s").as_string(), "a\"b\\c\nd");
}

TEST(JsonLite, KindMismatchesThrow) {
  const JsonValue doc = JsonValue::parse(R"({"n": 1})");
  EXPECT_THROW((void)doc.at("n").as_string(), std::runtime_error);
  EXPECT_THROW((void)doc.at("n").as_bool(), std::runtime_error);
  EXPECT_THROW((void)doc.at("n").as_array(), std::runtime_error);
  EXPECT_THROW((void)doc.as_number(), std::runtime_error);
}

TEST(JsonLite, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": })"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": 1e})"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": inf})"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": "unterminated})"), std::runtime_error);
}

TEST(JsonLite, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW((void)JsonValue::parse(deep), std::runtime_error);
}

// --- Wire-hardening regression tests (serve protocol requirements) ---------

TEST(JsonLite, TruncatedDocumentsRaiseTheNamedTruncationError) {
  for (const char* text : {"", "{", "[1, 2", R"({"a": "unterminated)", R"({"a": "x\)",
                           R"({"s": "\u00)", "tru", "[1,"}) {
    try {
      (void)JsonValue::parse(text);
      FAIL() << "accepted truncated document: " << text;
    } catch (const JsonError& e) {
      // "tru" is a truncation of `true`, but the parser cannot know that a
      // longer document was intended — a bad literal is malformed, the rest
      // are unambiguous truncations.
      if (std::string(text) == "tru" || std::string(text) == "[1,") {
        continue;  // kind depends on where the cut landed; throwing is enough
      }
      EXPECT_EQ(e.kind(), JsonError::Kind::kTruncated) << text << ": " << e.what();
    }
  }
}

TEST(JsonLite, OversizedDocumentsAreRejectedUpFrontWithTheNamedError) {
  ParseLimits limits;
  limits.max_bytes = 16;
  const std::string big = R"({"k": "0123456789abcdef"})";
  ASSERT_GT(big.size(), limits.max_bytes);
  try {
    (void)JsonValue::parse(big, limits);
    FAIL() << "accepted oversized document";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.kind(), JsonError::Kind::kOversized);
  }
  // At or under the limit parses normally.
  EXPECT_NO_THROW((void)JsonValue::parse(R"({"k": 1})", limits));
}

TEST(JsonLite, NamedKindsDistinguishTrailingGarbageDepthAndTypeErrors) {
  try {
    (void)JsonValue::parse("{} trailing");
    FAIL();
  } catch (const JsonError& e) {
    EXPECT_EQ(e.kind(), JsonError::Kind::kTrailing);
  }
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  try {
    (void)JsonValue::parse(deep);
    FAIL();
  } catch (const JsonError& e) {
    EXPECT_EQ(e.kind(), JsonError::Kind::kTooDeep);
  }
  const JsonValue doc = JsonValue::parse(R"({"n": 1})");
  try {
    (void)doc.at("n").as_string();
    FAIL();
  } catch (const JsonError& e) {
    EXPECT_EQ(e.kind(), JsonError::Kind::kType);
  }
  try {
    (void)doc.at("missing");
    FAIL();
  } catch (const JsonError& e) {
    EXPECT_EQ(e.kind(), JsonError::Kind::kMissingKey);
  }
}

TEST(JsonLite, DecodesUnicodeEscapesIncludingSurrogatePairs) {
  const JsonValue doc = JsonValue::parse(R"({"s": "Aé€😀"})");
  EXPECT_EQ(doc.at("s").as_string(),
            "A\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");  // A é € 😀 in UTF-8
}

TEST(JsonLite, RejectsLoneAndUnpairedSurrogates) {
  for (const char* text : {R"(["\udc00"])", R"(["\ud800"])", R"(["\ud800x"])",
                           R"(["\ud800A"])"}) {
    try {
      (void)JsonValue::parse(text);
      FAIL() << "accepted " << text;
    } catch (const JsonError& e) {
      EXPECT_EQ(e.kind(), JsonError::Kind::kMalformed) << text;
    }
  }
}

TEST(JsonLite, WriterEscapesControlCharactersAndNonAscii) {
  JsonValue obj = JsonValue::object();
  obj.set("ctl", JsonValue::string(std::string("a\x01" "b\x1f" "\x7f\n\t") + '\0' + "z"));
  obj.set("utf8", JsonValue::string("caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80"));
  obj.set("bad", JsonValue::string("\xFF\xFE"));  // invalid UTF-8 bytes
  const std::string wire = obj.dump();
  EXPECT_EQ(wire,
            "{\"ctl\":\"a\\u0001b\\u001f\\u007f\\n\\t\\u0000z\","
            "\"utf8\":\"caf\\u00e9 \\u20ac \\ud83d\\ude00\","
            "\"bad\":\"\\ufffd\\ufffd\"}");
  // 7-bit clean: nothing outside printable ASCII survives escaping.
  for (const char c : wire) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    EXPECT_LT(static_cast<unsigned char>(c), 0x80u);
  }
}

TEST(JsonLite, WriterReaderRoundTripReproducesTheTree) {
  JsonValue obj = JsonValue::object();
  obj.set("name", JsonValue::string("weird \"name\"\twith\nbytes \xE2\x82\xAC"));
  obj.set("n", JsonValue::number(134.88428544543922));
  obj.set("neg", JsonValue::number(-0.3));
  obj.set("t", JsonValue::boolean(true));
  obj.set("z", JsonValue::null());
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::number(1));
  arr.push_back(JsonValue::string("\x02"));
  obj.set("a", std::move(arr));

  const std::string wire = obj.dump();
  const JsonValue back = JsonValue::parse(wire);
  EXPECT_EQ(back.at("name").as_string(), "weird \"name\"\twith\nbytes \xE2\x82\xAC");
  EXPECT_EQ(back.at("n").as_number(), 134.88428544543922);
  EXPECT_EQ(back.at("neg").as_number(), -0.3);
  EXPECT_TRUE(back.at("t").as_bool());
  EXPECT_EQ(back.at("z").kind(), JsonValue::Kind::kNull);
  EXPECT_EQ(back.at("a").as_array()[0].as_number(), 1.0);
  EXPECT_EQ(back.at("a").as_array()[1].as_string(), "\x02");
  // Canonical bytes: dumping the re-parsed tree reproduces the wire exactly.
  EXPECT_EQ(back.dump(), wire);
}

TEST(JsonLite, WriterRefusesNonFiniteNumbers) {
  EXPECT_THROW((void)JsonValue::number(std::numeric_limits<double>::infinity()), JsonError);
  EXPECT_THROW((void)JsonValue::number(std::numeric_limits<double>::quiet_NaN()), JsonError);
}

}  // namespace
}  // namespace rumr::util
