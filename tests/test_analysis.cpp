// Tests for analytic makespan bounds and schedule-quality metrics
// (analysis/bounds.hpp).

#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

#include "core/rumr.hpp"
#include "core/umr_policy.hpp"
#include "sweep/scheduler_factory.hpp"

namespace rumr::analysis {
namespace {

platform::StarPlatform paperish(std::size_t n = 10) {
  return platform::StarPlatform::homogeneous(
      {.workers = n, .speed = 1.0, .bandwidth = 1.5 * static_cast<double>(n),
       .comp_latency = 0.2, .comm_latency = 0.1});
}

TEST(Bounds, ZeroWorkloadIsZero) {
  const MakespanBounds b = makespan_lower_bounds(paperish(), 0.0);
  EXPECT_EQ(b.combined(), 0.0);
}

TEST(Bounds, ComputeBoundIsAggregateRate) {
  const MakespanBounds b = makespan_lower_bounds(paperish(10), 1000.0);
  EXPECT_DOUBLE_EQ(b.compute_bound, 100.0);
}

TEST(Bounds, UplinkBoundUsesBestLinkAndChannels) {
  const MakespanBounds one = makespan_lower_bounds(paperish(10), 1000.0, 1);
  EXPECT_DOUBLE_EQ(one.uplink_bound, 1000.0 / 15.0);
  const MakespanBounds two = makespan_lower_bounds(paperish(10), 1000.0, 2);
  EXPECT_DOUBLE_EQ(two.uplink_bound, 1000.0 / 30.0);
}

TEST(Bounds, StartupBoundMinimizesOverWorkers) {
  const platform::StarPlatform p(
      {{1.0, 5.0, 1.0, 0.5, 0.0}, {1.0, 5.0, 0.2, 0.1, 0.0}});
  const MakespanBounds b = makespan_lower_bounds(p, 10.0);
  EXPECT_DOUBLE_EQ(b.startup_bound, 0.3);
}

TEST(Bounds, PipelineBoundDominatesItsParts) {
  const MakespanBounds b = makespan_lower_bounds(paperish(), 1000.0);
  EXPECT_GE(b.pipeline_bound, b.uplink_bound);
  EXPECT_GE(b.pipeline_bound, b.startup_bound);
  EXPECT_DOUBLE_EQ(b.combined(),
                   std::max({b.compute_bound, b.uplink_bound, b.startup_bound, b.pipeline_bound}));
}

TEST(Bounds, NoScheduleBeatsTheBoundsAtZeroError) {
  // Every algorithm on several platforms: simulated makespan >= bound.
  for (std::size_t n : {4u, 10u, 25u}) {
    const platform::StarPlatform p = paperish(n);
    const double w = 500.0;
    const double bound = makespan_lower_bounds(p, w).combined();
    for (const auto& spec : sweep::extended_competitors()) {
      const auto policy = spec.make(p, w, 0.0);
      const double makespan = simulate(p, *policy, sim::SimOptions{}).makespan;
      EXPECT_GE(makespan, bound - 1e-9) << spec.name << " N=" << n;
    }
  }
}

TEST(Bounds, UmrSitsCloseToTheBoundOnFriendlyPlatforms) {
  // Low latency, ample bandwidth: UMR should land within a few percent of
  // the compute bound.
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 10, .speed = 1.0, .bandwidth = 20.0, .comp_latency = 0.01,
       .comm_latency = 0.01});
  core::UmrPolicy policy(p, 1000.0);
  const double makespan = simulate(p, policy, sim::SimOptions{}).makespan;
  const double bound = makespan_lower_bounds(p, 1000.0).combined();
  EXPECT_LT(makespan, 1.10 * bound);
}

TEST(Quality, MetricsAreConsistent) {
  const platform::StarPlatform p = paperish();
  core::UmrPolicy policy(p, 1000.0);
  sim::SimOptions options;
  options.record_trace = true;
  const sim::SimResult result = simulate(p, policy, options);
  const ScheduleQuality quality = analyze_run(p, result, 1000.0);

  EXPECT_DOUBLE_EQ(quality.makespan, result.makespan);
  EXPECT_GT(quality.worker_efficiency, 0.9);  // UMR at zero error is tight.
  EXPECT_GT(quality.uplink_duty, 0.3);
  EXPECT_LT(quality.uplink_duty, 1.0 + 1e-12);
  EXPECT_GE(quality.optimality_gap, 1.0);
  EXPECT_LT(quality.optimality_gap, 1.3);
  // UMR's just-in-time schedule leaves essentially no interior idle.
  EXPECT_LT(quality.mean_interior_idle, 0.05 * result.makespan);
}

TEST(Quality, WorksWithoutTrace) {
  const platform::StarPlatform p = paperish();
  core::UmrPolicy policy(p, 1000.0);
  const sim::SimResult result = simulate(p, policy, sim::SimOptions{});
  const ScheduleQuality quality = analyze_run(p, result, 1000.0);
  EXPECT_GT(quality.optimality_gap, 0.0);
  EXPECT_EQ(quality.mean_interior_idle, 0.0);
}

}  // namespace
}  // namespace rumr::analysis
