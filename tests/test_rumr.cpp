// Tests for RUMR (core/rumr.hpp): the phase-split heuristic (design choice
// i), phase hand-off, degenerate cases, and the ablation variants used in
// the paper's Figures 6 and 7.

#include "core/rumr.hpp"

#include <gtest/gtest.h>

#include "baselines/factoring.hpp"
#include "sim/master_worker.hpp"

namespace rumr::core {
namespace {

platform::StarPlatform paperish(std::size_t n = 20, double b_over_n = 1.6, double clat = 0.3,
                                double nlat = 0.2) {
  return platform::StarPlatform::homogeneous(
      {.workers = n, .speed = 1.0, .bandwidth = b_over_n * static_cast<double>(n),
       .comp_latency = clat, .comm_latency = nlat});
}

RumrOptions with_error(double error) {
  RumrOptions options;
  options.known_error = error;
  return options;
}

TEST(RumrSplit, ZeroErrorDefaultsToPureUmr) {
  EXPECT_EQ(rumr_phase2_work(paperish(), 1000.0, with_error(0.0)), 0.0);
  const RumrPolicy policy(paperish(), 1000.0, with_error(0.0));
  EXPECT_EQ(policy.phase2_work(), 0.0);
  EXPECT_GT(policy.phase1_rounds(), 0u);
}

TEST(RumrSplit, ErrorAboveOneDefaultsToPureFactoring) {
  EXPECT_EQ(rumr_phase2_work(paperish(), 1000.0, with_error(1.0)), 1000.0);
  EXPECT_EQ(rumr_phase2_work(paperish(), 1000.0, with_error(2.5)), 1000.0);
  const RumrPolicy policy(paperish(), 1000.0, with_error(1.5));
  EXPECT_EQ(policy.phase2_work(), 1000.0);
  EXPECT_EQ(policy.phase1_rounds(), 0u);
  EXPECT_TRUE(policy.in_phase2());
}

TEST(RumrSplit, ProportionalShareWhenEngaged) {
  // Low-overhead platform: phase 2 engages and gets error * W.
  const platform::StarPlatform p = paperish(20, 1.6, 0.05, 0.01);
  EXPECT_DOUBLE_EQ(rumr_phase2_work(p, 1000.0, with_error(0.3)), 300.0);
}

TEST(RumrSplit, ThresholdDisablesPhase2WhenOverheadDominates) {
  // overhead = cLat + nLat*N = 0.3 + 0.9*20 = 18.3 work units.
  // Condition (a): error^2 * W >= 2 * overhead -> error >= 0.191.
  const platform::StarPlatform p = paperish(20, 1.8, 0.3, 0.9);
  EXPECT_EQ(rumr_phase2_work(p, 1000.0, with_error(0.10)), 0.0);
  EXPECT_EQ(rumr_phase2_work(p, 1000.0, with_error(0.18)), 0.0);
  EXPECT_GT(rumr_phase2_work(p, 1000.0, with_error(0.20)), 0.0);
}

TEST(RumrSplit, PerWorkerOverheadConditionAlsoGates) {
  // Condition (b): error * W / N >= overhead. With N = 50, nLat = 1:
  // overhead = 51; error * 1000 / 50 = 20 * error < 51 for all error < 1.
  const platform::StarPlatform p = paperish(50, 1.5, 1.0, 1.0);
  for (double e : {0.2, 0.4, 0.6, 0.9}) {
    EXPECT_EQ(rumr_phase2_work(p, 1000.0, with_error(e)), 0.0) << "error " << e;
  }
}

TEST(RumrSplit, ThresholdCanBeDisabled) {
  const platform::StarPlatform p = paperish(20, 1.8, 0.3, 0.9);
  RumrOptions options = with_error(0.10);
  options.apply_phase2_threshold = false;
  EXPECT_DOUBLE_EQ(rumr_phase2_work(p, 1000.0, options), 100.0);
}

TEST(RumrSplit, UnknownErrorUsesFixedFraction) {
  RumrOptions options;  // known_error unset.
  options.unknown_error_phase2_fraction = 0.2;
  EXPECT_DOUBLE_EQ(rumr_phase2_work(paperish(), 1000.0, options), 200.0);
  options.unknown_error_phase2_fraction = 0.35;
  EXPECT_DOUBLE_EQ(rumr_phase2_work(paperish(), 1000.0, options), 350.0);
}

TEST(RumrSplit, FixedSplitOptionsMatchFigureSix) {
  for (double percent : {50.0, 60.0, 70.0, 80.0, 90.0}) {
    const RumrOptions options = rumr_fixed_split_options(percent);
    EXPECT_FALSE(options.known_error.has_value());
    EXPECT_FALSE(options.apply_phase2_threshold);
    EXPECT_NEAR(options.unknown_error_phase2_fraction, 1.0 - percent / 100.0, 1e-12);
    EXPECT_DOUBLE_EQ(rumr_phase2_work(paperish(), 1000.0, options),
                     1000.0 * (1.0 - percent / 100.0));
  }
  EXPECT_EQ(rumr_fixed_split_options(80.0).name, "RUMR-80");
}

TEST(RumrPolicy, RejectsBadWorkload) {
  EXPECT_THROW(RumrPolicy(paperish(), 0.0, {}), std::invalid_argument);
  EXPECT_THROW(RumrPolicy(paperish(), -1.0, {}), std::invalid_argument);
}

TEST(RumrPolicy, ConservesWorkAcrossPhases) {
  const platform::StarPlatform p = paperish(20, 1.6, 0.1, 0.05);
  RumrPolicy policy(p, 1000.0, with_error(0.3));
  EXPECT_GT(policy.phase2_work(), 0.0);
  const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.3, 7));
  EXPECT_NEAR(r.work_dispatched, 1000.0, 1e-6);
  EXPECT_TRUE(policy.finished());
}

TEST(RumrPolicy, MatchesUmrExactlyAtZeroError) {
  const platform::StarPlatform p = paperish();
  RumrPolicy rumr(p, 1000.0, with_error(0.0));
  UmrPolicy umr(p, 1000.0, DispatchOrder::kInOrder);
  EXPECT_DOUBLE_EQ(simulate(p, rumr, sim::SimOptions{}).makespan,
                   simulate(p, umr, sim::SimOptions{}).makespan);
}

TEST(RumrPolicy, PhaseTwoDispatchesAfterPhaseOne) {
  const platform::StarPlatform p = paperish(10, 1.5, 0.1, 0.02);
  RumrPolicy policy(p, 1000.0, with_error(0.4));
  ASSERT_GT(policy.phase2_work(), 0.0);
  EXPECT_FALSE(policy.in_phase2());
  const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.4, 3));
  EXPECT_TRUE(policy.in_phase2());
  EXPECT_NEAR(r.work_dispatched, 1000.0, 1e-6);
}

TEST(RumrPolicy, InOrderVariantRunsAndConserves) {
  const platform::StarPlatform p = paperish();
  RumrOptions options = with_error(0.3);
  options.phase1_order = DispatchOrder::kInOrder;
  options.name = "RUMR-inorder";
  RumrPolicy policy(p, 1000.0, std::move(options));
  EXPECT_EQ(policy.name(), "RUMR-inorder");
  const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.3, 5));
  EXPECT_NEAR(r.work_dispatched, 1000.0, 1e-6);
}

TEST(RumrPolicy, TimetablePhase1DoesNotDeadlock) {
  // phase1_order = kTimetable makes phase 1 time-gated; RumrPolicy must
  // forward the wake-up times or the engine would stall forever.
  const platform::StarPlatform p = paperish();
  RumrOptions options = with_error(0.3);
  options.phase1_order = DispatchOrder::kTimetable;
  RumrPolicy policy(p, 1000.0, std::move(options));
  const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.3, 17));
  EXPECT_NEAR(r.work_dispatched, 1000.0, 1e-6);
  EXPECT_TRUE(policy.finished());
}

TEST(RumrPolicy, HonorsCustomFactoringFactor) {
  const platform::StarPlatform p = paperish(10, 1.5, 0.05, 0.01);
  RumrOptions options = with_error(0.5);
  options.factoring_factor = 3.0;
  RumrPolicy policy(p, 1000.0, std::move(options));
  const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.5, 11));
  EXPECT_NEAR(r.work_dispatched, 1000.0, 1e-6);
}

TEST(RumrPolicy, HeterogeneousPhase2WeightsChunksBySpeed) {
  // 4x speed spread: phase 2 must give the fast workers proportionally more
  // work, or the slow ones drag the tail. Verified behaviorally: per-worker
  // completed work roughly tracks speed, and the run conserves.
  const platform::StarPlatform p({{4.0, 40.0, 0.1, 0.05, 0.0},
                                  {4.0, 40.0, 0.1, 0.05, 0.0},
                                  {1.0, 12.0, 0.1, 0.05, 0.0},
                                  {1.0, 12.0, 0.1, 0.05, 0.0}});
  RumrPolicy policy(p, 1000.0, with_error(0.4));
  ASSERT_GT(policy.phase2_work(), 0.0);
  const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.4, 23));
  EXPECT_NEAR(r.work_dispatched, 1000.0, 1e-6);
  // Fast workers (4x speed) did several times the slow workers' work.
  EXPECT_GT(r.workers[0].work, 2.0 * r.workers[2].work);
}

TEST(RumrPolicy, HeterogeneousBeatsPlainFactoringUnderError) {
  const platform::StarPlatform p({{4.0, 40.0, 0.1, 0.05, 0.0},
                                  {2.0, 24.0, 0.1, 0.05, 0.0},
                                  {1.0, 12.0, 0.1, 0.05, 0.0},
                                  {1.0, 12.0, 0.1, 0.05, 0.0}});
  double rumr_total = 0.0;
  double factoring_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RumrPolicy rumr(p, 1000.0, with_error(0.3));
    rumr_total += simulate(p, rumr, sim::SimOptions::with_error(0.3, seed)).makespan;
    const auto factoring = baselines::make_factoring_policy(p, 1000.0);
    factoring_total += simulate(p, *factoring, sim::SimOptions::with_error(0.3, seed)).makespan;
  }
  EXPECT_LT(rumr_total, factoring_total);
}

TEST(RumrPolicy, ReducesMakespanUnderErrorOnLowLatencyPlatform) {
  // The headline claim, pinned at one config: at substantial error RUMR's
  // mean makespan beats plain UMR's (40 repetitions, paired seeds).
  const platform::StarPlatform p = paperish(20, 1.8, 0.1, 0.1);
  double umr_total = 0.0;
  double rumr_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    UmrPolicy umr(p, 1000.0, DispatchOrder::kInOrder);
    umr_total += simulate(p, umr, sim::SimOptions::with_error(0.4, seed)).makespan;
    RumrPolicy rumr(p, 1000.0, with_error(0.4));
    rumr_total += simulate(p, rumr, sim::SimOptions::with_error(0.4, seed)).makespan;
  }
  EXPECT_LT(rumr_total, umr_total);
}

}  // namespace
}  // namespace rumr::core
