// Tests for the rumr::check invariant layer: the RUMR_CHECK macros, the
// kernel auditor (monotonicity / schedule-in-the-past / event conservation),
// and the work-conservation trace auditor. Each invariant gets a negative
// test: violate it deliberately in a toy harness and assert the auditor
// fires.

#include "check/check.hpp"

#include <gtest/gtest.h>

#include <string>

#include "check/des_audit.hpp"
#include "check/trace_audit.hpp"
#include "des/simulator.hpp"
#include "platform/platform.hpp"
#include "sim/master_worker.hpp"
#include "sweep/scheduler_factory.hpp"

namespace rumr::check {
namespace {

// --- RUMR_CHECK macro ------------------------------------------------------

TEST(CheckMacro, PassingConditionIsSilent) {
  EXPECT_NO_THROW(RUMR_CHECK(1 + 1 == 2, "arithmetic"));
  EXPECT_NO_THROW(RUMR_CHECK_EXPENSIVE(true, "tautology"));
}

TEST(CheckMacro, FailingCheapCheckThrowsWithContext) {
#if RUMR_CHECK_LEVEL >= 1
  try {
    RUMR_CHECK(2 < 1, "two is not less than one");
    FAIL() << "RUMR_CHECK did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
#else
  EXPECT_NO_THROW(RUMR_CHECK(2 < 1, "compiled out at level 0"));
#endif
}

TEST(CheckMacro, ExpensiveTierFollowsCheckLevel) {
#if RUMR_CHECK_LEVEL >= 2
  EXPECT_THROW(RUMR_CHECK_EXPENSIVE(false, "expensive tier on"), CheckError);
#else
  EXPECT_NO_THROW(RUMR_CHECK_EXPENSIVE(false, "expensive tier off"));
#endif
  EXPECT_EQ(level(), RUMR_CHECK_LEVEL);
}

TEST(CheckMacro, ConditionIsNotEvaluatedTwice) {
  int evaluations = 0;
  RUMR_CHECK([&] {
    ++evaluations;
    return true;
  }(), "side-effecting condition");
#if RUMR_CHECK_LEVEL >= 1
  EXPECT_EQ(evaluations, 1);
#else
  EXPECT_EQ(evaluations, 0);
#endif
}

// --- SimulatorAuditor on a healthy kernel ----------------------------------

TEST(SimulatorAuditor, CleanRunPasses) {
  des::Simulator sim;
  SimulatorAuditor auditor;
  auditor.attach(sim);

  sim.schedule_at(1.0, [] {});
  sim.schedule_at(1.0, [] {});
  const des::EventId doomed = sim.schedule_at(2.0, [] {});
  sim.schedule_at(3.0, [&sim] { sim.schedule_in(0.5, [] {}); });
  sim.cancel(doomed);
  sim.run();

  auditor.verify_drained(sim);
  EXPECT_TRUE(auditor.report().ok()) << auditor.report().summary();
  EXPECT_EQ(auditor.scheduled(), 5u);
  EXPECT_EQ(auditor.executed(), 4u);
  EXPECT_EQ(auditor.cancelled(), 1u);
  EXPECT_NO_THROW(auditor.report().throw_if_failed());
  EXPECT_EQ(auditor.report().summary(), "ok");
}

TEST(SimulatorAuditor, ResetForgetsObservations) {
  SimulatorAuditor auditor;
  auditor.on_schedule(1, 5.0, 9.0);  // In the past: records a violation.
  EXPECT_FALSE(auditor.report().ok());
  auditor.reset();
  EXPECT_TRUE(auditor.report().ok());
  EXPECT_EQ(auditor.scheduled(), 0u);
}

// --- Negative tests: drive the auditor with broken event sequences ---------

TEST(SimulatorAuditor, FiresOnTimeGoingBackwards) {
  SimulatorAuditor auditor;
  auditor.on_execute(1, 5.0);
  auditor.on_execute(2, 4.0);  // Causality violation.
  EXPECT_FALSE(auditor.report().ok());
  EXPECT_NE(auditor.report().summary().find("time went backwards"), std::string::npos);
  EXPECT_THROW(auditor.report().throw_if_failed(), CheckError);
}

TEST(SimulatorAuditor, FiresOnScheduleInThePast) {
  SimulatorAuditor auditor;
  auditor.on_schedule(1, 2.0, 10.0);  // Requested before the clock.
  EXPECT_FALSE(auditor.report().ok());
  EXPECT_NE(auditor.report().summary().find("schedule-in-the-past"), std::string::npos);
}

TEST(SimulatorAuditor, FiresOnEventNonConservation) {
  des::Simulator sim;  // Untouched: all kernel counters stay 0.
  SimulatorAuditor auditor;
  auditor.on_schedule(1, 1.0, 0.0);  // One phantom event, never executed.
  auditor.verify_drained(sim);
  EXPECT_FALSE(auditor.report().ok());
  EXPECT_NE(auditor.report().summary().find("event conservation"), std::string::npos);
}

TEST(SimulatorAuditor, FiresWhenKernelCountersDisagree) {
  des::Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run();
  SimulatorAuditor auditor;  // Attached too late: saw none of the events.
  auditor.verify_drained(sim);
  EXPECT_FALSE(auditor.report().ok());
}

// --- Kernel schedule-in-the-past detection ---------------------------------

TEST(SimulatorKernel, SchedulingInThePastTrips) {
  des::Simulator sim;
  sim.schedule_at(5.0, [&sim] {
    // now() == 5; asking for t=1 is a causality bug in the caller.
    sim.schedule_at(1.0, [] {});
  });
#if RUMR_CHECK_LEVEL >= 1
  EXPECT_THROW(sim.run(), CheckError);
#else
  sim.run();
#endif
}

// --- Work-conservation trace auditor ---------------------------------------

platform::StarPlatform two_workers() {
  return platform::StarPlatform::homogeneous({.workers = 2, .speed = 1.0, .bandwidth = 4.0});
}

/// A minimal, physically consistent hand-built result: one chunk per worker,
/// uplink serialized, compute after arrival.
sim::SimResult toy_result() {
  sim::SimResult r;
  r.makespan = 12.0;
  r.chunks_dispatched = 2;
  r.work_dispatched = 16.0;
  r.uplink_busy_time = 4.0;
  r.workers.resize(2);
  r.workers[0] = {8.0, 1, 8.0, 2.0, 10.0};
  r.workers[1] = {8.0, 1, 8.0, 4.0, 12.0};
  r.trace.add({sim::SpanKind::kUplink, 0, 8.0, 0.0, 2.0});
  r.trace.add({sim::SpanKind::kUplink, 1, 8.0, 2.0, 4.0});
  r.trace.add({sim::SpanKind::kCompute, 0, 8.0, 2.0, 10.0});
  r.trace.add({sim::SpanKind::kCompute, 1, 8.0, 4.0, 12.0});
  return r;
}

TEST(TraceAudit, ConsistentResultPasses) {
  const AuditReport report = audit_sim_result(toy_result(), two_workers(), 16.0);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(TraceAudit, FiresOnDispatchShortfall) {
  // The run "lost" workload: dispatched != workload total.
  const AuditReport report = audit_sim_result(toy_result(), two_workers(), 20.0);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("bytes dispatched"), std::string::npos);
}

TEST(TraceAudit, FiresOnBusyTimeExceedingMakespan) {
  sim::SimResult r = toy_result();
  r.workers[1].busy_time = 50.0;  // A worker cannot compute longer than the run.
  const AuditReport report = audit_sim_result(r, two_workers(), 16.0);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("busy time"), std::string::npos);
}

TEST(TraceAudit, FiresOnOverlappingComputeSpans) {
  sim::SimResult r = toy_result();
  // Worker 0 "computes" two chunks at once on its single CPU.
  r.trace.add({sim::SpanKind::kCompute, 0, 1.0, 3.0, 4.0});
  r.workers[0].work += 1.0;
  r.workers[0].chunks += 1;
  r.workers[0].busy_time += 1.0;
  r.work_dispatched += 1.0;
  r.chunks_dispatched += 1;
  const AuditReport report = audit_sim_result(r, two_workers(), 17.0);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("compute overlap"), std::string::npos);
}

TEST(TraceAudit, FiresOnOverlappingUplinkSpans) {
  sim::SimResult r = toy_result();
  sim::SimResult broken;
  broken.makespan = r.makespan;
  broken.chunks_dispatched = r.chunks_dispatched;
  broken.work_dispatched = r.work_dispatched;
  broken.workers = r.workers;
  // Both transfers start at t=0 on a single-channel uplink.
  broken.trace.add({sim::SpanKind::kUplink, 0, 8.0, 0.0, 2.0});
  broken.trace.add({sim::SpanKind::kUplink, 1, 8.0, 1.0, 3.0});
  broken.trace.add({sim::SpanKind::kCompute, 0, 8.0, 2.0, 10.0});
  broken.trace.add({sim::SpanKind::kCompute, 1, 8.0, 4.0, 12.0});
  const AuditReport report = audit_sim_result(broken, two_workers(), 16.0);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("uplink overlap"), std::string::npos);

  // The same trace is legal on a two-channel master.
  TraceAuditOptions options;
  options.uplink_channels = 2;
  EXPECT_TRUE(audit_sim_result(broken, two_workers(), 16.0, options).ok());
}

TEST(TraceAudit, FiresOnChunkCountMismatch) {
  sim::SimResult r = toy_result();
  r.chunks_dispatched = 3;  // Claims a chunk nobody computed.
  const AuditReport report = audit_sim_result(r, two_workers(), 16.0);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("chunk conservation"), std::string::npos);
}

TEST(TraceAudit, FiresOnMalformedSpan) {
  sim::SimResult r = toy_result();
  r.trace.add({sim::SpanKind::kTail, 0, 0.0, 5.0, 4.0});  // end < start.
  const AuditReport report = audit_sim_result(r, two_workers(), 16.0);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("malformed span"), std::string::npos);
}

// --- observability-identity audit ------------------------------------------

// A real run whose metrics the tests below corrupt one field at a time.
sim::SimResult metrics_run() {
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 4, .speed = 1.0, .bandwidth = 8.0, .comp_latency = 0.1, .comm_latency = 0.05});
  auto spec = sweep::umr_spec();
  auto policy = spec.make(p, 200.0, 0.0);
  return sim::simulate(p, *policy, sim::SimOptions::with_error(0.3, 21));
}

TEST(MetricsAudit, PassesOnAnUntouchedRun) {
  const sim::SimResult result = metrics_run();
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 4, .speed = 1.0, .bandwidth = 8.0, .comp_latency = 0.1, .comm_latency = 0.05});
  EXPECT_TRUE(audit_sim_result(result, p, 200.0).ok());
}

TEST(MetricsAudit, FiresOnUplinkOccupancyMismatch) {
  sim::SimResult result = metrics_run();
  result.metrics.engine.uplink_busy_time += 1.0;  // busy + idle no longer tiles the run
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 4, .speed = 1.0, .bandwidth = 8.0, .comp_latency = 0.1, .comm_latency = 0.05});
  const AuditReport report = audit_sim_result(result, p, 200.0);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("uplink busy + idle vs makespan"), std::string::npos);
}

TEST(MetricsAudit, FiresOnWorkerSpanPartitionMismatch) {
  sim::SimResult result = metrics_run();
  result.metrics.engine.workers[0].idle_time -= 0.5;  // spans no longer partition the makespan
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 4, .speed = 1.0, .bandwidth = 8.0, .comp_latency = 0.1, .comm_latency = 0.05});
  const AuditReport report = audit_sim_result(result, p, 200.0);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("compute + aborted + idle + down vs makespan"),
            std::string::npos);
}

TEST(MetricsAudit, FiresOnDesEventLedgerMismatch) {
  sim::SimResult result = metrics_run();
  result.metrics.des.events_scheduled += 1;  // conservation: scheduled != executed + cancelled
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 4, .speed = 1.0, .bandwidth = 8.0, .comp_latency = 0.1, .comm_latency = 0.05});
  const AuditReport report = audit_sim_result(result, p, 200.0);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("des events"), std::string::npos);
}

TEST(MetricsAudit, SkipsHandBuiltResultsWithoutMetrics) {
  // Legacy hand-assembled results carry no metrics record; the audit must not
  // report phantom violations for them.
  const sim::SimResult r = toy_result();
  EXPECT_TRUE(r.metrics.engine.workers.empty());
  EXPECT_TRUE(audit_sim_result(r, two_workers(), 16.0).ok());
}

TEST(TraceAudit, AuditsARealEngineRun) {
  // End-to-end: a real simulate() under heavy prediction error must still
  // conserve work and respect the platform's resource constraints.
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 4, .speed = 1.0, .bandwidth = 8.0, .comp_latency = 0.1, .comm_latency = 0.05});
  auto spec = sweep::fsc_spec();
  auto policy = spec.make(p, 200.0, 0.4);
  sim::SimOptions options = sim::SimOptions::with_error(0.4, 99);
  options.record_trace = true;
  const sim::SimResult result = sim::simulate(p, *policy, options);
  const AuditReport report = audit_sim_result(result, p, 200.0);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace rumr::check
