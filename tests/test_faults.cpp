/// \file test_faults.cpp
/// Fault-model timelines and the failure-aware master-worker engine:
/// graceful degradation, exactly-once re-dispatch, fencing, backoff/rejoin,
/// and determinism of faulty runs.

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/factoring.hpp"
#include "baselines/loop_scheduling.hpp"
#include "baselines/multi_installment.hpp"
#include "check/trace_audit.hpp"
#include "core/rumr.hpp"
#include "core/umr_policy.hpp"
#include "faults/fault_model.hpp"
#include "sim/master_worker.hpp"
#include "sim/trace_json.hpp"
#include "stats/rng.hpp"

namespace rumr {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

platform::StarPlatform uniform_platform(std::size_t workers, double bandwidth = 100.0) {
  return platform::StarPlatform::homogeneous(
      {.workers = workers, .speed = 1.0, .bandwidth = bandwidth});
}

// ---------------------------------------------------------------------------
// FaultTimeline unit tests
// ---------------------------------------------------------------------------

TEST(FaultTimeline, NoneNeverFails) {
  faults::FaultTimeline timeline(faults::FaultSpec::none(), 4, 42);
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_FALSE(timeline.next_outage(w, 0.0).has_value());
    EXPECT_TRUE(timeline.alive_at(w, 0.0));
    EXPECT_TRUE(timeline.alive_at(w, 1.0e9));
  }
}

TEST(FaultTimeline, ScriptedOutagesAreHalfOpenAndOrdered) {
  auto spec = faults::FaultSpec::scripted({
      {1, {10.0, 20.0}},
      {1, {2.0, 5.0}},  // Out of order on purpose; sorted on construction.
  });
  faults::FaultTimeline timeline(spec, 2, 7);

  EXPECT_TRUE(timeline.alive_at(1, 1.9));
  EXPECT_FALSE(timeline.alive_at(1, 2.0));
  EXPECT_FALSE(timeline.alive_at(1, 4.9));
  EXPECT_TRUE(timeline.alive_at(1, 5.0));  // Half-open: alive at recovery instant.
  EXPECT_FALSE(timeline.alive_at(1, 15.0));
  EXPECT_TRUE(timeline.alive_at(1, 20.0));

  const auto first = timeline.next_outage(1, 0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->down, 2.0);
  EXPECT_DOUBLE_EQ(first->up, 5.0);

  const auto second = timeline.next_outage(1, 5.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->down, 10.0);

  EXPECT_FALSE(timeline.next_outage(1, 20.0).has_value());
  EXPECT_FALSE(timeline.next_outage(0, 0.0).has_value());  // Unscripted worker.
}

TEST(FaultTimeline, RejectsInvalidSpecs) {
  EXPECT_THROW(faults::FaultTimeline(faults::FaultSpec::fail_stop(-1.0), 2, 1),
               std::invalid_argument);
  EXPECT_THROW(faults::FaultTimeline(faults::FaultSpec::fail_stop(100.0, 1.5), 2, 1),
               std::invalid_argument);
  EXPECT_THROW(faults::FaultTimeline(faults::FaultSpec::transient(100.0, -1.0), 2, 1),
               std::invalid_argument);
  // Worker index out of range.
  EXPECT_THROW(
      faults::FaultTimeline(faults::FaultSpec::scripted({{5, {1.0, 2.0}}}), 2, 1),
      std::invalid_argument);
  // up <= down.
  EXPECT_THROW(faults::FaultTimeline(faults::FaultSpec::scripted({{0, {3.0, 3.0}}}), 2, 1),
               std::invalid_argument);
}

TEST(FaultTimeline, TransientMttrZeroMeansInstantRepair) {
  // mttr = 0 is legal: outages are zero-length point events. The worker is
  // never observed down (intervals are half-open and empty), but the outage
  // record still exists, so an in-progress computation straddling it aborts.
  faults::FaultTimeline timeline(faults::FaultSpec::transient(10.0, 0.0), 2, 11);
  const auto outage = timeline.next_outage(0, 0.0);
  ASSERT_TRUE(outage.has_value());
  EXPECT_DOUBLE_EQ(outage->down, outage->up);
  EXPECT_TRUE(timeline.alive_at(0, outage->down));  // [t, t) contains nothing.
}

TEST(FaultTimeline, ScriptedOverlappingOutagesCoalesce) {
  // Overlapping and touching intervals merge into one: a down worker going
  // down again is still just down, and downtime must not be double-counted.
  auto spec = faults::FaultSpec::scripted({
      {0, {1.0, 5.0}},
      {0, {4.0, 6.0}},   // Overlaps the first.
      {0, {6.0, 8.0}},   // Touches the merged interval.
      {0, {10.0, 11.0}}, // Disjoint; survives as its own outage.
  });
  faults::FaultTimeline timeline(spec, 1, 3);

  const auto first = timeline.next_outage(0, 0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->down, 1.0);
  EXPECT_DOUBLE_EQ(first->up, 8.0);

  const auto second = timeline.next_outage(0, 8.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->down, 10.0);
  EXPECT_DOUBLE_EQ(second->up, 11.0);
  EXPECT_FALSE(timeline.next_outage(0, 11.0).has_value());

  // A permanent outage absorbs everything that starts inside or after it.
  auto perm = faults::FaultSpec::scripted({{0, {2.0, kInf}}, {0, {3.0, 4.0}}});
  faults::FaultTimeline permanent(perm, 1, 3);
  const auto only = permanent.next_outage(0, 0.0);
  ASSERT_TRUE(only.has_value());
  EXPECT_DOUBLE_EQ(only->down, 2.0);
  EXPECT_TRUE(only->permanent());
}

TEST(FaultTimeline, FailStopIsPermanentAndDeterministic) {
  const auto spec = faults::FaultSpec::fail_stop(50.0);
  faults::FaultTimeline a(spec, 3, 99);
  faults::FaultTimeline b(spec, 3, 99);

  // Query `b` in reverse worker order: per-worker streams make the timelines
  // independent of query order.
  std::vector<double> downs_a;
  std::vector<double> downs_b;
  for (std::size_t w = 0; w < 3; ++w) {
    const auto outage = a.next_outage(w, 0.0);
    ASSERT_TRUE(outage.has_value());
    EXPECT_TRUE(outage->permanent());
    downs_a.push_back(outage->down);
  }
  for (std::size_t w = 3; w-- > 0;) {
    const auto outage = b.next_outage(w, 0.0);
    ASSERT_TRUE(outage.has_value());
    downs_b.push_back(outage->down);
  }
  for (std::size_t w = 0; w < 3; ++w) EXPECT_DOUBLE_EQ(downs_a[w], downs_b[2 - w]);

  // Different seed, different failure times (overwhelmingly likely).
  faults::FaultTimeline c(spec, 3, 100);
  const auto outage = c.next_outage(0, 0.0);
  ASSERT_TRUE(outage.has_value());
  EXPECT_NE(outage->down, downs_a[0]);
}

TEST(FaultTimeline, FailStopProbabilityZeroNeverFails) {
  faults::FaultTimeline timeline(faults::FaultSpec::fail_stop(10.0, 0.0), 8, 5);
  for (std::size_t w = 0; w < 8; ++w) {
    EXPECT_FALSE(timeline.next_outage(w, 0.0).has_value()) << "worker " << w;
  }
}

TEST(FaultTimeline, TransientOutagesAlternateAndReplay) {
  const auto spec = faults::FaultSpec::transient(30.0, 5.0);
  faults::FaultTimeline a(spec, 2, 11);
  faults::FaultTimeline b(spec, 2, 11);

  double t = 0.0;
  for (int i = 0; i < 5; ++i) {
    const auto oa = a.next_outage(0, t);
    const auto ob = b.next_outage(0, t);
    ASSERT_TRUE(oa.has_value());
    ASSERT_TRUE(ob.has_value());
    EXPECT_DOUBLE_EQ(oa->down, ob->down);
    EXPECT_DOUBLE_EQ(oa->up, ob->up);
    EXPECT_LT(oa->down, oa->up);
    EXPECT_GE(oa->down, t);  // Disjoint, increasing intervals.
    EXPECT_FALSE(oa->permanent());
    t = oa->up;
  }
}

TEST(SampleExponential, HasRequestedMean) {
  stats::Rng rng(123);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = faults::sample_exponential(4.0, rng);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 4.0, 0.15);
}

// ---------------------------------------------------------------------------
// Engine semantics under faults
// ---------------------------------------------------------------------------

sim::SimOptions fault_options(faults::FaultSpec spec, std::uint64_t seed = 1) {
  sim::SimOptions options;
  options.seed = seed;
  options.record_trace = true;
  options.faults = std::move(spec);
  return options;
}

TEST(FaultSim, ScriptedFailStopCompletesOnSurvivors) {
  const auto platform = uniform_platform(4);
  baselines::FactoringPolicy policy(100.0, 4);
  // Worker 0 dies at t=1, mid first chunk, and never comes back.
  const auto options = fault_options(faults::FaultSpec::scripted({{0, {1.0, kInf}}}));

  const sim::SimResult result = simulate(platform, policy, options);

  EXPECT_EQ(result.faults.failures, 1u);
  EXPECT_EQ(result.faults.recoveries, 0u);
  EXPECT_EQ(result.faults.suspicions, 1u);
  EXPECT_GT(result.faults.chunks_lost, 0u);
  EXPECT_EQ(result.faults.chunks_lost, result.faults.chunks_redispatched);
  EXPECT_NEAR(result.faults.work_lost, result.faults.work_redispatched, 1e-9);

  // Work ends up fully computed by the survivors.
  double survivor_work = 0.0;
  for (std::size_t w = 1; w < 4; ++w) survivor_work += result.workers[w].work;
  EXPECT_NEAR(survivor_work + result.workers[0].work, 100.0, 1e-6);

  const check::AuditReport audit = check::audit_sim_result(result, platform, 100.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(FaultSim, OverlappingScriptedOutagesDoNotDoubleCountDowntime) {
  const auto platform = uniform_platform(3);
  baselines::FactoringPolicy policy(90.0, 3);
  // Three overlapping scripts for one worker; coalesced to [1, 6). The
  // metrics audit partitions each worker's time over [0, makespan], so any
  // double-counted down_time trips the identity check.
  const auto options = fault_options(faults::FaultSpec::scripted(
      {{0, {1.0, 5.0}}, {0, {2.0, 4.0}}, {0, {4.5, 6.0}}}));

  const sim::SimResult result = simulate(platform, policy, options);

  EXPECT_EQ(result.faults.failures, 1u);
  EXPECT_EQ(result.faults.recoveries, 1u);
  EXPECT_NEAR(result.metrics.engine.workers[0].down_time, 5.0, 1e-9);

  const check::AuditReport audit = check::audit_sim_result(result, platform, 90.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(FaultSim, TransientInstantRepairCompletesAndAudits) {
  const auto platform = uniform_platform(3);
  baselines::FactoringPolicy policy(90.0, 3);
  // mttr = 0: every outage is a zero-length point event. Workers are never
  // observed down, so the run must complete with zero recorded downtime and
  // a clean audit whatever the failure rate.
  const auto options = fault_options(faults::FaultSpec::transient(5.0, 0.0), 17);

  const sim::SimResult result = simulate(platform, policy, options);

  EXPECT_EQ(result.faults.failures, result.faults.recoveries);
  for (const obs::WorkerSpans& spans : result.metrics.engine.workers) {
    EXPECT_DOUBLE_EQ(spans.down_time, 0.0);
  }
  double total = 0.0;
  for (const auto& w : result.workers) total += w.work;
  EXPECT_NEAR(total, 90.0, 1e-6);

  const check::AuditReport audit = check::audit_sim_result(result, platform, 90.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(FaultSim, DeadWorkerNeverCompletesAfterOutage) {
  const auto platform = uniform_platform(3);
  baselines::FactoringPolicy policy(60.0, 3);
  const auto options = fault_options(faults::FaultSpec::scripted({{2, {0.5, kInf}}}));

  const sim::SimResult result = simulate(platform, policy, options);

  // No compute span of worker 2 may end inside or after its outage.
  for (const sim::TraceSpan& span : result.trace.filter(sim::SpanKind::kCompute)) {
    if (span.worker == 2) {
      EXPECT_LE(span.end, 0.5 + 1e-9);
    }
  }
  // The abort is visible in the trace.
  bool saw_aborted = false;
  for (const sim::TraceSpan& span : result.trace.for_worker(2)) {
    if (span.kind == sim::SpanKind::kAborted) {
      saw_aborted = true;
      EXPECT_NEAR(span.end, 0.5, 1e-9);
    }
  }
  EXPECT_TRUE(saw_aborted);
  // And the run still audits clean.
  const check::AuditReport audit = check::audit_sim_result(result, platform, 60.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(FaultSim, UmrRedistributesDeadWorkersShare) {
  const auto platform = uniform_platform(4, 10.0);
  core::UmrPolicy policy(platform, 200.0, core::DispatchOrder::kInOrder);
  const auto options = fault_options(faults::FaultSpec::scripted({{1, {2.0, kInf}}}));

  const sim::SimResult result = simulate(platform, policy, options);

  EXPECT_GT(result.faults.chunks_redispatched, 0u);
  double total = 0.0;
  for (const auto& w : result.workers) total += w.work;
  EXPECT_NEAR(total, 200.0, 1e-6);

  const check::AuditReport audit = check::audit_sim_result(result, platform, 200.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(FaultSim, RumrCompletesUnderFailStop) {
  const auto platform = uniform_platform(4, 10.0);
  core::RumrPolicy policy(platform, 200.0);
  const auto options = fault_options(faults::FaultSpec::scripted({{3, {1.0, kInf}}}));

  const sim::SimResult result = simulate(platform, policy, options);

  double total = 0.0;
  for (const auto& w : result.workers) total += w.work;
  EXPECT_NEAR(total, 200.0, 1e-6);
  const check::AuditReport audit = check::audit_sim_result(result, platform, 200.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(FaultSim, MultiInstallmentFallsBackToSurvivors) {
  const auto platform = uniform_platform(3, 10.0);
  const auto policy = baselines::make_mi_policy(platform, 120.0, 3);
  const auto options = fault_options(faults::FaultSpec::scripted({{0, {1.0, kInf}}}));

  const sim::SimResult result = simulate(platform, *policy, options);

  double total = 0.0;
  for (const auto& w : result.workers) total += w.work;
  EXPECT_NEAR(total, 120.0, 1e-6);
  const check::AuditReport audit = check::audit_sim_result(result, platform, 120.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(FaultSim, AllWorkersDeadRaisesDiagnosticSimError) {
  const auto platform = uniform_platform(2);
  baselines::FactoringPolicy policy(50.0, 2);
  const auto options = fault_options(
      faults::FaultSpec::scripted({{0, {0.5, kInf}}, {1, {0.5, kInf}}}));

  try {
    (void)simulate(platform, policy, options);
    FAIL() << "expected SimError: every worker is dead with work remaining";
  } catch (const sim::SimError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("Factoring"), std::string::npos) << message;
    EXPECT_NE(message.find("dead or unreachable"), std::string::npos) << message;
    EXPECT_NE(message.find("worker 0"), std::string::npos) << message;
    EXPECT_NE(message.find("worker 1"), std::string::npos) << message;
    EXPECT_NE(message.find("re-dispatch"), std::string::npos) << message;
  }
}

TEST(FaultSim, TransientWorkerRejoinsAndContributes) {
  const auto platform = uniform_platform(2);
  // Long workload in small fixed chunks so the timeout (slack * ~5 s) fires
  // well before the run drains and the recovered worker gets fed again.
  baselines::CssPolicy policy(300.0, 2, 5.0);
  const auto options = fault_options(faults::FaultSpec::scripted({{0, {2.0, 30.0}}}));

  const sim::SimResult result = simulate(platform, policy, options);

  EXPECT_EQ(result.faults.failures, 1u);
  EXPECT_EQ(result.faults.recoveries, 1u);
  EXPECT_GE(result.faults.suspicions, 1u);
  EXPECT_GE(result.faults.rejoins, 1u);

  // Worker 0 computes again after its recovery at t=30.
  bool computed_after_recovery = false;
  for (const sim::TraceSpan& span : result.trace.filter(sim::SpanKind::kCompute)) {
    if (span.worker == 0 && span.start >= 30.0) computed_after_recovery = true;
  }
  EXPECT_TRUE(computed_after_recovery);

  const check::AuditReport audit = check::audit_sim_result(result, platform, 300.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(FaultSim, FlapperIsFencedRepeatedly) {
  const auto platform = uniform_platform(2);
  baselines::CssPolicy policy(300.0, 2, 5.0);
  // Two separated outages: fenced after the first, re-admitted, fenced again.
  const auto options =
      fault_options(faults::FaultSpec::scripted({{0, {2.0, 30.0}}, {0, {40.0, 70.0}}}));

  const sim::SimResult result = simulate(platform, policy, options);

  EXPECT_EQ(result.faults.failures, 2u);
  EXPECT_GE(result.faults.suspicions, 2u);
  EXPECT_GE(result.faults.rejoins, 2u);
  const check::AuditReport audit = check::audit_sim_result(result, platform, 300.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(FaultSim, BackoffExhaustedFlapperRejoinsMidPhase2WithFloorSizedChunk) {
  // A worker fenced repeatedly enough to drive its blacklist backoff to
  // backoff_max must, on its final rejoin during RUMR's phase 2, be fed a
  // real factoring chunk (>= the phase-2 chunk floor), not dust — flapping
  // history must not degrade what the policy offers a re-admitted worker.
  const auto platform = platform::StarPlatform::homogeneous({.workers = 4,
                                                             .speed = 1.0,
                                                             .bandwidth = 6.0,
                                                             .comp_latency = 0.2,
                                                             .comm_latency = 0.1});
  // known_error 0.9 puts 360 of 400 units in phase 2; factoring_factor 8
  // makes every phase-2 batch floor-sized, so the floor is the binding chunk
  // size throughout: clamp(overhead/error, W2/(8N), W/N) = W2/(8N) = 11.25.
  core::RumrOptions rumr_options;
  rumr_options.known_error = 0.9;
  rumr_options.factoring_factor = 8.0;
  const double phase2 = core::rumr_phase2_work(platform, 400.0, rumr_options);
  const double floor_chunk = phase2 / (8.0 * 4.0);
  core::RumrPolicy policy(platform, 400.0, std::move(rumr_options));

  // Three separated outages of worker 0, all during phase 2 (phase 1's 40
  // units drain in ~13 s). Each aborts a computation, the watchdog fences,
  // and the worker rejoins after backoff: by the third fence the schedule
  // min(backoff_max, base * factor^(k-1)) = min(0.2, 0.05 * 16) has been
  // capped at backoff_max.
  auto options = fault_options(faults::FaultSpec::scripted(
      {{0, {15.0, 16.0}}, {0, {35.0, 36.0}}, {0, {55.0, 57.0}}}));
  options.fault_tolerance.timeout_slack = 1.25;
  options.fault_tolerance.backoff_base = 0.05;
  options.fault_tolerance.backoff_factor = 4.0;
  options.fault_tolerance.backoff_max = 0.2;

  const sim::SimResult result = simulate(platform, policy, options);

  EXPECT_EQ(result.faults.failures, 3u);
  EXPECT_GE(result.faults.suspicions, 3u);
  EXPECT_GE(result.faults.rejoins, 3u);

  // After its last recovery the worker computes again, and the first chunk
  // it is handed respects the phase-2 floor.
  des::SimTime last_down_end = 0.0;
  for (const sim::TraceSpan& span : result.trace.for_worker(0)) {
    if (span.kind == sim::SpanKind::kDown) last_down_end = std::max(last_down_end, span.end);
  }
  EXPECT_DOUBLE_EQ(last_down_end, 57.0);
  const auto computes = result.trace.filter(sim::SpanKind::kCompute);
  const sim::TraceSpan* first_after_rejoin = nullptr;
  for (const sim::TraceSpan& span : computes) {
    if (span.worker != 0 || span.start < last_down_end) continue;
    if (first_after_rejoin == nullptr || span.start < first_after_rejoin->start) {
      first_after_rejoin = &span;
    }
  }
  ASSERT_NE(first_after_rejoin, nullptr);
  EXPECT_GE(first_after_rejoin->chunk, floor_chunk - 1e-9);

  const check::AuditReport audit = check::audit_sim_result(result, platform, 400.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(FaultSim, FaultyRunsReplayByteIdentical) {
  const auto platform = uniform_platform(4);
  const auto spec = faults::FaultSpec::transient(40.0, 8.0);

  auto run = [&] {
    baselines::FactoringPolicy policy(200.0, 4);
    sim::SimOptions options = sim::SimOptions::with_error(0.2, 77);
    options.record_trace = true;
    options.faults = spec;
    return simulate(platform, policy, options);
  };

  const sim::SimResult a = run();
  const sim::SimResult b = run();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.faults.failures, b.faults.failures);
  EXPECT_EQ(a.faults.suspicions, b.faults.suspicions);
  EXPECT_EQ(sim::to_chrome_tracing(a.trace), sim::to_chrome_tracing(b.trace));
}

TEST(FaultSim, EnabledButQuietFaultLayerMatchesBaseline) {
  const auto platform = uniform_platform(3);

  auto run = [&](bool enable_quiet_faults) {
    baselines::FactoringPolicy policy(90.0, 3);
    sim::SimOptions options = sim::SimOptions::with_error(0.1, 5);
    options.record_trace = true;
    // Scripted model with an empty script: the fault layer is armed (watchdog
    // timers run) but no outage ever happens.
    if (enable_quiet_faults) options.faults = faults::FaultSpec::scripted({});
    return simulate(platform, policy, options);
  };

  const sim::SimResult baseline = run(false);
  const sim::SimResult quiet = run(true);

  // No false positives: the watchdog never fences a healthy worker ...
  EXPECT_EQ(quiet.faults.suspicions, 0u);
  EXPECT_EQ(quiet.faults.chunks_lost, 0u);
  // ... and the schedule is untouched.
  EXPECT_DOUBLE_EQ(quiet.makespan, baseline.makespan);
  EXPECT_EQ(sim::to_chrome_tracing(quiet.trace), sim::to_chrome_tracing(baseline.trace));
}

/// A policy that ignores WorkerStatus::alive and keeps targeting worker 0.
class StubbornPolicy final : public sim::SchedulerPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "Stubborn"; }
  std::optional<sim::Dispatch> next_dispatch(const sim::MasterContext& ctx) override {
    if (sent_ >= 5 || ctx.worker_status(0).outstanding > 0) return std::nullopt;
    ++sent_;
    return sim::Dispatch{0, 10.0};
  }
  [[nodiscard]] bool finished() const override { return sent_ >= 5; }
  [[nodiscard]] double total_work() const override { return 50.0; }

 private:
  std::size_t sent_ = 0;
};

TEST(FaultSim, DispatchToFencedWorkerIsRejected) {
  const auto platform = uniform_platform(2);
  StubbornPolicy policy;
  const auto options = fault_options(faults::FaultSpec::scripted({{0, {1.0, kInf}}}));

  try {
    (void)simulate(platform, policy, options);
    FAIL() << "expected SimError: dispatch to a fenced worker";
  } catch (const sim::SimError& error) {
    EXPECT_NE(std::string(error.what()).find("fenced"), std::string::npos) << error.what();
  }
}

/// Counts the engine's down/up notifications, delegating the real work.
class HookCountingPolicy final : public sim::SchedulerPolicy {
 public:
  HookCountingPolicy(double w_total, std::size_t workers, double chunk)
      : inner_(w_total, workers, chunk) {}

  [[nodiscard]] std::string_view name() const override { return inner_.name(); }
  std::optional<sim::Dispatch> next_dispatch(const sim::MasterContext& ctx) override {
    return inner_.next_dispatch(ctx);
  }
  [[nodiscard]] bool finished() const override { return inner_.finished(); }
  [[nodiscard]] double total_work() const override { return inner_.total_work(); }
  void on_worker_down(const sim::MasterContext& ctx, std::size_t worker) override {
    inner_.on_worker_down(ctx, worker);
    ++downs_;
  }
  void on_worker_up(const sim::MasterContext& ctx, std::size_t worker) override {
    inner_.on_worker_up(ctx, worker);
    ++ups_;
  }

  std::size_t downs() const { return downs_; }
  std::size_t ups() const { return ups_; }

 private:
  baselines::CssPolicy inner_;
  std::size_t downs_ = 0;
  std::size_t ups_ = 0;
};

TEST(FaultSim, PolicyHooksFireOnFenceAndRejoin) {
  const auto platform = uniform_platform(2);
  HookCountingPolicy policy(300.0, 2, 5.0);
  const auto options = fault_options(faults::FaultSpec::scripted({{0, {2.0, 30.0}}}));

  const sim::SimResult result = simulate(platform, policy, options);
  (void)result;
  EXPECT_GE(policy.downs(), 1u);
  EXPECT_GE(policy.ups(), 1u);
}

TEST(FaultSim, NoFaultRunCarriesZeroFaultStats) {
  const auto platform = uniform_platform(2);
  baselines::FactoringPolicy policy(40.0, 2);
  const sim::SimResult result = simulate(platform, policy, sim::SimOptions{});
  EXPECT_EQ(result.faults.failures, 0u);
  EXPECT_EQ(result.faults.suspicions, 0u);
  EXPECT_EQ(result.faults.chunks_lost, 0u);
  EXPECT_DOUBLE_EQ(result.faults.work_redispatched, 0.0);
}

}  // namespace
}  // namespace rumr
