// Integration-grade unit tests for the master-worker engine
// (sim/master_worker.hpp): timing semantics, conservation, blocking sends,
// error injection, and misbehaving-policy detection.

#include "sim/master_worker.hpp"

#include <gtest/gtest.h>

#include "baselines/static_sequence.hpp"

namespace rumr::sim {
namespace {

using baselines::StaticSequencePolicy;

platform::StarPlatform one_worker(double s = 1.0, double b = 2.0, double clat = 0.0,
                                  double nlat = 0.0, double tlat = 0.0) {
  return platform::StarPlatform({{s, b, clat, nlat, tlat}});
}

TEST(Engine, SingleChunkMakespanIsAnalytic) {
  // makespan = nLat + c/B + tLat + cLat + c/S.
  const platform::StarPlatform p = one_worker(2.0, 4.0, 0.5, 0.25, 0.125);
  StaticSequencePolicy policy("one", {{0, 8.0}});
  const SimResult r = simulate(p, policy, SimOptions{});
  EXPECT_DOUBLE_EQ(r.makespan, 0.25 + 8.0 / 4.0 + 0.125 + 0.5 + 8.0 / 2.0);
  EXPECT_EQ(r.chunks_dispatched, 1u);
  EXPECT_DOUBLE_EQ(r.work_dispatched, 8.0);
}

TEST(Engine, BackToBackChunksOverlapCommunication) {
  // Two chunks to one worker: with a front end the second transfer proceeds
  // while the first computes, so makespan = first arrival + both computes
  // (transfer of chunk 2 is shorter than compute of chunk 1).
  const platform::StarPlatform p = one_worker(1.0, 10.0, 0.0, 0.0, 0.0);
  StaticSequencePolicy policy("two", {{0, 10.0}, {0, 10.0}});
  const SimResult r = simulate(p, policy, SimOptions{});
  EXPECT_DOUBLE_EQ(r.makespan, 1.0 + 10.0 + 10.0);
}

TEST(Engine, TwoWorkersSerializeOnUplink) {
  // Equal chunks to two workers: worker 1's transfer starts only after
  // worker 0's serial part completes.
  const platform::StarPlatform p =
      platform::StarPlatform::homogeneous({.workers = 2, .speed = 1.0, .bandwidth = 4.0});
  StaticSequencePolicy policy("pair", {{0, 8.0}, {1, 8.0}});
  const SimResult r = simulate(p, policy, SimOptions{});
  // Worker 1: arrival at 2+2 = 4, compute 8 -> 12. Worker 0: 2 + 8 = 10.
  EXPECT_DOUBLE_EQ(r.makespan, 12.0);
  EXPECT_DOUBLE_EQ(r.workers[0].work, 8.0);
  EXPECT_DOUBLE_EQ(r.workers[1].work, 8.0);
}

TEST(Engine, TailLatencyOverlapsNextTransfer) {
  // tLat does not occupy the uplink: with tLat = 5 the second worker's
  // serial transfer still starts at t = 1.
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 2, .speed = 1.0, .bandwidth = 4.0, .transfer_latency = 5.0});
  StaticSequencePolicy policy("pair", {{0, 4.0}, {1, 4.0}});
  const SimResult r = simulate(p, policy, SimOptions{});
  // Worker 1: serial done at 2, +tail 5 -> arrival 7, compute 4 -> 11.
  EXPECT_DOUBLE_EQ(r.makespan, 11.0);
}

TEST(Engine, ZeroErrorIsDeterministicAcrossSeeds) {
  const platform::StarPlatform p =
      platform::StarPlatform::homogeneous({.workers = 3, .bandwidth = 9.0});
  StaticSequencePolicy a("s", {{0, 5.0}, {1, 5.0}, {2, 5.0}});
  StaticSequencePolicy b("s", {{0, 5.0}, {1, 5.0}, {2, 5.0}});
  SimOptions opt_a;
  opt_a.seed = 1;
  SimOptions opt_b;
  opt_b.seed = 999;
  EXPECT_DOUBLE_EQ(simulate(p, a, opt_a).makespan, simulate(p, b, opt_b).makespan);
}

TEST(Engine, SameSeedSameRunUnderError) {
  const platform::StarPlatform p =
      platform::StarPlatform::homogeneous({.workers = 3, .bandwidth = 9.0});
  StaticSequencePolicy a("s", {{0, 5.0}, {1, 5.0}, {2, 5.0}});
  StaticSequencePolicy b("s", {{0, 5.0}, {1, 5.0}, {2, 5.0}});
  EXPECT_DOUBLE_EQ(simulate(p, a, SimOptions::with_error(0.3, 42)).makespan,
                   simulate(p, b, SimOptions::with_error(0.3, 42)).makespan);
}

TEST(Engine, DifferentSeedsDifferUnderError) {
  const platform::StarPlatform p =
      platform::StarPlatform::homogeneous({.workers = 3, .bandwidth = 9.0});
  StaticSequencePolicy a("s", {{0, 5.0}, {1, 5.0}, {2, 5.0}});
  StaticSequencePolicy b("s", {{0, 5.0}, {1, 5.0}, {2, 5.0}});
  EXPECT_NE(simulate(p, a, SimOptions::with_error(0.3, 1)).makespan,
            simulate(p, b, SimOptions::with_error(0.3, 2)).makespan);
}

TEST(Engine, MakespanNeverBelowComputeLowerBound) {
  const platform::StarPlatform p =
      platform::StarPlatform::homogeneous({.workers = 4, .bandwidth = 8.0});
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    StaticSequencePolicy policy("s", {{0, 25.0}, {1, 25.0}, {2, 25.0}, {3, 25.0}});
    const SimResult r = simulate(p, policy, SimOptions::with_error(0.0, seed));
    EXPECT_GE(r.makespan, 100.0 / p.total_speed());
  }
}

TEST(Engine, TraceRecordsWhenRequested) {
  const platform::StarPlatform p = one_worker(1.0, 2.0, 0.1, 0.1, 0.1);
  StaticSequencePolicy policy("s", {{0, 2.0}});
  SimOptions options;
  options.record_trace = true;
  const SimResult r = simulate(p, policy, options);
  EXPECT_EQ(r.trace.filter(SpanKind::kUplink).size(), 1u);
  EXPECT_EQ(r.trace.filter(SpanKind::kTail).size(), 1u);
  EXPECT_EQ(r.trace.filter(SpanKind::kCompute).size(), 1u);
  EXPECT_DOUBLE_EQ(r.trace.end_time(), r.makespan);

  StaticSequencePolicy policy2("s", {{0, 2.0}});
  const SimResult r2 = simulate(p, policy2, SimOptions{});
  EXPECT_TRUE(r2.trace.empty());
}

TEST(Engine, RejectsDispatchToUnknownWorker) {
  const platform::StarPlatform p = one_worker();
  StaticSequencePolicy policy("bad", {{5, 1.0}});
  EXPECT_THROW((void)simulate(p, policy, SimOptions{}), SimError);
}

namespace {
/// A policy that claims more work than it dispatches (conservation violation).
struct LyingPolicy : SchedulerPolicy {
  bool sent = false;
  std::string_view name() const override { return "liar"; }
  std::optional<Dispatch> next_dispatch(const MasterContext&) override {
    if (sent) return std::nullopt;
    sent = true;
    return Dispatch{0, 1.0};
  }
  bool finished() const override { return sent; }
  double total_work() const override { return 100.0; }
};

/// A policy that never finishes but stops dispatching (deadlock).
struct StallingPolicy : SchedulerPolicy {
  std::string_view name() const override { return "staller"; }
  std::optional<Dispatch> next_dispatch(const MasterContext&) override { return std::nullopt; }
  bool finished() const override { return false; }
  double total_work() const override { return 10.0; }
};
}  // namespace

TEST(Engine, DetectsWorkNonConservation) {
  const platform::StarPlatform p = one_worker();
  LyingPolicy policy;
  EXPECT_THROW((void)simulate(p, policy, SimOptions{}), SimError);
}

TEST(Engine, DetectsDeadlock) {
  const platform::StarPlatform p = one_worker();
  StallingPolicy policy;
  EXPECT_THROW((void)simulate(p, policy, SimOptions{}), SimError);
}

TEST(Engine, RejectsZeroBufferCapacity) {
  const platform::StarPlatform p = one_worker();
  StaticSequencePolicy policy("s", {{0, 1.0}});
  SimOptions options;
  options.worker_buffer_capacity = 0;
  EXPECT_THROW((void)simulate(p, policy, options), SimError);
}

TEST(Engine, BoundedBufferBlocksUplink) {
  // Three chunks to worker 0, then one to worker 1. Worker 0 is slow
  // (compute 10 each, transfers 1 each). With capacity 1 the third send to
  // worker 0 must wait until worker 0 starts its second chunk (t = 10),
  // delaying worker 1's chunk; with unbounded buffers it sails through.
  const platform::StarPlatform p =
      platform::StarPlatform::homogeneous({.workers = 2, .speed = 1.0, .bandwidth = 10.0});
  const std::vector<Dispatch> plan = {{0, 10.0}, {0, 10.0}, {0, 10.0}, {1, 10.0}};

  StaticSequencePolicy bounded("s", plan);
  SimOptions opt_bounded;
  opt_bounded.worker_buffer_capacity = 1;
  const SimResult r_bounded = simulate(p, bounded, opt_bounded);

  StaticSequencePolicy unbounded("s", plan);
  SimOptions opt_unbounded;
  opt_unbounded.worker_buffer_capacity = SIZE_MAX;
  const SimResult r_unbounded = simulate(p, unbounded, opt_unbounded);

  // Unbounded: worker 1's chunk arrives at 4, computes until 14.
  EXPECT_DOUBLE_EQ(r_unbounded.makespan, 30.0 + 1.0);  // worker 0: arrival 1 + 30.
  // Bounded: the third send to worker 0 blocks until worker 0 pops its
  // buffered chunk at t = 11, then transfers 11->12; worker 1's send runs
  // 12->13, arrives at 13 and computes to 23 — strictly later than the
  // unbounded case's 14.
  const double w1_end_bounded = r_bounded.workers[1].last_end;
  const double w1_end_unbounded = r_unbounded.workers[1].last_end;
  EXPECT_DOUBLE_EQ(w1_end_unbounded, 14.0);
  EXPECT_DOUBLE_EQ(w1_end_bounded, 23.0);
}

TEST(Engine, UplinkBusyTimeAccountsSerialParts) {
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 2, .speed = 1.0, .bandwidth = 5.0, .comm_latency = 0.5});
  StaticSequencePolicy policy("s", {{0, 5.0}, {1, 5.0}});
  const SimResult r = simulate(p, policy, SimOptions{});
  EXPECT_DOUBLE_EQ(r.uplink_busy_time, 2.0 * (0.5 + 1.0));
}

TEST(Engine, WorkerOutcomeAccounting) {
  const platform::StarPlatform p = one_worker(2.0, 4.0, 0.25, 0.0, 0.0);
  StaticSequencePolicy policy("s", {{0, 4.0}, {0, 4.0}});
  const SimResult r = simulate(p, policy, SimOptions{});
  EXPECT_EQ(r.workers[0].chunks, 2u);
  EXPECT_DOUBLE_EQ(r.workers[0].work, 8.0);
  EXPECT_DOUBLE_EQ(r.workers[0].busy_time, 2.0 * (0.25 + 2.0));
  EXPECT_GT(r.mean_worker_utilization(), 0.5);
}

TEST(Engine, ErrorInjectionPerturbsMakespan) {
  const platform::StarPlatform p =
      platform::StarPlatform::homogeneous({.workers = 2, .bandwidth = 6.0});
  StaticSequencePolicy exact("s", {{0, 10.0}, {1, 10.0}});
  const double clean = simulate(p, exact, SimOptions{}).makespan;
  int differs = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    StaticSequencePolicy noisy("s", {{0, 10.0}, {1, 10.0}});
    if (simulate(p, noisy, SimOptions::with_error(0.3, seed)).makespan != clean) ++differs;
  }
  EXPECT_EQ(differs, 10);
}

}  // namespace
}  // namespace rumr::sim
