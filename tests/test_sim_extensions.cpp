// Tests for the engine's model extensions: parallel uplink channels
// (simultaneous transfers) and the output-data downlink.

#include <gtest/gtest.h>

#include "baselines/static_sequence.hpp"
#include "sim/master_worker.hpp"

namespace rumr::sim {
namespace {

using baselines::StaticSequencePolicy;

platform::StarPlatform two_workers(double bandwidth = 4.0) {
  return platform::StarPlatform::homogeneous(
      {.workers = 2, .speed = 1.0, .bandwidth = bandwidth});
}

TEST(UplinkChannels, RejectsZeroChannels) {
  const platform::StarPlatform p = two_workers();
  StaticSequencePolicy policy("s", {{0, 1.0}});
  SimOptions options;
  options.uplink_channels = 0;
  EXPECT_THROW((void)simulate(p, policy, options), SimError);
}

TEST(UplinkChannels, TwoChannelsOverlapTransfers) {
  // Two equal chunks to two workers, 2 s serial each. One channel: worker 1
  // starts receiving at t=2 and finishes computing at 12. Two channels: both
  // transfers run concurrently, both workers finish at 10.
  const platform::StarPlatform p = two_workers();
  const std::vector<Dispatch> plan = {{0, 8.0}, {1, 8.0}};

  StaticSequencePolicy serial("s", plan);
  const SimResult one = simulate(p, serial, SimOptions{});
  EXPECT_DOUBLE_EQ(one.makespan, 12.0);

  StaticSequencePolicy parallel("s", plan);
  SimOptions options;
  options.uplink_channels = 2;
  const SimResult two = simulate(p, parallel, options);
  EXPECT_DOUBLE_EQ(two.makespan, 10.0);
}

TEST(UplinkChannels, MoreChannelsNeverHurtAtZeroError) {
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 4, .speed = 1.0, .bandwidth = 8.0, .comm_latency = 0.3});
  const std::vector<Dispatch> plan = {{0, 10.0}, {1, 10.0}, {2, 10.0}, {3, 10.0}};
  double previous = 1e300;
  for (std::size_t channels : {1u, 2u, 4u}) {
    StaticSequencePolicy policy("s", plan);
    SimOptions options;
    options.uplink_channels = channels;
    const double makespan = simulate(p, policy, options).makespan;
    EXPECT_LE(makespan, previous + 1e-9) << channels << " channels";
    previous = makespan;
  }
}

TEST(UplinkChannels, BlockedSendStillHeadOfLine) {
  // Channel count 2, three chunks to worker 0 (capacity 1 forces a block)
  // then one to worker 1. The blocked send to worker 0 must not be
  // overtaken even though a second channel is free.
  const platform::StarPlatform p = two_workers(10.0);
  const std::vector<Dispatch> plan = {{0, 10.0}, {0, 10.0}, {0, 10.0}, {1, 10.0}};
  StaticSequencePolicy policy("s", plan);
  SimOptions options;
  options.uplink_channels = 2;
  const SimResult r = simulate(p, policy, options);
  EXPECT_NEAR(r.work_dispatched, 40.0, 1e-9);
  // Worker 1's chunk waits behind worker 0's blocked third chunk: it cannot
  // arrive before worker 0 frees a slot at t = 11.
  EXPECT_GT(r.workers[1].first_start, 11.0);
}

TEST(OutputData, RejectsNegativeRatio) {
  const platform::StarPlatform p = two_workers();
  StaticSequencePolicy policy("s", {{0, 1.0}});
  SimOptions options;
  options.output_ratio = -0.5;
  EXPECT_THROW((void)simulate(p, policy, options), SimError);
}

TEST(OutputData, ExtendsMakespanByReturnTransfer) {
  // One worker, one chunk of 8: input 2 s, compute 8 s. With output ratio
  // 0.25 the 2-unit result takes 0.5 s on the downlink: makespan 10.5.
  const platform::StarPlatform p = platform::StarPlatform({{1.0, 4.0, 0.0, 0.0, 0.0}});
  StaticSequencePolicy policy("s", {{0, 8.0}});
  SimOptions options;
  options.output_ratio = 0.25;
  const SimResult r = simulate(p, policy, options);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0 + 8.0 + 0.5);
  EXPECT_DOUBLE_EQ(r.downlink_busy_time, 0.5);
}

TEST(OutputData, DownlinkSerializesResults) {
  // Two workers finish almost together; their outputs must queue on the
  // shared downlink.
  const platform::StarPlatform p = two_workers(8.0);
  StaticSequencePolicy policy("s", {{0, 8.0}, {1, 8.0}});
  SimOptions options;
  options.output_ratio = 1.0;  // Output as big as input: 1 s each on B=8.
  options.record_trace = true;
  const SimResult r = simulate(p, policy, options);
  const auto outputs = r.trace.filter(SpanKind::kOutput);
  ASSERT_EQ(outputs.size(), 2u);
  // No overlap between the two output spans.
  EXPECT_LE(outputs[0].end, outputs[1].start + 1e-12);
  EXPECT_DOUBLE_EQ(r.downlink_busy_time, 2.0);
}

TEST(OutputData, ZeroRatioLeavesPaperModelUntouched) {
  const platform::StarPlatform p = two_workers();
  StaticSequencePolicy a("s", {{0, 8.0}, {1, 8.0}});
  StaticSequencePolicy b("s", {{0, 8.0}, {1, 8.0}});
  SimOptions with_output;
  with_output.output_ratio = 0.0;
  EXPECT_DOUBLE_EQ(simulate(p, a, SimOptions{}).makespan,
                   simulate(p, b, with_output).makespan);
}

TEST(OutputData, TraceMarksOutputOnMasterRow) {
  const platform::StarPlatform p = two_workers();
  StaticSequencePolicy policy("s", {{0, 8.0}});
  SimOptions options;
  options.output_ratio = 0.5;
  options.record_trace = true;
  const SimResult r = simulate(p, policy, options);
  const std::string gantt = r.trace.render_gantt(2);
  EXPECT_NE(gantt.find('o'), std::string::npos);
}

TEST(NonStationaryError, RandomWalkRunsAndConserves) {
  const platform::StarPlatform p = two_workers();
  StaticSequencePolicy policy("s", {{0, 8.0}, {1, 8.0}, {0, 4.0}, {1, 4.0}});
  SimOptions options;
  stats::ErrorProcessSpec spec;
  spec.base = stats::ErrorModel::truncated_normal(0.2);
  spec.dynamics = stats::ErrorDynamics::kRandomWalk;
  options.comm_error = spec;
  options.comp_error = spec;
  options.seed = 33;
  const SimResult r = simulate(p, policy, options);
  EXPECT_NEAR(r.work_dispatched, 24.0, 1e-9);
  EXPECT_GT(r.makespan, 0.0);
}

}  // namespace
}  // namespace rumr::sim
