// Unit tests for execution-trace recording and Gantt rendering (sim/trace.hpp).

#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace rumr::sim {
namespace {

Trace make_sample() {
  Trace t;
  t.add({SpanKind::kUplink, 0, 5.0, 0.0, 1.0});
  t.add({SpanKind::kTail, 0, 5.0, 1.0, 1.2});
  t.add({SpanKind::kCompute, 0, 5.0, 1.2, 6.2});
  t.add({SpanKind::kUplink, 1, 3.0, 1.0, 2.0});
  t.add({SpanKind::kCompute, 1, 3.0, 2.0, 5.0});
  return t;
}

TEST(Trace, EmptyBasics) {
  const Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.end_time(), 0.0);
  EXPECT_EQ(t.render_gantt(2), "(empty trace)\n");
}

TEST(Trace, EndTimeIsLatestSpanEnd) {
  EXPECT_DOUBLE_EQ(make_sample().end_time(), 6.2);
}

TEST(Trace, FilterByKind) {
  const Trace t = make_sample();
  EXPECT_EQ(t.filter(SpanKind::kUplink).size(), 2u);
  EXPECT_EQ(t.filter(SpanKind::kTail).size(), 1u);
  EXPECT_EQ(t.filter(SpanKind::kCompute).size(), 2u);
}

TEST(Trace, FilterByWorker) {
  const Trace t = make_sample();
  EXPECT_EQ(t.for_worker(0).size(), 3u);
  EXPECT_EQ(t.for_worker(1).size(), 2u);
  EXPECT_EQ(t.for_worker(9).size(), 0u);
}

TEST(Trace, GanttHasOneRowPerWorkerPlusMaster) {
  const std::string gantt = make_sample().render_gantt(2, 40);
  // Header + master + 2 workers + no trailing junk.
  int lines = 0;
  for (char c : gantt) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
  EXPECT_NE(gantt.find("master"), std::string::npos);
  EXPECT_NE(gantt.find("work 0"), std::string::npos);
  EXPECT_NE(gantt.find("work 1"), std::string::npos);
}

TEST(Trace, GanttMarksActivities) {
  const std::string gantt = make_sample().render_gantt(2, 40);
  EXPECT_NE(gantt.find('#'), std::string::npos);  // Uplink busy.
  EXPECT_NE(gantt.find('='), std::string::npos);  // Compute.
}

TEST(Trace, ClearEmptiesTrace) {
  Trace t = make_sample();
  t.clear();
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace rumr::sim
