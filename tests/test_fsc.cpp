// Tests for Fixed-Size Chunking (baselines/fsc.hpp).

#include "baselines/fsc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/master_worker.hpp"

namespace rumr::baselines {
namespace {

platform::StarPlatform paperish(std::size_t n = 10, double clat = 0.2, double nlat = 0.1) {
  return platform::StarPlatform::homogeneous(
      {.workers = n, .speed = 1.0, .bandwidth = 1.5 * static_cast<double>(n),
       .comp_latency = clat, .comm_latency = nlat});
}

TEST(FscChunkSize, ZeroErrorFallsBackToOneRound) {
  const platform::StarPlatform p = paperish();
  EXPECT_DOUBLE_EQ(fsc_chunk_size(p, 1000.0, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(fsc_chunk_size(p, 1000.0, -1.0), 100.0);
}

TEST(FscChunkSize, MatchesKruskalWeissFormula) {
  const platform::StarPlatform p = paperish(10, 0.2, 0.1);
  const double w = 1000.0;
  const double error = 0.3;
  const double h = 0.2 + 0.1 * 10.0;  // overhead in work units (S = 1).
  const auto n = 10.0;
  const double expected =
      std::pow(std::numbers::sqrt2 * w * h / (error * n * std::sqrt(std::log(n))), 2.0 / 3.0);
  EXPECT_NEAR(fsc_chunk_size(p, w, error), expected, 1e-9);
}

TEST(FscChunkSize, NeverExceedsOneRoundShare) {
  const platform::StarPlatform p = paperish(10, 1.0, 1.0);  // Big overhead.
  EXPECT_LE(fsc_chunk_size(p, 1000.0, 0.05), 100.0 + 1e-12);
}

TEST(FscChunkSize, ShrinksWithGrowingError) {
  const platform::StarPlatform p = paperish();
  double previous = 1e300;
  for (double e : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    const double c = fsc_chunk_size(p, 1000.0, e);
    EXPECT_LE(c, previous + 1e-12) << "error " << e;
    previous = c;
  }
}

TEST(FscChunkSize, ZeroOverheadUsesFinePartition) {
  const platform::StarPlatform p = paperish(10, 0.0, 0.0);
  const double c = fsc_chunk_size(p, 1000.0, 0.3);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 1.0);  // Far below the one-round share.
}

TEST(FscPolicy, ConservesAndRuns) {
  const platform::StarPlatform p = paperish();
  FscPolicy policy(p, 1000.0, 0.3);
  EXPECT_EQ(policy.name(), "FSC");
  const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.3, 3));
  EXPECT_NEAR(r.work_dispatched, 1000.0, 1e-6);
}

TEST(FscPolicy, AllChunksEqualExceptLast) {
  const platform::StarPlatform p = paperish();
  FscPolicy policy(p, 1000.0, 0.25);
  const auto& chunks = policy.chunk_sequence();
  ASSERT_GE(chunks.size(), 2u);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_NEAR(chunks[i], chunks[0], 1e-9);
  }
  EXPECT_LE(chunks.back(), chunks[0] + 1e-9);
}

TEST(FscPolicy, FactoryProducesPolicy) {
  const platform::StarPlatform p = paperish();
  const auto policy = make_fsc_policy(p, 500.0, 0.2);
  const sim::SimResult r = simulate(p, *policy, sim::SimOptions{});
  EXPECT_NEAR(r.work_dispatched, 500.0, 1e-6);
}

}  // namespace
}  // namespace rumr::baselines
