// Tests for the loop self-scheduling family (baselines/loop_scheduling.hpp):
// GSS, TSS, CSS, and Weighted Factoring.

#include "baselines/loop_scheduling.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sim/master_worker.hpp"

namespace rumr::baselines {
namespace {

platform::StarPlatform paperish(std::size_t n = 8) {
  return platform::StarPlatform::homogeneous(
      {.workers = n, .speed = 1.0, .bandwidth = 1.5 * static_cast<double>(n),
       .comp_latency = 0.2, .comm_latency = 0.1});
}

double total(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

// --- GSS ------------------------------------------------------------------

TEST(Gss, RejectsZeroWorkers) {
  EXPECT_THROW((void)gss_chunks(100.0, 0), std::invalid_argument);
}

TEST(Gss, EmptyForNonPositiveWork) {
  EXPECT_TRUE(gss_chunks(0.0, 4).empty());
}

TEST(Gss, FirstChunkIsRemainingOverN) {
  const auto chunks = gss_chunks(1000.0, 10);
  ASSERT_FALSE(chunks.empty());
  EXPECT_NEAR(chunks[0], 100.0, 1e-9);
  // Second chunk: (1000 - 100) / 10 = 90.
  EXPECT_NEAR(chunks[1], 90.0, 1e-9);
}

TEST(Gss, DecreasesPerDispatchAndConserves) {
  const auto chunks = gss_chunks(1000.0, 10, 1.0);
  for (std::size_t i = 0; i + 2 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i], chunks[i + 1] - 1e-9);
  }
  EXPECT_NEAR(total(chunks), 1000.0, 1e-6);
}

TEST(Gss, RespectsFloor) {
  const auto chunks = gss_chunks(1000.0, 10, 25.0);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) EXPECT_GE(chunks[i], 25.0 - 1e-9);
}

TEST(Gss, PolicyRunsAndConserves) {
  const platform::StarPlatform p = paperish();
  const auto policy = make_gss_policy(p, 800.0);
  EXPECT_EQ(policy->name(), "GSS");
  const sim::SimResult r = simulate(p, *policy, sim::SimOptions::with_error(0.3, 5));
  EXPECT_NEAR(r.work_dispatched, 800.0, 1e-6);
}

// --- TSS ------------------------------------------------------------------

TEST(Tss, DefaultFirstIsHalfRoundShare) {
  const auto chunks = tss_chunks(1000.0, 10, {});
  ASSERT_FALSE(chunks.empty());
  EXPECT_NEAR(chunks[0], 50.0, 1e-9);  // W / (2N).
}

TEST(Tss, LinearDecayAndConservation) {
  TssOptions options;
  options.first = 40.0;
  options.last = 10.0;
  const auto chunks = tss_chunks(1000.0, 10, options);
  EXPECT_NEAR(total(chunks), 1000.0, 1e-6);
  // Differences between consecutive chunks are (roughly) constant until the
  // floor/absorption kicks in.
  ASSERT_GE(chunks.size(), 4u);
  const double d0 = chunks[0] - chunks[1];
  const double d1 = chunks[1] - chunks[2];
  EXPECT_NEAR(d0, d1, 1e-9);
  EXPECT_GT(d0, 0.0);
}

TEST(Tss, RejectsNonPositiveLastChunk) {
  TssOptions options;
  options.last = 0.0;
  EXPECT_THROW((void)tss_chunks(100.0, 4, options), std::invalid_argument);
}

TEST(Tss, NeverEmitsBelowLastExceptAbsorber) {
  TssOptions options;
  options.first = 30.0;
  options.last = 5.0;
  const auto chunks = tss_chunks(500.0, 6, options);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i], 5.0 - 1e-9);
  }
}

TEST(Tss, PolicyRunsAndConserves) {
  const platform::StarPlatform p = paperish();
  const auto policy = make_tss_policy(p, 800.0);
  const sim::SimResult r = simulate(p, *policy, sim::SimOptions::with_error(0.2, 9));
  EXPECT_NEAR(r.work_dispatched, 800.0, 1e-6);
}

// --- CSS ------------------------------------------------------------------

TEST(Css, FixedChunksOfRequestedSize) {
  CssPolicy policy(100.0, 4, 30.0);
  const auto& chunks = policy.chunk_sequence();
  ASSERT_EQ(chunks.size(), 4u);  // 30 + 30 + 30 + 10.
  EXPECT_NEAR(chunks[0], 30.0, 1e-12);
  EXPECT_NEAR(chunks[3], 10.0, 1e-9);
  EXPECT_NEAR(policy.total_work(), 100.0, 1e-9);
}

TEST(Css, RejectsNonPositiveChunkSize) {
  EXPECT_THROW(CssPolicy(100.0, 4, 0.0), std::invalid_argument);
}

// --- Weighted Factoring ----------------------------------------------------

TEST(WeightedFactoring, SharesProportionalToWeights) {
  const auto plan = weighted_factoring_chunks(900.0, {1.0, 2.0});
  // First batch schedules 450 units: 150 to worker 0, 300 to worker 1.
  ASSERT_GE(plan.size(), 2u);
  EXPECT_EQ(plan[0].first, 0u);
  EXPECT_NEAR(plan[0].second, 150.0, 1e-9);
  EXPECT_EQ(plan[1].first, 1u);
  EXPECT_NEAR(plan[1].second, 300.0, 1e-9);
}

TEST(WeightedFactoring, ConservesAndCoversAllWorkers) {
  const auto plan = weighted_factoring_chunks(1000.0, {1.0, 3.0, 2.0});
  double sum = 0.0;
  std::vector<double> per_worker(3, 0.0);
  for (const auto& [worker, chunk] : plan) {
    sum += chunk;
    per_worker[worker] += chunk;
  }
  EXPECT_NEAR(sum, 1000.0, 1e-6);
  // Long-run shares track the weights.
  EXPECT_NEAR(per_worker[1] / per_worker[0], 3.0, 0.4);
  EXPECT_NEAR(per_worker[2] / per_worker[0], 2.0, 0.4);
}

TEST(WeightedFactoring, RejectsBadWeights) {
  EXPECT_THROW((void)weighted_factoring_chunks(100.0, {}), std::invalid_argument);
  EXPECT_THROW((void)weighted_factoring_chunks(100.0, {1.0, -2.0}), std::invalid_argument);
}

TEST(WeightedFactoring, PolicyRunsOnHeterogeneousPlatform) {
  const platform::StarPlatform p(
      {{1.0, 8.0, 0.1, 0.05, 0.0}, {3.0, 16.0, 0.1, 0.05, 0.0}, {2.0, 12.0, 0.1, 0.05, 0.0}});
  const auto policy = make_weighted_factoring_policy(p, 600.0);
  EXPECT_EQ(policy->name(), "WF");
  const sim::SimResult r = simulate(p, *policy, sim::SimOptions::with_error(0.25, 3));
  EXPECT_NEAR(r.work_dispatched, 600.0, 1e-6);
  // The fast worker computed more than the slow one.
  EXPECT_GT(r.workers[1].work, r.workers[0].work);
}

TEST(WeightedFactoring, SlowWorkerDoesNotStallTheOther) {
  // Equal speeds (so WF assigns equal shares) but worker 0 pays a huge
  // per-chunk start-up cost WF does not know about. The dispatch must let
  // worker 1 race through its pre-assigned chunks instead of waiting for
  // worker 0's batch position.
  const platform::StarPlatform p(
      {{1.0, 10.0, 50.0, 0.0, 0.0}, {1.0, 10.0, 0.0, 0.0, 0.0}});
  WeightedFactoringPolicy policy(p, 500.0);
  const sim::SimResult r = simulate(p, policy, sim::SimOptions{});
  EXPECT_NEAR(r.work_dispatched, 500.0, 1e-6);
  EXPECT_LT(r.workers[1].last_end, 0.5 * r.workers[0].last_end);
  EXPECT_DOUBLE_EQ(r.makespan, r.workers[0].last_end);
}

}  // namespace
}  // namespace rumr::baselines
