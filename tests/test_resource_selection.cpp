// Tests for greedy resource selection (core/resource_selection.hpp).

#include "core/resource_selection.hpp"

#include <gtest/gtest.h>

namespace rumr::core {
namespace {

TEST(ResourceSelection, KeepsEveryoneWhenBudgetAllows) {
  // 4 workers, each S/B = 0.1: total 0.4 <= 0.95.
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 4, .speed = 1.0, .bandwidth = 10.0});
  const auto selected = select_workers(p, 0.95);
  EXPECT_EQ(selected.size(), 4u);
}

TEST(ResourceSelection, HomogeneousReducesToLargestFeasibleCount) {
  // Each worker weighs S/B = 1/10; budget 0.55 -> 5 workers.
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 20, .speed = 1.0, .bandwidth = 10.0});
  const auto selected = select_workers(p, 0.55);
  EXPECT_EQ(selected.size(), 5u);
}

TEST(ResourceSelection, PrefersHighBandwidthWorkers) {
  // Knapsack density greedy: sort by bandwidth descending.
  const platform::StarPlatform p({{1.0, 2.0, 0.0, 0.0, 0.0},    // weight 0.5
                                  {1.0, 10.0, 0.0, 0.0, 0.0},   // weight 0.1
                                  {1.0, 5.0, 0.0, 0.0, 0.0}});  // weight 0.2
  const auto selected = select_workers(p, 0.35);
  // Takes worker 1 (0.1) then worker 2 (0.2) = 0.3; worker 0 won't fit.
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], 1u);
  EXPECT_EQ(selected[1], 2u);
}

TEST(ResourceSelection, AlwaysSelectsAtLeastOne) {
  // Even a single worker exceeds the budget.
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 3, .speed = 10.0, .bandwidth = 1.0});
  const auto selected = select_workers(p, 0.5);
  EXPECT_EQ(selected.size(), 1u);
}

TEST(ResourceSelection, DeterministicTieBreakByIndex) {
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 6, .speed = 1.0, .bandwidth = 10.0});
  const auto selected = select_workers(p, 0.35);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0], 0u);
  EXPECT_EQ(selected[1], 1u);
  EXPECT_EQ(selected[2], 2u);
}

}  // namespace
}  // namespace rumr::core
