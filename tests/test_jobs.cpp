// Tests for the multi-job open-system engine: stream determinism, admission,
// queue disciplines, the three sharing policies, the service-identity
// auditor, and the [jobs] configuration bridge.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "check/service_audit.hpp"
#include "config/config_file.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/job_stream.hpp"
#include "jobs/jobs_config.hpp"
#include "platform/platform.hpp"
#include "report/jobs_io.hpp"

namespace rumr {
namespace {

platform::StarPlatform test_platform(std::size_t workers = 10) {
  platform::HomogeneousParams params;
  params.workers = workers;
  params.bandwidth = 1.5 * static_cast<double>(workers);
  params.comp_latency = 0.1;
  params.comm_latency = 0.05;
  return platform::StarPlatform::homogeneous(params);
}

std::vector<jobs::Job> trace_jobs(std::initializer_list<std::pair<double, double>> spec) {
  std::vector<jobs::Job> out;
  for (const auto& [arrival, size] : spec) {
    jobs::Job job;
    job.arrival = arrival;
    job.size = size;
    out.push_back(job);
  }
  return out;
}

void expect_audit_clean(const jobs::ServiceResult& result,
                        const platform::StarPlatform& platform,
                        const jobs::JobsOptions& options) {
  const check::AuditReport report = check::audit_service_result(result, platform, options);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// --- JobStream -------------------------------------------------------------

TEST(JobStream, PoissonReplaysByteIdentically) {
  jobs::JobStreamSpec spec = jobs::JobStreamSpec::poisson(0.05, 40, 250.0);
  spec.size_dist = jobs::SizeDistribution::kExponential;
  spec.max_weight = 4.0;
  jobs::JobStream a(spec, 99);
  jobs::JobStream b(spec, 99);
  for (std::size_t i = 0; i < 40; ++i) {
    const auto ja = a.next();
    const auto jb = b.next();
    ASSERT_TRUE(ja.has_value());
    ASSERT_TRUE(jb.has_value());
    EXPECT_EQ(ja->id, i);
    EXPECT_EQ(ja->arrival, jb->arrival);  // Bitwise: same draws, same order.
    EXPECT_EQ(ja->size, jb->size);
    EXPECT_EQ(ja->weight, jb->weight);
  }
  EXPECT_FALSE(a.next().has_value());
  EXPECT_EQ(a.emitted(), 40u);
}

TEST(JobStream, SeedsProduceDifferentArrivals) {
  const jobs::JobStreamSpec spec = jobs::JobStreamSpec::poisson(0.05, 10, 250.0);
  jobs::JobStream a(spec, 1);
  jobs::JobStream b(spec, 2);
  bool any_different = false;
  for (std::size_t i = 0; i < 10; ++i) {
    if (a.next()->arrival != b.next()->arrival) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(JobStream, ArrivalsAreMonotoneAndSizesRespectTheDistribution) {
  jobs::JobStreamSpec spec = jobs::JobStreamSpec::poisson(0.1, 100, 200.0);
  spec.size_dist = jobs::SizeDistribution::kUniform;
  spec.size_spread = 0.5;
  spec.max_weight = 3.0;
  jobs::JobStream stream(spec, 7);
  double last_arrival = 0.0;
  while (auto job = stream.next()) {
    EXPECT_GE(job->arrival, last_arrival);
    last_arrival = job->arrival;
    EXPECT_GE(job->size, 100.0);
    EXPECT_LT(job->size, 300.0);
    EXPECT_GE(job->weight, 1.0);
    EXPECT_LT(job->weight, 3.0);
  }
}

TEST(JobStream, TraceReassignsIdsInStreamOrder) {
  auto jobs_list = trace_jobs({{1.0, 100.0}, {2.0, 200.0}, {2.0, 300.0}});
  jobs_list[0].id = 17;  // Ignored: ids are stream positions.
  jobs::JobStream stream(jobs::JobStreamSpec::from_trace(jobs_list), 1);
  EXPECT_EQ(stream.length(), 3u);
  EXPECT_EQ(stream.next()->id, 0u);
  EXPECT_EQ(stream.next()->id, 1u);
  EXPECT_EQ(stream.next()->id, 2u);
  EXPECT_FALSE(stream.next().has_value());
}

TEST(JobStream, ValidateListsEveryProblem) {
  jobs::JobStreamSpec spec;
  spec.arrival_rate = 0.0;
  spec.max_jobs = 0;
  spec.mean_size = -1.0;
  spec.size_spread = 1.5;
  spec.max_weight = 0.5;
  const std::vector<std::string> problems = spec.validate();
  EXPECT_GE(problems.size(), 5u);
  EXPECT_THROW(jobs::JobStream(spec, 1), std::invalid_argument);
}

TEST(JobStream, RateForLoadOffersTheRequestedFraction) {
  const platform::StarPlatform platform = test_platform(10);  // Aggregate speed 10.
  const double rate = jobs::JobStreamSpec::rate_for_load(platform, 0.8, 400.0);
  // rate * mean_size == load * total_speed.
  EXPECT_NEAR(rate * 400.0, 0.8 * 10.0, 1e-12);
}

// --- options validation ----------------------------------------------------

TEST(JobsOptions, ValidateCatchesBadAlgorithmAndPartitions) {
  jobs::JobsOptions options;
  options.algorithm = "quantum-annealing";
  options.sharing = jobs::SharingPolicy::kPartitioned;
  options.partitions = 99;
  const std::vector<std::string> problems = options.validate(10);
  EXPECT_EQ(problems.size(), 2u);
  EXPECT_THROW((void)jobs::run_jobs(test_platform(), options), std::invalid_argument);
}

// --- exclusive sharing -----------------------------------------------------

TEST(RunJobs, WellSeparatedJobsNeverWait) {
  const platform::StarPlatform platform = test_platform();
  jobs::JobsOptions options;
  options.stream =
      jobs::JobStreamSpec::from_trace(trace_jobs({{0.0, 300.0}, {500.0, 300.0}, {1000.0, 300.0}}));
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);

  EXPECT_EQ(result.completed, 3u);
  for (const jobs::JobOutcome& job : result.jobs) {
    EXPECT_TRUE(job.completed);
    EXPECT_DOUBLE_EQ(job.queue_wait, 0.0);
    EXPECT_GT(job.service_time, 0.0);
    EXPECT_GE(job.slowdown, 1.0);  // Lower bound really is a lower bound.
    ASSERT_EQ(job.segments.size(), 1u);
    EXPECT_EQ(job.segments[0].num_workers, platform.size());
  }
  // Identical jobs on an idle platform get identical (deterministic) service.
  EXPECT_DOUBLE_EQ(result.jobs[0].service_time, result.jobs[1].service_time);
  expect_audit_clean(result, platform, options);
}

TEST(RunJobs, ExclusiveBackToBackJobsQueueInOrder) {
  const platform::StarPlatform platform = test_platform();
  jobs::JobsOptions options;
  options.stream = jobs::JobStreamSpec::from_trace(
      trace_jobs({{0.0, 400.0}, {1.0, 400.0}, {2.0, 400.0}}));
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);

  EXPECT_EQ(result.completed, 3u);
  EXPECT_GT(result.jobs[1].queue_wait, 0.0);
  EXPECT_GT(result.jobs[2].queue_wait, result.jobs[1].queue_wait);
  // Serial service: one job at a time holds the whole platform.
  EXPECT_LE(result.jobs[0].departure, result.jobs[1].start + 1e-9);
  EXPECT_LE(result.jobs[1].departure, result.jobs[2].start + 1e-9);
  expect_audit_clean(result, platform, options);
}

// --- queue disciplines -----------------------------------------------------

TEST(RunJobs, SjfServesTheShortWaitingJobFirst) {
  const platform::StarPlatform platform = test_platform();
  // Job 0 occupies the platform; jobs 1 (long) and 2 (short) wait.
  const auto stream = jobs::JobStreamSpec::from_trace(
      trace_jobs({{0.0, 500.0}, {1.0, 800.0}, {2.0, 100.0}}));

  jobs::JobsOptions fcfs;
  fcfs.stream = stream;
  const jobs::ServiceResult in_order = jobs::run_jobs(platform, fcfs);
  EXPECT_LT(in_order.jobs[1].start, in_order.jobs[2].start);

  jobs::JobsOptions sjf = fcfs;
  sjf.discipline = jobs::QueueDiscipline::kSjf;
  const jobs::ServiceResult shortest = jobs::run_jobs(platform, sjf);
  EXPECT_LT(shortest.jobs[2].start, shortest.jobs[1].start);
  expect_audit_clean(shortest, platform, sjf);
}

TEST(RunJobs, PriorityServesTheHeavyWeightFirst) {
  const platform::StarPlatform platform = test_platform();
  auto jobs_list = trace_jobs({{0.0, 500.0}, {1.0, 300.0}, {2.0, 300.0}});
  jobs_list[1].weight = 1.0;
  jobs_list[2].weight = 5.0;  // More latency-sensitive, arrives later.
  jobs::JobsOptions options;
  options.stream = jobs::JobStreamSpec::from_trace(jobs_list);
  options.discipline = jobs::QueueDiscipline::kPriority;
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);
  EXPECT_LT(result.jobs[2].start, result.jobs[1].start);
  expect_audit_clean(result, platform, options);
}

// --- admission -------------------------------------------------------------

TEST(RunJobs, ZeroCapacityQueueRejectsWhileBusy) {
  const platform::StarPlatform platform = test_platform();
  jobs::JobsOptions options;
  options.stream = jobs::JobStreamSpec::from_trace(
      trace_jobs({{0.0, 800.0}, {1.0, 100.0}, {2.0, 100.0}}));
  options.queue_capacity = 0;
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);

  EXPECT_EQ(result.completed, 1u);
  EXPECT_EQ(result.rejected, 2u);
  EXPECT_TRUE(result.jobs[1].rejected);
  EXPECT_TRUE(result.jobs[2].rejected);
  EXPECT_DOUBLE_EQ(result.jobs[1].departure, result.jobs[1].arrival);
  expect_audit_clean(result, platform, options);
}

TEST(RunJobs, ShedOldestDropsTheLongestWaitingJob) {
  const platform::StarPlatform platform = test_platform();
  jobs::JobsOptions options;
  options.stream = jobs::JobStreamSpec::from_trace(
      trace_jobs({{0.0, 800.0}, {1.0, 100.0}, {2.0, 100.0}}));
  options.queue_capacity = 1;
  options.admission = jobs::AdmissionPolicy::kShedOldest;
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);

  EXPECT_EQ(result.shed, 1u);
  EXPECT_TRUE(result.jobs[1].shed);       // Queued at t=1, shed at t=2.
  EXPECT_TRUE(result.jobs[2].completed);  // Took the shed job's slot.
  EXPECT_DOUBLE_EQ(result.jobs[1].departure, 2.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].queue_wait, 1.0);
  expect_audit_clean(result, platform, options);
}

// --- partitioned sharing ---------------------------------------------------

TEST(RunJobs, PartitionsServeJobsConcurrentlyOnDisjointShares) {
  const platform::StarPlatform platform = test_platform(10);
  jobs::JobsOptions options;
  options.sharing = jobs::SharingPolicy::kPartitioned;
  options.partitions = 2;
  options.stream = jobs::JobStreamSpec::from_trace(
      trace_jobs({{0.0, 300.0}, {0.0, 300.0}, {1.0, 300.0}}));
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);

  EXPECT_EQ(result.completed, 3u);
  // The first two start immediately on different halves.
  EXPECT_DOUBLE_EQ(result.jobs[0].start, 0.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].start, 0.0);
  ASSERT_EQ(result.jobs[0].segments.size(), 1u);
  ASSERT_EQ(result.jobs[1].segments.size(), 1u);
  EXPECT_EQ(result.jobs[0].segments[0].num_workers, 5u);
  EXPECT_EQ(result.jobs[1].segments[0].num_workers, 5u);
  EXPECT_NE(result.jobs[0].segments[0].first_worker, result.jobs[1].segments[0].first_worker);
  expect_audit_clean(result, platform, options);
}

TEST(RunJobs, UnevenPartitionCountsCoverEveryWorker) {
  const platform::StarPlatform platform = test_platform(10);
  jobs::JobsOptions options;
  options.sharing = jobs::SharingPolicy::kPartitioned;
  options.partitions = 3;  // Blocks of 4, 3, 3.
  options.stream = jobs::JobStreamSpec::from_trace(
      trace_jobs({{0.0, 200.0}, {0.0, 200.0}, {0.0, 200.0}}));
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);
  std::size_t covered = 0;
  for (const jobs::JobOutcome& job : result.jobs) covered += job.segments.at(0).num_workers;
  EXPECT_EQ(covered, 10u);
  expect_audit_clean(result, platform, options);
}

// --- fractional sharing ----------------------------------------------------

TEST(RunJobs, FractionalArrivalSplitsTheRunningJobsShare) {
  const platform::StarPlatform platform = test_platform(10);
  jobs::JobsOptions options;
  options.sharing = jobs::SharingPolicy::kFractional;
  options.stream = jobs::JobStreamSpec::from_trace(
      trace_jobs({{0.0, 600.0}, {5.0, 600.0}}));
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);

  EXPECT_EQ(result.completed, 2u);
  // Job 0 ran alone, was cut to a half share at t=5, and widened again when
  // one of them finished: at least two segments with different widths.
  EXPECT_GE(result.jobs[0].segments.size(), 2u);
  EXPECT_EQ(result.jobs[0].segments[0].num_workers, 10u);
  EXPECT_EQ(result.jobs[0].segments[1].num_workers, 5u);
  EXPECT_DOUBLE_EQ(result.jobs[1].start, 5.0);  // Served immediately on arrival.
  EXPECT_DOUBLE_EQ(result.jobs[1].queue_wait, 0.0);
  expect_audit_clean(result, platform, options);
}

TEST(RunJobs, FractionalDegreeCapQueuesTheOverflow) {
  const platform::StarPlatform platform = test_platform(10);
  jobs::JobsOptions options;
  options.sharing = jobs::SharingPolicy::kFractional;
  options.max_degree = 2;
  options.stream = jobs::JobStreamSpec::from_trace(
      trace_jobs({{0.0, 400.0}, {0.0, 400.0}, {0.0, 400.0}}));
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);

  EXPECT_EQ(result.completed, 3u);
  EXPECT_GT(result.jobs[2].queue_wait, 0.0);  // Third job waited for a slot.
  expect_audit_clean(result, platform, options);
}

// --- open-system runs ------------------------------------------------------

jobs::JobsOptions poisson_options(const platform::StarPlatform& platform,
                                  jobs::SharingPolicy sharing, double load) {
  jobs::JobsOptions options;
  options.sharing = sharing;
  options.partitions = 2;
  options.stream = jobs::JobStreamSpec::poisson(
      jobs::JobStreamSpec::rate_for_load(platform, load, 250.0), 30, 250.0);
  options.stream.size_dist = jobs::SizeDistribution::kUniform;
  options.stream.size_spread = 0.4;
  options.sim.seed = 2026;
  options.sim.comm_error = stats::ErrorModel::truncated_normal(0.2);
  options.sim.comp_error = stats::ErrorModel::truncated_normal(0.2);
  return options;
}

TEST(RunJobs, EverySharingPolicyDrainsAndAuditsCleanUnderLoad) {
  const platform::StarPlatform platform = test_platform(10);
  for (const jobs::SharingPolicy sharing :
       {jobs::SharingPolicy::kExclusive, jobs::SharingPolicy::kPartitioned,
        jobs::SharingPolicy::kFractional}) {
    const jobs::JobsOptions options = poisson_options(platform, sharing, 0.7);
    const jobs::ServiceResult result = jobs::run_jobs(platform, options);
    EXPECT_EQ(result.arrived, 30u) << jobs::to_string(sharing);
    EXPECT_EQ(result.completed, 30u) << jobs::to_string(sharing);
    EXPECT_GT(result.utilization, 0.0);
    EXPECT_LE(result.share_utilization, 1.0 + 1e-9);
    expect_audit_clean(result, platform, options);
  }
}

TEST(RunJobs, LittlesLawHoldsExactly) {
  const platform::StarPlatform platform = test_platform(10);
  const jobs::JobsOptions options =
      poisson_options(platform, jobs::SharingPolicy::kFractional, 0.9);
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);
  double residence = 0.0;
  for (const jobs::JobOutcome& job : result.jobs) {
    if (!job.rejected) residence += job.departure - job.arrival;
  }
  EXPECT_NEAR(result.area_jobs_in_system, residence,
              1e-9 * std::max(1.0, residence));
}

TEST(RunJobs, IdenticalSeedsReplayByteIdentically) {
  const platform::StarPlatform platform = test_platform(10);
  const jobs::JobsOptions options =
      poisson_options(platform, jobs::SharingPolicy::kFractional, 0.8);
  const jobs::ServiceResult a = jobs::run_jobs(platform, options);
  const jobs::ServiceResult b = jobs::run_jobs(platform, options);
  EXPECT_EQ(report::jobs_csv(a), report::jobs_csv(b));
  EXPECT_EQ(report::jobs_summary_json(a), report::jobs_summary_json(b));
}

TEST(RunJobs, FaultInjectionFlowsThroughTheOracle) {
  const platform::StarPlatform platform = test_platform(10);
  jobs::JobsOptions options = poisson_options(platform, jobs::SharingPolicy::kPartitioned, 0.5);
  options.sim.faults = faults::FaultSpec::transient(400.0, 20.0);
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);
  EXPECT_EQ(result.completed, result.arrived);
  expect_audit_clean(result, platform, options);
  // Failures stretch service beyond the fault-free bound, never shrink it.
  EXPECT_GE(result.mean_slowdown(), 1.0);
}

TEST(RunJobs, RecordTraceMergesSegmentsAtGlobalCoordinates) {
  const platform::StarPlatform platform = test_platform(10);
  jobs::JobsOptions options;
  options.sharing = jobs::SharingPolicy::kPartitioned;
  options.partitions = 2;
  options.record_trace = true;
  options.stream =
      jobs::JobStreamSpec::from_trace(trace_jobs({{0.0, 200.0}, {0.0, 200.0}}));
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);
  ASSERT_FALSE(result.trace.empty());
  bool any_second_half = false;
  for (const sim::TraceSpan& span : result.trace.spans()) {
    EXPECT_LE(span.end, result.horizon + 1e-9);
    if (span.worker >= 5) any_second_half = true;
  }
  EXPECT_TRUE(any_second_half);  // Job 1's spans were shifted onto workers 5..9.
}

// --- the auditor catches corruption ---------------------------------------

TEST(ServiceAudit, FlagsBrokenLittlesLaw) {
  const platform::StarPlatform platform = test_platform();
  const jobs::JobsOptions options =
      poisson_options(platform, jobs::SharingPolicy::kExclusive, 0.5);
  jobs::ServiceResult result = jobs::run_jobs(platform, options);
  result.area_jobs_in_system *= 1.5;
  const check::AuditReport report = check::audit_service_result(result, platform, options);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("Little"), std::string::npos);
}

TEST(ServiceAudit, FlagsCounterLedgerMismatch) {
  const platform::StarPlatform platform = test_platform();
  const jobs::JobsOptions options =
      poisson_options(platform, jobs::SharingPolicy::kExclusive, 0.5);
  jobs::ServiceResult result = jobs::run_jobs(platform, options);
  ++result.completed;
  EXPECT_FALSE(check::audit_service_result(result, platform, options).ok());
}

TEST(ServiceAudit, FlagsOverlappingShares) {
  const platform::StarPlatform platform = test_platform(10);
  jobs::JobsOptions options;
  options.sharing = jobs::SharingPolicy::kPartitioned;
  options.partitions = 2;
  options.stream =
      jobs::JobStreamSpec::from_trace(trace_jobs({{0.0, 300.0}, {0.0, 300.0}}));
  jobs::ServiceResult result = jobs::run_jobs(platform, options);
  // Slide job 1's share onto job 0's workers.
  result.jobs[1].segments[0].first_worker = result.jobs[0].segments[0].first_worker;
  const check::AuditReport report = check::audit_service_result(result, platform, options);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("share worker"), std::string::npos);
}

TEST(ServiceAudit, FlagsLostWork) {
  const platform::StarPlatform platform = test_platform();
  const jobs::JobsOptions options =
      poisson_options(platform, jobs::SharingPolicy::kExclusive, 0.5);
  jobs::ServiceResult result = jobs::run_jobs(platform, options);
  result.jobs[0].work_done *= 0.5;
  EXPECT_FALSE(check::audit_service_result(result, platform, options).ok());
}

// --- configuration bridge --------------------------------------------------

constexpr const char* kJobsConfig = R"(
[platform]
workers = 8
bandwidth = 12
comp_latency = 0.1

[schedule]
algorithm = rumr
error = 0.2

[simulation]
error = 0.2
seed = 11

[jobs]
load = 0.6
jobs = 12
mean_size = 150
size_distribution = uniform
size_spread = 0.3
sharing = fractional
max_degree = 3
queue = sjf
admission = shed
queue_capacity = 4
)";

TEST(JobsConfig, ParsesTheJobsSection) {
  const auto description = jobs::jobs_from_config(config::ConfigFile::parse(kJobsConfig));
  EXPECT_EQ(description.platform.size(), 8u);
  const jobs::JobsOptions& o = description.options;
  EXPECT_EQ(o.sharing, jobs::SharingPolicy::kFractional);
  EXPECT_EQ(o.discipline, jobs::QueueDiscipline::kSjf);
  EXPECT_EQ(o.admission, jobs::AdmissionPolicy::kShedOldest);
  EXPECT_EQ(o.max_degree, 3u);
  EXPECT_EQ(o.queue_capacity, 4u);
  EXPECT_EQ(o.stream.max_jobs, 12u);
  EXPECT_EQ(o.stream.size_dist, jobs::SizeDistribution::kUniform);
  // load=0.6 on aggregate speed 8 with mean 150: rate * 150 == 4.8.
  EXPECT_NEAR(o.stream.arrival_rate * 150.0, 4.8, 1e-12);
  EXPECT_EQ(o.sim.seed, 11u);

  const jobs::ServiceResult result = jobs::run_jobs(description.platform, o);
  EXPECT_EQ(result.arrived, 12u);
  expect_audit_clean(result, description.platform, o);
}

TEST(JobsConfig, RejectsUnknownEnumValues) {
  const std::string base(kJobsConfig);
  auto broken = base;
  broken.replace(broken.find("sharing = fractional"), 20, "sharing = timeshared ");
  EXPECT_THROW((void)jobs::jobs_from_config(config::ConfigFile::parse(broken)),
               config::ConfigError);
}

TEST(JobsConfig, EnumNamesRoundTrip) {
  EXPECT_STREQ(jobs::to_string(jobs::SharingPolicy::kExclusive), "exclusive");
  EXPECT_STREQ(jobs::to_string(jobs::SharingPolicy::kPartitioned), "partitioned");
  EXPECT_STREQ(jobs::to_string(jobs::SharingPolicy::kFractional), "fractional");
  EXPECT_STREQ(jobs::to_string(jobs::QueueDiscipline::kSjf), "sjf");
  EXPECT_STREQ(jobs::to_string(jobs::AdmissionPolicy::kShedOldest), "shed");
}

// --- exporters -------------------------------------------------------------

TEST(JobsReport, CsvHasOneRowPerJobAndSummaryJsonParses) {
  const platform::StarPlatform platform = test_platform();
  const jobs::JobsOptions options =
      poisson_options(platform, jobs::SharingPolicy::kExclusive, 0.5);
  const jobs::ServiceResult result = jobs::run_jobs(platform, options);

  const std::string csv = report::jobs_csv(result);
  const std::size_t rows = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, result.jobs.size() + 1);  // Header + one per job.
  EXPECT_NE(csv.find("completed"), std::string::npos);

  const std::string json = report::jobs_summary_json(result);
  EXPECT_NE(json.find("\"arrived\":30"), std::string::npos);
  EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
}

}  // namespace
}  // namespace rumr
