// Tests for the observability layer (obs/): metric primitives, the live
// probes, the identities the collected RunMetrics must satisfy on real
// simulated runs, and the JSON/CSV exporters.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/rumr.hpp"
#include "core/umr_policy.hpp"
#include "des/simulator.hpp"
#include "obs/accumulators.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "platform/platform.hpp"
#include "sim/master_worker.hpp"

namespace rumr {
namespace {

platform::StarPlatform test_platform(std::size_t workers = 5) {
  platform::HomogeneousParams params;
  params.workers = workers;
  params.speed = 1.0;
  params.bandwidth = 15.0;
  params.comp_latency = 0.2;
  params.comm_latency = 0.1;
  return platform::StarPlatform::homogeneous(params);
}

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksHighWaterMark) {
  obs::Gauge g;
  g.set(3.0);
  g.set(7.5);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.high_water(), 7.5);
}

TEST(Histogram, RejectsNonAscendingEdges) {
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram::exponential(0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(obs::Histogram::exponential(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BucketsSamplesWithOverflow) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.add(0.5);   // bucket 0
  h.add(1.0);   // bucket 0 (edges are inclusive upper bounds)
  h.add(1.5);   // bucket 1
  h.add(3.0);   // bucket 2
  h.add(100.0); // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, EmptyReportsZeroExtrema) {
  obs::Histogram h({1.0});
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, MergeRejectsMismatchedButCompatibleLayouts) {
  // Same bucket COUNT, different edges: structurally compatible vectors, but
  // merging them would silently mis-bucket every sample — must throw with a
  // message naming the requirement, not crash or merge garbage.
  obs::Histogram linear({1.0, 2.0, 3.0});
  linear.add(1.5);
  obs::Histogram geometric({1.0, 2.0, 4.0});
  geometric.add(1.5);
  try {
    linear.merge(geometric);
    FAIL() << "merge of mismatched edges did not throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("identical upper edges"), std::string::npos);
  }
  // The failed merge must not have corrupted the target.
  EXPECT_EQ(linear.total(), 1u);
  EXPECT_DOUBLE_EQ(linear.sum(), 1.5);
}

TEST(QuantileSketch, EmptySketchReportsZeroes) {
  const obs::QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(sketch.quantile(q), 0.0);
  }
  EXPECT_EQ(sketch.min(), 0.0);
  EXPECT_EQ(sketch.max(), 0.0);
}

TEST(QuantileSketch, SingleSampleIsEveryQuantile) {
  obs::QuantileSketch sketch;
  sketch.add(3.7);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(sketch.quantile(q), 3.7);
  }
}

TEST(QuantileSketch, DuplicateHeavyInputResolvesToTheDuplicate) {
  // 990 copies of one value plus a few outliers, all inside the default
  // comb's resolved span (min_edge * growth^buckets): every interior
  // quantile must land in the duplicated value's bucket, i.e. within the
  // comb's 5% relative error, and the extreme quantiles must stay pinned to
  // the buckets of the observed min and max.
  obs::QuantileSketch sketch;
  for (int i = 0; i < 990; ++i) sketch.add(0.1);
  for (int i = 0; i < 5; ++i) sketch.add(0.002);
  for (int i = 0; i < 5; ++i) sketch.add(0.4);
  EXPECT_NEAR(sketch.quantile(0.0), 0.002, 0.002 * 0.06);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 0.4);  // bucket_hi clamps to max.
  for (const double q : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(sketch.quantile(q), 0.1, 0.1 * 0.06);
  }
}

TEST(Histogram, ExponentialEdgesGrowGeometrically) {
  const obs::Histogram h = obs::Histogram::exponential(1.0, 2.0, 4);
  ASSERT_EQ(h.upper_edges().size(), 4u);
  EXPECT_DOUBLE_EQ(h.upper_edges()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.upper_edges()[1], 2.0);
  EXPECT_DOUBLE_EQ(h.upper_edges()[2], 4.0);
  EXPECT_DOUBLE_EQ(h.upper_edges()[3], 8.0);
}

TEST(DesProbe, TracksQueueDepthHighWater) {
  des::Simulator sim;
  obs::DesProbe probe;
  sim.set_observer(&probe);
  // Three pending at once, then drained; one extra scheduled from a handler.
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  const des::EventId cancelled = sim.schedule_at(3.0, [] {});
  EXPECT_EQ(probe.queue_depth_high_water(), 3u);
  sim.cancel(cancelled);
  EXPECT_EQ(probe.pending(), 2u);
  sim.run();
  EXPECT_EQ(probe.pending(), 0u);
  EXPECT_EQ(probe.queue_depth_high_water(), 3u);
}

TEST(EngineProbe, PartitionsWorkerTime) {
  obs::EngineProbe probe(1);
  probe.compute_begin(0, 1.0);   // idle [0, 1)
  probe.compute_end(0, 3.0);     // compute [1, 3)
  probe.compute_begin(0, 4.0);   // idle [3, 4)
  probe.compute_abort(0, 5.0);   // aborted [4, 5)
  probe.worker_down(0, 6.0);     // idle [5, 6)
  probe.worker_up(0, 8.0);       // down [6, 8)
  const std::vector<obs::WorkerSpans> spans = probe.finish(10.0);  // idle [8, 10)
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_NEAR(spans[0].compute_time, 2.0, 1e-12);
  EXPECT_NEAR(spans[0].aborted_time, 1.0, 1e-12);
  EXPECT_NEAR(spans[0].down_time, 2.0, 1e-12);
  EXPECT_NEAR(spans[0].idle_time, 5.0, 1e-12);
  EXPECT_NEAR(spans[0].compute_time + spans[0].aborted_time + spans[0].idle_time +
                  spans[0].down_time,
              10.0, 1e-12);
}

TEST(EngineProbe, AccountsUplinkOccupancyAndBlocking) {
  obs::EngineProbe probe(1);
  probe.uplink_channels(1, 2.0);  // idle [0, 2)
  probe.uplink_channels(2, 3.0);  // busy [2, 3)
  probe.uplink_channels(1, 5.0);  // busy [3, 5)
  probe.uplink_channels(0, 6.0);  // busy [5, 6)
  probe.block_begin(2.5);
  probe.block_end(3.5);
  (void)probe.finish(8.0);  // idle [6, 8)
  EXPECT_NEAR(probe.uplink_busy_time(), 4.0, 1e-12);
  EXPECT_NEAR(probe.uplink_idle_time(), 4.0, 1e-12);
  EXPECT_NEAR(probe.hol_blocking_time(), 1.0, 1e-12);
}

// The audited identities on real runs: the engine-side bookkeeping must tile
// the makespan exactly, whatever the scenario throws at it.
void expect_identities(const sim::SimResult& result) {
  const obs::RunMetrics& m = result.metrics;
  EXPECT_DOUBLE_EQ(m.makespan, result.makespan);
  EXPECT_NEAR(m.engine.uplink_busy_time + m.engine.uplink_idle_time, m.makespan, 1e-9);
  ASSERT_EQ(m.engine.workers.size(), result.workers.size());
  for (const obs::WorkerSpans& w : m.engine.workers) {
    EXPECT_NEAR(w.compute_time + w.aborted_time + w.idle_time + w.down_time, m.makespan, 1e-9);
  }
  EXPECT_EQ(m.des.events_scheduled, m.des.events_executed + m.des.events_cancelled);
  EXPECT_EQ(m.des.events_executed, result.events);
  EXPECT_GE(m.des.queue_depth_high_water, 1u);
  EXPECT_EQ(m.engine.chunk_sizes.total(), m.engine.dispatches);
}

TEST(RunMetricsIdentities, HoldOnPerfectUmrRun) {
  const platform::StarPlatform p = test_platform();
  core::UmrPolicy policy(p, 500.0);
  const sim::SimResult result = sim::simulate(p, policy, sim::SimOptions{});
  expect_identities(result);
  // Perfect predictions on a single channel: no blocking, no faults.
  EXPECT_DOUBLE_EQ(result.metrics.engine.hol_blocking_time, 0.0);
  EXPECT_EQ(result.metrics.faults.failures, 0u);
  EXPECT_NEAR(result.metrics.engine.uplink_busy_time, result.metrics.engine.uplink_transfer_time,
              1e-9);
  EXPECT_GT(result.metrics.engine.uplink_utilization, 0.0);
  EXPECT_LE(result.metrics.engine.uplink_utilization, 1.0);
}

TEST(RunMetricsIdentities, HoldUnderErrorAndTightBuffers) {
  const platform::StarPlatform p = test_platform();
  core::UmrPolicy policy(p, 500.0);
  sim::SimOptions options = sim::SimOptions::with_error(0.5, 77);
  options.worker_buffer_capacity = 1;
  const sim::SimResult result = sim::simulate(p, policy, options);
  expect_identities(result);
}

TEST(RunMetricsIdentities, HoldWithMultipleUplinkChannels) {
  const platform::StarPlatform p = test_platform();
  core::UmrPolicy policy(p, 500.0);
  sim::SimOptions options = sim::SimOptions::with_error(0.3, 5);
  options.uplink_channels = 2;
  const sim::SimResult result = sim::simulate(p, policy, options);
  expect_identities(result);
  // With overlap, per-transfer totals can exceed occupancy time.
  EXPECT_GE(result.metrics.engine.uplink_transfer_time,
            result.metrics.engine.uplink_busy_time - 1e-9);
}

TEST(RunMetricsIdentities, HoldUnderFaults) {
  const platform::StarPlatform p = test_platform();
  core::RumrPolicy policy(p, 500.0, core::RumrOptions{.known_error = 0.2});
  sim::SimOptions options = sim::SimOptions::with_error(0.2, 99);
  options.faults = faults::FaultSpec::transient(300.0, 30.0);
  const sim::SimResult result = sim::simulate(p, policy, options);
  expect_identities(result);
  EXPECT_EQ(result.metrics.faults.failures, result.faults.failures);
  EXPECT_EQ(result.metrics.faults.chunks_redispatched, result.faults.chunks_redispatched);
  EXPECT_LE(result.metrics.faults.false_suspicions, result.metrics.faults.fencings);
}

TEST(RunMetricsExport, JsonContainsStableKeysAndBalancedBraces) {
  const platform::StarPlatform p = test_platform();
  core::UmrPolicy policy(p, 500.0);
  const sim::SimResult result = sim::simulate(p, policy, sim::SimOptions{});
  const std::string json = obs::to_json(result.metrics);
  EXPECT_NE(json.find("\"makespan\""), std::string::npos);
  EXPECT_NE(json.find("\"uplink_busy_time\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth_high_water\""), std::string::npos);
  EXPECT_NE(json.find("\"workers\""), std::string::npos);
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RunMetricsExport, CsvHasHeaderAndPerWorkerRows) {
  const platform::StarPlatform p = test_platform(3);
  core::UmrPolicy policy(p, 300.0);
  const sim::SimResult result = sim::simulate(p, policy, sim::SimOptions{});
  const std::string csv = obs::to_csv(result.metrics);
  EXPECT_NE(csv.find("metric,value"), std::string::npos);
  EXPECT_NE(csv.find("makespan,"), std::string::npos);
  EXPECT_NE(csv.find("worker0."), std::string::npos);
  EXPECT_NE(csv.find("worker2."), std::string::npos);
}

TEST(SimOptionsValidate, AcceptsDefaultsAndFlagsNonsense) {
  EXPECT_TRUE(sim::SimOptions{}.validate().empty());
  sim::SimOptions bad;
  bad.worker_buffer_capacity = 0;
  bad.uplink_channels = 0;
  bad.output_ratio = -0.5;
  const std::vector<std::string> errors = bad.validate();
  EXPECT_GE(errors.size(), 3u);
}

}  // namespace
}  // namespace rumr
