// Tests for the configuration substrate (config/): the INI parser and the
// run-description bridge used by rumr_cli.

#include <gtest/gtest.h>

#include "config/config_file.hpp"
#include "config/run_description.hpp"
#include "sim/master_worker.hpp"

namespace rumr::config {
namespace {

// --- parser -----------------------------------------------------------------

TEST(ConfigParser, TrimsWhitespace) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(ConfigParser, ParsesSectionsAndKeys) {
  const ConfigFile file = ConfigFile::parse(
      "global = 1\n"
      "[alpha]\n"
      "x = 10\n"
      "name = hello world\n"
      "[beta]\n"
      "x = 20\n");
  EXPECT_EQ(file.get_string("", "global"), "1");
  EXPECT_EQ(file.get_double("alpha", "x", 0.0), 10.0);
  EXPECT_EQ(file.get_string("alpha", "name"), "hello world");
  EXPECT_EQ(file.get_double("beta", "x", 0.0), 20.0);
  EXPECT_TRUE(file.has_section("alpha"));
  EXPECT_FALSE(file.has_section("gamma"));
}

TEST(ConfigParser, CommentsAndBlankLines) {
  const ConfigFile file = ConfigFile::parse(
      "# full-line comment\n"
      "\n"
      "[s]\n"
      "a = 1   # trailing comment\n"
      "b = 2   ; semicolon comment\n");
  EXPECT_EQ(file.get_double("s", "a", 0.0), 1.0);
  EXPECT_EQ(file.get_double("s", "b", 0.0), 2.0);
}

TEST(ConfigParser, LastDuplicateKeyWins) {
  const ConfigFile file = ConfigFile::parse("[s]\na = 1\na = 2\n");
  EXPECT_EQ(file.get_double("s", "a", 0.0), 2.0);
  EXPECT_EQ(file.keys("s").size(), 1u);
}

TEST(ConfigParser, ReportsLineNumbersOnErrors) {
  try {
    (void)ConfigFile::parse("[ok]\nvalid = 1\nbroken line\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
  }
}

TEST(ConfigParser, RejectsMalformedSections) {
  EXPECT_THROW((void)ConfigFile::parse("[unterminated\n"), ConfigError);
  EXPECT_THROW((void)ConfigFile::parse("[]\n"), ConfigError);
  EXPECT_THROW((void)ConfigFile::parse("= value\n"), ConfigError);
}

TEST(ConfigParser, TypedLookups) {
  const ConfigFile file = ConfigFile::parse(
      "[s]\nf = 2.5\nn = 7\nflag_on = yes\nflag_off = 0\nbad = xyz\n");
  EXPECT_EQ(file.get_double("s", "f", 0.0), 2.5);
  EXPECT_EQ(file.get_size("s", "n", 0), 7u);
  EXPECT_TRUE(file.get_bool("s", "flag_on", false));
  EXPECT_FALSE(file.get_bool("s", "flag_off", true));
  EXPECT_EQ(file.get_double("s", "missing", 9.0), 9.0);
  EXPECT_THROW((void)file.get_double("s", "bad", 0.0), ConfigError);
  EXPECT_THROW((void)file.get_bool("s", "bad", false), ConfigError);
  EXPECT_THROW((void)file.require_double("s", "missing"), ConfigError);
}

TEST(ConfigParser, LoadRejectsMissingFile) {
  EXPECT_THROW((void)ConfigFile::load("/nonexistent/rumr.conf"), ConfigError);
}

// --- run descriptions --------------------------------------------------------

constexpr const char* kSample = R"(
[platform]
workers = 4
speed = 1.0
bandwidth = 8.0
comp_latency = 0.2
comm_latency = 0.1

[worker 2]
speed = 3.0

[workload]
total = 400

[schedule]
algorithm = RUMR
error = 0.3

[simulation]
error = 0.3
seed = 11
repetitions = 3
)";

TEST(RunDescription, BuildsPlatformWithOverrides) {
  const platform::StarPlatform p = platform_from_config(ConfigFile::parse(kSample));
  ASSERT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p.worker(0).speed, 1.0);
  EXPECT_DOUBLE_EQ(p.worker(2).speed, 3.0);
  EXPECT_DOUBLE_EQ(p.worker(2).bandwidth, 8.0);  // Inherited default.
  EXPECT_FALSE(p.is_homogeneous());
}

TEST(RunDescription, InfersWorkerCountFromSections) {
  const ConfigFile file = ConfigFile::parse(
      "[platform]\nbandwidth = 4\n[worker 0]\nspeed = 1\n[worker 5]\nspeed = 2\n"
      "[workload]\ntotal = 10\n");
  const platform::StarPlatform p = platform_from_config(file);
  EXPECT_EQ(p.size(), 6u);
  EXPECT_DOUBLE_EQ(p.worker(5).speed, 2.0);
}

TEST(RunDescription, ParsesScheduleAndSimulation) {
  const RunDescription run = run_from_config(ConfigFile::parse(kSample));
  EXPECT_DOUBLE_EQ(run.w_total, 400.0);
  EXPECT_EQ(run.algorithm, "rumr");  // Lower-cased.
  EXPECT_DOUBLE_EQ(run.known_error, 0.3);
  EXPECT_EQ(run.sim_options.seed, 11u);
  EXPECT_EQ(run.repetitions, 3u);
}

TEST(RunDescription, ParsesLinkFaultRetransmitAndCheckpointSections) {
  const std::string text = std::string(kSample) + R"(
[faults.link]
loss = 0.05
spike_probability = 0.2
spike_mean = 1.5
degraded_mtbf = 30
degraded_mttr = 5
degraded_factor = 4

[retransmit]
enabled = true
k = 6
rto_min = 0.01
max_retries = 12

[checkpoint]
interval = 0.5
)";
  const RunDescription run = run_from_config(ConfigFile::parse(text));
  const sim::SimOptions& o = run.sim_options;
  EXPECT_DOUBLE_EQ(o.link.loss, 0.05);
  EXPECT_DOUBLE_EQ(o.link.spike_probability, 0.2);
  EXPECT_DOUBLE_EQ(o.link.spike_mean, 1.5);
  EXPECT_DOUBLE_EQ(o.link.degraded_mtbf, 30.0);
  EXPECT_DOUBLE_EQ(o.link.degraded_mttr, 5.0);
  EXPECT_DOUBLE_EQ(o.link.degraded_factor, 4.0);
  EXPECT_TRUE(o.link.enabled());
  EXPECT_TRUE(o.retransmit.enabled);
  EXPECT_DOUBLE_EQ(o.retransmit.alpha, 0.125);  // Untouched default.
  EXPECT_DOUBLE_EQ(o.retransmit.k, 6.0);
  EXPECT_DOUBLE_EQ(o.retransmit.rto_min, 0.01);
  EXPECT_EQ(o.retransmit.max_retries, 12u);
  EXPECT_DOUBLE_EQ(o.checkpoint.interval, 0.5);
}

TEST(RunDescription, LinkSectionsDefaultToInert) {
  const RunDescription run = run_from_config(ConfigFile::parse(kSample));
  EXPECT_FALSE(run.sim_options.link.enabled());
  EXPECT_FALSE(run.sim_options.retransmit.enabled);
  EXPECT_DOUBLE_EQ(run.sim_options.checkpoint.interval, 0.0);
}

TEST(RunDescription, RejectsMissingPieces) {
  EXPECT_THROW((void)run_from_config(ConfigFile::parse("[workload]\ntotal = 5\n")), ConfigError);
  EXPECT_THROW(
      (void)run_from_config(ConfigFile::parse("[platform]\nworkers = 2\nbandwidth = 4\n")),
      ConfigError);
  EXPECT_THROW((void)run_from_config(ConfigFile::parse(
                   "[platform]\nworkers = 2\nbandwidth = 4\n[workload]\ntotal = -5\n")),
               ConfigError);
}

TEST(RunDescription, RejectsBadDistribution) {
  const std::string text = std::string(kSample) + "[simulation]\ndistribution = weird\n";
  EXPECT_THROW((void)run_from_config(ConfigFile::parse(text)), ConfigError);
}

TEST(RunDescription, EveryAlgorithmNameInstantiatesAndRuns) {
  for (const char* name : {"rumr", "rumr-adaptive", "umr", "umr-eager", "mi-1", "mi-3",
                           "factoring", "wf", "gss", "tss", "fsc"}) {
    RunDescription run = run_from_config(ConfigFile::parse(kSample));
    run.algorithm = name;
    const auto policy = make_policy(run);
    ASSERT_NE(policy, nullptr) << name;
    const sim::SimResult r = simulate(run.platform, *policy, run.sim_options);
    EXPECT_NEAR(r.work_dispatched, 400.0, 1e-6) << name;
  }
}

TEST(RunDescription, RejectsUnknownAlgorithm) {
  RunDescription run = run_from_config(ConfigFile::parse(kSample));
  run.algorithm = "quantum-annealing";
  EXPECT_THROW((void)make_policy(run), ConfigError);
  run.algorithm = "mi-0";
  EXPECT_THROW((void)make_policy(run), ConfigError);
}

}  // namespace
}  // namespace rumr::config
