// Tests for the Table 1 parameter grid (sweep/grid.hpp).

#include "sweep/grid.hpp"

#include <gtest/gtest.h>

namespace rumr::sweep {
namespace {

TEST(GridSpec, PaperFullMatchesTableOne) {
  const GridSpec spec = GridSpec::paper_full();
  EXPECT_EQ(spec.n_values.size(), 9u);          // 10, 15, ..., 50.
  EXPECT_EQ(spec.b_over_n_values.size(), 9u);   // 1.2 .. 2.0 step 0.1.
  EXPECT_EQ(spec.clat_values.size(), 11u);      // 0 .. 1 step 0.1.
  EXPECT_EQ(spec.nlat_values.size(), 11u);
  EXPECT_EQ(spec.size(), 9u * 9u * 11u * 11u);  // 9801 configurations.
  EXPECT_EQ(spec.n_values.front(), 10u);
  EXPECT_EQ(spec.n_values.back(), 50u);
  EXPECT_DOUBLE_EQ(spec.b_over_n_values.front(), 1.2);
  EXPECT_DOUBLE_EQ(spec.b_over_n_values.back(), 2.0);
  EXPECT_DOUBLE_EQ(spec.clat_values.back(), 1.0);
}

TEST(GridSpec, DecimatedCoversSameRanges) {
  const GridSpec spec = GridSpec::decimated();
  EXPECT_EQ(spec.size(), 5u * 5u * 6u * 6u);
  EXPECT_EQ(spec.n_values.front(), 10u);
  EXPECT_EQ(spec.n_values.back(), 50u);
  EXPECT_DOUBLE_EQ(spec.b_over_n_values.front(), 1.2);
  EXPECT_DOUBLE_EQ(spec.b_over_n_values.back(), 2.0);
  EXPECT_DOUBLE_EQ(spec.clat_values.back(), 1.0);
  EXPECT_DOUBLE_EQ(spec.nlat_values.back(), 1.0);
}

TEST(GridSpec, LowLatencyRestrictionIsStrict) {
  const GridSpec spec = GridSpec::paper_full().restrict_low_latency();
  for (double c : spec.clat_values) EXPECT_LT(c, 0.3);
  for (double n : spec.nlat_values) EXPECT_LT(n, 0.3);
  EXPECT_EQ(spec.clat_values.size(), 3u);  // 0.0, 0.1, 0.2.
  EXPECT_EQ(spec.nlat_values.size(), 3u);
}

TEST(Grid, CrossProductOrderIsDeterministic) {
  GridSpec spec;
  spec.n_values = {10, 20};
  spec.b_over_n_values = {1.2};
  spec.clat_values = {0.0, 0.5};
  spec.nlat_values = {0.1};
  const auto configs = make_grid(spec);
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].n, 10u);
  EXPECT_EQ(configs[0].clat, 0.0);
  EXPECT_EQ(configs[1].clat, 0.5);
  EXPECT_EQ(configs[2].n, 20u);
}

TEST(PlatformConfig, InstantiatesHomogeneousPlatform) {
  const PlatformConfig config{20, 1.8, 0.3, 0.9};
  const platform::StarPlatform p = config.to_platform();
  EXPECT_EQ(p.size(), 20u);
  EXPECT_TRUE(p.is_homogeneous());
  EXPECT_DOUBLE_EQ(p.worker(0).bandwidth, 36.0);  // 1.8 * 20 (Figure 5's r = 36).
  EXPECT_DOUBLE_EQ(p.worker(0).speed, 1.0);
  EXPECT_DOUBLE_EQ(p.worker(0).comp_latency, 0.3);
  EXPECT_DOUBLE_EQ(p.worker(0).comm_latency, 0.9);
}

TEST(PlatformConfig, LabelIsReadable) {
  const PlatformConfig config{20, 1.8, 0.3, 0.9};
  EXPECT_EQ(config.label(), "N=20 B=36 cLat=0.3 nLat=0.9");
}

TEST(ErrorAxis, StepsAreExact) {
  const auto errors = error_axis(0.48, 0.02);
  EXPECT_EQ(errors.size(), 25u);
  EXPECT_DOUBLE_EQ(errors.front(), 0.0);
  EXPECT_DOUBLE_EQ(errors.back(), 0.48);
  EXPECT_DOUBLE_EQ(errors[3], 0.06);  // No 0.060000000000000005 drift.
}

TEST(ErrorBands, MatchPaperTableHeaders) {
  EXPECT_EQ(error_band(0.0), 0u);
  EXPECT_EQ(error_band(0.08), 0u);
  EXPECT_EQ(error_band(0.09), SIZE_MAX);  // Between bands.
  EXPECT_EQ(error_band(0.10), 1u);
  EXPECT_EQ(error_band(0.18), 1u);
  EXPECT_EQ(error_band(0.25), 2u);
  EXPECT_EQ(error_band(0.38), 3u);
  EXPECT_EQ(error_band(0.48), 4u);
  EXPECT_EQ(error_band(0.50), SIZE_MAX);
  ASSERT_EQ(error_band_labels().size(), 5u);
  EXPECT_EQ(error_band_labels()[0], "0-0.08");
  EXPECT_EQ(error_band_labels()[4], "0.4-0.48");
}

}  // namespace
}  // namespace rumr::sweep
