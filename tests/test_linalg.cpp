// Unit and property tests for the dense LU substrate (linalg/).

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace rumr::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, IdentityMultiplyIsIdentity) {
  const Matrix eye = Matrix::identity(4);
  const std::vector<double> x = {1.0, -2.0, 3.0, 0.5};
  EXPECT_EQ(eye.multiply(x), x);
}

TEST(Lu, SolvesDiagonalSystem) {
  Matrix a(3, 3);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  a(2, 2) = 8.0;
  const auto x = solve(a, {2.0, 8.0, 32.0});
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 4.0, 1e-12);
}

TEST(Lu, SolvesKnownSystemRequiringPivoting) {
  // The MI-1 geometric system that exposed the interleaved-swap bug: the
  // pivot pattern swaps rows after partial elimination.
  const Matrix a{{1, -7.0 / 6, 0, 0}, {0, 1, -7.0 / 6, 0}, {0, 0, 1, -7.0 / 6}, {1, 1, 1, 1}};
  const std::vector<double> b = {0, 0, 0, 1000};
  const auto x = solve(a, b);
  ASSERT_EQ(x.size(), 4u);
  // alpha_{i+1} = (6/7) alpha_i, sum = 1000 => alpha_0 = 343000/1105.
  EXPECT_NEAR(x[0], 343000.0 / 1105.0, 1e-9);
  EXPECT_NEAR(x[1] / x[0], 6.0 / 7.0, 1e-12);
  EXPECT_NEAR(x[2] / x[1], 6.0 / 7.0, 1e-12);
  EXPECT_NEAR(residual_inf_norm(a, x, b), 0.0, 1e-9);
}

TEST(Lu, ZeroPivotRequiringSwap) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = solve(a, {5.0, 7.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_TRUE(lu_factor(a).singular);
  EXPECT_TRUE(solve(a, {1.0, 2.0}).empty());
  EXPECT_EQ(determinant(a), 0.0);
}

TEST(Lu, DeterminantOfKnownMatrices) {
  EXPECT_NEAR(determinant(Matrix::identity(5)), 1.0, 1e-12);
  const Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(determinant(a), 6.0, 1e-12);
  const Matrix swapped{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(determinant(swapped), -1.0, 1e-12);
}

/// Property: for random well-conditioned systems across sizes, solve()
/// residuals vanish.
class LuRandomSystems : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandomSystems, ResidualIsTiny) {
  const std::size_t n = GetParam();
  stats::Rng rng(1000 + n);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
      a(r, r) += 2.0 * static_cast<double>(n);  // Diagonal dominance.
    }
    std::vector<double> b(n);
    for (double& v : b) v = rng.uniform(-10.0, 10.0);
    const auto x = solve(a, b);
    ASSERT_EQ(x.size(), n);
    EXPECT_LT(residual_inf_norm(a, x, b), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSystems,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 13, 21, 50, 120));

TEST(Lu, ReconstructsPaTimesEqualsLu) {
  stats::Rng rng(77);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-5.0, 5.0);
  }
  const LuDecomposition f = lu_factor(a);
  ASSERT_FALSE(f.singular);

  // Apply recorded swaps to a copy of A.
  Matrix pa = a;
  for (std::size_t k = 0; k < n; ++k) {
    if (f.pivots[k] != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(pa(k, c), pa(f.pivots[k], c));
    }
  }
  // Multiply L * U from the packed factorization.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double lv = r > k ? f.lu(r, k) : (r == k ? 1.0 : 0.0);
        const double uv = k <= c ? f.lu(k, c) : 0.0;
        sum += lv * uv;
      }
      EXPECT_NEAR(sum, pa(r, c), 1e-10);
    }
  }
}

}  // namespace
}  // namespace rumr::linalg
