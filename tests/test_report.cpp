// Tests for the reporting substrate (report/): text tables, series, CSV, and
// ASCII plots.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "report/ascii_plot.hpp"
#include "report/csv.hpp"
#include "report/series.hpp"
#include "report/table.hpp"

namespace rumr::report {
namespace {

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-1.005, 1), "-1.0");
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"algorithm", "win%"});
  table.add_row({"RUMR", "86.48"});
  table.add_row({"MI-1", "5.2"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("algorithm"), std::string::npos);
  EXPECT_NE(out.find("RUMR"), std::string::npos);
  // Numbers are right-aligned: "5.2" sits at the column's right edge, so it
  // appears padded to the same end column as "86.48".
  const auto pos_a = out.find("86.48");
  const auto pos_b = out.find("5.2");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
}

TEST(TextTable, DoubleRowHelper) {
  TextTable table({"name", "a", "b"});
  table.add_row("row", {1.234, 5.678}, 1);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("1.2"), std::string::npos);
  EXPECT_NE(out.find("5.7"), std::string::npos);
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_EQ(table.columns(), 3u);
}

TEST(TextTable, ShortRowsPadWithEmptyCells) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NO_THROW((void)table.to_string());
}

TEST(TextTable, PrintsToStream) {
  TextTable table({"x"});
  table.add_row({"1"});
  std::ostringstream out;
  table.print(out);
  EXPECT_EQ(out.str(), table.to_string());
}

TEST(Series, AddAndSize) {
  Series s{"test", {}, {}};
  s.add(1.0, 2.0);
  s.add(3.0, 4.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.x[1], 3.0);
}

TEST(SeriesSet, FindByName) {
  SeriesSet set;
  set.series.push_back({"alpha", {0.0}, {1.0}});
  set.series.push_back({"beta", {0.0}, {2.0}});
  EXPECT_NE(set.find("alpha"), nullptr);
  EXPECT_EQ(set.find("alpha")->y[0], 1.0);
  EXPECT_EQ(set.find("missing"), nullptr);
}

TEST(SeriesSet, Extrema) {
  SeriesSet set;
  set.series.push_back({"a", {0.0, 1.0}, {5.0, -1.0}});
  set.series.push_back({"b", {-2.0, 0.5}, {3.0, 7.0}});
  EXPECT_DOUBLE_EQ(set.min_x(), -2.0);
  EXPECT_DOUBLE_EQ(set.max_x(), 1.0);
  EXPECT_DOUBLE_EQ(set.min_y(), -1.0);
  EXPECT_DOUBLE_EQ(set.max_y(), 7.0);
  EXPECT_FALSE(set.empty());
  EXPECT_TRUE(SeriesSet{}.empty());
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesLongFormat) {
  SeriesSet set;
  set.x_label = "error";
  set.y_label = "normalized makespan";
  set.series.push_back({"UMR", {0.0, 0.1}, {1.0, 1.05}});
  const std::string csv = to_csv(set);
  EXPECT_NE(csv.find("series,error,normalized makespan"), std::string::npos);
  EXPECT_NE(csv.find("UMR,0,1"), std::string::npos);
  EXPECT_NE(csv.find("UMR,0.1,1.05"), std::string::npos);
}

TEST(Csv, DefaultsHeaderLabels) {
  SeriesSet set;
  set.series.push_back({"s", {1.0}, {2.0}});
  EXPECT_NE(to_csv(set).find("series,x,y"), std::string::npos);
}

TEST(AsciiPlot, EmptySetSaysNoData) {
  EXPECT_EQ(render_plot(SeriesSet{}), "(no data)\n");
}

TEST(AsciiPlot, ContainsGlyphsTitleAndLegend) {
  SeriesSet set;
  set.title = "Figure 4(a)";
  set.x_label = "error";
  set.y_label = "normalized";
  set.series.push_back({"UMR", {0.0, 0.25, 0.5}, {1.0, 1.2, 1.5}});
  set.series.push_back({"Factoring", {0.0, 0.25, 0.5}, {1.4, 1.2, 1.1}});
  const std::string plot = render_plot(set);
  EXPECT_NE(plot.find("Figure 4(a)"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
  EXPECT_NE(plot.find("UMR"), std::string::npos);
  EXPECT_NE(plot.find("Factoring"), std::string::npos);
  EXPECT_NE(plot.find("x: error"), std::string::npos);
}

TEST(AsciiPlot, HonorsFixedYRange) {
  SeriesSet set;
  set.series.push_back({"s", {0.0, 1.0}, {0.5, 0.6}});
  PlotOptions options;
  options.y_min = 0.0;
  options.y_max = 2.0;
  const std::string plot = render_plot(set, options);
  EXPECT_NE(plot.find("2.00"), std::string::npos);
  EXPECT_NE(plot.find("0.00"), std::string::npos);
}

TEST(AsciiPlot, SinglePointSeriesDoesNotCrash) {
  SeriesSet set;
  set.series.push_back({"dot", {0.5}, {1.0}});
  EXPECT_NO_THROW((void)render_plot(set));
}

// --- degenerate-input hardening --------------------------------------------

TEST(SeriesSet, ExtremaSkipNonFiniteValues) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  SeriesSet set;
  set.series.push_back({"a", {0.0, nan, 2.0}, {1.0, 5.0, inf}});
  EXPECT_DOUBLE_EQ(set.min_x(), 0.0);
  EXPECT_DOUBLE_EQ(set.max_x(), 2.0);
  EXPECT_DOUBLE_EQ(set.min_y(), 1.0);
  EXPECT_DOUBLE_EQ(set.max_y(), 5.0);
}

TEST(AsciiPlot, AllNonFiniteSeriesSaysNoData) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  SeriesSet set;
  set.series.push_back({"ghost", {nan, nan}, {nan, nan}});
  EXPECT_EQ(render_plot(set), "(no data)\n");
}

TEST(AsciiPlot, SkipsNonFinitePointsButPlotsTheRest) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  SeriesSet set;
  set.series.push_back({"mixed", {0.0, 1.0, 2.0, 3.0}, {1.0, nan, inf, 2.0}});
  std::string plot;
  ASSERT_NO_THROW(plot = render_plot(set));
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("mixed"), std::string::npos);
}

TEST(AsciiPlot, DegenerateDimensionsDoNotCrash) {
  SeriesSet set;
  set.series.push_back({"s", {0.0, 1.0}, {1.0, 2.0}});
  PlotOptions options;
  options.width = 1;
  options.height = 1;
  EXPECT_NO_THROW((void)render_plot(set, options));
}

TEST(AsciiPlot, IdenticalYValuesDoNotCrash) {
  SeriesSet set;
  set.series.push_back({"flat", {0.0, 1.0, 2.0}, {3.0, 3.0, 3.0}});
  std::string plot;
  ASSERT_NO_THROW(plot = render_plot(set));
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(Csv, SpellsNonFiniteValuesStably) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  SeriesSet set;
  set.series.push_back({"s", {0.0, 1.0, 2.0}, {nan, inf, -inf}});
  const std::string csv = to_csv(set);
  EXPECT_NE(csv.find("s,0,nan"), std::string::npos);
  EXPECT_NE(csv.find("s,1,inf"), std::string::npos);
  EXPECT_NE(csv.find("s,2,-inf"), std::string::npos);
  EXPECT_EQ(csv.find("-nan"), std::string::npos);
}

}  // namespace
}  // namespace rumr::report
