// Tests for the sweep parallelism substrate (sweep/thread_pool.hpp).

#include "sweep/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rumr::sweep {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  // Single-threaded execution preserves index order.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  const auto run = [](std::size_t threads) {
    std::vector<double> out(500);
    parallel_for(500, [&](std::size_t i) { out[i] = static_cast<double>(i * i); }, threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  const double reference = run(1);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(8), reference);
  EXPECT_EQ(run(0), reference);  // Auto.
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(parallel_for(100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            },
                            4),
               std::runtime_error);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
  }  // Destructor joins.
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ReportsThreadCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.thread_count(), 5u);
  ThreadPool auto_pool(0);
  EXPECT_GE(auto_pool.thread_count(), 1u);
}

TEST(DefaultThreadCount, AtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

// --- width-1 inline mode ----------------------------------------------------

TEST(ThreadPool, SingleThreadPoolSpawnsNoThreadsAndRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.spawned_threads(), 0u);
  EXPECT_EQ(pool.thread_count(), 1u);

  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on{};
  int runs = 0;
  pool.submit([&] {
    ran_on = std::this_thread::get_id();
    ++runs;
  });
  // Inline semantics: the task already completed during submit(), on the
  // calling thread, before any wait.
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(ran_on, caller);
  pool.wait_idle();
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, InlinePoolHandlesTasksSubmittingTasks) {
  ThreadPool pool(1);
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) pool.submit(recurse);
  };
  pool.submit(recurse);
  pool.wait_idle();
  EXPECT_EQ(depth, 5);
}

TEST(ThreadPool, MultiThreadPoolStillSpawnsWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.spawned_threads(), 4u);
  EXPECT_EQ(pool.thread_count(), 4u);
}

TEST(ThreadPool, IdenticalResultsForZeroOneAndManyThreads) {
  // Deterministic per-index work (a splitmix64 round): the result vector
  // must not depend on the pool width at all.
  const auto mix = [](std::uint64_t i) {
    std::uint64_t z = i + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31U);
  };
  const auto run = [&mix](std::size_t threads) {
    std::vector<std::uint64_t> out(128, 0);
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < out.size(); ++i) {
      pool.submit([&out, &mix, i] { out[i] = mix(i); });
    }
    pool.wait_idle();
    return out;
  };
  const std::vector<std::uint64_t> reference = run(1);
  EXPECT_EQ(run(0), reference);
  EXPECT_EQ(run(4), reference);
}

}  // namespace
}  // namespace rumr::sweep
