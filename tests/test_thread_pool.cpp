// Tests for the sweep parallelism substrate (sweep/thread_pool.hpp).

#include "sweep/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rumr::sweep {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  // Single-threaded execution preserves index order.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  const auto run = [](std::size_t threads) {
    std::vector<double> out(500);
    parallel_for(500, [&](std::size_t i) { out[i] = static_cast<double>(i * i); }, threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  const double reference = run(1);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(8), reference);
  EXPECT_EQ(run(0), reference);  // Auto.
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(parallel_for(100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            },
                            4),
               std::runtime_error);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
  }  // Destructor joins.
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ReportsThreadCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.thread_count(), 5u);
  ThreadPool auto_pool(0);
  EXPECT_GE(auto_pool.thread_count(), 1u);
}

TEST(DefaultThreadCount, AtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace rumr::sweep
