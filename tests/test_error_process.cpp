// Tests for non-stationary error processes (stats/error_process.hpp).

#include "stats/error_process.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hpp"

namespace rumr::stats {
namespace {

TEST(ErrorProcess, DefaultIsExact) {
  ErrorProcess process;
  EXPECT_TRUE(process.is_exact());
  Rng rng(1);
  EXPECT_EQ(process.actual_duration(5.0, rng), 5.0);
}

TEST(ErrorProcess, ImplicitConversionFromErrorModel) {
  const ErrorProcessSpec spec = ErrorModel::truncated_normal(0.3);
  EXPECT_EQ(spec.dynamics, ErrorDynamics::kStationary);
  EXPECT_DOUBLE_EQ(spec.base.error(), 0.3);
}

TEST(ErrorProcess, StationaryMatchesErrorModel) {
  // Stationary process and bare model consume the RNG identically.
  const ErrorModel model = ErrorModel::truncated_normal(0.25);
  ErrorProcess process{ErrorProcessSpec{model}};
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(process.actual_duration(3.0, a), model.actual_duration(3.0, b));
  }
}

TEST(ErrorProcess, RandomWalkDriftsButStaysBounded) {
  ErrorProcessSpec spec;
  spec.base = ErrorModel::truncated_normal(0.2);
  spec.dynamics = ErrorDynamics::kRandomWalk;
  spec.walk_step = 0.05;
  spec.walk_max = 0.6;
  ErrorProcess process(spec);
  Rng rng(11);
  double min_level = 1.0;
  double max_level = 0.0;
  for (int i = 0; i < 5000; ++i) {
    (void)process.actual_duration(1.0, rng);
    min_level = std::min(min_level, process.current_error());
    max_level = std::max(max_level, process.current_error());
    EXPECT_GE(process.current_error(), 0.0);
    EXPECT_LE(process.current_error(), 0.6 + 1e-12);
  }
  EXPECT_LT(min_level, 0.1);  // The walk actually moved...
  EXPECT_GT(max_level, 0.3);  // ...in both directions.
}

TEST(ErrorProcess, BurstSwitchesRegimes) {
  ErrorProcessSpec spec;
  spec.base = ErrorModel::truncated_normal(0.1);
  spec.dynamics = ErrorDynamics::kBurst;
  spec.burst_factor = 4.0;
  spec.switch_probability = 0.1;
  ErrorProcess process(spec);
  Rng rng(13);
  int calm = 0;
  int burst = 0;
  for (int i = 0; i < 2000; ++i) {
    (void)process.actual_duration(1.0, rng);
    if (process.current_error() > 0.2) ++burst;
    else ++calm;
  }
  EXPECT_GT(calm, 200);   // Both regimes were visited substantially.
  EXPECT_GT(burst, 200);
}

TEST(ErrorProcess, BurstAmplifiesSpread) {
  // The realized spread of a bursty process exceeds its calm-regime level.
  ErrorProcessSpec calm_spec;
  calm_spec.base = ErrorModel::truncated_normal(0.1);
  ErrorProcessSpec burst_spec = calm_spec;
  burst_spec.dynamics = ErrorDynamics::kBurst;
  burst_spec.burst_factor = 5.0;
  burst_spec.switch_probability = 0.05;

  Rng rng_a(17);
  Rng rng_b(17);
  ErrorProcess calm(calm_spec);
  ErrorProcess bursty(burst_spec);
  Accumulator calm_acc;
  Accumulator burst_acc;
  for (int i = 0; i < 20000; ++i) {
    calm_acc.add(calm.actual_duration(1.0, rng_a));
    burst_acc.add(bursty.actual_duration(1.0, rng_b));
  }
  EXPECT_GT(burst_acc.stddev(), 1.5 * calm_acc.stddev());
}

TEST(ErrorProcess, WalkWithExactBasePerturbsOnceLevelRises) {
  // Starting from error = 0 with random-walk dynamics, perturbations appear
  // as soon as the walk leaves zero.
  ErrorProcessSpec spec;
  spec.base = ErrorModel::none();
  spec.dynamics = ErrorDynamics::kRandomWalk;
  spec.walk_step = 0.05;
  ErrorProcess process(spec);
  Rng rng(19);
  bool perturbed = false;
  for (int i = 0; i < 100; ++i) {
    if (process.actual_duration(1.0, rng) != 1.0) perturbed = true;
  }
  EXPECT_TRUE(perturbed);
}

TEST(ErrorProcess, BurstSwitchProbabilityZeroNeverBursts) {
  ErrorProcessSpec spec;
  spec.base = ErrorModel::truncated_normal(0.1);
  spec.dynamics = ErrorDynamics::kBurst;
  spec.burst_factor = 4.0;
  spec.switch_probability = 0.0;
  ErrorProcess process(spec);
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    (void)process.actual_duration(1.0, rng);
    EXPECT_DOUBLE_EQ(process.current_error(), 0.1) << "burst entered at step " << i;
  }
}

TEST(ErrorProcess, BurstSwitchProbabilityOneTogglesEveryOperation) {
  ErrorProcessSpec spec;
  spec.base = ErrorModel::truncated_normal(0.1);
  spec.dynamics = ErrorDynamics::kBurst;
  spec.burst_factor = 4.0;
  spec.switch_probability = 1.0;
  ErrorProcess process(spec);
  Rng rng(29);
  // Starts calm; with certain switching the regime alternates strictly.
  double previous = process.current_error();
  EXPECT_DOUBLE_EQ(previous, 0.1);
  for (int i = 0; i < 100; ++i) {
    (void)process.actual_duration(1.0, rng);
    const double level = process.current_error();
    EXPECT_NE(level, previous) << "regime failed to toggle at step " << i;
    EXPECT_DOUBLE_EQ(level, (i % 2 == 0) ? 0.4 : 0.1);
    previous = level;
  }
}

TEST(ErrorProcess, WalkStepZeroKeepsLevelConstant) {
  ErrorProcessSpec spec;
  spec.base = ErrorModel::truncated_normal(0.2);
  spec.dynamics = ErrorDynamics::kRandomWalk;
  spec.walk_step = 0.0;
  ErrorProcess process(spec);
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    (void)process.actual_duration(1.0, rng);
    EXPECT_DOUBLE_EQ(process.current_error(), 0.2) << "level drifted at step " << i;
  }
}

TEST(ErrorProcess, WalkReflectsAtCeiling) {
  // Start the walk at the ceiling: reflection must keep it inside [0, max]
  // while large steps keep pushing against the boundary.
  ErrorProcessSpec spec;
  spec.base = ErrorModel::truncated_normal(0.3);
  spec.dynamics = ErrorDynamics::kRandomWalk;
  spec.walk_step = 0.2;
  spec.walk_max = 0.3;
  ErrorProcess process(spec);
  Rng rng(37);
  bool touched_ceiling_region = false;
  for (int i = 0; i < 5000; ++i) {
    (void)process.actual_duration(1.0, rng);
    const double level = process.current_error();
    EXPECT_GE(level, 0.0);
    EXPECT_LE(level, 0.3 + 1e-12);
    if (level > 0.25) touched_ceiling_region = true;
  }
  EXPECT_TRUE(touched_ceiling_region);  // Reflection, not absorption, at the top.
}

}  // namespace
}  // namespace rumr::stats
