// Direct unit tests for util::FlatFifo, the engine's per-worker queue.
// The engine exercises it indirectly everywhere; these pin down the
// container contract itself: head-index recycling, erase, move/clear
// semantics, and an interleaved push/pop comparison against std::deque.

#include "util/flat_fifo.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <numeric>
#include <string>
#include <vector>

#include "stats/rng.hpp"

namespace rumr {
namespace {

TEST(FlatFifo, StartsEmpty) {
  util::FlatFifo<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.begin(), q.end());
}

TEST(FlatFifo, FifoOrderAcrossManyCycles) {
  util::FlatFifo<int> q;
  int next_push = 0;
  int next_pop = 0;
  // Wrap through several fill/drain cycles so the head index repeatedly
  // advances past prior pushes and the drain-time compaction kicks in.
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 7; ++i) q.push_back(next_push++);
    while (!q.empty()) {
      EXPECT_EQ(q.front(), next_pop++);
      q.pop_front();
    }
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(FlatFifo, DrainRecyclesCapacityInsteadOfGrowing) {
  util::FlatFifo<int> q;
  // Steady-state churn: push one, pop one. Without the clear-on-drain
  // recycling the backing vector would grow by one slot per iteration.
  q.push_back(0);
  for (int i = 1; i <= 10000; ++i) {
    q.push_back(i);
    q.pop_front();
  }
  q.pop_front();
  EXPECT_TRUE(q.empty());
  // After a full drain the next push lands at slot 0 again.
  q.push_back(42);
  EXPECT_EQ(&q.front(), &*q.begin());
  EXPECT_EQ(q.front(), 42);
}

TEST(FlatFifo, IterationCoversExactlyTheLiveElements) {
  util::FlatFifo<int> q;
  for (int i = 0; i < 6; ++i) q.push_back(i);
  q.pop_front();
  q.pop_front();
  const std::vector<int> live(q.begin(), q.end());
  EXPECT_EQ(live, (std::vector<int>{2, 3, 4, 5}));
  EXPECT_EQ(q.size(), 4u);
}

TEST(FlatFifo, EraseMiddlePreservesOrder) {
  util::FlatFifo<int> q;
  for (int i = 0; i < 5; ++i) q.push_back(i);
  q.pop_front();  // live: 1 2 3 4
  auto it = q.begin();
  ++it;  // points at 2
  it = q.erase(it);
  EXPECT_EQ(*it, 3);
  const std::vector<int> live(q.begin(), q.end());
  EXPECT_EQ(live, (std::vector<int>{1, 3, 4}));
}

TEST(FlatFifo, EraseLastLiveElementResetsHead) {
  util::FlatFifo<int> q;
  q.push_back(1);
  q.push_back(2);
  q.pop_front();
  q.erase(q.begin());
  EXPECT_TRUE(q.empty());
  q.push_back(7);  // Must not resurrect dead prefix elements.
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.front(), 7);
}

TEST(FlatFifo, ClearEmptiesAdvancedQueue) {
  util::FlatFifo<std::string> q;
  q.push_back("a");
  q.push_back("b");
  q.pop_front();
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push_back("c");
  EXPECT_EQ(q.front(), "c");
  EXPECT_EQ(q.size(), 1u);
}

TEST(FlatFifo, MoveConstructLeavesSourceEmptyAndUsable) {
  util::FlatFifo<int> src;
  for (int i = 0; i < 4; ++i) src.push_back(i);
  src.pop_front();  // Advance the head so the move must carry it over.

  util::FlatFifo<int> dst(std::move(src));
  EXPECT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.front(), 1);

  EXPECT_TRUE(src.empty());  // NOLINT(bugprone-use-after-move): contract under test.
  EXPECT_EQ(src.size(), 0u);
  src.push_back(9);
  EXPECT_EQ(src.front(), 9);
}

TEST(FlatFifo, MoveAssignLeavesSourceEmptyAndUsable) {
  util::FlatFifo<int> src;
  for (int i = 0; i < 4; ++i) src.push_back(i);
  src.pop_front();

  util::FlatFifo<int> dst;
  dst.push_back(99);
  dst = std::move(src);
  const std::vector<int> live(dst.begin(), dst.end());
  EXPECT_EQ(live, (std::vector<int>{1, 2, 3}));

  EXPECT_TRUE(src.empty());  // NOLINT(bugprone-use-after-move): contract under test.
  src.push_back(5);
  EXPECT_EQ(src.front(), 5);
}

TEST(FlatFifo, CopyIsIndependentOfSource) {
  util::FlatFifo<int> a;
  for (int i = 0; i < 3; ++i) a.push_back(i);
  a.pop_front();
  util::FlatFifo<int> b(a);
  a.pop_front();
  const std::vector<int> b_live(b.begin(), b.end());
  EXPECT_EQ(b_live, (std::vector<int>{1, 2}));
  EXPECT_EQ(a.size(), 1u);
}

TEST(FlatFifo, InterleavedOperationsMatchDequeOracle) {
  util::FlatFifo<int> fifo;
  std::deque<int> oracle;
  stats::Rng rng(20260805);
  int next = 0;
  for (int step = 0; step < 20000; ++step) {
    const double u = rng.uniform01();
    if (u < 0.45 || oracle.empty()) {
      fifo.push_back(next);
      oracle.push_back(next);
      ++next;
    } else if (u < 0.85) {
      ASSERT_EQ(fifo.front(), oracle.front());
      fifo.pop_front();
      oracle.pop_front();
    } else if (u < 0.95 && !oracle.empty()) {
      // Erase a pseudo-random live element.
      const auto offset = static_cast<std::ptrdiff_t>(
          rng.uniform01() * static_cast<double>(oracle.size()));
      fifo.erase(fifo.begin() + offset);
      oracle.erase(oracle.begin() + offset);
    } else {
      fifo.clear();
      oracle.clear();
    }
    ASSERT_EQ(fifo.size(), oracle.size());
    ASSERT_EQ(fifo.empty(), oracle.empty());
  }
  EXPECT_TRUE(std::equal(fifo.begin(), fifo.end(), oracle.begin(), oracle.end()));
}

}  // namespace
}  // namespace rumr
