// End-to-end integration tests: the paper's headline claims at pinned
// configurations, exercised through the same pipeline the bench harnesses
// use (factory -> sweep runner -> aggregation).

#include <gtest/gtest.h>

#include "sweep/runner.hpp"

namespace rumr::sweep {
namespace {

/// Low-latency platform, moderate error: RUMR's home turf (paper Fig. 4b).
TEST(Integration, RumrBeatsAllCompetitorsOnLowLatencyPlatformAtHighError) {
  GridSpec spec;
  spec.n_values = {20};
  spec.b_over_n_values = {1.8};
  spec.clat_values = {0.1};
  spec.nlat_values = {0.1};
  SweepOptions options;
  options.errors = {0.4};
  options.repetitions = 40;
  const SweepResult res = run_sweep(make_grid(spec), paper_competitors(), options);
  for (std::size_t a = 1; a < res.algorithms().size(); ++a) {
    EXPECT_GT(res.mean_normalized_makespan(0, a), 1.0)
        << res.algorithms()[a] << " should lose to RUMR here";
  }
}

/// At zero error UMR is at least as good as RUMR (paper: "the only algorithm
/// that outperforms RUMR on average is UMR when the prediction error is
/// small") and both beat MI-x and Factoring.
TEST(Integration, UmrIsBestAtZeroError) {
  GridSpec spec;
  spec.n_values = {10, 30};
  spec.b_over_n_values = {1.5};
  spec.clat_values = {0.2};
  spec.nlat_values = {0.2};
  SweepOptions options;
  options.errors = {0.0};
  options.repetitions = 1;  // Deterministic at zero error.
  const SweepResult res = run_sweep(make_grid(spec), paper_competitors(), options);
  const double umr = res.mean_normalized_makespan(0, 1);
  EXPECT_LE(umr, 1.0 + 1e-9);
  for (std::size_t a = 2; a < res.algorithms().size(); ++a) {
    EXPECT_GT(res.mean_normalized_makespan(0, a), umr) << res.algorithms()[a];
  }
}

/// Factoring's relative makespan improves (falls) as error grows, the
/// paper's "inverted trends" observation, while UMR's worsens (rises) —
/// checked on a low-latency configuration where phase 2 is active.
TEST(Integration, InvertedTrendsForUmrAndFactoring) {
  GridSpec spec;
  spec.n_values = {20};
  spec.b_over_n_values = {1.6};
  spec.clat_values = {0.1};
  spec.nlat_values = {0.05};
  SweepOptions options;
  options.errors = {0.08, 0.44};
  options.repetitions = 40;
  const SweepResult res = run_sweep(make_grid(spec), paper_competitors(), options);
  const std::size_t umr = 1;
  const std::size_t factoring = 6;
  EXPECT_GT(res.mean_normalized_makespan(1, umr), res.mean_normalized_makespan(0, umr));
  EXPECT_LT(res.mean_normalized_makespan(1, factoring),
            res.mean_normalized_makespan(0, factoring));
}

/// MI-x stays well behind RUMR on average over a spread of configurations
/// (the paper: "never get within less than 20% of RUMR on average").
/// Point-wise MI can tie RUMR on benign configs, so — like the paper — the
/// claim is about the average.
TEST(Integration, MultiInstallmentTrailsBadlyOnAverage) {
  GridSpec spec;
  spec.n_values = {10, 30};
  spec.b_over_n_values = {1.2, 1.8};
  spec.clat_values = {0.1, 0.7};
  spec.nlat_values = {0.1, 0.7};
  SweepOptions options;
  options.errors = {0.2};
  options.repetitions = 10;
  const SweepResult res = run_sweep(make_grid(spec), paper_competitors(), options);
  for (std::size_t a = 2; a <= 5; ++a) {  // MI-1 .. MI-4.
    EXPECT_GT(res.mean_normalized_makespan(0, a), 1.05) << res.algorithms()[a];
  }
}

/// FSC is dominated by Factoring in most experiments (the paper measured it
/// and dropped it from the plots for this reason).
TEST(Integration, FscIsDominatedByFactoring) {
  GridSpec spec;
  spec.n_values = {10, 30};
  spec.b_over_n_values = {1.5};
  spec.clat_values = {0.2, 0.6};
  spec.nlat_values = {0.2, 0.6};
  SweepOptions options;
  options.errors = {0.3};
  options.repetitions = 15;
  const SweepResult res = run_sweep(make_grid(spec), extended_competitors(), options);
  const std::size_t factoring = 6;
  const std::size_t fsc = 7;
  std::size_t factoring_wins = 0;
  for (std::size_t c = 0; c < res.configs().size(); ++c) {
    if (res.cell(c, 0, factoring).makespan.mean() < res.cell(c, 0, fsc).makespan.mean()) {
      ++factoring_wins;
    }
  }
  EXPECT_GE(factoring_wins * 2, res.configs().size());  // Majority.
}

/// The fixed 80/20 split is a sensible unknown-error default: it stays
/// within a modest factor of known-error RUMR across the error range
/// (paper section 5.2.1).
TEST(Integration, FixedSplitIsReasonableDefault) {
  GridSpec spec;
  spec.n_values = {20};
  spec.b_over_n_values = {1.6};
  spec.clat_values = {0.1};
  spec.nlat_values = {0.1};
  SweepOptions options;
  options.errors = {0.1, 0.3, 0.5};
  options.repetitions = 20;
  const std::vector<AlgorithmSpec> algos{rumr_spec(), rumr_fixed_spec(80.0)};
  const SweepResult res = run_sweep(make_grid(spec), algos, options);
  for (std::size_t e = 0; e < res.errors().size(); ++e) {
    EXPECT_LT(res.mean_normalized_makespan(e, 1), 1.35);
  }
}

}  // namespace
}  // namespace rumr::sweep
