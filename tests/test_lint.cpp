// Tests for the self-hosted determinism lint (src/lint).
//
// Every rule gets a known-bad fixture it must fire on and a known-good twin
// it must stay silent on; the suppression machinery is proven in both
// directions (honored when real, flagged when stale/unknown/reasonless); and
// the end-to-end driver is run against a scratch tree with a deliberately
// planted violation to prove the CI gate exits nonzero.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/engine.hpp"
#include "lint/lexer.hpp"
#include "lint/report.hpp"
#include "lint/rule.hpp"

namespace fs = std::filesystem;
using rumr::lint::Engine;
using rumr::lint::Finding;
using rumr::lint::Options;
using rumr::lint::SourceFile;

namespace {

std::vector<Finding> lint_snippet(const std::string& rel_path, const std::string& code) {
  const Engine engine;
  return engine.lint_file(SourceFile::from_string(rel_path, code));
}

bool fires(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) return true;
  }
  return false;
}

}  // namespace

// --------------------------------------------------------------------------
// Lexer: the places rule keywords must NOT be seen.
// --------------------------------------------------------------------------

TEST(LintLexer, CommentsStringsAndRawStringsHideTokens) {
  const std::string code =
      "// steady_clock in a line comment\n"
      "/* rand() in a block comment */\n"
      "const char* a = \"std::random_device inside a string\";\n"
      "const char* b = R\"(srand(42) inside a raw string)\";\n"
      "const char* c = R\"xy(steady_clock with )\" decoy )xy\";\n";
  EXPECT_TRUE(lint_snippet("src/lexer_fixture.cpp", code).empty());
}

TEST(LintLexer, TokenKindsAndLines) {
  const auto lexed = rumr::lint::lex("int x = 1'000;\nauto y = 0x1p-3 == z;\n");
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens.front().text, "int");
  EXPECT_EQ(lexed.tokens.front().line, 1);
  bool saw_sep = false;
  bool saw_hexfloat = false;
  for (const auto& t : lexed.tokens) {
    if (t.text == "1'000") saw_sep = true;
    if (t.text == "0x1p-3") saw_hexfloat = true;
  }
  EXPECT_TRUE(saw_sep);
  EXPECT_TRUE(saw_hexfloat);
}

TEST(LintLexer, TrailingVsStandaloneComments) {
  const auto lexed = rumr::lint::lex("int x;  // trailing\n// standalone\nint y;\n");
  ASSERT_EQ(lexed.comments.size(), 2U);
  EXPECT_TRUE(lexed.comments[0].trailing);
  EXPECT_FALSE(lexed.comments[1].trailing);
}

// --------------------------------------------------------------------------
// Rule 1: unordered-container
// --------------------------------------------------------------------------

TEST(LintRules, UnorderedContainerFires) {
  const auto findings =
      lint_snippet("src/sweep/f.cpp", "#include <unordered_map>\nstd::unordered_map<int, int> m;\n");
  EXPECT_TRUE(fires(findings, "unordered-container"));
}

TEST(LintRules, UnorderedContainerGoodTwinSilent) {
  EXPECT_TRUE(lint_snippet("src/sweep/f.cpp", "std::map<int, int> m;\n").empty());
}

TEST(LintRules, UnorderedContainerOnlyAppliesToSrc) {
  EXPECT_TRUE(
      lint_snippet("bench/f.cpp", "std::unordered_map<int, int> m;\n").empty());
}

// --------------------------------------------------------------------------
// Rule 2: ambient-randomness
// --------------------------------------------------------------------------

TEST(LintRules, AmbientRandomnessFires) {
  EXPECT_TRUE(fires(lint_snippet("src/core/f.cpp", "std::random_device rd;\n"),
                    "ambient-randomness"));
  EXPECT_TRUE(
      fires(lint_snippet("src/core/f.cpp", "int x = rand();\n"), "ambient-randomness"));
  EXPECT_TRUE(
      fires(lint_snippet("tools/t.cpp", "srand(42);\n"), "ambient-randomness"));
  EXPECT_TRUE(
      fires(lint_snippet("src/core/f.cpp", "double d = drand48();\n"), "ambient-randomness"));
}

TEST(LintRules, AmbientRandomnessGoodTwinSilent) {
  // Seeded lanes, member calls, and identifiers merely containing 'rand'.
  const std::string good =
      "rumr::stats::Rng rng(seed);\n"
      "double d = rng.uniform01();\n"
      "int r = obj.rand();\n"
      "int operand = strand(3);\n";
  EXPECT_TRUE(lint_snippet("src/core/f.cpp", good).empty());
}

TEST(LintRules, RngFactoryIsExempt) {
  EXPECT_TRUE(lint_snippet("src/stats/rng.cpp", "std::random_device rd;\n").empty());
}

// --------------------------------------------------------------------------
// Rule 3: wall-clock
// --------------------------------------------------------------------------

TEST(LintRules, WallClockFires) {
  EXPECT_TRUE(fires(
      lint_snippet("src/sim/f.cpp", "auto t0 = std::chrono::steady_clock::now();\n"),
      "wall-clock"));
  EXPECT_TRUE(fires(
      lint_snippet("tools/t.cpp", "auto t = std::chrono::system_clock::now();\n"),
      "wall-clock"));
  EXPECT_TRUE(fires(lint_snippet("src/sim/f.cpp", "time_t t = time(nullptr);\n"),
                    "wall-clock"));
}

TEST(LintRules, WallClockGoodTwinSilent) {
  // Simulated time and member fields named 'time' are fine.
  const std::string good =
      "des::SimTime now = sim.now();\n"
      "double when = span.time;\n"
      "schedule(event.time(), cb);\n";  // member call: preceded by '.'
  EXPECT_TRUE(lint_snippet("src/sim/f.cpp", good).empty());
}

TEST(LintRules, WallClockDoesNotApplyToBench) {
  EXPECT_TRUE(
      lint_snippet("bench/b.cpp", "auto t0 = std::chrono::steady_clock::now();\n").empty());
}

// --------------------------------------------------------------------------
// Rule 4: pointer-keyed-container
// --------------------------------------------------------------------------

TEST(LintRules, PointerKeyedContainerFires) {
  EXPECT_TRUE(fires(lint_snippet("src/jobs/f.cpp", "std::map<Worker*, int> owners;\n"),
                    "pointer-keyed-container"));
  EXPECT_TRUE(fires(lint_snippet("src/jobs/f.cpp", "std::set<const Node *> live;\n"),
                    "pointer-keyed-container"));
  EXPECT_TRUE(fires(
      lint_snippet("src/jobs/f.cpp", "std::sort(v.begin(), v.end(), std::less<Job*>{});\n"),
      "pointer-keyed-container"));
}

TEST(LintRules, PointerKeyedContainerGoodTwinSilent) {
  const std::string good =
      "std::map<std::string, int> by_name;\n"
      "std::map<int, Worker*> by_id;\n"  // pointer VALUES are fine
      "std::set<std::pair<int, int>> keys;\n"
      "std::less<> cmp;\n";
  EXPECT_TRUE(lint_snippet("src/jobs/f.cpp", good).empty());
}

// --------------------------------------------------------------------------
// Rule 5: mutable-static
// --------------------------------------------------------------------------

TEST(LintRules, MutableStaticFires) {
  EXPECT_TRUE(fires(lint_snippet("src/core/f.cpp", "static int counter = 0;\n"),
                    "mutable-static"));
  EXPECT_TRUE(fires(lint_snippet("src/core/f.cpp", "static std::vector<int> cache;\n"),
                    "mutable-static"));
  EXPECT_TRUE(fires(
      lint_snippet("src/core/f.cpp", "void f() { static bool warned = false; }\n"),
      "mutable-static"));
}

TEST(LintRules, MutableStaticGoodTwinSilent) {
  const std::string good =
      "static constexpr int kLimit = 3;\n"
      "static const std::vector<std::string> kLabels = {\"a\", \"b\"};\n"
      "static double helper(int x) { return x * 2.5; }\n"
      "struct S { static void reset(); };\n";
  EXPECT_TRUE(lint_snippet("src/core/f.cpp", good).empty());
}

TEST(LintRules, MutableStaticOnlyAppliesToSrc) {
  EXPECT_TRUE(lint_snippet("tools/t.cpp", "static int counter = 0;\n").empty());
}

// --------------------------------------------------------------------------
// Rule 6: float-equality
// --------------------------------------------------------------------------

TEST(LintRules, FloatEqualityFires) {
  EXPECT_TRUE(
      fires(lint_snippet("src/sim/f.cpp", "if (a == 1.0) { go(); }\n"), "float-equality"));
  EXPECT_TRUE(
      fires(lint_snippet("src/jobs/f.cpp", "bool b = 0.5 != load;\n"), "float-equality"));
  EXPECT_TRUE(
      fires(lint_snippet("src/core/f.cpp", "if (eps == 1e-9) { go(); }\n"), "float-equality"));
}

TEST(LintRules, FloatEqualityGoodTwinSilent) {
  const std::string good =
      "if (n == 1) { go(); }\n"                        // integer literal
      "if (std::abs(a - b) < 1e-9) { go(); }\n"        // tolerance compare
      "bool same = (count != 100);\n";
  EXPECT_TRUE(lint_snippet("src/sim/f.cpp", good).empty());
}

TEST(LintRules, FloatEqualityScopedToSimJobsAndPolicyCode) {
  // stats/ owns the one legitimate exact comparison (polar-method rejection).
  EXPECT_TRUE(lint_snippet("src/stats/f.cpp", "if (s == 0.0) { retry(); }\n").empty());
}

// --------------------------------------------------------------------------
// Rule 7: pragma-once
// --------------------------------------------------------------------------

TEST(LintRules, PragmaOnceMissingFires) {
  EXPECT_TRUE(fires(lint_snippet("src/core/f.hpp", "int f();\n"), "pragma-once"));
  // Classic include guards are not #pragma once — mixed styles are flagged.
  EXPECT_TRUE(fires(
      lint_snippet("src/core/g.hpp", "#ifndef G_HPP\n#define G_HPP\n#endif\n"), "pragma-once"));
}

TEST(LintRules, PragmaOnceGoodTwinSilent) {
  // Leading comments are fine; the pragma just has to be the first *token*.
  EXPECT_TRUE(
      lint_snippet("src/core/f.hpp", "// \\file f.hpp\n#pragma once\nint f();\n").empty());
}

TEST(LintRules, PragmaOnceDoesNotApplyToTranslationUnits) {
  EXPECT_TRUE(lint_snippet("src/core/f.cpp", "int f() { return 1; }\n").empty());
}

// --------------------------------------------------------------------------
// Rule 8: suppression-hygiene + suppression semantics
// --------------------------------------------------------------------------

TEST(LintSuppressions, TrailingSuppressionIsHonored) {
  const std::string code =
      "auto t0 = std::chrono::steady_clock::now();  "
      "// rumr-lint: allow(wall-clock) events/sec metric only\n";
  EXPECT_TRUE(lint_snippet("src/sim/f.cpp", code).empty());
}

TEST(LintSuppressions, StandaloneSuppressionCoversNextLine) {
  const std::string code =
      "// rumr-lint: allow(wall-clock) events/sec metric only\n"
      "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_snippet("src/sim/f.cpp", code).empty());
}

TEST(LintSuppressions, SuppressionOnlyCoversItsRule) {
  // A wall-clock allow does not excuse an ambient-randomness finding.
  const std::string code =
      "// rumr-lint: allow(wall-clock) wrong rule\n"
      "std::random_device rd;\n";
  const auto findings = lint_snippet("src/sim/f.cpp", code);
  EXPECT_TRUE(fires(findings, "ambient-randomness"));
  EXPECT_TRUE(fires(findings, "suppression-hygiene"));  // and it is stale
}

TEST(LintSuppressions, StaleSuppressionDetected) {
  const std::string code =
      "// rumr-lint: allow(wall-clock) this line is perfectly clean\n"
      "int x = 3;\n";
  const auto findings = lint_snippet("src/sim/f.cpp", code);
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].rule, "suppression-hygiene");
  EXPECT_NE(findings[0].message.find("stale"), std::string::npos);
}

TEST(LintSuppressions, UnknownRuleNameDetected) {
  const auto findings = lint_snippet(
      "src/sim/f.cpp", "// rumr-lint: allow(no-such-rule) because reasons\nint x;\n");
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "suppression-hygiene");
  EXPECT_NE(findings[0].message.find("unknown rule"), std::string::npos);
}

TEST(LintSuppressions, MissingReasonDetected) {
  const std::string code =
      "auto t0 = std::chrono::steady_clock::now();  // rumr-lint: allow(wall-clock)\n";
  const auto findings = lint_snippet("src/sim/f.cpp", code);
  // The finding is suppressed, but the reasonless comment is its own error.
  EXPECT_FALSE(fires(findings, "wall-clock"));
  ASSERT_TRUE(fires(findings, "suppression-hygiene"));
  EXPECT_NE(findings[0].message.find("no reason"), std::string::npos);
}

TEST(LintSuppressions, MalformedCommentDetected) {
  const auto findings =
      lint_snippet("src/sim/f.cpp", "// rumr-lint: disable wall-clock please\nint x;\n");
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "suppression-hygiene");
  EXPECT_NE(findings[0].message.find("malformed"), std::string::npos);
}

// --------------------------------------------------------------------------
// Engine/driver: catalog, planted violation, baseline, JSON.
// --------------------------------------------------------------------------

TEST(LintEngine, CatalogHasAllEightRules) {
  const Engine engine;
  std::vector<std::string> names;
  for (const auto& rule : engine.rules()) names.emplace_back(rule->name());
  const std::vector<std::string> expected = {
      "unordered-container", "ambient-randomness", "wall-clock", "pointer-keyed-container",
      "mutable-static",      "float-equality",     "pragma-once"};
  EXPECT_EQ(names, expected);
  // Rule 8 is the engine-level hygiene pseudo-rule.
  EXPECT_EQ(rumr::lint::kSuppressionHygieneRule, "suppression-hygiene");
  for (const auto& rule : engine.rules()) {
    EXPECT_FALSE(rule->rationale().empty()) << rule->name() << " lacks a rationale";
  }
}

namespace {

/// RAII scratch repo tree under the system temp dir. The per-test tag keeps
/// concurrently running ctest cases out of each other's trees.
class ScratchTree {
 public:
  ScratchTree()
      : root_(fs::temp_directory_path() /
              (std::string("rumr_lint_scratch_") +
               ::testing::UnitTest::GetInstance()->current_test_info()->name())) {
    fs::remove_all(root_);
    fs::create_directories(root_ / "src");
  }
  ~ScratchTree() { fs::remove_all(root_); }
  ScratchTree(const ScratchTree&) = delete;
  ScratchTree& operator=(const ScratchTree&) = delete;

  void write(const std::string& rel, const std::string& content) const {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
  }
  [[nodiscard]] std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

}  // namespace

TEST(LintDriver, PlantedViolationInScratchFileExitsNonzero) {
  ScratchTree tree;
  tree.write("src/planted.cpp", "std::unordered_map<int, int> oops;\n");
  tree.write("src/clean.cpp", "int fine() { return 1; }\n");

  Options opts;
  opts.root = tree.root();
  opts.error_exit = true;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(rumr::lint::run(opts, out, err), 1) << out.str() << err.str();
  EXPECT_NE(out.str().find("planted.cpp"), std::string::npos);
  EXPECT_NE(out.str().find("unordered-container"), std::string::npos);

  // Fixing the violation turns the gate green.
  tree.write("src/planted.cpp", "std::map<int, int> fixed;\n");
  std::ostringstream out2;
  std::ostringstream err2;
  EXPECT_EQ(rumr::lint::run(opts, out2, err2), 0) << out2.str() << err2.str();
}

TEST(LintDriver, WithoutErrorExitFindingsStillReportButExitZero) {
  ScratchTree tree;
  tree.write("src/planted.cpp", "static long hits = 0;\n");
  Options opts;
  opts.root = tree.root();
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(rumr::lint::run(opts, out, err), 0);
  EXPECT_NE(out.str().find("mutable-static"), std::string::npos);
}

TEST(LintDriver, JsonReporterEmitsFindings) {
  ScratchTree tree;
  tree.write("src/planted.cpp", "std::set<Chunk*> frontier;\n");
  Options opts;
  opts.root = tree.root();
  opts.json = true;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(rumr::lint::run(opts, out, err), 0);
  EXPECT_NE(out.str().find("\"rule\": \"pointer-keyed-container\""), std::string::npos);
  EXPECT_NE(out.str().find("\"finding_count\": 1"), std::string::npos);
}

TEST(LintDriver, BaselineRoundTripSubtractsLegacyFindings) {
  ScratchTree tree;
  tree.write("src/legacy.cpp", "time_t t = time(nullptr);\n");
  const std::string baseline = tree.root() + "/baseline.txt";

  Options write_opts;
  write_opts.root = tree.root();
  write_opts.write_baseline = baseline;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(rumr::lint::run(write_opts, out, err), 0) << err.str();

  Options gate_opts;
  gate_opts.root = tree.root();
  gate_opts.baseline = baseline;
  gate_opts.error_exit = true;
  std::ostringstream out2;
  std::ostringstream err2;
  EXPECT_EQ(rumr::lint::run(gate_opts, out2, err2), 0) << out2.str();
  EXPECT_NE(out2.str().find("1 baselined"), std::string::npos);
}

TEST(LintDriver, ExplicitFileListSkipsScan) {
  ScratchTree tree;
  tree.write("src/bad.cpp", "std::random_device rd;\n");
  tree.write("src/other_bad.cpp", "std::random_device rd;\n");
  Options opts;
  opts.root = tree.root();
  opts.paths = {"src/bad.cpp"};
  opts.error_exit = true;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(rumr::lint::run(opts, out, err), 1);
  EXPECT_EQ(out.str().find("other_bad.cpp"), std::string::npos);
}
