/// \file test_sweep_sharded.cpp
/// The sharded streaming sweep engine's determinism contract: byte-identical
/// results for any thread count, shard-order independence at 1e-9, exactly-
/// once cell emission, seed-lane separation, and the mergeable-accumulator
/// algebra (associativity/commutativity) everything above rests on.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "check/merge_audit.hpp"
#include "jobs/job_stream.hpp"
#include "obs/accumulators.hpp"
#include "obs/metrics.hpp"
#include "stats/summary.hpp"
#include "sweep/grid.hpp"
#include "sweep/runner.hpp"
#include "sweep/scheduler_factory.hpp"

namespace {

using namespace rumr;

std::vector<sweep::SweepPlatform> tiny_platforms() {
  return {sweep::SweepPlatform::from_config({10, 1.5, 0.1, 0.05}),
          sweep::SweepPlatform::from_config({4, 2.0, 0.3, 0.1})};
}

std::vector<sweep::AlgorithmSpec> tiny_lineup() {
  return {sweep::rumr_spec(), sweep::umr_spec(), sweep::factoring_spec()};
}

sweep::SweepOptions tiny_options() {
  sweep::SweepOptions options;
  options.errors = {0.0, 0.3};
  options.repetitions = 8;
  options.rep_block = 2;  // 4 shards per site.
  options.w_total = 200.0;
  return options;
}

/// Collects a streamed sweep into an index-keyed map (emission order across
/// sites is unspecified, so tests key by indices rather than arrival order).
using CellKey = std::tuple<std::size_t, std::size_t, std::size_t>;

std::map<CellKey, sweep::SweepCell> collect(const std::vector<sweep::SweepPlatform>& platforms,
                                            const std::vector<sweep::AlgorithmSpec>& algorithms,
                                            const sweep::SweepOptions& options) {
  std::map<CellKey, sweep::SweepCell> cells;
  sweep::run_sweep_streaming(platforms, algorithms, options, [&](const sweep::SweepCell& cell) {
    cells[{cell.platform_index, cell.error_index, cell.algorithm_index}] = cell;
  });
  return cells;
}

/// Exact (bitwise-value) equality of two cells — the byte-identity claim.
void expect_cells_identical(const sweep::CellStats& a, const sweep::CellStats& b) {
  EXPECT_EQ(a.reps, b.reps);
  EXPECT_EQ(a.ref_wins, b.ref_wins);
  EXPECT_EQ(a.ref_wins_by_10pct, b.ref_wins_by_10pct);
  EXPECT_EQ(a.makespan.count(), b.makespan.count());
  EXPECT_EQ(a.makespan.mean(), b.makespan.mean());
  EXPECT_EQ(a.makespan.variance(), b.makespan.variance());
  EXPECT_EQ(a.makespan.min(), b.makespan.min());
  EXPECT_EQ(a.makespan.max(), b.makespan.max());
  EXPECT_EQ(a.uplink_utilization.mean(), b.uplink_utilization.mean());
  EXPECT_EQ(a.worker_utilization.variance(), b.worker_utilization.variance());
  EXPECT_EQ(a.events.sum(), b.events.sum());
  EXPECT_EQ(a.hol_blocking_time.mean(), b.hol_blocking_time.mean());
  EXPECT_EQ(a.work_redispatched.mean(), b.work_redispatched.mean());
  EXPECT_EQ(a.makespan_quantiles.bucket_counts(), b.makespan_quantiles.bucket_counts());
  EXPECT_EQ(a.makespan_quantiles.sum(), b.makespan_quantiles.sum());
}

TEST(ShardedSweep, ByteIdenticalAcrossThreadCounts) {
  const auto platforms = tiny_platforms();
  const auto algorithms = tiny_lineup();
  sweep::SweepOptions options = tiny_options();

  options.threads = 1;
  const auto serial = collect(platforms, algorithms, options);
  ASSERT_EQ(serial.size(), platforms.size() * options.errors.size() * algorithms.size());

  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
    options.threads = threads;
    const auto parallel = collect(platforms, algorithms, options);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (const auto& [key, cell] : serial) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " cell=" + cell.platform_label + "/" +
                   cell.algorithm);
      expect_cells_identical(parallel.at(key).stats, cell.stats);
    }
  }
}

TEST(ShardedSweep, RepBlockVariantsAgreeWithinMergeTolerance) {
  // Different rep_block values build different merge trees, so the results
  // are NOT byte-identical — but audit_cell_merge pins them within 1e-9.
  const auto platforms = tiny_platforms();
  const auto algorithms = tiny_lineup();
  sweep::SweepOptions options = tiny_options();

  options.rep_block = options.repetitions;  // One shard: the serial reference.
  const auto serial = collect(platforms, algorithms, options);

  for (const std::size_t block : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    options.rep_block = block;
    const auto sharded = collect(platforms, algorithms, options);
    check::AuditReport report;
    for (const auto& [key, cell] : serial) {
      sweep::audit_cell_merge("rep_block=" + std::to_string(block), sharded.at(key).stats,
                              cell.stats, report);
    }
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

TEST(ShardedSweep, StreamsEveryCellExactlyOnce) {
  const auto platforms = tiny_platforms();
  const auto algorithms = tiny_lineup();
  sweep::SweepOptions options = tiny_options();
  options.threads = 4;

  std::map<CellKey, int> seen;
  sweep::run_sweep_streaming(platforms, algorithms, options,
                             [&](const sweep::SweepCell& cell) {
                               ++seen[{cell.platform_index, cell.error_index,
                                       cell.algorithm_index}];
                               EXPECT_EQ(cell.stats.reps, options.repetitions);
                             });
  EXPECT_EQ(seen.size(), platforms.size() * options.errors.size() * algorithms.size());
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);
}

TEST(ShardedSweep, ShardsPerSiteIsThreadIndependent) {
  // Auto mode: up to 8 shards regardless of anything else.
  EXPECT_EQ(sweep::shards_per_site(40, 0), 8u);
  EXPECT_EQ(sweep::shards_per_site(8, 0), 8u);
  EXPECT_EQ(sweep::shards_per_site(3, 0), 3u);
  EXPECT_EQ(sweep::shards_per_site(1, 0), 1u);
  // Explicit blocks: ceil(reps / block), clamped.
  EXPECT_EQ(sweep::shards_per_site(8, 2), 4u);
  EXPECT_EQ(sweep::shards_per_site(7, 2), 4u);
  EXPECT_EQ(sweep::shards_per_site(8, 100), 1u);
}

TEST(ShardedSweep, DeriveRepSeedSeparatesLanes) {
  const std::uint64_t base = 0x5eed5eed5eedULL;
  const std::uint64_t s = sweep::derive_rep_seed(base, "N=10 B=1.5", 0.3, 2);
  EXPECT_EQ(s, sweep::derive_rep_seed(base, "N=10 B=1.5", 0.3, 2));  // Deterministic.
  EXPECT_NE(s, sweep::derive_rep_seed(base, "N=10 B=1.5", 0.3, 3));  // Rep lane.
  EXPECT_NE(s, sweep::derive_rep_seed(base, "N=10 B=1.5", 0.4, 2));  // Axis lane.
  EXPECT_NE(s, sweep::derive_rep_seed(base, "N=10 B=2.0", 0.3, 2));  // Platform lane.
  EXPECT_NE(s, sweep::derive_rep_seed(base + 1, "N=10 B=1.5", 0.3, 2));
  // The axis value is quantized to its Table 1 lattice (1e-3), so FP noise
  // in axis generation cannot shift the seed.
  EXPECT_EQ(s, sweep::derive_rep_seed(base, "N=10 B=1.5", 0.3 + 1e-9, 2));
}

TEST(ShardedSweep, ValidateListsEveryProblemAtOnce) {
  sweep::SweepOptions options;
  options.errors = {};
  options.repetitions = 0;
  options.w_total = -1.0;
  const std::vector<std::string> problems = options.validate();
  EXPECT_EQ(problems.size(), 3u);
}

// --- open-system sweeps ------------------------------------------------------

jobs::JobsOptions tiny_jobs_base() {
  jobs::JobsOptions base;
  base.stream = jobs::JobStreamSpec::poisson(1.0, 6, 120.0);
  base.stream.size_dist = jobs::SizeDistribution::kUniform;
  base.stream.size_spread = 0.3;
  base.known_error = 0.2;
  base.sim = sim::SimOptions::with_error(0.2, 1);
  return base;
}

sweep::JobsSweepOptions tiny_jobs_options() {
  sweep::JobsSweepOptions options;
  options.loads = {0.4, 0.8};
  options.repetitions = 4;
  options.rep_block = 2;
  options.base = tiny_jobs_base();
  return options;
}

void expect_jobs_cells_identical(const sweep::JobsCellStats& a, const sweep::JobsCellStats& b) {
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.manager_events, b.manager_events);
  EXPECT_EQ(a.oracle_runs, b.oracle_runs);
  EXPECT_EQ(a.oracle_events, b.oracle_events);
  EXPECT_EQ(a.reps, b.reps);
  EXPECT_EQ(a.mean_response.mean(), b.mean_response.mean());
  EXPECT_EQ(a.mean_slowdown.variance(), b.mean_slowdown.variance());
  EXPECT_EQ(a.utilization.mean(), b.utilization.mean());
  EXPECT_EQ(a.horizon.sum(), b.horizon.sum());
  EXPECT_EQ(a.response_times.bucket_counts(), b.response_times.bucket_counts());
  EXPECT_EQ(a.slowdowns.bucket_counts(), b.slowdowns.bucket_counts());
}

TEST(JobsSweep, ByteIdenticalAcrossThreadCounts) {
  const std::vector<sweep::SweepPlatform> platforms = {
      sweep::SweepPlatform::from_config({10, 1.5, 0.1, 0.05})};
  sweep::JobsSweepOptions options = tiny_jobs_options();

  std::map<CellKey, sweep::JobsSweepCell> serial;
  options.threads = 1;
  sweep::run_jobs_sweep(platforms, options, [&](const sweep::JobsSweepCell& cell) {
    serial[{cell.platform_index, cell.load_index, 0}] = cell;
  });
  ASSERT_EQ(serial.size(), options.loads.size());

  options.threads = 8;
  std::map<CellKey, sweep::JobsSweepCell> parallel;
  sweep::run_jobs_sweep(platforms, options, [&](const sweep::JobsSweepCell& cell) {
    parallel[{cell.platform_index, cell.load_index, 0}] = cell;
  });
  ASSERT_EQ(parallel.size(), serial.size());
  for (const auto& [key, cell] : serial) {
    SCOPED_TRACE("load=" + std::to_string(cell.load));
    expect_jobs_cells_identical(parallel.at(key).stats, cell.stats);
  }
}

TEST(JobsSweep, StreamingModeMatchesRetainedAggregates) {
  // retain_jobs = false drops per-job records as they depart; every
  // aggregate the sweep folds must be unaffected.
  const std::vector<sweep::SweepPlatform> platforms = {
      sweep::SweepPlatform::from_config({10, 1.5, 0.1, 0.05})};
  sweep::JobsSweepOptions options = tiny_jobs_options();
  options.threads = 1;

  std::map<CellKey, sweep::JobsSweepCell> retained;
  options.base.retain_jobs = true;
  sweep::run_jobs_sweep(platforms, options, [&](const sweep::JobsSweepCell& cell) {
    retained[{cell.platform_index, cell.load_index, 0}] = cell;
  });

  std::map<CellKey, sweep::JobsSweepCell> streamed;
  options.base.retain_jobs = false;
  sweep::run_jobs_sweep(platforms, options, [&](const sweep::JobsSweepCell& cell) {
    streamed[{cell.platform_index, cell.load_index, 0}] = cell;
  });

  ASSERT_EQ(streamed.size(), retained.size());
  for (const auto& [key, cell] : retained) {
    expect_jobs_cells_identical(streamed.at(key).stats, cell.stats);
  }
}

TEST(JobsSweep, ValidateCatchesBadAxisAndStream) {
  sweep::JobsSweepOptions options = tiny_jobs_options();
  options.loads = {0.5, -0.1};
  options.repetitions = 0;
  const std::vector<std::string> problems = options.validate();
  EXPECT_GE(problems.size(), 2u);
}

// --- the accumulator algebra the engine rests on -----------------------------

std::vector<double> sample_data() {
  std::vector<double> xs;
  double v = 0.37;
  for (int i = 0; i < 200; ++i) {
    v = v * 1.07 + 0.11;
    if (v > 50.0) v *= 0.013;
    xs.push_back(v);
  }
  return xs;
}

TEST(MergeAlgebra, AccumulatorMergeMatchesSerialAtEverySplit) {
  const std::vector<double> xs = sample_data();
  stats::Accumulator serial;
  for (double x : xs) serial.add(x);

  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{97}, xs.size()}) {
    stats::Accumulator left;
    stats::Accumulator right;
    for (std::size_t i = 0; i < xs.size(); ++i) (i < split ? left : right).add(xs[i]);
    left.merge(right);
    check::AuditReport report;
    check::audit_accumulator_merge("split=" + std::to_string(split), left, serial, report);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

TEST(MergeAlgebra, AccumulatorMergeIsCommutativeWithinTolerance) {
  const std::vector<double> xs = sample_data();
  stats::Accumulator a;
  stats::Accumulator b;
  for (std::size_t i = 0; i < xs.size(); ++i) (i % 2 == 0 ? a : b).add(xs[i]);
  stats::Accumulator ab = a;
  ab.merge(b);
  stats::Accumulator ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_NEAR(ab.mean(), ba.mean(), 1e-9 * ab.mean());
  EXPECT_NEAR(ab.variance(), ba.variance(), 1e-9 * (1.0 + ab.variance()));
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());
}

TEST(MergeAlgebra, QuantileSketchMergeIsExactOnCountsAndAssociative) {
  const std::vector<double> xs = sample_data();
  obs::QuantileSketch serial;
  obs::QuantileSketch a;
  obs::QuantileSketch b;
  obs::QuantileSketch c;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    serial.add(xs[i]);
    (i % 3 == 0 ? a : (i % 3 == 1 ? b : c)).add(xs[i]);
  }

  obs::QuantileSketch left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  obs::QuantileSketch right = b;  // a + (b + c)
  right.merge(c);
  obs::QuantileSketch right_total = a;
  right_total.merge(right);

  EXPECT_EQ(left.bucket_counts(), serial.bucket_counts());
  EXPECT_EQ(left.bucket_counts(), right_total.bucket_counts());
  EXPECT_EQ(left.count(), serial.count());
  EXPECT_EQ(left.min(), serial.min());
  EXPECT_EQ(left.max(), serial.max());
  EXPECT_NEAR(left.sum(), serial.sum(), 1e-9 * serial.sum());
  // Quantiles resolve from integer bucket state, so they agree exactly.
  EXPECT_EQ(left.quantile(0.5), right_total.quantile(0.5));
}

TEST(MergeAlgebra, HistogramMergeIsExactlyAssociative) {
  const std::vector<double> xs = sample_data();
  const auto make = [] { return obs::Histogram::exponential(0.5, 2.0, 12); };
  obs::Histogram serial = make();
  obs::Histogram a = make();
  obs::Histogram b = make();
  obs::Histogram c = make();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    serial.add(xs[i]);
    (i % 3 == 0 ? a : (i % 3 == 1 ? b : c)).add(xs[i]);
  }
  obs::Histogram left = a;
  left.merge(b);
  left.merge(c);
  obs::Histogram bc = b;
  bc.merge(c);
  obs::Histogram right = a;
  right.merge(bc);
  EXPECT_EQ(left.bucket_counts(), serial.bucket_counts());
  EXPECT_EQ(left.bucket_counts(), right.bucket_counts());
  EXPECT_EQ(left.total(), right.total());
  check::AuditReport report;
  check::audit_histogram_merge("assoc", left, serial, report);
  check::audit_histogram_merge("assoc-right", right, serial, report);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(MergeAlgebra, CounterMergeIsCommutative) {
  obs::Counter a;
  obs::Counter b;
  a.increment(3);
  b.increment(39);
  obs::Counter ab = a;
  ab.merge(b);
  obs::Counter ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.value(), 42u);
  EXPECT_EQ(ab.value(), ba.value());
}

TEST(MergeAlgebra, EmptyAccumulatorIsMergeIdentity) {
  const std::vector<double> xs = sample_data();
  stats::Accumulator filled;
  for (double x : xs) filled.add(x);
  stats::Accumulator left = filled;
  left.merge(stats::Accumulator{});
  stats::Accumulator right;
  right.merge(filled);
  EXPECT_EQ(left.count(), filled.count());
  EXPECT_EQ(left.mean(), filled.mean());
  EXPECT_EQ(left.variance(), filled.variance());
  EXPECT_EQ(right.count(), filled.count());
  EXPECT_EQ(right.mean(), filled.mean());
  EXPECT_EQ(right.variance(), filled.variance());

  obs::QuantileSketch sketch_filled;
  for (double x : xs) sketch_filled.add(x);
  obs::QuantileSketch sketch_empty;
  sketch_empty.merge(sketch_filled);
  EXPECT_EQ(sketch_empty.bucket_counts(), sketch_filled.bucket_counts());
  EXPECT_EQ(sketch_empty.min(), sketch_filled.min());
}

}  // namespace
