// Golden-result regression rig (sweep/golden.hpp).
//
// Replays every recorded scenario in tests/golden/ and demands the fresh
// fingerprints match the fixtures: counts exactly, doubles to 1e-12
// relative. The fixtures were recorded from the pre-rewrite DES kernel, so
// this suite is what pins "observationally invisible" for kernel and engine
// rework — any drift in event order, RNG draw sequence, or metric
// bookkeeping lands here as a readable per-field diff.
//
// Fixtures are regenerated only when results are *supposed* to change:
//   build/release/tools/golden_record tests/golden

#include "sweep/golden.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rumr::sweep::golden {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(RUMR_GOLDEN_DIR) + "/" + name + ".json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open fixture " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class GoldenReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenReplay, MatchesRecordedFixture) {
  const GoldenScenario expected = from_json(read_file(fixture_path(GetParam())));
  EXPECT_EQ(expected.name, GetParam());
  ASSERT_FALSE(expected.cases.empty()) << "fixture has no recorded cases";

  const GoldenScenario fresh = record_scenario(GetParam());
  const std::vector<std::string> mismatches = compare(expected, fresh);
  for (const std::string& m : mismatches) ADD_FAILURE() << m;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, GoldenReplay, ::testing::ValuesIn(scenario_names()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(GoldenFormat, JsonRoundTripIsLossless) {
  const GoldenScenario original = record_scenario(scenario_names().front());
  const GoldenScenario reparsed = from_json(to_json(original));
  EXPECT_TRUE(compare(original, reparsed).empty());
}

TEST(GoldenFormat, CompareFlagsEveryDriftedField) {
  GoldenScenario expected = record_scenario(scenario_names().front());
  GoldenScenario drifted = expected;
  drifted.cases.at(0).makespan *= 1.0 + 1e-6;  // Far outside the 1e-12 tolerance.
  drifted.cases.at(1).events += 1;
  const std::vector<std::string> mismatches = compare(expected, drifted);
  EXPECT_EQ(mismatches.size(), 2u);
}

TEST(GoldenFormat, CompareToleratesLastUlpNoise) {
  GoldenScenario expected = record_scenario(scenario_names().front());
  GoldenScenario wiggled = expected;
  wiggled.cases.at(0).makespan *= 1.0 + 1e-15;  // Inside the 1e-12 tolerance.
  EXPECT_TRUE(compare(expected, wiggled).empty());
}

TEST(GoldenFormat, RejectsUnknownScenario) {
  EXPECT_THROW((void)record_scenario("no-such-scenario"), std::invalid_argument);
}

}  // namespace
}  // namespace rumr::sweep::golden
