// Determinism tests: the DES kernel's FIFO tie-break promise
// (des/simulator.hpp) and byte-identical replay of every scheduler in the
// evaluation. The tools/determinism_check binary runs the same audits at
// larger scale; these tests gate them in ctest.

#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/des_audit.hpp"
#include "check/trace_audit.hpp"
#include "des/simulator.hpp"
#include "platform/platform.hpp"
#include "sim/master_worker.hpp"
#include "sim/trace_json.hpp"
#include "stats/rng.hpp"
#include "sweep/scheduler_factory.hpp"

namespace rumr {
namespace {

// --- DES tie-break under shuffled insertion jitter --------------------------

TEST(Determinism, EqualTimeEventsFollowInsertionOrderUnderJitter) {
  // Insert events whose timestamps collide heavily, in a seeded-shuffled
  // order; execution must follow (time, insertion sequence) exactly.
  for (const std::uint64_t seed : {3u, 11u, 2026u}) {
    stats::Rng rng(seed);
    constexpr std::size_t kCount = 500;

    std::vector<double> times(kCount);
    for (double& t : times) t = static_cast<double>(rng.uniform_index(5));

    std::vector<std::size_t> order(kCount);
    for (std::size_t i = 0; i < kCount; ++i) order[i] = i;
    for (std::size_t i = kCount; i > 1; --i) {
      std::swap(order[i - 1], order[static_cast<std::size_t>(rng.uniform_index(i))]);
    }

    des::Simulator sim;
    check::SimulatorAuditor auditor;
    auditor.attach(sim);

    std::vector<std::pair<double, std::size_t>> executed;
    std::size_t seq = 0;
    for (const std::size_t idx : order) {
      const double t = times[idx];
      sim.schedule_at(t, [&executed, t, s = seq++] { executed.emplace_back(t, s); });
    }
    sim.run();
    auditor.verify_drained(sim);
    ASSERT_TRUE(auditor.report().ok()) << auditor.report().summary();

    ASSERT_EQ(executed.size(), kCount);
    for (std::size_t k = 1; k < executed.size(); ++k) {
      ASSERT_TRUE(executed[k - 1].first < executed[k].first ||
                  (executed[k - 1].first == executed[k].first &&
                   executed[k - 1].second < executed[k].second))
          << "tie-break broke at event " << k << " (seed " << seed << ")";
    }
  }
}

// --- Byte-identical scheduler replay ----------------------------------------

std::string fingerprint(const sweep::AlgorithmSpec& spec, const platform::StarPlatform& p,
                        double w_total, double error, std::uint64_t seed) {
  auto policy = spec.make(p, w_total, error);
  sim::SimOptions options = sim::SimOptions::with_error(error, seed);
  options.record_trace = true;
  const sim::SimResult result = sim::simulate(p, *policy, options);

  // Every run must also pass the work-conservation audit.
  const check::AuditReport audit = check::audit_sim_result(result, p, w_total);
  EXPECT_TRUE(audit.ok()) << spec.name << ": " << audit.summary();

  std::ostringstream out;
  out << std::setprecision(17) << "makespan=" << result.makespan
      << " events=" << result.events << '\n'
      << sim::to_chrome_tracing(result.trace);
  return out.str();
}

std::vector<sweep::AlgorithmSpec> evaluation_lineup() {
  std::vector<sweep::AlgorithmSpec> specs = sweep::extended_competitors();
  for (auto& s : sweep::loop_family_competitors()) specs.push_back(std::move(s));
  specs.push_back(sweep::rumr_inorder_spec());
  specs.push_back(sweep::rumr_adaptive_spec());

  std::vector<sweep::AlgorithmSpec> unique;
  std::map<std::string, bool> seen;
  for (auto& s : specs) {
    if (seen.emplace(s.name, true).second) unique.push_back(std::move(s));
  }
  return unique;
}

TEST(Determinism, EverySchedulerReplaysByteIdentically) {
  const auto p = platform::StarPlatform::homogeneous({.workers = 8, .speed = 1.0,
                                                      .bandwidth = 12.0, .comp_latency = 0.05,
                                                      .comm_latency = 0.02,
                                                      .transfer_latency = 0.01});
  for (const sweep::AlgorithmSpec& spec : evaluation_lineup()) {
    const std::string first = fingerprint(spec, p, 500.0, 0.3, 42);
    const std::string second = fingerprint(spec, p, 500.0, 0.3, 42);
    EXPECT_EQ(first, second) << spec.name << " replay diverged";
    EXPECT_FALSE(first.empty());
  }
}

TEST(Determinism, DifferentSeedsProduceDifferentRunsUnderError) {
  // Guard against a fingerprint that ignores the simulation: with nonzero
  // error, different seeds must perturb the trace.
  const auto p = platform::StarPlatform::homogeneous({.workers = 8, .speed = 1.0,
                                                      .bandwidth = 12.0, .comp_latency = 0.05});
  const sweep::AlgorithmSpec spec = sweep::rumr_spec();
  EXPECT_NE(fingerprint(spec, p, 500.0, 0.3, 1), fingerprint(spec, p, 500.0, 0.3, 2));
}

}  // namespace
}  // namespace rumr
