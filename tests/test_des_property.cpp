// Property/fuzz tests for the DES kernel's event queue (des/simulator.hpp).
//
// The kernel's indexed heap + slab is checked against the dumbest possible
// oracle: a std::multimap keyed by (time, insertion sequence). Random
// interleavings of schedule / cancel / pop must produce the exact same
// execution order, clock trajectory, and counter values as the oracle —
// including equal-timestamp FIFO ties, cancel-after-fire, double-cancel,
// and handles whose slab slots have been reused. Runs under ASan/UBSan and
// TSan in CI, so it also shakes out lifetime bugs in the slab recycling.

#include "des/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <utility>
#include <vector>

namespace rumr::des {
namespace {

/// Reference model: pending events ordered by (time, schedule sequence) —
/// exactly the contract the kernel promises. Values are opaque payloads used
/// to match executions one-to-one.
class OracleQueue {
 public:
  using Key = std::pair<SimTime, std::uint64_t>;

  Key insert(SimTime t, int payload) {
    const Key key{t, next_seq_++};
    pending_.emplace(key, payload);
    return key;
  }

  bool erase(const Key& key) { return pending_.erase(key) > 0; }

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }
  [[nodiscard]] const Key& front_key() const { return pending_.begin()->first; }
  [[nodiscard]] int front_payload() const { return pending_.begin()->second; }

  int pop_front() {
    const int payload = pending_.begin()->second;
    pending_.erase(pending_.begin());
    return payload;
  }

 private:
  std::multimap<Key, int> pending_;
  std::uint64_t next_seq_ = 0;
};

/// One live handle pair: the kernel's id and the oracle's key.
struct Handle {
  EventId id = 0;
  OracleQueue::Key key;
};

TEST(DesProperty, EqualTimestampsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(1.0, [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(DesProperty, CancelAfterFireIsRejectedEvenWhenSlotReused) {
  Simulator sim;
  const EventId first = sim.schedule_at(1.0, [] {});
  sim.run();
  // The slot is free now; this schedule reuses it under a new generation.
  const EventId second = sim.schedule_at(2.0, [] {});
  EXPECT_FALSE(sim.cancel(first));  // Stale handle must not hit the new tenant.
  EXPECT_TRUE(sim.cancel(second));
  EXPECT_FALSE(sim.cancel(second));  // Double-cancel.
  EXPECT_EQ(sim.events_cancelled(), 1u);
}

// The main fuzz drive: random schedule/cancel/pop interleavings, kernel vs
// oracle, with handlers that themselves schedule chained events. Each seed is
// an independent scenario; failures reproduce from the seed alone.
class DesOracleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesOracleFuzz, MatchesMultimapOracle) {
  std::mt19937_64 rng(GetParam());
  Simulator sim;
  OracleQueue oracle;
  std::vector<Handle> live;     // Handles believed pending.
  std::vector<Handle> retired;  // Handles already fired or cancelled.
  std::vector<int> fired;
  int next_payload = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;

  // Coarse time grid on purpose: collisions are the interesting case.
  const auto draw_time = [&] { return sim.now() + static_cast<double>(rng() % 5) * 0.5; };

  const auto do_schedule = [&] {
    const SimTime t = draw_time();
    const int payload = next_payload++;
    const EventId id = sim.schedule_at(t, [&fired, payload] { fired.push_back(payload); });
    live.push_back({id, oracle.insert(t, payload)});
    ++scheduled;
  };

  const auto do_pop = [&] {
    if (oracle.empty()) {
      EXPECT_FALSE(sim.step());
      return;
    }
    const SimTime expected_time = oracle.front_key().first;
    const int expected_payload = oracle.pop_front();
    const std::size_t fired_before = fired.size();
    ASSERT_TRUE(sim.step());
    ASSERT_EQ(fired.size(), fired_before + 1);
    EXPECT_EQ(fired.back(), expected_payload);
    EXPECT_DOUBLE_EQ(sim.now(), expected_time);
    // The fired handle stays in `live` on purpose: a later cancel on it
    // exercises cancel-after-fire, where kernel and oracle must both say no.
  };

  for (int op = 0; op < 600; ++op) {
    const std::uint64_t dice = rng() % 100;
    if (dice < 45) {
      do_schedule();
    } else if (dice < 75) {
      do_pop();
    } else if (dice < 90 && !live.empty()) {
      // Cancel a random handle that *may* have already fired: the kernel must
      // agree with the oracle about whether it was still pending.
      const std::size_t pick = rng() % live.size();
      const bool oracle_pending = oracle.erase(live[pick].key);
      EXPECT_EQ(sim.cancel(live[pick].id), oracle_pending);
      if (oracle_pending) ++cancelled;
      retired.push_back(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (!retired.empty()) {
      // Cancelling a retired handle is always a no-op, even after its slot
      // has been recycled by later schedules.
      const std::size_t pick = rng() % retired.size();
      EXPECT_FALSE(sim.cancel(retired[pick].id));
    }
    ASSERT_EQ(sim.events_pending(), oracle.size());
  }

  // Drain; the tail must come out in exact oracle order.
  while (!oracle.empty()) do_pop();
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.events_scheduled(), scheduled);
  EXPECT_EQ(sim.events_cancelled(), cancelled);
  EXPECT_EQ(sim.events_processed(), fired.size());
  EXPECT_EQ(sim.events_scheduled(), sim.events_processed() + sim.events_cancelled());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesOracleFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

// Handlers scheduling from inside handlers: the slot freed by the firing
// event is immediately reused, which is the kernel's hottest recycling path.
TEST(DesProperty, ChainedSchedulingAgreesWithOracle) {
  std::mt19937_64 rng(0xC0FFEE);
  Simulator sim;
  OracleQueue oracle;
  std::vector<int> fired;
  int next_payload = 0;

  std::function<void(int)> fire_and_maybe_chain = [&](int payload) {
    fired.push_back(payload);
    for (std::uint64_t k = rng() % 3; k > 0; --k) {
      if (next_payload >= 500) return;
      const SimTime t = sim.now() + static_cast<double>(rng() % 4) * 0.25;
      const int child = next_payload++;
      oracle.insert(t, child);
      sim.schedule_at(t, [&fire_and_maybe_chain, child] { fire_and_maybe_chain(child); });
    }
  };

  for (int i = 0; i < 20; ++i) {
    const SimTime t = static_cast<double>(rng() % 4) * 0.25;
    const int payload = next_payload++;
    oracle.insert(t, payload);
    sim.schedule_at(t, [&fire_and_maybe_chain, payload] { fire_and_maybe_chain(payload); });
  }

  while (!oracle.empty()) {
    const int expected = oracle.front_payload();
    const SimTime expected_time = oracle.front_key().first;
    const std::size_t before = fired.size();
    ASSERT_TRUE(sim.step());
    // The handler may have inserted children into the oracle *after* we read
    // the front — but children are strictly later keys (time >= now, larger
    // seq), so the front we read stays authoritative.
    oracle.pop_front();
    ASSERT_EQ(fired.size(), before + 1);
    EXPECT_EQ(fired.back(), expected);
    EXPECT_DOUBLE_EQ(sim.now(), expected_time);
  }
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.events_processed(), fired.size());
}

TEST(DesProperty, RunUntilMatchesOracleCut) {
  std::mt19937_64 rng(42);
  Simulator sim;
  OracleQueue oracle;
  std::size_t fired_count = 0;
  for (int i = 0; i < 400; ++i) {
    const SimTime t = static_cast<double>(rng() % 40) * 0.5;
    oracle.insert(t, i);
    sim.schedule_at(t, [&fired_count] { ++fired_count; });
  }
  const SimTime deadline = 9.75;  // Strictly between grid points: no boundary ambiguity.
  std::size_t expected = 0;
  while (!oracle.empty() && oracle.front_key().first <= deadline) {
    oracle.pop_front();
    ++expected;
  }
  EXPECT_EQ(sim.run_until(deadline), expected);
  EXPECT_EQ(fired_count, expected);
  EXPECT_LE(sim.now(), deadline);
  EXPECT_EQ(sim.events_pending(), oracle.size());
  sim.run();
  EXPECT_EQ(fired_count, 400u);
}

}  // namespace
}  // namespace rumr::des
