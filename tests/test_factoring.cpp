// Tests for Factoring (baselines/factoring.hpp): chunk-size sequence,
// floors, termination, greedy self-scheduled dispatch, and the empty-round
// overhead helpers shared with RUMR.

#include "baselines/factoring.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sim/master_worker.hpp"

namespace rumr::baselines {
namespace {

TEST(EmptyRoundOverhead, HomogeneousFormula) {
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 20, .speed = 2.0, .bandwidth = 50.0, .comp_latency = 0.3,
       .comm_latency = 0.9});
  // Seconds: cLat + nLat * N = 0.3 + 18 = 18.3; work units: * mean speed.
  EXPECT_NEAR(empty_round_overhead_seconds(p), 18.3, 1e-12);
  EXPECT_NEAR(empty_round_overhead_work(p), 18.3 * 2.0, 1e-12);
}

TEST(EmptyRoundOverhead, HeterogeneousUsesMeans) {
  const platform::StarPlatform p(
      {{1.0, 10.0, 0.2, 0.1, 0.0}, {3.0, 10.0, 0.4, 0.3, 0.0}});
  EXPECT_NEAR(empty_round_overhead_seconds(p), 0.3 + 0.2 * 2.0, 1e-12);
  EXPECT_NEAR(empty_round_overhead_work(p), (0.3 + 0.4) * 2.0, 1e-12);
}

TEST(FactoringChunks, RejectsBadArguments) {
  EXPECT_THROW((void)factoring_chunks(100.0, 0, {}), std::invalid_argument);
  FactoringOptions bad;
  bad.factor = 1.0;
  EXPECT_THROW((void)factoring_chunks(100.0, 4, bad), std::invalid_argument);
}

TEST(FactoringChunks, EmptyForNonPositiveWork) {
  EXPECT_TRUE(factoring_chunks(0.0, 4, {}).empty());
  EXPECT_TRUE(factoring_chunks(-5.0, 4, {}).empty());
}

TEST(FactoringChunks, SumsExactlyToWorkload) {
  for (double w : {1.0, 100.0, 1000.0, 12345.6}) {
    for (std::size_t n : {1u, 4u, 32u}) {
      const auto chunks = factoring_chunks(w, n, {});
      const double total = std::accumulate(chunks.begin(), chunks.end(), 0.0);
      EXPECT_NEAR(total, w, 1e-9 * w) << "w=" << w << " n=" << n;
    }
  }
}

TEST(FactoringChunks, FirstBatchIsHalfTheWorkSplitEvenly) {
  // Classic factor 2: the first N chunks each carry W / (2N).
  const auto chunks = factoring_chunks(1000.0, 10, {});
  ASSERT_GE(chunks.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(chunks[i], 50.0, 1e-9);
  // Second batch halves again.
  EXPECT_NEAR(chunks[10], 25.0, 1e-9);
}

TEST(FactoringChunks, SizesAreNonIncreasingExceptFinalAbsorber) {
  // The last chunk may absorb a sub-floor remainder and exceed its
  // immediate predecessor slightly; everything before it is non-increasing
  // and nothing ever exceeds the first chunk.
  const auto chunks = factoring_chunks(1000.0, 8, {});
  ASSERT_GE(chunks.size(), 3u);
  for (std::size_t i = 0; i + 2 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i], chunks[i + 1] - 1e-9);
  }
  EXPECT_LE(chunks.back(), chunks.front() + 1e-9);
}

TEST(FactoringChunks, RespectsFloor) {
  FactoringOptions options;
  options.min_chunk = 20.0;
  const auto chunks = factoring_chunks(1000.0, 10, options);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i], 20.0 - 1e-9) << "chunk " << i;
  }
  // Only the final remainder chunk may dip below the floor.
  EXPECT_GT(chunks.back(), 0.0);
}

TEST(FactoringChunks, TerminatesWithZeroFloor) {
  const auto chunks = factoring_chunks(1000.0, 4, {});
  EXPECT_LT(chunks.size(), 1000u);  // Bounded by the internal 1e-6*W floor.
}

TEST(FactoringChunks, CustomFactorThree) {
  FactoringOptions options;
  options.factor = 3.0;
  const auto chunks = factoring_chunks(900.0, 10, options);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(chunks[i], 30.0, 1e-9);
}

TEST(FactoringPolicy, GreedyDispatchFeedsOnlyIdleWorkers) {
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 4, .speed = 1.0, .bandwidth = 8.0, .comp_latency = 0.1,
       .comm_latency = 0.1});
  FactoringPolicy policy(400.0, 4);
  sim::SimOptions options;
  options.record_trace = true;
  const sim::SimResult r = simulate(p, policy, options);
  EXPECT_NEAR(r.work_dispatched, 400.0, 1e-6);
  // Self-scheduling: at any time a worker holds at most one outstanding
  // chunk, so compute spans for one worker never overlap and are separated
  // by the request round trips.
  for (std::size_t w = 0; w < 4; ++w) {
    const auto spans = r.trace.for_worker(w);
    double last_end = 0.0;
    for (const auto& s : spans) {
      if (s.kind != sim::SpanKind::kCompute) continue;
      EXPECT_GE(s.start, last_end - 1e-12);
      last_end = s.end;
    }
  }
}

TEST(FactoringPolicy, WorksOnWorkerSubset) {
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 6, .speed = 1.0, .bandwidth = 12.0});
  FactoringPolicy policy(300.0, std::vector<std::size_t>{1, 3, 5});
  const sim::SimResult r = simulate(p, policy, sim::SimOptions{});
  EXPECT_NEAR(r.work_dispatched, 300.0, 1e-6);
  EXPECT_EQ(r.workers[0].chunks, 0u);
  EXPECT_EQ(r.workers[2].chunks, 0u);
  EXPECT_EQ(r.workers[4].chunks, 0u);
  EXPECT_GT(r.workers[1].chunks, 0u);
  EXPECT_GT(r.workers[3].chunks, 0u);
  EXPECT_GT(r.workers[5].chunks, 0u);
}

TEST(FactoringPolicy, FactoryUsesOverheadFloor) {
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 10, .speed = 1.0, .bandwidth = 15.0, .comp_latency = 0.5,
       .comm_latency = 0.5});
  const auto policy = make_factoring_policy(p, 1000.0);
  EXPECT_EQ(policy->name(), "Factoring");
  const auto* self = dynamic_cast<const SelfSchedulingPolicy*>(policy.get());
  ASSERT_NE(self, nullptr);
  // Floor = cLat + nLat*N = 5.5 work units; all but the last chunk respect it.
  const auto& chunks = self->chunk_sequence();
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) EXPECT_GE(chunks[i], 5.5 - 1e-9);
}

TEST(SelfScheduling, RejectsEmptyWorkerSet) {
  EXPECT_THROW(SelfSchedulingPolicy("x", {1.0}, std::vector<std::size_t>{}),
               std::invalid_argument);
}

TEST(SelfScheduling, DropsNonPositiveChunks) {
  SelfSchedulingPolicy policy("x", {1.0, 0.0, -2.0, 3.0}, 2);
  EXPECT_EQ(policy.chunk_sequence().size(), 2u);
  EXPECT_DOUBLE_EQ(policy.total_work(), 4.0);
}

}  // namespace
}  // namespace rumr::baselines
