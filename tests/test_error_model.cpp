// Unit tests for the prediction-error model (stats/error_model.hpp),
// section 4.1 of the paper.

#include "stats/error_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rumr::stats {
namespace {

TEST(ErrorModel, DefaultIsExact) {
  const ErrorModel model;
  EXPECT_TRUE(model.is_exact());
  Rng rng(1);
  EXPECT_EQ(model.actual_duration(3.5, rng), 3.5);
}

TEST(ErrorModel, ZeroErrorCollapsesToNone) {
  const ErrorModel model(ErrorDistribution::kTruncatedNormal, 0.0);
  EXPECT_TRUE(model.is_exact());
}

TEST(ErrorModel, NegativeErrorCollapsesToNone) {
  const ErrorModel model(ErrorDistribution::kTruncatedNormal, -0.3);
  EXPECT_TRUE(model.is_exact());
  EXPECT_EQ(model.error(), 0.0);
}

TEST(ErrorModel, ZeroPredictedStaysZero) {
  const ErrorModel model = ErrorModel::truncated_normal(0.4);
  Rng rng(2);
  EXPECT_EQ(model.actual_duration(0.0, rng), 0.0);
}

TEST(ErrorModel, RatiosAreAlwaysPositive) {
  for (double error : {0.1, 0.5, 1.0, 3.0}) {
    const ErrorModel model = ErrorModel::truncated_normal(error);
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
      EXPECT_GE(model.sample_ratio(rng), ErrorModel::kMinRatio);
    }
  }
}

TEST(ErrorModel, TruncatedNormalMatchesMoments) {
  const double error = 0.3;
  const ErrorModel model = ErrorModel::truncated_normal(error);
  Rng rng(5);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double r = model.sample_ratio(rng);
    sum += r;
    sum_sq += r * r;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sum_sq / n - mean * mean);
  EXPECT_NEAR(mean, 1.0, 0.01);
  EXPECT_NEAR(sd, error, 0.01);
}

TEST(ErrorModel, UniformMatchesMomentsAndBounds) {
  const double error = 0.2;
  const ErrorModel model = ErrorModel::uniform(error);
  Rng rng(7);
  const double half_width = std::sqrt(3.0) * error;
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double r = model.sample_ratio(rng);
    EXPECT_GE(r, 1.0 - half_width - 1e-12);
    EXPECT_LE(r, 1.0 + half_width + 1e-12);
    sum += r;
    sum_sq += r * r;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sum_sq / n - mean * mean);
  EXPECT_NEAR(mean, 1.0, 0.01);
  EXPECT_NEAR(sd, error, 0.01);
}

TEST(ErrorModel, AppliesMultiplicatively) {
  const ErrorModel model = ErrorModel::truncated_normal(0.25);
  Rng a(11);
  Rng b(11);
  const double predicted = 8.0;
  const double ratio = model.sample_ratio(a);
  EXPECT_DOUBLE_EQ(model.actual_duration(predicted, b), predicted * ratio);
}

TEST(ErrorModel, MeanDurationIsUnbiased) {
  const ErrorModel model = ErrorModel::truncated_normal(0.4);
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += model.actual_duration(10.0, rng);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(ErrorModel, FactoriesSetDistribution) {
  EXPECT_EQ(ErrorModel::truncated_normal(0.1).distribution(),
            ErrorDistribution::kTruncatedNormal);
  EXPECT_EQ(ErrorModel::uniform(0.1).distribution(), ErrorDistribution::kUniform);
  EXPECT_EQ(ErrorModel::none().distribution(), ErrorDistribution::kNone);
}

}  // namespace
}  // namespace rumr::stats
