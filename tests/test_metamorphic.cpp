// Metamorphic tests: transformations of the input whose effect on the
// output is known exactly, checked across the full scheduler line-up. These
// catch unit-confusion bugs (seconds vs work units, per-worker vs aggregate
// rates) that example-based tests tend to miss.

#include <gtest/gtest.h>

#include "core/umr.hpp"
#include "sim/master_worker.hpp"
#include "sweep/scheduler_factory.hpp"

namespace rumr::sweep {
namespace {

platform::StarPlatform scaled_platform(std::size_t n, double rate_scale) {
  return platform::StarPlatform::homogeneous(
      {.workers = n, .speed = 1.0 * rate_scale,
       .bandwidth = 1.5 * static_cast<double>(n) * rate_scale, .comp_latency = 0.2,
       .comm_latency = 0.1});
}

/// Scaling the workload AND all rates by the same factor leaves every
/// predicted duration — and hence the zero-error makespan — unchanged:
/// Tcomp = cLat + (k*c)/(k*S), Tcomm = nLat + (k*c)/(k*B).
TEST(Metamorphic, JointWorkloadRateScalingPreservesMakespan) {
  for (const auto& spec : extended_competitors()) {
    const platform::StarPlatform base = scaled_platform(8, 1.0);
    const platform::StarPlatform scaled = scaled_platform(8, 7.0);
    const auto policy_a = spec.make(base, 400.0, 0.0);
    const auto policy_b = spec.make(scaled, 7.0 * 400.0, 0.0);
    const double a = simulate(base, *policy_a, sim::SimOptions{}).makespan;
    const double b = simulate(scaled, *policy_b, sim::SimOptions{}).makespan;
    EXPECT_NEAR(b, a, 1e-6 * a) << spec.name;
  }
}

/// Scaling the workload, all rates, AND all latencies by k scales time
/// uniformly: makespan scales by exactly k... with rates fixed and latencies
/// scaled this is the pure time-dilation transform: chunk c takes
/// k*(cLat + c'/S') when c' = k*c, S' = S, cLat' = k*cLat — i.e. scale W and
/// latencies by k, keep rates: every duration multiplies by k.
TEST(Metamorphic, TimeDilationScalesMakespanLinearly) {
  const double k = 3.0;
  for (const auto& spec : extended_competitors()) {
    const platform::StarPlatform base = platform::StarPlatform::homogeneous(
        {.workers = 6, .speed = 1.0, .bandwidth = 9.0, .comp_latency = 0.2,
         .comm_latency = 0.1});
    const platform::StarPlatform dilated = platform::StarPlatform::homogeneous(
        {.workers = 6, .speed = 1.0, .bandwidth = 9.0, .comp_latency = 0.2 * k,
         .comm_latency = 0.1 * k});
    const auto policy_a = spec.make(base, 300.0, 0.0);
    const auto policy_b = spec.make(dilated, 300.0 * k, 0.0);
    const double a = simulate(base, *policy_a, sim::SimOptions{}).makespan;
    const double b = simulate(dilated, *policy_b, sim::SimOptions{}).makespan;
    EXPECT_NEAR(b, k * a, 1e-6 * k * a) << spec.name;
  }
}

/// The UMR solver's schedule obeys the same invariances: joint scaling of
/// (W, S, B) preserves round count and scales chunks by k.
TEST(Metamorphic, UmrScheduleScalesWithWorkload) {
  const platform::StarPlatform base = scaled_platform(10, 1.0);
  const platform::StarPlatform scaled = scaled_platform(10, 4.0);
  const core::UmrSchedule s1 = core::solve_umr(base, 1000.0);
  const core::UmrSchedule s2 = core::solve_umr(scaled, 4000.0);
  ASSERT_EQ(s1.rounds, s2.rounds);
  for (std::size_t j = 0; j < s1.rounds; ++j) {
    EXPECT_NEAR(s2.chunk[j][0], 4.0 * s1.chunk[j][0], 1e-6 * s2.chunk[j][0]) << "round " << j;
  }
  EXPECT_NEAR(s1.predicted_makespan, s2.predicted_makespan, 1e-6 * s1.predicted_makespan);
}

/// Adding a worker the solver may not even use can only help (or leave
/// unchanged) the *predicted* UMR makespan — monotonicity in resources.
TEST(Metamorphic, UmrPredictionImprovesWithMoreWorkers) {
  double previous = 1e300;
  for (std::size_t n : {5u, 10u, 20u, 40u}) {
    // Keep B/N fixed so utilization stays feasible as N grows.
    const platform::StarPlatform p = scaled_platform(n, 1.0);
    const double predicted = core::solve_umr(p, 1000.0).predicted_makespan;
    EXPECT_LT(predicted, previous) << "N=" << n;
    previous = predicted;
  }
}

/// Permuting worker order on a homogeneous platform cannot change any
/// makespan (there is nothing to distinguish the workers).
TEST(Metamorphic, HomogeneousWorkerOrderIsIrrelevant) {
  const platform::StarPlatform p = scaled_platform(6, 1.0);
  for (const auto& spec : paper_competitors()) {
    const auto policy_a = spec.make(p, 300.0, 0.0);
    const auto policy_b = spec.make(p, 300.0, 0.0);
    // Same platform twice (permutation of identical workers is identity);
    // this guards against hidden state leaking between make() calls.
    const double a = simulate(p, *policy_a, sim::SimOptions{}).makespan;
    const double b = simulate(p, *policy_b, sim::SimOptions{}).makespan;
    EXPECT_DOUBLE_EQ(a, b) << spec.name;
  }
}

/// Halving the error level cannot make the MEAN makespan larger by much:
/// monotonicity of damage in the error magnitude (statistical, wide margin).
TEST(Metamorphic, MeanMakespanGrowsWithError) {
  const platform::StarPlatform p = scaled_platform(10, 1.0);
  for (const auto& spec : paper_competitors()) {
    double low_total = 0.0;
    double high_total = 0.0;
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      const auto policy_low = spec.make(p, 500.0, 0.1);
      low_total += simulate(p, *policy_low, sim::SimOptions::with_error(0.1, seed)).makespan;
      const auto policy_high = spec.make(p, 500.0, 0.5);
      high_total += simulate(p, *policy_high, sim::SimOptions::with_error(0.5, seed)).makespan;
    }
    EXPECT_GT(high_total, 0.95 * low_total) << spec.name;
  }
}

}  // namespace
}  // namespace rumr::sweep
