/// \file test_link_faults.cpp
/// Link-fault injection (loss, latency spikes, bandwidth degradation), the
/// adaptive ACK/timeout/retransmit protocol, and partial-work checkpointing:
/// graceful completion, exactly-once compute, conservation of banked work,
/// and byte-identical replay of faulty runs.

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/factoring.hpp"
#include "baselines/loop_scheduling.hpp"
#include "check/trace_audit.hpp"
#include "core/rumr.hpp"
#include "faults/fault_model.hpp"
#include "sim/master_worker.hpp"
#include "sim/trace_json.hpp"

namespace rumr {
namespace {

platform::StarPlatform uniform_platform(std::size_t workers, double bandwidth = 100.0) {
  return platform::StarPlatform::homogeneous(
      {.workers = workers, .speed = 1.0, .bandwidth = bandwidth});
}

double total_work_of(const sim::SimResult& result) {
  double total = 0.0;
  for (const auto& w : result.workers) total += w.work;
  return total;
}

// ---------------------------------------------------------------------------
// LinkTimeline unit tests
// ---------------------------------------------------------------------------

TEST(LinkTimeline, InertSpecDeliversEverythingClean) {
  faults::LinkTimeline timeline(faults::LinkFaultSpec::none(), 3, 42);
  for (std::size_t w = 0; w < 3; ++w) {
    const auto fate = timeline.message_fate(w, 1.0);
    EXPECT_FALSE(fate.lost);
    EXPECT_DOUBLE_EQ(fate.spike, 0.0);
    EXPECT_DOUBLE_EQ(fate.stretch, 1.0);
    EXPECT_FALSE(timeline.degraded_at(w, 1.0));
  }
}

TEST(LinkTimeline, RejectsInvalidSpecs) {
  EXPECT_THROW(faults::LinkTimeline(faults::LinkFaultSpec::lossy(1.5), 2, 1),
               std::invalid_argument);
  EXPECT_THROW(faults::LinkTimeline(faults::LinkFaultSpec::spiky(-0.1, 1.0), 2, 1),
               std::invalid_argument);
  EXPECT_THROW(faults::LinkTimeline(faults::LinkFaultSpec::spiky(0.5, -1.0), 2, 1),
               std::invalid_argument);
  EXPECT_THROW(faults::LinkTimeline(faults::LinkFaultSpec::degraded(10.0, 1.0, 0.5), 2, 1),
               std::invalid_argument);
}

TEST(LinkTimeline, FatesAreIndependentOfQueryOrderAcrossWorkers) {
  const auto spec = faults::LinkFaultSpec::lossy(0.5);
  faults::LinkTimeline forward(spec, 3, 99);
  faults::LinkTimeline backward(spec, 3, 99);

  // Draw three fates per worker, in opposite worker orders; per-worker lanes
  // make the sequences identical regardless of interleaving.
  std::vector<std::vector<bool>> a(3);
  std::vector<std::vector<bool>> b(3);
  for (std::size_t w = 0; w < 3; ++w) {
    for (int i = 0; i < 3; ++i) a[w].push_back(forward.message_fate(w, 0.0).lost);
  }
  for (std::size_t w = 3; w-- > 0;) {
    for (int i = 0; i < 3; ++i) b[w].push_back(backward.message_fate(w, 0.0).lost);
  }
  EXPECT_EQ(a, b);
}

TEST(LinkTimeline, LossRateMatchesSpecApproximately) {
  faults::LinkTimeline timeline(faults::LinkFaultSpec::lossy(0.25), 1, 7);
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (timeline.message_fate(0, 0.0).lost) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.25, 0.02);
}

TEST(LinkTimeline, DegradationWindowsStretchBandwidthOnly) {
  // High mtbf/mttr ratio: find a degraded instant and check the stretch.
  faults::LinkTimeline timeline(faults::LinkFaultSpec::degraded(5.0, 5.0, 3.0), 1, 21);
  bool saw_degraded = false;
  for (double t = 0.0; t < 200.0; t += 0.5) {
    const auto fate = timeline.message_fate(0, t);
    if (timeline.degraded_at(0, t)) {
      saw_degraded = true;
      EXPECT_DOUBLE_EQ(fate.stretch, 3.0);
    } else {
      EXPECT_DOUBLE_EQ(fate.stretch, 1.0);
    }
    EXPECT_FALSE(fate.lost);  // Loss axis disabled.
  }
  EXPECT_TRUE(saw_degraded);
}

// ---------------------------------------------------------------------------
// Engine semantics under link faults
// ---------------------------------------------------------------------------

sim::SimOptions link_options(faults::LinkFaultSpec spec, std::uint64_t seed = 1) {
  sim::SimOptions options;
  options.seed = seed;
  options.record_trace = true;
  options.link = spec;
  return options;
}

TEST(LinkSim, LossyLinkRecoversViaWatchdogWithoutRetransmit) {
  const auto platform = uniform_platform(3, 10.0);
  baselines::FactoringPolicy policy(120.0, 3);
  // Without the retransmit protocol a lost payload is recovered only when
  // the completion watchdog fences the silent worker and reclaims the lease.
  const auto options = link_options(faults::LinkFaultSpec::lossy(0.15), 5);

  const sim::SimResult result = simulate(platform, policy, options);

  EXPECT_GT(result.faults.messages_lost, 0u);
  EXPECT_GT(result.faults.suspicions, 0u);
  EXPECT_EQ(result.faults.chunks_lost, result.faults.chunks_redispatched);
  EXPECT_NEAR(total_work_of(result), 120.0, 1e-6);

  const check::AuditReport audit = check::audit_sim_result(result, platform, 120.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(LinkSim, RetransmitProtocolRecoversLostPayloads) {
  const auto platform = uniform_platform(3, 10.0);
  baselines::FactoringPolicy policy(120.0, 3);
  auto options = link_options(faults::LinkFaultSpec::lossy(0.15), 5);
  options.retransmit.enabled = true;

  const sim::SimResult result = simulate(platform, policy, options);

  EXPECT_GT(result.faults.messages_lost, 0u);
  EXPECT_GT(result.faults.retransmits, 0u);
  EXPECT_GT(result.faults.work_retransmitted, 0.0);
  EXPECT_NEAR(total_work_of(result), 120.0, 1e-6);

  const check::AuditReport audit = check::audit_sim_result(result, platform, 120.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(LinkSim, AggressiveRtoProducesSuppressedDuplicates) {
  const auto platform = uniform_platform(2, 10.0);
  baselines::FactoringPolicy policy(100.0, 2);
  // Latency spikes with a deliberately hair-trigger RTO: retransmissions race
  // the (slow but eventually delivered) originals, so the worker sees
  // duplicates. Lease-id suppression must drop them without recomputing.
  auto options = link_options(faults::LinkFaultSpec::spiky(0.5, 2.0), 11);
  options.retransmit.enabled = true;
  options.retransmit.rto_initial_factor = 1.0;
  options.retransmit.rto_min = 1e-4;
  options.retransmit.max_retries = 64;

  const sim::SimResult result = simulate(platform, policy, options);

  EXPECT_GT(result.faults.latency_spikes, 0u);
  EXPECT_GT(result.faults.retransmits, 0u);
  EXPECT_GT(result.faults.duplicates_suppressed, 0u);
  EXPECT_LE(result.faults.duplicates_suppressed, result.faults.retransmits);
  EXPECT_NEAR(total_work_of(result), 100.0, 1e-6);

  const check::AuditReport audit = check::audit_sim_result(result, platform, 100.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(LinkSim, DegradedWindowsSlowTheRunDown) {
  const auto platform = uniform_platform(3, 5.0);
  const auto clean_options = link_options(faults::LinkFaultSpec::none(), 3);
  const auto degraded_options =
      link_options(faults::LinkFaultSpec::degraded(2.0, 4.0, 8.0), 3);

  baselines::FactoringPolicy clean_policy(200.0, 3);
  const sim::SimResult clean = simulate(platform, clean_policy, clean_options);
  baselines::FactoringPolicy degraded_policy(200.0, 3);
  const sim::SimResult degraded = simulate(platform, degraded_policy, degraded_options);

  EXPECT_GT(degraded.faults.degraded_sends, 0u);
  EXPECT_GT(degraded.makespan, clean.makespan);
  EXPECT_NEAR(total_work_of(degraded), 200.0, 1e-6);

  const check::AuditReport audit = check::audit_sim_result(degraded, platform, 200.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(LinkSim, FaultyLinkRunsReplayByteIdentical) {
  const auto platform = uniform_platform(3, 10.0);
  auto options = link_options(
      faults::LinkFaultSpec{.loss = 0.1, .spike_probability = 0.2, .spike_mean = 1.0,
                            .degraded_mtbf = 5.0, .degraded_mttr = 2.0, .degraded_factor = 2.0},
      23);
  options.retransmit.enabled = true;
  options.checkpoint.interval = 0.5;

  const auto run = [&] {
    baselines::FactoringPolicy policy(150.0, 3);
    return simulate(platform, policy, options);
  };
  const sim::SimResult a = run();
  const sim::SimResult b = run();

  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.faults.messages_lost, b.faults.messages_lost);
  EXPECT_EQ(a.faults.retransmits, b.faults.retransmits);
  EXPECT_EQ(a.faults.duplicates_suppressed, b.faults.duplicates_suppressed);
  EXPECT_EQ(a.faults.checkpoints_banked, b.faults.checkpoints_banked);
  EXPECT_DOUBLE_EQ(a.faults.work_banked, b.faults.work_banked);
  EXPECT_EQ(sim::to_chrome_tracing(a.trace), sim::to_chrome_tracing(b.trace));
}

TEST(LinkSim, InertLinkSpecAddsNothing) {
  const auto platform = uniform_platform(2);
  const auto run = [&](bool with_link_member) {
    baselines::FactoringPolicy policy(40.0, 2);
    sim::SimOptions options;
    options.seed = 9;
    options.record_trace = true;
    if (with_link_member) options.link = faults::LinkFaultSpec::none();
    return simulate(platform, policy, options);
  };
  const sim::SimResult baseline = run(false);
  const sim::SimResult with_spec = run(true);

  EXPECT_DOUBLE_EQ(with_spec.makespan, baseline.makespan);
  EXPECT_EQ(with_spec.faults.messages_lost, 0u);
  EXPECT_EQ(with_spec.faults.retransmits, 0u);
  EXPECT_EQ(with_spec.faults.work_banked, 0.0);
  EXPECT_EQ(sim::to_chrome_tracing(with_spec.trace), sim::to_chrome_tracing(baseline.trace));
}

TEST(LinkSim, RunFinishesWhenFinalCompletionRacesASettledRetransmission) {
  // Regression (found and shrunk by chaos_campaign): when the run's final
  // completion landed while the uplink was busy, a retransmission already
  // settled by that completion was still queued, maybe_finish declined, and
  // nothing ever re-checked the finish condition — the transient fault
  // timeline then respawned outage events forever and the run only died on
  // the event budget at t ~ 4.4e7. With the fix the run converges right at
  // the last completion. Exact scenario: RUMR, N=10 B=15 cLat=nLat=0.3,
  // loss=0.25, worker MTBF=400/MTTR=40, error=0.2, this seed.
  const auto platform = platform::StarPlatform::homogeneous({.workers = 10,
                                                             .speed = 1.0,
                                                             .bandwidth = 15.0,
                                                             .comp_latency = 0.3,
                                                             .comm_latency = 0.3});
  sim::SimOptions options = sim::SimOptions::with_error(0.2, 14071499262588818598ULL);
  options.record_trace = true;
  options.max_events = 2'000'000;
  options.link = faults::LinkFaultSpec::lossy(0.25);
  options.faults = faults::FaultSpec::transient(400.0, 40.0);
  options.retransmit.enabled = true;
  options.checkpoint.interval = 0.5;

  core::RumrOptions rumr_options;
  rumr_options.known_error = 0.2;
  core::RumrPolicy policy(platform, 500.0, std::move(rumr_options));
  const sim::SimResult result = simulate(platform, policy, options);

  // The stalled run burned the whole 2M-event budget; a converging one needs
  // a few hundred events.
  EXPECT_LT(result.events, 100000u);
  EXPECT_NEAR(total_work_of(result) + result.faults.work_banked, 500.0, 1e-6);
  const check::AuditReport audit = check::audit_sim_result(result, platform, 500.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(LinkSim, RejectsInvalidRetransmitAndCheckpointOptions) {
  const auto platform = uniform_platform(2);
  const auto expect_rejected = [&](sim::SimOptions options, const char* what) {
    baselines::FactoringPolicy policy(40.0, 2);
    EXPECT_THROW((void)simulate(platform, policy, options), sim::SimError) << what;
  };

  sim::SimOptions bad_alpha = link_options(faults::LinkFaultSpec::lossy(0.1));
  bad_alpha.retransmit.enabled = true;
  bad_alpha.retransmit.alpha = 0.0;
  expect_rejected(bad_alpha, "alpha = 0");

  sim::SimOptions bad_retries = link_options(faults::LinkFaultSpec::lossy(0.1));
  bad_retries.retransmit.enabled = true;
  bad_retries.retransmit.max_retries = 0;
  expect_rejected(bad_retries, "max_retries = 0");

  sim::SimOptions bad_interval = link_options(faults::LinkFaultSpec::lossy(0.1));
  bad_interval.checkpoint.interval = -1.0;
  expect_rejected(bad_interval, "negative checkpoint interval");
}

// ---------------------------------------------------------------------------
// Partial-work checkpointing
// ---------------------------------------------------------------------------

TEST(CheckpointSim, BankedWorkReducesRedispatchUnderMessageLoss) {
  // The PR's acceptance scenario: a 10% message-loss RUMR run must pass the
  // banked-work conservation audit and re-dispatch strictly less volume with
  // checkpointing on than off (only unbanked remainders travel again).
  const auto platform = uniform_platform(4, 10.0);
  const auto run = [&](double interval) {
    core::RumrPolicy policy(platform, 400.0);
    auto options = link_options(faults::LinkFaultSpec::lossy(0.10), 31);
    options.checkpoint.interval = interval;
    return simulate(platform, policy, options);
  };

  const sim::SimResult without = run(0.0);
  const sim::SimResult with = run(0.25);

  // Same seed, same loss pattern: both runs lose payloads and fence workers.
  ASSERT_GT(without.faults.work_redispatched, 0.0);
  EXPECT_GT(with.faults.checkpoints_banked, 0u);
  EXPECT_GT(with.faults.work_banked, 0.0);
  EXPECT_LT(with.faults.work_redispatched, without.faults.work_redispatched);

  EXPECT_NEAR(total_work_of(without), 400.0, 1e-4);
  EXPECT_NEAR(total_work_of(with) + with.faults.work_banked, 400.0, 1e-4);

  const check::AuditReport audit_without = check::audit_sim_result(without, platform, 400.0);
  EXPECT_TRUE(audit_without.ok()) << audit_without.summary();
  const check::AuditReport audit_with = check::audit_sim_result(with, platform, 400.0);
  EXPECT_TRUE(audit_with.ok()) << audit_with.summary();
}

TEST(CheckpointSim, BankingConservationHoldsUnderWorkerCrashes) {
  const auto platform = uniform_platform(3);
  baselines::CssPolicy policy(300.0, 3, 5.0);
  sim::SimOptions options;
  options.seed = 13;
  options.record_trace = true;
  options.faults = faults::FaultSpec::scripted({{0, {2.0, 40.0}}});
  options.checkpoint.interval = 0.5;

  const sim::SimResult result = simulate(platform, policy, options);

  // Worker 0 was mid-chunk at t=2 with >= 3 completed checkpoint intervals.
  EXPECT_GT(result.faults.checkpoints_banked, 0u);
  EXPECT_GT(result.faults.work_banked, 0.0);
  EXPECT_NEAR(total_work_of(result) + result.faults.work_banked, 300.0, 1e-6);
  // The banked fraction shrank the reclaimed remainder below the full chunk.
  EXPECT_LT(result.faults.work_lost, 5.0 * result.faults.chunks_lost);

  const check::AuditReport audit = check::audit_sim_result(result, platform, 300.0);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(CheckpointSim, ZeroIntervalBanksNothing) {
  const auto platform = uniform_platform(3);
  baselines::CssPolicy policy(300.0, 3, 5.0);
  sim::SimOptions options;
  options.seed = 13;
  options.faults = faults::FaultSpec::scripted({{0, {2.0, 40.0}}});

  const sim::SimResult result = simulate(platform, policy, options);
  EXPECT_EQ(result.faults.checkpoints_banked, 0u);
  EXPECT_EQ(result.faults.work_banked, 0.0);
  EXPECT_NEAR(total_work_of(result), 300.0, 1e-6);
}

}  // namespace
}  // namespace rumr
