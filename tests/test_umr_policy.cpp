// Tests for the UMR execution policy (core/umr_policy.hpp): dispatch order,
// bookkeeping, and the out-of-order revision used in RUMR phase 1.

#include "core/umr_policy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/master_worker.hpp"

namespace rumr::core {
namespace {

platform::StarPlatform small_platform() {
  return platform::StarPlatform::homogeneous(
      {.workers = 4, .speed = 1.0, .bandwidth = 6.0, .comp_latency = 0.1,
       .comm_latency = 0.05});
}

/// Minimal MasterContext stub for driving policies without the engine.
class StubContext : public sim::MasterContext {
 public:
  explicit StubContext(const platform::StarPlatform& p) : platform_(p), status_(p.size()) {}

  [[nodiscard]] des::SimTime now() const override { return now_; }
  [[nodiscard]] const platform::StarPlatform& platform() const override { return platform_; }
  [[nodiscard]] std::size_t num_workers() const override { return platform_.size(); }
  [[nodiscard]] const sim::WorkerStatus& worker_status(std::size_t i) const override {
    return status_.at(i);
  }
  [[nodiscard]] bool can_receive(std::size_t i) const override { return receivable_.empty() || receivable_.at(i); }

  des::SimTime now_ = 0.0;
  const platform::StarPlatform& platform_;
  std::vector<sim::WorkerStatus> status_;
  std::vector<bool> receivable_;
};

TEST(UmrPolicy, InOrderIsStrictRoundRobin) {
  const platform::StarPlatform p = small_platform();
  UmrPolicy policy(p, 400.0, DispatchOrder::kInOrder);
  StubContext ctx(p);
  const std::size_t rounds = policy.schedule().rounds;
  for (std::size_t j = 0; j < rounds; ++j) {
    for (std::size_t i = 0; i < 4; ++i) {
      const auto d = policy.next_dispatch(ctx);
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->worker, i) << "round " << j;
      EXPECT_NEAR(d->chunk, policy.schedule().chunk[j][i], 1e-12);
    }
  }
  EXPECT_TRUE(policy.finished());
  EXPECT_FALSE(policy.next_dispatch(ctx).has_value());
}

TEST(UmrPolicy, OutOfOrderMatchesInOrderWhenNobodyIsIdle) {
  const platform::StarPlatform p = small_platform();
  UmrPolicy policy(p, 400.0, DispatchOrder::kOutOfOrder);
  StubContext ctx(p);
  // All workers busy (outstanding > 0): order stays round-robin.
  for (auto& st : ctx.status_) st.outstanding = 1;
  std::vector<std::size_t> order;
  for (int i = 0; i < 8; ++i) {
    const auto d = policy.next_dispatch(ctx);
    ASSERT_TRUE(d.has_value());
    order.push_back(d->worker);
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(UmrPolicy, OutOfOrderServesPrematurelyIdleWorkerFirst) {
  const platform::StarPlatform p = small_platform();
  UmrPolicy policy(p, 400.0, DispatchOrder::kOutOfOrder);
  StubContext ctx(p);
  for (auto& st : ctx.status_) st.outstanding = 1;
  // Consume round 0 completely.
  for (int i = 0; i < 4; ++i) (void)policy.next_dispatch(ctx);
  // Worker 2 finished everything it was sent — it jumps the round-1 queue.
  ctx.status_[2].outstanding = 0;
  ctx.status_[2].completed_chunks = 1;
  ctx.status_[2].last_completion = 5.0;
  const auto d = policy.next_dispatch(ctx);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->worker, 2u);
}

TEST(UmrPolicy, OutOfOrderPrefersEarliestCompletionAmongIdle) {
  const platform::StarPlatform p = small_platform();
  UmrPolicy policy(p, 400.0, DispatchOrder::kOutOfOrder);
  StubContext ctx(p);
  for (auto& st : ctx.status_) st.outstanding = 1;
  for (int i = 0; i < 4; ++i) (void)policy.next_dispatch(ctx);
  ctx.status_[1].outstanding = 0;
  ctx.status_[1].completed_chunks = 1;
  ctx.status_[1].last_completion = 7.0;
  ctx.status_[3].outstanding = 0;
  ctx.status_[3].completed_chunks = 1;
  ctx.status_[3].last_completion = 5.0;  // Idle longer.
  const auto d = policy.next_dispatch(ctx);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->worker, 3u);
}

TEST(UmrPolicy, OutOfOrderAvoidsBlockedWorkers) {
  const platform::StarPlatform p = small_platform();
  UmrPolicy policy(p, 400.0, DispatchOrder::kOutOfOrder);
  StubContext ctx(p);
  for (auto& st : ctx.status_) st.outstanding = 2;
  ctx.receivable_ = {false, false, true, true};
  const auto d = policy.next_dispatch(ctx);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->worker, 2u);  // First receivable, since nobody is idle.
}

TEST(UmrPolicy, TotalWorkMatchesSchedule) {
  const platform::StarPlatform p = small_platform();
  UmrPolicy policy(p, 123.0);
  EXPECT_NEAR(policy.total_work(), 123.0, 1e-9);
}

TEST(UmrPolicy, RunsToCompletionInSimulation) {
  const platform::StarPlatform p = small_platform();
  for (const DispatchOrder order : {DispatchOrder::kInOrder, DispatchOrder::kOutOfOrder}) {
    UmrPolicy policy(p, 400.0, order);
    const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.3, 99));
    EXPECT_NEAR(r.work_dispatched, 400.0, 1e-6);
    EXPECT_TRUE(policy.finished());
  }
}

TEST(UmrPolicy, AllDisciplinesIdenticalAtZeroError) {
  // With perfect predictions the planned timetable coincides with eager
  // dispatch, and nobody ever finishes prematurely.
  const platform::StarPlatform p = small_platform();
  UmrPolicy in_order(p, 400.0, DispatchOrder::kInOrder);
  UmrPolicy out_of_order(p, 400.0, DispatchOrder::kOutOfOrder);
  UmrPolicy timetable(p, 400.0, DispatchOrder::kTimetable);
  const double m1 = simulate(p, in_order, sim::SimOptions{}).makespan;
  const double m2 = simulate(p, out_of_order, sim::SimOptions{}).makespan;
  const double m3 = simulate(p, timetable, sim::SimOptions{}).makespan;
  EXPECT_DOUBLE_EQ(m1, m2);
  EXPECT_NEAR(m3, m1, 1e-9 * m1);
}

TEST(UmrPolicy, TimetableRequiresPlatformConstructor) {
  const platform::StarPlatform p = small_platform();
  UmrSchedule schedule = core::solve_umr(p, 400.0);
  EXPECT_THROW(UmrPolicy(std::move(schedule), DispatchOrder::kTimetable),
               std::invalid_argument);
}

TEST(UmrPolicy, TimetableNeverDispatchesEarly) {
  const platform::StarPlatform p = small_platform();
  UmrPolicy policy(p, 400.0, DispatchOrder::kTimetable);
  StubContext ctx(p);
  ctx.now_ = 0.0;
  // First send is planned at t = 0: available immediately.
  EXPECT_TRUE(policy.next_dispatch(ctx).has_value());
  // Second send is planned strictly later: declined now, with the planned
  // time exposed through next_poll_time().
  EXPECT_FALSE(policy.next_dispatch(ctx).has_value());
  const auto poll = policy.next_poll_time();
  ASSERT_TRUE(poll.has_value());
  EXPECT_GT(*poll, 0.0);
  ctx.now_ = *poll;
  EXPECT_TRUE(policy.next_dispatch(ctx).has_value());
}

TEST(UmrPolicy, TimetableConservesUnderError) {
  const platform::StarPlatform p = small_platform();
  UmrPolicy policy(p, 400.0, DispatchOrder::kTimetable);
  const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.4, 31));
  EXPECT_NEAR(r.work_dispatched, 400.0, 1e-6);
  EXPECT_TRUE(policy.finished());
}

TEST(UmrPolicy, TimetableAndEagerStayCloseOnAverage) {
  // The two disciplines diverge only by whether the master may run ahead of
  // its planned send times; on a single small platform their mean makespans
  // stay within a few percent (the systematic timetable penalty emerges on
  // large parameter sweeps — see bench_ablation_buffering).
  const platform::StarPlatform p = small_platform();
  double eager_total = 0.0;
  double timed_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    UmrPolicy eager(p, 400.0, DispatchOrder::kInOrder);
    eager_total += simulate(p, eager, sim::SimOptions::with_error(0.35, seed)).makespan;
    UmrPolicy timed(p, 400.0, DispatchOrder::kTimetable);
    timed_total += simulate(p, timed, sim::SimOptions::with_error(0.35, seed)).makespan;
  }
  EXPECT_NEAR(eager_total / timed_total, 1.0, 0.05);
}

}  // namespace
}  // namespace rumr::core
