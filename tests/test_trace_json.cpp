// Tests for the Chrome-tracing trace export (sim/trace_json.hpp).

#include "sim/trace_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/umr_policy.hpp"
#include "sim/master_worker.hpp"

namespace rumr::sim {
namespace {

TEST(TraceJson, EmptyTraceIsValidSkeleton) {
  const std::string json = to_chrome_tracing(Trace{});
  EXPECT_EQ(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(TraceJson, EmitsOneEventPerSpan) {
  Trace trace;
  trace.add({SpanKind::kUplink, 0, 5.0, 0.0, 1.0});
  trace.add({SpanKind::kCompute, 0, 5.0, 1.0, 6.0});
  trace.add({SpanKind::kOutput, 0, 1.0, 6.0, 6.5});
  const std::string json = to_chrome_tracing(trace);
  EXPECT_NE(json.find("\"name\":\"send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"output\""), std::string::npos);
  // Seconds -> microseconds.
  EXPECT_NE(json.find("\"ts\":1e+06"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5e+06"), std::string::npos);
}

TEST(TraceJson, ThreadsSeparateMasterAndWorkers) {
  Trace trace;
  trace.add({SpanKind::kUplink, 3, 1.0, 0.0, 1.0});   // tid 0 regardless of worker.
  trace.add({SpanKind::kCompute, 3, 1.0, 1.0, 2.0});  // tid 13.
  const std::string json = to_chrome_tracing(trace);
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":13"), std::string::npos);
}

TEST(TraceJson, RealRunProducesParseableSkeleton) {
  const platform::StarPlatform p = platform::StarPlatform::homogeneous(
      {.workers = 4, .speed = 1.0, .bandwidth = 8.0, .comp_latency = 0.1,
       .comm_latency = 0.1});
  core::UmrPolicy policy(p, 200.0);
  sim::SimOptions options;
  options.record_trace = true;
  const SimResult result = simulate(p, policy, options);
  const std::string json = to_chrome_tracing(result.trace);
  // Crude structural checks: balanced braces/brackets, one event per span.
  std::size_t events = 0;
  for (std::size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, result.trace.size());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceJson, SavesToFile) {
  Trace trace;
  trace.add({SpanKind::kUplink, 0, 1.0, 0.0, 1.0});
  const std::string path = "trace_json_test.json";
  ASSERT_TRUE(save_chrome_tracing(path, trace));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, to_chrome_tracing(trace));
  std::remove(path.c_str());
}

TEST(TraceJson, RefusesUnwritablePath) {
  EXPECT_FALSE(save_chrome_tracing("/nonexistent-dir/trace.json", Trace{}));
}

}  // namespace
}  // namespace rumr::sim
