// Unit tests for the deterministic RNG substrate (stats/rng.hpp).

#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rumr::stats {
namespace {

TEST(Splitmix64, ProducesKnownGoodDispersion) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  const std::uint64_t c = splitmix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

TEST(MixSeed, DiffersInEveryArgument) {
  const std::uint64_t base = mix_seed(1, 2, 3, 4);
  EXPECT_NE(base, mix_seed(2, 2, 3, 4));
  EXPECT_NE(base, mix_seed(1, 3, 3, 4));
  EXPECT_NE(base, mix_seed(1, 2, 4, 4));
  EXPECT_NE(base, mix_seed(1, 2, 3, 5));
}

TEST(MixSeed, IsDeterministic) {
  EXPECT_EQ(mix_seed(42, 7, 9), mix_seed(42, 7, 9));
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDifferentStreams) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, CoversFullRangeBounds) {
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~std::uint64_t{0});
}

TEST(Rng, Uniform01StaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexStaysBelowBound) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All values reachable in 1000 draws.
}

TEST(Rng, UniformIndexOfOneIsAlwaysZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, StandardNormalMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.standard_normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScalesAndShifts) {
  Rng rng(29);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(31);
  Rng b(31);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.uniform01(), b.uniform01());
    EXPECT_EQ(a.standard_normal(), b.standard_normal());
  }
}

}  // namespace
}  // namespace rumr::stats
