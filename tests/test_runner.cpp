// Tests for the sweep runner (sweep/runner.hpp): determinism, aggregation,
// and the Table 2 / Table 3 / Figure 4 accessors.

#include "sweep/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "report/metrics_io.hpp"

namespace rumr::sweep {
namespace {

GridSpec tiny_grid() {
  GridSpec spec;
  spec.n_values = {10};
  spec.b_over_n_values = {1.5};
  spec.clat_values = {0.1};
  spec.nlat_values = {0.05};
  return spec;
}

SweepOptions tiny_options() {
  SweepOptions options;
  options.errors = {0.0, 0.2, 0.4};
  options.repetitions = 5;
  return options;
}

TEST(Runner, RejectsEmptyAlgorithmList) {
  EXPECT_THROW((void)run_sweep(make_grid(tiny_grid()), {}, tiny_options()),
               std::invalid_argument);
}

TEST(Runner, ShapesMatchInputs) {
  const auto configs = make_grid(tiny_grid());
  const std::vector<AlgorithmSpec> algos{rumr_spec(), umr_spec()};
  const SweepResult res = run_sweep(configs, algos, tiny_options());
  EXPECT_EQ(res.configs().size(), 1u);
  EXPECT_EQ(res.errors().size(), 3u);
  ASSERT_EQ(res.algorithms().size(), 2u);
  EXPECT_EQ(res.algorithms()[0], "RUMR");
  EXPECT_EQ(res.algorithms()[1], "UMR");
  for (std::size_t e = 0; e < 3; ++e) {
    for (std::size_t a = 0; a < 2; ++a) {
      EXPECT_EQ(res.cell(0, e, a).reps, 5u);
      EXPECT_EQ(res.cell(0, e, a).makespan.count(), 5u);
      EXPECT_GT(res.cell(0, e, a).makespan.mean(), 0.0);
    }
  }
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  const auto configs = make_grid(tiny_grid());
  const std::vector<AlgorithmSpec> algos{rumr_spec(), umr_spec(), factoring_spec()};
  SweepOptions one = tiny_options();
  one.threads = 1;
  SweepOptions many = tiny_options();
  many.threads = 8;
  const SweepResult a = run_sweep(configs, algos, one);
  const SweepResult b = run_sweep(configs, algos, many);
  for (std::size_t e = 0; e < a.errors().size(); ++e) {
    for (std::size_t algo = 0; algo < algos.size(); ++algo) {
      EXPECT_DOUBLE_EQ(a.cell(0, e, algo).makespan.mean(), b.cell(0, e, algo).makespan.mean());
      EXPECT_EQ(a.cell(0, e, algo).ref_wins, b.cell(0, e, algo).ref_wins);
    }
  }
}

TEST(Runner, BaseSeedChangesResultsUnderError) {
  const auto configs = make_grid(tiny_grid());
  const std::vector<AlgorithmSpec> algos{umr_spec()};
  SweepOptions a = tiny_options();
  a.base_seed = 1;
  SweepOptions b = tiny_options();
  b.base_seed = 2;
  const SweepResult ra = run_sweep(configs, algos, a);
  const SweepResult rb = run_sweep(configs, algos, b);
  // Error = 0 cells agree (no randomness); error > 0 cells differ.
  EXPECT_DOUBLE_EQ(ra.cell(0, 0, 0).makespan.mean(), rb.cell(0, 0, 0).makespan.mean());
  EXPECT_NE(ra.cell(0, 2, 0).makespan.mean(), rb.cell(0, 2, 0).makespan.mean());
}

TEST(Runner, ReferenceIsNeverItsOwnWin) {
  const auto configs = make_grid(tiny_grid());
  const std::vector<AlgorithmSpec> algos{rumr_spec(), umr_spec()};
  const SweepResult res = run_sweep(configs, algos, tiny_options());
  for (std::size_t e = 0; e < res.errors().size(); ++e) {
    EXPECT_EQ(res.cell(0, e, 0).ref_wins, 0u);
    EXPECT_EQ(res.cell(0, e, 0).ref_wins_by_10pct, 0u);
  }
}

TEST(Runner, NormalizedMakespanOfReferenceIsOne) {
  const auto configs = make_grid(tiny_grid());
  const std::vector<AlgorithmSpec> algos{rumr_spec(), umr_spec()};
  const SweepResult res = run_sweep(configs, algos, tiny_options());
  for (std::size_t e = 0; e < res.errors().size(); ++e) {
    EXPECT_DOUBLE_EQ(res.mean_normalized_makespan(e, 0), 1.0);
    EXPECT_GT(res.mean_normalized_makespan(e, 1), 0.0);
  }
}

TEST(Runner, WinPercentagesAreBounded) {
  GridSpec spec = tiny_grid();
  spec.n_values = {10, 20};
  const auto configs = make_grid(spec);
  SweepOptions options;
  options.errors = {0.04, 0.24, 0.44};
  options.repetitions = 4;
  const std::vector<AlgorithmSpec> algos{rumr_spec(), mi_spec(2)};
  const SweepResult res = run_sweep(configs, algos, options);
  for (std::size_t band = 0; band < 5; ++band) {
    const double t2 = res.win_percentage(band, 1);
    const double t3 = res.win_percentage(band, 1, true);
    EXPECT_GE(t2, 0.0);
    EXPECT_LE(t2, 100.0);
    EXPECT_LE(t3, t2 + 1e-12);  // Winning by 10% implies winning.
  }
  EXPECT_GE(res.overall_win_percentage(1), 0.0);
  EXPECT_LE(res.overall_win_percentage(1), 100.0);
  EXPECT_GE(res.per_rep_win_percentage(2, 1), 0.0);
  EXPECT_LE(res.per_rep_win_percentage(2, 1), 100.0);
}

TEST(Runner, RunOnceMatchesManualSimulation) {
  const PlatformConfig config{10, 1.5, 0.1, 0.05};
  const double a = run_once(config, umr_spec(), 0.3, 42);
  const double b = run_once(config, umr_spec(), 0.3, 42);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = run_once(config, umr_spec(), 0.3, 43);
  EXPECT_NE(a, c);
}

TEST(Runner, UniformDistributionOptionIsHonored) {
  const auto configs = make_grid(tiny_grid());
  const std::vector<AlgorithmSpec> algos{umr_spec()};
  SweepOptions normal = tiny_options();
  SweepOptions uniform = tiny_options();
  uniform.distribution = stats::ErrorDistribution::kUniform;
  const SweepResult rn = run_sweep(configs, algos, normal);
  const SweepResult ru = run_sweep(configs, algos, uniform);
  // Different distributions, same seeds: different perturbed makespans.
  EXPECT_NE(rn.cell(0, 2, 0).makespan.mean(), ru.cell(0, 2, 0).makespan.mean());
  // But similar magnitude (the paper's "essentially similar" claim).
  EXPECT_NEAR(rn.cell(0, 2, 0).makespan.mean() / ru.cell(0, 2, 0).makespan.mean(), 1.0, 0.2);
}

// --- option validation ------------------------------------------------------

TEST(SweepOptionsValidate, AcceptsDefaults) {
  EXPECT_TRUE(SweepOptions{}.validate().empty());
  EXPECT_TRUE(tiny_options().validate().empty());
}

TEST(SweepOptionsValidate, FlagsEachDegenerateField) {
  SweepOptions options;
  options.errors = {};
  EXPECT_FALSE(options.validate().empty());

  options = tiny_options();
  options.errors = {0.1, -0.2};
  EXPECT_FALSE(options.validate().empty());

  options = tiny_options();
  options.repetitions = 0;
  EXPECT_FALSE(options.validate().empty());

  options = tiny_options();
  options.w_total = -5.0;
  EXPECT_FALSE(options.validate().empty());
}

TEST(SweepOptionsValidate, MessagesAreHumanReadable) {
  SweepOptions options;
  options.errors = {};
  options.repetitions = 0;
  const std::vector<std::string> errors = options.validate();
  ASSERT_GE(errors.size(), 2u);
  for (const std::string& message : errors) EXPECT_FALSE(message.empty());
}

TEST(Runner, RejectsInvalidOptionsUpFront) {
  SweepOptions options = tiny_options();
  options.repetitions = 0;
  EXPECT_THROW((void)run_sweep(make_grid(tiny_grid()), {umr_spec()}, options),
               std::invalid_argument);
}

// --- metrics aggregation and export ----------------------------------------

TEST(Runner, AggregatesObservabilityMetricsPerCell) {
  const auto configs = make_grid(tiny_grid());
  const std::vector<AlgorithmSpec> algos{rumr_spec(), umr_spec()};
  const SweepResult res = run_sweep(configs, algos, tiny_options());
  for (std::size_t e = 0; e < res.errors().size(); ++e) {
    for (std::size_t a = 0; a < algos.size(); ++a) {
      const CellStats& cell = res.cell(0, e, a);
      EXPECT_EQ(cell.uplink_utilization.count(), cell.reps);
      EXPECT_EQ(cell.worker_utilization.count(), cell.reps);
      EXPECT_EQ(cell.events.count(), cell.reps);
      EXPECT_EQ(cell.hol_blocking_time.count(), cell.reps);
      EXPECT_EQ(cell.work_redispatched.count(), cell.reps);
      EXPECT_GT(cell.uplink_utilization.mean(), 0.0);
      EXPECT_LE(cell.uplink_utilization.mean(), 1.0);
      EXPECT_GT(cell.events.mean(), 0.0);
      // No faults in this sweep: nothing may be re-dispatched.
      EXPECT_DOUBLE_EQ(cell.work_redispatched.mean(), 0.0);
    }
  }
}

TEST(MetricsIo, CsvHasOneRowPerCellWithStableHeader) {
  const auto configs = make_grid(tiny_grid());
  const std::vector<AlgorithmSpec> algos{rumr_spec(), umr_spec()};
  const SweepResult res = run_sweep(configs, algos, tiny_options());
  const std::string csv = report::sweep_metrics_csv(res);
  EXPECT_NE(csv.find("config,error,algorithm,reps,makespan_mean,makespan_stddev"),
            std::string::npos);
  // Header + one row per (config, error, algorithm) cell.
  const std::size_t rows = static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, 1u + res.configs().size() * res.errors().size() * res.algorithms().size());
  EXPECT_NE(csv.find("RUMR"), std::string::npos);
  EXPECT_NE(csv.find("UMR"), std::string::npos);
}

TEST(MetricsIo, JsonIsBalancedAndCarriesEveryCell) {
  const auto configs = make_grid(tiny_grid());
  const std::vector<AlgorithmSpec> algos{umr_spec()};
  const SweepResult res = run_sweep(configs, algos, tiny_options());
  const std::string json = report::sweep_metrics_json(res);
  EXPECT_NE(json.find("\"algorithm\""), std::string::npos);
  EXPECT_NE(json.find("\"uplink_utilization_mean\""), std::string::npos);
  long depth = 0;
  std::size_t objects = 0;
  for (char c : json) {
    if (c == '{') {
      ++depth;
      ++objects;
    }
    if (c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(objects, res.configs().size() * res.errors().size() * res.algorithms().size());
}

TEST(AlgorithmFactory, PaperLineUpNamesAndOrder) {
  const auto algos = paper_competitors();
  ASSERT_EQ(algos.size(), 7u);
  EXPECT_EQ(algos[0].name, "RUMR");
  EXPECT_EQ(algos[1].name, "UMR");
  EXPECT_EQ(algos[2].name, "MI-1");
  EXPECT_EQ(algos[5].name, "MI-4");
  EXPECT_EQ(algos[6].name, "Factoring");
  const auto extended = extended_competitors();
  ASSERT_EQ(extended.size(), 8u);
  EXPECT_EQ(extended[7].name, "FSC");
}

}  // namespace
}  // namespace rumr::sweep
