// Tests for the on-line error-estimation extension (core/adaptive_rumr.hpp).

#include "core/adaptive_rumr.hpp"

#include <gtest/gtest.h>

#include "sim/master_worker.hpp"

namespace rumr::core {
namespace {

platform::StarPlatform paperish() {
  return platform::StarPlatform::homogeneous(
      {.workers = 10, .speed = 1.0, .bandwidth = 16.0, .comp_latency = 0.2,
       .comm_latency = 0.1});
}

TEST(AdaptiveRumr, RejectsBadWorkload) {
  const platform::StarPlatform p = paperish();
  EXPECT_THROW(AdaptiveRumrPolicy(p, 0.0), std::invalid_argument);
}

TEST(AdaptiveRumr, ConservesWorkload) {
  const platform::StarPlatform p = paperish();
  AdaptiveRumrPolicy policy(p, 1000.0);
  const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.3, 21));
  EXPECT_NEAR(r.work_dispatched, 1000.0, 1e-6);
  EXPECT_TRUE(policy.finished());
}

TEST(AdaptiveRumr, EstimateTracksTrueError) {
  const platform::StarPlatform p = paperish();
  for (double true_error : {0.1, 0.3}) {
    stats::Accumulator estimates;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      AdaptiveRumrOptions options;
      options.pilot_fraction = 0.5;  // Generous pilot for a tight estimate.
      AdaptiveRumrPolicy policy(p, 1000.0, options);
      (void)simulate(p, policy, sim::SimOptions::with_error(true_error, seed));
      ASSERT_TRUE(policy.estimated_error().has_value());
      estimates.add(*policy.estimated_error());
    }
    // The mean estimate should land within ~35% of the truth (samples are
    // few: one ratio per pilot chunk).
    EXPECT_NEAR(estimates.mean(), true_error, 0.35 * true_error) << "true " << true_error;
  }
}

TEST(AdaptiveRumr, FallsBackWithTooFewSamples) {
  const platform::StarPlatform p = paperish();
  AdaptiveRumrOptions options;
  options.pilot_fraction = 0.02;  // Pilot so small few completions arrive in time.
  options.min_samples = 1000;     // Unreachable.
  options.fallback_error = 0.123;
  AdaptiveRumrPolicy policy(p, 1000.0, options);
  (void)simulate(p, policy, sim::SimOptions::with_error(0.4, 5));
  ASSERT_TRUE(policy.estimated_error().has_value());
  EXPECT_DOUBLE_EQ(*policy.estimated_error(), 0.123);
}

TEST(AdaptiveRumr, ZeroPilotIsPureRumrWithFallback) {
  const platform::StarPlatform p = paperish();
  AdaptiveRumrOptions options;
  options.pilot_fraction = 0.0;
  options.fallback_error = 0.2;
  AdaptiveRumrPolicy policy(p, 1000.0, options);
  const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.2, 9));
  EXPECT_NEAR(r.work_dispatched, 1000.0, 1e-6);
  EXPECT_DOUBLE_EQ(*policy.estimated_error(), 0.2);
}

TEST(AdaptiveRumr, FullPilotNeverBuildsRest) {
  const platform::StarPlatform p = paperish();
  AdaptiveRumrOptions options;
  options.pilot_fraction = 1.0;
  AdaptiveRumrPolicy policy(p, 1000.0, options);
  const sim::SimResult r = simulate(p, policy, sim::SimOptions::with_error(0.2, 13));
  EXPECT_NEAR(r.work_dispatched, 1000.0, 1e-6);
  EXPECT_FALSE(policy.estimated_error().has_value());
}

TEST(AdaptiveRumr, EstimateIsClampedToUnitInterval) {
  const platform::StarPlatform p = paperish();
  AdaptiveRumrOptions options;
  options.pilot_fraction = 0.4;
  AdaptiveRumrPolicy policy(p, 1000.0, options);
  (void)simulate(p, policy, sim::SimOptions::with_error(0.9, 17));
  ASSERT_TRUE(policy.estimated_error().has_value());
  EXPECT_GE(*policy.estimated_error(), 0.0);
  EXPECT_LE(*policy.estimated_error(), 1.0);
}

}  // namespace
}  // namespace rumr::core
