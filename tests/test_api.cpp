// Tests for the public API facade (api/rumr.hpp): the Run builder, its
// execution paths, self-auditing, and file loading.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "api/rumr.hpp"
#include "check/service_audit.hpp"

namespace rumr {
namespace {

platform::StarPlatform small_platform() {
  platform::HomogeneousParams params;
  params.workers = 4;
  params.speed = 1.0;
  params.bandwidth = 15.0;
  params.comp_latency = 0.2;
  params.comm_latency = 0.1;
  return platform::StarPlatform::homogeneous(params);
}

TEST(RunBuilder, SettersRoundTripIntoDescription) {
  rumr::Run run = rumr::Run()
                .platform(small_platform())
                .workload(250.0)
                .algorithm("umr-eager")
                .known_error(0.25)
                .error(0.3)
                .seed(123)
                .repetitions(7);
  const config::RunDescription& desc = run.description();
  EXPECT_EQ(desc.platform.size(), 4u);
  EXPECT_DOUBLE_EQ(desc.w_total, 250.0);
  EXPECT_EQ(desc.algorithm, "umr-eager");
  EXPECT_DOUBLE_EQ(desc.known_error, 0.25);
  EXPECT_EQ(desc.sim_options.seed, 123u);
  EXPECT_EQ(desc.repetitions, 7u);
}

TEST(RunBuilder, FaultAndLinkSettersRoundTripAndExecuteAudited) {
  rumr::Run run = rumr::Run()
                      .platform(small_platform())
                      .workload(200.0)
                      .algorithm("factoring")
                      .link_faults(faults::LinkFaultSpec::lossy(0.05))
                      .retransmit()
                      .checkpoint_interval(0.5)
                      .seed(7);
  const sim::SimOptions& o = run.description().sim_options;
  EXPECT_DOUBLE_EQ(o.link.loss, 0.05);
  EXPECT_TRUE(o.retransmit.enabled);
  EXPECT_DOUBLE_EQ(o.checkpoint.interval, 0.5);

  // A faulty run executes through the facade and passes its self-audit
  // (execute() raises check::CheckError on any violation).
  const RunResult result = run.execute();
  EXPECT_GT(result.makespan, 0.0);
  double computed = 0.0;
  for (const auto& w : result.sim.workers) computed += w.work;
  EXPECT_NEAR(computed + result.sim.faults.work_banked, 200.0, 1e-6);
}

TEST(RunBuilder, DefaultConstructedRunExecutes) {
  // The default description must be a valid, audited run out of the box.
  rumr::Run run = rumr::Run().workload(200.0);
  const RunResult result = run.execute();
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.makespan, result.makespan);
}

TEST(RunExecute, ProducesAuditedMetricsAndOptionalTrace) {
  rumr::Run run =
      rumr::Run().platform(small_platform()).workload(300.0).algorithm("rumr").known_error(0.2).error(
          0.2);
  const RunResult untraced = run.execute();
  EXPECT_TRUE(untraced.trace.spans().empty());
  EXPECT_FALSE(untraced.metrics.engine.workers.empty());
  EXPECT_NEAR(untraced.metrics.engine.uplink_busy_time + untraced.metrics.engine.uplink_idle_time,
              untraced.makespan, 1e-9);

  const RunResult traced = run.record_trace().execute();
  EXPECT_FALSE(traced.trace.spans().empty());
  EXPECT_DOUBLE_EQ(traced.makespan, untraced.makespan);
}

TEST(RunExecute, IsDeterministicAtFixedSeed) {
  rumr::Run run = rumr::Run().platform(small_platform()).workload(300.0).error(0.4).seed(9);
  const RunResult a = run.execute();
  const RunResult b = run.execute();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.metrics.des.events_executed, b.metrics.des.events_executed);
  EXPECT_EQ(a.metrics.engine.dispatches, b.metrics.engine.dispatches);
}

TEST(RunExecuteAll, DerivesDistinctSeedsPerRepetition) {
  rumr::Run run = rumr::Run().platform(small_platform()).workload(300.0).error(0.4).seed(9).repetitions(3);
  const std::vector<RunResult> results = run.execute_all();
  ASSERT_EQ(results.size(), 3u);
  // Independent error draws: at least two repetitions should differ.
  EXPECT_TRUE(results[0].makespan != results[1].makespan ||
              results[1].makespan != results[2].makespan);
}

TEST(RunExecuteAll, TracesOnlyLastRepetition) {
  rumr::Run run =
      rumr::Run().platform(small_platform()).workload(300.0).error(0.2).repetitions(3).record_trace();
  const std::vector<RunResult> results = run.execute_all();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].trace.spans().empty());
  EXPECT_TRUE(results[1].trace.spans().empty());
  EXPECT_FALSE(results[2].trace.spans().empty());
}

TEST(RunExecute, InvalidOptionsThrowSimError) {
  rumr::Run run = rumr::Run().platform(small_platform()).workload(300.0);
  run.description().sim_options.worker_buffer_capacity = 0;
  EXPECT_THROW((void)run.execute(), sim::SimError);
}

TEST(RunExecute, UnknownAlgorithmThrowsConfigError) {
  rumr::Run run = rumr::Run().platform(small_platform()).workload(300.0).algorithm("definitely-not-real");
  EXPECT_THROW((void)run.execute(), config::ConfigError);
}

TEST(RunFromFile, LoadsDescriptionAndExecutes) {
  const std::string path = ::testing::TempDir() + "api_facade_test.rumr";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "[platform]\n"
           "workers = 4\n"
           "bandwidth = 15\n"
           "comp_latency = 0.2\n"
           "comm_latency = 0.1\n"
           "\n"
           "[workload]\n"
           "total = 300\n"
           "\n"
           "[schedule]\n"
           "algorithm = rumr\n"
           "error = 0.2\n"
           "\n"
           "[simulation]\n"
           "error = 0.2\n"
           "seed = 42\n"
           "repetitions = 2\n";
  }
  rumr::Run run = rumr::Run::from_file(path);
  EXPECT_EQ(run.description().algorithm, "rumr");
  EXPECT_EQ(run.description().repetitions, 2u);
  const std::vector<RunResult> results = run.execute_all();
  EXPECT_EQ(results.size(), 2u);
  std::remove(path.c_str());
}

TEST(RunFromFile, MissingFileThrows) {
  EXPECT_THROW((void)rumr::Run::from_file("/nonexistent/nowhere.rumr"), config::ConfigError);
}

TEST(JobsRunFacade, BuildsExecutesAndSelfAudits) {
  const jobs::ServiceResult result = rumr::Run()
                                         .platform(small_platform())
                                         .algorithm("rumr")
                                         .known_error(0.2)
                                         .error(0.2)
                                         .seed(7)
                                         .jobs()
                                         .poisson_load(0.6, 20, 150.0)
                                         .sharing(jobs::SharingPolicy::kFractional)
                                         .execute();
  EXPECT_EQ(result.arrived, 20u);
  EXPECT_EQ(result.completed, 20u);
  EXPECT_GE(result.mean_slowdown(), 1.0);
  // Run::jobs() carried the per-job scheduler settings over.
  EXPECT_NEAR(result.offered_load, 0.6, 0.4);  // Realized load tracks the target.
}

TEST(JobsRunFacade, FaultStackFlowsThroughRunJobsAndPassesServiceAudit) {
  // The whole fault stack configured on a Run — worker crashes, link loss,
  // retransmit protocol, partial-work checkpointing — must survive the
  // Run::jobs() handoff into the open-system engine, and a faulty multi-job
  // run must still satisfy every service identity.
  rumr::Run base = rumr::Run()
                       .platform(small_platform())
                       .algorithm("rumr")
                       .known_error(0.2)
                       .error(0.2)
                       .faults(faults::FaultSpec::transient(200.0, 20.0))
                       .link_faults(faults::LinkFaultSpec::lossy(0.05))
                       .retransmit()
                       .checkpoint_interval(0.5)
                       .seed(21);
  rumr::JobsRun jobs_run = base.jobs();
  EXPECT_DOUBLE_EQ(jobs_run.options().sim.link.loss, 0.05);
  EXPECT_DOUBLE_EQ(jobs_run.options().sim.faults.mtbf, 200.0);
  EXPECT_TRUE(jobs_run.options().sim.retransmit.enabled);
  EXPECT_DOUBLE_EQ(jobs_run.options().sim.checkpoint.interval, 0.5);

  const jobs::ServiceResult result = jobs_run.poisson_load(0.5, 10, 100.0)
                                         .sharing(jobs::SharingPolicy::kFractional)
                                         .execute();
  EXPECT_EQ(result.arrived, 10u);
  EXPECT_EQ(result.completed, 10u);
  const check::AuditReport report =
      check::audit_service_result(result, small_platform(), jobs_run.options());
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(JobsRunFacade, InvalidOptionsThrowAtExecute) {
  rumr::JobsRun run;
  run.algorithm("definitely-not-real");
  EXPECT_THROW((void)run.execute(), std::invalid_argument);
}

TEST(JobsRunFacade, FromFileLoadsTheJobsSchema) {
  const std::string path = ::testing::TempDir() + "api_jobs_test.rumr";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "[platform]\n"
           "workers = 4\n"
           "bandwidth = 15\n"
           "\n"
           "[schedule]\n"
           "algorithm = factoring\n"
           "\n"
           "[simulation]\n"
           "seed = 5\n"
           "\n"
           "[jobs]\n"
           "load = 0.5\n"
           "jobs = 8\n"
           "mean_size = 120\n"
           "sharing = partitioned\n"
           "partitions = 2\n";
  }
  rumr::JobsRun run = rumr::JobsRun::from_file(path);
  EXPECT_EQ(run.options().algorithm, "factoring");
  EXPECT_EQ(run.options().sharing, jobs::SharingPolicy::kPartitioned);
  const jobs::ServiceResult result = run.execute();
  EXPECT_EQ(result.completed, 8u);
  std::remove(path.c_str());
}

// --- rumr::Sweep -------------------------------------------------------------

/// True when some problem string mentions `needle`.
bool mentions(const std::vector<std::string>& problems, const std::string& needle) {
  for (const std::string& p : problems) {
    if (p.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(SweepFacade, ValidateListsEveryProblemIncludingCrossFieldConflicts) {
  rumr::Sweep sweep;  // No platforms yet.
  sweep.policies(std::vector<std::string>{"rumr", "not-a-policy"})
      .reps(2)
      .rep_block(5)     // Larger than reps: shards cannot exceed a cell.
      .threads(64)      // Far more threads than shards.
      .buffer(false);   // ...and no on_cell consumer.
  const std::vector<std::string> problems = sweep.validate();
  EXPECT_TRUE(mentions(problems, "platform axis is empty")) << problems.size();
  EXPECT_TRUE(mentions(problems, "not-a-policy"));
  EXPECT_TRUE(mentions(problems, "buffering is disabled"));
  EXPECT_TRUE(mentions(problems, "shards cannot be larger"));
}

TEST(SweepFacade, ValidateFlagsWrongModeConsumerAndIdleThreads) {
  rumr::Sweep sweep;
  sweep.platforms(std::vector<sweep::PlatformConfig>{{10, 1.5, 0.1, 0.05}})
      .errors({0.2})
      .reps(2)
      .rep_block(2)  // One shard total, so 8 threads would mostly idle.
      .threads(8)
      .on_cell(sweep::JobsCellConsumer([](const sweep::JobsSweepCell&) {}));
  const std::vector<std::string> problems = sweep.validate();
  EXPECT_TRUE(mentions(problems, "open-system on_cell consumer"));
  EXPECT_TRUE(mentions(problems, "threads"));
}

TEST(SweepFacade, ExecuteRejectsTheWrongMode) {
  rumr::Sweep closed;
  closed.platforms(std::vector<sweep::PlatformConfig>{{10, 1.5, 0.1, 0.05}});
  EXPECT_THROW((void)closed.execute_jobs(), std::invalid_argument);

  rumr::Sweep open;
  jobs::JobsOptions base;
  base.stream = jobs::JobStreamSpec::poisson(1.0, 4, 100.0);
  open.platforms(std::vector<sweep::PlatformConfig>{{10, 1.5, 0.1, 0.05}}).jobs(base);
  EXPECT_THROW((void)open.execute(), std::invalid_argument);
}

TEST(SweepFacade, BufferedCellsArriveSortedAndStreamToTheConsumerToo) {
  std::size_t streamed = 0;
  rumr::Sweep sweep;
  const std::vector<sweep::SweepCell> cells =
      sweep.platforms(std::vector<sweep::PlatformConfig>{{10, 1.5, 0.1, 0.05}, {4, 2.0, 0.3, 0.1}})
          .errors({0.0, 0.3})
          .policies(std::vector<std::string>{"rumr", "umr"})
          .workload(150.0)
          .reps(3)
          .threads(2)
          .on_cell(sweep::CellConsumer([&](const sweep::SweepCell&) { ++streamed; }))
          .execute();
  ASSERT_EQ(cells.size(), 2u * 2u * 2u);
  EXPECT_EQ(streamed, cells.size());
  for (std::size_t i = 1; i < cells.size(); ++i) {
    const auto key = [](const sweep::SweepCell& c) {
      return std::tuple{c.platform_index, c.error_index, c.algorithm_index};
    };
    EXPECT_LT(key(cells[i - 1]), key(cells[i]));
  }
  for (const sweep::SweepCell& cell : cells) {
    EXPECT_EQ(cell.stats.reps, 3u);
    EXPECT_GT(cell.stats.makespan.mean(), 0.0);
  }
}

TEST(SweepFacade, OpenSystemModeSweepsTheLoadAxis) {
  jobs::JobsOptions base;
  base.stream = jobs::JobStreamSpec::poisson(1.0, 5, 100.0);
  base.known_error = 0.1;
  base.sim = sim::SimOptions::with_error(0.1, 3);
  base.retain_jobs = false;  // Streaming mode end-to-end through the facade.

  rumr::Sweep sweep;
  const std::vector<sweep::JobsSweepCell> cells =
      sweep.platforms(std::vector<sweep::PlatformConfig>{{10, 1.5, 0.1, 0.05}})
          .jobs(base)
          .loads({0.4, 0.7})
          .reps(2)
          .threads(2)
          .execute_jobs();
  ASSERT_EQ(cells.size(), 2u);
  for (const sweep::JobsSweepCell& cell : cells) {
    EXPECT_EQ(cell.stats.reps, 2u);
    EXPECT_EQ(cell.stats.completed, cell.stats.admitted);
    EXPECT_GT(cell.stats.horizon.mean(), 0.0);
  }
}

TEST(SweepFacade, MatchesTheRawEngineByteForByte) {
  // The facade is a description builder, not a second engine: its cells must
  // be bitwise-identical to run_sweep_streaming with the same description.
  const std::vector<sweep::PlatformConfig> configs = {{10, 1.5, 0.1, 0.05}};
  rumr::Sweep sweep;
  const std::vector<sweep::SweepCell> via_facade =
      sweep.platforms(configs)
          .errors({0.2})
          .policies(std::vector<std::string>{"rumr", "factoring"})
          .workload(200.0)
          .reps(4)
          .seed(77)
          .execute();

  sweep::SweepOptions options;
  options.errors = {0.2};
  options.repetitions = 4;
  options.w_total = 200.0;
  options.base_seed = 77;
  std::vector<sweep::SweepCell> raw;
  sweep::run_sweep_streaming(
      sweep::wrap_grid(configs),
      {sweep::rumr_spec(), sweep::factoring_spec()}, options,
      [&](const sweep::SweepCell& cell) { raw.push_back(cell); });
  std::sort(raw.begin(), raw.end(), [](const sweep::SweepCell& a, const sweep::SweepCell& b) {
    return a.algorithm_index < b.algorithm_index;
  });

  ASSERT_EQ(via_facade.size(), raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(via_facade[i].stats.makespan.mean(), raw[i].stats.makespan.mean());
    EXPECT_EQ(via_facade[i].stats.makespan.variance(), raw[i].stats.makespan.variance());
    EXPECT_EQ(via_facade[i].stats.ref_wins, raw[i].stats.ref_wins);
  }
}

}  // namespace
}  // namespace rumr
