// Tests for random heterogeneous platform generation
// (platform/heterogeneity.hpp).

#include "platform/heterogeneity.hpp"

#include <gtest/gtest.h>

namespace rumr::platform {
namespace {

TEST(Heterogeneity, ZeroCvIsHomogeneous) {
  HeterogeneityParams params;
  params.workers = 8;
  params.speed_cv = 0.0;
  params.bandwidth_cv = 0.0;
  stats::Rng rng(1);
  const StarPlatform p = random_heterogeneous(params, rng);
  EXPECT_TRUE(p.is_homogeneous());
  EXPECT_DOUBLE_EQ(p.worker(0).speed, 1.0);
  EXPECT_DOUBLE_EQ(p.worker(0).bandwidth, 1.5 * 8.0);
  EXPECT_DOUBLE_EQ(speed_heterogeneity(p), 0.0);
}

TEST(Heterogeneity, RejectsZeroWorkers) {
  HeterogeneityParams params;
  params.workers = 0;
  stats::Rng rng(2);
  EXPECT_THROW((void)random_heterogeneous(params, rng), PlatformError);
}

TEST(Heterogeneity, CvControlsMeasuredSpread) {
  HeterogeneityParams params;
  params.workers = 200;  // Large sample for a stable CV estimate.
  params.speed_cv = 0.4;
  stats::Rng rng(3);
  const StarPlatform p = random_heterogeneous(params, rng);
  EXPECT_FALSE(p.is_homogeneous());
  EXPECT_NEAR(speed_heterogeneity(p), 0.4, 0.08);
}

TEST(Heterogeneity, RatesAreFlooredAwayFromZero) {
  HeterogeneityParams params;
  params.workers = 500;
  params.speed_cv = 2.0;  // Wild spread: the floor must kick in.
  params.bandwidth_cv = 2.0;
  stats::Rng rng(5);
  const StarPlatform p = random_heterogeneous(params, rng);
  for (const WorkerSpec& w : p.workers()) {
    EXPECT_GE(w.speed, 0.1 - 1e-12);
    EXPECT_GE(w.bandwidth, 0.1 * 1.5 * 500.0 - 1e-9);
  }
}

TEST(Heterogeneity, LatenciesNeverNegative) {
  HeterogeneityParams params;
  params.workers = 300;
  params.mean_comp_latency = 0.1;
  params.comp_latency_cv = 3.0;
  params.mean_comm_latency = 0.1;
  params.comm_latency_cv = 3.0;
  stats::Rng rng(7);
  const StarPlatform p = random_heterogeneous(params, rng);
  for (const WorkerSpec& w : p.workers()) {
    EXPECT_GE(w.comp_latency, 0.0);
    EXPECT_GE(w.comm_latency, 0.0);
  }
}

TEST(Heterogeneity, DeterministicGivenRngState) {
  HeterogeneityParams params;
  params.workers = 10;
  params.speed_cv = 0.5;
  stats::Rng a(42);
  stats::Rng b(42);
  const StarPlatform pa = random_heterogeneous(params, a);
  const StarPlatform pb = random_heterogeneous(params, b);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(pa.worker(i).speed, pb.worker(i).speed);
    EXPECT_DOUBLE_EQ(pa.worker(i).bandwidth, pb.worker(i).bandwidth);
  }
}

TEST(Heterogeneity, MeanBandwidthTracksUtilizationTarget) {
  HeterogeneityParams params;
  params.workers = 400;
  params.bandwidth_over_ns = 1.5;
  params.speed_cv = 0.0;
  params.bandwidth_cv = 0.2;
  stats::Rng rng(9);
  const StarPlatform p = random_heterogeneous(params, rng);
  double mean_b = 0.0;
  for (const WorkerSpec& w : p.workers()) mean_b += w.bandwidth;
  mean_b /= 400.0;
  EXPECT_NEAR(mean_b, 1.5 * 400.0, 0.05 * 1.5 * 400.0);
}

}  // namespace
}  // namespace rumr::platform
