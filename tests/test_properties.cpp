// Property-based tests: invariants that must hold for EVERY scheduler on
// randomly drawn platforms, workloads, and error levels. Parameterized gtest
// sweeps the whole algorithm line-up through the same checks.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"
#include "sim/master_worker.hpp"
#include "sweep/scheduler_factory.hpp"

namespace rumr::sweep {
namespace {

struct PropertyCase {
  std::string name;
  AlgorithmSpec spec;
};

class AllSchedulers : public ::testing::TestWithParam<std::size_t> {
 public:
  static const std::vector<PropertyCase>& cases() {
    static const std::vector<PropertyCase> all = [] {
      std::vector<PropertyCase> cs;
      for (AlgorithmSpec& spec : extended_competitors()) {
        cs.push_back({spec.name, std::move(spec)});
      }
      cs.push_back({"RUMR-adaptive", rumr_adaptive_spec()});
      cs.push_back({"RUMR-80fixed", rumr_fixed_spec(80.0)});
      cs.push_back({"RUMR-inorder", rumr_inorder_spec()});
      return cs;
    }();
    return all;
  }
};

/// Draws a random homogeneous platform inside (a superset of) the Table 1
/// ranges plus a random workload and error.
struct RandomScenario {
  platform::StarPlatform platform;
  double w_total;
  double error;
};

RandomScenario draw_scenario(stats::Rng& rng) {
  const std::size_t n = 2 + rng.uniform_index(30);
  platform::HomogeneousParams params;
  params.workers = n;
  params.speed = rng.uniform(0.5, 4.0);
  params.bandwidth = rng.uniform(1.1, 2.5) * static_cast<double>(n) * params.speed;
  params.comp_latency = rng.uniform(0.0, 1.0);
  params.comm_latency = rng.uniform(0.0, 1.0);
  params.transfer_latency = rng.uniform(0.0, 0.2);
  return {platform::StarPlatform::homogeneous(params), rng.uniform(100.0, 2000.0),
          rng.uniform(0.0, 0.6)};
}

TEST_P(AllSchedulers, ConservesWorkAndRespectsLowerBoundsOnRandomScenarios) {
  const PropertyCase& test_case = cases()[GetParam()];
  stats::Rng rng(0xabcdef + GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const RandomScenario s = draw_scenario(rng);
    const auto policy = test_case.spec.make(s.platform, s.w_total, s.error);
    const sim::SimResult r =
        simulate(s.platform, *policy, sim::SimOptions::with_error(s.error, rng.next_u64()));

    // Work conservation (the engine enforces it too; this asserts the
    // outcome reached the result structure intact).
    EXPECT_NEAR(r.work_dispatched, s.w_total, 1e-6 * s.w_total) << test_case.name;
    double computed = 0.0;
    for (const auto& w : r.workers) computed += w.work;
    EXPECT_NEAR(computed, s.w_total, 1e-6 * s.w_total) << test_case.name;

    // Makespan cannot beat the aggregate-compute bound by more than the
    // error model's best case (every ratio at least kMinRatio).
    const double min_compute = s.w_total / s.platform.total_speed();
    EXPECT_GE(r.makespan, min_compute * stats::ErrorModel::kMinRatio) << test_case.name;
    // Nor the first-byte bound: nothing computes before some data arrives.
    EXPECT_GT(r.makespan, 0.0) << test_case.name;

    // Chunk accounting is self-consistent.
    std::size_t chunks = 0;
    for (const auto& w : r.workers) chunks += w.chunks;
    EXPECT_EQ(chunks, r.chunks_dispatched) << test_case.name;
  }
}

TEST_P(AllSchedulers, DeterministicForFixedSeed) {
  const PropertyCase& test_case = cases()[GetParam()];
  stats::Rng rng(0x5151 + GetParam());
  const RandomScenario s = draw_scenario(rng);
  const auto policy_a = test_case.spec.make(s.platform, s.w_total, 0.3);
  const auto policy_b = test_case.spec.make(s.platform, s.w_total, 0.3);
  const double a = simulate(s.platform, *policy_a, sim::SimOptions::with_error(0.3, 77)).makespan;
  const double b = simulate(s.platform, *policy_b, sim::SimOptions::with_error(0.3, 77)).makespan;
  EXPECT_DOUBLE_EQ(a, b) << test_case.name;
}

TEST_P(AllSchedulers, ZeroErrorRunsAreExactlyReproducible) {
  const PropertyCase& test_case = cases()[GetParam()];
  stats::Rng rng(0x9191 + GetParam());
  const RandomScenario s = draw_scenario(rng);
  const auto policy_a = test_case.spec.make(s.platform, s.w_total, 0.0);
  const auto policy_b = test_case.spec.make(s.platform, s.w_total, 0.0);
  sim::SimOptions opt_a;
  opt_a.seed = 1;
  sim::SimOptions opt_b;
  opt_b.seed = 2;  // Seed must be irrelevant without an error model.
  EXPECT_DOUBLE_EQ(simulate(s.platform, *policy_a, opt_a).makespan,
                   simulate(s.platform, *policy_b, opt_b).makespan)
      << test_case.name;
}

TEST_P(AllSchedulers, MakespanGrowsWithWorkload) {
  const PropertyCase& test_case = cases()[GetParam()];
  stats::Rng rng(0x7777 + GetParam());
  const RandomScenario s = draw_scenario(rng);
  const auto small = test_case.spec.make(s.platform, 500.0, 0.2);
  const auto large = test_case.spec.make(s.platform, 1500.0, 0.2);
  const double m_small =
      simulate(s.platform, *small, sim::SimOptions::with_error(0.2, 5)).makespan;
  const double m_large =
      simulate(s.platform, *large, sim::SimOptions::with_error(0.2, 5)).makespan;
  EXPECT_GT(m_large, m_small) << test_case.name;
}

std::string case_name(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string name = AllSchedulers::cases()[info.param].name;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Lineup, AllSchedulers,
                         ::testing::Range<std::size_t>(0, AllSchedulers::cases().size()),
                         case_name);

}  // namespace
}  // namespace rumr::sweep
