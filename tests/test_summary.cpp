// Unit tests for streaming/batch statistics (stats/summary.hpp).

#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace rumr::stats {
namespace {

TEST(Accumulator, EmptyIsZero) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(4.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 4.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 4.0);
  EXPECT_EQ(acc.max(), 4.0);
}

TEST(Accumulator, KnownSample) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator left;
  Accumulator right;
  Accumulator all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  Accumulator empty;
  acc.merge(empty);
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);

  Accumulator target;
  target.merge(acc);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(BatchStats, MeanAndStddev) {
  const std::array<double, 4> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(BatchStats, MedianOddAndEven) {
  const std::array<double, 5> odd = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::array<double, 4> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(BatchStats, PercentileInterpolatesAndClamps) {
  const std::array<double, 5> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 50.0);  // Clamped.
  EXPECT_EQ(percentile(std::span<const double>{}, 50.0), 0.0);
}

TEST(BatchStats, WinFractions) {
  const std::array<double, 4> a = {1.0, 2.0, 3.0, 4.0};
  const std::array<double, 4> b = {2.0, 2.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(win_fraction(a, b), 0.5);  // a wins at indices 0 and 3.
  // By 10%: a*1.1 <= b at index 0 (1.1 <= 2) and index 3 (4.4 <= 5).
  EXPECT_DOUBLE_EQ(win_fraction_by_margin(a, b, 0.10), 0.5);
  // Mismatched sizes are rejected.
  const std::array<double, 2> c = {1.0, 2.0};
  EXPECT_EQ(win_fraction(a, c), 0.0);
}

}  // namespace
}  // namespace rumr::stats
