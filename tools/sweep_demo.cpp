/// \file sweep_demo.cpp
/// Self-auditing demo of the sharded streaming sweep engine.
///
/// Drives a small Table 1-style grid through the rumr::Sweep facade and
/// verifies the engine's determinism contract end to end:
///
///   1. thread-count invariance — threads {2, 8} reproduce the threads=1
///      cells byte for byte (every accumulator, counter, and sketch bucket);
///   2. shard-shape tolerance — rep_block {1, 3} build different merge trees
///      but agree with the single-shard reference within
///      sweep::audit_cell_merge's 1e-9 envelope;
///   3. streaming exactly-once — with buffering off, on_cell() sees every
///      grid cell exactly once and nothing else;
///   4. open-system parity — a jobs-mode grid with retain_jobs = false
///      (O(1) per-run memory) is also thread-count invariant.
///
/// Exit code is nonzero when any check fails, so CI can gate on it under
/// both the release and sanitizer presets.

#include <cstddef>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "api/rumr.hpp"

namespace {

using namespace rumr;

using CellKey = std::tuple<std::size_t, std::size_t, std::size_t>;

bool same_accumulator(const stats::Accumulator& a, const stats::Accumulator& b) {
  return a.count() == b.count() && a.sum() == b.sum() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() && a.max() == b.max();
}

bool same_cell(const sweep::CellStats& a, const sweep::CellStats& b) {
  return a.reps == b.reps && a.ref_wins == b.ref_wins &&
         a.ref_wins_by_10pct == b.ref_wins_by_10pct && same_accumulator(a.makespan, b.makespan) &&
         same_accumulator(a.uplink_utilization, b.uplink_utilization) &&
         same_accumulator(a.worker_utilization, b.worker_utilization) &&
         same_accumulator(a.events, b.events) &&
         same_accumulator(a.hol_blocking_time, b.hol_blocking_time) &&
         same_accumulator(a.work_redispatched, b.work_redispatched) &&
         a.makespan_quantiles.bucket_counts() == b.makespan_quantiles.bucket_counts();
}

bool same_jobs_cell(const sweep::JobsCellStats& a, const sweep::JobsCellStats& b) {
  return a.arrived == b.arrived && a.completed == b.completed && a.rejected == b.rejected &&
         a.shed == b.shed && a.manager_events == b.manager_events &&
         a.oracle_events == b.oracle_events && a.reps == b.reps &&
         same_accumulator(a.mean_response, b.mean_response) &&
         same_accumulator(a.mean_slowdown, b.mean_slowdown) &&
         same_accumulator(a.utilization, b.utilization) &&
         same_accumulator(a.horizon, b.horizon) &&
         a.response_times.bucket_counts() == b.response_times.bucket_counts() &&
         a.slowdowns.bucket_counts() == b.slowdowns.bucket_counts();
}

/// The closed-system demo grid: two platforms x two errors x three policies,
/// sharded two repetitions per shard.
rumr::Sweep closed_sweep() {
  rumr::Sweep sweep;
  sweep.platforms(std::vector<sweep::PlatformConfig>{{10, 1.5, 0.1, 0.05}, {4, 2.0, 0.3, 0.1}})
      .errors({0.1, 0.4})
      .policies(std::vector<std::string>{"rumr", "umr", "factoring"})
      .workload(300.0)
      .reps(8)
      .rep_block(2);
  return sweep;
}

std::map<CellKey, sweep::SweepCell> by_key(const std::vector<sweep::SweepCell>& cells) {
  std::map<CellKey, sweep::SweepCell> out;
  for (const auto& cell : cells)
    out.emplace(CellKey{cell.platform_index, cell.error_index, cell.algorithm_index}, cell);
  return out;
}

bool expect(bool ok, const std::string& what) {
  std::cout << "  [" << (ok ? "ok" : "FAIL") << "] " << what << "\n";
  return ok;
}

}  // namespace

int main() {
  bool all_ok = true;

  std::cout << "closed-system grid (2 platforms x 2 errors x 3 policies, 8 reps):\n";
  const auto reference = by_key(closed_sweep().threads(1).execute());
  all_ok &= expect(reference.size() == 12, "reference sweep produced all 12 cells");

  // 1. Byte-identity across thread counts.
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto cells = by_key(closed_sweep().threads(threads).execute());
    bool identical = cells.size() == reference.size();
    for (const auto& [key, cell] : reference)
      identical = identical && same_cell(cells.at(key).stats, cell.stats);
    all_ok &= expect(identical,
                    "threads=" + std::to_string(threads) + " is byte-identical to threads=1");
  }

  // 2. Different shard shapes agree within the merge-audit envelope.
  const auto single_shard = by_key(closed_sweep().rep_block(8).execute());
  for (const std::size_t block : {std::size_t{1}, std::size_t{3}}) {
    const auto cells = by_key(closed_sweep().rep_block(block).execute());
    check::AuditReport report;
    for (const auto& [key, cell] : single_shard)
      sweep::audit_cell_merge("rep_block=" + std::to_string(block), cells.at(key).stats,
                              cell.stats, report);
    all_ok &= expect(report.ok(), "rep_block=" + std::to_string(block) +
                                     " matches the single-shard reference (1e-9): " +
                                     (report.ok() ? "ok" : report.summary()));
  }

  // 3. Streaming mode: buffering off, every cell exactly once.
  std::map<CellKey, int> seen;
  const auto streamed = closed_sweep().threads(4).buffer(false).on_cell(
      sweep::CellConsumer([&seen](const sweep::SweepCell& cell) {
        ++seen[{cell.platform_index, cell.error_index, cell.algorithm_index}];
      })).execute();
  bool exactly_once = streamed.empty() && seen.size() == reference.size();
  for (const auto& [key, count] : seen) exactly_once = exactly_once && count == 1;
  all_ok &= expect(exactly_once, "buffer(false) streams each of the 12 cells exactly once");

  // 4. Open-system mode: streamed jobs (retain_jobs = false), thread-invariant.
  std::cout << "open-system grid (1 platform x 2 loads, 2 reps, streamed jobs):\n";
  const auto open_sweep = [] {
    jobs::JobsOptions base;
    base.stream = jobs::JobStreamSpec::poisson(1.0, 12, 100.0);
    base.known_error = 0.2;
    base.sim = sim::SimOptions::with_error(0.2, 1);
    base.retain_jobs = false;
    rumr::Sweep sweep;
    sweep.platforms(std::vector<sweep::PlatformConfig>{{6, 1.5, 0.2, 0.1}})
        .jobs(base)
        .loads({0.4, 0.7})
        .reps(2)
        .rep_block(1);
    return sweep;
  };
  const auto jobs_reference = open_sweep().threads(1).execute_jobs();
  all_ok &= expect(jobs_reference.size() == 2, "open-system sweep produced both load cells");
  const auto jobs_parallel = open_sweep().threads(4).execute_jobs();
  bool jobs_identical = jobs_parallel.size() == jobs_reference.size();
  for (std::size_t i = 0; i < jobs_reference.size() && jobs_identical; ++i)
    jobs_identical = same_jobs_cell(jobs_parallel[i].stats, jobs_reference[i].stats);
  all_ok &= expect(jobs_identical, "threads=4 open-system cells are byte-identical to threads=1");

  std::cout << (all_ok ? "sweep demo: OK\n" : "sweep demo: FAILED\n");
  return all_ok ? 0 : 1;
}
