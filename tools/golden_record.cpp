// golden_record — (re)generates the golden-result regression fixtures.
//
// Runs every scenario defined in sweep/golden.hpp and writes one fixture
// file per scenario into the given directory (default tests/golden/). The
// fixtures are committed; tests/test_golden.cpp replays them on every CI
// stage, so a kernel or engine change that drifts any paper-figure number
// shows up as a named, per-algorithm diff instead of a silent shift.
//
// Regenerate ONLY when a change is *supposed* to alter simulation results
// (new RNG layout, changed engine semantics) — never to make a failing
// refactor pass. Usage: golden_record [output-dir]

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "sweep/golden.hpp"

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "tests/golden";

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  for (const std::string& name : rumr::sweep::golden::scenario_names()) {
    const rumr::sweep::golden::GoldenScenario scenario =
        rumr::sweep::golden::record_scenario(name);
    const std::filesystem::path path = dir / (name + ".json");
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "golden_record: cannot open %s for writing\n", path.c_str());
      return 1;
    }
    out << rumr::sweep::golden::to_json(scenario);
    std::printf("recorded %-16s (%zu cases) -> %s\n", name.c_str(), scenario.cases.size(),
                path.c_str());
  }
  return 0;
}
