// rumr_serve: the what-if scheduling daemon (scheduler-as-a-service).
//
// Modes:
//   rumr_serve --stdio [--config <file>]
//       Serve framed requests from stdin, framed responses to stdout, until
//       EOF. This is the daemon proper: point a pipe or a socket relay
//       (socat, systemd socket activation) at it.
//   rumr_serve --self-test
//       In-process loopback verification: cached-vs-cold byte identity,
//       exactly-once solving under concurrent clients, admission control
//       (reject and shed), the stream pump, and the full stats-ledger audit.
//       Exits nonzero on any failure.
//   rumr_serve --emit-demo-requests <file>
//       Write the fixed demo session (ping, a batch, the identical batch
//       again, a stats probe) as framed bytes, for piping into --stdio.
//   rumr_serve --verify-demo-responses <file>
//       Check the framed responses produced by serving the demo session:
//       frame count and types, warm batch byte-identical to the cold one,
//       and a cache ledger that actually recorded the warm hits.
//
// Determinism contract: this binary never reads a clock or ambient
// randomness; every response is a pure function of the request bytes.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/rumr.hpp"
#include "util/json_lite.hpp"

namespace {

using rumr::serve::Server;
using rumr::serve::ServerOptions;

int usage() {
  std::fprintf(stderr,
               "usage: rumr_serve --stdio [--config <file>]\n"
               "       rumr_serve --self-test\n"
               "       rumr_serve --emit-demo-requests <file>\n"
               "       rumr_serve --verify-demo-responses <file>\n");
  return 2;
}

// --- Demo session -----------------------------------------------------------

std::string demo_batch_payload() {
  // Mixed platforms and policies; the same payload is sent twice so the
  // second serving must come out of the cache byte-identically.
  return R"({"type":"batch","id":2,"queries":[)"
         R"({"workload":1000,"algorithm":"rumr","known_error":0.3,"error":0.3,"seed":7},)"
         R"({"workload":1000,"algorithm":"umr","seed":7},)"
         R"({"platform":{"homogeneous":{"workers":6,"bandwidth":9}},"workload":500,)"
         R"("algorithm":"factoring","error":0.2,"seed":11},)"
         R"({"platform":{"workers":[{"speed":1,"bandwidth":8},{"speed":2,"bandwidth":8},)"
         R"({"speed":4,"bandwidth":16}]},"workload":300,"algorithm":"rumr","seed":3}]})";
}

std::vector<std::string> demo_request_payloads() {
  return {
      R"({"type":"ping","id":1})",
      demo_batch_payload(),
      demo_batch_payload(),
      R"({"type":"stats","id":9})",
  };
}

int emit_demo_requests(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "rumr_serve: cannot write %s\n", path.c_str());
    return 1;
  }
  for (const std::string& payload : demo_request_payloads()) {
    rumr::serve::write_frame(out, payload);
  }
  out.flush();
  return out ? 0 : 1;
}

int verify_demo_responses(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rumr_serve: cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<std::string> payloads;
  while (auto payload = rumr::serve::read_frame(in)) payloads.push_back(std::move(*payload));
  if (payloads.size() != 4) {
    std::fprintf(stderr, "verify: expected 4 response frames, got %zu\n", payloads.size());
    return 1;
  }
  const rumr::util::JsonValue pong = rumr::util::JsonValue::parse(payloads[0]);
  if (pong.at("type").as_string() != "pong") {
    std::fprintf(stderr, "verify: frame 0 is %s, expected pong\n", payloads[0].c_str());
    return 1;
  }
  if (payloads[1] != payloads[2]) {
    std::fprintf(stderr, "verify: warm batch response differs from the cold one\n");
    return 1;
  }
  const rumr::util::JsonValue result = rumr::util::JsonValue::parse(payloads[1]);
  if (result.at("type").as_string() != "result" || result.at("results").as_array().size() != 4) {
    std::fprintf(stderr, "verify: bad batch response: %s\n", payloads[1].c_str());
    return 1;
  }
  for (const rumr::util::JsonValue& plan : result.at("results").as_array()) {
    if (plan.find("error") != nullptr) {
      std::fprintf(stderr, "verify: query failed: %s\n", plan.at("error").as_string().c_str());
      return 1;
    }
    if (!(plan.at("makespan").as_number() > 0.0) || plan.at("chunks").as_array().empty()) {
      std::fprintf(stderr, "verify: degenerate plan in %s\n", payloads[1].c_str());
      return 1;
    }
  }
  const rumr::util::JsonValue stats = rumr::util::JsonValue::parse(payloads[3]);
  const rumr::util::JsonValue& cache = stats.at("stats").at("plan_cache");
  const double hits = cache.at("hits").as_number();
  const double lookups = cache.at("lookups").as_number();
  if (hits < 4.0 || lookups != 8.0) {
    std::fprintf(stderr, "verify: cache ledger off: lookups=%g hits=%g (want 8 lookups, >=4 hits)\n",
                 lookups, hits);
    return 1;
  }
  std::printf("rumr_serve: demo responses verified (4 frames, warm == cold, %g/%g cache hits)\n",
              hits, lookups);
  return 0;
}

// --- Self-test --------------------------------------------------------------

int fail(const char* what) {
  std::fprintf(stderr, "self-test FAILED: %s\n", what);
  return 1;
}

int self_test() {
  // 1. Cached-vs-cold byte identity, three ways: warm repeat on the same
  //    server, a pass-through (capacity 0) server, and a serial server.
  {
    ServerOptions cached;
    cached.threads = 2;
    Server server(cached);
    const std::string cold = server.handle(demo_batch_payload());
    const std::string warm = server.handle(demo_batch_payload());
    if (cold != warm) return fail("warm response != cold response on the same server");

    ServerOptions pass_through;
    pass_through.threads = 1;
    pass_through.cache_capacity = 0;
    Server uncached(pass_through);
    if (uncached.handle(demo_batch_payload()) != cold) {
      return fail("pass-through (uncached) response != cached response");
    }
    const rumr::obs::ServeStats stats = uncached.stats();
    if (stats.plan_cache.hits != 0 || stats.plan_cache.entries != 0 ||
        stats.plan_cache.evictions != stats.plan_cache.insertions) {
      return fail("pass-through cache ledger should evict every insertion");
    }
    rumr::check::audit_serve_stats(server.stats()).throw_if_failed();
    rumr::check::audit_serve_stats(stats).throw_if_failed();
  }

  // 2. Concurrent clients hammering overlapping keys: every distinct
  //    canonical query must be solved exactly once (solves == misses ==
  //    distinct keys), everything else served as hits.
  {
    ServerOptions options;
    options.threads = 4;
    options.queue_capacity = 256;
    Server server(options);
    constexpr int kClients = 8;
    constexpr int kRequestsPerClient = 16;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&server, c] {
        for (int r = 0; r < kRequestsPerClient; ++r) {
          // Seeds overlap across clients: 4 distinct queries in total.
          const std::string payload = std::string(R"({"type":"batch","id":5,"queries":[)") +
                                      R"({"workload":800,"algorithm":"rumr","seed":)" +
                                      std::to_string((c + r) % 4) + "}]}";
          (void)server.handle(payload);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    server.wait_idle();
    const rumr::obs::ServeStats stats = server.stats();
    rumr::check::audit_serve_stats(stats).throw_if_failed();
    if (stats.solves != 4) return fail("overlapping keys were not solved exactly once each");
    if (stats.plan_cache.lookups != kClients * kRequestsPerClient) {
      return fail("lookup count does not match the submitted query count");
    }
  }

  // 3. Admission control. A slow request pins the single executor; filler
  //    requests then overflow the bounded queue deterministically.
  {
    ServerOptions options;
    options.threads = 1;
    options.queue_capacity = 2;
    options.admission = rumr::jobs::AdmissionPolicy::kRejectNew;
    Server server(options);
    // 256 distinct solves keep the executor busy well past the microseconds
    // the fillers below need.
    std::string slow = R"({"type":"batch","id":10,"queries":[)";
    for (int i = 0; i < 256; ++i) {
      if (i > 0) slow += ',';
      slow += R"({"workload":1500,"algorithm":"rumr","error":0.3,"seed":)" + std::to_string(i) +
              "}";
    }
    slow += "]}";
    std::thread slow_client([&server, &slow] { (void)server.handle(slow); });
    while (server.stats().admitted < 1) std::this_thread::yield();

    auto f1 = server.submit(R"({"type":"batch","id":11,"queries":[{"workload":100}]})");
    auto f2 = server.submit(R"({"type":"batch","id":12,"queries":[{"workload":101}]})");
    auto f3 = server.submit(R"({"type":"batch","id":13,"queries":[{"workload":102}]})");
    const std::string r3 = f3.get();
    if (r3.find("\"type\":\"error\"") == std::string::npos ||
        r3.find("rejected") == std::string::npos) {
      return fail("third filler should have been rejected (queue full)");
    }
    if (f1.get().find("\"type\":\"result\"") == std::string::npos ||
        f2.get().find("\"type\":\"result\"") == std::string::npos) {
      return fail("queued fillers should have been served after the slow request");
    }
    slow_client.join();
    server.wait_idle();
    const rumr::obs::ServeStats stats = server.stats();
    rumr::check::audit_serve_stats(stats).throw_if_failed();
    if (stats.rejected != 1) return fail("expected exactly one rejected request");
  }

  // 4. Shed-oldest admission: the newest arrival displaces the longest
  //    waiter, which gets a shed error response.
  {
    ServerOptions options;
    options.threads = 1;
    options.queue_capacity = 1;
    options.admission = rumr::jobs::AdmissionPolicy::kShedOldest;
    Server server(options);
    std::string slow = R"({"type":"batch","id":20,"queries":[)";
    for (int i = 0; i < 256; ++i) {
      if (i > 0) slow += ',';
      slow += R"({"workload":1500,"algorithm":"umr","error":0.3,"seed":)" + std::to_string(i) +
              "}";
    }
    slow += "]}";
    std::thread slow_client([&server, &slow] { (void)server.handle(slow); });
    while (server.stats().admitted < 1) std::this_thread::yield();

    auto f1 = server.submit(R"({"type":"batch","id":21,"queries":[{"workload":100}]})");
    auto f2 = server.submit(R"({"type":"batch","id":22,"queries":[{"workload":101}]})");
    const std::string r1 = f1.get();
    if (r1.find("shed") == std::string::npos) {
      return fail("oldest queued request should have been shed");
    }
    if (f2.get().find("\"type\":\"result\"") == std::string::npos) {
      return fail("newest request should have been served after shedding");
    }
    slow_client.join();
    server.wait_idle();
    const rumr::obs::ServeStats stats = server.stats();
    rumr::check::audit_serve_stats(stats).throw_if_failed();
    if (stats.shed != 1) return fail("expected exactly one shed request");
  }

  // 5. The stream pump end to end through the facade, self-audited.
  {
    std::ostringstream request_bytes;
    for (const std::string& payload : demo_request_payloads()) {
      rumr::serve::write_frame(request_bytes, payload);
    }
    std::istringstream in(request_bytes.str());
    std::ostringstream out;
    const rumr::obs::ServeStats stats = rumr::Serve().threads(2).run(in, out);
    if (stats.received != 4 || stats.completed != stats.admitted) {
      return fail("stream session ledger is off");
    }
    std::istringstream responses(out.str());
    std::vector<std::string> frames;
    while (auto payload = rumr::serve::read_frame(responses)) frames.push_back(*payload);
    if (frames.size() != 4 || frames[1] != frames[2]) {
      return fail("stream responses should be 4 frames with warm == cold");
    }
  }

  std::printf("rumr_serve --self-test: all checks passed\n");
  return 0;
}

int run_stdio(const ServerOptions& options) {
  Server server(options);
  server.serve_stream(std::cin, std::cout);
  server.wait_idle();
  // The session ledger goes to stderr so the wire stays clean.
  std::fprintf(stderr, "rumr_serve: session %s\n",
               rumr::obs::to_json(server.stats()).c_str());
  rumr::check::audit_serve_stats(server.stats()).throw_if_failed();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();

  try {
    if (args[0] == "--self-test" && args.size() == 1) return self_test();
    if (args[0] == "--emit-demo-requests" && args.size() == 2) return emit_demo_requests(args[1]);
    if (args[0] == "--verify-demo-responses" && args.size() == 2) {
      return verify_demo_responses(args[1]);
    }
    if (args[0] == "--stdio") {
      ServerOptions options;
      if (args.size() == 3 && args[1] == "--config") {
        options = rumr::serve::server_options_from_config(rumr::config::ConfigFile::load(args[2]));
      } else if (args.size() != 1) {
        return usage();
      }
      return run_stdio(options);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rumr_serve: %s\n", e.what());
    return 1;
  }
  return usage();
}
