// chaos_campaign — seeded chaos-testing certifier for the fault stack.
//
// Sweeps a (message-loss, bandwidth-degradation, worker-MTBF, prediction-
// error) grid over Table 1-style platforms, runs every scheduling policy at
// every point with the retransmit protocol and partial-work checkpointing
// engaged, and self-audits each run with check::audit_sim_result (work
// conservation, banked-work accounting, exactly-once re-dispatch, span
// identities). A run that fails its audit or raises an engine error is
// shrunk — axes are zeroed one at a time while the failure persists — to a
// minimal reproducer, so a chaos regression lands as a four-number recipe
// instead of a 200-run haystack.
//
// Emits results/CHAOS.json: per-run records, per-policy graceful-degradation
// curves (mean makespan inflation vs the fault-free baseline, grouped by
// loss severity), and the shrunk reproducers for every failure.
//
// Usage: chaos_campaign [--grid small|full] [--seed S] [--out FILE]
//                       [--error-exit]
//
//   --grid small   2 platforms x 24 fault points (CI default, ~1 s)
//   --grid full    4 platforms x 108 fault points
//   --error-exit   exit nonzero when any run fails (CI gate semantics)

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/trace_audit.hpp"
#include "faults/fault_model.hpp"
#include "sim/master_worker.hpp"
#include "stats/rng.hpp"
#include "sweep/grid.hpp"
#include "sweep/scheduler_factory.hpp"

namespace {

using namespace rumr;

constexpr double kWTotal = 500.0;

/// One point of the chaos grid. Zero on an axis disables that fault family,
/// which is exactly what the shrinker exploits.
struct ChaosPoint {
  double loss = 0.0;             ///< Per-message loss probability.
  double degraded_factor = 1.0;  ///< Bandwidth stretch (1 = no degradation).
  double mtbf = 0.0;             ///< Worker transient MTBF (0 = no crashes).
  double error = 0.0;            ///< Prediction-error level.

  [[nodiscard]] bool faulty() const {
    return loss > 0.0 || degraded_factor > 1.0 || mtbf > 0.0;
  }
};

struct Scenario {
  sweep::PlatformConfig platform;
  ChaosPoint point;
};

struct RunRecord {
  std::string policy;
  std::string platform_label;
  ChaosPoint point;
  bool ok = false;
  std::string failure;  ///< Audit summary or engine error; empty when ok.
  double makespan = 0.0;
  std::size_t retransmits = 0;
  std::size_t duplicates_suppressed = 0;
  std::size_t checkpoints_banked = 0;
  double work_banked = 0.0;
  std::size_t messages_lost = 0;
  std::size_t fencings = 0;
};

sim::SimOptions chaos_options(const ChaosPoint& point, std::uint64_t seed) {
  sim::SimOptions options = sim::SimOptions::with_error(point.error, seed);
  options.record_trace = true;
  // Livelock guard: a scenario whose fault churn outruns all progress (every
  // chunk killed before completion) must fail fast and get shrunk, not hang.
  options.max_events = 2'000'000;
  if (point.loss > 0.0 || point.degraded_factor > 1.0) {
    faults::LinkFaultSpec link;
    link.loss = point.loss;
    if (point.degraded_factor > 1.0) {
      link.degraded_mtbf = 20.0;
      link.degraded_mttr = 5.0;
      link.degraded_factor = point.degraded_factor;
    }
    options.link = link;
  }
  if (point.mtbf > 0.0) {
    options.faults = faults::FaultSpec::transient(point.mtbf, point.mtbf / 10.0);
  }
  if (point.faulty()) {
    options.retransmit.enabled = point.loss > 0.0;
    options.checkpoint.interval = 0.5;
  }
  return options;
}

/// Runs one (scenario, policy) cell; returns ok + failure description.
RunRecord run_cell(const Scenario& scenario, const sweep::AlgorithmSpec& spec,
                   std::uint64_t seed) {
  RunRecord record;
  record.policy = spec.name;
  record.platform_label = scenario.platform.label();
  record.point = scenario.point;

  const platform::StarPlatform platform = scenario.platform.to_platform();
  const sim::SimOptions options = chaos_options(scenario.point, seed);
  const auto policy = spec.make(platform, kWTotal, scenario.point.error);
  try {
    const sim::SimResult result = simulate(platform, *policy, options);
    const check::AuditReport audit = check::audit_sim_result(result, platform, kWTotal);
    record.ok = audit.ok();
    if (!record.ok) record.failure = audit.summary();
    record.makespan = result.makespan;
    record.retransmits = result.faults.retransmits;
    record.duplicates_suppressed = result.faults.duplicates_suppressed;
    record.checkpoints_banked = result.faults.checkpoints_banked;
    record.work_banked = result.faults.work_banked;
    record.messages_lost = result.faults.messages_lost;
    record.fencings = result.faults.suspicions;
  } catch (const std::exception& error) {
    record.ok = false;
    record.failure = error.what();
  }
  return record;
}

/// Greedy shrink: try to zero one axis at a time (then shrink the platform),
/// keeping each mutation only if the failure persists, until a fixed point.
/// The result is a minimal reproducer in the sense that re-enabling any
/// remaining axis is necessary for the failure.
Scenario shrink_failure(Scenario scenario, const sweep::AlgorithmSpec& spec,
                        std::uint64_t seed) {
  const auto still_fails = [&](const Scenario& candidate) {
    return !run_cell(candidate, spec, seed).ok;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    const auto try_mutation = [&](Scenario candidate) {
      if (still_fails(candidate)) {
        scenario = candidate;
        changed = true;
      }
    };
    if (scenario.point.loss > 0.0) {
      Scenario candidate = scenario;
      candidate.point.loss = 0.0;
      try_mutation(candidate);
    }
    if (scenario.point.degraded_factor > 1.0) {
      Scenario candidate = scenario;
      candidate.point.degraded_factor = 1.0;
      try_mutation(candidate);
    }
    if (scenario.point.mtbf > 0.0) {
      Scenario candidate = scenario;
      candidate.point.mtbf = 0.0;
      try_mutation(candidate);
    }
    if (scenario.point.error > 0.0) {
      Scenario candidate = scenario;
      candidate.point.error = 0.0;
      try_mutation(candidate);
    }
    if (scenario.platform.n > 2) {
      Scenario candidate = scenario;
      candidate.platform.n = scenario.platform.n / 2;
      try_mutation(candidate);
    }
  }
  return scenario;
}

void json_point(std::ostream& out, const ChaosPoint& point) {
  out << "{\"loss\":" << point.loss << ",\"degraded_factor\":" << point.degraded_factor
      << ",\"mtbf\":" << point.mtbf << ",\"error\":" << point.error << "}";
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid = "small";
  std::string out_path = "results/CHAOS.json";
  std::uint64_t seed = 0xC4A05ULL;
  bool error_exit = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--grid" && i + 1 < argc) {
      grid = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--error-exit") {
      error_exit = true;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_campaign [--grid small|full] [--seed S] [--out FILE]"
                   " [--error-exit]\n");
      return 2;
    }
  }
  if (grid != "small" && grid != "full") {
    std::fprintf(stderr, "chaos_campaign: --grid must be 'small' or 'full'\n");
    return 2;
  }
  const bool full = grid == "full";

  // Table 1-style platforms: homogeneous stars with B = b_over_n * N.
  std::vector<sweep::PlatformConfig> platforms = {
      {10, 1.5, 0.3, 0.3},
      {20, 1.2, 0.1, 0.1},
  };
  if (full) {
    platforms.push_back({30, 2.0, 0.5, 0.5});
    platforms.push_back({50, 1.2, 1.0, 1.0});
  }

  const std::vector<double> loss_axis = full ? std::vector<double>{0.0, 0.02, 0.1, 0.25}
                                             : std::vector<double>{0.0, 0.1, 0.25};
  const std::vector<double> degrade_axis = full ? std::vector<double>{1.0, 4.0, 16.0}
                                                : std::vector<double>{1.0, 8.0};
  const std::vector<double> mtbf_axis = full ? std::vector<double>{0.0, 400.0, 100.0}
                                             : std::vector<double>{0.0, 150.0};
  const std::vector<double> error_axis = full ? std::vector<double>{0.0, 0.2, 0.4}
                                              : std::vector<double>{0.0, 0.3};

  const std::vector<sweep::AlgorithmSpec> algorithms = {
      sweep::rumr_spec(), sweep::umr_spec(), sweep::factoring_spec()};

  std::vector<Scenario> scenarios;
  for (const sweep::PlatformConfig& platform : platforms) {
    for (const double loss : loss_axis) {
      for (const double degraded : degrade_axis) {
        for (const double mtbf : mtbf_axis) {
          for (const double error : error_axis) {
            scenarios.push_back({platform, {loss, degraded, mtbf, error}});
          }
        }
      }
    }
  }

  std::vector<RunRecord> records;
  std::vector<std::pair<RunRecord, Scenario>> failures;  // Record + shrunk repro.
  // Baselines for the degradation curves: fault-free makespan per
  // (policy, platform, error) cell.
  std::map<std::string, double> baseline;
  const auto baseline_key = [](const std::string& policy, const std::string& platform,
                               double error) {
    std::ostringstream key;
    key << policy << '|' << platform << '|' << error;
    return key.str();
  };

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& scenario = scenarios[s];
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      const std::uint64_t cell_seed = stats::mix_seed(seed, s, a);
      RunRecord record = run_cell(scenario, algorithms[a], cell_seed);
      if (!record.ok) {
        std::fprintf(stderr, "FAIL %s @ %s (loss=%g degrade=%g mtbf=%g error=%g)\n",
                     record.policy.c_str(), record.platform_label.c_str(),
                     scenario.point.loss, scenario.point.degraded_factor, scenario.point.mtbf,
                     scenario.point.error);
        const Scenario repro = shrink_failure(scenario, algorithms[a], cell_seed);
        std::fprintf(stderr,
                     "  minimal reproducer: N=%zu loss=%g degrade=%g mtbf=%g error=%g"
                     " seed=%llu\n",
                     repro.platform.n, repro.point.loss, repro.point.degraded_factor,
                     repro.point.mtbf, repro.point.error,
                     static_cast<unsigned long long>(cell_seed));
        failures.emplace_back(record, repro);
      } else if (!scenario.point.faulty()) {
        baseline[baseline_key(record.policy, record.platform_label, scenario.point.error)] =
            record.makespan;
      }
      records.push_back(std::move(record));
    }
  }

  // Graceful-degradation curves: per policy, mean makespan inflation over the
  // fault-free baseline of the same (platform, error) cell, grouped by loss.
  struct CurvePoint {
    double slowdown_sum = 0.0;
    std::size_t runs = 0;
  };
  std::map<std::string, std::map<double, CurvePoint>> curves;
  for (const RunRecord& record : records) {
    if (!record.ok) continue;
    const auto it =
        baseline.find(baseline_key(record.policy, record.platform_label, record.point.error));
    if (it == baseline.end() || it->second <= 0.0) continue;
    CurvePoint& point = curves[record.policy][record.point.loss];
    point.slowdown_sum += record.makespan / it->second;
    ++point.runs;
  }

  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(out_path).parent_path(), ec);
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "chaos_campaign: cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\"grid\":\"" << grid << "\",\"seed\":" << seed << ",\"w_total\":" << kWTotal
      << ",\"scenarios\":" << scenarios.size() << ",\"runs\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    if (i > 0) out << ',';
    out << "{\"policy\":\"" << r.policy << "\",\"platform\":\"" << r.platform_label
        << "\",\"point\":";
    json_point(out, r.point);
    out << ",\"ok\":" << (r.ok ? "true" : "false") << ",\"makespan\":" << r.makespan
        << ",\"messages_lost\":" << r.messages_lost << ",\"retransmits\":" << r.retransmits
        << ",\"duplicates_suppressed\":" << r.duplicates_suppressed
        << ",\"fencings\":" << r.fencings << ",\"checkpoints_banked\":" << r.checkpoints_banked
        << ",\"work_banked\":" << r.work_banked << "}";
  }
  out << "],\"curves\":{";
  bool first_policy = true;
  for (const auto& [policy, points] : curves) {
    if (!first_policy) out << ',';
    first_policy = false;
    out << '"' << policy << "\":[";
    bool first_point = true;
    for (const auto& [loss, point] : points) {
      if (!first_point) out << ',';
      first_point = false;
      out << "{\"loss\":" << loss
          << ",\"mean_slowdown\":" << point.slowdown_sum / static_cast<double>(point.runs)
          << ",\"runs\":" << point.runs << "}";
    }
    out << ']';
  }
  out << "},\"failures\":[";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const auto& [record, repro] = failures[i];
    if (i > 0) out << ',';
    out << "{\"policy\":\"" << record.policy << "\",\"platform\":\"" << record.platform_label
        << "\",\"point\":";
    json_point(out, record.point);
    out << ",\"what\":\"" << json_escape(record.failure) << "\",\"minimal\":{\"workers\":"
        << repro.platform.n << ",\"point\":";
    json_point(out, repro.point);
    out << "}}";
  }
  out << "]}\n";

  std::printf("chaos_campaign: %zu scenarios x %zu policies = %zu runs, %zu failures -> %s\n",
              scenarios.size(), algorithms.size(), records.size(), failures.size(),
              out_path.c_str());
  for (const auto& [policy, points] : curves) {
    std::printf("  %-12s", policy.c_str());
    for (const auto& [loss, point] : points) {
      std::printf("  loss=%-5g x%.3f", loss,
                  point.slowdown_sum / static_cast<double>(point.runs));
    }
    std::printf("\n");
  }
  return (error_exit && !failures.empty()) ? 1 : 0;
}
