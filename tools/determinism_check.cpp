// Determinism self-check harness.
//
// Codifies the kernel's determinism promise (des/simulator.hpp: equal-time
// events run FIFO by insertion order, so every simulation is fully
// reproducible) and checks it end to end:
//
//   1. DES tie-break audit: batches of events inserted in seeded-shuffled
//      order, with many equal timestamps, must execute in (time, insertion
//      sequence) order — and the kernel must pass a SimulatorAuditor
//      (monotonicity, no-schedule-in-the-past, event conservation at drain).
//   2. Scheduler replay audit: every scheduling algorithm in the evaluation
//      (core + baselines) runs twice on the same run description; the JSON
//      traces and result fingerprints must match byte for byte. Each run is
//      additionally passed through the rumr::check work-conservation
//      auditor.
//   3. Multi-job replay audit: the open-system engine (rumr::jobs) runs the
//      same Poisson stream twice under each platform-sharing policy; the
//      per-job CSV plus summary JSON must match byte for byte, and every run
//      must pass check::audit_service_result.
//
// Exit status 0 iff every check passes; intended for CI (see ci.sh) and for
// local use after touching src/des, src/sim, or any policy.

#include <cstddef>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/des_audit.hpp"
#include "check/service_audit.hpp"
#include "check/trace_audit.hpp"
#include "des/simulator.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/job_stream.hpp"
#include "platform/platform.hpp"
#include "report/jobs_io.hpp"
#include "sim/master_worker.hpp"
#include "sim/trace_json.hpp"
#include "stats/rng.hpp"
#include "sweep/scheduler_factory.hpp"

namespace {

int g_failures = 0;

void report(const std::string& what, bool ok, const std::string& detail = "") {
  std::cout << (ok ? "  ok    " : "  FAIL  ") << what << '\n';
  if (!ok) {
    if (!detail.empty()) std::cout << "        " << detail << '\n';
    ++g_failures;
  }
}

// --- 1. DES tie-break audit -------------------------------------------------

/// Schedules `count` events whose timestamps collide heavily, inserted in a
/// seeded-shuffled order, and verifies execution follows (time, insertion
/// sequence) exactly.
void des_jitter_round(std::uint64_t seed, std::size_t count) {
  rumr::stats::Rng rng(seed);

  // A small time alphabet forces equal-timestamp ties on almost every event.
  std::vector<double> times(count);
  for (double& t : times) t = static_cast<double>(rng.uniform_index(8)) * 0.5;

  // Shuffle the *insertion* order (Fisher-Yates on an index permutation).
  std::vector<std::size_t> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;
  for (std::size_t i = count; i > 1; --i) {
    std::swap(order[i - 1], order[static_cast<std::size_t>(rng.uniform_index(i))]);
  }

  rumr::des::Simulator sim;
  rumr::check::SimulatorAuditor auditor;
  auditor.attach(sim);

  // executed[k] = (time, insertion sequence) of the k-th handler to run.
  std::vector<std::pair<double, std::size_t>> executed;
  executed.reserve(count);
  std::size_t seq = 0;
  for (std::size_t idx : order) {
    const double t = times[idx];
    const std::size_t this_seq = seq++;
    sim.schedule_at(t, [&executed, t, this_seq] { executed.emplace_back(t, this_seq); });
  }
  sim.run();
  auditor.verify_drained(sim);

  bool ordered = executed.size() == count;
  for (std::size_t k = 1; ordered && k < executed.size(); ++k) {
    const auto& [t_prev, s_prev] = executed[k - 1];
    const auto& [t_k, s_k] = executed[k];
    // Strict promise: later time, or same time and later insertion.
    ordered = t_prev < t_k || (t_prev == t_k && s_prev < s_k);
  }

  std::ostringstream label;
  label << "des tie-break, seed " << seed << ", " << count << " events";
  report(label.str(), ordered && auditor.report().ok(),
         ordered ? auditor.report().summary() : "execution order broke the FIFO tie-break");
}

// --- 2. Scheduler replay audit ----------------------------------------------

/// The full evaluation line-up, deduplicated by name: the paper's
/// section 5.1 competitors, FSC, the loop self-scheduling family, and the
/// RUMR variants used in the ablation figures.
std::vector<rumr::sweep::AlgorithmSpec> all_schedulers() {
  std::vector<rumr::sweep::AlgorithmSpec> specs = rumr::sweep::extended_competitors();
  for (auto& s : rumr::sweep::loop_family_competitors()) specs.push_back(std::move(s));
  specs.push_back(rumr::sweep::rumr_inorder_spec());
  specs.push_back(rumr::sweep::rumr_adaptive_spec());
  specs.push_back(rumr::sweep::rumr_fixed_spec(70.0));

  std::vector<rumr::sweep::AlgorithmSpec> unique;
  std::map<std::string, bool> seen;
  for (auto& s : specs) {
    if (seen.emplace(s.name, true).second) unique.push_back(std::move(s));
  }
  return unique;
}

/// Runs one algorithm once and reduces the run to a byte-comparable string:
/// the Chrome-tracing JSON plus every result scalar at full precision.
std::string run_fingerprint(const rumr::sweep::AlgorithmSpec& spec,
                            const rumr::platform::StarPlatform& platform, double w_total,
                            double error, std::uint64_t seed, std::string* audit_out) {
  auto policy = spec.make(platform, w_total, error);
  rumr::sim::SimOptions options = rumr::sim::SimOptions::with_error(error, seed);
  options.record_trace = true;
  const rumr::sim::SimResult result = rumr::sim::simulate(platform, *policy, options);

  const rumr::check::AuditReport audit =
      rumr::check::audit_sim_result(result, platform, w_total);
  if (!audit.ok() && audit_out != nullptr) *audit_out = audit.summary();

  std::ostringstream out;
  out << std::setprecision(17);
  out << "makespan=" << result.makespan << " chunks=" << result.chunks_dispatched
      << " work=" << result.work_dispatched << " uplink=" << result.uplink_busy_time
      << " events=" << result.events << '\n';
  for (const rumr::sim::WorkerOutcome& w : result.workers) {
    out << "worker work=" << w.work << " chunks=" << w.chunks << " busy=" << w.busy_time
        << " first=" << w.first_start << " last=" << w.last_end << '\n';
  }
  out << rumr::sim::to_chrome_tracing(result.trace);
  return out.str();
}

void scheduler_replay_round(const rumr::platform::StarPlatform& platform, const char* label,
                            double w_total, double error, std::uint64_t seed) {
  for (const rumr::sweep::AlgorithmSpec& spec : all_schedulers()) {
    std::string audit_detail;
    const std::string first = run_fingerprint(spec, platform, w_total, error, seed, &audit_detail);
    const std::string second = run_fingerprint(spec, platform, w_total, error, seed, nullptr);
    const bool identical = first == second;
    const bool audited = audit_detail.empty();

    std::ostringstream what;
    what << spec.name << " on " << label << " (W=" << w_total << ", error=" << error << ", seed "
         << seed << ")";
    std::string detail;
    if (!identical) detail = "replay produced a different trace";
    if (!audited) detail += (detail.empty() ? "" : "; ") + ("audit: " + audit_detail);
    report(what.str(), identical && audited, detail);
  }
}

// --- 3. Multi-job replay audit ------------------------------------------------

/// Runs the open system once and reduces it to a byte-comparable string:
/// the per-job CSV plus the summary JSON (both at full precision).
std::string jobs_fingerprint(const rumr::platform::StarPlatform& platform,
                             const rumr::jobs::JobsOptions& options, std::string* audit_out) {
  const rumr::jobs::ServiceResult result = rumr::jobs::run_jobs(platform, options);

  const rumr::check::AuditReport audit =
      rumr::check::audit_service_result(result, platform, options);
  if (!audit.ok() && audit_out != nullptr) *audit_out = audit.summary();

  return rumr::report::jobs_csv(result) + rumr::report::jobs_summary_json(result);
}

void jobs_replay_round(const rumr::platform::StarPlatform& platform, double load,
                       std::uint64_t seed) {
  for (const rumr::jobs::SharingPolicy sharing :
       {rumr::jobs::SharingPolicy::kExclusive, rumr::jobs::SharingPolicy::kPartitioned,
        rumr::jobs::SharingPolicy::kFractional}) {
    rumr::jobs::JobsOptions options;
    options.sharing = sharing;
    options.partitions = 2;
    options.stream = rumr::jobs::JobStreamSpec::poisson(
        rumr::jobs::JobStreamSpec::rate_for_load(platform, load, 300.0), 30, 300.0);
    options.stream.size_dist = rumr::jobs::SizeDistribution::kUniform;
    options.stream.size_spread = 0.4;
    options.known_error = 0.2;
    options.sim = rumr::sim::SimOptions::with_error(0.2, seed);

    std::string audit_detail;
    const std::string first = jobs_fingerprint(platform, options, &audit_detail);
    const std::string second = jobs_fingerprint(platform, options, nullptr);
    const bool identical = first == second;
    const bool audited = audit_detail.empty();

    std::ostringstream what;
    what << "jobs/" << rumr::jobs::to_string(sharing) << " (load=" << load << ", seed " << seed
         << ")";
    std::string detail;
    if (!identical) detail = "replay produced a different service record";
    if (!audited) detail += (detail.empty() ? "" : "; ") + ("audit: " + audit_detail);
    report(what.str(), identical && audited, detail);
  }
}

}  // namespace

int main() {
  std::cout << "determinism_check: DES tie-break audit\n";
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) des_jitter_round(seed, 2000);

  std::cout << "determinism_check: scheduler replay audit\n";
  const auto homogeneous = rumr::platform::StarPlatform::homogeneous(
      {.workers = 10, .speed = 1.0, .bandwidth = 15.0, .comp_latency = 0.05,
       .comm_latency = 0.02, .transfer_latency = 0.01});
  scheduler_replay_round(homogeneous, "homogeneous-10", 1000.0, 0.3, 42);

  // A lopsided platform exercises the heterogeneous code paths of every
  // policy (per-worker fractions, weighted chunk sizing, resource order).
  const rumr::platform::StarPlatform lopsided({
      {2.0, 20.0, 0.05, 0.02, 0.01},
      {1.0, 12.0, 0.05, 0.02, 0.01},
      {0.5, 8.0, 0.05, 0.02, 0.01},
      {1.5, 16.0, 0.05, 0.02, 0.01},
  });
  scheduler_replay_round(lopsided, "heterogeneous-4", 400.0, 0.2, 7);

  std::cout << "determinism_check: multi-job replay audit\n";
  jobs_replay_round(homogeneous, 0.7, 17);

  if (g_failures != 0) {
    std::cout << "determinism_check: " << g_failures << " check(s) FAILED\n";
    return 1;
  }
  std::cout << "determinism_check: all checks passed\n";
  return 0;
}
