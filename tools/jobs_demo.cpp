/// \file jobs_demo.cpp
/// Mean slowdown vs offered load: exclusive vs partitioned vs fractional.
///
/// Sweeps the open-system load axis on one Table 1-style platform and prints
/// the mean job slowdown of each platform-sharing policy, with transient
/// worker outages injected into every inner service run. Every run is audited
/// by check::audit_service_result (counter ledger, per-job work conservation,
/// share disjointness, Little's law), so this doubles as an end-to-end gate
/// for the multi-job subsystem — the exit code is nonzero when any run fails
/// its audit or strands jobs.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "check/service_audit.hpp"
#include "faults/fault_model.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/job_stream.hpp"
#include "report/table.hpp"
#include "sim/master_worker.hpp"
#include "stats/rng.hpp"
#include "sweep/grid.hpp"

namespace {

constexpr double kError = 0.2;
constexpr double kMeanSize = 300.0;
constexpr std::size_t kJobs = 60;
constexpr double kMtbf = 1200.0;  ///< Transient outages, MTTR = MTBF/10.

}  // namespace

int main() {
  using namespace rumr;

  const sweep::PlatformConfig config{10, 1.6, 0.3, 0.3};
  const platform::StarPlatform platform = config.to_platform();

  const std::vector<double> loads = sweep::load_axis(0.3, 0.9, 0.2);
  const std::vector<jobs::SharingPolicy> policies = {
      jobs::SharingPolicy::kExclusive, jobs::SharingPolicy::kPartitioned,
      jobs::SharingPolicy::kFractional};

  report::TextTable table([&] {
    std::vector<std::string> headers = {"load"};
    for (const jobs::SharingPolicy policy : policies) headers.emplace_back(to_string(policy));
    return headers;
  }());

  bool all_ok = true;
  for (const double load : loads) {
    std::vector<double> slowdowns;
    for (const jobs::SharingPolicy policy : policies) {
      jobs::JobsOptions options;
      options.sharing = policy;
      options.partitions = 2;
      options.stream = jobs::JobStreamSpec::poisson(
          jobs::JobStreamSpec::rate_for_load(platform, load, kMeanSize), kJobs, kMeanSize);
      options.stream.size_dist = jobs::SizeDistribution::kUniform;
      options.stream.size_spread = 0.4;
      options.known_error = kError;
      options.sim = sim::SimOptions::with_error(
          kError, stats::mix_seed(0x10B5ULL, static_cast<std::uint64_t>(load * 100.0),
                                  static_cast<std::uint64_t>(policy)));
      // Repairable outages with MTTR = MTBF/10: availability ~ 91%.
      options.sim.faults = faults::FaultSpec::transient(kMtbf, kMtbf / 10.0);

      try {
        const jobs::ServiceResult result = jobs::run_jobs(platform, options);
        const check::AuditReport audit = check::audit_service_result(result, platform, options);
        if (!audit.ok()) {
          std::cerr << "AUDIT FAILED (" << to_string(policy) << ", load=" << load << "):\n"
                    << audit.summary() << '\n';
          all_ok = false;
        }
        if (result.completed != result.admitted) {
          std::cerr << "STRANDED JOBS (" << to_string(policy) << ", load=" << load
                    << "): admitted=" << result.admitted << " completed=" << result.completed
                    << '\n';
          all_ok = false;
        }
        slowdowns.push_back(result.mean_slowdown());
      } catch (const sim::SimError& error) {
        std::cerr << "SimError (" << to_string(policy) << ", load=" << load
                  << "): " << error.what() << '\n';
        all_ok = false;
        slowdowns.push_back(0.0);
      }
    }
    table.add_row(std::to_string(load).substr(0, 3), slowdowns, 2);
  }

  std::cout << "Mean slowdown over " << kJobs << " Poisson jobs, mean size " << kMeanSize
            << ", error=" << kError << ", N=" << platform.size()
            << ", transient faults MTBF=" << kMtbf << "\n\n";
  table.print(std::cout);
  std::cout << "\n(slowdowns grow with offered load; every run is service-audited)\n";
  return all_ok ? 0 : 1;
}
