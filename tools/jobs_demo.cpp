/// \file jobs_demo.cpp
/// Mean slowdown vs offered load: exclusive vs partitioned vs fractional.
///
/// Sweeps the open-system load axis on one Table 1-style platform through the
/// rumr::Sweep facade and prints the mean job slowdown of each
/// platform-sharing policy, with transient worker outages injected into every
/// inner service run. Every repetition is audited by
/// check::audit_service_result (counter ledger, per-job work conservation,
/// share disjointness, Little's law), so this doubles as an end-to-end gate
/// for the multi-job subsystem — the exit code is nonzero when any run fails
/// its audit or strands jobs.

#include <cstddef>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "api/rumr.hpp"

namespace {

constexpr double kError = 0.2;
constexpr double kMeanSize = 300.0;
constexpr std::size_t kJobs = 60;
constexpr double kMtbf = 1200.0;  ///< Transient outages, MTTR = MTBF/10.

}  // namespace

int main() {
  using namespace rumr;

  const sweep::PlatformConfig config{10, 1.6, 0.3, 0.3};

  const std::vector<double> loads = sweep::load_axis(0.3, 0.9, 0.2);
  const std::vector<jobs::SharingPolicy> policies = {
      jobs::SharingPolicy::kExclusive, jobs::SharingPolicy::kPartitioned,
      jobs::SharingPolicy::kFractional};

  report::TextTable table([&] {
    std::vector<std::string> headers = {"load"};
    for (const jobs::SharingPolicy policy : policies) headers.emplace_back(to_string(policy));
    return headers;
  }());

  bool all_ok = true;
  // load index -> slowdown per policy, collected across the per-policy sweeps.
  std::map<std::size_t, std::vector<double>> rows;
  for (const jobs::SharingPolicy policy : policies) {
    jobs::JobsOptions base;
    base.sharing = policy;
    base.partitions = 2;
    base.stream = jobs::JobStreamSpec::poisson(1.0, kJobs, kMeanSize);
    base.stream.size_dist = jobs::SizeDistribution::kUniform;
    base.stream.size_spread = 0.4;
    base.known_error = kError;
    base.sim = sim::SimOptions::with_error(kError, 1);
    // Repairable outages with MTTR = MTBF/10: availability ~ 91%.
    base.sim.faults = faults::FaultSpec::transient(kMtbf, kMtbf / 10.0);

    try {
      const std::vector<sweep::JobsSweepCell> cells =
          Sweep()
              .platforms(std::vector<sweep::PlatformConfig>{config})
              .jobs(base)
              .loads(loads)
              .reps(1)
              .seed(0x10B5ULL + static_cast<std::uint64_t>(policy))
              .execute_jobs();
      for (const sweep::JobsSweepCell& cell : cells) {
        if (cell.stats.completed != cell.stats.admitted) {
          std::cerr << "STRANDED JOBS (" << to_string(policy) << ", load=" << cell.load
                    << "): admitted=" << cell.stats.admitted
                    << " completed=" << cell.stats.completed << '\n';
          all_ok = false;
        }
        rows[cell.load_index].push_back(cell.stats.mean_slowdown.mean());
      }
    } catch (const check::CheckError& error) {
      std::cerr << "AUDIT FAILED (" << to_string(policy) << "): " << error.what() << '\n';
      all_ok = false;
      for (std::size_t i = 0; i < loads.size(); ++i) rows[i].push_back(0.0);
    } catch (const sim::SimError& error) {
      std::cerr << "SimError (" << to_string(policy) << "): " << error.what() << '\n';
      all_ok = false;
      for (std::size_t i = 0; i < loads.size(); ++i) rows[i].push_back(0.0);
    }
  }

  for (const auto& [load_index, slowdowns] : rows) {
    table.add_row(std::to_string(loads[load_index]).substr(0, 3), slowdowns, 2);
  }

  std::cout << "Mean slowdown over " << kJobs << " Poisson jobs, mean size " << kMeanSize
            << ", error=" << kError << ", N=" << config.n
            << ", transient faults MTBF=" << kMtbf << "\n\n";
  table.print(std::cout);
  std::cout << "\n(slowdowns grow with offered load; every run is service-audited)\n";
  return all_ok ? 0 : 1;
}
