// perf_gate — performance-regression gate over bench_perf_json snapshots.
//
// Compares a fresh results/BENCH_des.json against the checked-in baseline
// (results/BENCH_baseline.json). Every metric is a rate (higher is better);
// the gate fails when any metric drops more than the noise threshold below
// its baseline. Improvements and new metrics never fail — they are reported
// so the baseline can be refreshed (--update-baseline) when a speedup lands.
//
//   perf_gate <fresh.json> <baseline.json>
//             [--threshold 0.20]        allowed fractional drop (default 20%)
//             [--history <file>]        append the fresh snapshot as one
//                                       JSONL line (the bench trajectory)
//             [--update-baseline]       overwrite the baseline with the
//                                       fresh snapshot and exit 0
//
// Exit status: 0 = within threshold, 1 = regression, 2 = usage/IO error.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json_lite.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// Flat {metric: rate} snapshot, in file order.
using Snapshot = std::vector<std::pair<std::string, double>>;

Snapshot parse_snapshot(const std::string& text, const std::string& path) {
  Snapshot snap;
  // Parse into a named value: as_object() returns a reference into the
  // document, which a temporary would destroy before the loop body runs.
  const rumr::util::JsonValue doc = rumr::util::JsonValue::parse(text);
  for (const auto& [key, value] : doc.as_object()) {
    const double rate = value.as_number();
    if (!(rate > 0.0)) {
      throw std::runtime_error(path + ": metric '" + key + "' is not a positive rate");
    }
    snap.emplace_back(key, rate);
  }
  if (snap.empty()) throw std::runtime_error(path + ": no metrics found");
  return snap;
}

const double* find(const Snapshot& snap, const std::string& key) {
  for (const auto& [k, v] : snap) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// One JSONL line per gate run; the file is the bench trajectory over time.
bool append_history(const std::string& path, const Snapshot& fresh) {
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  out << "{";
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << fresh[i].first << "\": " << fresh[i].second;
  }
  out << "}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string fresh_path;
  std::string baseline_path;
  std::string history_path;
  double threshold = 0.20;
  bool update_baseline = false;

  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--history" && i + 1 < argc) {
      history_path = argv[++i];
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "perf_gate: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2 || !(threshold > 0.0) || !(threshold < 1.0)) {
    std::fprintf(stderr,
                 "usage: perf_gate <fresh.json> <baseline.json> [--threshold 0.20] "
                 "[--history <file>] [--update-baseline]\n");
    return 2;
  }
  fresh_path = positional[0];
  baseline_path = positional[1];

  std::string fresh_text;
  if (!read_file(fresh_path, fresh_text)) {
    std::fprintf(stderr, "perf_gate: cannot read %s\n", fresh_path.c_str());
    return 2;
  }

  Snapshot fresh;
  try {
    fresh = parse_snapshot(fresh_text, fresh_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_gate: %s\n", e.what());
    return 2;
  }

  if (update_baseline) {
    std::ofstream out(baseline_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "perf_gate: cannot write %s\n", baseline_path.c_str());
      return 2;
    }
    out << fresh_text;
    std::printf("perf_gate: baseline %s updated from %s\n", baseline_path.c_str(),
                fresh_path.c_str());
    return 0;
  }

  std::string baseline_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::fprintf(stderr,
                 "perf_gate: cannot read baseline %s (record one with --update-baseline)\n",
                 baseline_path.c_str());
    return 2;
  }
  Snapshot baseline;
  try {
    baseline = parse_snapshot(baseline_text, baseline_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_gate: %s\n", e.what());
    return 2;
  }

  int regressions = 0;
  for (const auto& [key, base] : baseline) {
    const double* now = find(fresh, key);
    if (now == nullptr) {
      std::printf("  FAIL  %-28s missing from fresh snapshot\n", key.c_str());
      ++regressions;
      continue;
    }
    const double ratio = *now / base;
    const bool ok = ratio >= 1.0 - threshold;
    std::printf("  %s  %-28s %10.3g -> %10.3g  (%+.1f%%)\n", ok ? "ok  " : "FAIL", key.c_str(),
                base, *now, (ratio - 1.0) * 100.0);
    if (!ok) ++regressions;
  }
  for (const auto& [key, rate] : fresh) {
    if (find(baseline, key) == nullptr) {
      std::printf("  new   %-28s %10.3g  (not in baseline; refresh with --update-baseline)\n",
                  key.c_str(), rate);
    }
  }

  if (!history_path.empty() && !append_history(history_path, fresh)) {
    std::fprintf(stderr, "perf_gate: cannot append history to %s\n", history_path.c_str());
    return 2;
  }

  if (regressions != 0) {
    std::printf("perf_gate: %d metric(s) regressed more than %.0f%% below baseline\n",
                regressions, threshold * 100.0);
    return 1;
  }
  std::printf("perf_gate: all metrics within %.0f%% of baseline\n", threshold * 100.0);
  return 0;
}
