/// \file metrics_demo.cpp
/// Self-auditing tour of the observability layer (rumr::obs).
///
/// Executes one run per scenario — perfect predictions, heavy prediction
/// error, head-of-line-blocking-prone buffering, multi-channel uplink, the
/// output-data model, and transient worker faults — through the public
/// rumr::Run facade, prints the headline metrics of each, and audits every
/// result with check::audit_sim_result (which verifies the observability
/// identities: uplink busy + idle tiles the makespan, per-worker
/// {compute, aborted, idle, down} spans partition the run, the DES kernel
/// conserved events). Exit code is nonzero when any scenario fails its
/// audit, so ci.sh uses this as an end-to-end gate for the metrics
/// subsystem under both the release and sanitizer presets.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "api/rumr.hpp"

namespace {

using namespace rumr;

struct Scenario {
  std::string name;
  Run run;
};

std::vector<Scenario> make_scenarios() {
  platform::HomogeneousParams params;
  params.workers = 10;
  params.speed = 1.0;
  params.bandwidth = 15.0;
  params.comp_latency = 0.2;
  params.comm_latency = 0.1;
  const platform::StarPlatform cluster = platform::StarPlatform::homogeneous(params);
  const double workload = 1000.0;

  std::vector<Scenario> scenarios;

  scenarios.push_back(
      {"UMR, perfect predictions",
       Run().platform(cluster).workload(workload).algorithm("umr-eager").seed(11)});

  scenarios.push_back({"RUMR, 30% prediction error",
                       Run()
                           .platform(cluster)
                           .workload(workload)
                           .algorithm("rumr")
                           .known_error(0.3)
                           .error(0.3)
                           .seed(12)});

  {
    // Timetable-driven UMR under heavy error with the classic single-slot
    // front end: the recipe for head-of-line blocking.
    Run run = Run().platform(cluster).workload(workload).algorithm("umr").error(0.5).seed(13);
    run.description().sim_options.worker_buffer_capacity = 1;
    scenarios.push_back({"UMR timetable, 50% error (HOL-blocking prone)", std::move(run)});
  }

  {
    Run run =
        Run().platform(cluster).workload(workload).algorithm("factoring").error(0.3).seed(14);
    run.description().sim_options.uplink_channels = 2;
    scenarios.push_back({"Factoring, two uplink channels", std::move(run)});
  }

  {
    Run run = Run().platform(cluster).workload(workload).algorithm("rumr").known_error(0.2)
                  .error(0.2).seed(15);
    run.description().sim_options.output_ratio = 0.1;
    scenarios.push_back({"RUMR with 10% output data", std::move(run)});
  }

  {
    Run run = Run().platform(cluster).workload(workload).algorithm("rumr").known_error(0.1)
                  .error(0.1).seed(16);
    run.description().sim_options.faults = faults::FaultSpec::transient(400.0, 40.0);
    scenarios.push_back({"RUMR under transient faults (MTBF 400s)", std::move(run)});
  }

  return scenarios;
}

void print_metrics(const obs::RunMetrics& m) {
  std::printf("  makespan %.2f s | uplink busy %.1f%% (%.2f s transfer + %.2f s HOL) | "
              "worker util %.1f%%\n",
              m.makespan, 100.0 * m.engine.uplink_utilization, m.engine.uplink_transfer_time,
              m.engine.hol_blocking_time, 100.0 * m.engine.mean_worker_utilization);
  std::printf("  %zu dispatches, %zu completions, %zu re-dispatches | chunk sizes "
              "[%.2f, %.2f] mean %.2f\n",
              m.engine.dispatches, m.engine.completions, m.engine.redispatches,
              m.engine.chunk_sizes.min(), m.engine.chunk_sizes.max(), m.engine.chunk_sizes.mean());
  std::printf("  DES: %zu events (peak queue %zu)", m.des.events_executed,
              m.des.queue_depth_high_water);
  if (m.faults.failures > 0 || m.faults.fencings > 0) {
    std::printf(" | faults: %zu failures, %zu fencings (%zu false), %zu rejoins",
                m.faults.failures, m.faults.fencings, m.faults.false_suspicions,
                m.faults.rejoins);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool dump_json = argc > 1 && std::string(argv[1]) == "--json";

  bool all_ok = true;
  for (Scenario& scenario : make_scenarios()) {
    std::printf("%s\n", scenario.name.c_str());
    try {
      // execute() already audits (work conservation + observability
      // identities) and throws check::CheckError on a violation.
      const RunResult result = scenario.run.execute();
      print_metrics(result.metrics);
      if (dump_json) std::printf("  %s\n", obs::to_json(result.metrics).c_str());
    } catch (const std::exception& error) {
      std::printf("  FAILED: %s\n", error.what());
      all_ok = false;
    }
    std::printf("\n");
  }

  if (!all_ok) {
    std::fprintf(stderr, "metrics_demo: at least one scenario failed its audit\n");
    return 1;
  }
  std::printf("all scenarios passed their observability audits\n");
  return 0;
}
