/// \file robustness_demo.cpp
/// Makespan degradation under worker faults: RUMR vs UMR vs Factoring.
///
/// Sweeps a transient-outage MTBF axis (plus the fault-free baseline) on one
/// Table 1-style platform and prints the mean makespan of each scheduler.
/// Every run records a trace and is audited (no completions from dead
/// workers; lost chunks re-dispatched exactly once), so this doubles as an
/// end-to-end gate for the fault subsystem — the exit code is nonzero when
/// any run fails its audit or strands work.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "check/trace_audit.hpp"
#include "faults/fault_model.hpp"
#include "report/table.hpp"
#include "sim/master_worker.hpp"
#include "stats/error_model.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "sweep/grid.hpp"
#include "sweep/scheduler_factory.hpp"

namespace {

constexpr double kError = 0.1;
constexpr double kWTotal = 1000.0;
constexpr std::size_t kReps = 8;

struct AxisPoint {
  double mtbf = 0.0;  ///< 0 = faults disabled.
  std::string label;
};

}  // namespace

int main() {
  using namespace rumr;

  const sweep::PlatformConfig config{10, 1.6, 0.3, 0.3};
  const platform::StarPlatform platform = config.to_platform();

  const std::vector<AxisPoint> axis = {
      {0.0, "no faults"}, {1600.0, "1600"}, {800.0, "800"}, {400.0, "400"}, {200.0, "200"},
  };
  const std::vector<sweep::AlgorithmSpec> algorithms = {
      sweep::rumr_spec(), sweep::umr_spec(), sweep::factoring_spec()};

  report::TextTable table([&] {
    std::vector<std::string> headers = {"MTBF (s)"};
    for (const auto& spec : algorithms) headers.push_back(spec.name);
    return headers;
  }());

  bool all_ok = true;
  for (const AxisPoint& point : axis) {
    std::vector<double> means;
    for (const sweep::AlgorithmSpec& spec : algorithms) {
      stats::Accumulator makespans;
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        sim::SimOptions options = sim::SimOptions::with_error(
            kError,
            stats::mix_seed(0x0B057ULL, rep, static_cast<std::uint64_t>(point.mtbf * 1000.0)));
        options.record_trace = true;
        if (point.mtbf > 0.0) {
          // Repairable outages with MTTR = MTBF/10: availability ~ 91%.
          options.faults = faults::FaultSpec::transient(point.mtbf, point.mtbf / 10.0);
        }
        const auto policy = spec.make(platform, kWTotal, kError);
        try {
          const sim::SimResult result = simulate(platform, *policy, options);
          const check::AuditReport audit = check::audit_sim_result(result, platform, kWTotal);
          if (!audit.ok()) {
            std::cerr << "AUDIT FAILED (" << spec.name << ", mtbf=" << point.label
                      << ", rep=" << rep << "):\n"
                      << audit.summary() << '\n';
            all_ok = false;
          }
          makespans.add(result.makespan);
        } catch (const sim::SimError& error) {
          std::cerr << "SimError (" << spec.name << ", mtbf=" << point.label << ", rep=" << rep
                    << "): " << error.what() << '\n';
          all_ok = false;
        }
      }
      means.push_back(makespans.mean());
    }
    table.add_row(point.label, means, 1);
  }

  std::cout << "Mean makespan (s) over " << kReps << " reps, W=" << kWTotal << ", error=" << kError
            << ", N=" << platform.size() << ", transient faults with MTTR=MTBF/10\n\n";
  table.print(std::cout);
  std::cout << "\n(makespans grow as MTBF shrinks; every run is trace-audited)\n";
  return all_ok ? 0 : 1;
}
