// rumr_lint — self-hosted determinism lint for this repository.
//
// Tokenizes the project's own C++ sources (src/, tools/, bench/) and enforces
// the determinism and concurrency invariants every result in this repo rests
// on: no unordered-container iteration, no ambient randomness outside the RNG
// lanes, no wall clocks outside the observability allowlist, no pointer-keyed
// ordering, no mutable statics, no exact float comparisons in policy code,
// #pragma once everywhere, and hygienic suppressions.
//
//   tools/rumr_lint --root . --error-exit        # the CI gate (ci.sh lint)
//   tools/rumr_lint --rules                      # rule catalog + rationales
//   tools/rumr_lint --root . --json              # machine-readable findings
//
// All real logic lives in src/lint (rumr::lint::run) so the test suite can
// drive the exact code path CI runs.

#include <cstring>
#include <iostream>
#include <string>

#include "lint/engine.hpp"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: rumr_lint [options] [repo-relative files...]\n"
         "  --root DIR              repo root to scan (default: .)\n"
         "  --compile-commands F    compile_commands.json to take the TU list from\n"
         "                          (default: probe root and build/<preset>/)\n"
         "  --baseline F            subtract findings listed in baseline F\n"
         "  --write-baseline F      write current findings as a baseline and exit\n"
         "  --json                  JSON reporter instead of text\n"
         "  --error-exit            exit 1 when findings remain (the CI gate)\n"
         "  --rules                 print the rule catalog with rationales\n"
         "  --help                  this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  rumr::lint::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "rumr_lint: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = need_value();
      if (v == nullptr) return 2;
      opts.root = v;
    } else if (arg == "--compile-commands") {
      const char* v = need_value();
      if (v == nullptr) return 2;
      opts.compile_commands = v;
    } else if (arg == "--baseline") {
      const char* v = need_value();
      if (v == nullptr) return 2;
      opts.baseline = v;
    } else if (arg == "--write-baseline") {
      const char* v = need_value();
      if (v == nullptr) return 2;
      opts.write_baseline = v;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--error-exit") {
      opts.error_exit = true;
    } else if (arg == "--rules") {
      opts.list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "rumr_lint: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    } else {
      opts.paths.push_back(arg);
    }
  }
  return rumr::lint::run(opts, std::cout, std::cerr);
}
