/// \file race_demo.cpp
/// Self-auditing demo of best-arm scheduler racing (race/race.hpp).
///
/// Races the paper's extended line-up (RUMR, UMR, MI-1..4, Factoring, FSC)
/// over a small EXPERIMENTS.md grid through the rumr::Sweep facade and
/// verifies the racing claims end to end:
///
///   1. certification — every cell separates a single winner at delta = 0.05
///      within budget, and every recorded elimination ledger replays cleanly
///      through check::audit_race_result;
///   2. winner parity — each cell's raced winner equals the argmin of a
///      fixed-repetition sweep spending the full budget on every arm over
///      the same seed lanes;
///   3. economy — racing spends at least 3x fewer simulations than that
///      fixed-repetition sweep (the per-cell ratios are printed);
///   4. determinism — threads {0, 1, 2, 8} reproduce a race byte for byte
///      (accumulators, lane fingerprints, elimination ledger, winner)
///      through the rumr::Race facade;
///   5. streaming exactly-once — with buffering off, on_cell() sees every
///      grid cell exactly once and nothing else.
///
/// The line-up choice matters: successive elimination certifies by
/// separating every arm from the *best* arm, so it needs the runner-up gap
/// to be statistical, not structural. The racing_competitors() ablation
/// line-up intentionally contains near-ties (at known_error 0.3 RUMR's split
/// formula lands on ~70% phase 1, making RUMR and RUMR-70 byte-identical
/// arms) — racing it exhausts the budget by construction, an outcome pinned
/// by the race-small golden fixture rather than demoed here.
///
/// Exit code is nonzero when any check fails, so CI can gate on it under
/// both the release and sanitizer presets.

#include <cstddef>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "api/rumr.hpp"

namespace {

using namespace rumr;

constexpr double kDelta = 0.05;
constexpr std::size_t kBudget = 2048;  ///< Per-arm repetition budget.
constexpr std::size_t kBlock = 16;     ///< Repetitions per round.
constexpr double kWorkload = 300.0;

/// The demo grid (EXPERIMENTS.md "raced grid"): two Table 1-style platforms
/// x two high-error regimes, where the line-up's gaps are widest.
std::vector<sweep::PlatformConfig> demo_platforms() {
  return {{10, 1.5, 0.1, 0.05}, {20, 1.2, 0.3, 0.1}};
}

std::vector<double> demo_errors() { return {0.3, 0.45}; }

rumr::Sweep raced_sweep() {
  rumr::Sweep sweep;
  sweep.platforms(demo_platforms())
      .errors(demo_errors())
      .policies(sweep::extended_competitors())
      .workload(kWorkload)
      .race(kDelta)
      .reps(kBudget)
      .rep_block(kBlock)
      .threads(4);
  return sweep;
}

bool expect(bool ok, const std::string& what) {
  std::cout << "  [" << (ok ? "ok" : "FAIL") << "] " << what << "\n";
  return ok;
}

bool same_accumulator(const stats::Accumulator& a, const stats::Accumulator& b) {
  return a.count() == b.count() && a.sum() == b.sum() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() && a.max() == b.max();
}

bool same_race(const race::RaceResult& a, const race::RaceResult& b) {
  if (a.winner != b.winner || a.rounds != b.rounds || a.total_samples != b.total_samples ||
      a.budget_exhausted != b.budget_exhausted || a.arms.size() != b.arms.size() ||
      a.eliminations.size() != b.eliminations.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.arms.size(); ++i) {
    const race::ArmRecord& x = a.arms[i];
    const race::ArmRecord& y = b.arms[i];
    if (x.name != y.name || x.samples != y.samples || x.eliminated != y.eliminated ||
        x.eliminated_round != y.eliminated_round || x.lane_fingerprint != y.lane_fingerprint ||
        !same_accumulator(x.reward, y.reward)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.eliminations.size(); ++i) {
    const race::EliminationRecord& x = a.eliminations[i];
    const race::EliminationRecord& y = b.eliminations[i];
    if (x.arm != y.arm || x.best != y.best || x.round != y.round || x.samples != y.samples ||
        x.arm_lcb != y.arm_lcb || x.best_ucb != y.best_ucb || x.range != y.range) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bool all_ok = true;
  const std::size_t arms = sweep::extended_competitors().size();

  std::cout << "raced grid (2 platforms x 2 errors x " << arms << " arms, delta " << kDelta
            << ", budget " << kBudget << "):\n";
  const std::vector<race::RaceCell> raced = raced_sweep().execute_race();
  all_ok &= expect(raced.size() == 4, "raced sweep produced all 4 cells");

  // 1. Every cell certified, every ledger audit-clean.
  for (const race::RaceCell& cell : raced) {
    const std::string where = cell.platform_label + " err=" + std::to_string(cell.error);
    const check::AuditReport audit = check::audit_race_result(cell.result);
    all_ok &= expect(audit.ok(), where + ": elimination ledger replays cleanly" +
                                     (audit.ok() ? "" : ": " + audit.summary()));
    all_ok &= expect(!cell.result.budget_exhausted,
                     where + ": certified a single winner within budget");
  }

  // 2 + 3. Winner parity with — and economy over — the fixed-repetition sweep.
  rumr::Sweep fixed;
  fixed.platforms(demo_platforms())
      .errors(demo_errors())
      .policies(sweep::extended_competitors())
      .workload(kWorkload)
      .reps(kBudget)
      .threads(4);
  const std::vector<sweep::SweepCell> fixed_cells = fixed.execute();

  std::map<std::pair<std::size_t, std::size_t>, std::pair<std::string, double>> fixed_best;
  for (const sweep::SweepCell& cell : fixed_cells) {
    const auto key = std::make_pair(cell.platform_index, cell.error_index);
    const double mean = cell.stats.makespan.mean();
    const auto it = fixed_best.find(key);
    if (it == fixed_best.end() || mean < it->second.second) {
      fixed_best[key] = {cell.algorithm, mean};
    }
  }
  double worst_ratio = 0.0;
  bool have_ratio = false;
  for (const race::RaceCell& cell : raced) {
    const std::string where = cell.platform_label + " err=" + std::to_string(cell.error);
    const std::string& raced_winner = cell.result.arms[cell.result.winner].name;
    const std::string& fixed_winner =
        fixed_best.at({cell.platform_index, cell.error_index}).first;
    all_ok &= expect(raced_winner == fixed_winner,
                     where + ": raced winner (" + raced_winner +
                         ") matches the fixed-rep argmin (" + fixed_winner + ")");
    const double ratio = cell.result.sims_saved_ratio();
    if (!have_ratio || ratio < worst_ratio) worst_ratio = ratio;
    have_ratio = true;
    std::printf("       %s: %zu sims vs %zu fixed (%.1fx fewer)\n", where.c_str(),
                cell.result.total_samples, cell.result.fixed_budget_samples(), ratio);
  }
  all_ok &= expect(have_ratio && worst_ratio >= 3.0,
                   "every cell raced with >= 3x fewer simulations than fixed-rep");

  // 4. Byte-identity across thread counts through the rumr::Race facade.
  const auto one_race = [&](std::size_t threads) {
    return rumr::Race()
        .platform(demo_platforms().front())
        .policies(sweep::extended_competitors())
        .error(0.3)
        .workload(kWorkload)
        .delta(kDelta)
        .block(kBlock)
        .budget(kBudget)
        .threads(threads)
        .execute();
  };
  const race::RaceResult reference = one_race(1);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
    all_ok &= expect(same_race(one_race(threads), reference),
                     "threads=" + std::to_string(threads) + " race is byte-identical to threads=1");
  }

  // 5. Streaming mode: buffering off, every cell exactly once.
  std::map<std::pair<std::size_t, std::size_t>, int> seen;
  const std::vector<race::RaceCell> streamed =
      raced_sweep()
          .buffer(false)
          .on_cell(race::RaceConsumer([&seen](const race::RaceCell& cell) {
            ++seen[{cell.platform_index, cell.error_index}];
          }))
          .execute_race();
  bool exactly_once = streamed.empty() && seen.size() == raced.size();
  for (const auto& [key, count] : seen) exactly_once = exactly_once && count == 1;
  all_ok &= expect(exactly_once, "buffer(false) streams each of the 4 cells exactly once");

  std::cout << (all_ok ? "race demo: OK\n" : "race demo: FAILED\n");
  return all_ok ? 0 : 1;
}
