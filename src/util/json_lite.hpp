#pragma once

/// \file json_lite.hpp
/// Minimal JSON reader for the repo's own machine-readable artifacts
/// (golden-result fixtures, perf-gate baselines).
///
/// This is deliberately not a general-purpose JSON library: it parses the
/// subset the repo's writers emit (objects, arrays, strings, finite numbers,
/// booleans, null) into a plain value tree, throws std::runtime_error with a
/// byte offset on malformed input, and has no dependencies beyond the
/// standard library. Writers stay hand-rolled (trace_json, metrics_io,
/// golden) — only the *read* side needs shared code.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rumr::util {

/// One parsed JSON value. A plain tagged struct, not an API to grow: the
/// fixture schemas are flat enough that callers just walk the tree.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (surrounding whitespace allowed). Throws
  /// std::runtime_error naming the byte offset on malformed input or
  /// trailing garbage.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Typed accessors; throw std::runtime_error on a kind mismatch.
  [[nodiscard]] double as_number() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup: nullptr when absent (or when this is not an
  /// object). Duplicate keys resolve to the first occurrence.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Object member that must exist; throws std::runtime_error naming the key.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend class JsonParser;
};

}  // namespace rumr::util
