#pragma once

/// \file json_lite.hpp
/// Minimal JSON reader *and* writer for the repo's own machine-readable
/// artifacts (golden-result fixtures, perf-gate baselines) and for the
/// rumr::serve wire protocol.
///
/// This is deliberately not a general-purpose JSON library: it parses the
/// subset the repo's writers emit (objects, arrays, strings, finite numbers,
/// booleans, null) into a plain value tree and has no dependencies beyond
/// the standard library. Since the serve daemon started putting parsed
/// documents on a network-shaped boundary, the reader is hardened for wire
/// use: every rejection throws a JsonError carrying a machine-readable
/// Kind (a truncated document is distinguishable from an oversized one or
/// from plain garbage), documents above a caller-set byte budget are
/// rejected before any allocation scales with them, and \uXXXX escapes
/// (including surrogate pairs) decode to UTF-8 instead of being rejected.
///
/// The writer side is the exact inverse: JsonValue factories build a tree
/// and dump() serializes it with full escaping — control characters and
/// non-ASCII text are emitted as \uXXXX escapes, so the output is always
/// 7-bit clean and parse(dump(v)) reproduces the tree. Numbers print with
/// std::to_chars shortest round-trip form, so serialization is
/// byte-deterministic across runs and platforms — the property the serve
/// plan cache's canonical keys and byte-identical responses rest on.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rumr::util {

/// Every failure mode of the reader/writer, machine-distinguishable so wire
/// code can answer "was this frame cut short or actually malformed?".
class JsonError : public std::runtime_error {
 public:
  enum class Kind {
    kTruncated,   ///< Input ended inside a value, string, or escape.
    kOversized,   ///< Document exceeds ParseLimits::max_bytes.
    kTooDeep,     ///< Nesting exceeds ParseLimits::max_depth.
    kMalformed,   ///< Syntax error (bad literal, bad escape, bad number, ...).
    kTrailing,    ///< Valid document followed by garbage.
    kType,        ///< Typed accessor used on the wrong kind.
    kMissingKey,  ///< at() on an absent object member.
  };

  JsonError(Kind kind, const std::string& what)
      : std::runtime_error("json_lite: " + what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Reader resource bounds. The defaults fit the repo's fixtures; wire
/// callers (serve/protocol) pass their own, tighter budget.
struct ParseLimits {
  std::size_t max_bytes = 64 * 1024 * 1024;  ///< Document size ceiling.
  int max_depth = 64;                        ///< Array/object nesting ceiling.
};

/// One parsed JSON value. A plain tagged struct, not an API to grow: the
/// fixture and wire schemas are flat enough that callers just walk the tree
/// (or build one with the factories and dump() it).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (surrounding whitespace allowed). Throws
  /// JsonError naming the byte offset and failure kind on malformed,
  /// truncated, oversized, or trailing-garbage input.
  [[nodiscard]] static JsonValue parse(std::string_view text) { return parse(text, ParseLimits{}); }
  [[nodiscard]] static JsonValue parse(std::string_view text, const ParseLimits& limits);

  // Writer-side factories ----------------------------------------------------

  [[nodiscard]] static JsonValue null();
  [[nodiscard]] static JsonValue boolean(bool v);
  /// Throws JsonError{kType} on a non-finite value — the wire format has no
  /// NaN/inf spelling, and silently emitting null would corrupt cache keys.
  [[nodiscard]] static JsonValue number(double v);
  [[nodiscard]] static JsonValue string(std::string v);
  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  /// Appends to an array (throws JsonError{kType} on any other kind).
  void push_back(JsonValue element);
  /// Appends a member to an object (throws JsonError{kType} otherwise).
  /// Keys are kept in insertion order — canonical writers insert in the
  /// canonical order and get canonical bytes out.
  void set(std::string key, JsonValue value);

  /// Serializes this value as one compact JSON document: no whitespace,
  /// object keys in insertion order, numbers in std::to_chars shortest
  /// round-trip form, strings escaped to 7-bit ASCII (control characters
  /// and non-ASCII as \uXXXX, invalid UTF-8 bytes as U+FFFD).
  [[nodiscard]] std::string dump() const;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Typed accessors; throw JsonError{kType} on a kind mismatch.
  [[nodiscard]] double as_number() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup: nullptr when absent (or when this is not an
  /// object). Duplicate keys resolve to the first occurrence.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Object member that must exist; throws JsonError{kMissingKey} naming it.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend class JsonParser;
};

/// Appends `text` to `out` as a quoted JSON string literal with the writer's
/// escaping rules (the building block dump() and the hand-rolled report
/// writers share).
void append_json_quoted(std::string& out, std::string_view text);

/// Appends `value` in std::to_chars shortest round-trip form. Throws
/// JsonError{kType} on non-finite input.
void append_json_number(std::string& out, double value);

}  // namespace rumr::util
