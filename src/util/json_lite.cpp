#include "util/json_lite.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>

namespace rumr::util {

namespace {

[[noreturn]] void fail(JsonError::Kind kind, std::size_t offset, const std::string& what) {
  throw JsonError(kind, what + " at byte " + std::to_string(offset));
}

/// Encodes one Unicode scalar value as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

void append_u16_escape(std::string& out, std::uint32_t unit) {
  constexpr char kHex[] = "0123456789abcdef";
  out += "\\u";
  out.push_back(kHex[(unit >> 12) & 0xF]);
  out.push_back(kHex[(unit >> 8) & 0xF]);
  out.push_back(kHex[(unit >> 4) & 0xF]);
  out.push_back(kHex[unit & 0xF]);
}

/// Decodes the UTF-8 sequence starting at text[i]; returns the scalar value
/// and advances i past it, or returns U+FFFD advancing one byte when the
/// sequence is invalid (overlong, truncated, surrogate, out of range).
std::uint32_t decode_utf8(std::string_view text, std::size_t& i) {
  const auto byte = [&](std::size_t k) -> std::uint32_t {
    return static_cast<unsigned char>(text[k]);
  };
  const std::uint32_t b0 = byte(i);
  std::size_t need = 0;
  std::uint32_t cp = 0;
  std::uint32_t min = 0;
  if (b0 < 0x80) {
    ++i;
    return b0;
  }
  if ((b0 & 0xE0) == 0xC0) {
    need = 1;
    cp = b0 & 0x1F;
    min = 0x80;
  } else if ((b0 & 0xF0) == 0xE0) {
    need = 2;
    cp = b0 & 0x0F;
    min = 0x800;
  } else if ((b0 & 0xF8) == 0xF0) {
    need = 3;
    cp = b0 & 0x07;
    min = 0x10000;
  } else {
    ++i;
    return 0xFFFD;
  }
  if (i + need >= text.size()) {
    // Not enough continuation bytes left.
    ++i;
    return 0xFFFD;
  }
  for (std::size_t k = 1; k <= need; ++k) {
    const std::uint32_t bk = byte(i + k);
    if ((bk & 0xC0) != 0x80) {
      ++i;
      return 0xFFFD;
    }
    cp = (cp << 6) | (bk & 0x3F);
  }
  i += need + 1;
  if (cp < min || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) return 0xFFFD;
  return cp;
}

}  // namespace

void append_json_quoted(std::string& out, std::string_view text) {
  out.push_back('"');
  std::size_t i = 0;
  while (i < text.size()) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    if (c < 0x20 || c == 0x7F) {
      append_u16_escape(out, c);
      ++i;
      continue;
    }
    if (c < 0x80) {
      out.push_back(static_cast<char>(c));
      ++i;
      continue;
    }
    // Non-ASCII: decode the UTF-8 sequence and escape the scalar, so the
    // emitted document is 7-bit clean regardless of the input encoding.
    const std::uint32_t cp = decode_utf8(text, i);
    if (cp < 0x10000) {
      append_u16_escape(out, cp);
    } else {
      const std::uint32_t v = cp - 0x10000;
      append_u16_escape(out, 0xD800 + (v >> 10));
      append_u16_escape(out, 0xDC00 + (v & 0x3FF));
    }
  }
  out.push_back('"');
}

void append_json_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    throw JsonError(JsonError::Kind::kType, "non-finite number has no JSON spelling");
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) {
    throw JsonError(JsonError::Kind::kType, "number formatting failed");
  }
  out.append(buf, ptr);
}

/// Recursive-descent parser over the input view. Depth is bounded to keep a
/// hostile (or corrupted) document from overflowing the stack.
class JsonParser {
 public:
  JsonParser(std::string_view text, const ParseLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue run() {
    if (text_.size() > limits_.max_bytes) {
      throw JsonError(JsonError::Kind::kOversized,
                      "document of " + std::to_string(text_.size()) +
                          " bytes exceeds the " + std::to_string(limits_.max_bytes) +
                          "-byte limit");
    }
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail(JsonError::Kind::kTrailing, pos_, "trailing garbage after document");
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail(JsonError::Kind::kTruncated, pos_, "unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(JsonError::Kind::kMalformed, pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value(int depth) {
    if (depth > limits_.max_depth) fail(JsonError::Kind::kTooDeep, pos_, "nesting too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.kind_ = JsonValue::Kind::kObject;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        for (;;) {
          skip_ws();
          std::string key = string_body();
          skip_ws();
          expect(':');
          v.object_.emplace_back(std::move(key), value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.kind_ = JsonValue::Kind::kArray;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        for (;;) {
          v.array_.push_back(value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = string_body();
        return v;
      case 't':
        if (!consume_literal("true")) fail(JsonError::Kind::kMalformed, pos_, "bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail(JsonError::Kind::kMalformed, pos_, "bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail(JsonError::Kind::kMalformed, pos_, "bad literal");
        v.kind_ = JsonValue::Kind::kNull;
        return v;
      default:
        v.kind_ = JsonValue::Kind::kNumber;
        v.number_ = number_body();
        return v;
    }
  }

  /// Reads exactly four hex digits of a \u escape's code unit.
  std::uint32_t hex4() {
    if (pos_ + 4 > text_.size()) {
      fail(JsonError::Kind::kTruncated, pos_, "unterminated \\u escape");
    }
    std::uint32_t unit = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text_[pos_++];
      unit <<= 4;
      if (c >= '0' && c <= '9') {
        unit |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        unit |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        unit |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail(JsonError::Kind::kMalformed, pos_ - 1, "bad hex digit in \\u escape");
      }
    }
    return unit;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail(JsonError::Kind::kTruncated, pos_, "unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail(JsonError::Kind::kTruncated, pos_, "unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          const std::size_t unit_at = pos_ - 2;
          std::uint32_t cp = hex4();
          if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(JsonError::Kind::kMalformed, unit_at, "lone low surrogate");
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              fail(JsonError::Kind::kMalformed, unit_at, "unpaired high surrogate");
            }
            pos_ += 2;
            const std::uint32_t low = hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail(JsonError::Kind::kMalformed, unit_at, "unpaired high surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default: fail(JsonError::Kind::kMalformed, pos_ - 1, "unsupported escape");
      }
    }
  }

  double number_body() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc() || ptr != text_.data() + pos_ || !std::isfinite(out)) {
      fail(JsonError::Kind::kMalformed, start, "malformed number");
    }
    return out;
  }

  std::string_view text_;
  ParseLimits limits_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text, const ParseLimits& limits) {
  return JsonParser(text, limits).run();
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::number(double v) {
  if (!std::isfinite(v)) {
    throw JsonError(JsonError::Kind::kType, "non-finite number has no JSON spelling");
  }
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::array() {
  JsonValue out;
  out.kind_ = Kind::kArray;
  return out;
}

JsonValue JsonValue::object() {
  JsonValue out;
  out.kind_ = Kind::kObject;
  return out;
}

void JsonValue::push_back(JsonValue element) {
  if (kind_ != Kind::kArray) {
    throw JsonError(JsonError::Kind::kType, "push_back on a non-array value");
  }
  array_.push_back(std::move(element));
}

void JsonValue::set(std::string key, JsonValue value) {
  if (kind_ != Kind::kObject) {
    throw JsonError(JsonError::Kind::kType, "set on a non-object value");
  }
  object_.emplace_back(std::move(key), std::move(value));
}

std::string JsonValue::dump() const {
  std::string out;
  // Serialize iteratively-recursively; the tree depth is parser-bounded (or
  // writer-controlled), so plain recursion is safe here.
  struct Dumper {
    static void emit(std::string& out, const JsonValue& v) {
      switch (v.kind_) {
        case Kind::kNull: out += "null"; return;
        case Kind::kBool: out += v.bool_ ? "true" : "false"; return;
        case Kind::kNumber: append_json_number(out, v.number_); return;
        case Kind::kString: append_json_quoted(out, v.string_); return;
        case Kind::kArray: {
          out.push_back('[');
          for (std::size_t i = 0; i < v.array_.size(); ++i) {
            if (i > 0) out.push_back(',');
            emit(out, v.array_[i]);
          }
          out.push_back(']');
          return;
        }
        case Kind::kObject: {
          out.push_back('{');
          for (std::size_t i = 0; i < v.object_.size(); ++i) {
            if (i > 0) out.push_back(',');
            append_json_quoted(out, v.object_[i].first);
            out.push_back(':');
            emit(out, v.object_[i].second);
          }
          out.push_back('}');
          return;
        }
      }
    }
  };
  Dumper::emit(out, *this);
  return out;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw JsonError(JsonError::Kind::kType, "value is not a number");
  return number_;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonError(JsonError::Kind::kType, "value is not a bool");
  return bool_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw JsonError(JsonError::Kind::kType, "value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw JsonError(JsonError::Kind::kType, "value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw JsonError(JsonError::Kind::kType, "value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw JsonError(JsonError::Kind::kMissingKey, "missing key '" + std::string(key) + "'");
  }
  return *v;
}

}  // namespace rumr::util
