#include "util/json_lite.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace rumr::util {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::runtime_error("json_lite: " + what + " at byte " + std::to_string(offset));
}

}  // namespace

/// Recursive-descent parser over the input view. Depth is bounded to keep a
/// hostile (or corrupted) fixture from overflowing the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.kind_ = JsonValue::Kind::kObject;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        for (;;) {
          skip_ws();
          std::string key = string_body();
          skip_ws();
          expect(':');
          v.object_.emplace_back(std::move(key), value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.kind_ = JsonValue::Kind::kArray;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        for (;;) {
          v.array_.push_back(value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = string_body();
        return v;
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        v.kind_ = JsonValue::Kind::kNull;
        return v;
      default:
        v.kind_ = JsonValue::Kind::kNumber;
        v.number_ = number_body();
        return v;
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        // The repo's writers never emit \u escapes; reject rather than
        // silently mangle.
        default: fail(pos_ - 1, "unsupported escape");
      }
    }
  }

  double number_body() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc() || ptr != text_.data() + pos_ || !std::isfinite(out)) {
      fail(start, "malformed number");
    }
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) { return JsonParser(text).run(); }

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json_lite: value is not a number");
  return number_;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json_lite: value is not a bool");
  return bool_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json_lite: value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json_lite: value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json_lite: value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json_lite: missing key '" + std::string(key) + "'");
  }
  return *v;
}

}  // namespace rumr::util
