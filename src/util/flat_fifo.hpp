#pragma once

/// \file flat_fifo.hpp
/// Small contiguous FIFO queue.
///
/// The simulation engine keeps several short queues per worker (buffered
/// chunks, in-flight dispatch records, pending output transfers). Each holds
/// at most a handful of elements, but std::deque allocates a ~0.5 KB chunk
/// the moment it is constructed — and a sweep constructs five queues per
/// worker per run, so those dead allocations dominate engine setup cost.
///
/// FlatFifo stores elements in one std::vector and pops by advancing a head
/// index, compacting (cheaply, via clear) whenever the queue drains. A queue
/// therefore allocates at most once per run and stays cache-resident; memory
/// between drains is bounded by the number of pushes, which the engine's
/// buffer capacities keep small.

#include <cstddef>
#include <utility>
#include <vector>

namespace rumr::util {

template <typename T>
class FlatFifo {
 public:
  using iterator = typename std::vector<T>::iterator;
  using const_iterator = typename std::vector<T>::const_iterator;

  FlatFifo() = default;
  FlatFifo(const FlatFifo&) = default;
  FlatFifo& operator=(const FlatFifo&) = default;

  // Explicit moves: the implicit ones would empty items_ but keep the
  // source's head index, leaving a moved-from queue with a broken invariant.
  FlatFifo(FlatFifo&& other) noexcept
      : items_(std::move(other.items_)), head_(other.head_) {
    other.clear();
  }
  FlatFifo& operator=(FlatFifo&& other) noexcept {
    if (this != &other) {
      items_ = std::move(other.items_);
      head_ = other.head_;
      other.clear();
    }
    return *this;
  }

  void push_back(const T& value) { items_.push_back(value); }
  void push_back(T&& value) { items_.push_back(std::move(value)); }

  [[nodiscard]] bool empty() const noexcept { return head_ == items_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size() - head_; }

  [[nodiscard]] T& front() { return items_[head_]; }
  [[nodiscard]] const T& front() const { return items_[head_]; }

  [[nodiscard]] T& back() { return items_.back(); }
  [[nodiscard]] const T& back() const { return items_.back(); }

  /// Removes the front element. O(1); storage is reclaimed (capacity kept)
  /// once the queue drains empty.
  void pop_front() {
    if (++head_ == items_.size()) clear();
  }

  /// Removes the element at `it` (from begin()..end()), preserving order.
  iterator erase(iterator it) {
    iterator next = items_.erase(it);
    if (head_ == items_.size()) clear();
    return next;
  }

  void clear() noexcept {
    items_.clear();
    head_ = 0;
  }

  [[nodiscard]] iterator begin() noexcept {
    return items_.begin() + static_cast<std::ptrdiff_t>(head_);
  }
  [[nodiscard]] iterator end() noexcept { return items_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept {
    return items_.begin() + static_cast<std::ptrdiff_t>(head_);
  }
  [[nodiscard]] const_iterator end() const noexcept { return items_.end(); }

 private:
  std::vector<T> items_;
  std::size_t head_ = 0;  ///< Index of the front element; items before it are dead.
};

}  // namespace rumr::util
