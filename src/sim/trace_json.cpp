#include "sim/trace_json.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

namespace rumr::sim {

namespace {

const char* span_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kUplink:
      return "send";
    case SpanKind::kTail:
      return "tail";
    case SpanKind::kCompute:
      return "compute";
    case SpanKind::kOutput:
      return "output";
    case SpanKind::kAborted:
      return "aborted";
    case SpanKind::kDown:
      return "down";
  }
  return "span";
}

long long span_tid(const TraceSpan& span) {
  switch (span.kind) {
    case SpanKind::kUplink:
      return 0;
    case SpanKind::kOutput:
      return 1;
    case SpanKind::kTail:
    case SpanKind::kCompute:
    case SpanKind::kAborted:
    case SpanKind::kDown:
      return 10 + static_cast<long long>(span.worker);
  }
  return 0;
}

}  // namespace

std::string to_chrome_tracing(const Trace& trace) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : trace.spans()) {
    if (!first) out << ',';
    first = false;
    const double ts_us = span.start * 1e6;
    const double dur_us = std::max(0.0, span.end - span.start) * 1e6;
    out << "{\"name\":\"" << span_name(span.kind) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
        << span_tid(span) << ",\"ts\":" << ts_us << ",\"dur\":" << dur_us
        << ",\"args\":{\"worker\":" << span.worker << ",\"chunk\":" << span.chunk << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool save_chrome_tracing(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_chrome_tracing(trace);
  return static_cast<bool>(out);
}

}  // namespace rumr::sim
