#include "sim/master_worker.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <utility>
#include <limits>
#include <sstream>

#include "check/check.hpp"
#include "util/flat_fifo.hpp"
#include "des/simulator.hpp"
#include "obs/probe.hpp"
#include "stats/rng.hpp"

namespace rumr::sim {

double SimResult::mean_worker_utilization() const {
  if (workers.empty() || makespan <= 0.0) return 0.0;
  double total = 0.0;
  for (const WorkerOutcome& w : workers) total += w.busy_time / makespan;
  return total / static_cast<double>(workers.size());
}

std::vector<std::string> SimOptions::validate() const {
  std::vector<std::string> errors;
  if (worker_buffer_capacity == 0) {
    errors.emplace_back(
        "worker_buffer_capacity must be >= 1 (1 models the double-buffered "
        "front-end; SIZE_MAX disables blocking)");
  }
  if (uplink_channels == 0) errors.emplace_back("uplink_channels must be >= 1");
  if (output_ratio < 0.0 || !std::isfinite(output_ratio)) {
    errors.emplace_back("output_ratio must be non-negative and finite");
  }
  if (!(work_tolerance > 0.0) || !std::isfinite(work_tolerance)) {
    errors.emplace_back("work_tolerance must be positive and finite");
  }
  if (faults.enabled() || link.enabled() || retransmit.enabled) {
    if (!(fault_tolerance.timeout_slack > 1.0) || !std::isfinite(fault_tolerance.timeout_slack)) {
      errors.emplace_back("fault_tolerance.timeout_slack must be > 1 and finite");
    }
    if (!(fault_tolerance.backoff_base >= 0.0) || !(fault_tolerance.backoff_factor >= 1.0) ||
        !(fault_tolerance.backoff_max >= 0.0)) {
      errors.emplace_back("fault_tolerance backoff parameters are malformed");
    }
  }
  if (link.loss < 0.0 || link.loss > 1.0) errors.emplace_back("link.loss must be in [0, 1]");
  if (link.spike_probability < 0.0 || link.spike_probability > 1.0) {
    errors.emplace_back("link.spike_probability must be in [0, 1]");
  }
  if (!(link.spike_mean >= 0.0) || !std::isfinite(link.spike_mean)) {
    errors.emplace_back("link.spike_mean must be non-negative and finite");
  }
  if (!(link.degraded_mtbf >= 0.0) || !std::isfinite(link.degraded_mtbf) ||
      !(link.degraded_mttr >= 0.0) || !std::isfinite(link.degraded_mttr) ||
      !(link.degraded_factor >= 1.0) || !std::isfinite(link.degraded_factor)) {
    errors.emplace_back(
        "link degradation parameters are malformed (mtbf/mttr >= 0, factor >= 1, all finite)");
  }
  if (retransmit.enabled) {
    if (!(retransmit.alpha > 0.0) || !(retransmit.alpha < 1.0) || !(retransmit.beta > 0.0) ||
        !(retransmit.beta < 1.0)) {
      errors.emplace_back("retransmit alpha and beta must be in (0, 1)");
    }
    if (!(retransmit.k > 0.0) || !std::isfinite(retransmit.k)) {
      errors.emplace_back("retransmit.k must be positive and finite");
    }
    if (!(retransmit.rto_min > 0.0) || !std::isfinite(retransmit.rto_min)) {
      errors.emplace_back("retransmit.rto_min must be positive and finite");
    }
    if (!(retransmit.rto_initial_factor >= 1.0) || !std::isfinite(retransmit.rto_initial_factor)) {
      errors.emplace_back("retransmit.rto_initial_factor must be >= 1 and finite");
    }
    if (retransmit.max_retries == 0) {
      errors.emplace_back("retransmit.max_retries must be >= 1");
    }
  }
  if (!(checkpoint.interval >= 0.0) || !std::isfinite(checkpoint.interval)) {
    errors.emplace_back("checkpoint.interval must be non-negative and finite");
  }
  return errors;
}

namespace {

/// A chunk sitting in a worker's receive queue, waiting for the CPU.
struct QueuedChunk {
  double chunk = 0.0;
  double predicted_comp = 0.0;
  std::uint64_t lease = 0;  ///< Matches its DispatchRecord (faults only).
};

/// Master-side lease record for one dispatched, not-yet-completed chunk.
/// The completion-timeout watchdog is armed from the head record; at a fence
/// all of a worker's records are reclaimed into the re-dispatch pool.
struct DispatchRecord {
  double chunk = 0.0;
  des::SimTime predicted_completion = 0.0;  ///< Model-predicted finish time.
  double predicted_comp = 0.0;              ///< Model-predicted compute duration.
  /// Unique per dispatch. A completion settles the record with the matching
  /// lease, not the head: when an outage drops an earlier delivery, the
  /// worker computes later chunks first, and popping FIFO would reclaim (and
  /// recompute) a chunk that already completed.
  std::uint64_t lease = 0;

  // Retransmit-protocol state (meaningful only when retransmit is enabled).
  des::SimTime dispatched_at = 0.0;  ///< First send start: RTT anchor.
  double rto = 0.0;                  ///< Current retransmission timeout.
  std::size_t attempts = 1;          ///< Payload sends so far (1 = original).
  bool acked = false;                ///< First ACK seen; retransmission stops.
  bool retransmitted = false;        ///< Karn's rule: ACKs give no RTT sample.
  des::EventId retx_event = 0;       ///< Pending retransmission timer.
};

/// A payload awaiting retransmission (its timer fired while the uplink was
/// busy, or it is queued behind other re-sends).
struct RetxItem {
  std::size_t worker = 0;
  std::uint64_t lease = 0;
};

/// The computation a worker is currently running — what partial-work
/// checkpointing banks from when the computation is aborted.
struct ActiveCompute {
  std::uint64_t lease = 0;
  double chunk = 0.0;
  double actual_comp = 0.0;     ///< Perturbed (true) duration of the whole chunk.
  des::SimTime started = 0.0;
};

/// RFC6298-style smoothed estimator: SRTT + RTTVAR over a stream of samples.
/// Used twice — over payload->ACK round trips (retransmission timeout) and
/// over completion-time inflation ratios (adaptive fencing watchdog).
struct SmoothedEstimator {
  bool has_sample = false;
  double srtt = 0.0;
  double rttvar = 0.0;

  void sample(double value, double alpha, double beta) {
    if (!has_sample) {
      srtt = value;
      rttvar = value / 2.0;
      has_sample = true;
    } else {
      rttvar = (1.0 - beta) * rttvar + beta * std::abs(srtt - value);
      srtt = (1.0 - alpha) * srtt + alpha * value;
    }
  }
};

/// A reclaimed chunk awaiting re-dispatch. `was_dispatched` is false for a
/// chunk reclaimed from a blocked (never-sent) rendezvous send: it has not
/// been counted in work_dispatched_ yet, so sending it is a first dispatch,
/// not a re-dispatch.
struct RedispatchItem {
  double chunk = 0.0;
  bool was_dispatched = true;
};

/// Full engine state; implements the policy-visible MasterContext view.
class Engine final : public MasterContext {
 public:
  Engine(const platform::StarPlatform& platform, SchedulerPolicy& policy,
         const SimOptions& options)
      : platform_(platform),
        policy_(policy),
        options_(options),
        rng_(options.seed),
        comm_process_(options.comm_error),
        comp_process_(options.comp_error),
        status_(platform.size()),
        outcomes_(platform.size()),
        queues_(platform.size()),
        computing_(platform.size(), false),
        in_flight_(platform.size(), 0),
        pending_pred_comp_(platform.size()),
        faults_on_(options.faults.enabled()),
        ground_alive_(platform.size(), true),
        believed_down_(platform.size(), false),
        down_since_(platform.size(), 0.0),
        fault_event_(platform.size(), 0),
        rejoin_event_(platform.size(), 0),
        timeout_event_(platform.size(), 0),
        compute_event_(platform.size(), 0),
        compute_span_(platform.size(), kNoSpan),
        blacklist_until_(platform.size(), 0.0),
        suspicions_(platform.size(), 0),
        lease_epoch_(platform.size(), 0),
        dispatch_records_(platform.size()),
        probe_(platform.size()),
        chunk_hist_(obs::Histogram::exponential(kChunkHistFirstEdge, 2.0, kHistBuckets)),
        comp_hist_(obs::Histogram::exponential(kCompHistFirstEdge, 2.0, kHistBuckets)) {
    if (const std::vector<std::string> errors = options.validate(); !errors.empty()) {
      std::string joined = "invalid SimOptions:";
      for (const std::string& e : errors) joined += "\n  - " + e;
      throw SimError(joined);
    }
    // No observer is attached: the kernel maintains every metric we report
    // (schedule/execute/cancel counts, queue-depth high-water) natively, so
    // the DES hot path runs with its observer branch never taken.
    if (faults_on_) {
      // Throws std::invalid_argument on a malformed FaultSpec.
      timeline_ = faults::FaultTimeline(options.faults, platform.size(), options.seed);
    }
    // The recovery machinery (leases, watchdog, re-dispatch) arms whenever
    // anything can take a dispatched chunk away from its worker: worker
    // faults, a faulty link, or the retransmit protocol itself. With all
    // three disabled the whole layer is inert — zero events, zero RNG draws.
    link_on_ = options.link.enabled();
    retransmit_on_ = options.retransmit.enabled;
    checkpoint_on_ = options.checkpoint.interval > 0.0;
    recovery_on_ = faults_on_ || link_on_ || retransmit_on_;
    if (link_on_) {
      // Dedicated per-worker message lanes; never touches rng_.
      link_ = faults::LinkTimeline(options.link, platform.size(), options.seed);
    }
    if (recovery_on_) active_.resize(platform.size());
    if (retransmit_on_) {
      reserved_.assign(platform.size(), 0);
      accepted_leases_.resize(platform.size());
      rtt_.resize(platform.size());
      ratio_.resize(platform.size());
    }
    timeout_hist_ = obs::Histogram::exponential(kTimeoutHistFirstEdge, 2.0, kTimeoutHistBuckets);
    rto_hist_ = obs::Histogram::exponential(kTimeoutHistFirstEdge, 2.0, kTimeoutHistBuckets);
  }

  // MasterContext -----------------------------------------------------------
  [[nodiscard]] des::SimTime now() const override { return sim_.now(); }
  [[nodiscard]] const platform::StarPlatform& platform() const override { return platform_; }
  [[nodiscard]] std::size_t num_workers() const override { return platform_.size(); }
  [[nodiscard]] const WorkerStatus& worker_status(std::size_t i) const override {
    return status_.at(i);
  }
  [[nodiscard]] bool can_receive(std::size_t i) const override {
    return committed_slots(i) < options_.worker_buffer_capacity;
  }

  SimResult run() {
    // rumr-lint: allow(wall-clock) obs events/sec throughput metric only; never feeds simulated state
    const auto wall_start = std::chrono::steady_clock::now();
    if (faults_on_) {
      for (std::size_t w = 0; w < platform_.size(); ++w) schedule_ground_fault(w, 0.0);
    }
    try_dispatch();
    if (recovery_on_) maybe_finish();  // Zero-work edge: nothing was ever pending.
    const std::size_t budget =
        options_.max_events > 0 ? options_.max_events : des::Simulator::kDefaultMaxEvents;
    sim_.run(budget);
    if (sim_.events_pending() > 0) {
      std::ostringstream msg;
      msg << "policy '" << policy_.name() << "' exhausted the event budget (" << budget
          << " events) at t=" << sim_.now() << " with " << sim_.events_pending()
          << " events pending — the run is not converging (livelock or runaway fault churn)";
      describe_workers(msg);
      throw SimError(msg.str());
    }
    const double wall_seconds =
        // rumr-lint: allow(wall-clock) closes the obs events/sec measurement opened above
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    finalize_checks();

    // Close the Gantt row of workers that never recovered: their outage
    // interval extends past the end of the run.
    if (faults_on_ && options_.record_trace) {
      for (std::size_t w = 0; w < platform_.size(); ++w) {
        if (!ground_alive_[w]) {
          trace_.add({SpanKind::kDown, w, 0.0, down_since_[w],
                      std::max(makespan_, down_since_[w])});
        }
      }
    }

    SimResult result;
    result.makespan = makespan_;
    result.chunks_dispatched = chunks_dispatched_;
    result.work_dispatched = work_dispatched_;
    result.uplink_busy_time = uplink_busy_time_;
    result.downlink_busy_time = downlink_busy_time_;
    result.events = sim_.events_processed();
    result.workers = outcomes_;
    result.faults = fstats_;
    result.metrics = collect_metrics(wall_seconds);
    result.metrics.engine.mean_worker_utilization = result.mean_worker_utilization();
    result.trace = std::move(trace_);
    return result;
  }

 private:
  /// Buffer slots committed at worker w: chunks received but not yet
  /// computing, plus chunks in flight toward it. In retransmit mode the
  /// in-flight term is replaced by the per-lease reservation count — a lost
  /// payload keeps its slot reserved until the retransmission lands (or the
  /// worker is fenced), so re-sends can never overcommit the buffer.
  [[nodiscard]] std::size_t committed_slots(std::size_t w) const {
    return queues_[w].size() + (retransmit_on_ ? reserved_[w] : in_flight_[w]);
  }

  /// Packages the probes' accounting into the RunMetrics record. Closes the
  /// probes at the makespan and moves the histograms out — call once, at the
  /// end of run().
  [[nodiscard]] obs::RunMetrics collect_metrics(double wall_seconds) {
    obs::RunMetrics m;
    m.makespan = makespan_;

    m.des.events_scheduled = sim_.events_scheduled();
    m.des.events_executed = sim_.events_processed();
    m.des.events_cancelled = sim_.events_cancelled();
    m.des.queue_depth_high_water = sim_.queue_depth_high_water();
    m.des.wall_seconds = wall_seconds;
    m.des.events_per_second =
        wall_seconds > 0.0 ? static_cast<double>(sim_.events_processed()) / wall_seconds : 0.0;

    m.engine.workers = probe_.finish(makespan_);
    m.engine.uplink_busy_time = probe_.uplink_busy_time();
    m.engine.uplink_idle_time = probe_.uplink_idle_time();
    m.engine.uplink_utilization =
        makespan_ > 0.0 ? probe_.uplink_busy_time() / makespan_ : 0.0;
    m.engine.uplink_transfer_time = uplink_busy_time_;
    m.engine.downlink_busy_time = downlink_busy_time_;
    m.engine.hol_blocking_time = probe_.hol_blocking_time();
    m.engine.dispatches = chunks_dispatched_;
    for (const obs::WorkerSpans& ws : m.engine.workers) m.engine.completions += ws.completions;
    m.engine.redispatches = fstats_.chunks_redispatched;
    m.engine.work_dispatched = work_dispatched_;
    m.engine.work_redispatched = fstats_.work_redispatched;
    m.engine.chunk_sizes = std::move(chunk_hist_);
    m.engine.compute_durations = std::move(comp_hist_);
    m.engine.timeout_windows = std::move(timeout_hist_);
    m.engine.rto_values = std::move(rto_hist_);

    m.faults.failures = fstats_.failures;
    m.faults.recoveries = fstats_.recoveries;
    m.faults.fencings = fstats_.suspicions;
    m.faults.false_suspicions = false_suspicions_;
    m.faults.backoff_retries = backoff_retries_;
    m.faults.rejoins = fstats_.rejoins;
    m.faults.chunks_lost = fstats_.chunks_lost;
    m.faults.chunks_redispatched = fstats_.chunks_redispatched;
    m.faults.messages_lost = fstats_.messages_lost;
    m.faults.latency_spikes = fstats_.latency_spikes;
    m.faults.degraded_sends = fstats_.degraded_sends;
    m.faults.retransmits = fstats_.retransmits;
    m.faults.work_retransmitted = fstats_.work_retransmitted;
    m.faults.duplicates_suppressed = fstats_.duplicates_suppressed;
    m.faults.checkpoints_banked = fstats_.checkpoints_banked;
    m.faults.work_banked = fstats_.work_banked;
    return m;
  }

  // Fault layer ------------------------------------------------------------
  //
  // Two views of worker availability are kept strictly separate:
  //   - ground truth (ground_alive_, driven by the FaultTimeline), which only
  //     the physical event handlers consult, and
  //   - the master's belief (believed_down_ / WorkerStatus::alive), which
  //     changes only through the completion-timeout watchdog (fence) and the
  //     post-backoff rejoin — never by peeking at ground truth.

  /// Schedules the worker's next ground-truth failure at/after `from`.
  void schedule_ground_fault(std::size_t w, des::SimTime from) {
    const std::optional<faults::Outage> outage = timeline_.next_outage(w, from);
    if (!outage) return;
    const des::SimTime at = std::max(outage->down, from);
    fault_event_[w] = sim_.schedule_at(at, [this, w, o = *outage] {
      fault_event_[w] = 0;
      ground_down(w, o);
    });
  }

  /// Ground truth: worker w crashes. Everything it holds — queued chunks and
  /// the computation in progress — is lost. The master is NOT told; it finds
  /// out when the completion-timeout fires.
  void ground_down(std::size_t w, const faults::Outage& o) {
    ground_alive_[w] = false;
    down_since_[w] = sim_.now();
    ++fstats_.failures;
    queues_[w].clear();
    abort_compute(w);
    probe_.worker_down(w, sim_.now());
    if (!o.permanent()) {
      fault_event_[w] = sim_.schedule_at(o.up, [this, w] {
        fault_event_[w] = 0;
        ground_up(w);
      });
    }
  }

  /// Ground truth: worker w recovers (empty-handed). If the master had
  /// fenced it, the worker pings the master and is re-admitted once its
  /// blacklist backoff expires.
  void ground_up(std::size_t w) {
    ground_alive_[w] = true;
    ++fstats_.recoveries;
    probe_.worker_up(w, sim_.now());
    if (options_.record_trace) {
      trace_.add({SpanKind::kDown, w, 0.0, down_since_[w], sim_.now()});
    }
    if (believed_down_[w]) schedule_rejoin(w);
    schedule_ground_fault(w, sim_.now());
  }

  /// Cuts short the computation in progress at w (if any). With partial-work
  /// checkpointing the banked fraction survives (the lease's dispatch record
  /// shrinks to the remainder); the rest is discarded. The trace span is
  /// truncated and re-labeled.
  void abort_compute(std::size_t w) {
    if (!computing_[w]) return;
    computing_[w] = false;
    if (checkpoint_on_) bank_progress(w);
    if (recovery_on_) active_[w] = ActiveCompute{};
    probe_.compute_abort(w, sim_.now());
    sim_.cancel(compute_event_[w]);
    compute_event_[w] = 0;
    if (options_.record_trace && compute_span_[w] != kNoSpan) {
      trace_.truncate(compute_span_[w], sim_.now(), SpanKind::kAborted);
    }
    compute_span_[w] = kNoSpan;
  }

  /// The master-side lease record with this id, or nullptr once settled.
  [[nodiscard]] DispatchRecord* find_record(std::size_t w, std::uint64_t lease) {
    for (DispatchRecord& rec : dispatch_records_[w]) {
      if (rec.lease == lease) return &rec;
    }
    return nullptr;
  }

  /// Partial-work checkpointing: the aborted computation banked the fraction
  /// of its chunk completed by the last checkpoint tick. The banked work is
  /// final — the lease's dispatch record is reduced to the remainder, so a
  /// later fence reclaims (and re-dispatches) only what was actually lost.
  void bank_progress(std::size_t w) {
    const ActiveCompute& ac = active_[w];
    if (!(ac.actual_comp > 0.0)) return;
    const double interval = options_.checkpoint.interval;
    const double elapsed = sim_.now() - ac.started;
    const double ticks = std::floor(elapsed / interval);
    if (ticks <= 0.0) return;
    // Cap strictly below the whole chunk: an abort racing the completion
    // event at the same timestamp must still leave a positive remainder to
    // re-dispatch.
    const double fraction = std::min(ticks * interval / ac.actual_comp, 1.0 - 1e-9);
    const double banked = ac.chunk * fraction;
    if (!(banked > 0.0)) return;
    DispatchRecord* rec = find_record(w, ac.lease);
    RUMR_CHECK(rec != nullptr, "banked progress for a lease with no dispatch record");
    if (rec == nullptr) return;
    rec->chunk -= banked;
    ++fstats_.checkpoints_banked;
    fstats_.work_banked += banked;
  }

  /// Schedules re-admission of a fenced worker at the end of its blacklist
  /// window. Deduplicated: at most one rejoin event per worker.
  void schedule_rejoin(std::size_t w) {
    if (rejoin_event_[w] != 0) return;
    ++backoff_retries_;
    const des::SimTime at = std::max(sim_.now(), blacklist_until_[w]);
    rejoin_event_[w] = sim_.schedule_at(at, [this, w] {
      rejoin_event_[w] = 0;
      try_rejoin(w);
    });
  }

  void try_rejoin(std::size_t w) {
    // A worker that went down again before its backoff expired re-pings on
    // its next recovery (ground_up re-checks believed_down_).
    if (work_all_done_ || !believed_down_[w] || !ground_alive_[w]) return;
    believed_down_[w] = false;
    WorkerStatus& st = status_[w];
    st.alive = true;
    st.predicted_ready = sim_.now();
    ++fstats_.rejoins;
    policy_.on_worker_up(*this, w);
    try_dispatch();
  }

  /// Arms the completion-timeout watchdog for w's oldest outstanding chunk:
  /// if no completion arrives within timeout_slack times the predicted
  /// remaining duration, the worker is presumed lost. One timer per worker.
  void arm_timeout(std::size_t w) {
    if (!recovery_on_ || timeout_event_[w] != 0 || dispatch_records_[w].empty()) return;
    const DispatchRecord& head = dispatch_records_[w].front();
    // The floor of one predicted compute time keeps the window sane when the
    // prediction is already overdue (predicted_completion < now).
    const double remaining =
        std::max(head.predicted_completion - sim_.now(), head.predicted_comp);
    // With the retransmit protocol the fixed timeout_slack is only the
    // bootstrap: once this worker has completion history, the EWMA + variance
    // of its observed completion-time inflation (actual round trip over
    // predicted, RFC6298 shape) sets the slack adaptively.
    double slack = options_.fault_tolerance.timeout_slack;
    if (retransmit_on_ && ratio_[w].has_sample) {
      slack = std::max(kAdaptiveSlackFloor,
                       ratio_[w].srtt + options_.retransmit.k * ratio_[w].rttvar);
    }
    const double window = slack * remaining;
    timeout_hist_.add(window);
    const des::SimTime deadline = sim_.now() + window;
    timeout_event_[w] = sim_.schedule_at(deadline, [this, w] {
      timeout_event_[w] = 0;
      fence(w);
    });
  }

  /// The completion-timeout fired: the master fences w. The fence is
  /// authoritative — the worker's lease is revoked (late arrivals from
  /// before the fence are discarded via the lease epoch), every outstanding
  /// chunk is reclaimed into the re-dispatch pool, and the worker is
  /// blacklisted with exponential backoff before it may rejoin.
  void fence(std::size_t w) {
    WorkerStatus& st = status_[w];
    ++fstats_.suspicions;
    ++suspicions_[w];
    st.alive = false;
    st.suspected = true;
    st.suspicions = suspicions_[w];
    believed_down_[w] = true;

    const auto& ft = options_.fault_tolerance;
    const double backoff =
        std::min(ft.backoff_max,
                 ft.backoff_base *
                     std::pow(ft.backoff_factor, static_cast<double>(suspicions_[w] - 1)));
    blacklist_until_[w] = sim_.now() + backoff;

    // Abort the running computation *before* reclaiming the records: with
    // checkpointing on, the abort banks the completed fraction and shrinks
    // the matching record, so the loop below reclaims only the remainder.
    abort_compute(w);
    for (DispatchRecord& rec : dispatch_records_[w]) {
      if (rec.retx_event != 0) {
        sim_.cancel(rec.retx_event);
        rec.retx_event = 0;
      }
      redispatch_queue_.push_back({rec.chunk, true});
      ++fstats_.chunks_lost;
      fstats_.work_lost += rec.chunk;
    }
    dispatch_records_[w].clear();
    st.outstanding = 0;
    pending_pred_comp_[w].clear();
    st.predicted_ready = sim_.now();
    ++lease_epoch_[w];
    queues_[w].clear();
    if (retransmit_on_) {
      // Every reservation belonged to a reclaimed lease; the epoch bump
      // makes old leases unreachable, so the suppression set can be dropped.
      reserved_[w] = 0;
      accepted_leases_[w].clear();
    }

    // A rendezvous send blocked on this worker is reclaimed too. It was
    // never counted as dispatched (begin_send did not run), so it re-enters
    // the pool as a first dispatch, not a re-dispatch.
    if (pending_send_ && pending_send_->worker == w) {
      redispatch_queue_.push_back({pending_send_->chunk, false});
      pending_send_.reset();
      RUMR_CHECK(busy_channels_ > 0, "blocked send reclaimed with no channel held");
      --busy_channels_;
      probe_.uplink_channels(busy_channels_, sim_.now());
      probe_.block_end(sim_.now());
    }

    if (ground_alive_[w]) {
      // False positive: the worker is actually up (prediction-error artifact)
      // and can re-ping after its backoff.
      ++false_suspicions_;
      schedule_rejoin(w);
    }
    policy_.on_worker_down(*this, w);
    try_dispatch();
  }

  /// Sends reclaimed chunks to the best believed-alive worker (lowest
  /// predicted_ready, ties to the lowest index) that can receive right now.
  /// Re-dispatches take priority over fresh policy dispatches.
  void drain_redispatch() {
    while (busy_channels_ < options_.uplink_channels && !pending_send_ &&
           !redispatch_queue_.empty()) {
      std::optional<std::size_t> target;
      for (std::size_t w = 0; w < platform_.size(); ++w) {
        if (believed_down_[w] || !can_receive(w)) continue;
        if (!target || status_[w].predicted_ready < status_[*target].predicted_ready) {
          target = w;
        }
      }
      if (!target) return;  // Retried when a buffer slot or worker frees up.
      const RedispatchItem item = redispatch_queue_.front();
      redispatch_queue_.pop_front();
      if (item.was_dispatched) {
        ++fstats_.chunks_redispatched;
        fstats_.work_redispatched += item.chunk;
      }
      begin_send({*target, item.chunk});
    }
  }

  /// Once the workload is fully computed and drained, cancel every pending
  /// fault-layer event so the simulation can end (a transient timeline would
  /// otherwise generate outages forever).
  void maybe_finish() {
    if (!recovery_on_ || work_all_done_) return;
    if (!policy_.finished() || !redispatch_queue_.empty() || pending_send_) return;
    for (std::size_t w = 0; w < platform_.size(); ++w) {
      if (status_[w].outstanding != 0) return;
    }
    // retx_queue_ is deliberately NOT a finish blocker: a dispatch record
    // exists exactly while its chunk is outstanding, so with every worker at
    // outstanding == 0 any queued retransmission is already settled (its
    // record was erased by the completion or fence that zeroed the count) and
    // drain_retransmissions would only discard it. Gating on the queue here
    // livelocks: when the final completion lands while the uplink is busy,
    // the settled item survives this call, is dropped later inside
    // try_dispatch (which never re-checks finish), and a transient fault
    // timeline then respawns outage events forever.
    if (!output_queue_.empty() || downlink_busy_) return;
    work_all_done_ = true;
    for (std::size_t w = 0; w < platform_.size(); ++w) {
      if (fault_event_[w] != 0) sim_.cancel(fault_event_[w]);
      if (rejoin_event_[w] != 0) sim_.cancel(rejoin_event_[w]);
      if (timeout_event_[w] != 0) sim_.cancel(timeout_event_[w]);
      fault_event_[w] = rejoin_event_[w] = timeout_event_[w] = 0;
    }
  }

  /// Pulls payloads whose retransmission timer fired back onto the uplink.
  /// Runs ahead of the re-dispatch pool: a retransmission races a watchdog
  /// fence, so it gets the channel first.
  void drain_retransmissions() {
    while (busy_channels_ < options_.uplink_channels && !pending_send_ && !retx_queue_.empty()) {
      const RetxItem item = retx_queue_.front();
      retx_queue_.pop_front();
      DispatchRecord* rec = find_record(item.worker, item.lease);
      // Settled (ACKed, completed, or fenced) while queued: nothing to send.
      if (rec == nullptr || rec->acked || believed_down_[item.worker]) continue;
      begin_retransmit(item.worker, *rec);
    }
  }

  void try_dispatch() {
    if (recovery_on_) {
      if (retransmit_on_) drain_retransmissions();
      drain_redispatch();
    }
    // The pending (blocked) send is the head of the master's queue; nothing
    // may overtake it.
    while (busy_channels_ < options_.uplink_channels && !pending_send_) {
      const std::optional<Dispatch> next = policy_.next_dispatch(*this);
      if (!next) {
        schedule_timed_poll();
        return;
      }
      validate_dispatch(*next);
      if (committed_slots(next->worker) >= options_.worker_buffer_capacity) {
        // Rendezvous semantics: the target cannot post a receive, so the
        // master blocks — a channel is held (head-of-line blocking) until
        // the worker frees a buffer slot.
        pending_send_ = *next;
        ++busy_channels_;
        probe_.uplink_channels(busy_channels_, sim_.now());
        probe_.block_begin(sim_.now());
        return;
      }
      begin_send(*next);
    }
  }

  /// Supports timetable-driven policies: when the policy declines to
  /// dispatch but names a wake-up time, poll again then. Deduplicated so at
  /// most one poll event is outstanding.
  void schedule_timed_poll() {
    const std::optional<des::SimTime> wanted = policy_.next_poll_time();
    if (!wanted || *wanted <= sim_.now()) return;
    if (scheduled_poll_ <= *wanted) return;  // An earlier poll is already pending.
    scheduled_poll_ = *wanted;
    sim_.schedule_at(*wanted, [this, at = *wanted] {
      if (scheduled_poll_ == at) scheduled_poll_ = kNoPoll;
      try_dispatch();
    });
  }

  /// Draws the link fate of a message toward/from w (payload or ACK) and
  /// applies the bandwidth-degradation stretch to the serialized basis. Zero
  /// RNG-lane draws when the link layer is off.
  [[nodiscard]] faults::LinkTimeline::MessageFate link_fate(std::size_t w, double& serial_basis) {
    faults::LinkTimeline::MessageFate fate;
    if (!link_on_) return fate;
    fate = link_.message_fate(w, sim_.now());
    if (fate.stretch > 1.0) {
      // Only the bandwidth term stretches inside a degradation window; the
      // latencies are unaffected. The master's predictions keep the clean
      // model — it does not know the window exists.
      const double latency = platform_.worker(w).comm_latency;
      serial_basis = latency + (serial_basis - latency) * fate.stretch;
    }
    if (fate.lost) ++fstats_.messages_lost;
    if (fate.spike > 0.0) ++fstats_.latency_spikes;
    return fate;
  }

  void begin_send(const Dispatch& d) {
    const std::size_t w = d.worker;
    const double chunk = d.chunk;

    const double predicted_serial = platform_.comm_serial_time(w, chunk);
    const double predicted_tail = platform_.worker(w).transfer_latency;
    const double predicted_comp = platform_.comp_time(w, chunk);

    double serial_basis = predicted_serial;
    const faults::LinkTimeline::MessageFate fate = link_fate(w, serial_basis);
    if (fate.stretch > 1.0) ++fstats_.degraded_sends;
    const double actual_serial = comm_process_.actual_duration(serial_basis, rng_);
    const double actual_tail = comm_process_.actual_duration(predicted_tail, rng_);

    const des::SimTime t0 = sim_.now();
    const des::SimTime uplink_free = t0 + actual_serial;
    const des::SimTime arrival = uplink_free + actual_tail + fate.spike;

    ++busy_channels_;
    RUMR_CHECK(busy_channels_ <= options_.uplink_channels, "uplink channel overcommitted");
    probe_.uplink_channels(busy_channels_, t0);
    probe_.chunk_dispatched(w);
    chunk_hist_.add(chunk);
    uplink_busy_time_ += actual_serial;
    ++chunks_dispatched_;
    work_dispatched_ += chunk;
    ++in_flight_[w];
    if (retransmit_on_) ++reserved_[w];
    RUMR_CHECK(committed_slots(w) <= options_.worker_buffer_capacity,
               "worker receive buffer overcommitted");

    // Master-side prediction bookkeeping (what the master believes, built
    // from the unperturbed model).
    WorkerStatus& st = status_[w];
    ++st.outstanding;
    const des::SimTime predicted_arrival = t0 + predicted_serial + predicted_tail;
    st.predicted_ready = std::max(st.predicted_ready, predicted_arrival) + predicted_comp;
    pending_pred_comp_[w].push_back(predicted_comp);

    const std::uint64_t lease = recovery_on_ ? ++next_lease_ : 0;
    if (recovery_on_) {
      // Lease record: predicted_ready now equals this chunk's predicted
      // completion time, which is what the watchdog times against.
      dispatch_records_[w].push_back({chunk, st.predicted_ready, predicted_comp, lease});
      DispatchRecord& rec = dispatch_records_[w].back();
      rec.dispatched_at = t0;
      if (retransmit_on_) {
        const double predicted_round_trip = 2.0 * (predicted_serial + predicted_tail);
        rec.rto = initial_rto(w, predicted_round_trip);
        arm_retransmit(w, rec, t0);
      }
      arm_timeout(w);
    }

    if (options_.record_trace) {
      trace_.add({SpanKind::kUplink, w, chunk, t0, uplink_free});
      if (arrival > uplink_free) trace_.add({SpanKind::kTail, w, chunk, uplink_free, arrival});
    }

    sim_.schedule_at(uplink_free, [this] {
      RUMR_CHECK(busy_channels_ > 0, "uplink released while no transfer was in progress");
      --busy_channels_;
      probe_.uplink_channels(busy_channels_, sim_.now());
      try_dispatch();
    });
    const std::size_t epoch = recovery_on_ ? lease_epoch_[w] : 0;
    const double recv_duration = actual_serial + actual_tail;
    schedule_arrival(arrival, w, chunk, predicted_comp, epoch, lease, recv_duration, fate.lost);
  }

  /// Physically re-sends an outstanding payload (retransmit protocol). The
  /// uplink is occupied like any transfer, but the dispatch ledgers are
  /// untouched — a retransmission is the same chunk again, not new work —
  /// and the buffer reservation taken at the original send still stands.
  void begin_retransmit(std::size_t w, DispatchRecord& rec) {
    const double chunk = rec.chunk;
    const double predicted_serial = platform_.comm_serial_time(w, chunk);
    const double predicted_tail = platform_.worker(w).transfer_latency;

    double serial_basis = predicted_serial;
    const faults::LinkTimeline::MessageFate fate = link_fate(w, serial_basis);
    if (fate.stretch > 1.0) ++fstats_.degraded_sends;
    const double actual_serial = comm_process_.actual_duration(serial_basis, rng_);
    const double actual_tail = comm_process_.actual_duration(predicted_tail, rng_);

    const des::SimTime t0 = sim_.now();
    const des::SimTime uplink_free = t0 + actual_serial;
    const des::SimTime arrival = uplink_free + actual_tail + fate.spike;

    ++busy_channels_;
    RUMR_CHECK(busy_channels_ <= options_.uplink_channels, "uplink channel overcommitted");
    probe_.uplink_channels(busy_channels_, t0);
    uplink_busy_time_ += actual_serial;
    ++in_flight_[w];

    ++fstats_.retransmits;
    fstats_.work_retransmitted += chunk;
    ++rec.attempts;
    rec.retransmitted = true;  // Karn: this lease's ACKs no longer sample RTT.
    rec.rto *= 2.0;            // Exponential backoff (RFC6298 section 5.5).
    arm_retransmit(w, rec, t0);

    if (options_.record_trace) {
      trace_.add({SpanKind::kUplink, w, chunk, t0, uplink_free});
      if (arrival > uplink_free) trace_.add({SpanKind::kTail, w, chunk, uplink_free, arrival});
    }

    sim_.schedule_at(uplink_free, [this] {
      RUMR_CHECK(busy_channels_ > 0, "uplink released while no transfer was in progress");
      --busy_channels_;
      probe_.uplink_channels(busy_channels_, sim_.now());
      try_dispatch();
    });
    const double recv_duration = actual_serial + actual_tail;
    schedule_arrival(arrival, w, chunk, rec.predicted_comp, lease_epoch_[w], rec.lease,
                     recv_duration, fate.lost);
  }

  /// Common delivery path for originals and retransmissions.
  void schedule_arrival(des::SimTime arrival, std::size_t w, double chunk, double predicted_comp,
                        std::size_t epoch, std::uint64_t lease, double recv_duration, bool lost) {
    sim_.schedule_at(arrival, [this, w, chunk, predicted_comp, epoch, lease, recv_duration,
                               lost] {
      RUMR_CHECK(in_flight_[w] > 0, "chunk arrived at a worker with nothing in flight");
      --in_flight_[w];
      if (recovery_on_ && (epoch != lease_epoch_[w] || !ground_alive_[w])) {
        // Stale lease (the worker was fenced after this send — the chunk was
        // already reclaimed) or a dead target: the payload evaporates. The
        // freed buffer slot may let a blocked send or a queued re-dispatch
        // proceed — without the release here a send that blocked on this
        // worker after its fence deadlocks forever (try_dispatch never runs
        // while a pending send holds the uplink, and maybe_start_compute
        // never fires for a slot freed by evaporation).
        release_blocked_send(w);
        if (!redispatch_queue_.empty() || !retx_queue_.empty()) try_dispatch();
        return;
      }
      if (lost) {
        // Dropped in the network, not at the worker. In retransmit mode the
        // pending timer re-sends it; otherwise the completion watchdog
        // eventually fences the worker and reclaims the lease.
        if (!redispatch_queue_.empty() || !retx_queue_.empty()) try_dispatch();
        return;
      }
      deliver_payload(w, chunk, predicted_comp, lease, recv_duration);
    });
  }

  /// The payload physically reached a live worker with a current lease.
  void deliver_payload(std::size_t w, double chunk, double predicted_comp, std::uint64_t lease,
                       double recv_duration) {
    if (retransmit_on_) {
      if (accepted_leases_[w].count(lease) != 0) {
        // Duplicate of an already-accepted delivery (the original and a
        // retransmission both made it). Suppressed — but re-ACKed, so a
        // master that missed the first ACK stops re-sending.
        ++fstats_.duplicates_suppressed;
        send_ack(w, lease);
        if (!redispatch_queue_.empty() || !retx_queue_.empty()) try_dispatch();
        return;
      }
      accepted_leases_[w].insert(lease);
      RUMR_CHECK(reserved_[w] > 0, "accepted delivery with no reserved buffer slot");
      --reserved_[w];
      send_ack(w, lease);
    }
    probe_.chunk_received(w, recv_duration);
    queues_[w].push_back({chunk, predicted_comp, lease});
    maybe_start_compute(w);
  }

  /// The worker acknowledges an accepted payload. ACKs ride the reverse
  /// channel: no bandwidth term (they are tiny), but the same loss and spike
  /// model as payloads — a lost ACK costs a spurious retransmission, which
  /// duplicate suppression absorbs. Zero main-RNG draws.
  void send_ack(std::size_t w, std::uint64_t lease) {
    const platform::WorkerSpec& spec = platform_.worker(w);
    double serial_basis = 0.0;  // No bandwidth term to stretch.
    const faults::LinkTimeline::MessageFate fate = link_fate(w, serial_basis);
    if (fate.lost) return;  // The master never sees it; the timer re-sends.
    const des::SimTime at =
        sim_.now() + spec.comm_latency + spec.transfer_latency + fate.spike;
    sim_.schedule_at(at, [this, w, lease] { on_ack(w, lease); });
  }

  /// Master side: an ACK for (w, lease) arrived. Settles the retransmission
  /// timer and, per Karn's rule, feeds the RTT estimator only when the
  /// delivery was never retransmitted.
  void on_ack(std::size_t w, std::uint64_t lease) {
    DispatchRecord* rec = find_record(w, lease);
    if (rec == nullptr || rec->acked) return;  // Settled, fenced, or duplicate ACK.
    rec->acked = true;
    if (rec->retx_event != 0) {
      sim_.cancel(rec->retx_event);
      rec->retx_event = 0;
    }
    if (!rec->retransmitted) {
      rtt_[w].sample(sim_.now() - rec->dispatched_at, options_.retransmit.alpha,
                     options_.retransmit.beta);
    }
  }

  /// RTO for a fresh delivery toward w: the RFC6298 estimate once the worker
  /// has RTT history, else a multiple of the model-predicted round trip.
  [[nodiscard]] double initial_rto(std::size_t w, double predicted_round_trip) const {
    const auto& rt = options_.retransmit;
    if (rtt_[w].has_sample) {
      return std::max(rt.rto_min, rtt_[w].srtt + rt.k * rtt_[w].rttvar);
    }
    return std::max(rt.rto_min, rt.rto_initial_factor * predicted_round_trip);
  }

  /// Arms the retransmission timer for one delivery at sent_at + rto.
  void arm_retransmit(std::size_t w, DispatchRecord& rec, des::SimTime sent_at) {
    rto_hist_.add(rec.rto);
    rec.retx_event = sim_.schedule_at(sent_at + rec.rto, [this, w, lease = rec.lease] {
      on_retransmit_timer(w, lease);
    });
  }

  /// No ACK within the RTO: queue a re-send, or fence the worker once the
  /// retry budget is exhausted.
  void on_retransmit_timer(std::size_t w, std::uint64_t lease) {
    DispatchRecord* rec = find_record(w, lease);
    if (rec == nullptr) return;
    rec->retx_event = 0;
    if (rec->acked) return;
    if (rec->attempts >= options_.retransmit.max_retries) {
      fence(w);
      return;
    }
    retx_queue_.push_back({w, lease});
    try_dispatch();
  }

  /// Re-starts a rendezvous-blocked send aimed at worker w once a buffer
  /// slot is free again. Releases the reserved channel first: begin_send
  /// re-acquires it (the transfer time starts now, after the wait).
  void release_blocked_send(std::size_t w) {
    if (pending_send_ && pending_send_->worker == w &&
        committed_slots(w) < options_.worker_buffer_capacity) {
      const Dispatch unblocked = *pending_send_;
      pending_send_.reset();
      --busy_channels_;
      probe_.uplink_channels(busy_channels_, sim_.now());
      probe_.block_end(sim_.now());
      begin_send(unblocked);
    }
  }

  void maybe_start_compute(std::size_t w) {
    if (recovery_on_ && !ground_alive_[w]) return;
    if (computing_[w] || queues_[w].empty()) return;
    const QueuedChunk next = queues_[w].front();
    queues_[w].pop_front();
    computing_[w] = true;
    probe_.compute_begin(w, sim_.now());

    // Popping freed a buffer slot; a blocked send waiting on this worker can
    // proceed now (its transfer time starts here, after the wait).
    release_blocked_send(w);

    const double actual_comp = comp_process_.actual_duration(next.predicted_comp, rng_);
    const des::SimTime t0 = sim_.now();
    const des::SimTime t1 = t0 + actual_comp;

    WorkerOutcome& out = outcomes_[w];
    if (out.chunks == 0) out.first_start = t0;
    if (options_.record_trace) {
      if (recovery_on_) compute_span_[w] = trace_.size();
      trace_.add({SpanKind::kCompute, w, next.chunk, t0, t1});
    }

    const des::EventId done = sim_.schedule_at(t1, [this, w, next, actual_comp, t1] {
      complete_chunk(w, next, actual_comp, t1);
    });
    if (recovery_on_) {
      compute_event_[w] = done;
      active_[w] = ActiveCompute{next.lease, next.chunk, actual_comp, t0};
    }

    // The freed slot may also admit a queued re-dispatch or re-send.
    if (recovery_on_ && (!redispatch_queue_.empty() || !retx_queue_.empty())) try_dispatch();
  }

  void complete_chunk(std::size_t w, const QueuedChunk& done, double actual_comp,
                      des::SimTime t1) {
    RUMR_CHECK(computing_[w], "completion for a worker that was not computing");
    computing_[w] = false;
    if (recovery_on_) {
      RUMR_CHECK(ground_alive_[w], "completion from a ground-dead worker");
      compute_event_[w] = 0;
      compute_span_[w] = kNoSpan;
      active_[w] = ActiveCompute{};
      if (timeout_event_[w] != 0) {
        sim_.cancel(timeout_event_[w]);
        timeout_event_[w] = 0;
      }
      // Settle this chunk's lease by identity — completions can arrive out of
      // dispatch order when an outage dropped an earlier delivery.
      auto& records = dispatch_records_[w];
      for (auto it = records.begin(); it != records.end(); ++it) {
        if (it->lease == done.lease) {
          if (retransmit_on_) {
            // A completion is an implicit (cumulative) ACK.
            if (it->retx_event != 0) {
              sim_.cancel(it->retx_event);
              it->retx_event = 0;
            }
            // Feed the adaptive fencing watchdog: how much longer than
            // predicted did this chunk's full round trip take?
            const double predicted_rt = it->predicted_completion - it->dispatched_at;
            if (predicted_rt > 0.0) {
              ratio_[w].sample((t1 - it->dispatched_at) / predicted_rt,
                               options_.retransmit.alpha, options_.retransmit.beta);
            }
          }
          records.erase(it);
          break;
        }
      }
      arm_timeout(w);
    }

    probe_.compute_end(w, t1);
    probe_.chunk_completed(w);
    comp_hist_.add(actual_comp);

    WorkerOutcome& out = outcomes_[w];
    out.work += done.chunk;
    ++out.chunks;
    out.busy_time += actual_comp;
    out.last_end = t1;
    makespan_ = std::max(makespan_, t1);

    WorkerStatus& st = status_[w];
    --st.outstanding;
    st.completed_work += done.chunk;
    ++st.completed_chunks;
    st.last_completion = t1;
    // Re-anchor the prediction on observed reality: the worker will be busy
    // for (predicted) the sum of computations still owed to it.
    if (!pending_pred_comp_[w].empty()) pending_pred_comp_[w].pop_front();
    double remaining_pred = 0.0;
    for (double p : pending_pred_comp_[w]) remaining_pred += p;
    st.predicted_ready = t1 + remaining_pred;

    const CompletionInfo info{w, done.chunk, done.predicted_comp, actual_comp, t1};
    policy_.on_chunk_completed(*this, info);

    if (options_.output_ratio > 0.0) enqueue_output(w, done.chunk * options_.output_ratio);

    maybe_start_compute(w);
    try_dispatch();
    if (recovery_on_) maybe_finish();
  }

  /// Output-data model: results return to the master over a shared,
  /// serialized downlink (FIFO). The makespan extends to the last arrival.
  void enqueue_output(std::size_t w, double amount) {
    output_queue_.push_back({w, amount});
    maybe_start_output();
  }

  void maybe_start_output() {
    if (downlink_busy_ || output_queue_.empty()) return;
    const auto [w, amount] = output_queue_.front();
    output_queue_.pop_front();
    downlink_busy_ = true;

    const platform::WorkerSpec& spec = platform_.worker(w);
    const double predicted =
        spec.comm_latency + amount / spec.bandwidth + spec.transfer_latency;
    const double actual = comm_process_.actual_duration(predicted, rng_);
    const des::SimTime t0 = sim_.now();
    const des::SimTime t1 = t0 + actual;
    downlink_busy_time_ += actual;
    if (options_.record_trace) trace_.add({SpanKind::kOutput, w, amount, t0, t1});
    sim_.schedule_at(t1, [this, t1] {
      downlink_busy_ = false;
      makespan_ = std::max(makespan_, t1);
      maybe_start_output();
      if (recovery_on_) maybe_finish();
    });
  }

  void validate_dispatch(const Dispatch& d) const {
    if (d.worker >= platform_.size()) {
      throw SimError("policy '" + std::string(policy_.name()) + "' dispatched to worker " +
                     std::to_string(d.worker) + " of " + std::to_string(platform_.size()));
    }
    if (!(d.chunk > 0.0) || !std::isfinite(d.chunk)) {
      throw SimError("policy '" + std::string(policy_.name()) +
                     "' dispatched a non-positive chunk: " + std::to_string(d.chunk));
    }
    if (recovery_on_ && believed_down_[d.worker]) {
      throw SimError("policy '" + std::string(policy_.name()) + "' dispatched to worker " +
                     std::to_string(d.worker) +
                     ", which the master fenced (WorkerStatus::alive is false)");
    }
  }

  /// Per-worker state dump appended to deadlock/stranding diagnostics.
  void describe_workers(std::ostringstream& msg) const {
    for (std::size_t w = 0; w < platform_.size(); ++w) {
      const WorkerStatus& st = status_[w];
      msg << "\n  worker " << w << ": believed " << (believed_down_[w] ? "down" : "alive");
      if (recovery_on_) msg << ", actually " << (ground_alive_[w] ? "up" : "down");
      msg << ", outstanding=" << st.outstanding << ", queued=" << queues_[w].size()
          << ", in_flight=" << in_flight_[w] << ", computing=" << (computing_[w] ? "yes" : "no");
      if (suspicions_[w] > 0) msg << ", fenced x" << suspicions_[w];
    }
    if (recovery_on_ && !redispatch_queue_.empty()) {
      double pool = 0.0;
      for (const RedispatchItem& item : redispatch_queue_) pool += item.chunk;
      msg << "\n  re-dispatch pool: " << redispatch_queue_.size() << " chunks (" << pool
          << " units) with no eligible target";
    }
    if (pending_send_) {
      msg << "\n  blocked send: " << pending_send_->chunk << " units for worker "
          << pending_send_->worker;
    }
  }

  void finalize_checks() const {
    const bool stranded_work = recovery_on_ && !redispatch_queue_.empty();
    if (!policy_.finished() || stranded_work) {
      std::size_t believed_alive = 0;
      for (std::size_t w = 0; w < platform_.size(); ++w) {
        if (!believed_down_[w]) ++believed_alive;
      }
      std::ostringstream msg;
      msg << "policy '" << policy_.name() << "' ";
      if (recovery_on_ && believed_alive == 0) {
        msg << "stranded: all workers are dead or unreachable";
      } else {
        msg << "deadlocked: simulation drained";
      }
      msg << " at t=" << sim_.now() << " with work remaining (" << work_dispatched_ << " of "
          << policy_.total_work() << " units dispatched, "
          << (policy_.finished() ? "policy finished" : "policy unfinished") << ")";
      describe_workers(msg);
      throw SimError(msg.str());
    }
    const double expected = policy_.total_work();
    // Re-dispatched work was counted in work_dispatched_ twice (or more);
    // conservation holds for the net amount.
    const double net_dispatched = work_dispatched_ - fstats_.work_redispatched;
    const double scale = std::max(1.0, std::abs(expected));
    if (std::abs(net_dispatched - expected) > options_.work_tolerance * scale) {
      std::ostringstream msg;
      msg << "policy '" << policy_.name() << "' dispatched " << net_dispatched
          << " net units, expected " << expected << " (tolerance " << options_.work_tolerance
          << ")";
      throw SimError(msg.str());
    }
    // Exactly-once re-dispatch: at a successful drain every reclaimed chunk
    // was sent again exactly once.
    RUMR_CHECK(fstats_.chunks_lost == fstats_.chunks_redispatched,
               "lost chunks not re-dispatched exactly once");
    RUMR_CHECK(std::abs(fstats_.work_lost - fstats_.work_redispatched) <=
                   options_.work_tolerance * scale,
               "lost work not re-dispatched exactly once");
    // Partial-work banking conservation: every net-dispatched unit was either
    // computed to completion or banked at an abort — at 1e-9, far tighter than
    // the policy-facing tolerance (this is an engine-internal identity).
    double computed = 0.0;
    for (const WorkerOutcome& out : outcomes_) computed += out.work;
    RUMR_CHECK(std::abs(computed + fstats_.work_banked - net_dispatched) <= 1e-9 * scale,
               "computed + banked work does not reproduce the net dispatched workload");
    // Engine-internal drain invariants, checked after the policy-misbehavior
    // paths above (a deadlocked policy legitimately leaves a blocked send
    // behind; these tripping on a *finished* run means an engine bug).
    RUMR_CHECK(busy_channels_ == 0 && !pending_send_,
               "drained with a transfer still holding the uplink");
    for (std::size_t w = 0; w < platform_.size(); ++w) {
      RUMR_CHECK(in_flight_[w] == 0, "drained with a chunk still in flight");
      if (retransmit_on_) RUMR_CHECK(reserved_[w] == 0, "drained with reserved buffer slots");
      RUMR_CHECK(queues_[w].empty(), "drained with a chunk still queued at a worker");
      RUMR_CHECK(!computing_[w], "drained with a worker still computing");
    }
    RUMR_CHECK(output_queue_.empty() && !downlink_busy_, "drained with output transfers pending");
  }

  const platform::StarPlatform& platform_;
  SchedulerPolicy& policy_;
  const SimOptions& options_;
  des::Simulator sim_;
  stats::Rng rng_;
  stats::ErrorProcess comm_process_;
  stats::ErrorProcess comp_process_;

  static constexpr des::SimTime kNoPoll = std::numeric_limits<des::SimTime>::infinity();

  std::size_t busy_channels_ = 0;
  bool downlink_busy_ = false;
  util::FlatFifo<std::pair<std::size_t, double>> output_queue_;
  des::SimTime scheduled_poll_ = kNoPoll;
  double uplink_busy_time_ = 0.0;
  double downlink_busy_time_ = 0.0;
  double makespan_ = 0.0;
  std::size_t chunks_dispatched_ = 0;
  double work_dispatched_ = 0.0;

  std::vector<WorkerStatus> status_;
  std::vector<WorkerOutcome> outcomes_;
  std::vector<util::FlatFifo<QueuedChunk>> queues_;
  std::vector<char> computing_;
  std::vector<std::size_t> in_flight_;
  std::optional<Dispatch> pending_send_;
  std::vector<util::FlatFifo<double>> pending_pred_comp_;
  Trace trace_;

  // Fault layer (all inert when faults_on_ is false).
  static constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);
  bool faults_on_ = false;
  faults::FaultTimeline timeline_;
  std::vector<char> ground_alive_;        ///< Ground truth from the timeline.
  std::vector<char> believed_down_;       ///< Master belief (fenced/blacklisted).
  std::vector<des::SimTime> down_since_;  ///< Start of the current outage.
  std::vector<des::EventId> fault_event_;    ///< Pending ground down/up event.
  std::vector<des::EventId> rejoin_event_;   ///< Pending re-admission event.
  std::vector<des::EventId> timeout_event_;  ///< Pending watchdog event.
  std::vector<des::EventId> compute_event_;  ///< Pending completion (abortable).
  std::vector<std::size_t> compute_span_;    ///< Trace index of the running compute.
  std::vector<des::SimTime> blacklist_until_;
  std::vector<std::size_t> suspicions_;
  std::vector<std::size_t> lease_epoch_;  ///< Bumped at each fence; stale arrivals drop.
  std::uint64_t next_lease_ = 0;          ///< Per-dispatch lease id source.
  std::vector<util::FlatFifo<DispatchRecord>> dispatch_records_;
  util::FlatFifo<RedispatchItem> redispatch_queue_;
  FaultSummary fstats_;
  bool work_all_done_ = false;

  // Link-fault layer and retransmit protocol (inert unless enabled).
  bool link_on_ = false;
  bool retransmit_on_ = false;
  bool checkpoint_on_ = false;
  /// faults_on_ || link_on_ || retransmit_on_: leases, watchdog, and the
  /// re-dispatch pool are armed.
  bool recovery_on_ = false;
  faults::LinkTimeline link_;
  /// Per-worker reserved receive-buffer slots (retransmit mode): one per
  /// dispatched-but-not-yet-accepted lease, held across losses and re-sends
  /// so a retransmission never overcommits the buffer.
  std::vector<std::size_t> reserved_;
  /// Stable-storage duplicate suppression: leases this worker has already
  /// accepted. Survives crashes (else a late duplicate of an already-computed
  /// chunk would be computed twice); cleared only at a fence, when the lease
  /// epoch bump makes every old lease unreachable anyway.
  std::vector<std::set<std::uint64_t>> accepted_leases_;
  util::FlatFifo<RetxItem> retx_queue_;  ///< Payloads awaiting re-send.
  std::vector<SmoothedEstimator> rtt_;   ///< Payload->ACK round trips, per worker.
  std::vector<SmoothedEstimator> ratio_; ///< Completion-time inflation, per worker.
  std::vector<ActiveCompute> active_;    ///< Running computation, per worker.

  // Observability (always on: zero RNG draws, O(1) per transition, so
  // instrumented runs stay byte-identical to uninstrumented ones).
  static constexpr double kChunkHistFirstEdge = 0.25;  ///< Workload units.
  static constexpr double kCompHistFirstEdge = 0.01;   ///< Simulated seconds.
  static constexpr std::size_t kHistBuckets = 16;
  static constexpr double kTimeoutHistFirstEdge = 1e-3;  ///< Simulated seconds.
  static constexpr std::size_t kTimeoutHistBuckets = 20;
  /// Floor on the adaptive watchdog multiplier: even a worker with perfectly
  /// stable history keeps this much slack, so estimator noise cannot make
  /// fencing hair-triggered.
  static constexpr double kAdaptiveSlackFloor = 1.5;
  obs::EngineProbe probe_;
  obs::Histogram chunk_hist_;
  obs::Histogram comp_hist_;
  obs::Histogram timeout_hist_;  ///< Armed completion-watchdog windows.
  obs::Histogram rto_hist_;      ///< Armed retransmission timeouts.
  std::size_t false_suspicions_ = 0;  ///< Fencings of actually-alive workers.
  std::size_t backoff_retries_ = 0;   ///< Blacklist-backoff waits armed.
};

}  // namespace

SimResult simulate(const platform::StarPlatform& platform, SchedulerPolicy& policy,
                   const SimOptions& options) {
  Engine engine(platform, policy, options);
  return engine.run();
}

}  // namespace rumr::sim
