#include "sim/master_worker.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>
#include <limits>
#include <sstream>

#include "check/check.hpp"
#include "des/simulator.hpp"
#include "stats/rng.hpp"

namespace rumr::sim {

double SimResult::mean_worker_utilization() const {
  if (workers.empty() || makespan <= 0.0) return 0.0;
  double total = 0.0;
  for (const WorkerOutcome& w : workers) total += w.busy_time / makespan;
  return total / static_cast<double>(workers.size());
}

namespace {

/// A chunk sitting in a worker's receive queue, waiting for the CPU.
struct QueuedChunk {
  double chunk = 0.0;
  double predicted_comp = 0.0;
};

/// Full engine state; implements the policy-visible MasterContext view.
class Engine final : public MasterContext {
 public:
  Engine(const platform::StarPlatform& platform, SchedulerPolicy& policy,
         const SimOptions& options)
      : platform_(platform),
        policy_(policy),
        options_(options),
        rng_(options.seed),
        comm_process_(options.comm_error),
        comp_process_(options.comp_error),
        status_(platform.size()),
        outcomes_(platform.size()),
        queues_(platform.size()),
        computing_(platform.size(), false),
        in_flight_(platform.size(), 0),
        pending_pred_comp_(platform.size()) {
    if (options.worker_buffer_capacity == 0) {
      throw SimError("worker_buffer_capacity must be >= 1 (1 models the double-buffered "
                     "front-end; SIZE_MAX disables blocking)");
    }
    if (options.uplink_channels == 0) {
      throw SimError("uplink_channels must be >= 1");
    }
    if (options.output_ratio < 0.0 || !std::isfinite(options.output_ratio)) {
      throw SimError("output_ratio must be non-negative and finite");
    }
  }

  // MasterContext -----------------------------------------------------------
  [[nodiscard]] des::SimTime now() const override { return sim_.now(); }
  [[nodiscard]] const platform::StarPlatform& platform() const override { return platform_; }
  [[nodiscard]] std::size_t num_workers() const override { return platform_.size(); }
  [[nodiscard]] const WorkerStatus& worker_status(std::size_t i) const override {
    return status_.at(i);
  }
  [[nodiscard]] bool can_receive(std::size_t i) const override {
    return committed_slots(i) < options_.worker_buffer_capacity;
  }

  SimResult run() {
    try_dispatch();
    sim_.run();
    finalize_checks();

    SimResult result;
    result.makespan = makespan_;
    result.chunks_dispatched = chunks_dispatched_;
    result.work_dispatched = work_dispatched_;
    result.uplink_busy_time = uplink_busy_time_;
    result.downlink_busy_time = downlink_busy_time_;
    result.events = sim_.events_processed();
    result.workers = outcomes_;
    result.trace = std::move(trace_);
    return result;
  }

 private:
  /// Buffer slots committed at worker w: chunks received but not yet
  /// computing, plus chunks in flight toward it.
  [[nodiscard]] std::size_t committed_slots(std::size_t w) const {
    return queues_[w].size() + in_flight_[w];
  }

  void try_dispatch() {
    // The pending (blocked) send is the head of the master's queue; nothing
    // may overtake it.
    while (busy_channels_ < options_.uplink_channels && !pending_send_) {
      const std::optional<Dispatch> next = policy_.next_dispatch(*this);
      if (!next) {
        schedule_timed_poll();
        return;
      }
      validate_dispatch(*next);
      if (committed_slots(next->worker) >= options_.worker_buffer_capacity) {
        // Rendezvous semantics: the target cannot post a receive, so the
        // master blocks — a channel is held (head-of-line blocking) until
        // the worker frees a buffer slot.
        pending_send_ = *next;
        ++busy_channels_;
        return;
      }
      begin_send(*next);
    }
  }

  /// Supports timetable-driven policies: when the policy declines to
  /// dispatch but names a wake-up time, poll again then. Deduplicated so at
  /// most one poll event is outstanding.
  void schedule_timed_poll() {
    const std::optional<des::SimTime> wanted = policy_.next_poll_time();
    if (!wanted || *wanted <= sim_.now()) return;
    if (scheduled_poll_ <= *wanted) return;  // An earlier poll is already pending.
    scheduled_poll_ = *wanted;
    sim_.schedule_at(*wanted, [this, at = *wanted] {
      if (scheduled_poll_ == at) scheduled_poll_ = kNoPoll;
      try_dispatch();
    });
  }

  void begin_send(const Dispatch& d) {
    const std::size_t w = d.worker;
    const double chunk = d.chunk;

    const double predicted_serial = platform_.comm_serial_time(w, chunk);
    const double predicted_tail = platform_.worker(w).transfer_latency;
    const double predicted_comp = platform_.comp_time(w, chunk);
    const double actual_serial = comm_process_.actual_duration(predicted_serial, rng_);
    const double actual_tail = comm_process_.actual_duration(predicted_tail, rng_);

    const des::SimTime t0 = sim_.now();
    const des::SimTime uplink_free = t0 + actual_serial;
    const des::SimTime arrival = uplink_free + actual_tail;

    ++busy_channels_;
    RUMR_CHECK(busy_channels_ <= options_.uplink_channels, "uplink channel overcommitted");
    uplink_busy_time_ += actual_serial;
    ++chunks_dispatched_;
    work_dispatched_ += chunk;
    ++in_flight_[w];
    RUMR_CHECK(committed_slots(w) <= options_.worker_buffer_capacity,
               "worker receive buffer overcommitted");

    // Master-side prediction bookkeeping (what the master believes, built
    // from the unperturbed model).
    WorkerStatus& st = status_[w];
    ++st.outstanding;
    const des::SimTime predicted_arrival = t0 + predicted_serial + predicted_tail;
    st.predicted_ready = std::max(st.predicted_ready, predicted_arrival) + predicted_comp;
    pending_pred_comp_[w].push_back(predicted_comp);

    if (options_.record_trace) {
      trace_.add({SpanKind::kUplink, w, chunk, t0, uplink_free});
      if (actual_tail > 0.0) trace_.add({SpanKind::kTail, w, chunk, uplink_free, arrival});
    }

    sim_.schedule_at(uplink_free, [this] {
      RUMR_CHECK(busy_channels_ > 0, "uplink released while no transfer was in progress");
      --busy_channels_;
      try_dispatch();
    });
    sim_.schedule_at(arrival, [this, w, chunk, predicted_comp] {
      RUMR_CHECK(in_flight_[w] > 0, "chunk arrived at a worker with nothing in flight");
      --in_flight_[w];
      queues_[w].push_back({chunk, predicted_comp});
      maybe_start_compute(w);
    });
  }

  void maybe_start_compute(std::size_t w) {
    if (computing_[w] || queues_[w].empty()) return;
    const QueuedChunk next = queues_[w].front();
    queues_[w].pop_front();
    computing_[w] = true;

    // Popping freed a buffer slot; a blocked send waiting on this worker can
    // proceed now (its transfer time starts here, after the wait). Release
    // the reserved channel first: begin_send re-acquires it.
    if (pending_send_ && pending_send_->worker == w &&
        committed_slots(w) < options_.worker_buffer_capacity) {
      const Dispatch unblocked = *pending_send_;
      pending_send_.reset();
      --busy_channels_;
      begin_send(unblocked);
    }

    const double actual_comp = comp_process_.actual_duration(next.predicted_comp, rng_);
    const des::SimTime t0 = sim_.now();
    const des::SimTime t1 = t0 + actual_comp;

    WorkerOutcome& out = outcomes_[w];
    if (out.chunks == 0) out.first_start = t0;
    if (options_.record_trace) trace_.add({SpanKind::kCompute, w, next.chunk, t0, t1});

    sim_.schedule_at(t1, [this, w, next, actual_comp, t1] {
      complete_chunk(w, next, actual_comp, t1);
    });
  }

  void complete_chunk(std::size_t w, const QueuedChunk& done, double actual_comp,
                      des::SimTime t1) {
    RUMR_CHECK(computing_[w], "completion for a worker that was not computing");
    computing_[w] = false;

    WorkerOutcome& out = outcomes_[w];
    out.work += done.chunk;
    ++out.chunks;
    out.busy_time += actual_comp;
    out.last_end = t1;
    makespan_ = std::max(makespan_, t1);

    WorkerStatus& st = status_[w];
    --st.outstanding;
    st.completed_work += done.chunk;
    ++st.completed_chunks;
    st.last_completion = t1;
    // Re-anchor the prediction on observed reality: the worker will be busy
    // for (predicted) the sum of computations still owed to it.
    if (!pending_pred_comp_[w].empty()) pending_pred_comp_[w].pop_front();
    double remaining_pred = 0.0;
    for (double p : pending_pred_comp_[w]) remaining_pred += p;
    st.predicted_ready = t1 + remaining_pred;

    const CompletionInfo info{w, done.chunk, done.predicted_comp, actual_comp, t1};
    policy_.on_chunk_completed(*this, info);

    if (options_.output_ratio > 0.0) enqueue_output(w, done.chunk * options_.output_ratio);

    maybe_start_compute(w);
    try_dispatch();
  }

  /// Output-data model: results return to the master over a shared,
  /// serialized downlink (FIFO). The makespan extends to the last arrival.
  void enqueue_output(std::size_t w, double amount) {
    output_queue_.push_back({w, amount});
    maybe_start_output();
  }

  void maybe_start_output() {
    if (downlink_busy_ || output_queue_.empty()) return;
    const auto [w, amount] = output_queue_.front();
    output_queue_.pop_front();
    downlink_busy_ = true;

    const platform::WorkerSpec& spec = platform_.worker(w);
    const double predicted =
        spec.comm_latency + amount / spec.bandwidth + spec.transfer_latency;
    const double actual = comm_process_.actual_duration(predicted, rng_);
    const des::SimTime t0 = sim_.now();
    const des::SimTime t1 = t0 + actual;
    downlink_busy_time_ += actual;
    if (options_.record_trace) trace_.add({SpanKind::kOutput, w, amount, t0, t1});
    sim_.schedule_at(t1, [this, t1] {
      downlink_busy_ = false;
      makespan_ = std::max(makespan_, t1);
      maybe_start_output();
    });
  }

  void validate_dispatch(const Dispatch& d) const {
    if (d.worker >= platform_.size()) {
      throw SimError("policy '" + std::string(policy_.name()) + "' dispatched to worker " +
                     std::to_string(d.worker) + " of " + std::to_string(platform_.size()));
    }
    if (!(d.chunk > 0.0) || !std::isfinite(d.chunk)) {
      throw SimError("policy '" + std::string(policy_.name()) +
                     "' dispatched a non-positive chunk: " + std::to_string(d.chunk));
    }
  }

  void finalize_checks() const {
    if (!policy_.finished()) {
      std::ostringstream msg;
      msg << "policy '" << policy_.name() << "' deadlocked: simulation drained at t=" << sim_.now()
          << " with the policy unfinished (" << work_dispatched_ << " of " << policy_.total_work()
          << " units dispatched)";
      throw SimError(msg.str());
    }
    const double expected = policy_.total_work();
    const double scale = std::max(1.0, std::abs(expected));
    if (std::abs(work_dispatched_ - expected) > options_.work_tolerance * scale) {
      std::ostringstream msg;
      msg << "policy '" << policy_.name() << "' dispatched " << work_dispatched_
          << " units, expected " << expected << " (tolerance " << options_.work_tolerance << ")";
      throw SimError(msg.str());
    }
    // Engine-internal drain invariants, checked after the policy-misbehavior
    // paths above (a deadlocked policy legitimately leaves a blocked send
    // behind; these tripping on a *finished* run means an engine bug).
    RUMR_CHECK(busy_channels_ == 0 && !pending_send_,
               "drained with a transfer still holding the uplink");
    for (std::size_t w = 0; w < platform_.size(); ++w) {
      RUMR_CHECK(in_flight_[w] == 0, "drained with a chunk still in flight");
      RUMR_CHECK(queues_[w].empty(), "drained with a chunk still queued at a worker");
      RUMR_CHECK(!computing_[w], "drained with a worker still computing");
    }
    RUMR_CHECK(output_queue_.empty() && !downlink_busy_, "drained with output transfers pending");
  }

  const platform::StarPlatform& platform_;
  SchedulerPolicy& policy_;
  const SimOptions& options_;
  des::Simulator sim_;
  stats::Rng rng_;
  stats::ErrorProcess comm_process_;
  stats::ErrorProcess comp_process_;

  static constexpr des::SimTime kNoPoll = std::numeric_limits<des::SimTime>::infinity();

  std::size_t busy_channels_ = 0;
  bool downlink_busy_ = false;
  std::deque<std::pair<std::size_t, double>> output_queue_;
  des::SimTime scheduled_poll_ = kNoPoll;
  double uplink_busy_time_ = 0.0;
  double downlink_busy_time_ = 0.0;
  double makespan_ = 0.0;
  std::size_t chunks_dispatched_ = 0;
  double work_dispatched_ = 0.0;

  std::vector<WorkerStatus> status_;
  std::vector<WorkerOutcome> outcomes_;
  std::vector<std::deque<QueuedChunk>> queues_;
  std::vector<char> computing_;
  std::vector<std::size_t> in_flight_;
  std::optional<Dispatch> pending_send_;
  std::vector<std::deque<double>> pending_pred_comp_;
  Trace trace_;
};

}  // namespace

SimResult simulate(const platform::StarPlatform& platform, SchedulerPolicy& policy,
                   const SimOptions& options) {
  Engine engine(platform, policy, options);
  return engine.run();
}

}  // namespace rumr::sim
