#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rumr::sim {

std::vector<TraceSpan> Trace::filter(SpanKind kind) const {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans_) {
    if (s.kind == kind) out.push_back(s);
  }
  return out;
}

std::vector<TraceSpan> Trace::for_worker(std::size_t worker) const {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans_) {
    if (s.worker == worker) out.push_back(s);
  }
  return out;
}

void Trace::append_shifted(const Trace& src, des::SimTime time_offset,
                           std::size_t worker_offset) {
  spans_.reserve(spans_.size() + src.spans_.size());
  for (TraceSpan span : src.spans_) {
    span.start += time_offset;
    span.end += time_offset;
    span.worker += worker_offset;
    spans_.push_back(span);
  }
}

des::SimTime Trace::end_time() const noexcept {
  des::SimTime latest = 0.0;
  for (const TraceSpan& s : spans_) latest = std::max(latest, s.end);
  return latest;
}

std::string Trace::render_gantt(std::size_t num_workers, std::size_t width) const {
  const des::SimTime horizon = end_time();
  if (horizon <= 0.0 || width == 0) return "(empty trace)\n";

  // Row 0: master uplink. Rows 1..N: workers.
  std::vector<std::string> rows(num_workers + 1, std::string(width, ' '));
  const auto column = [&](des::SimTime t) {
    const auto c = static_cast<std::ptrdiff_t>(std::floor(t / horizon * static_cast<double>(width)));
    return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
        c, 0, static_cast<std::ptrdiff_t>(width) - 1));
  };

  for (const TraceSpan& s : spans_) {
    const bool master_row = s.kind == SpanKind::kUplink || s.kind == SpanKind::kOutput;
    const std::size_t row = master_row ? 0 : s.worker + 1;
    if (row >= rows.size()) continue;
    const char mark = s.kind == SpanKind::kUplink ? '#'
                      : s.kind == SpanKind::kOutput ? 'o'
                      : s.kind == SpanKind::kCompute ? '='
                      : s.kind == SpanKind::kAborted ? '!'
                      : s.kind == SpanKind::kDown ? 'x'
                                                  : '.';
    const std::size_t c0 = column(s.start);
    const std::size_t c1 = column(std::nextafter(s.end, s.start));
    for (std::size_t c = c0; c <= c1 && c < width; ++c) {
      // Compute/abort/down marks dominate tail marks when cells overlap.
      if (rows[row][c] == ' ' || mark == '=' || mark == '!' || mark == 'x') rows[row][c] = mark;
    }
  }

  std::ostringstream out;
  out << "time 0 .. " << horizon
      << " s  (#=uplink busy, ==compute, .=tail, o=output, !=aborted, x=down)\n";
  out << "master  |" << rows[0] << "|\n";
  for (std::size_t w = 0; w < num_workers; ++w) {
    out << "work " << w << (w < 10 ? "  |" : " |") << rows[w + 1] << "|\n";
  }
  return out.str();
}

}  // namespace rumr::sim
