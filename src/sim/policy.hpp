#pragma once

/// \file policy.hpp
/// Scheduler-policy interface for the master-worker simulation engine.
///
/// A policy is the master's brain: whenever the master's uplink is free the
/// engine asks the policy for the next (worker, chunk) dispatch. Policies see
/// only master-observable state — outstanding chunk counts, completion
/// notifications, and *predicted* (model-based) timings — never the
/// simulator's perturbed ground truth, so every algorithm competes under the
/// same information constraints the paper assumes.

#include <cstddef>
#include <optional>
#include <string_view>

#include "des/simulator.hpp"
#include "platform/platform.hpp"

namespace rumr::sim {

/// A single work assignment: send `chunk` workload units to `worker`.
struct Dispatch {
  std::size_t worker = 0;
  double chunk = 0.0;
};

/// Master-visible view of one worker's state.
struct WorkerStatus {
  /// Chunks dispatched to this worker and not yet reported complete.
  std::size_t outstanding = 0;
  /// Master-side *prediction* of when this worker next becomes idle, based on
  /// the platform model and completion notifications received so far.
  des::SimTime predicted_ready = 0.0;
  /// Workload units this worker has reported complete.
  double completed_work = 0.0;
  /// Number of chunks this worker has reported complete.
  std::size_t completed_chunks = 0;
  /// Time of the most recent completion notification (0 if none yet).
  des::SimTime last_completion = 0.0;
  /// Master belief: the worker is reachable and may be dispatched to. Becomes
  /// false when a completion-timeout fires (the master fences the worker and
  /// reclaims its outstanding chunks) and true again when the worker rejoins
  /// after its blacklist backoff. Always true when faults are disabled.
  /// Policies must not dispatch to a worker whose `alive` is false.
  bool alive = true;
  /// The worker has been fenced at least once this run (a flapper/dead flag
  /// policies may use to deprioritize it even after a rejoin).
  bool suspected = false;
  /// Number of times the master's completion-timeout fenced this worker.
  std::size_t suspicions = 0;
};

/// Completion notification passed to SchedulerPolicy::on_chunk_completed.
struct CompletionInfo {
  std::size_t worker = 0;
  double chunk = 0.0;
  /// Model-predicted computation time for this chunk (Eq. 1).
  double predicted_comp = 0.0;
  /// Observed computation time (workers self-report timing; this is how the
  /// adaptive variant estimates the prediction-error magnitude on-line).
  double actual_comp = 0.0;
  des::SimTime time = 0.0;
};

/// Read-only master state handed to policies.
class MasterContext {
 public:
  virtual ~MasterContext() = default;
  [[nodiscard]] virtual des::SimTime now() const = 0;
  [[nodiscard]] virtual const platform::StarPlatform& platform() const = 0;
  [[nodiscard]] virtual std::size_t num_workers() const = 0;
  [[nodiscard]] virtual const WorkerStatus& worker_status(std::size_t i) const = 0;
  /// True when worker i has a free receive buffer slot: a send to it would
  /// start immediately instead of blocking the uplink (rendezvous).
  [[nodiscard]] virtual bool can_receive(std::size_t i) const = 0;
};

/// Interface every scheduling algorithm implements.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Short algorithm name ("RUMR", "UMR", "MI-3", ...), used in reports.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called whenever the uplink is free (initially, when a send finishes, and
  /// after each completion notification). Return the next dispatch, or
  /// nullopt to wait for more completions before sending anything.
  virtual std::optional<Dispatch> next_dispatch(const MasterContext& ctx) = 0;

  /// Completion notification hook (optional).
  virtual void on_chunk_completed(const MasterContext& ctx, const CompletionInfo& info) {
    (void)ctx;
    (void)info;
  }

  /// The master fenced `worker` (completion-timeout: it is presumed lost, its
  /// outstanding chunks were reclaimed into the master's re-dispatch pool,
  /// and worker_status(worker).alive is now false). Optional hook; policies
  /// that precompute per-worker shares can rebalance here.
  virtual void on_worker_down(const MasterContext& ctx, std::size_t worker) {
    (void)ctx;
    (void)worker;
  }

  /// A previously fenced `worker` rejoined after its backoff (alive again,
  /// with an empty queue). Optional hook.
  virtual void on_worker_up(const MasterContext& ctx, std::size_t worker) {
    (void)ctx;
    (void)worker;
  }

  /// When next_dispatch returned nullopt because the policy is waiting for a
  /// *time* (not an event), this returns that time so the engine can poll
  /// again then. Timetable-driven policies (a precalculated UMR schedule
  /// executing its planned send times) use this; event-driven policies leave
  /// the default.
  [[nodiscard]] virtual std::optional<des::SimTime> next_poll_time() const {
    return std::nullopt;
  }

  /// True once the policy has dispatched its entire workload. A policy that
  /// returns nullopt from next_dispatch while unfinished must become willing
  /// to dispatch again after some future completion, or the engine reports a
  /// deadlock.
  [[nodiscard]] virtual bool finished() const = 0;

  /// Total workload this policy is responsible for dispatching; the engine
  /// checks conservation against the sum of dispatched chunks.
  [[nodiscard]] virtual double total_work() const = 0;
};

}  // namespace rumr::sim
