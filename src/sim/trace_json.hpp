#pragma once

/// \file trace_json.hpp
/// Exports simulation traces in the Chrome tracing ("catapult") JSON format,
/// loadable in chrome://tracing, Perfetto, or speedscope — real Gantt
/// tooling for runs too large for the ASCII renderer.
///
/// Mapping: one process (pid 0); tid 0 is the master uplink, tid 1 the
/// master downlink (output transfers), tid 10+i worker i's CPU. Each span
/// becomes a complete ("ph":"X") event; simulated seconds become
/// microseconds of trace time.

#include <string>

#include "sim/trace.hpp"

namespace rumr::sim {

/// Serializes the trace. Deterministic output (spans in recording order).
[[nodiscard]] std::string to_chrome_tracing(const Trace& trace);

/// Writes to `path` (truncating). Returns false on I/O failure.
bool save_chrome_tracing(const std::string& path, const Trace& trace);

}  // namespace rumr::sim
