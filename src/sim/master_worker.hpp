#pragma once

/// \file master_worker.hpp
/// Master-worker execution engine on a star platform.
///
/// Semantics (paper section 3.1, Figure 2):
///   - The master's uplink is a serial resource: at most one transfer's
///     `nLat + chunk/B` portion occupies it at a time; the `tLat` tail
///     overlaps with subsequent transfers.
///   - Workers have a front end: they can receive a chunk while computing
///     another. Chunks queue FIFO at the worker.
///   - Every transfer and every computation duration is perturbed by the
///     prediction-error model (section 4.1): actual = predicted * ratio,
///     ratio ~ N(1, error) truncated positive (or its uniform variant).
///
/// The engine polls the SchedulerPolicy whenever the uplink is free and after
/// every completion notification, so both precomputed-schedule policies
/// (UMR, MI-x) and greedy self-scheduling policies (Factoring, FSC, RUMR
/// phase 2) run under identical mechanics.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/fault_model.hpp"
#include "obs/metrics.hpp"
#include "platform/platform.hpp"
#include "sim/policy.hpp"
#include "sim/trace.hpp"
#include "stats/error_process.hpp"

namespace rumr::sim {

/// Thrown when a policy misbehaves (invalid dispatch, deadlock, or work
/// non-conservation).
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Engine configuration.
struct SimOptions {
  /// Perturbation applied to transfers. Accepts a plain ErrorModel
  /// (stationary, the paper's setting) or a full ErrorProcessSpec
  /// (random-walk / burst dynamics — the paper's future-work models).
  stats::ErrorProcessSpec comm_error{};
  /// Perturbation applied to computations (same contract).
  stats::ErrorProcessSpec comp_error{};
  std::uint64_t seed = 1;          ///< RNG seed; same seed => identical run.
  bool record_trace = false;       ///< Record a Gantt trace (costs memory).
  double work_tolerance = 1e-6;    ///< Relative conservation-check tolerance.

  /// Number of master uplink channels that can carry the serialized
  /// (nLat + chunk/B) part of transfers simultaneously. 1 is the paper's
  /// model ("the master does not send chunks to workers simultaneously");
  /// higher values model the simultaneous-transfer variant the paper
  /// sketches as future work for WAN settings.
  std::size_t uplink_channels = 1;

  /// Output-data model: after computing a chunk, the worker returns
  /// output_ratio * chunk units of result data to the master over a shared
  /// serialized downlink (duration nLat_i + out/B_i + tLat_i). 0 restores
  /// the paper's input-only model; the makespan then includes the arrival of
  /// the last output (cf. the one-round output-aware treatments [11, 12]
  /// cited in section 3.1).
  double output_ratio = 0.0;

  /// How many received-but-not-yet-computing chunks a worker can hold.
  /// 1 models the classic double-buffered front-end — the worker posts one
  /// receive while computing (paper's "with front-end" model [21]); a send
  /// to a worker whose buffer is full blocks the master's uplink until the
  /// worker frees the slot (rendezvous semantics), creating the head-of-line
  /// blocking that makes precalculated schedules fragile under prediction
  /// error. SIZE_MAX gives infinitely deep buffers (no blocking), an
  /// idealization benchmarked in the ablation suite.
  std::size_t worker_buffer_capacity = 1;

  /// Worker-availability fault model. Defaults to FaultKind::kNone, in which
  /// case the fault layer adds zero events and zero RNG draws — runs are
  /// byte-identical to a build without the subsystem.
  faults::FaultSpec faults{};

  /// Link (channel) fault model: message loss, bandwidth-degradation windows,
  /// latency spikes. Inert by default; when enabled the engine arms the same
  /// lease/watchdog recovery machinery the worker-fault layer uses, and all
  /// link randomness comes from dedicated per-worker lanes — the engine's own
  /// RNG consumption is untouched, so runs with the link layer disabled stay
  /// byte-identical to builds without it.
  faults::LinkFaultSpec link{};

  /// Master-side failure-detection and re-admission knobs (used only when
  /// `faults` or `link` is enabled).
  struct FaultToleranceOptions {
    /// The master declares a worker lost when a chunk's completion is overdue
    /// by `timeout_slack` times its predicted remaining duration. Must be
    /// > 1; larger values tolerate more prediction error before fencing but
    /// detect real failures later. With the retransmit protocol enabled this
    /// fixed multiplier is only the bootstrap: once a worker has completion
    /// history, an adaptive EWMA + variance estimate of its observed
    /// round-trip inflation replaces it (RFC6298-style).
    double timeout_slack = 4.0;
    /// Blacklist duration after the k-th fencing of a worker:
    /// min(backoff_max, backoff_base * backoff_factor^(k-1)) seconds.
    double backoff_base = 1.0;
    double backoff_factor = 4.0;
    double backoff_max = 1024.0;
  } fault_tolerance{};

  /// Opt-in ACK/timeout/retransmit protocol for chunk payloads. Without it,
  /// a lost payload is recovered only by the (slow) completion-timeout fence;
  /// with it, the master arms a per-delivery retransmission timer from an
  /// RFC6298 estimator (SRTT/RTTVAR over observed payload->ACK round trips,
  /// Karn's rule: no samples from retransmitted deliveries, exponential
  /// backoff per retry) and re-sends just the undelivered payload. Duplicate
  /// deliveries are suppressed at the worker by lease id; suppression state
  /// survives worker crashes (stable storage) so a chunk is never computed
  /// twice. Exhausting max_retries fences the worker.
  struct RetransmitOptions {
    bool enabled = false;
    double alpha = 0.125;           ///< SRTT gain (RFC6298).
    double beta = 0.25;             ///< RTTVAR gain (RFC6298).
    double k = 4.0;                 ///< RTO = SRTT + k * RTTVAR.
    double rto_min = 1e-3;          ///< Floor on the retransmission timeout, s.
    /// Before the first RTT sample: RTO = rto_initial_factor * predicted
    /// round trip of this delivery.
    double rto_initial_factor = 3.0;
    std::size_t max_retries = 8;    ///< Send attempts per delivery before fencing.
  } retransmit{};

  /// Event budget for the run; 0 uses the DES kernel's own runaway guard
  /// (des::Simulator::kDefaultMaxEvents). When the budget is exhausted with
  /// events still pending the engine raises SimError instead of spinning —
  /// chaos campaigns set a small budget so a livelocked fault scenario (e.g.
  /// crashes arriving faster than any chunk can complete) becomes a named,
  /// reproducible failure rather than a hung process.
  std::size_t max_events = 0;

  /// Partial-work checkpointing: every `interval` simulated seconds of
  /// computation a worker banks the fraction of its current chunk completed
  /// so far. When the computation is later aborted (crash or fence) only the
  /// unbanked remainder is reclaimed and re-dispatched; the banked work is
  /// final. 0 disables banking (a reclaimed chunk is re-sent from byte
  /// zero, the pre-checkpoint behavior).
  struct CheckpointOptions {
    double interval = 0.0;
  } checkpoint{};

  /// Convenience: same error level on both resources with the paper's
  /// truncated-normal model.
  [[nodiscard]] static SimOptions with_error(double error, std::uint64_t seed = 1) {
    SimOptions o;
    o.comm_error = stats::ErrorModel::truncated_normal(error);
    o.comp_error = stats::ErrorModel::truncated_normal(error);
    o.seed = seed;
    return o;
  }

  /// Validates every option in one pass and returns the full list of
  /// human-readable problems (empty means the options are usable). simulate()
  /// calls this once at run start and raises SimError with all of them — no
  /// scattered ad-hoc throws, and a caller can pre-flight options without
  /// paying for a run.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Per-worker outcome statistics.
struct WorkerOutcome {
  double work = 0.0;        ///< Workload units computed.
  std::size_t chunks = 0;   ///< Chunks computed.
  double busy_time = 0.0;   ///< Total time spent computing.
  double first_start = 0.0; ///< When the first computation began.
  double last_end = 0.0;    ///< When the last computation finished.
};

/// Fault-layer statistics for one run (all zero when faults are disabled).
struct FaultSummary {
  std::size_t failures = 0;     ///< Ground-truth worker-down transitions.
  std::size_t recoveries = 0;   ///< Ground-truth worker-up transitions.
  std::size_t suspicions = 0;   ///< Completion-timeouts fired (workers fenced).
  std::size_t rejoins = 0;      ///< Fenced workers re-admitted after backoff.
  std::size_t chunks_lost = 0;  ///< Dispatched chunks reclaimed from fenced workers.
  double work_lost = 0.0;       ///< Workload units in those chunks.
  std::size_t chunks_redispatched = 0;  ///< Reclaimed chunks sent again.
  double work_redispatched = 0.0;       ///< Workload units sent again.

  // Link-fault / retransmit-protocol counters (zero when the link layer and
  // the retransmit protocol are disabled).
  std::size_t messages_lost = 0;   ///< Payloads and ACKs dropped in the network.
  std::size_t latency_spikes = 0;  ///< Messages delayed by a latency spike.
  std::size_t degraded_sends = 0;  ///< Payload sends inside a degradation window.
  std::size_t retransmits = 0;     ///< Chunk payloads re-sent by the protocol.
  double work_retransmitted = 0.0; ///< Workload units in those re-sends.
  std::size_t duplicates_suppressed = 0;  ///< Duplicate deliveries dropped by lease id.

  // Partial-work checkpointing counters (zero when checkpoint.interval == 0).
  std::size_t checkpoints_banked = 0;  ///< Aborted computations that banked progress.
  double work_banked = 0.0;            ///< Workload units banked (never recomputed).
};

/// Result of a simulated run.
struct SimResult {
  /// Completion time of the last chunk (or of the last output transfer when
  /// the output-data model is enabled).
  double makespan = 0.0;
  std::size_t chunks_dispatched = 0;
  double work_dispatched = 0.0;
  double uplink_busy_time = 0.0;      ///< Total serialized transfer time.
  double downlink_busy_time = 0.0;    ///< Output transfers (0 unless enabled).
  std::size_t events = 0;             ///< DES events executed.
  std::vector<WorkerOutcome> workers;
  FaultSummary faults;                ///< Fault-layer counters (zero when disabled).
  /// Always-on observability record: DES kernel stats, uplink/worker time
  /// accounting, fault counters. Collection adds zero RNG draws and O(1)
  /// work per event; check::audit_sim_result verifies its identities
  /// (uplink busy + idle == makespan; per-worker spans tile the run).
  obs::RunMetrics metrics;
  Trace trace;                        ///< Populated iff record_trace.

  /// Mean worker utilization: busy time / makespan, averaged over workers.
  [[nodiscard]] double mean_worker_utilization() const;
};

/// Runs one policy to completion on one platform.
///
/// Throws SimError if the policy emits an invalid dispatch, deadlocks
/// (unfinished with no pending events), or fails work conservation. With
/// faults enabled the run degrades gracefully — lost chunks are re-dispatched
/// to survivors — and SimError is raised only when work remains but every
/// worker is dead or unreachable.
[[nodiscard]] SimResult simulate(const platform::StarPlatform& platform, SchedulerPolicy& policy,
                                 const SimOptions& options);

}  // namespace rumr::sim
