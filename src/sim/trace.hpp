#pragma once

/// \file trace.hpp
/// Execution-trace recording and Gantt rendering for simulated runs.

#include <cstddef>
#include <string>
#include <vector>

#include "des/simulator.hpp"

namespace rumr::sim {

/// What a trace span represents.
enum class SpanKind : unsigned char {
  kUplink,   ///< Master uplink busy sending (the serialized nLat + chunk/B part).
  kTail,     ///< Last-byte propagation (tLat), overlappable.
  kCompute,  ///< Worker computing a chunk (cLat + chunk/S, perturbed).
  kOutput,   ///< Output data returning over the master downlink (optional model).
  kAborted,  ///< Computation cut short by a worker failure (result lost).
  kDown,     ///< Worker unavailable (fault-injection outage interval).
};

/// One half-open activity interval [start, end).
struct TraceSpan {
  SpanKind kind = SpanKind::kUplink;
  std::size_t worker = 0;
  double chunk = 0.0;
  des::SimTime start = 0.0;
  des::SimTime end = 0.0;
};

/// Append-only trace of a simulated run.
class Trace {
 public:
  void add(const TraceSpan& span) { spans_.push_back(span); }
  void clear() noexcept { spans_.clear(); }

  /// Rewrites span `i`'s end time and kind. The engine records compute spans
  /// at their start with the predicted end; when a worker fails mid-chunk the
  /// span is truncated to the failure instant and re-labeled kAborted.
  void truncate(std::size_t i, des::SimTime end, SpanKind kind) {
    TraceSpan& span = spans_.at(i);
    span.end = end;
    span.kind = kind;
  }

  [[nodiscard]] const std::vector<TraceSpan>& spans() const noexcept { return spans_; }
  [[nodiscard]] bool empty() const noexcept { return spans_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return spans_.size(); }

  /// All spans of one kind, in insertion (time) order.
  [[nodiscard]] std::vector<TraceSpan> filter(SpanKind kind) const;

  /// All spans touching one worker, in insertion order.
  [[nodiscard]] std::vector<TraceSpan> for_worker(std::size_t worker) const;

  /// Latest end time across all spans (0 for an empty trace).
  [[nodiscard]] des::SimTime end_time() const noexcept;

  /// Appends every span of `src` with its times shifted by `time_offset`
  /// and its worker index by `worker_offset`. The multi-job engine uses
  /// this to embed the Gantt of a run simulated on a worker-share
  /// sub-platform (whose workers are numbered from 0) into the job-level
  /// timeline at the segment's global position.
  void append_shifted(const Trace& src, des::SimTime time_offset, std::size_t worker_offset);

  /// ASCII Gantt chart: one row for the master uplink plus one per worker,
  /// `width` character columns spanning [0, end_time()]. '#' marks uplink
  /// busy, '=' compute, '.' tail propagation. This reproduces the structure
  /// of the paper's Figures 2 and 3 in text form.
  [[nodiscard]] std::string render_gantt(std::size_t num_workers, std::size_t width = 100) const;

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace rumr::sim
