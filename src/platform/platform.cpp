#include "platform/platform.hpp"

#include <cmath>
#include <sstream>

namespace rumr::platform {

namespace {

void validate_spec(const WorkerSpec& w, std::size_t index) {
  const auto fail = [index](const std::string& what) {
    throw PlatformError("worker " + std::to_string(index) + ": " + what);
  };
  if (!(w.speed > 0.0) || !std::isfinite(w.speed)) fail("speed must be positive and finite");
  if (!(w.bandwidth > 0.0) || !std::isfinite(w.bandwidth)) {
    fail("bandwidth must be positive and finite");
  }
  if (w.comp_latency < 0.0 || !std::isfinite(w.comp_latency)) {
    fail("comp_latency must be non-negative and finite");
  }
  if (w.comm_latency < 0.0 || !std::isfinite(w.comm_latency)) {
    fail("comm_latency must be non-negative and finite");
  }
  if (w.transfer_latency < 0.0 || !std::isfinite(w.transfer_latency)) {
    fail("transfer_latency must be non-negative and finite");
  }
}

}  // namespace

StarPlatform::StarPlatform(std::vector<WorkerSpec> workers) : workers_(std::move(workers)) {
  if (workers_.empty()) throw PlatformError("platform must have at least one worker");
  for (std::size_t i = 0; i < workers_.size(); ++i) validate_spec(workers_[i], i);
}

StarPlatform StarPlatform::homogeneous(const HomogeneousParams& params) {
  if (params.workers == 0) throw PlatformError("platform must have at least one worker");
  const WorkerSpec spec{params.speed, params.bandwidth, params.comp_latency,
                        params.comm_latency, params.transfer_latency};
  return StarPlatform(std::vector<WorkerSpec>(params.workers, spec));
}

bool StarPlatform::is_homogeneous() const noexcept {
  const WorkerSpec& first = workers_.front();
  for (const WorkerSpec& w : workers_) {
    if (w.speed != first.speed || w.bandwidth != first.bandwidth ||
        w.comp_latency != first.comp_latency || w.comm_latency != first.comm_latency ||
        w.transfer_latency != first.transfer_latency) {
      return false;
    }
  }
  return true;
}

double StarPlatform::total_speed() const noexcept {
  double total = 0.0;
  for (const WorkerSpec& w : workers_) total += w.speed;
  return total;
}

double StarPlatform::comp_time(std::size_t i, double chunk) const {
  const WorkerSpec& w = worker(i);
  return w.comp_latency + chunk / w.speed;
}

double StarPlatform::comm_serial_time(std::size_t i, double chunk) const {
  const WorkerSpec& w = worker(i);
  return w.comm_latency + chunk / w.bandwidth;
}

double StarPlatform::comm_time(std::size_t i, double chunk) const {
  return comm_serial_time(i, chunk) + worker(i).transfer_latency;
}

double StarPlatform::utilization_ratio() const noexcept {
  double ratio = 0.0;
  for (const WorkerSpec& w : workers_) ratio += w.speed / w.bandwidth;
  return ratio;
}

double StarPlatform::theta() const {
  if (!is_homogeneous()) {
    throw PlatformError("theta() is defined for homogeneous platforms only");
  }
  const WorkerSpec& w = workers_.front();
  return w.bandwidth / (static_cast<double>(size()) * w.speed);
}

StarPlatform StarPlatform::subset(const std::vector<std::size_t>& indices) const {
  std::vector<WorkerSpec> selected;
  selected.reserve(indices.size());
  for (std::size_t i : indices) selected.push_back(worker(i));
  return StarPlatform(std::move(selected));
}

std::string StarPlatform::describe() const {
  std::ostringstream out;
  if (is_homogeneous()) {
    const WorkerSpec& w = workers_.front();
    out << "homogeneous star, N=" << size() << ", S=" << w.speed << ", B=" << w.bandwidth
        << ", cLat=" << w.comp_latency << ", nLat=" << w.comm_latency
        << ", tLat=" << w.transfer_latency;
  } else {
    out << "heterogeneous star, N=" << size() << ", total S=" << total_speed()
        << ", sum S_i/B_i=" << utilization_ratio();
  }
  return out.str();
}

}  // namespace rumr::platform
