#pragma once

/// \file platform.hpp
/// Star master-worker platform model from RUMR (HPDC 2003), section 3.1.
///
/// N workers hang off a master. For a chunk of `c` workload units:
///   - computation on worker i:   Tcomp_i = cLat_i + c / S_i          (Eq. 1)
///   - master -> worker transfer: Tcomm_i = nLat_i + c / B_i + tLat_i (Eq. 2)
/// The `nLat_i + c/B_i` portion serializes on the master's uplink; `tLat_i`
/// (propagation of the last byte) overlaps with subsequent transfers.
/// Workers have a "front end": they receive and compute simultaneously.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace rumr::platform {

/// Per-worker resource description.
struct WorkerSpec {
  double speed = 1.0;             ///< S_i: workload units computed per second. > 0.
  double bandwidth = 1.0;         ///< B_i: workload units transferred per second. > 0.
  double comp_latency = 0.0;      ///< cLat_i: fixed cost to start a computation (s). >= 0.
  double comm_latency = 0.0;      ///< nLat_i: fixed cost to initiate a transfer (s). >= 0.
  double transfer_latency = 0.0;  ///< tLat_i: last-byte propagation delay (s). >= 0.
};

/// Parameters for a homogeneous platform (all workers identical), matching
/// Table 1 of the paper.
struct HomogeneousParams {
  std::size_t workers = 10;       ///< N.
  double speed = 1.0;             ///< S.
  double bandwidth = 12.0;        ///< B (paper uses B = (1.2..2.0) * N with S = 1).
  double comp_latency = 0.0;      ///< cLat.
  double comm_latency = 0.0;      ///< nLat.
  double transfer_latency = 0.0;  ///< tLat.
};

/// Thrown when a platform description is invalid (non-positive rates, ...).
class PlatformError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Immutable star platform: a master plus N workers.
class StarPlatform {
 public:
  /// Builds a platform from explicit worker specs. Throws PlatformError if
  /// the description is invalid (no workers, non-positive rate, negative
  /// latency).
  explicit StarPlatform(std::vector<WorkerSpec> workers);

  /// Builds a homogeneous platform.
  [[nodiscard]] static StarPlatform homogeneous(const HomogeneousParams& params);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }
  [[nodiscard]] const WorkerSpec& worker(std::size_t i) const { return workers_.at(i); }
  [[nodiscard]] const std::vector<WorkerSpec>& workers() const noexcept { return workers_; }

  /// True when every worker has identical parameters.
  [[nodiscard]] bool is_homogeneous() const noexcept;

  /// Sum of worker speeds (workload units per second).
  [[nodiscard]] double total_speed() const noexcept;

  /// Predicted computation time for a chunk on worker i (Eq. 1).
  [[nodiscard]] double comp_time(std::size_t i, double chunk) const;

  /// Predicted serialized (master-occupying) part of a transfer to worker i:
  /// nLat_i + chunk / B_i.
  [[nodiscard]] double comm_serial_time(std::size_t i, double chunk) const;

  /// Predicted end-to-end transfer time (Eq. 2): serialized part + tLat_i.
  [[nodiscard]] double comm_time(std::size_t i, double chunk) const;

  /// The UMR full-utilization figure: sum_i S_i / B_i. Multi-round schedules
  /// with increasing chunks require this to be < 1 (the network can feed the
  /// aggregate compute). For homogeneous platforms this is N*S/B = 1/theta.
  [[nodiscard]] double utilization_ratio() const noexcept;

  /// theta = B / (N * S) for homogeneous platforms: the geometric growth rate
  /// of UMR chunk sizes. Throws PlatformError on heterogeneous platforms.
  [[nodiscard]] double theta() const;

  /// Returns a platform restricted to the given subset of workers (indices
  /// into this platform, in the given order). Used by resource selection.
  [[nodiscard]] StarPlatform subset(const std::vector<std::size_t>& indices) const;

  /// Human-readable one-line description, for traces and reports.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<WorkerSpec> workers_;
};

}  // namespace rumr::platform
