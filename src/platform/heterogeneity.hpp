#pragma once

/// \file heterogeneity.hpp
/// Random heterogeneous platform generation, for the heterogeneity study
/// the RUMR paper defers to its UMR companion papers [17, 13] ("UMR
/// tolerates high platform heterogeneity due to an effective resource
/// selection technique").
///
/// Heterogeneity is parameterized by coefficients of variation (CV =
/// stddev / mean): worker speeds and link bandwidths are drawn from
/// truncated normals around their means, so CV = 0 degenerates exactly to a
/// homogeneous platform and larger CVs widen the spread without changing
/// the aggregate scale on average.

#include "platform/platform.hpp"
#include "stats/rng.hpp"

namespace rumr::platform {

/// Generator parameters. Means follow the Table 1 conventions: mean
/// bandwidth is expressed as a multiple of the aggregate compute rate
/// N * mean_speed, so the full-utilization condition is controlled the same
/// way as in the homogeneous experiments.
struct HeterogeneityParams {
  std::size_t workers = 10;
  double mean_speed = 1.0;
  double speed_cv = 0.3;            ///< CV of worker speeds.
  double bandwidth_over_ns = 1.5;   ///< Mean B as a multiple of N * mean_speed.
  double bandwidth_cv = 0.3;        ///< CV of link bandwidths.
  double mean_comp_latency = 0.2;
  double comp_latency_cv = 0.0;
  double mean_comm_latency = 0.1;
  double comm_latency_cv = 0.0;
  double mean_transfer_latency = 0.0;
};

/// Draws a random heterogeneous platform. Rates are truncated below at 10%
/// of their mean (a zero-speed "worker" is not a worker); latencies at 0.
[[nodiscard]] StarPlatform random_heterogeneous(const HeterogeneityParams& params,
                                                stats::Rng& rng);

/// Coefficient of variation of the worker speeds — the heterogeneity
/// measure used by the benches (0 for homogeneous platforms).
[[nodiscard]] double speed_heterogeneity(const StarPlatform& platform);

}  // namespace rumr::platform
