#include "platform/heterogeneity.hpp"

#include <algorithm>
#include <cmath>

namespace rumr::platform {

namespace {

/// Truncated-normal draw around `mean` with the given CV, floored at
/// `floor_fraction * mean`.
double draw(double mean, double cv, double floor_fraction, stats::Rng& rng) {
  if (mean <= 0.0) return 0.0;
  if (cv <= 0.0) return mean;
  const double value = rng.normal(mean, cv * mean);
  return std::max(value, floor_fraction * mean);
}

}  // namespace

StarPlatform random_heterogeneous(const HeterogeneityParams& params, stats::Rng& rng) {
  if (params.workers == 0) throw PlatformError("platform must have at least one worker");
  const double mean_bandwidth =
      params.bandwidth_over_ns * static_cast<double>(params.workers) * params.mean_speed;

  std::vector<WorkerSpec> workers;
  workers.reserve(params.workers);
  for (std::size_t i = 0; i < params.workers; ++i) {
    WorkerSpec spec;
    spec.speed = draw(params.mean_speed, params.speed_cv, 0.1, rng);
    spec.bandwidth = draw(mean_bandwidth, params.bandwidth_cv, 0.1, rng);
    spec.comp_latency = draw(params.mean_comp_latency, params.comp_latency_cv, 0.0, rng);
    spec.comm_latency = draw(params.mean_comm_latency, params.comm_latency_cv, 0.0, rng);
    spec.transfer_latency = params.mean_transfer_latency;
    workers.push_back(spec);
  }
  return StarPlatform(std::move(workers));
}

double speed_heterogeneity(const StarPlatform& platform) {
  const auto n = static_cast<double>(platform.size());
  double mean = 0.0;
  for (const WorkerSpec& w : platform.workers()) mean += w.speed;
  mean /= n;
  if (mean <= 0.0) return 0.0;
  double variance = 0.0;
  for (const WorkerSpec& w : platform.workers()) {
    variance += (w.speed - mean) * (w.speed - mean);
  }
  variance /= n;
  return std::sqrt(variance) / mean;
}

}  // namespace rumr::platform
