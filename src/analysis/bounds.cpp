#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rumr::analysis {

double MakespanBounds::combined() const {
  return std::max({compute_bound, uplink_bound, startup_bound, pipeline_bound});
}

MakespanBounds makespan_lower_bounds(const platform::StarPlatform& platform, double w_total,
                                     std::size_t uplink_channels) {
  MakespanBounds bounds;
  if (!(w_total > 0.0)) return bounds;

  double max_bandwidth = 0.0;
  double min_startup = std::numeric_limits<double>::infinity();
  for (const platform::WorkerSpec& w : platform.workers()) {
    max_bandwidth = std::max(max_bandwidth, w.bandwidth);
    min_startup = std::min(min_startup, w.comm_latency + w.comp_latency);
  }

  bounds.compute_bound = w_total / platform.total_speed();
  const double channels = static_cast<double>(std::max<std::size_t>(uplink_channels, 1));
  bounds.uplink_bound = w_total / (channels * max_bandwidth);
  bounds.startup_bound = min_startup;

  // Pipeline refinement: if w units are computed after the uplink finishes,
  // makespan >= (W - 0)/uplink_rate ... more precisely the last w units
  // cross the uplink in the first (W/uplink_rate) seconds but the final
  // chunk of size w still computes after its own transfer:
  //   T >= W/R_up + w/S_agg  minimized over how little work w > 0 remains —
  // in the divisible limit w -> 0, so the refinement instead uses the best
  // single worker: the last byte goes to SOME worker i and that worker still
  // needs (chunk)/S_i; optimizing the final chunk size c against the
  // transfer of the remaining W - c:
  //   T >= min_i min_c max((W - c)/R_up + c/B_i + c/S_i, ...) — we keep the
  // simple, always-valid form: everything transferred, then an
  // infinitesimal compute; plus the startup latency serialized in front.
  bounds.pipeline_bound = bounds.startup_bound + bounds.uplink_bound;
  return bounds;
}

ScheduleQuality analyze_run(const platform::StarPlatform& platform,
                            const sim::SimResult& result, double w_total) {
  ScheduleQuality quality;
  quality.makespan = result.makespan;
  quality.worker_efficiency = result.mean_worker_utilization();
  quality.uplink_duty = result.makespan > 0.0 ? result.uplink_busy_time / result.makespan : 0.0;
  const double bound = makespan_lower_bounds(platform, w_total).combined();
  quality.optimality_gap = bound > 0.0 ? result.makespan / bound : 0.0;

  if (!result.trace.empty()) {
    double total_idle = 0.0;
    std::size_t active_workers = 0;
    for (std::size_t w = 0; w < platform.size(); ++w) {
      double busy = 0.0;
      double first = std::numeric_limits<double>::infinity();
      double last = 0.0;
      bool any = false;
      for (const sim::TraceSpan& span : result.trace.for_worker(w)) {
        if (span.kind != sim::SpanKind::kCompute) continue;
        busy += span.end - span.start;
        first = std::min(first, span.start);
        last = std::max(last, span.end);
        any = true;
      }
      if (!any) continue;
      ++active_workers;
      total_idle += (last - first) - busy;
    }
    if (active_workers > 0) {
      quality.mean_interior_idle = total_idle / static_cast<double>(active_workers);
    }
  }
  return quality;
}

}  // namespace rumr::analysis
