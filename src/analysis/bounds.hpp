#pragma once

/// \file bounds.hpp
/// Analytic makespan lower bounds and schedule-quality metrics.
///
/// The bounds hold for ANY divisible-load schedule on the star platform
/// (paper section 3.1 model) with perfect predictions, so they anchor both
/// the test suite (no simulated run may beat them) and users evaluating how
/// far a schedule sits from optimal.

#include "platform/platform.hpp"
#include "sim/master_worker.hpp"

namespace rumr::analysis {

/// Lower bounds on the makespan of W workload units.
struct MakespanBounds {
  /// W / sum S_i: even with free, instant communication the aggregate
  /// compute rate caps throughput.
  double compute_bound = 0.0;
  /// W / (channels * max_i B_i): every unit of input crosses the master's
  /// uplink, which can push at most channels * max B per second.
  double uplink_bound = 0.0;
  /// min_i (nLat_i + cLat_i): nothing completes before one transfer has been
  /// initiated and one computation started.
  double startup_bound = 0.0;
  /// A pipeline refinement: the last unit of work must still be computed
  /// after the uplink has pushed everything, so
  /// uplink time of W-w plus compute time of w, minimized over the split —
  /// at least max(compute, uplink) and usually strictly above it.
  double pipeline_bound = 0.0;

  /// The tightest of the above.
  [[nodiscard]] double combined() const;
};

/// Computes the bounds for `w_total` units on `platform` with
/// `uplink_channels` parallel channels (1 = the paper's model).
[[nodiscard]] MakespanBounds makespan_lower_bounds(const platform::StarPlatform& platform,
                                                   double w_total,
                                                   std::size_t uplink_channels = 1);

/// Post-hoc quality metrics of one simulated run.
struct ScheduleQuality {
  double makespan = 0.0;
  /// Mean over workers of compute-busy time / makespan (1 = perfect).
  double worker_efficiency = 0.0;
  /// Uplink serialized-transfer time / makespan.
  double uplink_duty = 0.0;
  /// makespan / combined lower bound (1 = provably optimal).
  double optimality_gap = 0.0;
  /// Mean worker idle time between its first computation start and its last
  /// completion (gaps a better schedule could fill).
  double mean_interior_idle = 0.0;
};

/// Requires the run to have been simulated with record_trace = true (the
/// interior-idle metric reads compute spans); other metrics fall back to the
/// result's aggregates when the trace is empty.
[[nodiscard]] ScheduleQuality analyze_run(const platform::StarPlatform& platform,
                                          const sim::SimResult& result, double w_total);

}  // namespace rumr::analysis
