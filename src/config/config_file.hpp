#pragma once

/// \file config_file.hpp
/// Minimal INI-style configuration parser — the substrate for describing
/// platforms and runs in text files (the "practical application execution
/// environment" direction of the paper's section 6: APST reads its platform
/// and application descriptions from files; rumr_cli does the same).
///
/// Format:
///   # comment            ; comment
///   [section name]
///   key = value          # keys are trimmed; values keep interior spaces
///
/// Keys before any section header live in the "" (global) section. Section
/// and key lookups are case-sensitive. Duplicate keys: last one wins.
/// Duplicate sections merge.

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace rumr::config {

/// Parse failure, with a 1-based line number in what().
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed configuration file.
class ConfigFile {
 public:
  /// Parses from text. Throws ConfigError on malformed lines.
  [[nodiscard]] static ConfigFile parse(const std::string& text);

  /// Parses a file from disk. Throws ConfigError if unreadable or malformed.
  [[nodiscard]] static ConfigFile load(const std::string& path);

  /// True if the section exists (possibly empty).
  [[nodiscard]] bool has_section(const std::string& section) const;

  /// All section names, in first-appearance order.
  [[nodiscard]] const std::vector<std::string>& sections() const noexcept { return order_; }

  /// Raw lookup; nullopt when section or key is absent.
  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;

  /// Typed lookups with defaults. Throw ConfigError when the value exists
  /// but does not parse as the requested type.
  [[nodiscard]] std::string get_string(const std::string& section, const std::string& key,
                                       const std::string& fallback = "") const;
  [[nodiscard]] double get_double(const std::string& section, const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& section, const std::string& key,
                                     std::size_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& section, const std::string& key,
                              bool fallback) const;

  /// Typed lookups for required keys; throw ConfigError when missing.
  [[nodiscard]] double require_double(const std::string& section, const std::string& key) const;

  /// Keys of a section, in insertion order (empty when absent).
  [[nodiscard]] std::vector<std::string> keys(const std::string& section) const;

 private:
  struct Section {
    std::map<std::string, std::string> values;
    std::vector<std::string> key_order;
  };
  std::map<std::string, Section> sections_;
  std::vector<std::string> order_;
};

/// Trims ASCII whitespace from both ends (exposed for reuse and tests).
[[nodiscard]] std::string trim(const std::string& text);

}  // namespace rumr::config
