#include "config/config_file.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rumr::config {

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) --end;
  return text.substr(begin, end - begin);
}

namespace {

/// Strips a trailing comment that starts with '#' or ';' (no quoting rules:
/// values in this format never contain those characters).
std::string strip_comment(const std::string& line) {
  const std::size_t pos = line.find_first_of("#;");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

[[noreturn]] void fail(std::size_t line_number, const std::string& what) {
  std::ostringstream msg;
  msg << "config line " << line_number << ": " << what;
  throw ConfigError(msg.str());
}

}  // namespace

ConfigFile ConfigFile::parse(const std::string& text) {
  ConfigFile file;
  std::istringstream in(text);
  std::string raw;
  std::string current;  // Global section.
  file.sections_[current];
  file.order_.push_back(current);

  std::size_t line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(line_number, "unterminated section header: " + line);
      current = trim(line.substr(1, line.size() - 2));
      if (current.empty()) fail(line_number, "empty section name");
      if (file.sections_.find(current) == file.sections_.end()) {
        file.sections_[current];
        file.order_.push_back(current);
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail(line_number, "expected 'key = value': " + line);
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail(line_number, "empty key");
    Section& section = file.sections_[current];
    if (section.values.find(key) == section.values.end()) section.key_order.push_back(key);
    section.values[key] = value;
  }
  return file;
}

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool ConfigFile::has_section(const std::string& section) const {
  return sections_.find(section) != sections_.end();
}

std::optional<std::string> ConfigFile::get(const std::string& section,
                                           const std::string& key) const {
  const auto sit = sections_.find(section);
  if (sit == sections_.end()) return std::nullopt;
  const auto kit = sit->second.values.find(key);
  if (kit == sit->second.values.end()) return std::nullopt;
  return kit->second;
}

std::string ConfigFile::get_string(const std::string& section, const std::string& key,
                                   const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

double ConfigFile::get_double(const std::string& section, const std::string& key,
                              double fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    throw ConfigError("[" + section + "] " + key + ": not a number: " + *value);
  }
  return parsed;
}

std::size_t ConfigFile::get_size(const std::string& section, const std::string& key,
                                 std::size_t fallback) const {
  // Return an absent key's fallback directly: a double round-trip would
  // corrupt values above 2^53 (e.g. a SIZE_MAX "unbounded" sentinel).
  if (!get(section, key)) return fallback;
  const double value = get_double(section, key, 0.0);
  if (value < 0.0) throw ConfigError("[" + section + "] " + key + ": must be non-negative");
  return static_cast<std::size_t>(value);
}

bool ConfigFile::get_bool(const std::string& section, const std::string& key,
                          bool fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  if (*value == "true" || *value == "1" || *value == "yes" || *value == "on") return true;
  if (*value == "false" || *value == "0" || *value == "no" || *value == "off") return false;
  throw ConfigError("[" + section + "] " + key + ": not a boolean: " + *value);
}

double ConfigFile::require_double(const std::string& section, const std::string& key) const {
  if (!get(section, key)) throw ConfigError("[" + section + "] missing required key: " + key);
  return get_double(section, key, 0.0);
}

std::vector<std::string> ConfigFile::keys(const std::string& section) const {
  const auto sit = sections_.find(section);
  if (sit == sections_.end()) return {};
  return sit->second.key_order;
}

}  // namespace rumr::config
