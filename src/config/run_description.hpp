#pragma once

/// \file run_description.hpp
/// Bridges configuration files to the scheduling library: platform,
/// workload, algorithm, and simulation settings from one description file.
///
/// Schema (all keys optional unless noted):
///
///   [platform]
///   workers = 16           ; required unless explicit [worker i] sections exist
///   speed = 1.0            ; defaults for every worker
///   bandwidth = 24.0
///   comp_latency = 0.2
///   comm_latency = 0.1
///   transfer_latency = 0
///
///   [worker 3]             ; per-worker overrides (0-based index)
///   speed = 4.0
///
///   [workload]
///   total = 1000           ; required, > 0
///
///   [schedule]
///   algorithm = rumr       ; rumr | rumr-adaptive | umr | umr-eager |
///                          ;   mi-<x> | factoring | wf | gss | tss | fsc
///   error = 0.2            ; known/assumed prediction-error magnitude
///
///   [simulation]
///   error = 0.2            ; actual error level driving the run
///   distribution = normal  ; normal | uniform
///   seed = 42
///   repetitions = 1
///   output_ratio = 0
///   uplink_channels = 1
///
///   [faults]
///   model = none           ; none | fail-stop | transient
///   mtbf = 800             ; mean time between failures (seconds)
///   mttr = 80              ; mean time to repair (transient only)
///   fail_probability = 1.0 ; fail-stop: fraction of workers that ever fail
///   timeout_slack = 4      ; completion-timeout = slack x predicted remaining
///   backoff_base = 1
///   backoff_factor = 4
///   backoff_max = 1024
///
///   [faults.link]
///   loss = 0.05            ; per-message loss probability in [0, 1]
///   spike_probability = 0  ; per-message latency-spike probability in [0, 1]
///   spike_mean = 0         ; mean spike delay (seconds, Exp-distributed)
///   degraded_mtbf = 0      ; mean clean time between degradation windows
///   degraded_mttr = 0      ; mean degradation-window length
///   degraded_factor = 1    ; bandwidth-term stretch inside a window (>= 1)
///
///   [retransmit]
///   enabled = false        ; ACK/timeout/retransmit protocol (RFC6298-style)
///   alpha = 0.125          ; SRTT gain
///   beta = 0.25            ; RTTVAR gain
///   k = 4                  ; RTO = SRTT + k x RTTVAR
///   rto_min = 0.001        ; floor on the retransmission timeout (seconds)
///   rto_initial_factor = 3 ; pre-sample RTO = factor x predicted round trip
///   max_retries = 8        ; send attempts per delivery before fencing
///
///   [checkpoint]
///   interval = 0           ; partial-work banking period (seconds; 0 = off)

#include <memory>
#include <string>

#include "config/config_file.hpp"
#include "platform/platform.hpp"
#include "sim/master_worker.hpp"
#include "sim/policy.hpp"

namespace rumr::config {

/// Everything needed to execute a described run.
struct RunDescription {
  platform::StarPlatform platform;
  double w_total = 0.0;
  std::string algorithm = "rumr";
  double known_error = 0.0;      ///< What the scheduler is told.
  sim::SimOptions sim_options{}; ///< Including the actual error level.
  std::size_t repetitions = 1;
};

/// Builds the platform from [platform] + [worker i] sections. Throws
/// ConfigError on invalid or missing description.
[[nodiscard]] platform::StarPlatform platform_from_config(const ConfigFile& file);

/// Parses just the inner-engine options from the [simulation] and [faults]
/// sections (shared by single-job runs and the multi-job engine). Throws
/// ConfigError on problems.
[[nodiscard]] sim::SimOptions sim_options_from_config(const ConfigFile& file);

/// Parses the full run description. Throws ConfigError on problems.
[[nodiscard]] RunDescription run_from_config(const ConfigFile& file);

/// Instantiates the described scheduling policy for the description's
/// platform and workload. Throws ConfigError for unknown algorithm names.
[[nodiscard]] std::unique_ptr<sim::SchedulerPolicy> make_policy(const RunDescription& run);

/// Name-based variant: instantiates algorithm `name` (lower-case, same
/// vocabulary as [schedule] algorithm) for an arbitrary platform/workload.
/// The multi-job engine uses this to build a per-job scheduler over each
/// job's worker share. Throws ConfigError for unknown algorithm names.
[[nodiscard]] std::unique_ptr<sim::SchedulerPolicy> make_policy(
    const std::string& name, const platform::StarPlatform& platform, double w_total,
    double known_error);

}  // namespace rumr::config
