#include "config/run_description.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "baselines/factoring.hpp"
#include "baselines/fsc.hpp"
#include "baselines/loop_scheduling.hpp"
#include "baselines/multi_installment.hpp"
#include "core/adaptive_rumr.hpp"
#include "core/rumr.hpp"
#include "core/umr_policy.hpp"

namespace rumr::config {

platform::StarPlatform platform_from_config(const ConfigFile& file) {
  platform::WorkerSpec defaults;
  defaults.speed = file.get_double("platform", "speed", 1.0);
  defaults.bandwidth = file.get_double("platform", "bandwidth", 0.0);
  defaults.comp_latency = file.get_double("platform", "comp_latency", 0.0);
  defaults.comm_latency = file.get_double("platform", "comm_latency", 0.0);
  defaults.transfer_latency = file.get_double("platform", "transfer_latency", 0.0);

  // Worker count: explicit, or inferred from the largest [worker i] index.
  std::size_t workers = file.get_size("platform", "workers", 0);
  for (const std::string& section : file.sections()) {
    if (section.rfind("worker ", 0) != 0) continue;
    const std::string index_text = trim(section.substr(7));
    char* end = nullptr;
    const unsigned long long index = std::strtoull(index_text.c_str(), &end, 10);
    if (end == index_text.c_str() || *end != '\0') {
      throw ConfigError("bad worker section name: [" + section + "]");
    }
    workers = std::max<std::size_t>(workers, static_cast<std::size_t>(index) + 1);
  }
  if (workers == 0) {
    throw ConfigError("[platform] workers missing (and no [worker i] sections)");
  }
  if (defaults.bandwidth <= 0.0 && !file.has_section("worker 0")) {
    // A default bandwidth is required unless every worker overrides it;
    // validation below will catch residual gaps via StarPlatform.
    throw ConfigError("[platform] bandwidth missing or non-positive");
  }

  std::vector<platform::WorkerSpec> specs(workers, defaults);
  for (std::size_t i = 0; i < workers; ++i) {
    const std::string section = "worker " + std::to_string(i);
    if (!file.has_section(section)) continue;
    specs[i].speed = file.get_double(section, "speed", specs[i].speed);
    specs[i].bandwidth = file.get_double(section, "bandwidth", specs[i].bandwidth);
    specs[i].comp_latency = file.get_double(section, "comp_latency", specs[i].comp_latency);
    specs[i].comm_latency = file.get_double(section, "comm_latency", specs[i].comm_latency);
    specs[i].transfer_latency =
        file.get_double(section, "transfer_latency", specs[i].transfer_latency);
  }
  try {
    return platform::StarPlatform(std::move(specs));
  } catch (const platform::PlatformError& error) {
    throw ConfigError(std::string("invalid platform: ") + error.what());
  }
}

sim::SimOptions sim_options_from_config(const ConfigFile& file) {
  sim::SimOptions options;
  const double actual_error = file.get_double("simulation", "error", 0.0);
  const std::string distribution = file.get_string("simulation", "distribution", "normal");
  stats::ErrorModel model;
  if (distribution == "normal") {
    model = stats::ErrorModel::truncated_normal(actual_error);
  } else if (distribution == "uniform") {
    model = stats::ErrorModel::uniform(actual_error);
  } else {
    throw ConfigError("[simulation] distribution must be 'normal' or 'uniform'");
  }
  options.comm_error = model;
  options.comp_error = model;
  options.seed = static_cast<std::uint64_t>(file.get_size("simulation", "seed", 1));
  options.output_ratio = file.get_double("simulation", "output_ratio", 0.0);
  options.uplink_channels = file.get_size("simulation", "uplink_channels", 1);

  const std::string fault_model = file.get_string("faults", "model", "none");
  if (fault_model == "fail-stop") {
    options.faults = faults::FaultSpec::fail_stop(
        file.get_double("faults", "mtbf", 1.0e9),
        file.get_double("faults", "fail_probability", 1.0));
  } else if (fault_model == "transient") {
    options.faults = faults::FaultSpec::transient(
        file.get_double("faults", "mtbf", 1.0e9), file.get_double("faults", "mttr", 10.0));
  } else if (fault_model != "none") {
    throw ConfigError("[faults] model must be 'none', 'fail-stop', or 'transient'");
  }
  auto& tolerance = options.fault_tolerance;
  tolerance.timeout_slack = file.get_double("faults", "timeout_slack", tolerance.timeout_slack);
  tolerance.backoff_base = file.get_double("faults", "backoff_base", tolerance.backoff_base);
  tolerance.backoff_factor =
      file.get_double("faults", "backoff_factor", tolerance.backoff_factor);
  tolerance.backoff_max = file.get_double("faults", "backoff_max", tolerance.backoff_max);

  auto& link = options.link;
  link.loss = file.get_double("faults.link", "loss", link.loss);
  link.spike_probability =
      file.get_double("faults.link", "spike_probability", link.spike_probability);
  link.spike_mean = file.get_double("faults.link", "spike_mean", link.spike_mean);
  link.degraded_mtbf = file.get_double("faults.link", "degraded_mtbf", link.degraded_mtbf);
  link.degraded_mttr = file.get_double("faults.link", "degraded_mttr", link.degraded_mttr);
  link.degraded_factor =
      file.get_double("faults.link", "degraded_factor", link.degraded_factor);

  auto& retransmit = options.retransmit;
  retransmit.enabled = file.get_bool("retransmit", "enabled", retransmit.enabled);
  retransmit.alpha = file.get_double("retransmit", "alpha", retransmit.alpha);
  retransmit.beta = file.get_double("retransmit", "beta", retransmit.beta);
  retransmit.k = file.get_double("retransmit", "k", retransmit.k);
  retransmit.rto_min = file.get_double("retransmit", "rto_min", retransmit.rto_min);
  retransmit.rto_initial_factor =
      file.get_double("retransmit", "rto_initial_factor", retransmit.rto_initial_factor);
  retransmit.max_retries = file.get_size("retransmit", "max_retries", retransmit.max_retries);

  options.checkpoint.interval =
      file.get_double("checkpoint", "interval", options.checkpoint.interval);
  return options;
}

RunDescription run_from_config(const ConfigFile& file) {
  RunDescription run{platform_from_config(file)};
  run.w_total = file.require_double("workload", "total");
  if (!(run.w_total > 0.0)) throw ConfigError("[workload] total must be positive");

  run.algorithm = file.get_string("schedule", "algorithm", "rumr");
  std::transform(run.algorithm.begin(), run.algorithm.end(), run.algorithm.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  run.known_error = file.get_double("schedule", "error",
                                    file.get_double("simulation", "error", 0.0));

  run.sim_options = sim_options_from_config(file);
  run.repetitions = std::max<std::size_t>(1, file.get_size("simulation", "repetitions", 1));
  return run;
}

std::unique_ptr<sim::SchedulerPolicy> make_policy(const RunDescription& run) {
  return make_policy(run.algorithm, run.platform, run.w_total, run.known_error);
}

std::unique_ptr<sim::SchedulerPolicy> make_policy(const std::string& name,
                                                  const platform::StarPlatform& platform,
                                                  double w_total, double known_error) {
  if (name == "rumr") {
    core::RumrOptions options;
    options.known_error = known_error;
    return std::make_unique<core::RumrPolicy>(platform, w_total, std::move(options));
  }
  if (name == "rumr-adaptive") {
    return std::make_unique<core::AdaptiveRumrPolicy>(platform, w_total);
  }
  if (name == "umr") {
    return std::make_unique<core::UmrPolicy>(platform, w_total, core::DispatchOrder::kTimetable);
  }
  if (name == "umr-eager") {
    return std::make_unique<core::UmrPolicy>(platform, w_total, core::DispatchOrder::kInOrder);
  }
  if (name.rfind("mi-", 0) == 0) {
    const std::size_t installments = static_cast<std::size_t>(
        std::strtoull(name.c_str() + 3, nullptr, 10));
    if (installments == 0) throw ConfigError("bad MI installment count in: " + name);
    return baselines::make_mi_policy(platform, w_total, installments);
  }
  if (name == "factoring") return baselines::make_factoring_policy(platform, w_total);
  if (name == "wf") return baselines::make_weighted_factoring_policy(platform, w_total);
  if (name == "gss") return baselines::make_gss_policy(platform, w_total);
  if (name == "tss") return baselines::make_tss_policy(platform, w_total);
  if (name == "fsc") return baselines::make_fsc_policy(platform, w_total, known_error);
  throw ConfigError("unknown algorithm: " + name);
}

}  // namespace rumr::config
