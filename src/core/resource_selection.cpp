#include "core/resource_selection.hpp"

#include <algorithm>
#include <numeric>

namespace rumr::core {

std::vector<std::size_t> select_workers(const platform::StarPlatform& platform,
                                        double utilization_budget) {
  std::vector<std::size_t> order(platform.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return platform.worker(a).bandwidth > platform.worker(b).bandwidth;
  });

  std::vector<std::size_t> selected;
  double used = 0.0;
  for (std::size_t i : order) {
    const platform::WorkerSpec& w = platform.worker(i);
    const double weight = w.speed / w.bandwidth;
    if (used + weight <= utilization_budget || selected.empty()) {
      selected.push_back(i);
      used += weight;
      // If even the first worker blew the budget, stop at one: adding more
      // only worsens an already-saturated uplink.
      if (used > utilization_budget) break;
    }
  }
  return selected;
}

}  // namespace rumr::core
