#pragma once

/// \file umr_policy.hpp
/// Execution policy for UMR schedules, with the dispatch-order knob that
/// RUMR's phase 1 adds (paper section 4.2, design choice ii).

#include <string>
#include <vector>

#include "core/umr.hpp"
#include "sim/policy.hpp"

namespace rumr::core {

/// How chunks inside a round are ordered and paced.
enum class DispatchOrder : unsigned char {
  /// Plain UMR, eagerly executed: strict round-robin (worker 0, 1, ...,
  /// N-1 every round), each send starting as soon as the uplink frees.
  kInOrder,
  /// RUMR's phase-1 modification: within the current round, a worker that
  /// finished prematurely (nothing outstanding) jumps the queue; next
  /// preference goes to workers that can receive without blocking. Rounds
  /// are never reordered, preserving the increasing-chunk-size property.
  kOutOfOrder,
  /// UMR as a literal precalculated schedule: round-robin order AND the
  /// precalculated send start times — a send never starts before its planned
  /// time, even if the uplink freed early (transfers that ran fast do not
  /// let the master run ahead of its timetable). This is the fully
  /// "precalculated at the onset" execution the paper contrasts RUMR's
  /// greedy component against.
  kTimetable,
};

/// Replays a UMR schedule round by round.
class UmrPolicy : public sim::SchedulerPolicy {
 public:
  /// Wraps an already-solved schedule.
  UmrPolicy(UmrSchedule schedule, DispatchOrder order, std::string name = "UMR");

  /// Solves UMR for (platform, w_total) and wraps the result.
  UmrPolicy(const platform::StarPlatform& platform, double w_total,
            DispatchOrder order = DispatchOrder::kInOrder, const UmrOptions& options = {},
            std::string name = "UMR");

  [[nodiscard]] std::string_view name() const override { return name_; }
  std::optional<sim::Dispatch> next_dispatch(const sim::MasterContext& ctx) override;
  [[nodiscard]] std::optional<des::SimTime> next_poll_time() const override;
  [[nodiscard]] bool finished() const override;
  [[nodiscard]] double total_work() const override { return total_work_; }

  [[nodiscard]] const UmrSchedule& schedule() const noexcept { return schedule_; }
  [[nodiscard]] DispatchOrder order() const noexcept { return order_; }

 private:
  void skip_empty_slots();
  void build_timetable(const platform::StarPlatform& platform);

  std::string name_;
  UmrSchedule schedule_;
  DispatchOrder order_;
  double total_work_ = 0.0;
  /// sent_[j][k]: round j's chunk for selected-worker slot k already dispatched.
  std::vector<std::vector<char>> sent_;
  std::size_t current_round_ = 0;
  std::size_t remaining_in_round_ = 0;
  /// kTimetable only: planned send start time of each dispatch, flattened in
  /// round-robin order; indexed by sent_count_.
  std::vector<des::SimTime> timetable_;
  std::size_t sent_count_ = 0;
};

}  // namespace rumr::core
