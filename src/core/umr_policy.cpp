#include "core/umr_policy.hpp"

#include <stdexcept>
#include <utility>

namespace rumr::core {

UmrPolicy::UmrPolicy(UmrSchedule schedule, DispatchOrder order, std::string name)
    : name_(std::move(name)), schedule_(std::move(schedule)), order_(order) {
  if (order_ == DispatchOrder::kTimetable) {
    throw std::invalid_argument(
        "kTimetable needs the platform to compute planned send times; use the "
        "platform-taking UmrPolicy constructor");
  }
  total_work_ = schedule_.total();
  sent_.resize(schedule_.rounds);
  for (std::size_t j = 0; j < schedule_.rounds; ++j) {
    sent_[j].assign(schedule_.chunk[j].size(), 0);
  }
  remaining_in_round_ = schedule_.rounds > 0 ? schedule_.chunk[0].size() : 0;
  skip_empty_slots();
}

UmrPolicy::UmrPolicy(const platform::StarPlatform& platform, double w_total, DispatchOrder order,
                     const UmrOptions& options, std::string name)
    : UmrPolicy(solve_umr(platform, w_total, options),
                order == DispatchOrder::kTimetable ? DispatchOrder::kInOrder : order,
                std::move(name)) {
  if (order == DispatchOrder::kTimetable) {
    order_ = DispatchOrder::kTimetable;
    build_timetable(platform);
  }
}

void UmrPolicy::build_timetable(const platform::StarPlatform& platform) {
  // Planned send start times: the precalculated schedule keeps the uplink
  // saturated, so chunk k's send is planned to start when the (predicted)
  // serial parts of all earlier sends have completed. Zero-sized chunks are
  // skipped, mirroring the dispatch path.
  timetable_.clear();
  des::SimTime clock = 0.0;
  for (std::size_t j = 0; j < schedule_.rounds; ++j) {
    for (std::size_t k = 0; k < schedule_.chunk[j].size(); ++k) {
      const double chunk = schedule_.chunk[j][k];
      if (chunk <= 0.0) continue;
      timetable_.push_back(clock);
      clock += platform.comm_serial_time(schedule_.selected_workers[k], chunk);
    }
  }
}

void UmrPolicy::skip_empty_slots() {
  // Zero-sized chunks (a worker whose cLat consumed its whole round) are
  // treated as already dispatched; also advances past completed rounds.
  while (current_round_ < schedule_.rounds) {
    auto& round_sent = sent_[current_round_];
    const auto& round_chunks = schedule_.chunk[current_round_];
    remaining_in_round_ = 0;
    for (std::size_t k = 0; k < round_sent.size(); ++k) {
      if (!round_sent[k] && round_chunks[k] <= 0.0) round_sent[k] = 1;
      if (!round_sent[k]) ++remaining_in_round_;
    }
    if (remaining_in_round_ > 0) return;
    ++current_round_;
  }
}

std::optional<sim::Dispatch> UmrPolicy::next_dispatch(const sim::MasterContext& ctx) {
  if (current_round_ >= schedule_.rounds) return std::nullopt;

  // Timetable mode: never run ahead of the precalculated send times.
  if (order_ == DispatchOrder::kTimetable && sent_count_ < timetable_.size() &&
      ctx.now() < timetable_[sent_count_]) {
    return std::nullopt;
  }

  auto& round_sent = sent_[current_round_];
  const auto& round_chunks = schedule_.chunk[current_round_];

  std::size_t pick = round_sent.size();
  if (order_ != DispatchOrder::kOutOfOrder) {
    for (std::size_t k = 0; k < round_sent.size(); ++k) {
      if (!round_sent[k]) {
        pick = k;
        break;
      }
    }
  } else {
    // Out of order (the paper's phase-1 revision): keep the round-robin
    // order unless a worker "finishes prematurely" — i.e. an unserved worker
    // of this round has nothing outstanding. Prematurely idle workers are
    // served first (earliest completion first); otherwise fall back to slot
    // order. Deviating only on observed idleness keeps the increasing-chunk
    // structure intact when predictions are good (Figure 7's observation
    // that aggressive reordering can hurt at low error).
    std::size_t first_unserved = round_sent.size();
    std::size_t first_receivable = round_sent.size();
    double best_completion = 0.0;
    for (std::size_t k = 0; k < round_sent.size(); ++k) {
      if (round_sent[k]) continue;
      const std::size_t worker = schedule_.selected_workers[k];
      if (first_unserved == round_sent.size()) first_unserved = k;
      const sim::WorkerStatus& st = ctx.worker_status(worker);
      // Fenced workers never win a preference slot (their chunk will be
      // redirected below when slot order reaches them).
      if (!st.alive) continue;
      if (first_receivable == round_sent.size() && ctx.can_receive(worker)) {
        first_receivable = k;
      }
      if (st.outstanding == 0 && st.completed_chunks > 0) {
        if (pick == round_sent.size() || st.last_completion < best_completion) {
          pick = k;
          best_completion = st.last_completion;
        }
      }
    }
    // Preference: prematurely idle worker, then any worker that can receive
    // without blocking the uplink, then plain round-robin order.
    if (pick == round_sent.size()) pick = first_receivable;
    if (pick == round_sent.size()) pick = first_unserved;
  }
  if (pick == round_sent.size()) return std::nullopt;  // Unreachable if invariants hold.

  // Fault fallback: the precalculated schedule assumed every selected worker
  // survives. A slot aimed at a fenced worker is redirected — preferably to
  // an alive *selected* worker (keeping phase structure), else to any alive
  // worker, soonest predicted-ready first. When nobody is alive the slot is
  // NOT consumed: the policy waits for a rejoin instead of dropping work.
  std::size_t target = schedule_.selected_workers[pick];
  if (!ctx.worker_status(target).alive) {
    std::size_t fallback = ctx.num_workers();
    for (std::size_t w : schedule_.selected_workers) {
      const sim::WorkerStatus& st = ctx.worker_status(w);
      if (!st.alive) continue;
      if (fallback == ctx.num_workers() ||
          st.predicted_ready < ctx.worker_status(fallback).predicted_ready) {
        fallback = w;
      }
    }
    if (fallback == ctx.num_workers()) {
      for (std::size_t w = 0; w < ctx.num_workers(); ++w) {
        const sim::WorkerStatus& st = ctx.worker_status(w);
        if (!st.alive) continue;
        if (fallback == ctx.num_workers() ||
            st.predicted_ready < ctx.worker_status(fallback).predicted_ready) {
          fallback = w;
        }
      }
    }
    if (fallback == ctx.num_workers()) return std::nullopt;
    target = fallback;
  }

  round_sent[pick] = 1;
  --remaining_in_round_;
  ++sent_count_;
  const sim::Dispatch d{target, round_chunks[pick]};
  if (remaining_in_round_ == 0) {
    ++current_round_;
    skip_empty_slots();
  }
  return d;
}

std::optional<des::SimTime> UmrPolicy::next_poll_time() const {
  if (order_ != DispatchOrder::kTimetable || finished() || sent_count_ >= timetable_.size()) {
    return std::nullopt;
  }
  return timetable_[sent_count_];
}

bool UmrPolicy::finished() const { return current_round_ >= schedule_.rounds; }

}  // namespace rumr::core
