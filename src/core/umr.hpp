#pragma once

/// \file umr.hpp
/// UMR — Uniform Multi-Round scheduling (Yang & Casanova, IPDPS 2003), the
/// performance-oriented half of RUMR.
///
/// UMR dispatches the workload in M rounds. Within round j every selected
/// worker i receives one chunk; chunks are sized so that all workers take the
/// same time tau_j to compute their round-j chunk, and so that the master
/// finishes sending round j+1 exactly when round j's computations finish
/// (full overlap of communication and computation). This gives the linear
/// recurrence
///
///     tau_{j+1} = (tau_j - beta) / A,
///     A    = sum_i S_i / B_i,
///     beta = sum_i nLat_i - sum_i S_i * cLat_i / B_i,
///
/// so round times — and chunk sizes chunk_{j,i} = S_i * (tau_j - cLat_i) —
/// grow geometrically with ratio 1/A (the *increasing chunk sizes* that hide
/// per-round latencies; A < 1 is the full-utilization condition). For a
/// homogeneous platform this reduces to the paper's
/// chunk_{j+1} = theta * chunk_j + gamma with theta = B/(N*S).
///
/// Given the workload constraint, tau_0 is *determined* by the round count M,
/// so the whole optimization collapses to minimizing a 1-D makespan function
/// E(M). Two solvers are provided: an exact scan over integer M (default) and
/// the paper's route — a continuous relaxation solved by bisection on
/// dE/dM — which the test suite cross-checks against the scan.

#include <cstddef>
#include <vector>

#include "platform/platform.hpp"
#include "sim/policy.hpp"

namespace rumr::core {

/// How the optimal round count is located.
enum class UmrSolverMethod : unsigned char {
  kScan,       ///< Exact minimization over integer M (default).
  kBisection,  ///< Continuous relaxation, bisection on dE/dM (paper's route).
};

/// Solver configuration.
struct UmrOptions {
  UmrSolverMethod method = UmrSolverMethod::kScan;
  /// Hard cap on the number of rounds considered.
  std::size_t max_rounds = 4096;
  /// When true and the full-utilization condition fails (A close to or above
  /// 1), a subset of workers is selected first (see resource_selection.hpp).
  bool allow_resource_selection = true;
  /// Selection keeps A <= 1 - utilization_margin.
  double utilization_margin = 0.05;
};

/// A solved UMR schedule.
struct UmrSchedule {
  /// Optimal number of rounds M.
  std::size_t rounds = 0;
  /// tau_j: common per-worker computation time of round j (seconds).
  std::vector<double> round_time;
  /// chunk[j][k]: round j's chunk for the k-th *selected* worker.
  std::vector<std::vector<double>> chunk;
  /// Indices (into the original platform) of the workers actually used.
  std::vector<std::size_t> selected_workers;
  /// True if resource selection dropped at least one worker.
  bool used_resource_selection = false;
  /// Model-predicted makespan E(M) of the chosen schedule (seconds).
  double predicted_makespan = 0.0;
  /// Geometric growth ratio of round times, 1/A (> 1 means increasing).
  double growth = 0.0;

  /// Total scheduled workload (== the requested W up to rounding).
  [[nodiscard]] double total() const;

  /// Dispatch plan in UMR's canonical order: rounds outer, workers inner,
  /// with worker indices mapped back to the original platform.
  [[nodiscard]] std::vector<sim::Dispatch> to_plan() const;
};

/// Solves UMR for `w_total` workload units on `platform`.
///
/// Always succeeds for valid inputs: M = 1 (a single round proportional to
/// worker speeds) is always feasible, so the result has rounds >= 1. Throws
/// std::invalid_argument for non-positive workloads.
[[nodiscard]] UmrSchedule solve_umr(const platform::StarPlatform& platform, double w_total,
                                    const UmrOptions& options = {});

/// Predicted makespan E(M) for a given integer round count on the *selected*
/// platform, or +inf when M is infeasible (some chunk would be non-positive).
/// Exposed for tests and for the bisection solver.
[[nodiscard]] double umr_predicted_makespan(const platform::StarPlatform& platform,
                                            double w_total, std::size_t rounds);

}  // namespace rumr::core
