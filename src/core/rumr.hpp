#pragma once

/// \file rumr.hpp
/// RUMR — Robust Uniform Multi-Round (Yang & Casanova, HPDC 2003): the
/// paper's primary contribution.
///
/// RUMR schedules the workload in two consecutive phases:
///   - Phase 1: a revised UMR (increasing chunk sizes, out-of-order dispatch
///     within a round) pre-calculates the initial portion of the schedule for
///     high performance via communication/computation overlap.
///   - Phase 2: Factoring (decreasing chunk sizes, greedy self-scheduling)
///     limits the damage of performance-prediction errors at the end.
///
/// Design choices (paper section 4.2):
///   (i)   Phase-2 share: `error * W_total` when the error magnitude is
///         known, subject to the threshold that the per-worker phase-2 work
///         must cover one empty-round overhead (cLat + nLat*N); a fixed
///         fraction (default 20%) when it is unknown.
///   (ii)  Phase 1 allows out-of-order chunk dispatching so prematurely idle
///         workers are fed early.
///   (iii) Phase-2 chunk sizes are bounded below by (cLat + nLat*N)/error
///         (known error) or (cLat + nLat*N) (unknown), in work units.

#include <optional>
#include <string>

#include <memory>

#include "baselines/factoring.hpp"
#include "core/umr_policy.hpp"
#include "platform/platform.hpp"
#include "sim/policy.hpp"

namespace rumr::core {

/// RUMR configuration.
struct RumrOptions {
  /// Estimated prediction-error magnitude (the `error` of section 4.1), if
  /// one is available. nullopt selects the fixed-fraction fallback.
  std::optional<double> known_error{};

  /// Phase-2 share of the workload when the error is unknown (the paper's
  /// section 5.2.1 finds 20% a good practical choice).
  double unknown_error_phase2_fraction = 0.2;

  /// Apply the overhead-based threshold to the known-error split (original
  /// RUMR behavior): phase 2 engages only when its share can hold at least
  /// `phase2_min_chunks` chunks of the floor size (cLat + nLat*N)/error,
  /// i.e. error^2 * W >= phase2_min_chunks * (cLat + nLat*N). The paper's
  /// three threshold statements are mutually inconsistent (see DESIGN.md);
  /// this reading reproduces the phase-2 onset at error ~= 0.18 observed in
  /// the paper's Figure 5. The fixed-percentage variants of Figure 6 set
  /// this to false: they always reserve their share.
  bool apply_phase2_threshold = true;

  /// Minimum number of floor-sized chunks phase 2 must be able to schedule;
  /// 2 is the smallest count that allows any end-of-run rebalancing.
  double phase2_min_chunks = 2.0;

  /// Scales the overhead term (cLat + nLat*N) in both the threshold and the
  /// chunk floor. The default 0.5 calibrates the phase-2 onset to the
  /// error ~= 0.18 the paper's Figure 5 exhibits for cLat = 0.3, nLat = 0.9,
  /// N = 20 (see DESIGN.md).
  double phase2_threshold_scale = 0.5;

  /// Phase-1 dispatch order; kOutOfOrder is original RUMR, kInOrder is the
  /// "plain UMR in phase 1" ablation of Figure 7.
  DispatchOrder phase1_order = DispatchOrder::kOutOfOrder;

  /// Factoring factor for phase 2 (each batch schedules 1/f of what's left).
  double factoring_factor = 2.0;

  /// Options forwarded to the phase-1 UMR solver.
  UmrOptions umr{};

  /// Report name (variants override: "RUMR-80", "RUMR-inorder", ...).
  std::string name = "RUMR";
};

/// Workload units RUMR reserves for phase 2 under the given options —
/// exposed separately so the split heuristic is directly testable.
[[nodiscard]] double rumr_phase2_work(const platform::StarPlatform& platform, double w_total,
                                      const RumrOptions& options);

/// The RUMR policy.
class RumrPolicy : public sim::SchedulerPolicy {
 public:
  RumrPolicy(const platform::StarPlatform& platform, double w_total, RumrOptions options = {});

  [[nodiscard]] std::string_view name() const override { return name_; }
  std::optional<sim::Dispatch> next_dispatch(const sim::MasterContext& ctx) override;
  void on_worker_down(const sim::MasterContext& ctx, std::size_t worker) override;
  void on_worker_up(const sim::MasterContext& ctx, std::size_t worker) override;
  [[nodiscard]] std::optional<des::SimTime> next_poll_time() const override;
  [[nodiscard]] bool finished() const override;
  [[nodiscard]] double total_work() const override { return w_total_; }

  /// Workload reserved for phase 2 (0 means pure UMR; w_total means pure
  /// Factoring).
  [[nodiscard]] double phase2_work() const noexcept { return w_phase2_; }
  /// Rounds the phase-1 UMR schedule uses (0 when phase 1 is empty).
  [[nodiscard]] std::size_t phase1_rounds() const noexcept;
  /// True once phase 1 has fully dispatched and phase 2 is (or would be) active.
  [[nodiscard]] bool in_phase2() const noexcept;

 private:
  std::string name_;
  double w_total_ = 0.0;
  double w_phase2_ = 0.0;
  std::optional<UmrPolicy> phase1_;
  /// Plain Factoring (late binding, best when workers are interchangeable)
  /// on homogeneous worker sets; speed-weighted Factoring on heterogeneous
  /// ones, so slow workers get proportionally smaller phase-2 chunks.
  std::unique_ptr<sim::SchedulerPolicy> phase2_;
};

/// Fixed-split variant for the Figure 6 ablation: schedules
/// `phase1_percent`% of the workload in phase 1 regardless of error.
[[nodiscard]] RumrOptions rumr_fixed_split_options(double phase1_percent);

}  // namespace rumr::core
