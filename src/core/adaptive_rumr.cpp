#include "core/adaptive_rumr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rumr::core {

AdaptiveRumrPolicy::AdaptiveRumrPolicy(const platform::StarPlatform& platform, double w_total,
                                       AdaptiveRumrOptions options)
    : platform_(&platform), w_total_(w_total), options_(std::move(options)) {
  if (!(w_total > 0.0) || !std::isfinite(w_total)) {
    throw std::invalid_argument("adaptive RUMR requires a positive, finite workload");
  }
  const double fraction = std::clamp(options_.pilot_fraction, 0.0, 1.0);
  const double w_pilot = fraction * w_total;
  w_rest_ = w_total - w_pilot;
  if (w_pilot > 0.0) {
    pilot_.emplace(platform, w_pilot, DispatchOrder::kOutOfOrder, options_.rumr.umr,
                   name_ + "/pilot");
  }
}

void AdaptiveRumrPolicy::build_rest(const platform::StarPlatform& platform) {
  double error = options_.fallback_error;
  if (ratios_.count() >= options_.min_samples) {
    // The sample spread of predicted/actual ratios is exactly the paper's
    // `error` parameter. Clamp into the meaningful range.
    error = std::clamp(ratios_.stddev(), 0.0, 1.0);
  }
  estimate_ = error;
  RumrOptions rumr = options_.rumr;
  rumr.known_error = error;
  rumr.name = name_ + "/rest";
  rest_.emplace(platform, w_rest_, std::move(rumr));
}

std::optional<sim::Dispatch> AdaptiveRumrPolicy::next_dispatch(const sim::MasterContext& ctx) {
  if (pilot_ && !pilot_->finished()) return pilot_->next_dispatch(ctx);
  if (!rest_ && w_rest_ > 0.0) build_rest(*platform_);
  if (rest_ && !rest_->finished()) return rest_->next_dispatch(ctx);
  return std::nullopt;
}

void AdaptiveRumrPolicy::on_chunk_completed(const sim::MasterContext&,
                                            const sim::CompletionInfo& info) {
  if (rest_) return;  // Only pilot completions feed the estimator.
  // Sample actual/predicted: under the section 4.1 model this is exactly the
  // N(1, error) ratio, so its sample stddev estimates `error` directly
  // (the inverse predicted/actual would be 1/Normal, whose heavy tail
  // inflates the spread badly).
  if (info.predicted_comp > 0.0) ratios_.add(info.actual_comp / info.predicted_comp);
}

void AdaptiveRumrPolicy::on_worker_down(const sim::MasterContext& ctx, std::size_t worker) {
  if (pilot_) pilot_->on_worker_down(ctx, worker);
  if (rest_) rest_->on_worker_down(ctx, worker);
}

void AdaptiveRumrPolicy::on_worker_up(const sim::MasterContext& ctx, std::size_t worker) {
  if (pilot_) pilot_->on_worker_up(ctx, worker);
  if (rest_) rest_->on_worker_up(ctx, worker);
}

bool AdaptiveRumrPolicy::finished() const {
  const bool pilot_done = !pilot_ || pilot_->finished();
  if (!pilot_done) return false;
  if (w_rest_ <= 0.0) return true;
  return rest_ && rest_->finished();
}

}  // namespace rumr::core
