#pragma once

/// \file resource_selection.hpp
/// Worker selection for multi-round scheduling.
///
/// Multi-round schedules with increasing chunk sizes require the
/// full-utilization condition A = sum_i S_i/B_i < 1: the master must be able
/// to feed the aggregate compute rate. When a platform violates it, UMR
/// prescribes using a subset of the workers (RUMR paper section 5; details in
/// the UMR technical report [17], which is not publicly archived — the greedy
/// below is our documented substitution, see DESIGN.md).
///
/// Selecting the subset maximizing total speed subject to
/// sum S_i/B_i <= A_max is a knapsack (value S_i, weight S_i/B_i); the
/// classic density greedy sorts by value/weight = B_i descending and adds
/// while the budget holds. On homogeneous platforms this reduces exactly to
/// "use the largest N' with N'*S/B <= A_max", which is what the paper's
/// condition asks for.

#include <cstddef>
#include <vector>

#include "platform/platform.hpp"

namespace rumr::core {

/// Returns the indices of the selected workers, in descending-bandwidth
/// order (ties broken by index for determinism). At least one worker is
/// always selected, even if it alone violates the budget (the UMR solver
/// degrades to few-round schedules in that case rather than failing).
[[nodiscard]] std::vector<std::size_t> select_workers(const platform::StarPlatform& platform,
                                                      double utilization_budget);

}  // namespace rumr::core
