#include "core/umr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/resource_selection.hpp"

namespace rumr::core {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Platform aggregates the UMR recurrence needs.
struct Aggregates {
  double a = 0.0;         ///< A = sum S_i / B_i.
  double beta = 0.0;      ///< sum nLat_i - sum S_i cLat_i / B_i.
  double s_total = 0.0;   ///< sum S_i.
  double d = 0.0;         ///< sum S_i cLat_i.
  double c2 = 0.0;        ///< sum S_i cLat_i / B_i.
  double sum_nlat = 0.0;  ///< sum nLat_i.
  double max_clat = 0.0;  ///< max cLat_i (round time must exceed it).
  double max_tlat = 0.0;  ///< max tLat_i (tail term of the makespan).
};

Aggregates compute_aggregates(const platform::StarPlatform& p) {
  Aggregates g;
  for (const platform::WorkerSpec& w : p.workers()) {
    g.a += w.speed / w.bandwidth;
    g.s_total += w.speed;
    g.d += w.speed * w.comp_latency;
    g.c2 += w.speed * w.comp_latency / w.bandwidth;
    g.sum_nlat += w.comm_latency;
    g.max_clat = std::max(g.max_clat, w.comp_latency);
    g.max_tlat = std::max(g.max_tlat, w.transfer_latency);
  }
  g.beta = g.sum_nlat - g.c2;
  return g;
}

/// Round-time sequence for a given (possibly fractional, for the continuous
/// relaxation) round count. Returns tau_0, or NaN when the geometry breaks
/// down numerically.
double initial_round_time(const Aggregates& g, double w_total, double m) {
  const double sum_tau_target = (w_total + m * g.d) / g.s_total;
  if (std::abs(g.a - 1.0) < 1e-12) {
    // rho == 1: arithmetic round times, tau_{j+1} = tau_j - beta.
    return sum_tau_target / m + g.beta * (m - 1.0) / 2.0;
  }
  const double rho = 1.0 / g.a;
  // Guard rho^m against overflow; such m are wildly past the optimum anyway.
  if (m * std::log(std::max(rho, 1e-300)) > 650.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double tau_star = g.beta / (1.0 - g.a);
  const double geo_sum = (std::pow(rho, m) - 1.0) / (rho - 1.0);
  return tau_star + (sum_tau_target - m * tau_star) / geo_sum;
}

/// Predicted makespan E(M) = round-0 dispatch + sum of round times + tail:
///   E = sum nLat_i + A*tau_0 - C2 + (W + M*D)/S_total + max tLat_i.
/// +inf when the round-time sequence is infeasible (some chunk <= 0).
double predicted_makespan(const Aggregates& g, double w_total, double m, double tau0) {
  if (!std::isfinite(tau0)) return kInfinity;
  // Feasibility: every round time must exceed the largest cLat so all chunks
  // are positive. The sequence is monotone, so checking both ends suffices;
  // walk the recurrence for the final value.
  const double floor_tau = g.max_clat + 1e-12 * std::max(1.0, std::abs(tau0));
  double tau = tau0;
  const std::size_t last = static_cast<std::size_t>(std::ceil(m)) - 1;
  for (std::size_t j = 0; j < last; ++j) tau = (tau - g.beta) / g.a;
  if (!(tau0 > floor_tau) || !(tau > floor_tau) || !std::isfinite(tau)) return kInfinity;
  return g.sum_nlat + g.a * tau0 - g.c2 + (w_total + m * g.d) / g.s_total + g.max_tlat;
}

double makespan_at(const Aggregates& g, double w_total, double m) {
  return predicted_makespan(g, w_total, m, initial_round_time(g, w_total, m));
}

/// Exact scan over integer round counts. M = 1 is always feasible
/// (tau_0 = (W + D)/S_total >= max cLat as long as W > 0), so this always
/// returns a valid M.
std::size_t scan_rounds(const Aggregates& g, double w_total, std::size_t max_rounds) {
  std::size_t best_m = 1;
  double best_e = makespan_at(g, w_total, 1.0);
  for (std::size_t m = 2; m <= max_rounds; ++m) {
    const double e = makespan_at(g, w_total, static_cast<double>(m));
    // Require a material improvement so flat tails (e.g. zero latencies,
    // where E(M) decreases forever by vanishing amounts) terminate.
    if (e < best_e - 1e-9 * (1.0 + std::abs(best_e))) {
      best_e = e;
      best_m = m;
    } else if (m > best_m + 64) {
      break;  // Well past the minimum.
    }
  }
  return best_m;
}

/// The paper's route: treat M as continuous, locate the stationary point of
/// E(M) numerically (bisection on the finite-difference derivative), then
/// take the better of the two neighboring integers.
std::size_t bisect_rounds(const Aggregates& g, double w_total, std::size_t max_rounds) {
  const auto e_of = [&](double m) { return makespan_at(g, w_total, m); };
  const auto derivative = [&](double m) {
    const double h = std::max(1e-4, 1e-6 * m);
    return (e_of(m + h) - e_of(m - h)) / (2.0 * h);
  };

  // Find an upper bracket: the largest feasible power-of-two round count.
  double hi = 1.0;
  while (hi < static_cast<double>(max_rounds) && std::isfinite(e_of(hi * 2.0))) hi *= 2.0;
  hi = std::min(hi, static_cast<double>(max_rounds));

  double lo = 1.0;
  double m_star = hi;
  if (derivative(lo + 1e-4) >= 0.0) {
    m_star = 1.0;  // E already increasing at M = 1.
  } else if (derivative(hi) <= 0.0) {
    m_star = hi;  // Still decreasing at the bracket edge.
  } else {
    for (int iter = 0; iter < 200 && hi - lo > 1e-6; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (derivative(mid) < 0.0 ? lo : hi) = mid;
    }
    m_star = 0.5 * (lo + hi);
  }

  const auto floor_m = static_cast<std::size_t>(std::max(1.0, std::floor(m_star)));
  const std::size_t ceil_m = std::min<std::size_t>(floor_m + 1, max_rounds);
  const double e_floor = makespan_at(g, w_total, static_cast<double>(floor_m));
  const double e_ceil = makespan_at(g, w_total, static_cast<double>(ceil_m));
  if (!std::isfinite(e_floor) && !std::isfinite(e_ceil)) return 1;
  return e_ceil < e_floor ? ceil_m : floor_m;
}

}  // namespace

double UmrSchedule::total() const {
  double sum = 0.0;
  for (const auto& round : chunk) {
    for (double c : round) sum += c;
  }
  return sum;
}

std::vector<sim::Dispatch> UmrSchedule::to_plan() const {
  std::vector<sim::Dispatch> plan;
  plan.reserve(rounds * selected_workers.size());
  for (const auto& round : chunk) {
    for (std::size_t k = 0; k < round.size(); ++k) {
      if (round[k] > 0.0) plan.push_back({selected_workers[k], round[k]});
    }
  }
  return plan;
}

double umr_predicted_makespan(const platform::StarPlatform& platform, double w_total,
                              std::size_t rounds) {
  const Aggregates g = compute_aggregates(platform);
  return makespan_at(g, w_total, static_cast<double>(rounds));
}

UmrSchedule solve_umr(const platform::StarPlatform& platform, double w_total,
                      const UmrOptions& options) {
  if (!(w_total > 0.0) || !std::isfinite(w_total)) {
    throw std::invalid_argument("UMR requires a positive, finite workload");
  }
  if (options.max_rounds == 0) throw std::invalid_argument("max_rounds must be >= 1");

  // Resource selection: enforce the full-utilization condition when asked.
  std::vector<std::size_t> selected(platform.size());
  std::iota(selected.begin(), selected.end(), std::size_t{0});
  const double budget = 1.0 - options.utilization_margin;
  if (options.allow_resource_selection && platform.utilization_ratio() > budget) {
    selected = select_workers(platform, budget);
  }
  const platform::StarPlatform active =
      selected.size() == platform.size() ? platform : platform.subset(selected);

  const Aggregates g = compute_aggregates(active);
  const std::size_t m = options.method == UmrSolverMethod::kScan
                            ? scan_rounds(g, w_total, options.max_rounds)
                            : bisect_rounds(g, w_total, options.max_rounds);

  UmrSchedule schedule;
  schedule.rounds = m;
  schedule.selected_workers = selected;
  schedule.used_resource_selection = selected.size() != platform.size();
  schedule.growth = 1.0 / g.a;
  schedule.predicted_makespan = makespan_at(g, w_total, static_cast<double>(m));

  schedule.round_time.resize(m);
  schedule.round_time[0] = initial_round_time(g, w_total, static_cast<double>(m));
  for (std::size_t j = 1; j < m; ++j) {
    schedule.round_time[j] = (schedule.round_time[j - 1] - g.beta) / g.a;
  }

  schedule.chunk.assign(m, std::vector<double>(active.size(), 0.0));
  double sum = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < active.size(); ++k) {
      const platform::WorkerSpec& w = active.worker(k);
      const double c = std::max(0.0, w.speed * (schedule.round_time[j] - w.comp_latency));
      schedule.chunk[j][k] = c;
      sum += c;
    }
  }
  // Normalize away floating-point drift so the dispatched total is exactly W.
  if (sum > 0.0) {
    const double scale = w_total / sum;
    for (auto& round : schedule.chunk) {
      for (double& c : round) c *= scale;
    }
  }
  return schedule;
}

}  // namespace rumr::core
