#include "core/rumr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baselines/loop_scheduling.hpp"

namespace rumr::core {

double rumr_phase2_work(const platform::StarPlatform& platform, double w_total,
                        const RumrOptions& options) {
  if (!(w_total > 0.0)) return 0.0;

  if (!options.known_error) {
    const double fraction = std::clamp(options.unknown_error_phase2_fraction, 0.0, 1.0);
    return fraction * w_total;
  }

  const double error = *options.known_error;
  if (error <= 0.0) return 0.0;  // Perfect predictions: RUMR defaults to UMR.
  if (error >= 1.0) return w_total;  // Hopeless predictions: pure Factoring.

  double phase2 = error * w_total;
  if (options.apply_phase2_threshold) {
    const double overhead =
        baselines::empty_round_overhead_work(platform) * options.phase2_threshold_scale;
    const double floor_chunk = overhead / error;
    // Phase 2 engages only when (a) it can schedule at least
    // phase2_min_chunks chunks of the floor size — otherwise it cannot
    // rebalance anything — and (b) the per-worker phase-2 share covers the
    // empty-round overhead (cLat + nLat*N) its greedy dispatch pays.
    if (phase2 < options.phase2_min_chunks * floor_chunk ||
        phase2 / static_cast<double>(platform.size()) < overhead) {
      phase2 = 0.0;
    }
  }
  return phase2;
}

RumrPolicy::RumrPolicy(const platform::StarPlatform& platform, double w_total,
                       RumrOptions options)
    : name_(std::move(options.name)), w_total_(w_total) {
  if (!(w_total > 0.0) || !std::isfinite(w_total)) {
    throw std::invalid_argument("RUMR requires a positive, finite workload");
  }

  w_phase2_ = rumr_phase2_work(platform, w_total, options);
  const double w_phase1 = w_total - w_phase2_;

  if (w_phase1 > 0.0) {
    phase1_.emplace(platform, w_phase1, options.phase1_order, options.umr, name_ + "/phase1");
  }
  if (w_phase2_ > 0.0) {
    // Phase 2 runs on the worker set phase 1 selected, so both phases agree
    // on which resources the application uses.
    std::vector<std::size_t> workers;
    if (phase1_) {
      workers = phase1_->schedule().selected_workers;
    } else {
      workers.resize(platform.size());
      for (std::size_t i = 0; i < workers.size(); ++i) workers[i] = i;
    }
    const platform::StarPlatform active =
        workers.size() == platform.size() ? platform : platform.subset(workers);

    baselines::FactoringOptions factoring;
    factoring.factor = options.factoring_factor;
    const double overhead =
        baselines::empty_round_overhead_work(active) * options.phase2_threshold_scale;
    if (options.known_error && *options.known_error > 0.0) {
      factoring.min_chunk = overhead / std::min(1.0, *options.known_error);
    } else {
      factoring.min_chunk = overhead;
    }
    // Never floor above the one-round share W/N: larger chunks could not be
    // scheduled even by a single-round algorithm and only lengthen the tail.
    // Never floor below W2/(8N) either: with near-zero latencies the paper's
    // floor vanishes and phase 2 would degenerate into hundreds of
    // micro-chunks whose request-reply round trips idle the workers.
    const auto n_active = static_cast<double>(workers.size());
    factoring.min_chunk =
        std::clamp(factoring.min_chunk, w_phase2_ / (8.0 * n_active),
                   w_total / static_cast<double>(platform.size()));
    if (active.is_homogeneous()) {
      phase2_ = std::make_unique<baselines::FactoringPolicy>(w_phase2_, std::move(workers),
                                                             factoring);
    } else {
      // Speed-weighted shares: Hummel's equal chunks would hand a slow
      // worker an average-sized chunk and blow up the tail.
      std::vector<double> weights;
      weights.reserve(workers.size());
      for (std::size_t k = 0; k < workers.size(); ++k) weights.push_back(active.worker(k).speed);
      phase2_ = std::make_unique<baselines::WeightedFactoringPolicy>(
          w_phase2_, std::move(workers), weights, factoring);
    }
    // Phase 2 stays strictly request-driven (max_outstanding = 1, the
    // SelfSchedulingPolicy default). We measured the one-chunk-prefetch
    // alternative (set_max_outstanding(2)): hiding the dispatch latency is
    // paid for by losing late binding — a chunk committed to a worker that
    // then runs slow cannot be rebalanced — and the net effect is slightly
    // negative across the Table 1 space. See bench_ablation_buffering.
  }
}

std::optional<sim::Dispatch> RumrPolicy::next_dispatch(const sim::MasterContext& ctx) {
  if (phase1_ && !phase1_->finished()) return phase1_->next_dispatch(ctx);
  if (phase2_ && !phase2_->finished()) return phase2_->next_dispatch(ctx);
  return std::nullopt;
}

void RumrPolicy::on_worker_down(const sim::MasterContext& ctx, std::size_t worker) {
  // Both phases see the fence: the inactive phase may still hold undispatched
  // work pinned to the fenced worker.
  if (phase1_) phase1_->on_worker_down(ctx, worker);
  if (phase2_) phase2_->on_worker_down(ctx, worker);
}

void RumrPolicy::on_worker_up(const sim::MasterContext& ctx, std::size_t worker) {
  if (phase1_) phase1_->on_worker_up(ctx, worker);
  if (phase2_) phase2_->on_worker_up(ctx, worker);
}

std::optional<des::SimTime> RumrPolicy::next_poll_time() const {
  // Forward timetable wake-ups when phase 1 runs in kTimetable mode (not
  // the default, but a legal RumrOptions::phase1_order); without this the
  // engine would never re-poll a time-gated phase 1.
  if (phase1_ && !phase1_->finished()) return phase1_->next_poll_time();
  return std::nullopt;
}

bool RumrPolicy::finished() const {
  return (!phase1_ || phase1_->finished()) && (!phase2_ || phase2_->finished());
}

std::size_t RumrPolicy::phase1_rounds() const noexcept {
  return phase1_ ? phase1_->schedule().rounds : 0;
}

bool RumrPolicy::in_phase2() const noexcept { return !phase1_ || phase1_->finished(); }

RumrOptions rumr_fixed_split_options(double phase1_percent) {
  RumrOptions options;
  options.known_error.reset();
  options.unknown_error_phase2_fraction = std::clamp(1.0 - phase1_percent / 100.0, 0.0, 1.0);
  options.apply_phase2_threshold = false;
  options.name = "RUMR-" + std::to_string(static_cast<int>(std::lround(phase1_percent)));
  return options;
}

}  // namespace rumr::core
