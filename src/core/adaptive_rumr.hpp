#pragma once

/// \file adaptive_rumr.hpp
/// On-line error estimation for RUMR (extension; the paper's sections 4.1 and
/// 5.2.1 point at "monitoring prediction errors as the application runs" as
/// the practical way to obtain `error`, and defer it to the APST integration).
///
/// The adaptive policy schedules a pilot fraction of the workload with
/// (out-of-order) UMR while recording, for every completed chunk, the ratio
/// of predicted to observed computation time. When the pilot is fully
/// dispatched, the sample standard deviation of those ratios — exactly the
/// `error` of the paper's model — parameterizes a regular known-error RUMR
/// over the remaining workload.

#include <optional>
#include <string>

#include "core/rumr.hpp"
#include "core/umr_policy.hpp"
#include "stats/summary.hpp"

namespace rumr::core {

/// Configuration for the adaptive policy.
struct AdaptiveRumrOptions {
  /// Fraction of the workload scheduled as the UMR pilot.
  double pilot_fraction = 0.3;
  /// Minimum ratio samples before trusting the estimate.
  std::size_t min_samples = 8;
  /// Error assumed when too few samples arrived by the end of the pilot.
  double fallback_error = 0.2;
  /// Forwarded to the inner RUMR (known_error is overwritten).
  RumrOptions rumr{};
};

/// RUMR with on-line error estimation.
class AdaptiveRumrPolicy : public sim::SchedulerPolicy {
 public:
  AdaptiveRumrPolicy(const platform::StarPlatform& platform, double w_total,
                     AdaptiveRumrOptions options = {});

  [[nodiscard]] std::string_view name() const override { return name_; }
  std::optional<sim::Dispatch> next_dispatch(const sim::MasterContext& ctx) override;
  void on_chunk_completed(const sim::MasterContext& ctx, const sim::CompletionInfo& info) override;
  void on_worker_down(const sim::MasterContext& ctx, std::size_t worker) override;
  void on_worker_up(const sim::MasterContext& ctx, std::size_t worker) override;
  [[nodiscard]] bool finished() const override;
  [[nodiscard]] double total_work() const override { return w_total_; }

  /// The error estimate in force (nullopt until the rest-policy is built).
  [[nodiscard]] std::optional<double> estimated_error() const noexcept { return estimate_; }

 private:
  void build_rest(const platform::StarPlatform& platform);

  std::string name_ = "RUMR-adaptive";
  const platform::StarPlatform* platform_ = nullptr;
  double w_total_ = 0.0;
  double w_rest_ = 0.0;
  AdaptiveRumrOptions options_;
  std::optional<UmrPolicy> pilot_;
  std::optional<RumrPolicy> rest_;
  std::optional<double> estimate_;
  stats::Accumulator ratios_;
};

}  // namespace rumr::core
