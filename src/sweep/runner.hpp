#pragma once

/// \file runner.hpp
/// Sharded map-reduce sweep engine.
///
/// A sweep is a grid of *cells* — (platform, axis value, algorithm) — each
/// summarizing many repetitions. The engine decomposes every (platform,
/// axis value) site into rep-block *shards*, runs the shards across
/// parallel_for's guided dynamic scheduler, folds each shard's runs into
/// mergeable accumulators (O(1) memory per shard), and reduces a site's
/// shard partials **in fixed shard-index order** the moment its last shard
/// lands. Completed cells stream out through a consumer callback; nothing
/// buffers the whole grid unless the caller asks for it.
///
/// Determinism contract (tested by sharded-vs-serial byte-identity tests and
/// audited at 1e-9 by audit_cell_merge):
///
///   - the shard decomposition is a pure function of (grid shape,
///     repetitions, rep_block) — never of the thread count;
///   - every repetition's seed is derived as
///       mix_seed(base_seed ^ fnv1a(platform label), round(axis*1000), rep)
///     (stats::mix_seed — the same scheme the facade's execute_all uses for
///     per-rep lanes), shared by all algorithms within the rep so paired
///     win-rate comparisons stay paired;
///   - shard partials merge in shard-index order, so the reduced cell is
///     byte-identical for any thread count or shard completion order (FP
///     addition is not associative; a fixed merge tree removes the only
///     source of divergence).
///
/// Emission order across *sites* is unspecified (sites complete when their
/// last shard does); the consumer is called under an internal mutex, so it
/// needs no synchronization of its own.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/des_audit.hpp"
#include "faults/fault_model.hpp"
#include "jobs/job_manager.hpp"
#include "obs/accumulators.hpp"
#include "sim/master_worker.hpp"
#include "stats/error_model.hpp"
#include "stats/summary.hpp"
#include "sweep/grid.hpp"
#include "sweep/scheduler_factory.hpp"

namespace rumr::sweep {

/// Sweep configuration.
struct SweepOptions {
  std::vector<double> errors = error_axis();              ///< Error levels to test.
  std::size_t repetitions = 40;                           ///< Paper default: 40.
  double w_total = 1000.0;                                ///< Paper default: 1000 units.
  std::size_t threads = 0;                                ///< 0 = hardware concurrency.
  std::uint64_t base_seed = 0x5eed5eed5eedULL;            ///< Sweep-level seed.
  stats::ErrorDistribution distribution =
      stats::ErrorDistribution::kTruncatedNormal;         ///< Paper default model.
  /// Worker-availability fault model applied to every run (default: none,
  /// the paper's setting). Enables failure-rate grid sweeps.
  faults::FaultSpec faults{};
  /// Detection/backoff knobs forwarded to the engine when faults are on.
  sim::SimOptions::FaultToleranceOptions fault_tolerance{};
  /// Audit every repetition with check::audit_sim_result (work conservation
  /// plus the observability identities). Cheap — no trace is recorded — and
  /// a violation aborts the sweep with check::CheckError.
  bool audit_runs = true;
  /// Repetitions per shard. 0 = auto: ceil(repetitions / 8), so every site
  /// splits into up to 8 shards *regardless of thread count* (the shard
  /// structure must be thread-independent for byte-identity to hold).
  /// Clamped to [1, repetitions].
  std::size_t rep_block = 0;

  /// Validates every option in one pass and returns the full list of
  /// human-readable problems (empty means the options are usable).
  /// run_sweep calls this up front and raises std::invalid_argument with
  /// all of them.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Aggregated results for one (platform, error, algorithm) cell. Every field
/// is a mergeable accumulator (integer sums, Welford moments, a quantile
/// sketch), so shard partials combine with merge() and the whole struct
/// stays O(1) in the repetition count.
struct CellStats {
  stats::Accumulator makespan;      ///< Over repetitions.
  std::size_t reps = 0;
  /// Repetitions in which the reference algorithm (index 0) strictly beat
  /// this one, and beat it by at least 10% (paper Tables 2 and 3).
  std::size_t ref_wins = 0;
  std::size_t ref_wins_by_10pct = 0;

  stats::Accumulator uplink_utilization;   ///< Occupancy busy / makespan.
  stats::Accumulator worker_utilization;   ///< Mean over workers per run.
  stats::Accumulator events;               ///< DES events executed per run.
  stats::Accumulator hol_blocking_time;    ///< Head-of-line blocking seconds.
  stats::Accumulator work_redispatched;    ///< Fault-layer re-sent units.

  /// Streaming makespan distribution (median/p95 without storing the reps).
  /// Comb spans ~1e-2..2.7e3 at 5% relative resolution.
  obs::QuantileSketch makespan_quantiles{1e-2, 1.05, 256};

  /// Folds `other` (a later shard of the same cell) into this one.
  void merge(const CellStats& other);
};

/// One completed cell, streamed to the consumer as soon as its site's last
/// shard lands. Indices address the caller's platforms/errors/algorithms
/// vectors; label/error/algorithm are carried so consumers need no lookup.
struct SweepCell {
  std::size_t platform_index = 0;
  std::size_t error_index = 0;
  std::size_t algorithm_index = 0;
  std::string platform_label;
  std::string algorithm;
  double error = 0.0;
  CellStats stats;
};

/// Cell sink. Called under the engine's emission mutex: invocations are
/// serialized, but their order across sites is unspecified.
using CellConsumer = std::function<void(const SweepCell&)>;

/// Full sweep output. Cells are indexed [config][error][algorithm].
class SweepResult {
 public:
  SweepResult(std::vector<PlatformConfig> configs, std::vector<double> errors,
              std::vector<std::string> algorithms);

  [[nodiscard]] const std::vector<PlatformConfig>& configs() const noexcept { return configs_; }
  [[nodiscard]] const std::vector<double>& errors() const noexcept { return errors_; }
  [[nodiscard]] const std::vector<std::string>& algorithms() const noexcept {
    return algorithms_;
  }

  [[nodiscard]] CellStats& cell(std::size_t config, std::size_t error, std::size_t algo);
  [[nodiscard]] const CellStats& cell(std::size_t config, std::size_t error,
                                      std::size_t algo) const;

  /// Mean makespan of `algo` normalized to the reference (algorithm 0),
  /// averaged over all configurations, at error index `error`. This is the
  /// y-axis of the paper's Figures 4-7.
  [[nodiscard]] double mean_normalized_makespan(std::size_t error, std::size_t algo) const;

  /// Percentage (0-100) of experiments — a (configuration, error value) pair
  /// whose result is the mean makespan over repetitions, as in the paper —
  /// across error band `band`, in which the reference strictly outperformed
  /// `algo` (Table 2) or did so by >= 10% (Table 3).
  [[nodiscard]] double win_percentage(std::size_t band, std::size_t algo,
                                      bool by_margin = false) const;

  /// Overall win percentage across every cell (the paper's "79% overall").
  [[nodiscard]] double overall_win_percentage(std::size_t algo) const;

  /// Per-repetition win percentage (same-seed pairwise comparisons) for the
  /// given band — a finer-grained companion metric the paper does not show.
  [[nodiscard]] double per_rep_win_percentage(std::size_t band, std::size_t algo,
                                              bool by_margin = false) const;

 private:
  std::vector<PlatformConfig> configs_;
  std::vector<double> errors_;
  std::vector<std::string> algorithms_;
  std::vector<CellStats> cells_;
};

/// The streaming engine: shards every (platform, error) site, runs the grid
/// across the pool, and emits each completed cell through `consumer`. Peak
/// memory is O(sites in flight x shards per site), never O(grid x reps).
///
/// Algorithm index 0 is the reference for the paired win counters. Throws
/// std::invalid_argument on validation failure and propagates the first
/// in-shard exception (e.g. check::CheckError from a failed audit).
void run_sweep_streaming(const std::vector<SweepPlatform>& platforms,
                         const std::vector<AlgorithmSpec>& algorithms,
                         const SweepOptions& options, const CellConsumer& consumer);

/// Buffering wrapper over run_sweep_streaming for Table 1 grids: collects
/// every streamed cell into a SweepResult. Prefer the rumr::Sweep facade
/// builder (api/rumr.hpp) in new code; this remains for the bench harnesses
/// and as the compatibility surface.
[[nodiscard]] SweepResult run_sweep(const std::vector<PlatformConfig>& configs,
                                    const std::vector<AlgorithmSpec>& algorithms,
                                    const SweepOptions& options);

/// The per-repetition seed the engine derives — exposed so tests and tools
/// can reproduce any single run of a sweep in isolation:
///   mix_seed(base_seed ^ fnv1a(platform_label), llround(axis_value*1000), rep).
[[nodiscard]] std::uint64_t derive_rep_seed(std::uint64_t base_seed,
                                            const std::string& platform_label,
                                            double axis_value, std::size_t rep) noexcept;

/// Shards each (platform, axis value) site splits into for a given
/// repetitions/rep_block setting (rep_block 0 = auto: ceil(reps / 8)). A pure
/// function of its arguments — never of the thread count — exposed so the
/// facade's validate() and the tests can reason about shard counts.
[[nodiscard]] std::size_t shards_per_site(std::size_t reps, std::size_t rep_block) noexcept;

// --- open-system (multi-job) sweeps ----------------------------------------

/// Mergeable aggregate for one (platform, load) cell of an open-system
/// sweep: integer ledger sums, per-repetition scalar moments, and the
/// per-job service histograms merged across repetitions (every run uses the
/// same fixed bucket edges, so the merge is exact on the counts).
struct JobsCellStats {
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t manager_events = 0;
  std::uint64_t oracle_runs = 0;
  std::uint64_t oracle_events = 0;
  std::size_t reps = 0;

  stats::Accumulator mean_response;       ///< Per-rep mean response times.
  stats::Accumulator mean_slowdown;       ///< Per-rep mean slowdowns.
  stats::Accumulator utilization;         ///< Per-rep goodput fractions.
  stats::Accumulator share_utilization;   ///< Per-rep allocated fractions.
  stats::Accumulator horizon;             ///< Per-rep drain times.

  obs::Histogram response_times;  ///< Per-job, merged across reps.
  obs::Histogram slowdowns;       ///< Per-job, merged across reps.
  obs::Histogram queue_waits;     ///< Per-job, merged across reps.
  obs::Histogram job_sizes;       ///< Per-job, merged across reps.

  void merge(const JobsCellStats& other);
};

/// Open-system sweep configuration: a load axis over a jobs::JobsOptions
/// template. Each cell re-resolves base.stream.arrival_rate for its
/// (platform, load) via JobStreamSpec::rate_for_load and re-seeds base.sim
/// per repetition with derive_rep_seed.
struct JobsSweepOptions {
  std::vector<double> loads = load_axis();  ///< Offered-load fractions.
  std::size_t repetitions = 3;
  std::size_t threads = 0;                  ///< 0 = hardware concurrency.
  std::uint64_t base_seed = 0x5eed5eed5eedULL;
  /// Template for every run. stream must be Poisson (the load axis maps to
  /// an arrival rate); set base.retain_jobs = false for large grids so each
  /// run streams its jobs instead of buffering them.
  jobs::JobsOptions base{};
  /// Audit every repetition with check::audit_service_result.
  bool audit_runs = true;
  /// Repetitions per shard; 0 = auto (ceil(repetitions / 8)), as above.
  std::size_t rep_block = 0;

  [[nodiscard]] std::vector<std::string> validate() const;
};

/// One completed open-system cell.
struct JobsSweepCell {
  std::size_t platform_index = 0;
  std::size_t load_index = 0;
  std::string platform_label;
  double load = 0.0;
  JobsCellStats stats;
};

using JobsCellConsumer = std::function<void(const JobsSweepCell&)>;

/// Streaming open-system sweep: platforms x loads, sharded and merged
/// exactly like run_sweep_streaming. With base.retain_jobs == false, peak
/// memory per shard is O(jobs concurrently in the system), so million-job
/// grids run in constant space.
void run_jobs_sweep(const std::vector<SweepPlatform>& platforms,
                    const JobsSweepOptions& options, const JobsCellConsumer& consumer);

// --- merge-consistency audits ----------------------------------------------

/// Appends a violation to `report` for every field of `merged` that strays
/// from `serial` (counts exact, floats at 1e-9) — the sharded-vs-serial
/// consistency check, assembled from check/merge_audit.hpp primitives.
void audit_cell_merge(const std::string& label, const CellStats& merged,
                      const CellStats& serial, check::AuditReport& report);
void audit_cell_merge(const std::string& label, const JobsCellStats& merged,
                      const JobsCellStats& serial, check::AuditReport& report);

/// Single-run convenience used by benches and examples: simulates `spec` once
/// and returns the makespan.
[[nodiscard]] double run_once(const PlatformConfig& config, const AlgorithmSpec& spec,
                              double error, std::uint64_t seed, double w_total = 1000.0,
                              stats::ErrorDistribution distribution =
                                  stats::ErrorDistribution::kTruncatedNormal);

}  // namespace rumr::sweep
