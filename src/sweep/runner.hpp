#pragma once

/// \file runner.hpp
/// Parallel experiment runner: (configurations x error levels x repetitions x
/// algorithms), with deterministic per-repetition seeding so results do not
/// depend on thread count or execution order.

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_model.hpp"
#include "sim/master_worker.hpp"
#include "stats/error_model.hpp"
#include "stats/summary.hpp"
#include "sweep/grid.hpp"
#include "sweep/scheduler_factory.hpp"

namespace rumr::sweep {

/// Sweep configuration.
struct SweepOptions {
  std::vector<double> errors = error_axis();              ///< Error levels to test.
  std::size_t repetitions = 40;                           ///< Paper default: 40.
  double w_total = 1000.0;                                ///< Paper default: 1000 units.
  std::size_t threads = 0;                                ///< 0 = hardware concurrency.
  std::uint64_t base_seed = 0x5eed5eed5eedULL;            ///< Sweep-level seed.
  stats::ErrorDistribution distribution =
      stats::ErrorDistribution::kTruncatedNormal;         ///< Paper default model.
  /// Worker-availability fault model applied to every run (default: none,
  /// the paper's setting). Enables failure-rate grid sweeps.
  faults::FaultSpec faults{};
  /// Detection/backoff knobs forwarded to the engine when faults are on.
  sim::SimOptions::FaultToleranceOptions fault_tolerance{};
  /// Audit every repetition with check::audit_sim_result (work conservation
  /// plus the observability identities). Cheap — no trace is recorded — and
  /// a violation aborts the sweep with check::CheckError.
  bool audit_runs = true;

  /// Validates every option in one pass and returns the full list of
  /// human-readable problems (empty means the options are usable).
  /// run_sweep calls this up front and raises std::invalid_argument with
  /// all of them.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Aggregated results for one (configuration, error, algorithm) cell. The
/// metric accumulators summarize the per-run observability records
/// (mean/stddev over the cell's repetitions).
struct CellStats {
  stats::Accumulator makespan;      ///< Over repetitions.
  std::size_t reps = 0;
  /// Repetitions in which the reference algorithm (index 0) strictly beat
  /// this one, and beat it by at least 10% (paper Tables 2 and 3).
  std::size_t ref_wins = 0;
  std::size_t ref_wins_by_10pct = 0;

  stats::Accumulator uplink_utilization;   ///< Occupancy busy / makespan.
  stats::Accumulator worker_utilization;   ///< Mean over workers per run.
  stats::Accumulator events;               ///< DES events executed per run.
  stats::Accumulator hol_blocking_time;    ///< Head-of-line blocking seconds.
  stats::Accumulator work_redispatched;    ///< Fault-layer re-sent units.
};

/// Full sweep output. Cells are indexed [config][error][algorithm].
class SweepResult {
 public:
  SweepResult(std::vector<PlatformConfig> configs, std::vector<double> errors,
              std::vector<std::string> algorithms);

  [[nodiscard]] const std::vector<PlatformConfig>& configs() const noexcept { return configs_; }
  [[nodiscard]] const std::vector<double>& errors() const noexcept { return errors_; }
  [[nodiscard]] const std::vector<std::string>& algorithms() const noexcept {
    return algorithms_;
  }

  [[nodiscard]] CellStats& cell(std::size_t config, std::size_t error, std::size_t algo);
  [[nodiscard]] const CellStats& cell(std::size_t config, std::size_t error,
                                      std::size_t algo) const;

  /// Mean makespan of `algo` normalized to the reference (algorithm 0),
  /// averaged over all configurations, at error index `error`. This is the
  /// y-axis of the paper's Figures 4-7.
  [[nodiscard]] double mean_normalized_makespan(std::size_t error, std::size_t algo) const;

  /// Percentage (0-100) of experiments — a (configuration, error value) pair
  /// whose result is the mean makespan over repetitions, as in the paper —
  /// across error band `band`, in which the reference strictly outperformed
  /// `algo` (Table 2) or did so by >= 10% (Table 3).
  [[nodiscard]] double win_percentage(std::size_t band, std::size_t algo,
                                      bool by_margin = false) const;

  /// Overall win percentage across every cell (the paper's "79% overall").
  [[nodiscard]] double overall_win_percentage(std::size_t algo) const;

  /// Per-repetition win percentage (same-seed pairwise comparisons) for the
  /// given band — a finer-grained companion metric the paper does not show.
  [[nodiscard]] double per_rep_win_percentage(std::size_t band, std::size_t algo,
                                              bool by_margin = false) const;

 private:
  std::vector<PlatformConfig> configs_;
  std::vector<double> errors_;
  std::vector<std::string> algorithms_;
  std::vector<CellStats> cells_;
};

/// Runs the sweep: every algorithm in `algorithms` (index 0 is the
/// reference, normally RUMR) on every configuration, error level, and
/// repetition. A repetition uses the same derived seed for every algorithm.
[[nodiscard]] SweepResult run_sweep(const std::vector<PlatformConfig>& configs,
                                    const std::vector<AlgorithmSpec>& algorithms,
                                    const SweepOptions& options);

/// Single-run convenience used by benches and examples: simulates `spec` once
/// and returns the makespan.
[[nodiscard]] double run_once(const PlatformConfig& config, const AlgorithmSpec& spec,
                              double error, std::uint64_t seed, double w_total = 1000.0,
                              stats::ErrorDistribution distribution =
                                  stats::ErrorDistribution::kTruncatedNormal);

}  // namespace rumr::sweep
