#include "sweep/grid.hpp"

#include <cmath>
#include <cstdint>
#include <sstream>

namespace rumr::sweep {

platform::StarPlatform PlatformConfig::to_platform() const {
  platform::HomogeneousParams params;
  params.workers = n;
  params.speed = 1.0;
  params.bandwidth = b_over_n * static_cast<double>(n);
  params.comp_latency = clat;
  params.comm_latency = nlat;
  params.transfer_latency = 0.0;
  return platform::StarPlatform::homogeneous(params);
}

std::string PlatformConfig::label() const {
  std::ostringstream out;
  out << "N=" << n << " B=" << b_over_n * static_cast<double>(n) << " cLat=" << clat
      << " nLat=" << nlat;
  return out.str();
}

namespace {

std::vector<double> arange(double lo, double hi, double step) {
  std::vector<double> values;
  for (double v = lo; v <= hi + 1e-9; v += step) {
    // Snap to the step lattice to avoid 0.30000000000000004-style drift.
    values.push_back(std::round(v / step) * step);
  }
  return values;
}

}  // namespace

GridSpec GridSpec::paper_full() {
  GridSpec spec;
  for (std::size_t n = 10; n <= 50; n += 5) spec.n_values.push_back(n);
  spec.b_over_n_values = arange(1.2, 2.0, 0.1);
  spec.clat_values = arange(0.0, 1.0, 0.1);
  spec.nlat_values = arange(0.0, 1.0, 0.1);
  return spec;
}

GridSpec GridSpec::decimated() {
  GridSpec spec;
  for (std::size_t n = 10; n <= 50; n += 10) spec.n_values.push_back(n);
  spec.b_over_n_values = arange(1.2, 2.0, 0.2);
  spec.clat_values = arange(0.0, 1.0, 0.2);
  spec.nlat_values = arange(0.0, 1.0, 0.2);
  return spec;
}

GridSpec GridSpec::restrict_low_latency(double clat_max, double nlat_max) const {
  GridSpec spec = *this;
  spec.clat_values.clear();
  spec.nlat_values.clear();
  for (double c : clat_values) {
    if (c < clat_max) spec.clat_values.push_back(c);
  }
  for (double n : nlat_values) {
    if (n < nlat_max) spec.nlat_values.push_back(n);
  }
  return spec;
}

std::vector<PlatformConfig> make_grid(const GridSpec& spec) {
  std::vector<PlatformConfig> configs;
  configs.reserve(spec.size());
  for (std::size_t n : spec.n_values) {
    for (double b : spec.b_over_n_values) {
      for (double clat : spec.clat_values) {
        for (double nlat : spec.nlat_values) {
          configs.push_back({n, b, clat, nlat});
        }
      }
    }
  }
  return configs;
}

SweepPlatform SweepPlatform::from_config(const PlatformConfig& config) {
  return {config.label(), config.to_platform()};
}

std::vector<SweepPlatform> wrap_grid(const std::vector<PlatformConfig>& configs) {
  std::vector<SweepPlatform> platforms;
  platforms.reserve(configs.size());
  for (const PlatformConfig& config : configs) {
    platforms.push_back(SweepPlatform::from_config(config));
  }
  return platforms;
}

std::vector<double> error_axis(double max_error, double step) {
  std::vector<double> errors;
  for (double e = 0.0; e <= max_error + 1e-9; e += step) {
    errors.push_back(std::round(e / step) * step);
  }
  return errors;
}

std::vector<double> load_axis(double min_load, double max_load, double step) {
  std::vector<double> loads;
  for (double l = min_load; l <= max_load + 1e-9; l += step) {
    // Snap relative to min_load: the axis origin need not be on the step
    // lattice (default 0.1 with step 0.2).
    loads.push_back(min_load + std::round((l - min_load) / step) * step);
  }
  return loads;
}

std::size_t error_band(double error) noexcept {
  // Bands: [0, 0.08], [0.1, 0.18], [0.2, 0.28], [0.3, 0.38], [0.4, 0.48].
  for (std::size_t band = 0; band < 5; ++band) {
    const double lo = 0.1 * static_cast<double>(band);
    if (error >= lo - 1e-9 && error <= lo + 0.08 + 1e-9) return band;
  }
  return SIZE_MAX;
}

const std::vector<std::string>& error_band_labels() {
  static const std::vector<std::string> labels = {"0-0.08", "0.1-0.18", "0.2-0.28", "0.3-0.38",
                                                  "0.4-0.48"};
  return labels;
}

}  // namespace rumr::sweep
