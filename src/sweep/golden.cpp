#include "sweep/golden.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include <algorithm>

#include "check/service_audit.hpp"
#include "check/trace_audit.hpp"
#include "faults/fault_model.hpp"
#include "jobs/job_manager.hpp"
#include "platform/platform.hpp"
#include "race/race.hpp"
#include "sim/master_worker.hpp"
#include "sweep/runner.hpp"
#include "sweep/scheduler_factory.hpp"
#include "util/json_lite.hpp"

namespace rumr::sweep::golden {

namespace {

/// The paper-figure algorithm line-up the fixtures pin down.
std::vector<AlgorithmSpec> golden_lineup() {
  std::vector<AlgorithmSpec> specs;
  specs.push_back(umr_spec());
  specs.push_back(rumr_spec());
  specs.push_back(factoring_spec());
  specs.push_back(mi_spec(2));
  specs.push_back(weighted_factoring_spec());
  return specs;
}

/// Full scenario definition: platform + workload + error + seed + faults.
/// `tune` (optional) adjusts the remaining SimOptions — link-fault spec,
/// retransmit protocol, checkpoint interval — after the common fields are
/// set; nullptr leaves the defaults.
struct ScenarioDef {
  const char* name;
  double w_total;
  double error;
  std::uint64_t seed;
  platform::StarPlatform (*make_platform)();
  faults::FaultSpec (*make_faults)();
  void (*tune)(sim::SimOptions&);
};

platform::StarPlatform homogeneous_10() {
  return platform::StarPlatform::homogeneous({.workers = 10, .speed = 1.0, .bandwidth = 15.0,
                                              .comp_latency = 0.05, .comm_latency = 0.02,
                                              .transfer_latency = 0.01});
}

platform::StarPlatform heterogeneous_4() {
  return platform::StarPlatform({
      {2.0, 20.0, 0.05, 0.02, 0.01},
      {1.0, 12.0, 0.05, 0.02, 0.01},
      {0.5, 8.0, 0.05, 0.02, 0.01},
      {1.5, 16.0, 0.05, 0.02, 0.01},
  });
}

faults::FaultSpec no_faults() { return faults::FaultSpec::none(); }

/// Two overlapping transient outages: the master fences both workers,
/// reclaims their chunks, and re-dispatches to survivors — the full
/// failure-handling path, yet fully scripted (no fault-RNG draws).
faults::FaultSpec scripted_outages() {
  return faults::FaultSpec::scripted({
      {1, {5.0, 60.0}},
      {3, {12.0, 45.0}},
  });
}

/// Lossy, spiky, periodically degraded link with the adaptive retransmit
/// protocol and partial-work checkpointing engaged — pins the full
/// communication-fault stack: per-worker link RNG lanes, RFC6298 timer
/// arming order, duplicate suppression, and banked-work accounting. Any
/// reordering of those draws or events drifts this fixture.
void faulty_link_options(sim::SimOptions& options) {
  faults::LinkFaultSpec link;
  link.loss = 0.08;
  link.spike_probability = 0.05;
  link.spike_mean = 0.5;
  link.degraded_mtbf = 30.0;
  link.degraded_mttr = 6.0;
  link.degraded_factor = 4.0;
  options.link = link;
  options.retransmit.enabled = true;
  options.checkpoint.interval = 0.5;
}

/// The multi-job open-system scenario (see record_jobs_scenario). Reuses the
/// single-run fixture schema with a documented field mapping, one case per
/// sharing policy.
constexpr const char* kJobsScenario = "jobs-poisson";

/// The sharded sweep-engine scenario (see record_sweep_scenario): pins the
/// cell aggregates — and therefore the shard decomposition, per-rep seed
/// derivation, and fixed-order merge tree — of a small multi-threaded sweep.
constexpr const char* kSweepScenario = "sweep-sharded";

/// The best-arm racing scenario (see record_race_scenario): pins a small
/// race's per-arm sample counts, elimination rounds, winner, and the
/// seed-lane reward fingerprints — and therefore the shared-seed derivation,
/// the fixed-order reward fold, and the elimination math of race/race.cpp.
constexpr const char* kRaceScenario = "race-small";

constexpr ScenarioDef kScenarios[] = {
    {"homogeneous-10", 1000.0, 0.3, 42, &homogeneous_10, &no_faults, nullptr},
    {"heterogeneous-4", 400.0, 0.2, 7, &heterogeneous_4, &no_faults, nullptr},
    {"faults-scripted", 1000.0, 0.2, 11, &homogeneous_10, &scripted_outages, nullptr},
    // Scripted worker outages *and* a faulty link: fencing and re-dispatch
    // race retransmissions and banked partial work.
    {"faulty-link", 600.0, 0.2, 13, &homogeneous_10, &scripted_outages,
     &faulty_link_options},
    // jobs-poisson is handled by record_jobs_scenario; w_total stands in for
    // the per-job mean size.
    {kJobsScenario, 300.0, 0.2, 17, &homogeneous_10, &no_faults, nullptr},
    // sweep-sharded is handled by record_sweep_scenario; error is the top of
    // the two-level error axis {0, error}.
    {kSweepScenario, 500.0, 0.3, 23, &homogeneous_10, &no_faults, nullptr},
    // race-small is handled by record_race_scenario.
    {kRaceScenario, 500.0, 0.3, 29, &homogeneous_10, &no_faults, nullptr},
};

const ScenarioDef& find_scenario(const std::string& name) {
  for (const ScenarioDef& def : kScenarios) {
    if (name == def.name) return def;
  }
  throw std::invalid_argument("golden: unknown scenario '" + name + "'");
}

void emit_case(std::ostringstream& out, const GoldenCase& c, bool last) {
  out << "    {\"algorithm\": \"" << c.algorithm << "\", \"makespan\": " << c.makespan
      << ", \"work_dispatched\": " << c.work_dispatched
      << ", \"uplink_busy_time\": " << c.uplink_busy_time << ", \"chunks\": " << c.chunks
      << ", \"events\": " << c.events << ", \"chunks_redispatched\": " << c.chunks_redispatched
      << "}" << (last ? "" : ",") << "\n";
}

std::uint64_t as_count(const util::JsonValue& v, const char* what) {
  const double d = v.as_number();
  if (d < 0.0 || d != std::floor(d)) {
    throw std::runtime_error(std::string("golden: '") + what + "' is not a whole count");
  }
  return static_cast<std::uint64_t>(d);
}

bool close(double a, double b, double rel_tol) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= rel_tol * scale;
}

}  // namespace

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const ScenarioDef& def : kScenarios) names.emplace_back(def.name);
  return names;
}

/// Fingerprints one multi-job open-system run per sharing policy. GoldenCase
/// fields are reused under this mapping:
///   algorithm          <- sharing-policy name
///   makespan           <- ServiceResult::horizon
///   work_dispatched    <- ServiceResult::total_work
///   uplink_busy_time   <- ServiceResult::area_jobs_in_system (Little's-law
///                         integral: drifts on ANY timeline perturbation)
///   chunks             <- completed jobs
///   events             <- manager + oracle DES events
///   chunks_redispatched<- rejected + shed jobs
GoldenScenario record_jobs_scenario(const ScenarioDef& def) {
  const platform::StarPlatform platform = def.make_platform();

  GoldenScenario scenario;
  scenario.name = def.name;
  scenario.w_total = def.w_total;
  scenario.error = def.error;
  scenario.seed = def.seed;

  for (const jobs::SharingPolicy sharing :
       {jobs::SharingPolicy::kExclusive, jobs::SharingPolicy::kPartitioned,
        jobs::SharingPolicy::kFractional}) {
    jobs::JobsOptions options;
    options.sharing = sharing;
    options.partitions = 2;
    options.stream = jobs::JobStreamSpec::poisson(
        jobs::JobStreamSpec::rate_for_load(platform, 0.7, def.w_total), 40, def.w_total);
    options.stream.size_dist = jobs::SizeDistribution::kUniform;
    options.stream.size_spread = 0.4;
    options.known_error = def.error;
    options.sim = sim::SimOptions::with_error(def.error, def.seed);
    const jobs::ServiceResult result = jobs::run_jobs(platform, options);

    // A fingerprint of a run that violates its own invariants is worthless.
    check::audit_service_result(result, platform, options).throw_if_failed();

    GoldenCase c;
    c.algorithm = jobs::to_string(sharing);
    c.makespan = result.horizon;
    c.work_dispatched = result.total_work;
    c.uplink_busy_time = result.area_jobs_in_system;
    c.chunks = result.completed;
    c.events = result.manager_events + result.oracle_events;
    c.chunks_redispatched = result.rejected + result.shed;
    scenario.cases.push_back(std::move(c));
  }
  return scenario;
}

/// Fingerprints a small sweep through the sharded streaming engine — one
/// platform, error axis {0, def.error}, the golden line-up, 6 repetitions in
/// 2-rep shards on 4 threads. The engine's determinism contract makes the
/// thread count irrelevant to the bytes produced; running threaded in the
/// regression suite keeps that claim continuously tested. GoldenCase fields
/// are reused under this mapping:
///   algorithm          <- "<algorithm>@err=<error>"
///   makespan           <- cell makespan mean over reps
///   work_dispatched    <- cell makespan variance (sensitive to the merge
///                         tree: any reorder of the Chan merges drifts it)
///   uplink_busy_time   <- cell uplink-utilization sum over reps
///   chunks             <- repetitions folded into the cell
///   events             <- total DES events across the cell's reps
///   chunks_redispatched<- paired per-rep reference wins
GoldenScenario record_sweep_scenario(const ScenarioDef& def) {
  GoldenScenario scenario;
  scenario.name = def.name;
  scenario.w_total = def.w_total;
  scenario.error = def.error;
  scenario.seed = def.seed;

  SweepOptions options;
  options.errors = {0.0, def.error};
  options.repetitions = 6;
  options.rep_block = 2;
  options.threads = 4;
  options.w_total = def.w_total;
  options.base_seed = def.seed;

  std::vector<SweepCell> cells;
  run_sweep_streaming({SweepPlatform{"golden-hom-10", def.make_platform()}}, golden_lineup(),
                      options, [&cells](const SweepCell& cell) { cells.push_back(cell); });
  // Emission order across sites is unspecified; fixture order is not.
  std::sort(cells.begin(), cells.end(), [](const SweepCell& a, const SweepCell& b) {
    return a.error_index != b.error_index ? a.error_index < b.error_index
                                          : a.algorithm_index < b.algorithm_index;
  });

  std::ostringstream label;
  for (const SweepCell& cell : cells) {
    label.str("");
    label << cell.algorithm << "@err=" << cell.error;
    GoldenCase c;
    c.algorithm = label.str();
    c.makespan = cell.stats.makespan.mean();
    c.work_dispatched = cell.stats.makespan.variance();
    c.uplink_busy_time = cell.stats.uplink_utilization.sum();
    c.chunks = cell.stats.reps;
    c.events = static_cast<std::uint64_t>(std::llround(cell.stats.events.sum()));
    c.chunks_redispatched = cell.stats.ref_wins;
    scenario.cases.push_back(std::move(c));
  }
  return scenario;
}

/// Fingerprints one best-arm race through race::race_cell — five arms from
/// the racing line-up, blocks of 8 up to a 64-rep budget, 4 threads (the race
/// core's determinism contract makes the thread count irrelevant to the bytes
/// produced, and running threaded keeps that claim continuously tested). One
/// case per arm plus a trailing "@summary" case. GoldenCase fields are reused
/// under this mapping:
///
///   per-arm case:
///     algorithm          <- arm name
///     makespan           <- arm reward mean
///     work_dispatched    <- arm reward variance (drifts on any fold reorder)
///     uplink_busy_time   <- arm reward sum
///     chunks             <- arm samples at race end
///     events             <- arm seed-lane reward fingerprint, the 64-bit
///                           FNV-1a folded to 32 bits (the fixture round-trips
///                           counts through doubles, so 2^53 is the ceiling)
///     chunks_redispatched<- elimination round (0 = survivor)
///   "@summary" case:
///     makespan           <- winner index
///     work_dispatched    <- total samples spent
///     uplink_busy_time   <- delta
///     chunks             <- rounds run
///     events             <- eliminations recorded
///     chunks_redispatched<- 1 if budget_exhausted else 0
GoldenScenario record_race_scenario(const ScenarioDef& def) {
  GoldenScenario scenario;
  scenario.name = def.name;
  scenario.w_total = def.w_total;
  scenario.error = def.error;
  scenario.seed = def.seed;

  std::vector<AlgorithmSpec> arms;
  arms.push_back(rumr_spec());
  arms.push_back(rumr_fixed_spec(50.0));
  arms.push_back(umr_spec());
  arms.push_back(factoring_spec());
  arms.push_back(fsc_spec());

  race::RaceOptions options;
  options.block = 16;
  options.max_reps = 384;
  options.threads = 4;
  options.base_seed = def.seed;
  options.w_total = def.w_total;
  // audit_runs / audit_result stay on: a fingerprint of a race that violates
  // its own ledger invariants is worthless.
  const race::RaceResult result = race::race_cell(
      SweepPlatform{"golden-hom-10", def.make_platform()}, arms, def.error, options);

  for (const race::ArmRecord& arm : result.arms) {
    GoldenCase c;
    c.algorithm = arm.name;
    c.makespan = arm.reward.mean();
    c.work_dispatched = arm.reward.variance();
    c.uplink_busy_time = arm.reward.sum();
    c.chunks = arm.samples;
    c.events = (arm.lane_fingerprint ^ (arm.lane_fingerprint >> 32)) & 0xffffffffULL;
    c.chunks_redispatched = arm.eliminated_round;
    scenario.cases.push_back(std::move(c));
  }

  GoldenCase summary;
  summary.algorithm = "@summary";
  summary.makespan = static_cast<double>(result.winner);
  summary.work_dispatched = static_cast<double>(result.total_samples);
  summary.uplink_busy_time = result.delta;
  summary.chunks = result.rounds;
  summary.events = result.eliminations.size();
  summary.chunks_redispatched = result.budget_exhausted ? 1 : 0;
  scenario.cases.push_back(std::move(summary));
  return scenario;
}

GoldenScenario record_scenario(const std::string& name) {
  const ScenarioDef& def = find_scenario(name);
  if (name == kJobsScenario) return record_jobs_scenario(def);
  if (name == kSweepScenario) return record_sweep_scenario(def);
  if (name == kRaceScenario) return record_race_scenario(def);
  const platform::StarPlatform platform = def.make_platform();

  GoldenScenario scenario;
  scenario.name = def.name;
  scenario.w_total = def.w_total;
  scenario.error = def.error;
  scenario.seed = def.seed;

  for (const AlgorithmSpec& spec : golden_lineup()) {
    auto policy = spec.make(platform, def.w_total, def.error);
    sim::SimOptions options = sim::SimOptions::with_error(def.error, def.seed);
    options.faults = def.make_faults();
    if (def.tune != nullptr) def.tune(options);
    const sim::SimResult result = sim::simulate(platform, *policy, options);

    // A fingerprint of a run that violates its own invariants is worthless.
    check::audit_sim_result(result, platform, def.w_total).throw_if_failed();

    GoldenCase c;
    c.algorithm = spec.name;
    c.makespan = result.makespan;
    c.work_dispatched = result.work_dispatched;
    c.uplink_busy_time = result.uplink_busy_time;
    c.chunks = result.chunks_dispatched;
    c.events = result.events;
    c.chunks_redispatched = result.faults.chunks_redispatched;
    scenario.cases.push_back(std::move(c));
  }
  return scenario;
}

std::string to_json(const GoldenScenario& scenario) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "{\n"
      << "  \"schema\": \"rumr-golden-v1\",\n"
      << "  \"scenario\": \"" << scenario.name << "\",\n"
      << "  \"w_total\": " << scenario.w_total << ",\n"
      << "  \"error\": " << scenario.error << ",\n"
      << "  \"seed\": " << scenario.seed << ",\n"
      << "  \"cases\": [\n";
  for (std::size_t i = 0; i < scenario.cases.size(); ++i) {
    emit_case(out, scenario.cases[i], i + 1 == scenario.cases.size());
  }
  out << "  ]\n}\n";
  return out.str();
}

GoldenScenario from_json(const std::string& text) {
  const util::JsonValue doc = util::JsonValue::parse(text);
  if (doc.at("schema").as_string() != "rumr-golden-v1") {
    throw std::runtime_error("golden: unrecognized fixture schema");
  }
  GoldenScenario scenario;
  scenario.name = doc.at("scenario").as_string();
  scenario.w_total = doc.at("w_total").as_number();
  scenario.error = doc.at("error").as_number();
  scenario.seed = as_count(doc.at("seed"), "seed");
  for (const util::JsonValue& entry : doc.at("cases").as_array()) {
    GoldenCase c;
    c.algorithm = entry.at("algorithm").as_string();
    c.makespan = entry.at("makespan").as_number();
    c.work_dispatched = entry.at("work_dispatched").as_number();
    c.uplink_busy_time = entry.at("uplink_busy_time").as_number();
    c.chunks = as_count(entry.at("chunks"), "chunks");
    c.events = as_count(entry.at("events"), "events");
    c.chunks_redispatched = as_count(entry.at("chunks_redispatched"), "chunks_redispatched");
    scenario.cases.push_back(std::move(c));
  }
  return scenario;
}

std::vector<std::string> compare(const GoldenScenario& expected, const GoldenScenario& fresh,
                                 double rel_tol) {
  std::vector<std::string> diffs;
  std::ostringstream line;
  line << std::setprecision(17);
  const auto diff = [&diffs, &line](const auto&... parts) {
    line.str("");
    (line << ... << parts);
    diffs.push_back(line.str());
  };

  if (expected.name != fresh.name) {
    diff("scenario name: expected '", expected.name, "', got '", fresh.name, "'");
    return diffs;
  }
  if (expected.cases.size() != fresh.cases.size()) {
    diff("case count: expected ", expected.cases.size(), ", got ", fresh.cases.size());
    return diffs;
  }
  for (std::size_t i = 0; i < expected.cases.size(); ++i) {
    const GoldenCase& e = expected.cases[i];
    const GoldenCase& f = fresh.cases[i];
    if (e.algorithm != f.algorithm) {
      diff("case ", i, ": algorithm expected '", e.algorithm, "', got '", f.algorithm, "'");
      continue;
    }
    const auto check_double = [&](const char* what, double want, double got) {
      if (!close(want, got, rel_tol)) {
        diff(e.algorithm, " ", what, ": expected ", want, ", got ", got);
      }
    };
    const auto check_count = [&](const char* what, std::uint64_t want, std::uint64_t got) {
      if (want != got) diff(e.algorithm, " ", what, ": expected ", want, ", got ", got);
    };
    check_double("makespan", e.makespan, f.makespan);
    check_double("work_dispatched", e.work_dispatched, f.work_dispatched);
    check_double("uplink_busy_time", e.uplink_busy_time, f.uplink_busy_time);
    check_count("chunks", e.chunks, f.chunks);
    check_count("events", e.events, f.events);
    check_count("chunks_redispatched", e.chunks_redispatched, f.chunks_redispatched);
  }
  return diffs;
}

}  // namespace rumr::sweep::golden
