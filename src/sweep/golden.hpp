#pragma once

/// \file golden.hpp
/// Golden-result regression scenarios: the paper-figure configurations
/// (UMR / RUMR / Factoring / MI-2 / WF on homogeneous and heterogeneous
/// platforms, plus a scripted-fault case) reduced to per-run fingerprints
/// that are recorded once (tools/golden_record) into tests/golden/*.json and
/// replayed by the regression suite (tests/test_golden.cpp).
///
/// The fingerprint is everything a kernel or engine rewrite could silently
/// drift: makespan, chunk/event counts, dispatched work, uplink occupancy,
/// and the fault-layer re-dispatch ledger. Scenario definitions live here —
/// in one place — so the recorder and the replayer can never disagree about
/// what a scenario means.

#include <cstdint>
#include <string>
#include <vector>

namespace rumr::sweep::golden {

/// One algorithm's recorded fingerprint within a scenario.
struct GoldenCase {
  std::string algorithm;
  double makespan = 0.0;
  double work_dispatched = 0.0;
  double uplink_busy_time = 0.0;
  std::uint64_t chunks = 0;
  std::uint64_t events = 0;
  std::uint64_t chunks_redispatched = 0;  ///< Nonzero only in fault scenarios.
};

/// One platform/workload/seed configuration and its recorded cases.
struct GoldenScenario {
  std::string name;
  double w_total = 0.0;
  double error = 0.0;
  std::uint64_t seed = 0;
  std::vector<GoldenCase> cases;
};

/// Names of every defined scenario, in fixture-file order. Fixture files are
/// named `<name>.json`.
[[nodiscard]] std::vector<std::string> scenario_names();

/// Runs every algorithm of scenario `name` right now and returns the fresh
/// fingerprints. Throws std::invalid_argument for an unknown name. Every run
/// is passed through check::audit_sim_result first — a run that fails its
/// own invariant audit must never become (or be compared against) a golden
/// record.
[[nodiscard]] GoldenScenario record_scenario(const std::string& name);

/// Serializes a scenario as the fixture-file JSON (full double precision).
[[nodiscard]] std::string to_json(const GoldenScenario& scenario);

/// Parses a fixture file produced by to_json(). Throws std::runtime_error on
/// malformed input.
[[nodiscard]] GoldenScenario from_json(const std::string& text);

/// Compares a fresh replay against the recorded fixture. Doubles must agree
/// to `rel_tol` relative tolerance (the replay of a deterministic simulation
/// should in fact be bit-identical; the tolerance only keeps the diff
/// readable if it is not), counts must agree exactly. Returns one
/// human-readable line per mismatch; empty means identical.
[[nodiscard]] std::vector<std::string> compare(const GoldenScenario& expected,
                                               const GoldenScenario& fresh,
                                               double rel_tol = 1e-12);

}  // namespace rumr::sweep::golden
