#pragma once

/// \file grid.hpp
/// The experimental parameter space of the paper's Table 1:
///   N     = 10, 15, ..., 50           workers
///   W     = 1000                      workload units
///   S     = 1                         unit/s (so B is also the comm/comp ratio)
///   B     = (1.2, 1.3, ..., 2.0) * N  unit/s
///   cLat  = 0.0, 0.1, ..., 1.0        s
///   nLat  = 0.0, 0.1, ..., 1.0        s
/// Benches default to a decimated version of the same ranges (coarser steps)
/// so the default `for b in build/bench/*` run finishes quickly; --full (or
/// RUMR_FULL=1) selects the paper-exact grid.

#include <cstddef>
#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace rumr::sweep {

/// One homogeneous platform configuration from the Table 1 space.
struct PlatformConfig {
  std::size_t n = 10;      ///< Worker count N.
  double b_over_n = 1.2;   ///< B / N (>= 1.2 satisfies full utilization).
  double clat = 0.0;       ///< cLat (s).
  double nlat = 0.0;       ///< nLat (s).

  /// Instantiates the homogeneous star platform (S = 1, tLat = 0, B = b_over_n * N).
  [[nodiscard]] platform::StarPlatform to_platform() const;

  /// "N=20 B=36 cLat=0.3 nLat=0.9" style label.
  [[nodiscard]] std::string label() const;
};

/// A sweepable platform: any star platform under a stable human-readable
/// label. The label doubles as the platform's *seed identity* — the sharded
/// sweep engine hashes it (FNV-1a) into every per-repetition seed — so two
/// entries with the same label replay identically and renaming a platform
/// deliberately re-randomizes it. Table 1 grids wrap via from_config();
/// hand-built platforms (e.g. the image-rendering example's 16-worker
/// cluster) pass any descriptive label.
struct SweepPlatform {
  std::string label;
  platform::StarPlatform platform;

  [[nodiscard]] static SweepPlatform from_config(const PlatformConfig& config);
};

/// Wraps every config of a grid (label = config.label()).
[[nodiscard]] std::vector<SweepPlatform> wrap_grid(const std::vector<PlatformConfig>& configs);

/// Axis values defining a (sub)grid of Table 1.
struct GridSpec {
  std::vector<std::size_t> n_values;
  std::vector<double> b_over_n_values;
  std::vector<double> clat_values;
  std::vector<double> nlat_values;

  /// The paper-exact Table 1 grid (9 x 9 x 11 x 11 = 9801 configurations).
  [[nodiscard]] static GridSpec paper_full();

  /// Coarser steps over the same ranges (5 x 5 x 6 x 6 = 900 configurations).
  [[nodiscard]] static GridSpec decimated();

  /// The low-latency subset of Figure 4(b): cLat < 0.3 and nLat < 0.3.
  [[nodiscard]] GridSpec restrict_low_latency(double clat_max = 0.3, double nlat_max = 0.3) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return n_values.size() * b_over_n_values.size() * clat_values.size() * nlat_values.size();
  }
};

/// Expands a GridSpec into the full cross product, in deterministic
/// (n, b, clat, nlat) lexicographic order.
[[nodiscard]] std::vector<PlatformConfig> make_grid(const GridSpec& spec);

/// Error axis helpers. The paper varies `error` from 0 to 0.5 and buckets
/// table results into five bands 0-0.08, 0.1-0.18, ..., 0.4-0.48.
[[nodiscard]] std::vector<double> error_axis(double max_error = 0.48, double step = 0.02);

/// Band index (0..4) for an error value, or SIZE_MAX if outside all bands.
[[nodiscard]] std::size_t error_band(double error) noexcept;

/// Offered-load axis for open-system (multi-job) sweeps: fractions of the
/// platform's aggregate compute capacity, min_load..max_load inclusive.
/// Pair with jobs::JobStreamSpec::rate_for_load to turn each point into an
/// arrival rate.
[[nodiscard]] std::vector<double> load_axis(double min_load = 0.1, double max_load = 0.9,
                                            double step = 0.2);

/// Human-readable band labels matching the paper's table headers.
[[nodiscard]] const std::vector<std::string>& error_band_labels();

}  // namespace rumr::sweep
