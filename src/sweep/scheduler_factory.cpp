#include "sweep/scheduler_factory.hpp"

#include "baselines/factoring.hpp"
#include "baselines/fsc.hpp"
#include "baselines/loop_scheduling.hpp"
#include "baselines/multi_installment.hpp"
#include "core/adaptive_rumr.hpp"
#include "core/rumr.hpp"
#include "core/umr_policy.hpp"

namespace rumr::sweep {

AlgorithmSpec rumr_spec() {
  return {"RUMR", [](const platform::StarPlatform& p, double w, double error) {
            core::RumrOptions options;
            options.known_error = error;
            return std::make_unique<core::RumrPolicy>(p, w, std::move(options));
          }};
}

AlgorithmSpec rumr_inorder_spec() {
  return {"RUMR-inorder", [](const platform::StarPlatform& p, double w, double error) {
            core::RumrOptions options;
            options.known_error = error;
            options.phase1_order = core::DispatchOrder::kInOrder;
            options.name = "RUMR-inorder";
            return std::make_unique<core::RumrPolicy>(p, w, std::move(options));
          }};
}

AlgorithmSpec rumr_fixed_spec(double phase1_percent) {
  core::RumrOptions options = core::rumr_fixed_split_options(phase1_percent);
  return {options.name, [options](const platform::StarPlatform& p, double w, double) {
            return std::make_unique<core::RumrPolicy>(p, w, options);
          }};
}

AlgorithmSpec rumr_adaptive_spec() {
  return {"RUMR-adaptive", [](const platform::StarPlatform& p, double w, double) {
            return std::make_unique<core::AdaptiveRumrPolicy>(p, w);
          }};
}

AlgorithmSpec umr_spec() {
  // The paper's UMR competitor executes a schedule "precalculated at the
  // onset of the application" — sizes, order, AND send times. kTimetable is
  // that literal execution: a send never starts before its planned time, so
  // the master cannot opportunistically run ahead when transfers finish
  // early (the greedy component RUMR adds in phase 1).
  return {"UMR", [](const platform::StarPlatform& p, double w, double) {
            return std::make_unique<core::UmrPolicy>(p, w, core::DispatchOrder::kTimetable);
          }};
}

AlgorithmSpec mi_spec(std::size_t installments) {
  return {"MI-" + std::to_string(installments),
          [installments](const platform::StarPlatform& p, double w, double) {
            return baselines::make_mi_policy(p, w, installments);
          }};
}

AlgorithmSpec factoring_spec() {
  return {"Factoring", [](const platform::StarPlatform& p, double w, double) {
            return baselines::make_factoring_policy(p, w);
          }};
}

AlgorithmSpec fsc_spec() {
  return {"FSC", [](const platform::StarPlatform& p, double w, double error) {
            return baselines::make_fsc_policy(p, w, error);
          }};
}

AlgorithmSpec gss_spec() {
  return {"GSS", [](const platform::StarPlatform& p, double w, double) {
            return baselines::make_gss_policy(p, w);
          }};
}

AlgorithmSpec tss_spec() {
  return {"TSS", [](const platform::StarPlatform& p, double w, double) {
            return baselines::make_tss_policy(p, w);
          }};
}

AlgorithmSpec weighted_factoring_spec() {
  return {"WF", [](const platform::StarPlatform& p, double w, double) {
            return baselines::make_weighted_factoring_policy(p, w);
          }};
}

std::vector<AlgorithmSpec> paper_competitors() {
  std::vector<AlgorithmSpec> specs;
  specs.push_back(rumr_spec());
  specs.push_back(umr_spec());
  for (std::size_t x = 1; x <= 4; ++x) specs.push_back(mi_spec(x));
  specs.push_back(factoring_spec());
  return specs;
}

std::vector<AlgorithmSpec> extended_competitors() {
  std::vector<AlgorithmSpec> specs = paper_competitors();
  specs.push_back(fsc_spec());
  return specs;
}

std::vector<AlgorithmSpec> racing_competitors() {
  std::vector<AlgorithmSpec> specs;
  specs.push_back(rumr_spec());
  for (double pct : {50.0, 60.0, 70.0, 80.0, 90.0}) specs.push_back(rumr_fixed_spec(pct));
  specs.push_back(umr_spec());
  specs.push_back(mi_spec(2));
  specs.push_back(factoring_spec());
  specs.push_back(fsc_spec());
  return specs;
}

std::vector<AlgorithmSpec> loop_family_competitors() {
  std::vector<AlgorithmSpec> specs;
  specs.push_back(rumr_spec());
  specs.push_back(factoring_spec());
  specs.push_back(weighted_factoring_spec());
  specs.push_back(gss_spec());
  specs.push_back(tss_spec());
  specs.push_back(fsc_spec());
  return specs;
}

}  // namespace rumr::sweep
