#pragma once

/// \file scheduler_factory.hpp
/// Named factories for every scheduling algorithm in the evaluation, so the
/// sweep runner and the bench harnesses share one definition of each
/// competitor.
///
/// The factory receives the true error level of the experiment: RUMR and FSC
/// are given it (the paper's "error is known" setting — see section 4.2);
/// UMR, MI-x and Factoring ignore it by construction.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "sim/policy.hpp"

namespace rumr::sweep {

/// A named scheduling algorithm.
struct AlgorithmSpec {
  std::string name;
  std::function<std::unique_ptr<sim::SchedulerPolicy>(const platform::StarPlatform& platform,
                                                      double w_total, double error)>
      make;
};

/// RUMR with the error level known (original RUMR of the paper).
[[nodiscard]] AlgorithmSpec rumr_spec();
/// RUMR with in-order (plain UMR) phase 1 — the Figure 7 ablation.
[[nodiscard]] AlgorithmSpec rumr_inorder_spec();
/// RUMR scheduling a fixed percentage of the workload in phase 1 — Figure 6.
[[nodiscard]] AlgorithmSpec rumr_fixed_spec(double phase1_percent);
/// RUMR with on-line error estimation (extension).
[[nodiscard]] AlgorithmSpec rumr_adaptive_spec();
/// Plain UMR (Yang & Casanova, IPDPS'03).
[[nodiscard]] AlgorithmSpec umr_spec();
/// Multi-Installment with x installments (Bharadwaj et al.).
[[nodiscard]] AlgorithmSpec mi_spec(std::size_t installments);
/// Factoring (Flynn Hummel).
[[nodiscard]] AlgorithmSpec factoring_spec();
/// Fixed-Size Chunking (Hagerup / Kruskal-Weiss).
[[nodiscard]] AlgorithmSpec fsc_spec();

/// Guided Self-Scheduling (Polychronopoulos & Kuck 1987).
[[nodiscard]] AlgorithmSpec gss_spec();
/// Trapezoid Self-Scheduling (Tzen & Ni 1993).
[[nodiscard]] AlgorithmSpec tss_spec();
/// Weighted Factoring (Flynn Hummel et al. 1996).
[[nodiscard]] AlgorithmSpec weighted_factoring_spec();

/// The paper's section 5.1 line-up, reference (RUMR) first:
/// RUMR, UMR, MI-1, MI-2, MI-3, MI-4, Factoring.
[[nodiscard]] std::vector<AlgorithmSpec> paper_competitors();

/// paper_competitors() plus FSC (measured by the paper but not plotted).
[[nodiscard]] std::vector<AlgorithmSpec> extended_competitors();

/// RUMR against the whole loop self-scheduling family:
/// RUMR, Factoring, WF, GSS, TSS, FSC (extension study).
[[nodiscard]] std::vector<AlgorithmSpec> loop_family_competitors();

/// The best-arm racing line-up (race/race.hpp): RUMR and its fixed-split
/// ablations against the cross-family baselines —
/// RUMR, RUMR-50..RUMR-90, UMR, MI-2, Factoring, FSC (10 arms).
[[nodiscard]] std::vector<AlgorithmSpec> racing_competitors();

}  // namespace rumr::sweep
