#pragma once

/// \file thread_pool.hpp
/// Minimal work-queue thread pool plus a guided dynamic-chunking
/// parallel_for. Sweep tasks are fully independent and internally seeded, so
/// results are identical regardless of the thread count or interleaving.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rumr::sweep {

/// Number of workers `threads == 0` resolves to (hardware concurrency,
/// minimum 1).
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Runs fn(0), fn(1), ..., fn(count - 1) across `threads` workers (0 = auto).
/// Blocks until every index has been processed. Exceptions from fn propagate
/// (the first one captured is rethrown after all workers join).
///
/// Scheduling is guided dynamic chunking: workers claim blocks sized to the
/// unclaimed remainder (shrinking toward single indices near the end), so a
/// skewed task cannot idle the pool tail the way a static split would, and
/// the shared claim counter is touched far less often than once per index.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

/// Simple fixed-size thread pool for irregular task graphs.
///
/// A pool whose resolved width is 1 runs *inline*: no worker thread is ever
/// spawned, submit() executes the task immediately on the calling thread,
/// and wait_idle() is a no-op. Sweep tasks are order-independent, so inline
/// execution produces identical results to any threaded configuration while
/// skipping thread creation, the mutex, and the condition variables
/// entirely.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (std::terminate from a worker
  /// thread otherwise; an inline pool propagates the exception to the
  /// caller, which aborts a sweep just the same).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  /// Execution width: how many tasks can run concurrently (1 for an inline
  /// pool).
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Worker threads actually spawned — 0 for an inline pool. The regression
  /// suite asserts a width-1 pool never creates a thread.
  [[nodiscard]] std::size_t spawned_threads() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace rumr::sweep
