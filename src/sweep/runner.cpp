#include "sweep/runner.hpp"

#include <atomic>
#include <cmath>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "check/merge_audit.hpp"
#include "check/service_audit.hpp"
#include "check/trace_audit.hpp"
#include "jobs/job_stream.hpp"
#include "sim/master_worker.hpp"
#include "stats/rng.hpp"
#include "sweep/thread_pool.hpp"

namespace rumr::sweep {

std::vector<std::string> SweepOptions::validate() const {
  std::vector<std::string> problems;
  if (errors.empty()) problems.emplace_back("errors axis is empty — nothing to sweep");
  for (double e : errors) {
    if (!std::isfinite(e) || e < 0.0) {
      problems.emplace_back("errors axis contains a negative or non-finite level");
      break;
    }
  }
  if (repetitions == 0) problems.emplace_back("repetitions must be >= 1");
  if (!(w_total > 0.0) || !std::isfinite(w_total)) {
    problems.emplace_back("w_total must be positive and finite");
  }
  if (faults.enabled()) {
    if (!(fault_tolerance.timeout_slack > 1.0) || !std::isfinite(fault_tolerance.timeout_slack)) {
      problems.emplace_back("fault_tolerance.timeout_slack must be > 1 and finite");
    }
    if (!(fault_tolerance.backoff_base >= 0.0) || !(fault_tolerance.backoff_factor >= 1.0) ||
        !(fault_tolerance.backoff_max >= 0.0)) {
      problems.emplace_back("fault_tolerance backoff parameters are malformed");
    }
  }
  return problems;
}

std::uint64_t derive_rep_seed(std::uint64_t base_seed, const std::string& platform_label,
                              double axis_value, std::size_t rep) noexcept {
  // FNV-1a folds the label into the seed so any star platform — not just a
  // Table 1 lattice point — gets a stable identity; the axis value is
  // quantized onto a 1e-3 lattice so axis-generation FP noise cannot move
  // the seed.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char ch : platform_label) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ULL;
  }
  const auto quantized = static_cast<std::uint64_t>(std::llround(axis_value * 1000.0));
  return stats::mix_seed(base_seed ^ hash, quantized, rep);
}

void CellStats::merge(const CellStats& other) {
  makespan.merge(other.makespan);
  reps += other.reps;
  ref_wins += other.ref_wins;
  ref_wins_by_10pct += other.ref_wins_by_10pct;
  uplink_utilization.merge(other.uplink_utilization);
  worker_utilization.merge(other.worker_utilization);
  events.merge(other.events);
  hol_blocking_time.merge(other.hol_blocking_time);
  work_redispatched.merge(other.work_redispatched);
  makespan_quantiles.merge(other.makespan_quantiles);
}

void JobsCellStats::merge(const JobsCellStats& other) {
  arrived += other.arrived;
  admitted += other.admitted;
  rejected += other.rejected;
  shed += other.shed;
  completed += other.completed;
  manager_events += other.manager_events;
  oracle_runs += other.oracle_runs;
  oracle_events += other.oracle_events;
  reps += other.reps;
  mean_response.merge(other.mean_response);
  mean_slowdown.merge(other.mean_slowdown);
  utilization.merge(other.utilization);
  share_utilization.merge(other.share_utilization);
  horizon.merge(other.horizon);
  response_times.merge(other.response_times);
  slowdowns.merge(other.slowdowns);
  queue_waits.merge(other.queue_waits);
  job_sizes.merge(other.job_sizes);
}

std::size_t shards_per_site(std::size_t reps, std::size_t rep_block) noexcept {
  if (reps == 0) return 0;
  if (rep_block == 0) rep_block = (reps + 7) / 8;
  if (rep_block < 1) rep_block = 1;
  if (rep_block > reps) rep_block = reps;
  return (reps + rep_block - 1) / rep_block;
}

namespace {

sim::SimOptions make_sim_options(double error, std::uint64_t seed,
                                 stats::ErrorDistribution distribution,
                                 const faults::FaultSpec& faults = {},
                                 const sim::SimOptions::FaultToleranceOptions& tolerance = {}) {
  sim::SimOptions options;
  options.comm_error = stats::ErrorModel(distribution, error);
  options.comp_error = stats::ErrorModel(distribution, error);
  options.seed = seed;
  options.faults = faults;
  options.fault_tolerance = tolerance;
  return options;
}

void throw_invalid(const char* what, const std::vector<std::string>& problems) {
  std::string joined = what;
  for (const std::string& p : problems) joined += "\n  - " + p;
  throw std::invalid_argument(joined);
}

/// Shards per site: how many rep-blocks a (platform, axis) site splits into.
/// Deliberately a function of (reps, rep_block) only — NEVER of the thread
/// count — so the shard structure, and therefore the fixed-order merge tree,
/// is identical for every threads= setting.
std::size_t resolve_rep_block(std::size_t reps, std::size_t rep_block) {
  if (rep_block == 0) rep_block = (reps + 7) / 8;
  if (rep_block < 1) rep_block = 1;
  return std::min(rep_block, reps);
}

/// The map-reduce scaffold shared by the closed- and open-system engines.
///
/// Runs `sites x blocks` shards across parallel_for. Each site keeps a slot
/// per shard partial plus an atomic countdown; the shard that lands last
/// reduces the site's partials **in shard-index order** (the release/acquire
/// pair on the countdown makes every earlier partial visible to it) and
/// emits under a shared mutex, so consumers see serialized calls. Per-site
/// memory dies with the emission — completed sites hold nothing.
template <typename Partial, typename RunShard, typename Emit>
void run_sharded(std::size_t sites, std::size_t blocks, std::size_t threads,
                 const RunShard& run_shard, const Emit& emit) {
  struct Site {
    std::vector<std::optional<Partial>> parts;
    std::atomic<std::size_t> remaining{0};
  };
  std::vector<Site> state(sites);
  for (Site& site : state) {
    site.parts.resize(blocks);
    site.remaining.store(blocks, std::memory_order_relaxed);
  }
  std::mutex emit_mutex;

  parallel_for(
      sites * blocks,
      [&](std::size_t shard) {
        const std::size_t site_idx = shard / blocks;
        const std::size_t block = shard % blocks;
        Site& site = state[site_idx];
        site.parts[block] = run_shard(site_idx, block);
        if (site.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          Partial merged = std::move(*site.parts[0]);
          for (std::size_t b = 1; b < blocks; ++b) {
            merged.merge(*site.parts[b]);
            site.parts[b].reset();
          }
          site.parts.clear();
          site.parts.shrink_to_fit();
          const std::lock_guard lock(emit_mutex);
          emit(site_idx, std::move(merged));
        }
      },
      threads);
}

/// A closed-system site partial: one CellStats per algorithm.
struct ClosedPartial {
  std::vector<CellStats> cells;

  void merge(const ClosedPartial& other) {
    for (std::size_t a = 0; a < cells.size(); ++a) cells[a].merge(other.cells[a]);
  }
};

ClosedPartial run_closed_shard(const SweepPlatform& site, double error, std::size_t rep_begin,
                               std::size_t rep_end, const std::vector<AlgorithmSpec>& algorithms,
                               const SweepOptions& options) {
  ClosedPartial partial;
  partial.cells.resize(algorithms.size());
  std::vector<double> makespans(algorithms.size());
  for (std::size_t rep = rep_begin; rep < rep_end; ++rep) {
    // One seed per repetition, shared by every algorithm: the reference and
    // its competitors face the same perturbation draw, keeping the win-rate
    // comparisons paired (the paper's Tables 2-3 methodology).
    const std::uint64_t seed = derive_rep_seed(options.base_seed, site.label, error, rep);
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      const auto policy = algorithms[a].make(site.platform, options.w_total, error);
      const sim::SimOptions sim_options = make_sim_options(
          error, seed, options.distribution, options.faults, options.fault_tolerance);
      const sim::SimResult sim_result = simulate(site.platform, *policy, sim_options);
      makespans[a] = sim_result.makespan;

      if (options.audit_runs) {
        check::TraceAuditOptions audit_options;
        audit_options.work_tolerance = sim_options.work_tolerance;
        audit_options.uplink_channels = sim_options.uplink_channels;
        check::audit_sim_result(sim_result, site.platform, options.w_total, audit_options)
            .throw_if_failed();
      }

      const obs::RunMetrics& m = sim_result.metrics;
      CellStats& cell = partial.cells[a];
      cell.uplink_utilization.add(m.engine.uplink_utilization);
      cell.worker_utilization.add(m.engine.mean_worker_utilization);
      cell.events.add(static_cast<double>(m.des.events_executed));
      cell.hol_blocking_time.add(m.engine.hol_blocking_time);
      cell.work_redispatched.add(m.engine.work_redispatched);
    }
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      CellStats& cell = partial.cells[a];
      cell.makespan.add(makespans[a]);
      cell.makespan_quantiles.add(makespans[a]);
      ++cell.reps;
      if (makespans[0] < makespans[a]) ++cell.ref_wins;
      if (makespans[0] * 1.10 <= makespans[a]) ++cell.ref_wins_by_10pct;
    }
  }
  return partial;
}

}  // namespace

void run_sweep_streaming(const std::vector<SweepPlatform>& platforms,
                         const std::vector<AlgorithmSpec>& algorithms,
                         const SweepOptions& options, const CellConsumer& consumer) {
  std::vector<std::string> problems = options.validate();
  if (platforms.empty()) problems.emplace_back("platforms axis is empty — nothing to sweep");
  if (algorithms.empty()) problems.emplace_back("at least one algorithm is required");
  if (!consumer) problems.emplace_back("a cell consumer is required");
  if (!problems.empty()) throw_invalid("invalid sweep request:", problems);

  const std::size_t rep_block = resolve_rep_block(options.repetitions, options.rep_block);
  const std::size_t blocks = (options.repetitions + rep_block - 1) / rep_block;
  const std::size_t num_errors = options.errors.size();

  run_sharded<ClosedPartial>(
      platforms.size() * num_errors, blocks, options.threads,
      [&](std::size_t site, std::size_t block) {
        const std::size_t rep_begin = block * rep_block;
        const std::size_t rep_end = std::min(options.repetitions, rep_begin + rep_block);
        return run_closed_shard(platforms[site / num_errors], options.errors[site % num_errors],
                                rep_begin, rep_end, algorithms, options);
      },
      [&](std::size_t site, ClosedPartial&& merged) {
        const std::size_t platform_idx = site / num_errors;
        const std::size_t error_idx = site % num_errors;
        for (std::size_t a = 0; a < algorithms.size(); ++a) {
          SweepCell cell;
          cell.platform_index = platform_idx;
          cell.error_index = error_idx;
          cell.algorithm_index = a;
          cell.platform_label = platforms[platform_idx].label;
          cell.algorithm = algorithms[a].name;
          cell.error = options.errors[error_idx];
          cell.stats = std::move(merged.cells[a]);
          consumer(cell);
        }
      });
}

SweepResult::SweepResult(std::vector<PlatformConfig> configs, std::vector<double> errors,
                         std::vector<std::string> algorithms)
    : configs_(std::move(configs)),
      errors_(std::move(errors)),
      algorithms_(std::move(algorithms)),
      cells_(configs_.size() * errors_.size() * algorithms_.size()) {}

CellStats& SweepResult::cell(std::size_t config, std::size_t error, std::size_t algo) {
  return cells_[(config * errors_.size() + error) * algorithms_.size() + algo];
}

const CellStats& SweepResult::cell(std::size_t config, std::size_t error,
                                   std::size_t algo) const {
  return cells_[(config * errors_.size() + error) * algorithms_.size() + algo];
}

double SweepResult::mean_normalized_makespan(std::size_t error, std::size_t algo) const {
  stats::Accumulator ratios;
  for (std::size_t c = 0; c < configs_.size(); ++c) {
    const double reference = cell(c, error, 0).makespan.mean();
    const double competitor = cell(c, error, algo).makespan.mean();
    if (reference > 0.0) ratios.add(competitor / reference);
  }
  return ratios.mean();
}

double SweepResult::win_percentage(std::size_t band, std::size_t algo, bool by_margin) const {
  std::size_t wins = 0;
  std::size_t total = 0;
  for (std::size_t e = 0; e < errors_.size(); ++e) {
    if (error_band(errors_[e]) != band) continue;
    for (std::size_t c = 0; c < configs_.size(); ++c) {
      const double reference = cell(c, e, 0).makespan.mean();
      const double competitor = cell(c, e, algo).makespan.mean();
      ++total;
      if (by_margin ? reference * 1.10 <= competitor : reference < competitor) ++wins;
    }
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(wins) / static_cast<double>(total);
}

double SweepResult::overall_win_percentage(std::size_t algo) const {
  std::size_t wins = 0;
  std::size_t total = 0;
  for (std::size_t e = 0; e < errors_.size(); ++e) {
    for (std::size_t c = 0; c < configs_.size(); ++c) {
      ++total;
      if (cell(c, e, 0).makespan.mean() < cell(c, e, algo).makespan.mean()) ++wins;
    }
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(wins) / static_cast<double>(total);
}

double SweepResult::per_rep_win_percentage(std::size_t band, std::size_t algo,
                                           bool by_margin) const {
  std::size_t wins = 0;
  std::size_t total = 0;
  for (std::size_t e = 0; e < errors_.size(); ++e) {
    if (error_band(errors_[e]) != band) continue;
    for (std::size_t c = 0; c < configs_.size(); ++c) {
      const CellStats& stats = cell(c, e, algo);
      wins += by_margin ? stats.ref_wins_by_10pct : stats.ref_wins;
      total += stats.reps;
    }
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(wins) / static_cast<double>(total);
}

SweepResult run_sweep(const std::vector<PlatformConfig>& configs,
                      const std::vector<AlgorithmSpec>& algorithms, const SweepOptions& options) {
  if (algorithms.empty()) throw std::invalid_argument("run_sweep needs at least one algorithm");
  if (const std::vector<std::string> problems = options.validate(); !problems.empty()) {
    throw_invalid("invalid SweepOptions:", problems);
  }

  std::vector<std::string> names;
  names.reserve(algorithms.size());
  for (const AlgorithmSpec& spec : algorithms) names.push_back(spec.name);
  SweepResult result(configs, options.errors, std::move(names));

  // Thin buffering wrapper: the streaming engine serializes consumer calls,
  // and every cell has its own slot, so plain assignment is race-free.
  run_sweep_streaming(wrap_grid(configs), algorithms, options, [&result](const SweepCell& cell) {
    result.cell(cell.platform_index, cell.error_index, cell.algorithm_index) = cell.stats;
  });
  return result;
}

// --- open-system sweeps ------------------------------------------------------

std::vector<std::string> JobsSweepOptions::validate() const {
  std::vector<std::string> problems;
  if (loads.empty()) problems.emplace_back("loads axis is empty — nothing to sweep");
  for (double l : loads) {
    if (!std::isfinite(l) || !(l > 0.0)) {
      problems.emplace_back("loads axis contains a non-positive or non-finite load");
      break;
    }
  }
  if (repetitions == 0) problems.emplace_back("repetitions must be >= 1");
  if (base.stream.kind != jobs::ArrivalKind::kPoisson) {
    problems.emplace_back(
        "base.stream must be a Poisson stream — the load axis maps to arrival rates");
  } else {
    // The engine overwrites arrival_rate per (platform, load); validate the
    // rest of the template with a placeholder rate so an unset rate is not a
    // spurious complaint.
    jobs::JobsOptions probe = base;
    probe.stream.arrival_rate = 1.0;
    for (std::string& p : probe.validate()) problems.push_back(std::move(p));
  }
  return problems;
}

namespace {

JobsCellStats run_jobs_shard(const SweepPlatform& site, double load, std::size_t rep_begin,
                             std::size_t rep_end, const JobsSweepOptions& options) {
  JobsCellStats cell;
  for (std::size_t rep = rep_begin; rep < rep_end; ++rep) {
    jobs::JobsOptions run_options = options.base;
    run_options.stream.arrival_rate = jobs::JobStreamSpec::rate_for_load(
        site.platform, load, run_options.stream.mean_size);
    run_options.sim.seed = derive_rep_seed(options.base_seed, site.label, load, rep);
    const jobs::ServiceResult run = jobs::run_jobs(site.platform, run_options);
    if (options.audit_runs) {
      check::audit_service_result(run, site.platform, run_options).throw_if_failed();
    }
    cell.arrived += run.arrived;
    cell.admitted += run.admitted;
    cell.rejected += run.rejected;
    cell.shed += run.shed;
    cell.completed += run.completed;
    cell.manager_events += run.manager_events;
    cell.oracle_runs += run.oracle_runs;
    cell.oracle_events += run.oracle_events;
    cell.mean_response.add(run.mean_response());
    cell.mean_slowdown.add(run.mean_slowdown());
    cell.utilization.add(run.utilization);
    cell.share_utilization.add(run.share_utilization);
    cell.horizon.add(run.horizon);
    cell.response_times.merge(run.stats.response_times);
    cell.slowdowns.merge(run.stats.slowdowns);
    cell.queue_waits.merge(run.stats.queue_waits);
    cell.job_sizes.merge(run.stats.job_sizes);
    ++cell.reps;
  }
  return cell;
}

}  // namespace

void run_jobs_sweep(const std::vector<SweepPlatform>& platforms,
                    const JobsSweepOptions& options, const JobsCellConsumer& consumer) {
  std::vector<std::string> problems = options.validate();
  if (platforms.empty()) problems.emplace_back("platforms axis is empty — nothing to sweep");
  if (!consumer) problems.emplace_back("a cell consumer is required");
  if (!problems.empty()) throw_invalid("invalid jobs-sweep request:", problems);

  const std::size_t rep_block = resolve_rep_block(options.repetitions, options.rep_block);
  const std::size_t blocks = (options.repetitions + rep_block - 1) / rep_block;
  const std::size_t num_loads = options.loads.size();

  run_sharded<JobsCellStats>(
      platforms.size() * num_loads, blocks, options.threads,
      [&](std::size_t site, std::size_t block) {
        const std::size_t rep_begin = block * rep_block;
        const std::size_t rep_end = std::min(options.repetitions, rep_begin + rep_block);
        return run_jobs_shard(platforms[site / num_loads], options.loads[site % num_loads],
                              rep_begin, rep_end, options);
      },
      [&](std::size_t site, JobsCellStats&& merged) {
        JobsSweepCell cell;
        cell.platform_index = site / num_loads;
        cell.load_index = site % num_loads;
        cell.platform_label = platforms[cell.platform_index].label;
        cell.load = options.loads[cell.load_index];
        cell.stats = std::move(merged);
        consumer(cell);
      });
}

// --- merge-consistency audits ------------------------------------------------

namespace {

void audit_exact(const std::string& label, const char* what, std::uint64_t merged,
                 std::uint64_t serial, check::AuditReport& report) {
  if (merged != serial) {
    report.violations.push_back(label + ": " + what + " merged=" + std::to_string(merged) +
                                " serial=" + std::to_string(serial));
  }
}

}  // namespace

void audit_cell_merge(const std::string& label, const CellStats& merged,
                      const CellStats& serial, check::AuditReport& report) {
  check::audit_accumulator_merge(label + ".makespan", merged.makespan, serial.makespan, report);
  check::audit_accumulator_merge(label + ".uplink_utilization", merged.uplink_utilization,
                                 serial.uplink_utilization, report);
  check::audit_accumulator_merge(label + ".worker_utilization", merged.worker_utilization,
                                 serial.worker_utilization, report);
  check::audit_accumulator_merge(label + ".events", merged.events, serial.events, report);
  check::audit_accumulator_merge(label + ".hol_blocking_time", merged.hol_blocking_time,
                                 serial.hol_blocking_time, report);
  check::audit_accumulator_merge(label + ".work_redispatched", merged.work_redispatched,
                                 serial.work_redispatched, report);
  check::audit_sketch_merge(label + ".makespan_quantiles", merged.makespan_quantiles,
                            serial.makespan_quantiles, report);
  audit_exact(label, "reps", merged.reps, serial.reps, report);
  audit_exact(label, "ref_wins", merged.ref_wins, serial.ref_wins, report);
  audit_exact(label, "ref_wins_by_10pct", merged.ref_wins_by_10pct, serial.ref_wins_by_10pct,
              report);
}

void audit_cell_merge(const std::string& label, const JobsCellStats& merged,
                      const JobsCellStats& serial, check::AuditReport& report) {
  audit_exact(label, "arrived", merged.arrived, serial.arrived, report);
  audit_exact(label, "admitted", merged.admitted, serial.admitted, report);
  audit_exact(label, "rejected", merged.rejected, serial.rejected, report);
  audit_exact(label, "shed", merged.shed, serial.shed, report);
  audit_exact(label, "completed", merged.completed, serial.completed, report);
  audit_exact(label, "manager_events", merged.manager_events, serial.manager_events, report);
  audit_exact(label, "oracle_runs", merged.oracle_runs, serial.oracle_runs, report);
  audit_exact(label, "oracle_events", merged.oracle_events, serial.oracle_events, report);
  audit_exact(label, "reps", merged.reps, serial.reps, report);
  check::audit_accumulator_merge(label + ".mean_response", merged.mean_response,
                                 serial.mean_response, report);
  check::audit_accumulator_merge(label + ".mean_slowdown", merged.mean_slowdown,
                                 serial.mean_slowdown, report);
  check::audit_accumulator_merge(label + ".utilization", merged.utilization, serial.utilization,
                                 report);
  check::audit_accumulator_merge(label + ".share_utilization", merged.share_utilization,
                                 serial.share_utilization, report);
  check::audit_accumulator_merge(label + ".horizon", merged.horizon, serial.horizon, report);
  check::audit_histogram_merge(label + ".response_times", merged.response_times,
                               serial.response_times, report);
  check::audit_histogram_merge(label + ".slowdowns", merged.slowdowns, serial.slowdowns, report);
  check::audit_histogram_merge(label + ".queue_waits", merged.queue_waits, serial.queue_waits,
                               report);
  check::audit_histogram_merge(label + ".job_sizes", merged.job_sizes, serial.job_sizes, report);
}

double run_once(const PlatformConfig& config, const AlgorithmSpec& spec, double error,
                std::uint64_t seed, double w_total, stats::ErrorDistribution distribution) {
  const platform::StarPlatform platform = config.to_platform();
  const auto policy = spec.make(platform, w_total, error);
  return simulate(platform, *policy, make_sim_options(error, seed, distribution)).makespan;
}

}  // namespace rumr::sweep
