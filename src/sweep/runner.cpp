#include "sweep/runner.hpp"

#include <cmath>
#include <stdexcept>

#include "check/trace_audit.hpp"
#include "sim/master_worker.hpp"
#include "stats/rng.hpp"
#include "sweep/thread_pool.hpp"

namespace rumr::sweep {

std::vector<std::string> SweepOptions::validate() const {
  std::vector<std::string> problems;
  if (errors.empty()) problems.emplace_back("errors axis is empty — nothing to sweep");
  for (double e : errors) {
    if (!std::isfinite(e) || e < 0.0) {
      problems.emplace_back("errors axis contains a negative or non-finite level");
      break;
    }
  }
  if (repetitions == 0) problems.emplace_back("repetitions must be >= 1");
  if (!(w_total > 0.0) || !std::isfinite(w_total)) {
    problems.emplace_back("w_total must be positive and finite");
  }
  if (faults.enabled()) {
    if (!(fault_tolerance.timeout_slack > 1.0) || !std::isfinite(fault_tolerance.timeout_slack)) {
      problems.emplace_back("fault_tolerance.timeout_slack must be > 1 and finite");
    }
    if (!(fault_tolerance.backoff_base >= 0.0) || !(fault_tolerance.backoff_factor >= 1.0) ||
        !(fault_tolerance.backoff_max >= 0.0)) {
      problems.emplace_back("fault_tolerance backoff parameters are malformed");
    }
  }
  return problems;
}

namespace {

sim::SimOptions make_sim_options(double error, std::uint64_t seed,
                                 stats::ErrorDistribution distribution,
                                 const faults::FaultSpec& faults = {},
                                 const sim::SimOptions::FaultToleranceOptions& tolerance = {}) {
  sim::SimOptions options;
  options.comm_error = stats::ErrorModel(distribution, error);
  options.comp_error = stats::ErrorModel(distribution, error);
  options.seed = seed;
  options.faults = faults;
  options.fault_tolerance = tolerance;
  return options;
}

std::uint64_t derive_seed(std::uint64_t base, const PlatformConfig& config, double error,
                          std::size_t rep) {
  // Quantize doubles onto their Table 1 lattice so the seed is stable under
  // floating-point noise in axis generation.
  const auto q = [](double v) { return static_cast<std::uint64_t>(std::llround(v * 1000.0)); };
  const std::uint64_t a = stats::mix_seed(base, config.n, q(config.b_over_n), q(config.clat));
  return stats::mix_seed(a, q(config.nlat), q(error), rep);
}

}  // namespace

SweepResult::SweepResult(std::vector<PlatformConfig> configs, std::vector<double> errors,
                         std::vector<std::string> algorithms)
    : configs_(std::move(configs)),
      errors_(std::move(errors)),
      algorithms_(std::move(algorithms)),
      cells_(configs_.size() * errors_.size() * algorithms_.size()) {}

CellStats& SweepResult::cell(std::size_t config, std::size_t error, std::size_t algo) {
  return cells_[(config * errors_.size() + error) * algorithms_.size() + algo];
}

const CellStats& SweepResult::cell(std::size_t config, std::size_t error,
                                   std::size_t algo) const {
  return cells_[(config * errors_.size() + error) * algorithms_.size() + algo];
}

double SweepResult::mean_normalized_makespan(std::size_t error, std::size_t algo) const {
  stats::Accumulator ratios;
  for (std::size_t c = 0; c < configs_.size(); ++c) {
    const double reference = cell(c, error, 0).makespan.mean();
    const double competitor = cell(c, error, algo).makespan.mean();
    if (reference > 0.0) ratios.add(competitor / reference);
  }
  return ratios.mean();
}

double SweepResult::win_percentage(std::size_t band, std::size_t algo, bool by_margin) const {
  std::size_t wins = 0;
  std::size_t total = 0;
  for (std::size_t e = 0; e < errors_.size(); ++e) {
    if (error_band(errors_[e]) != band) continue;
    for (std::size_t c = 0; c < configs_.size(); ++c) {
      const double reference = cell(c, e, 0).makespan.mean();
      const double competitor = cell(c, e, algo).makespan.mean();
      ++total;
      if (by_margin ? reference * 1.10 <= competitor : reference < competitor) ++wins;
    }
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(wins) / static_cast<double>(total);
}

double SweepResult::overall_win_percentage(std::size_t algo) const {
  std::size_t wins = 0;
  std::size_t total = 0;
  for (std::size_t e = 0; e < errors_.size(); ++e) {
    for (std::size_t c = 0; c < configs_.size(); ++c) {
      ++total;
      if (cell(c, e, 0).makespan.mean() < cell(c, e, algo).makespan.mean()) ++wins;
    }
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(wins) / static_cast<double>(total);
}

double SweepResult::per_rep_win_percentage(std::size_t band, std::size_t algo,
                                           bool by_margin) const {
  std::size_t wins = 0;
  std::size_t total = 0;
  for (std::size_t e = 0; e < errors_.size(); ++e) {
    if (error_band(errors_[e]) != band) continue;
    for (std::size_t c = 0; c < configs_.size(); ++c) {
      const CellStats& stats = cell(c, e, algo);
      wins += by_margin ? stats.ref_wins_by_10pct : stats.ref_wins;
      total += stats.reps;
    }
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(wins) / static_cast<double>(total);
}

SweepResult run_sweep(const std::vector<PlatformConfig>& configs,
                      const std::vector<AlgorithmSpec>& algorithms, const SweepOptions& options) {
  if (algorithms.empty()) throw std::invalid_argument("run_sweep needs at least one algorithm");
  if (const std::vector<std::string> problems = options.validate(); !problems.empty()) {
    std::string joined = "invalid SweepOptions:";
    for (const std::string& p : problems) joined += "\n  - " + p;
    throw std::invalid_argument(joined);
  }

  std::vector<std::string> names;
  names.reserve(algorithms.size());
  for (const AlgorithmSpec& spec : algorithms) names.push_back(spec.name);
  SweepResult result(configs, options.errors, std::move(names));

  // One task per (configuration, error level); each task owns its cells, so
  // no synchronization is needed on the result.
  const std::size_t tasks = configs.size() * options.errors.size();
  parallel_for(
      tasks,
      [&](std::size_t task) {
        const std::size_t config_idx = task / options.errors.size();
        const std::size_t error_idx = task % options.errors.size();
        const PlatformConfig& config = result.configs()[config_idx];
        const double error = options.errors[error_idx];
        const platform::StarPlatform platform = config.to_platform();

        std::vector<double> makespans(algorithms.size());
        for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
          const std::uint64_t seed = derive_seed(options.base_seed, config, error, rep);
          for (std::size_t a = 0; a < algorithms.size(); ++a) {
            const auto policy = algorithms[a].make(platform, options.w_total, error);
            const sim::SimOptions sim_options =
                make_sim_options(error, seed, options.distribution, options.faults,
                                 options.fault_tolerance);
            const sim::SimResult sim_result = simulate(platform, *policy, sim_options);
            makespans[a] = sim_result.makespan;

            if (options.audit_runs) {
              check::TraceAuditOptions audit_options;
              audit_options.work_tolerance = sim_options.work_tolerance;
              audit_options.uplink_channels = sim_options.uplink_channels;
              check::audit_sim_result(sim_result, platform, options.w_total, audit_options)
                  .throw_if_failed();
            }

            const obs::RunMetrics& m = sim_result.metrics;
            CellStats& cell = result.cell(config_idx, error_idx, a);
            cell.uplink_utilization.add(m.engine.uplink_utilization);
            cell.worker_utilization.add(m.engine.mean_worker_utilization);
            cell.events.add(static_cast<double>(m.des.events_executed));
            cell.hol_blocking_time.add(m.engine.hol_blocking_time);
            cell.work_redispatched.add(m.engine.work_redispatched);
          }
          for (std::size_t a = 0; a < algorithms.size(); ++a) {
            CellStats& cell = result.cell(config_idx, error_idx, a);
            cell.makespan.add(makespans[a]);
            ++cell.reps;
            if (makespans[0] < makespans[a]) ++cell.ref_wins;
            if (makespans[0] * 1.10 <= makespans[a]) ++cell.ref_wins_by_10pct;
          }
        }
      },
      options.threads);
  return result;
}

double run_once(const PlatformConfig& config, const AlgorithmSpec& spec, double error,
                std::uint64_t seed, double w_total, stats::ErrorDistribution distribution) {
  const platform::StarPlatform platform = config.to_platform();
  const auto policy = spec.make(platform, w_total, error);
  return simulate(platform, *policy, make_sim_options(error, seed, distribution)).makespan;
}

}  // namespace rumr::sweep
