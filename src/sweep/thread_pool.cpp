#include "sweep/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace rumr::sweep {

std::size_t default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  const std::size_t workers = std::min(count, threads == 0 ? default_thread_count() : threads);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  // Guided dynamic chunk claiming. Each claim takes a block proportional to
  // the *unclaimed* remainder (remaining / 2·workers, capped), so early
  // claims amortize the shared counter while late claims shrink toward
  // single indices: a skewed task near the end (one slow high-MTBF fault
  // cell, say) can strand at most its own chunk behind it, and idle workers
  // drain the tail index by index instead of waiting on a static share.
  constexpr std::size_t kMaxChunk = 64;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    pool.emplace_back([&] {
      std::size_t begin = next.load(std::memory_order_relaxed);
      for (;;) {
        if (begin >= count) return;
        const std::size_t remaining = count - begin;
        const std::size_t guided = remaining / (2 * workers);
        const std::size_t chunk = std::min({kMaxChunk, std::max<std::size_t>(1, guided), remaining});
        if (!next.compare_exchange_weak(begin, begin + chunk, std::memory_order_relaxed)) {
          continue;  // Lost the race; `begin` was reloaded, re-derive the chunk.
        }
        const std::size_t end = begin + chunk;
        for (std::size_t i = begin; i < end; ++i) {
          try {
            fn(i);
          } catch (...) {
            const std::lock_guard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        }
        begin = next.load(std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? default_thread_count() : threads;
  if (n <= 1) return;  // Inline pool: no threads, submit() runs the task itself.
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // Inline pool: run right here, on the calling thread.
    return;
  }
  {
    const std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;  // Inline pool: submit() already ran everything.
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace rumr::sweep
