#pragma once

/// \file fault_model.hpp
/// Worker-availability (fault) models for the master-worker simulator.
///
/// The paper only perturbs *durations*: a worker can be slow but never gone.
/// Real star platforms lose workers — the batch-vs-fractional scheduling and
/// star-redistribution literature treats unavailability as first-class — so
/// this module grows the robustness axis from "wrong predictions" to "missing
/// resources". A fault model describes, per worker, when the worker is down:
///
///   - kNone:      always available (the paper's setting; zero overhead).
///   - kFailStop:  each worker independently fails *permanently* at a time
///                 sampled from Exp(mtbf); `fail_probability` bounds the
///                 fraction of workers that ever fail.
///   - kTransient: crash/recover renewal process — up-times ~ Exp(mtbf),
///                 down-times ~ Exp(mttr), repeating forever.
///   - kScripted:  explicit per-worker outage intervals, for tests and
///                 reproducible demos.
///
/// Timelines are sampled lazily from per-worker RNG streams derived from the
/// run seed, so (a) replays are byte-identical under the determinism harness
/// regardless of query order, and (b) the engine's own RNG consumption is
/// untouched — runs with faults disabled remain bit-for-bit identical to
/// runs of a build without this subsystem.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "des/simulator.hpp"
#include "stats/rng.hpp"

namespace rumr::faults {

/// How worker availability evolves over a run.
enum class FaultKind : std::uint8_t { kNone, kFailStop, kTransient, kScripted };

/// One unavailability interval [down, up). An infinite `up` is a permanent
/// (fail-stop) loss.
struct Outage {
  des::SimTime down = 0.0;
  des::SimTime up = std::numeric_limits<des::SimTime>::infinity();

  [[nodiscard]] bool permanent() const noexcept {
    return up == std::numeric_limits<des::SimTime>::infinity();
  }
};

/// Declarative description of a fault model. Validated by FaultTimeline.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;

  /// Mean time between failures (mean up-time), seconds. Used by kFailStop
  /// (time of the single permanent failure) and kTransient.
  double mtbf = 1.0e9;

  /// Mean time to repair (mean down-time), seconds. kTransient only.
  double mttr = 10.0;

  /// kFailStop: probability that a given worker ever fails. 1 = every worker
  /// eventually dies (given enough simulated time).
  double fail_probability = 1.0;

  /// kScripted: explicit (worker, outage) list. Outages of one worker must
  /// not overlap; order does not matter (sorted on construction).
  std::vector<std::pair<std::size_t, Outage>> script;

  [[nodiscard]] bool enabled() const noexcept { return kind != FaultKind::kNone; }

  [[nodiscard]] static FaultSpec none() noexcept { return {}; }
  [[nodiscard]] static FaultSpec fail_stop(double mtbf, double fail_probability = 1.0);
  [[nodiscard]] static FaultSpec transient(double mtbf, double mttr);
  [[nodiscard]] static FaultSpec scripted(std::vector<std::pair<std::size_t, Outage>> script);
};

/// Draws from Exp(mean) via inversion; deterministic across platforms.
[[nodiscard]] double sample_exponential(double mean, stats::Rng& rng);

/// Per-worker availability timeline, sampled lazily from `spec`.
///
/// Each worker owns an independent RNG stream derived from (seed, worker),
/// so the sequence of outages a worker experiences does not depend on what
/// happens to other workers or on query order.
class FaultTimeline {
 public:
  /// Empty timeline: every worker always up.
  FaultTimeline() = default;

  /// Throws std::invalid_argument on an invalid spec (non-positive mtbf/mttr
  /// where used, out-of-range probability, overlapping scripted outages, or
  /// a scripted worker index >= workers).
  FaultTimeline(const FaultSpec& spec, std::size_t workers, std::uint64_t seed);

  [[nodiscard]] std::size_t workers() const noexcept { return lanes_.size(); }
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// The first outage still relevant at time `t`: the earliest outage with
  /// up > t (it either contains t or lies in the future). nullopt when the
  /// worker never goes down again.
  [[nodiscard]] std::optional<Outage> next_outage(std::size_t worker, des::SimTime t);

  /// Ground-truth availability at time `t` (down intervals are half-open, so
  /// a worker is alive at its exact recovery instant).
  [[nodiscard]] bool alive_at(std::size_t worker, des::SimTime t);

 private:
  struct Lane {
    stats::Rng rng{0};
    std::vector<Outage> outages;   ///< Generated so far, sorted, disjoint.
    des::SimTime generated_to = 0.0;
    bool exhausted = false;        ///< No further outages will ever be generated.
  };

  /// Appends the next outage to `lane` or marks it exhausted.
  void generate_one(Lane& lane);

  FaultSpec spec_{};
  std::vector<Lane> lanes_;
};

}  // namespace rumr::faults
