#pragma once

/// \file fault_model.hpp
/// Worker-availability (fault) models for the master-worker simulator.
///
/// The paper only perturbs *durations*: a worker can be slow but never gone.
/// Real star platforms lose workers — the batch-vs-fractional scheduling and
/// star-redistribution literature treats unavailability as first-class — so
/// this module grows the robustness axis from "wrong predictions" to "missing
/// resources". A fault model describes, per worker, when the worker is down:
///
///   - kNone:      always available (the paper's setting; zero overhead).
///   - kFailStop:  each worker independently fails *permanently* at a time
///                 sampled from Exp(mtbf); `fail_probability` bounds the
///                 fraction of workers that ever fail.
///   - kTransient: crash/recover renewal process — up-times ~ Exp(mtbf),
///                 down-times ~ Exp(mttr), repeating forever. mttr = 0 models
///                 instant repair: the outage is a zero-length point event
///                 that still destroys in-progress work.
///   - kScripted:  explicit per-worker outage intervals, for tests and
///                 reproducible demos. Overlapping or adjacent intervals are
///                 coalesced at construction, so downtime is never counted
///                 twice no matter how the script was assembled.
///
/// The module also models *link* faults (LinkFaultSpec / LinkTimeline): the
/// master-worker channel itself can drop messages, stretch its bandwidth
/// inside degradation windows, or delay a delivery with a latency spike.
/// Worker faults remove the CPU; link faults corrupt the conversation with a
/// CPU that is perfectly healthy — the regime where retransmission protocols
/// and partial-work checkpointing earn their keep.
///
/// Timelines are sampled lazily from per-worker RNG streams derived from the
/// run seed, so (a) replays are byte-identical under the determinism harness
/// regardless of query order, and (b) the engine's own RNG consumption is
/// untouched — runs with faults disabled remain bit-for-bit identical to
/// runs of a build without this subsystem. Link lanes are seeded with a
/// different tag than worker lanes, and every message fate consumes exactly
/// three uniforms, so the draw layout is independent of outcomes.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "des/simulator.hpp"
#include "stats/rng.hpp"

namespace rumr::faults {

/// How worker availability evolves over a run.
enum class FaultKind : std::uint8_t { kNone, kFailStop, kTransient, kScripted };

/// One unavailability interval [down, up). An infinite `up` is a permanent
/// (fail-stop) loss.
struct Outage {
  des::SimTime down = 0.0;
  des::SimTime up = std::numeric_limits<des::SimTime>::infinity();

  [[nodiscard]] bool permanent() const noexcept {
    return up == std::numeric_limits<des::SimTime>::infinity();
  }
};

/// Declarative description of a fault model. Validated by FaultTimeline.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;

  /// Mean time between failures (mean up-time), seconds. Used by kFailStop
  /// (time of the single permanent failure) and kTransient.
  double mtbf = 1.0e9;

  /// Mean time to repair (mean down-time), seconds. kTransient only. 0 is
  /// legal and means instant repair (zero-length outages).
  double mttr = 10.0;

  /// kFailStop: probability that a given worker ever fails. 1 = every worker
  /// eventually dies (given enough simulated time).
  double fail_probability = 1.0;

  /// kScripted: explicit (worker, outage) list. Order does not matter
  /// (sorted on construction); overlapping or touching outages of one worker
  /// are merged into a single interval.
  std::vector<std::pair<std::size_t, Outage>> script;

  [[nodiscard]] bool enabled() const noexcept { return kind != FaultKind::kNone; }

  [[nodiscard]] static FaultSpec none() noexcept { return {}; }
  [[nodiscard]] static FaultSpec fail_stop(double mtbf, double fail_probability = 1.0);
  [[nodiscard]] static FaultSpec transient(double mtbf, double mttr);
  [[nodiscard]] static FaultSpec scripted(std::vector<std::pair<std::size_t, Outage>> script);
};

/// Draws from Exp(mean) via inversion; deterministic across platforms.
[[nodiscard]] double sample_exponential(double mean, stats::Rng& rng);

/// Per-worker availability timeline, sampled lazily from `spec`.
///
/// Each worker owns an independent RNG stream derived from (seed, worker),
/// so the sequence of outages a worker experiences does not depend on what
/// happens to other workers or on query order.
class FaultTimeline {
 public:
  /// Empty timeline: every worker always up.
  FaultTimeline() = default;

  /// Throws std::invalid_argument on an invalid spec (non-positive mtbf,
  /// negative mttr, out-of-range probability, a malformed scripted interval,
  /// or a scripted worker index >= workers).
  FaultTimeline(const FaultSpec& spec, std::size_t workers, std::uint64_t seed);

  [[nodiscard]] std::size_t workers() const noexcept { return lanes_.size(); }
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// The first outage still relevant at time `t`: the earliest outage with
  /// up > t (it either contains t or lies in the future). nullopt when the
  /// worker never goes down again.
  [[nodiscard]] std::optional<Outage> next_outage(std::size_t worker, des::SimTime t);

  /// Ground-truth availability at time `t` (down intervals are half-open, so
  /// a worker is alive at its exact recovery instant).
  [[nodiscard]] bool alive_at(std::size_t worker, des::SimTime t);

 private:
  struct Lane {
    stats::Rng rng{0};
    std::vector<Outage> outages;   ///< Generated so far, sorted, disjoint.
    des::SimTime generated_to = 0.0;
    bool exhausted = false;        ///< No further outages will ever be generated.
  };

  /// Appends the next outage to `lane` or marks it exhausted.
  void generate_one(Lane& lane);

  FaultSpec spec_{};
  std::vector<Lane> lanes_;
};

/// Declarative description of master-worker channel faults. All axes
/// compose; a default-constructed spec is inert (LinkTimeline then adds zero
/// RNG draws and the engine skips the layer entirely).
struct LinkFaultSpec {
  /// Per-message loss probability in [0, 1]. Applies independently to each
  /// chunk payload, each retransmission, and each ACK.
  double loss = 0.0;

  /// Per-message probability of a latency spike in [0, 1].
  double spike_probability = 0.0;

  /// Mean extra delivery delay of a spiked message, seconds (Exp-distributed).
  /// A spike delays the arrival at the far end only; it does not extend the
  /// serialized uplink occupancy (the congestion is in the network, not at
  /// the master's NIC).
  double spike_mean = 0.0;

  /// Bandwidth-degradation windows: per-worker renewal process with mean
  /// clean-time degraded_mtbf and mean window length degraded_mttr (both
  /// seconds; degraded_mtbf = 0 disables the axis). Inside a window the
  /// bandwidth term of a transfer is stretched by degraded_factor (latencies
  /// are unaffected); the master's *predictions* still use the clean model,
  /// which is exactly what makes precalculated schedules fragile here.
  double degraded_mtbf = 0.0;
  double degraded_mttr = 0.0;
  double degraded_factor = 1.0;

  [[nodiscard]] bool enabled() const noexcept {
    return loss > 0.0 || spike_probability > 0.0 ||
           (degraded_mtbf > 0.0 && degraded_factor > 1.0);
  }

  [[nodiscard]] static LinkFaultSpec none() noexcept { return {}; }
  [[nodiscard]] static LinkFaultSpec lossy(double loss);
  [[nodiscard]] static LinkFaultSpec spiky(double probability, double mean);
  [[nodiscard]] static LinkFaultSpec degraded(double mtbf, double mttr, double factor);
};

/// Per-worker link-fault timeline: answers, for each message sent at time t,
/// whether it is lost, how much spike delay it suffers, and by what factor
/// the bandwidth term is stretched.
///
/// Each worker owns an independent RNG lane seeded with a tag distinct from
/// the worker-fault lanes, and every message_fate() call consumes exactly
/// three uniforms (loss, spike occurrence, spike magnitude) regardless of
/// outcome — the draw layout never depends on what earlier messages did, so
/// faulty runs replay exactly. Degradation windows are a lazily sampled
/// renewal process per worker (reusing FaultTimeline with a synthesized
/// transient spec on its own seed), queried by time, costing zero draws per
/// message.
class LinkTimeline {
 public:
  /// What the link does to one message.
  struct MessageFate {
    bool lost = false;       ///< Dropped in the network; never arrives.
    double spike = 0.0;      ///< Extra delivery latency, seconds.
    double stretch = 1.0;    ///< Bandwidth-term multiplier (>= 1).
  };

  /// Inert timeline: every message is delivered clean.
  LinkTimeline() = default;

  /// Throws std::invalid_argument on an invalid spec (probabilities outside
  /// [0, 1], negative means, degraded_factor < 1).
  LinkTimeline(const LinkFaultSpec& spec, std::size_t workers, std::uint64_t seed);

  [[nodiscard]] std::size_t workers() const noexcept { return lanes_.size(); }
  [[nodiscard]] const LinkFaultSpec& spec() const noexcept { return spec_; }

  /// Draws the fate of a message sent toward (or from) `worker` at time `t`.
  /// Exactly three uniforms are consumed from the worker's lane per call.
  [[nodiscard]] MessageFate message_fate(std::size_t worker, des::SimTime t);

  /// Whether worker w's channel is inside a degradation window at time `t`
  /// (costs zero RNG draws on the message lanes).
  [[nodiscard]] bool degraded_at(std::size_t worker, des::SimTime t);

 private:
  LinkFaultSpec spec_{};
  std::vector<stats::Rng> lanes_;
  FaultTimeline degradation_;  ///< "Outages" are degradation windows.
  bool degradation_on_ = false;
};

}  // namespace rumr::faults
