#include "faults/fault_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace rumr::faults {

FaultSpec FaultSpec::fail_stop(double mtbf, double fail_probability) {
  FaultSpec spec;
  spec.kind = FaultKind::kFailStop;
  spec.mtbf = mtbf;
  spec.fail_probability = fail_probability;
  return spec;
}

FaultSpec FaultSpec::transient(double mtbf, double mttr) {
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.mtbf = mtbf;
  spec.mttr = mttr;
  return spec;
}

FaultSpec FaultSpec::scripted(std::vector<std::pair<std::size_t, Outage>> script) {
  FaultSpec spec;
  spec.kind = FaultKind::kScripted;
  spec.script = std::move(script);
  return spec;
}

double sample_exponential(double mean, stats::Rng& rng) {
  // Inversion on 1 - U keeps the draw strictly positive for U in [0, 1).
  return -mean * std::log1p(-rng.uniform01());
}

namespace {

void validate(const FaultSpec& spec, std::size_t workers) {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("invalid FaultSpec: " + what);
  };
  switch (spec.kind) {
    case FaultKind::kNone:
      return;
    case FaultKind::kFailStop:
      if (!(spec.mtbf > 0.0) || !std::isfinite(spec.mtbf)) bad("mtbf must be positive and finite");
      if (spec.fail_probability < 0.0 || spec.fail_probability > 1.0) {
        bad("fail_probability must be in [0, 1]");
      }
      return;
    case FaultKind::kTransient:
      if (!(spec.mtbf > 0.0) || !std::isfinite(spec.mtbf)) bad("mtbf must be positive and finite");
      if (!(spec.mttr > 0.0) || !std::isfinite(spec.mttr)) bad("mttr must be positive and finite");
      return;
    case FaultKind::kScripted:
      for (const auto& [worker, outage] : spec.script) {
        if (worker >= workers) bad("scripted outage names worker " + std::to_string(worker));
        if (outage.down < 0.0 || outage.up <= outage.down) bad("scripted outage is malformed");
      }
      return;
  }
}

}  // namespace

FaultTimeline::FaultTimeline(const FaultSpec& spec, std::size_t workers, std::uint64_t seed)
    : spec_(spec) {
  validate(spec, workers);
  lanes_.resize(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    // Independent per-worker streams: outages of worker w never depend on
    // query interleaving or on other workers' histories.
    lanes_[w].rng = stats::Rng(stats::mix_seed(seed, 0xFA171D00ULL, w));
    if (!spec_.enabled()) lanes_[w].exhausted = true;
  }
  if (spec_.kind == FaultKind::kScripted) {
    for (const auto& [worker, outage] : spec_.script) lanes_[worker].outages.push_back(outage);
    for (Lane& lane : lanes_) {
      std::sort(lane.outages.begin(), lane.outages.end(),
                [](const Outage& a, const Outage& b) { return a.down < b.down; });
      for (std::size_t i = 1; i < lane.outages.size(); ++i) {
        if (lane.outages[i].down < lane.outages[i - 1].up) {
          throw std::invalid_argument("invalid FaultSpec: scripted outages overlap");
        }
      }
      lane.exhausted = true;
    }
  }
}

void FaultTimeline::generate_one(Lane& lane) {
  if (lane.exhausted) return;
  switch (spec_.kind) {
    case FaultKind::kNone:
    case FaultKind::kScripted:
      lane.exhausted = true;
      return;
    case FaultKind::kFailStop: {
      // One permanent outage per worker, if this worker fails at all. The
      // probability draw comes first so the stream layout is stable.
      const bool fails = lane.rng.uniform01() < spec_.fail_probability;
      if (fails) lane.outages.push_back(Outage{sample_exponential(spec_.mtbf, lane.rng)});
      lane.exhausted = true;
      return;
    }
    case FaultKind::kTransient: {
      const des::SimTime down = lane.generated_to + sample_exponential(spec_.mtbf, lane.rng);
      const des::SimTime up = down + sample_exponential(spec_.mttr, lane.rng);
      lane.outages.push_back({down, up});
      lane.generated_to = up;
      return;
    }
  }
}

std::optional<Outage> FaultTimeline::next_outage(std::size_t worker, des::SimTime t) {
  if (worker >= lanes_.size()) return std::nullopt;
  Lane& lane = lanes_[worker];
  std::size_t i = 0;
  for (;;) {
    for (; i < lane.outages.size(); ++i) {
      if (lane.outages[i].up > t) return lane.outages[i];
    }
    if (lane.exhausted) return std::nullopt;
    generate_one(lane);
  }
}

bool FaultTimeline::alive_at(std::size_t worker, des::SimTime t) {
  const std::optional<Outage> outage = next_outage(worker, t);
  return !outage || t < outage->down || t >= outage->up;
}

}  // namespace rumr::faults
