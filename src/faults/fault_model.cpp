#include "faults/fault_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace rumr::faults {

FaultSpec FaultSpec::fail_stop(double mtbf, double fail_probability) {
  FaultSpec spec;
  spec.kind = FaultKind::kFailStop;
  spec.mtbf = mtbf;
  spec.fail_probability = fail_probability;
  return spec;
}

FaultSpec FaultSpec::transient(double mtbf, double mttr) {
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.mtbf = mtbf;
  spec.mttr = mttr;
  return spec;
}

FaultSpec FaultSpec::scripted(std::vector<std::pair<std::size_t, Outage>> script) {
  FaultSpec spec;
  spec.kind = FaultKind::kScripted;
  spec.script = std::move(script);
  return spec;
}

double sample_exponential(double mean, stats::Rng& rng) {
  // Inversion on 1 - U keeps the draw strictly positive for U in [0, 1).
  return -mean * std::log1p(-rng.uniform01());
}

namespace {

void validate(const FaultSpec& spec, std::size_t workers) {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("invalid FaultSpec: " + what);
  };
  switch (spec.kind) {
    case FaultKind::kNone:
      return;
    case FaultKind::kFailStop:
      if (!(spec.mtbf > 0.0) || !std::isfinite(spec.mtbf)) bad("mtbf must be positive and finite");
      if (spec.fail_probability < 0.0 || spec.fail_probability > 1.0) {
        bad("fail_probability must be in [0, 1]");
      }
      return;
    case FaultKind::kTransient:
      if (!(spec.mtbf > 0.0) || !std::isfinite(spec.mtbf)) bad("mtbf must be positive and finite");
      // mttr = 0 is legal: instant repair (zero-length outages that still
      // destroy in-progress work).
      if (!(spec.mttr >= 0.0) || !std::isfinite(spec.mttr)) {
        bad("mttr must be non-negative and finite");
      }
      return;
    case FaultKind::kScripted:
      for (const auto& [worker, outage] : spec.script) {
        if (worker >= workers) bad("scripted outage names worker " + std::to_string(worker));
        if (outage.down < 0.0 || outage.up <= outage.down) bad("scripted outage is malformed");
      }
      return;
  }
}

}  // namespace

FaultTimeline::FaultTimeline(const FaultSpec& spec, std::size_t workers, std::uint64_t seed)
    : spec_(spec) {
  validate(spec, workers);
  lanes_.resize(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    // Independent per-worker streams: outages of worker w never depend on
    // query interleaving or on other workers' histories.
    lanes_[w].rng = stats::Rng(stats::mix_seed(seed, 0xFA171D00ULL, w));
    if (!spec_.enabled()) lanes_[w].exhausted = true;
  }
  if (spec_.kind == FaultKind::kScripted) {
    for (const auto& [worker, outage] : spec_.script) lanes_[worker].outages.push_back(outage);
    for (Lane& lane : lanes_) {
      std::sort(lane.outages.begin(), lane.outages.end(),
                [](const Outage& a, const Outage& b) { return a.down < b.down; });
      // Coalesce overlapping or touching intervals: a down worker going down
      // again is still just down, and counting the overlap twice would
      // corrupt the downtime ledger the conservation audits check. A
      // permanent outage (infinite up) absorbs everything after it.
      std::vector<Outage> merged;
      for (const Outage& o : lane.outages) {
        if (!merged.empty() && o.down <= merged.back().up) {
          merged.back().up = std::max(merged.back().up, o.up);
        } else {
          merged.push_back(o);
        }
      }
      lane.outages = std::move(merged);
      lane.exhausted = true;
    }
  }
}

void FaultTimeline::generate_one(Lane& lane) {
  if (lane.exhausted) return;
  switch (spec_.kind) {
    case FaultKind::kNone:
    case FaultKind::kScripted:
      lane.exhausted = true;
      return;
    case FaultKind::kFailStop: {
      // One permanent outage per worker, if this worker fails at all. The
      // probability draw comes first so the stream layout is stable.
      const bool fails = lane.rng.uniform01() < spec_.fail_probability;
      if (fails) lane.outages.push_back(Outage{sample_exponential(spec_.mtbf, lane.rng)});
      lane.exhausted = true;
      return;
    }
    case FaultKind::kTransient: {
      const des::SimTime down = lane.generated_to + sample_exponential(spec_.mtbf, lane.rng);
      const des::SimTime up = down + sample_exponential(spec_.mttr, lane.rng);
      lane.outages.push_back({down, up});
      lane.generated_to = up;
      return;
    }
  }
}

std::optional<Outage> FaultTimeline::next_outage(std::size_t worker, des::SimTime t) {
  if (worker >= lanes_.size()) return std::nullopt;
  Lane& lane = lanes_[worker];
  std::size_t i = 0;
  for (;;) {
    for (; i < lane.outages.size(); ++i) {
      if (lane.outages[i].up > t) return lane.outages[i];
    }
    if (lane.exhausted) return std::nullopt;
    generate_one(lane);
  }
}

bool FaultTimeline::alive_at(std::size_t worker, des::SimTime t) {
  const std::optional<Outage> outage = next_outage(worker, t);
  return !outage || t < outage->down || t >= outage->up;
}

// Link faults ---------------------------------------------------------------

LinkFaultSpec LinkFaultSpec::lossy(double loss) {
  LinkFaultSpec spec;
  spec.loss = loss;
  return spec;
}

LinkFaultSpec LinkFaultSpec::spiky(double probability, double mean) {
  LinkFaultSpec spec;
  spec.spike_probability = probability;
  spec.spike_mean = mean;
  return spec;
}

LinkFaultSpec LinkFaultSpec::degraded(double mtbf, double mttr, double factor) {
  LinkFaultSpec spec;
  spec.degraded_mtbf = mtbf;
  spec.degraded_mttr = mttr;
  spec.degraded_factor = factor;
  return spec;
}

namespace {

void validate(const LinkFaultSpec& spec) {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("invalid LinkFaultSpec: " + what);
  };
  if (spec.loss < 0.0 || spec.loss > 1.0) bad("loss must be in [0, 1]");
  if (spec.spike_probability < 0.0 || spec.spike_probability > 1.0) {
    bad("spike_probability must be in [0, 1]");
  }
  if (!(spec.spike_mean >= 0.0) || !std::isfinite(spec.spike_mean)) {
    bad("spike_mean must be non-negative and finite");
  }
  if (!(spec.degraded_mtbf >= 0.0) || !std::isfinite(spec.degraded_mtbf)) {
    bad("degraded_mtbf must be non-negative and finite");
  }
  if (!(spec.degraded_mttr >= 0.0) || !std::isfinite(spec.degraded_mttr)) {
    bad("degraded_mttr must be non-negative and finite");
  }
  if (!(spec.degraded_factor >= 1.0) || !std::isfinite(spec.degraded_factor)) {
    bad("degraded_factor must be >= 1 and finite");
  }
}

/// Seed tags keeping the three fault RNG families (worker outages, link
/// messages, degradation windows) on provably disjoint streams for the same
/// run seed.
constexpr std::uint64_t kLinkLaneTag = 0x11A8F417ULL;
constexpr std::uint64_t kDegradeTag = 0xDE64ADEDULL;

}  // namespace

LinkTimeline::LinkTimeline(const LinkFaultSpec& spec, std::size_t workers, std::uint64_t seed)
    : spec_(spec) {
  validate(spec);
  lanes_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    lanes_.emplace_back(stats::mix_seed(seed, kLinkLaneTag, w));
  }
  degradation_on_ = spec_.degraded_mtbf > 0.0 && spec_.degraded_factor > 1.0;
  if (degradation_on_) {
    degradation_ = FaultTimeline(FaultSpec::transient(spec_.degraded_mtbf, spec_.degraded_mttr),
                                 workers, stats::mix_seed(seed, kDegradeTag, 1));
  }
}

LinkTimeline::MessageFate LinkTimeline::message_fate(std::size_t worker, des::SimTime t) {
  MessageFate fate;
  if (worker >= lanes_.size()) return fate;
  stats::Rng& rng = lanes_[worker];
  // Always three draws, in a fixed order, so the lane layout is identical
  // whatever this message's fate turns out to be.
  const double u_loss = rng.uniform01();
  const double u_spike = rng.uniform01();
  const double u_magnitude = rng.uniform01();
  fate.lost = u_loss < spec_.loss;
  if (u_spike < spec_.spike_probability) {
    fate.spike = -spec_.spike_mean * std::log1p(-u_magnitude);
  }
  if (degradation_on_ && !degradation_.alive_at(worker, t)) {
    fate.stretch = spec_.degraded_factor;
  }
  return fate;
}

bool LinkTimeline::degraded_at(std::size_t worker, des::SimTime t) {
  return degradation_on_ && !degradation_.alive_at(worker, t);
}

}  // namespace rumr::faults
