#pragma once

/// \file des_audit.hpp
/// Invariant auditors for the discrete-event kernel (des/simulator.hpp).
///
/// SimulatorAuditor implements des::EventObserver and watches a live
/// simulation for the three causality invariants the whole reproduction
/// rests on:
///
///   1. Simulated-time monotonicity — handlers execute in non-decreasing
///      time order.
///   2. No-schedule-in-the-past — every schedule_at() request targets a time
///      at or after the current clock.
///   3. Event conservation — at drain, scheduled == executed + cancelled and
///      nothing is still pending.
///
/// Violations are collected (not thrown at the violation site) so a sweep
/// can report every broken run; call throw_if_failed() to escalate. The
/// observer methods are public and take plain values, so negative tests can
/// drive the auditor directly with a deliberately broken event sequence.

#include <cstddef>
#include <string>
#include <vector>

#include "des/simulator.hpp"

namespace rumr::check {

/// Outcome of an audit: empty `violations` means the invariants held.
struct AuditReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }

  /// One violation per line, or "ok".
  [[nodiscard]] std::string summary() const;

  /// Throws CheckError with summary() if any violation was recorded.
  void throw_if_failed() const;
};

/// Live kernel auditor; attach to a Simulator before scheduling anything.
class SimulatorAuditor final : public des::EventObserver {
 public:
  SimulatorAuditor() = default;

  /// Registers this auditor as `sim`'s observer (replacing any other).
  void attach(des::Simulator& sim) noexcept { sim.set_observer(this); }

  // des::EventObserver -------------------------------------------------------
  void on_schedule(des::EventId id, des::SimTime requested, des::SimTime now) override;
  void on_execute(des::EventId id, des::SimTime at) override;
  void on_cancel(des::EventId id, bool was_pending) override;

  /// Drain-time conservation check: scheduled == executed + cancelled, no
  /// events pending, and this auditor's own counts agree with the kernel's.
  /// Appends any violation to the report.
  void verify_drained(const des::Simulator& sim);

  [[nodiscard]] std::size_t scheduled() const noexcept { return scheduled_; }
  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }
  [[nodiscard]] std::size_t cancelled() const noexcept { return cancelled_; }

  [[nodiscard]] const AuditReport& report() const noexcept { return report_; }

  /// Forgets all observations (not the attachment).
  void reset() noexcept;

 private:
  void record(std::string violation);

  std::size_t scheduled_ = 0;
  std::size_t executed_ = 0;
  std::size_t cancelled_ = 0;
  des::SimTime last_execute_ = 0.0;
  bool any_executed_ = false;
  AuditReport report_;
};

}  // namespace rumr::check
