#include "check/merge_audit.hpp"

#include <cmath>
#include <sstream>

namespace rumr::check {

namespace {

bool close_rel(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max(std::abs(a), std::max(std::abs(b), 1.0));
}

void violate(AuditReport& report, const std::string& label, const char* what, double merged,
             double serial) {
  std::ostringstream out;
  out.precision(17);
  out << label << ": " << what << " merged=" << merged << " serial=" << serial;
  report.violations.push_back(out.str());
}

void violate_count(AuditReport& report, const std::string& label, const char* what,
                   std::uint64_t merged, std::uint64_t serial) {
  std::ostringstream out;
  out << label << ": " << what << " merged=" << merged << " serial=" << serial;
  report.violations.push_back(out.str());
}

}  // namespace

void audit_accumulator_merge(const std::string& label, const stats::Accumulator& merged,
                             const stats::Accumulator& serial, AuditReport& report,
                             const MergeAuditOptions& options) {
  const double rel = options.rel_tolerance;
  if (merged.count() != serial.count()) {
    violate_count(report, label, "count", merged.count(), serial.count());
    return;  // Different samples: the moment comparisons below are meaningless.
  }
  if (merged.count() == 0) return;
  if (!close_rel(merged.mean(), serial.mean(), rel)) {
    violate(report, label, "mean", merged.mean(), serial.mean());
  }
  if (!close_rel(merged.variance(), serial.variance(), rel)) {
    violate(report, label, "variance", merged.variance(), serial.variance());
  }
  if (!close_rel(merged.min(), serial.min(), rel)) {
    violate(report, label, "min", merged.min(), serial.min());
  }
  if (!close_rel(merged.max(), serial.max(), rel)) {
    violate(report, label, "max", merged.max(), serial.max());
  }
}

void audit_counter_merge(const std::string& label, const obs::Counter& merged,
                         const obs::Counter& serial, AuditReport& report) {
  if (merged.value() != serial.value()) {
    violate_count(report, label, "value", merged.value(), serial.value());
  }
}

void audit_histogram_merge(const std::string& label, const obs::Histogram& merged,
                           const obs::Histogram& serial, AuditReport& report,
                           const MergeAuditOptions& options) {
  const double rel = options.rel_tolerance;
  if (merged.upper_edges() != serial.upper_edges()) {
    report.violations.push_back(label + ": bucket edges differ");
    return;
  }
  if (merged.total() != serial.total()) {
    violate_count(report, label, "total", merged.total(), serial.total());
    return;
  }
  if (merged.bucket_counts() != serial.bucket_counts()) {
    report.violations.push_back(label + ": bucket counts differ");
  }
  if (merged.total() == 0) return;
  if (!close_rel(merged.sum(), serial.sum(), rel)) {
    violate(report, label, "sum", merged.sum(), serial.sum());
  }
  if (!close_rel(merged.min(), serial.min(), rel)) {
    violate(report, label, "min", merged.min(), serial.min());
  }
  if (!close_rel(merged.max(), serial.max(), rel)) {
    violate(report, label, "max", merged.max(), serial.max());
  }
}

void audit_sketch_merge(const std::string& label, const obs::QuantileSketch& merged,
                        const obs::QuantileSketch& serial, AuditReport& report,
                        const MergeAuditOptions& options) {
  const double rel = options.rel_tolerance;
  if (!merged.same_comb(serial)) {
    report.violations.push_back(label + ": sketch combs differ");
    return;
  }
  if (merged.count() != serial.count()) {
    violate_count(report, label, "count", merged.count(), serial.count());
    return;
  }
  if (merged.bucket_counts() != serial.bucket_counts()) {
    report.violations.push_back(label + ": bucket counts differ");
  }
  if (merged.count() == 0) return;
  if (!close_rel(merged.sum(), serial.sum(), rel)) {
    violate(report, label, "sum", merged.sum(), serial.sum());
  }
  if (!close_rel(merged.min(), serial.min(), rel)) {
    violate(report, label, "min", merged.min(), serial.min());
  }
  if (!close_rel(merged.max(), serial.max(), rel)) {
    violate(report, label, "max", merged.max(), serial.max());
  }
}

}  // namespace rumr::check
