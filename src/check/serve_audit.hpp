#pragma once

/// \file serve_audit.hpp
/// Post-hoc invariant auditor for serve-session statistics.
///
/// The what-if server is itself an instance of the admission system it
/// simulates, so its ledger is held to the same standard as the engines':
///
///   - request ledger: every received request ends in exactly one bucket —
///     admitted + rejected + shed == received — and completed never exceeds
///     admitted (== admitted once the session has drained);
///   - cache ledger: hits + misses == lookups; every miss runs the solver
///     exactly once (solves == misses) and installs exactly one entry unless
///     it was a fingerprint collision or a failed solve
///     (misses == insertions + collisions + failed_solves);
///   - residency: entries + evictions == insertions, and a bounded cache
///     carries bytes only while it carries entries;
///   - query ledger: every well-formed query of an admitted request is
///     exactly one cache lookup (queries == lookups + query_errors).
///
/// Consumes only the obs-layer record, so the auditor has no dependency on
/// the serve subsystem itself (the same layering as the other auditors:
/// check sits below the facades and above the primitives).

#include "check/des_audit.hpp"
#include "obs/metrics.hpp"

namespace rumr::check {

/// Audits one serve session's statistics snapshot. `drained` asserts the
/// session is quiescent (no request in flight or queued), which upgrades
/// completed <= admitted to completed == admitted. Returns the collected
/// violations; empty means every identity held.
[[nodiscard]] AuditReport audit_serve_stats(const obs::ServeStats& stats, bool drained = true);

}  // namespace rumr::check
