#include "check/trace_audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace rumr::check {
namespace {

/// Relative comparison scaled the same way the engine's own conservation
/// check scales (sim/master_worker.cpp finalize_checks).
bool close(double a, double b, double rel_tol) {
  const double scale = std::max(1.0, std::max(std::abs(a), std::abs(b)));
  return std::abs(a - b) <= rel_tol * scale;
}

void check_sum(AuditReport& report, const char* what, double got, double want, double rel_tol) {
  if (close(got, want, rel_tol)) return;
  std::ostringstream out;
  out << "work conservation: " << what << " is " << got << ", expected " << want;
  report.violations.push_back(out.str());
}

/// Spans of one kind never overlap: each must start at or after the previous
/// end. Spans arrive in recording order, which the engine emits in start-time
/// order per resource.
void check_serial(AuditReport& report, const std::vector<sim::TraceSpan>& spans, const char* what,
                  double tol) {
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].start >= spans[i - 1].end - tol) continue;
    std::ostringstream out;
    out << what << " overlap: span " << i << " starts at t=" << spans[i].start
        << " before the previous span ends at t=" << spans[i - 1].end;
    report.violations.push_back(out.str());
  }
}

void audit_trace(AuditReport& report, const sim::SimResult& result,
                 const platform::StarPlatform& platform, const TraceAuditOptions& options) {
  const double tol = options.time_tolerance;
  const auto& spans = result.trace.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const sim::TraceSpan& s = spans[i];
    if (s.start < 0.0 || s.end < s.start || !std::isfinite(s.end)) {
      std::ostringstream out;
      out << "malformed span " << i << ": [" << s.start << ", " << s.end << ")";
      report.violations.push_back(out.str());
    }
    if (s.worker >= platform.size()) {
      std::ostringstream out;
      out << "span " << i << " names worker " << s.worker << " of " << platform.size();
      report.violations.push_back(out.str());
    }
  }

  // The makespan bounds every span that *produces* results (compute, aborted,
  // output, down). Network spans (uplink occupancy, last-byte tails) may
  // legitimately outlive it under link faults: a retransmission or a spiked
  // delivery can still be propagating when the re-dispatched copy of its
  // payload completes elsewhere — the bytes arrive, are recognized as
  // worthless, and are dropped.
  for (const sim::TraceSpan& s : spans) {
    if (s.kind == sim::SpanKind::kUplink || s.kind == sim::SpanKind::kTail) continue;
    if (s.end <= result.makespan + tol) continue;
    std::ostringstream out;
    out << "span of kind " << static_cast<int>(s.kind) << " on worker " << s.worker
        << " extends to t=" << s.end << " past the makespan t=" << result.makespan;
    report.violations.push_back(out.str());
    break;  // One report suffices; later spans usually share the cause.
  }

  if (options.uplink_channels == 1) {
    check_serial(report, result.trace.filter(sim::SpanKind::kUplink), "uplink", tol);
  }
  check_serial(report, result.trace.filter(sim::SpanKind::kOutput), "downlink", tol);

  // Per-worker: one CPU, so compute spans serialize; their durations, chunk
  // sums, and count must reproduce the aggregate outcome exactly. Aborted
  // spans (failure-truncated computations) are excluded from every sum: the
  // work they carried was reclaimed and re-dispatched, not computed here.
  for (std::size_t w = 0; w < result.workers.size(); ++w) {
    std::vector<sim::TraceSpan> compute;
    std::vector<sim::TraceSpan> down;
    for (const sim::TraceSpan& s : result.trace.for_worker(w)) {
      if (s.kind == sim::SpanKind::kCompute) compute.push_back(s);
      if (s.kind == sim::SpanKind::kDown) down.push_back(s);
    }
    std::ostringstream label;
    label << "worker " << w << " compute";
    check_serial(report, compute, label.str().c_str(), tol);

    // Fault model: outage intervals are disjoint, and no completed
    // computation may overlap one — a dead worker produces nothing.
    {
      std::ostringstream down_label;
      down_label << "worker " << w << " down";
      check_serial(report, down, down_label.str().c_str(), tol);
    }
    for (const sim::TraceSpan& c : compute) {
      for (const sim::TraceSpan& d : down) {
        if (c.end <= d.start + tol || c.start >= d.end - tol) continue;
        std::ostringstream msg;
        msg << "worker " << w << " completed a computation [" << c.start << ", " << c.end
            << ") overlapping its outage [" << d.start << ", " << d.end << ")";
        report.violations.push_back(msg.str());
      }
    }

    double busy = 0.0;
    double work = 0.0;
    for (const sim::TraceSpan& s : compute) {
      busy += s.end - s.start;
      work += s.chunk;
    }
    const sim::WorkerOutcome& out = result.workers[w];
    check_sum(report, (label.str() + " span busy time").c_str(), busy, out.busy_time,
              options.work_tolerance);
    check_sum(report, (label.str() + " span work").c_str(), work, out.work,
              options.work_tolerance);
    if (compute.size() != out.chunks) {
      std::ostringstream msg;
      msg << "worker " << w << " has " << compute.size() << " compute spans but reported "
          << out.chunks << " chunks";
      report.violations.push_back(msg.str());
    }
  }
}

/// Exact integer cross-check between two counters that must agree.
void check_count(AuditReport& report, const char* what, std::size_t got, std::size_t want) {
  if (got == want) return;
  std::ostringstream out;
  out << "metrics identity: " << what << " is " << got << ", expected " << want;
  report.violations.push_back(out.str());
}

void check_time_identity(AuditReport& report, const char* what, double got, double want,
                         double rel_tol) {
  if (close(got, want, rel_tol)) return;
  std::ostringstream out;
  out << "metrics identity: " << what << " is " << got << ", expected " << want;
  report.violations.push_back(out.str());
}

/// Audits the observability record against the identities the probes must
/// satisfy by construction. A violation here means the engine's bookkeeping
/// diverged from its own time accounting — a bug, not noise.
void audit_metrics(AuditReport& report, const sim::SimResult& result,
                   const TraceAuditOptions& options) {
  const obs::RunMetrics& m = result.metrics;
  // Identity tolerance: these are sums of exact segment lengths, so only
  // floating-point accumulation error is admissible — far tighter than the
  // work-conservation tolerance.
  const double tol = std::max(options.time_tolerance, 1e-12);

  check_time_identity(report, "metrics.makespan vs result.makespan", m.makespan, result.makespan,
                      tol);

  // The DES kernel conserves events: every scheduled event was either
  // executed or cancelled by the time the queue drained.
  check_count(report, "des events (executed + cancelled) vs scheduled",
              m.des.events_executed + m.des.events_cancelled, m.des.events_scheduled);
  check_count(report, "des events_executed vs result.events", m.des.events_executed,
              result.events);

  // Uplink occupancy tiles the run: busy (>= 1 channel held) + idle == makespan.
  check_time_identity(report, "uplink busy + idle vs makespan",
                      m.engine.uplink_busy_time + m.engine.uplink_idle_time, result.makespan,
                      tol);
  // With one channel, occupancy decomposes exactly into serialized transfer
  // time plus head-of-line blocking (a held-but-not-transferring channel).
  if (options.uplink_channels == 1) {
    check_time_identity(report, "uplink busy vs transfer + HOL blocking",
                        m.engine.uplink_busy_time,
                        m.engine.uplink_transfer_time + m.engine.hol_blocking_time, tol);
  }

  // Engine counters vs the legacy result fields (same events, two ledgers).
  check_count(report, "engine.dispatches vs chunks_dispatched", m.engine.dispatches,
              result.chunks_dispatched);
  check_time_identity(report, "engine.work_dispatched vs result.work_dispatched",
                      m.engine.work_dispatched, result.work_dispatched, tol);
  check_time_identity(report, "engine.uplink_transfer_time vs result.uplink_busy_time",
                      m.engine.uplink_transfer_time, result.uplink_busy_time, tol);
  check_time_identity(report, "engine.downlink_busy_time vs result.downlink_busy_time",
                      m.engine.downlink_busy_time, result.downlink_busy_time, tol);
  check_count(report, "chunk_sizes histogram total vs dispatches",
              static_cast<std::size_t>(m.engine.chunk_sizes.total()), m.engine.dispatches);
  check_count(report, "compute_durations histogram total vs completions",
              static_cast<std::size_t>(m.engine.compute_durations.total()),
              m.engine.completions);

  // Per-worker span accounting: {compute, aborted, idle, down} partitions
  // [0, makespan] — the probes' state machine cannot lose or invent time.
  std::size_t span_completions = 0;
  std::size_t span_dispatches = 0;
  for (std::size_t w = 0; w < m.engine.workers.size(); ++w) {
    const obs::WorkerSpans& ws = m.engine.workers[w];
    std::ostringstream label;
    label << "worker " << w << " compute + aborted + idle + down vs makespan";
    check_time_identity(report, label.str().c_str(),
                        ws.compute_time + ws.aborted_time + ws.idle_time + ws.down_time,
                        result.makespan, tol);
    std::ostringstream busy_label;
    busy_label << "worker " << w << " span compute_time vs outcome busy_time";
    check_time_identity(report, busy_label.str().c_str(), ws.compute_time,
                        result.workers[w].busy_time, tol);
    check_count(report,
                ("worker " + std::to_string(w) + " span completions vs outcome chunks").c_str(),
                ws.completions, result.workers[w].chunks);
    span_completions += ws.completions;
    span_dispatches += ws.dispatches;
  }
  check_count(report, "sum of worker dispatches vs engine.dispatches", span_dispatches,
              m.engine.dispatches);
  check_count(report, "sum of worker completions vs engine.completions", span_completions,
              m.engine.completions);

  // Fault ledger: the metrics record and the legacy FaultSummary are two
  // views of the same counters.
  const sim::FaultSummary& faults = result.faults;
  check_count(report, "faults.failures", m.faults.failures, faults.failures);
  check_count(report, "faults.recoveries", m.faults.recoveries, faults.recoveries);
  check_count(report, "faults.fencings vs suspicions", m.faults.fencings, faults.suspicions);
  check_count(report, "faults.rejoins", m.faults.rejoins, faults.rejoins);
  check_count(report, "faults.chunks_lost", m.faults.chunks_lost, faults.chunks_lost);
  check_count(report, "faults.chunks_redispatched", m.faults.chunks_redispatched,
              faults.chunks_redispatched);
  check_count(report, "faults.messages_lost", m.faults.messages_lost, faults.messages_lost);
  check_count(report, "faults.latency_spikes", m.faults.latency_spikes, faults.latency_spikes);
  check_count(report, "faults.degraded_sends", m.faults.degraded_sends, faults.degraded_sends);
  check_count(report, "faults.retransmits", m.faults.retransmits, faults.retransmits);
  check_time_identity(report, "faults.work_retransmitted", m.faults.work_retransmitted,
                      faults.work_retransmitted, tol);
  check_count(report, "faults.duplicates_suppressed", m.faults.duplicates_suppressed,
              faults.duplicates_suppressed);
  check_count(report, "faults.checkpoints_banked", m.faults.checkpoints_banked,
              faults.checkpoints_banked);
  check_time_identity(report, "faults.work_banked", m.faults.work_banked, faults.work_banked,
                      tol);
  // A duplicate delivery requires at least one extra send of the same lease,
  // so suppressions can never outnumber protocol re-sends.
  if (m.faults.duplicates_suppressed > m.faults.retransmits) {
    std::ostringstream out;
    out << "metrics identity: " << m.faults.duplicates_suppressed
        << " duplicates suppressed exceed " << m.faults.retransmits << " retransmits";
    report.violations.push_back(out.str());
  }
  if (m.faults.false_suspicions > m.faults.fencings) {
    std::ostringstream out;
    out << "metrics identity: " << m.faults.false_suspicions << " false suspicions exceed "
        << m.faults.fencings << " fencings";
    report.violations.push_back(out.str());
  }
}

}  // namespace

AuditReport audit_sim_result(const sim::SimResult& result, const platform::StarPlatform& platform,
                             double w_total, const TraceAuditOptions& options) {
  AuditReport report;

  if (result.workers.size() != platform.size()) {
    std::ostringstream out;
    out << "result reports " << result.workers.size() << " workers on a platform of "
        << platform.size();
    report.violations.push_back(out.str());
    return report;
  }

  // Aggregate work conservation: everything dispatched, everything computed.
  // Re-dispatched work appears in work_dispatched once per send; conservation
  // holds for the net amount (gross minus re-sends).
  const sim::FaultSummary& faults = result.faults;
  check_sum(report, "bytes dispatched (net of re-dispatch)",
            result.work_dispatched - faults.work_redispatched, w_total, options.work_tolerance);
  double computed = 0.0;
  std::size_t chunks = 0;
  for (const sim::WorkerOutcome& w : result.workers) {
    computed += w.work;
    chunks += w.chunks;
  }
  // Banked work (partial-work checkpointing) is final output that no worker's
  // outcome ledger carries: the chunk's owner was fenced mid-computation and
  // only the remainder was re-dispatched. computed + banked covers the total.
  check_sum(report, "bytes computed + banked", computed + faults.work_banked, w_total,
            options.work_tolerance);
  if (chunks + faults.chunks_lost != result.chunks_dispatched) {
    std::ostringstream out;
    out << "chunk conservation: " << result.chunks_dispatched << " dispatched but " << chunks
        << " computed and " << faults.chunks_lost << " lost";
    report.violations.push_back(out.str());
  }

  // Exactly-once re-dispatch: every chunk reclaimed from a fenced worker was
  // sent again exactly once (a completed run never drops or duplicates work).
  if (faults.chunks_lost != faults.chunks_redispatched) {
    std::ostringstream out;
    out << "re-dispatch: " << faults.chunks_lost << " chunks lost but "
        << faults.chunks_redispatched << " re-dispatched";
    report.violations.push_back(out.str());
  }
  check_sum(report, "bytes re-dispatched", faults.work_redispatched, faults.work_lost,
            options.work_tolerance);
  // Banking conservation, at the engine-identity tolerance (1e-9, far tighter
  // than the policy-facing work tolerance): every net-dispatched unit was
  // either computed to completion or banked at an abort. The two sides
  // telescope exactly — any drift here is engine bookkeeping, not noise.
  check_sum(report, "bytes computed + banked vs net dispatched", computed + faults.work_banked,
            result.work_dispatched - faults.work_redispatched, 1e-9);

  // Per-worker timing sanity against the makespan.
  for (std::size_t i = 0; i < result.workers.size(); ++i) {
    const sim::WorkerOutcome& w = result.workers[i];
    const auto fail = [&](const char* what, double got, double bound) {
      std::ostringstream out;
      out << "worker " << i << ' ' << what << " (" << got << ") exceeds " << bound;
      report.violations.push_back(out.str());
    };
    if (w.busy_time > result.makespan + options.time_tolerance) {
      fail("busy time", w.busy_time, result.makespan);
    }
    if (w.last_end > result.makespan + options.time_tolerance) {
      fail("last completion", w.last_end, result.makespan);
    }
    if (w.chunks > 0 && w.first_start > w.last_end + options.time_tolerance) {
      fail("first start", w.first_start, w.last_end);
    }
    if (w.chunks > 0 && w.busy_time > (w.last_end - w.first_start) + options.time_tolerance) {
      fail("busy time", w.busy_time, w.last_end - w.first_start);
    }
  }

  // Observability identities: audited only when the result carries a real
  // metrics record (a hand-assembled SimResult, as tests build, has an empty
  // one — there is nothing to cross-check).
  if (result.metrics.engine.workers.size() == result.workers.size() &&
      !result.metrics.engine.workers.empty()) {
    audit_metrics(report, result, options);
  }

  if (!result.trace.empty()) audit_trace(report, result, platform, options);
  return report;
}

}  // namespace rumr::check
