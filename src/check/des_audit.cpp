#include "check/des_audit.hpp"

#include <sstream>
#include <utility>

#include "check/check.hpp"

namespace rumr::check {

std::string AuditReport::summary() const {
  if (violations.empty()) return "ok";
  std::ostringstream out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i != 0) out << '\n';
    out << violations[i];
  }
  return out.str();
}

void AuditReport::throw_if_failed() const {
  if (!violations.empty()) throw CheckError(summary());
}

void SimulatorAuditor::on_schedule(des::EventId id, des::SimTime requested, des::SimTime now) {
  ++scheduled_;
  if (requested < now) {
    std::ostringstream out;
    out << "schedule-in-the-past: event " << id << " requested at t=" << requested
        << " while the clock is at t=" << now;
    record(out.str());
  }
}

void SimulatorAuditor::on_execute(des::EventId id, des::SimTime at) {
  ++executed_;
  if (any_executed_ && at < last_execute_) {
    std::ostringstream out;
    out << "time went backwards: event " << id << " executed at t=" << at
        << " after an event at t=" << last_execute_;
    record(out.str());
  }
  last_execute_ = at;
  any_executed_ = true;
}

void SimulatorAuditor::on_cancel(des::EventId id, bool was_pending) {
  // Cancelling a fired or unknown id is a documented no-op (was_pending
  // false); only effective cancels enter the conservation ledger.
  (void)id;
  if (was_pending) ++cancelled_;
}

void SimulatorAuditor::verify_drained(const des::Simulator& sim) {
  const auto mismatch = [this](const char* what, std::size_t got, std::size_t want) {
    std::ostringstream out;
    out << "event conservation: " << what << " is " << got << ", expected " << want;
    record(out.str());
  };
  if (sim.events_pending() != 0) mismatch("events_pending at drain", sim.events_pending(), 0);
  if (scheduled_ != executed_ + cancelled_) {
    std::ostringstream out;
    out << "event conservation: scheduled (" << scheduled_ << ") != executed (" << executed_
        << ") + cancelled (" << cancelled_ << ")";
    record(out.str());
  }
  if (sim.events_scheduled() != scheduled_)
    mismatch("kernel events_scheduled", sim.events_scheduled(), scheduled_);
  if (sim.events_processed() != executed_)
    mismatch("kernel events_processed", sim.events_processed(), executed_);
  if (sim.events_cancelled() != cancelled_)
    mismatch("kernel events_cancelled", sim.events_cancelled(), cancelled_);
}

void SimulatorAuditor::reset() noexcept {
  scheduled_ = 0;
  executed_ = 0;
  cancelled_ = 0;
  last_execute_ = 0.0;
  any_executed_ = false;
  report_.violations.clear();
}

void SimulatorAuditor::record(std::string violation) {
  report_.violations.push_back(std::move(violation));
}

}  // namespace rumr::check
