#include "check/race_audit.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "race/bounds.hpp"

namespace rumr::check {

namespace {

bool close(double a, double b, double rel_tol) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= rel_tol * scale;
}

std::string arm_label(const race::RaceResult& result, std::size_t index) {
  if (index < result.arms.size()) {
    return "arm " + std::to_string(index) + " (" + result.arms[index].name + ")";
  }
  return "arm " + std::to_string(index);
}

}  // namespace

AuditReport audit_race_result(const race::RaceResult& result) {
  constexpr double kRelTol = 1e-9;
  AuditReport report;
  const auto violation = [&report](const std::string& message) {
    report.violations.push_back("race: " + message);
  };

  if (result.arms.empty()) {
    violation("result has no arms");
    return report;
  }
  const std::size_t num_arms = result.arms.size();

  // --- sample-ledger conservation -------------------------------------------
  std::size_t ledger = 0;
  std::size_t survivors = 0;
  for (std::size_t a = 0; a < num_arms; ++a) {
    const race::ArmRecord& arm = result.arms[a];
    if (arm.samples != arm.reward.count()) {
      violation(arm_label(result, a) + ": samples counter (" + std::to_string(arm.samples) +
                ") disagrees with its accumulator count (" +
                std::to_string(arm.reward.count()) + ")");
    }
    if (arm.samples > result.max_samples) {
      violation(arm_label(result, a) + ": samples (" + std::to_string(arm.samples) +
                ") exceed the per-arm budget (" + std::to_string(result.max_samples) + ")");
    }
    if (!arm.eliminated) ++survivors;
    if (arm.eliminated != (arm.eliminated_round > 0)) {
      violation(arm_label(result, a) + ": eliminated flag disagrees with eliminated_round");
    }
    if (arm.eliminated_round > result.rounds) {
      violation(arm_label(result, a) + ": eliminated in round " +
                std::to_string(arm.eliminated_round) + " but the race only ran " +
                std::to_string(result.rounds) + " rounds");
    }
    ledger += arm.samples;
  }
  if (ledger != result.total_samples) {
    violation("sample ledger: arm samples sum to " + std::to_string(ledger) +
              " but total_samples is " + std::to_string(result.total_samples));
  }

  // --- termination shape ----------------------------------------------------
  if (survivors == 0) {
    violation("every arm is eliminated — a race must leave a survivor");
  } else if (result.budget_exhausted && survivors < 2) {
    violation("budget_exhausted is set but only " + std::to_string(survivors) +
              " arm survives — exhaustion means the race could not separate survivors");
  } else if (!result.budget_exhausted && survivors != 1) {
    violation(std::to_string(survivors) +
              " arms survive without budget_exhausted — an unflagged race must certify a "
              "single best arm");
  }

  // Survivors sample in lockstep, so they all share one final count.
  std::size_t survivor_samples = 0;
  for (const race::ArmRecord& arm : result.arms) {
    if (arm.eliminated) continue;
    if (survivor_samples == 0) {
      survivor_samples = arm.samples;
    } else if (arm.samples != survivor_samples) {
      violation("survivors disagree on sample counts (" + std::to_string(survivor_samples) +
                " vs " + std::to_string(arm.samples) + ") — active arms sample in lockstep");
      break;
    }
  }

  // --- winner soundness -----------------------------------------------------
  if (result.winner >= num_arms) {
    violation("winner index " + std::to_string(result.winner) + " is out of range");
  } else if (result.arms[result.winner].eliminated) {
    violation("winner " + arm_label(result, result.winner) + " was eliminated");
  } else {
    const double winner_mean = result.arms[result.winner].reward.mean();
    for (std::size_t a = 0; a < num_arms; ++a) {
      const race::ArmRecord& arm = result.arms[a];
      if (arm.eliminated || a == result.winner) continue;
      if (arm.reward.mean() < winner_mean) {
        violation("winner " + arm_label(result, result.winner) + " (mean " +
                  std::to_string(winner_mean) + ") is not the lowest-mean survivor — " +
                  arm_label(result, a) + " has mean " + std::to_string(arm.reward.mean()));
      }
    }
  }

  // --- per-elimination bound replay -----------------------------------------
  double spent_delta = 0.0;
  std::size_t previous_round = 0;
  for (std::size_t i = 0; i < result.eliminations.size(); ++i) {
    const race::EliminationRecord& record = result.eliminations[i];
    const std::string label = "elimination " + std::to_string(i) + " (" +
                              arm_label(result, record.arm) + " in round " +
                              std::to_string(record.round) + ")";
    if (record.arm >= num_arms || record.best >= num_arms) {
      violation(label + ": arm index out of range");
      continue;
    }
    if (record.round < previous_round) {
      violation(label + ": rounds are not monotone in the elimination ledger");
    }
    previous_round = record.round;

    const race::ArmRecord& arm = result.arms[record.arm];
    if (!arm.eliminated || arm.eliminated_round != record.round) {
      violation(label + ": arm record disagrees (eliminated_round " +
                std::to_string(arm.eliminated_round) + ")");
    }
    if (arm.samples != record.samples) {
      violation(label + ": arm kept sampling after elimination (final " +
                std::to_string(arm.samples) + ", at decision " +
                std::to_string(record.samples) + ")");
    }
    const race::ArmRecord& best = result.arms[record.best];
    if (best.eliminated && best.eliminated_round < record.round) {
      violation(label + ": incumbent " + arm_label(result, record.best) +
                " was already eliminated in round " + std::to_string(best.eliminated_round));
    }
    if (record.samples < 2) {
      violation(label + ": decided on fewer than two samples — the variance is undefined");
    }

    const double want_delta_eff =
        race::round_delta(result.delta, num_arms, record.round);
    if (!close(record.delta_eff, want_delta_eff, 1e-12)) {
      violation(label + ": delta_eff " + std::to_string(record.delta_eff) +
                " does not match round_delta's " + std::to_string(want_delta_eff));
    }
    spent_delta += record.delta_eff;

    const double arm_radius = race::confidence_radius(record.arm_variance, record.range,
                                                      record.samples, record.delta_eff);
    const double best_radius = race::confidence_radius(record.best_variance, record.range,
                                                       record.samples, record.delta_eff);
    if (!close(record.arm_lcb, record.arm_mean - arm_radius, kRelTol)) {
      violation(label + ": recorded arm_lcb does not recompute from the decision tuple");
    }
    if (!close(record.best_ucb, record.best_mean + best_radius, kRelTol)) {
      violation(label + ": recorded best_ucb does not recompute from the decision tuple");
    }
    if (!(record.arm_lcb > record.best_ucb)) {
      violation(label + ": confidence bound did NOT exclude the incumbent (arm_lcb " +
                std::to_string(record.arm_lcb) + " <= best_ucb " +
                std::to_string(record.best_ucb) + ")");
    }
  }
  if (spent_delta > result.delta * (1.0 + 1e-9)) {
    violation("spent per-comparison budgets sum to " + std::to_string(spent_delta) +
              " — more than the race's delta " + std::to_string(result.delta));
  }

  return report;
}

}  // namespace rumr::check
