#pragma once

/// \file merge_audit.hpp
/// Merge-consistency audit primitives for sharded aggregation.
///
/// The sharded sweep engine folds observations into per-shard accumulators
/// and reduces them with merge(); its headline guarantee is that the sharded
/// aggregate equals the serial (single-pass) aggregate. These helpers verify
/// that claim accumulator by accumulator: integer state (counts, totals,
/// bucket occupancies) must match *exactly*, floating state (sums, Welford
/// moments, min/max) to a relative tolerance of 1e-9 — merge re-associates
/// FP additions, so the last few ulps may legitimately move even though a
/// fixed merge order keeps any one sharded run byte-stable.
///
/// The sweep layer (which check cannot depend on — sweep links check, not
/// the reverse) assembles these primitives into its per-cell audit; tests
/// and tools/sweep_demo call them directly.

#include <string>

#include "check/des_audit.hpp"
#include "obs/accumulators.hpp"
#include "obs/metrics.hpp"
#include "stats/summary.hpp"

namespace rumr::check {

/// Tolerance for the floating-point halves of the comparisons below.
struct MergeAuditOptions {
  double rel_tolerance = 1e-9;
};

/// Appends a violation to `report` for every way `merged` disagrees with
/// `serial`. `label` prefixes each message ("cell[3].makespan: ..."). Counts
/// compare exactly; means/sums/extrema within options.rel_tolerance.
void audit_accumulator_merge(const std::string& label, const stats::Accumulator& merged,
                             const stats::Accumulator& serial, AuditReport& report,
                             const MergeAuditOptions& options = {});

/// Same for counters: a pure integer sum, so the comparison is exact.
void audit_counter_merge(const std::string& label, const obs::Counter& merged,
                         const obs::Counter& serial, AuditReport& report);

/// Same for histograms: identical edges, exact bucket counts and totals,
/// toleranced sum/min/max.
void audit_histogram_merge(const std::string& label, const obs::Histogram& merged,
                           const obs::Histogram& serial, AuditReport& report,
                           const MergeAuditOptions& options = {});

/// Same for quantile sketches: identical comb, exact bucket counts and
/// totals, toleranced sum/min/max.
void audit_sketch_merge(const std::string& label, const obs::QuantileSketch& merged,
                        const obs::QuantileSketch& serial, AuditReport& report,
                        const MergeAuditOptions& options = {});

}  // namespace rumr::check
