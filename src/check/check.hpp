#pragma once

/// \file check.hpp
/// Compile-time-toggleable invariant checking for the simulator stack.
///
/// Every Fig. 4-7 number in the reproduction is a simulation output, so a
/// silent causality bug corrupts results invisibly. These macros make the
/// kernel's invariants machine-checked instead of trusted:
///
///   RUMR_CHECK(cond, msg)            cheap tier — O(1) checks on hot paths
///   RUMR_CHECK_EXPENSIVE(cond, msg)  expensive tier — O(n) scans, audits
///
/// The tier compiled in is selected by RUMR_CHECK_LEVEL (a CMake cache
/// variable of the same name):
///
///   0  all checks compiled out (maximum-throughput production builds)
///   1  cheap tier only (the default, including Release)
///   2  cheap + expensive tiers (sanitizer / CI builds)
///
/// Failures throw check::CheckError rather than aborting, so tests can
/// assert that an auditor fires and sweep drivers can report which run
/// tripped which invariant.

#include <sstream>
#include <stdexcept>
#include <string>

#ifndef RUMR_CHECK_LEVEL
#define RUMR_CHECK_LEVEL 1
#endif

namespace rumr::check {

/// Thrown when a checked invariant does not hold.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Tier compiled into this build (see file comment).
[[nodiscard]] constexpr int level() noexcept { return RUMR_CHECK_LEVEL; }

/// Formats and throws a CheckError. Out-of-line of the macro so the cold
/// path costs one call in the generated code.
[[noreturn]] inline void fail(const char* file, int line, const char* condition,
                              const std::string& message) {
  std::ostringstream out;
  out << "invariant violated: " << message << " [" << condition << "] at " << file << ':' << line;
  throw CheckError(out.str());
}

}  // namespace rumr::check

#if RUMR_CHECK_LEVEL >= 1
#define RUMR_CHECK(cond, msg)                                      \
  do {                                                             \
    if (!(cond)) ::rumr::check::fail(__FILE__, __LINE__, #cond, (msg)); \
  } while (false)
#else
#define RUMR_CHECK(cond, msg) \
  do {                        \
  } while (false)
#endif

#if RUMR_CHECK_LEVEL >= 2
#define RUMR_CHECK_EXPENSIVE(cond, msg)                            \
  do {                                                             \
    if (!(cond)) ::rumr::check::fail(__FILE__, __LINE__, #cond, (msg)); \
  } while (false)
#else
#define RUMR_CHECK_EXPENSIVE(cond, msg) \
  do {                                  \
  } while (false)
#endif
