#pragma once

/// \file trace_audit.hpp
/// Post-hoc work-conservation auditor for master-worker simulation results.
///
/// Consumes a sim::SimResult (and its recorded Trace, when present) and
/// verifies the physical invariants of the star-platform model:
///
///   - work conservation: dispatched == computed == the workload total;
///   - per-worker busy time fits inside the makespan;
///   - compute spans on one worker never overlap (one CPU per worker);
///   - uplink spans never overlap when the master has a single channel
///     (the paper's serial-uplink model);
///   - trace spans are well-formed and consistent with the aggregate
///     counters (busy times, per-worker work, chunk counts);
///   - under fault injection: no completed computation overlaps the worker's
///     outage intervals (a dead worker produces nothing), and every chunk
///     reclaimed from a fenced worker was re-dispatched exactly once;
///   - under partial-work checkpointing: banked + computed work reproduces
///     the workload total (banked fractions are final, never recomputed);
///   - observability identities: uplink busy + idle time tiles the makespan,
///     each worker's {compute, aborted, idle, down} spans partition
///     [0, makespan], the DES kernel conserved events (scheduled == executed
///     + cancelled), and the metrics record agrees with the legacy result
///     counters everywhere they overlap.
///
/// The span-level checks only run when the result carries a trace
/// (SimOptions::record_trace); the metrics checks only when it carries a
/// populated RunMetrics (a hand-assembled SimResult does not); the aggregate
/// checks always run.

#include <cstddef>

#include "check/des_audit.hpp"
#include "platform/platform.hpp"
#include "sim/master_worker.hpp"

namespace rumr::check {

/// Tolerances for the floating-point comparisons.
struct TraceAuditOptions {
  /// Relative tolerance for work-conservation sums.
  double work_tolerance = 1e-6;
  /// Absolute slack for time comparisons (span overlap, busy vs makespan).
  double time_tolerance = 1e-9;
  /// Uplink channel count the run was configured with; overlap of uplink
  /// spans is only a violation when this is 1.
  std::size_t uplink_channels = 1;
};

/// Audits one finished run against the workload total it was meant to
/// process. Returns the collected violations; empty means the run conserved
/// work and respected the platform's resource constraints.
[[nodiscard]] AuditReport audit_sim_result(const sim::SimResult& result,
                                           const platform::StarPlatform& platform, double w_total,
                                           const TraceAuditOptions& options = {});

}  // namespace rumr::check
