#pragma once

/// \file race_audit.hpp
/// Invariant auditor for best-arm race results (race/result.hpp).
///
/// A race's verdict is only as trustworthy as the eliminations behind it, so
/// the result carries a full decision ledger and this auditor replays it:
///
///   - sample-ledger conservation: every arm's accumulator count equals its
///     sample counter, the counters sum to the race total, and nothing
///     exceeded the per-arm budget;
///   - termination shape: exactly one surviving arm, or the budget-exhausted
///     flag is set (and then more than one survivor remains);
///   - winner soundness: the winner is an un-eliminated arm with the lowest
///     survivor mean;
///   - per-elimination bound replay: the recorded per-round error budget
///     matches round_delta(delta, K, round), both confidence radii recompute
///     from the recorded (variance, range, samples) tuple, and the
///     eliminated arm's lower bound really exceeded the incumbent's upper
///     bound at decision time;
///   - sampling discipline: eliminated arms stopped at their elimination
///     (final samples == samples at the decision), decisions reference an
///     incumbent still active at that round, rounds are monotone, and the
///     spent per-comparison budgets sum to at most delta.
///
/// Lives in check (not race) so the race engine can self-audit through the
/// same layering every other subsystem uses; depends only on the header-only
/// race/result.hpp + race/bounds.hpp, keeping the check <- race link acyclic.

#include "check/des_audit.hpp"
#include "race/result.hpp"

namespace rumr::check {

/// Audits `result` as described above. Counts compare exactly, recomputed
/// bounds to 1e-9 relative tolerance (the engine records the exact doubles
/// it decided with, so drift beyond rounding means the ledger and the bound
/// math disagree).
[[nodiscard]] AuditReport audit_race_result(const race::RaceResult& result);

}  // namespace rumr::check
