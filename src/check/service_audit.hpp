#pragma once

/// \file service_audit.hpp
/// Post-hoc invariant auditor for multi-job open-system results.
///
/// Consumes a jobs::ServiceResult and verifies the queueing-theoretic and
/// physical identities the engine promises:
///
///   - counter ledger: every arrived job is exactly one of rejected, shed, or
///     completed (the run drains), and the aggregate counters match the
///     per-job flags and the obs::JobsStats record;
///   - per-job timeline: arrival <= start <= departure, and
///     queue_wait + service_time == response for completed jobs;
///   - per-job work conservation: segment work sums to work_done, and
///     work_done == size for completed jobs;
///   - segment sanity: every segment lies in [start, departure] x [0, horizon]
///     with a non-empty worker share inside the platform;
///   - share disjointness: no two service segments of different jobs ever
///     overlap in both time and workers (partitions really are partitions);
///   - Little's law, exactly: the engine's incrementally-integrated
///     area_jobs_in_system equals the sum of (departure - arrival) over
///     admitted jobs — N(t) counted by integration must agree with the same
///     quantity counted per job;
///   - derived aggregates: total_work, share_time, utilization,
///     share_utilization, and offered_load recompute from the per-job data;
///   - histogram ledger: each service-metric histogram holds exactly one
///     sample per relevant job.
///
/// Streaming runs (JobsOptions::retain_jobs == false) keep no per-job
/// records; the per-job cross-checks are skipped for them, while every
/// aggregate identity — ledger arithmetic, Little's law against the carried
/// residence_time, load recomputation against the carried arrived_work, and
/// the histogram totals — is still enforced.

#include "check/des_audit.hpp"
#include "jobs/job_manager.hpp"
#include "platform/platform.hpp"

namespace rumr::check {

/// Tolerances for the floating-point comparisons.
struct ServiceAuditOptions {
  /// Relative tolerance for work and long-sum identities (Little's law).
  double work_tolerance = 1e-6;
  /// Absolute slack for pointwise time comparisons.
  double time_tolerance = 1e-9;
};

/// Audits one finished open-system run. Returns the collected violations;
/// empty means every identity held.
[[nodiscard]] AuditReport audit_service_result(const jobs::ServiceResult& result,
                                               const platform::StarPlatform& platform,
                                               const jobs::JobsOptions& options,
                                               const ServiceAuditOptions& audit = {});

}  // namespace rumr::check
