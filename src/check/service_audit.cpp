#include "check/service_audit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace rumr::check {

namespace {

bool close_rel(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max({std::abs(a), std::abs(b), 1.0});
}

/// One segment flattened for the disjointness scan.
struct FlatSegment {
  std::size_t job;
  const jobs::ServiceSegment* seg;
};

}  // namespace

AuditReport audit_service_result(const jobs::ServiceResult& result,
                                 const platform::StarPlatform& platform,
                                 const jobs::JobsOptions& options,
                                 const ServiceAuditOptions& audit) {
  AuditReport report;
  const auto violate = [&report](const auto&... parts) {
    std::ostringstream out;
    (out << ... << parts);
    report.violations.push_back(out.str());
  };
  const double rel = audit.work_tolerance;
  const double slack = audit.time_tolerance;

  // --- counter ledger ------------------------------------------------------
  // Streaming runs (retain_jobs == false) fold each job into the aggregates
  // at departure and keep no per-job records: the per-job cross-checks below
  // are skipped, but every aggregate identity (ledger arithmetic, Little's
  // law via the carried residence_time, load recomputation via the carried
  // arrived_work, histogram totals) is still enforced.
  if (result.jobs_retained) {
    if (result.arrived != result.jobs.size()) {
      violate("arrived counter ", result.arrived, " != recorded jobs ", result.jobs.size());
    }
  } else if (!result.jobs.empty()) {
    violate("streaming run (jobs_retained == false) carries ", result.jobs.size(),
            " per-job records");
  }
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t completed = 0;
  for (const jobs::JobOutcome& job : result.jobs) {
    const int states = (job.rejected ? 1 : 0) + (job.shed ? 1 : 0) + (job.completed ? 1 : 0);
    if (states != 1) {
      violate("job ", job.id, " has ", states,
              " terminal states (expected exactly one of rejected/shed/completed)");
    }
    rejected += job.rejected ? 1 : 0;
    shed += job.shed ? 1 : 0;
    completed += job.completed ? 1 : 0;
  }
  if (result.jobs_retained) {
    if (rejected != result.rejected) {
      violate("rejected counter ", result.rejected, " != per-job flags ", rejected);
    }
    if (shed != result.shed) violate("shed counter ", result.shed, " != per-job flags ", shed);
    if (completed != result.completed) {
      violate("completed counter ", result.completed, " != per-job flags ", completed);
    }
  }
  if (result.admitted != result.arrived - result.rejected) {
    violate("admitted ", result.admitted, " != arrived - rejected ",
            result.arrived - result.rejected);
  }
  if (result.admitted != result.completed + result.shed) {
    violate("run did not drain: admitted ", result.admitted, " != completed + shed ",
            result.completed + result.shed);
  }

  // --- per-job timeline, work conservation, and segments -------------------
  double residence = 0.0;     // Sum of (departure - arrival), admitted jobs.
  double total_work = 0.0;    // Sum of sizes over completed jobs.
  double arrived_work = 0.0;  // Sum of sizes over all arrived jobs.
  double share_time = 0.0;    // Worker-seconds across all segments.
  std::vector<FlatSegment> flat;
  for (const jobs::JobOutcome& job : result.jobs) {
    arrived_work += job.size;
    if (job.rejected) {
      if (!job.segments.empty()) violate("rejected job ", job.id, " holds service segments");
      if (job.departure != job.arrival) {
        violate("rejected job ", job.id, " departure != arrival");
      }
      continue;
    }
    residence += job.departure - job.arrival;
    if (job.departure + slack < job.arrival) {
      violate("job ", job.id, " departs before it arrives");
    }
    if (job.completed) {
      total_work += job.size;
      if (job.start + slack < job.arrival) violate("job ", job.id, " starts before arrival");
      if (job.departure + slack < job.start) violate("job ", job.id, " departs before start");
      if (!close_rel(job.queue_wait + job.service_time, job.response, rel)) {
        violate("job ", job.id, ": queue_wait ", job.queue_wait, " + service ",
                job.service_time, " != response ", job.response);
      }
      if (!close_rel(job.work_done, job.size, rel)) {
        violate("job ", job.id, ": work_done ", job.work_done, " != size ", job.size);
      }
      if (job.best_service > 0.0 && !close_rel(job.slowdown * job.best_service, job.response, rel)) {
        violate("job ", job.id, ": slowdown ", job.slowdown,
                " inconsistent with response / best_service");
      }
      if (job.segments.empty()) violate("completed job ", job.id, " has no segments");
    }
    double seg_work = 0.0;
    for (const jobs::ServiceSegment& seg : job.segments) {
      seg_work += seg.work;
      share_time += static_cast<double>(seg.num_workers) * (seg.end - seg.begin);
      flat.push_back({job.id, &seg});
      if (seg.end + slack < seg.begin) {
        violate("job ", job.id, " segment runs backwards: [", seg.begin, ", ", seg.end, ")");
      }
      if (seg.begin + slack < job.start || seg.end > job.departure + slack) {
        violate("job ", job.id, " segment [", seg.begin, ", ", seg.end,
                ") escapes service window [", job.start, ", ", job.departure, ")");
      }
      if (seg.end > result.horizon + slack) {
        violate("job ", job.id, " segment ends past the horizon");
      }
      if (seg.num_workers == 0) violate("job ", job.id, " segment holds zero workers");
      if (seg.first_worker + seg.num_workers > platform.size()) {
        violate("job ", job.id, " segment share [", seg.first_worker, ", ",
                seg.first_worker + seg.num_workers, ") exceeds the platform's ",
                platform.size(), " workers");
      }
      if (seg.work < -slack) violate("job ", job.id, " segment did negative work");
    }
    if (!job.segments.empty() && !close_rel(seg_work, job.work_done, rel)) {
      violate("job ", job.id, ": segment work ", seg_work, " != work_done ", job.work_done);
    }
  }

  // --- share disjointness --------------------------------------------------
  // Sorted by begin, a pairwise scan only compares time-overlapping spans.
  std::sort(flat.begin(), flat.end(), [](const FlatSegment& a, const FlatSegment& b) {
    return a.seg->begin < b.seg->begin;
  });
  for (std::size_t i = 0; i < flat.size(); ++i) {
    for (std::size_t j = i + 1; j < flat.size(); ++j) {
      const jobs::ServiceSegment& a = *flat[i].seg;
      const jobs::ServiceSegment& b = *flat[j].seg;
      if (b.begin >= a.end - slack) break;  // No later segment overlaps `a` either.
      if (flat[i].job == flat[j].job) continue;
      const std::size_t lo = std::max(a.first_worker, b.first_worker);
      const std::size_t hi =
          std::min(a.first_worker + a.num_workers, b.first_worker + b.num_workers);
      if (lo < hi) {
        violate("jobs ", flat[i].job, " and ", flat[j].job, " share worker ", lo,
                " simultaneously around t=", b.begin);
      }
    }
  }

  // --- Little's law and derived aggregates ---------------------------------
  // The carried residence_time always matches the N(t) integral; in retain
  // mode the per-job sum independently recomputes it as a third witness.
  if (!close_rel(result.area_jobs_in_system, result.residence_time, rel)) {
    violate("Little's law broken: integral of N(t) = ", result.area_jobs_in_system,
            " but carried residence_time = ", result.residence_time);
  }
  if (result.jobs_retained) {
    if (!close_rel(result.residence_time, residence, rel)) {
      violate("residence_time ", result.residence_time, " != per-job sum ", residence);
    }
    if (!close_rel(result.total_work, total_work, rel)) {
      violate("total_work ", result.total_work, " != completed sizes ", total_work);
    }
    if (!close_rel(result.share_time, share_time, rel)) {
      violate("share_time ", result.share_time, " != segment worker-seconds ", share_time);
    }
    if (!close_rel(result.arrived_work, arrived_work, rel)) {
      violate("arrived_work ", result.arrived_work, " != per-job sizes ", arrived_work);
    }
  }
  if (result.horizon > 0.0) {
    const double capacity = platform.total_speed() * result.horizon;
    if (capacity > 0.0 && !close_rel(result.utilization, result.total_work / capacity, rel)) {
      violate("utilization ", result.utilization, " does not recompute");
    }
    if (capacity > 0.0 &&
        !close_rel(result.offered_load, result.arrived_work / capacity, rel)) {
      violate("offered_load ", result.offered_load, " does not recompute");
    }
    const double share_util =
        result.share_time / (static_cast<double>(platform.size()) * result.horizon);
    if (!close_rel(result.share_utilization, share_util, rel)) {
      violate("share_utilization ", result.share_utilization, " does not recompute");
    }
    if (result.share_utilization > 1.0 + rel) {
      violate("share_utilization ", result.share_utilization, " exceeds 1");
    }
  }

  // --- obs ledger ----------------------------------------------------------
  const obs::JobsStats& stats = result.stats;
  if (stats.arrived != result.arrived || stats.admitted != result.admitted ||
      stats.rejected != result.rejected || stats.shed != result.shed ||
      stats.completed != result.completed) {
    violate("obs::JobsStats counters disagree with the result counters");
  }
  if (stats.job_sizes.total() != result.arrived) {
    violate("job_sizes histogram holds ", stats.job_sizes.total(), " samples, expected ",
            result.arrived);
  }
  const std::pair<const obs::Histogram*, const char*> per_completed[] = {
      {&stats.response_times, "response_times"},
      {&stats.slowdowns, "slowdowns"},
      {&stats.queue_waits, "queue_waits"},
  };
  for (const auto& [histogram, name] : per_completed) {
    if (histogram->total() != result.completed) {
      violate(name, " histogram holds ", histogram->total(), " samples, expected ",
              result.completed);
    }
  }

  // An unbounded queue admits everything; losses prove an accounting bug.
  if (options.queue_capacity == SIZE_MAX && (result.rejected > 0 || result.shed > 0)) {
    violate("unbounded queue rejected or shed jobs");
  }

  return report;
}

}  // namespace rumr::check
