#include "check/serve_audit.hpp"

#include <sstream>
#include <string>

namespace rumr::check {

namespace {

/// Appends "name: lhs_desc (lhs) != rhs_desc (rhs)" style violations.
void require_eq(AuditReport& report, std::uint64_t lhs, std::uint64_t rhs,
                const char* identity) {
  if (lhs == rhs) return;
  std::ostringstream out;
  out << "serve stats: " << identity << " violated (" << lhs << " != " << rhs << ")";
  report.violations.push_back(out.str());
}

void require_le(AuditReport& report, std::uint64_t lhs, std::uint64_t rhs,
                const char* identity) {
  if (lhs <= rhs) return;
  std::ostringstream out;
  out << "serve stats: " << identity << " violated (" << lhs << " > " << rhs << ")";
  report.violations.push_back(out.str());
}

}  // namespace

AuditReport audit_serve_stats(const obs::ServeStats& stats, bool drained) {
  AuditReport report;

  // Request admission ledger: each received request lands in exactly one of
  // the three terminal buckets.
  require_eq(report, stats.admitted + stats.rejected + stats.shed, stats.received,
             "admitted + rejected + shed == received");
  require_le(report, stats.completed, stats.admitted, "completed <= admitted");
  if (drained) {
    require_eq(report, stats.completed, stats.admitted,
               "completed == admitted (drained session)");
  }

  // Cache ledger.
  const obs::CacheStats& c = stats.plan_cache;
  require_eq(report, c.hits + c.misses, c.lookups, "hits + misses == lookups");
  require_eq(report, c.insertions + c.collisions + c.failed_solves, c.misses,
             "insertions + collisions + failed_solves == misses");
  require_eq(report, c.entries + c.evictions, c.insertions,
             "entries + evictions == insertions");
  if (c.entries == 0 && c.bytes_cached != 0) {
    report.violations.push_back(
        "serve stats: cache holds bytes (" + std::to_string(c.bytes_cached) +
        ") with zero resident entries");
  }

  // Query ledger: every well-formed query of an admitted request performs
  // exactly one cache lookup, and every cold solve was triggered by a miss.
  require_eq(report, c.lookups + stats.query_errors, stats.queries,
             "lookups + query_errors == queries");
  require_eq(report, stats.solves, c.misses, "solves == misses");

  return report;
}

}  // namespace rumr::check
