#pragma once

/// \file event_callback.hpp
/// Move-only callable with generous inline storage, built for the DES
/// kernel's hot path.
///
/// Every event the master-worker engine schedules carries a lambda capturing
/// `this` plus a handful of scalars — 16 to 56 bytes. `std::function`'s
/// small-buffer optimization (16 bytes on libstdc++) punts all of them to
/// the heap, one allocation per event, which dominates kernel cost at
/// millions of events per second. EventCallback keeps 64 bytes inline so the
/// engine's callbacks never allocate; larger or non-nothrow-movable
/// callables fall back to a heap box transparently.
///
/// Dispatch is a three-entry static ops table per callable type (invoke /
/// relocate / destroy) — one indirect call to invoke, no RTTI, no virtual
/// bases. Moved-from callbacks are empty; invoking an empty callback is
/// undefined (the kernel checks with RUMR_CHECK before accepting one).

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rumr::des {

namespace detail {

template <typename T>
struct IsStdFunction : std::false_type {};
template <typename Sig>
struct IsStdFunction<std::function<Sig>> : std::true_type {};

/// Callables with their own empty state (function pointers, std::function):
/// wrapping an empty one must yield an empty EventCallback, not a live
/// callback that explodes when invoked.
template <typename D>
[[nodiscard]] bool callable_is_empty(const D& f) noexcept {
  if constexpr (std::is_pointer_v<D> || std::is_member_pointer_v<D> ||
                IsStdFunction<D>::value) {
    return !f;
  } else {
    (void)f;
    return false;
  }
}

}  // namespace detail

class EventCallback {
 public:
  /// Inline capacity, sized for the engine's largest hot-path lambda
  /// (`this` + six scalars = 56 bytes) with a little headroom.
  static constexpr std::size_t kInlineSize = 64;

  EventCallback() noexcept = default;
  EventCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if (detail::callable_is_empty<D>(f)) return;
    constexpr bool kInline =
        sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;
    if constexpr (kInline) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kBoxedOps<D>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  /// Invokes the stored callable. Precondition: *this is non-empty.
  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroys the stored callable (if any), leaving *this empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs `to` from `from`'s callable, then destroys `from`'s.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* from, void* to) noexcept {
        D* f = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*f));
        f->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops kBoxedOps{
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* from, void* to) noexcept {
        D** slot = std::launder(reinterpret_cast<D**>(from));
        ::new (to) D*(*slot);
        *slot = nullptr;
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<D**>(s)); },
  };

  void move_from(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace rumr::des
