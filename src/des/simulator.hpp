#pragma once

/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// This is the substrate standing in for the SimGrid toolkit the paper used:
/// a simulated clock, a pending-event queue ordered by (time, insertion
/// sequence), and callback-based event handlers. Ties are broken by insertion
/// order, which makes every simulation fully deterministic.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

namespace rumr::des {

/// Simulated time, in seconds.
using SimTime = double;

/// Handle for a scheduled event, usable with Simulator::cancel().
using EventId = std::uint64_t;

/// Observation hooks for auditing the kernel (see check/des_audit.hpp).
///
/// An observer sees every lifecycle transition: schedule (with the time the
/// caller *requested*, before any clamping), execute, and cancel. The kernel
/// holds a non-owning pointer; a null observer costs one branch per event.
class EventObserver {
 public:
  virtual ~EventObserver() = default;

  /// A new event was scheduled. `requested` is the caller's time argument
  /// verbatim; `now` the simulated clock at the call.
  virtual void on_schedule(EventId id, SimTime requested, SimTime now) = 0;

  /// An event's handler is about to run at simulated time `at`.
  virtual void on_execute(EventId id, SimTime at) = 0;

  /// cancel(id) was called; `was_pending` is its return value.
  virtual void on_cancel(EventId id, bool was_pending) = 0;
};

/// Callback-driven discrete-event simulator.
///
/// Usage: schedule initial events, then call run(). Handlers may schedule
/// further events. Event handlers run strictly in non-decreasing time order;
/// events at equal times run in the order they were scheduled (FIFO).
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Schedules `callback` to fire at absolute time `t`. Requires t >= now().
  /// Returns a handle that can be passed to cancel().
  EventId schedule_at(SimTime t, Callback callback);

  /// Schedules `callback` to fire `delay` seconds from now. Requires delay >= 0.
  EventId schedule_in(SimTime delay, Callback callback);

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled,
  /// or unknown event is a harmless no-op. Returns true if the event was
  /// pending.
  bool cancel(EventId id);

  /// Current simulated time. Starts at 0.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Number of events whose handlers have been executed.
  [[nodiscard]] std::size_t events_processed() const noexcept { return processed_; }

  /// Number of events ever scheduled.
  [[nodiscard]] std::size_t events_scheduled() const noexcept {
    return static_cast<std::size_t>(next_id_ - 1);
  }

  /// Number of events successfully cancelled.
  [[nodiscard]] std::size_t events_cancelled() const noexcept { return cancel_count_; }

  /// Number of events still pending (excluding cancelled-but-not-popped).
  [[nodiscard]] std::size_t events_pending() const noexcept { return live_.size(); }

  /// Installs (or clears, with nullptr) the audit observer. Not owned.
  void set_observer(EventObserver* observer) noexcept { observer_ = observer; }

  /// Executes the single next pending event. Returns false if none remain.
  bool step();

  /// Runs until the event queue is empty or `max_events` handlers have fired.
  /// Returns the number of events executed by this call. The default cap is a
  /// runaway-simulation guard, far above any legitimate run in this project.
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  /// Runs until the queue is empty or simulated time would exceed `deadline`.
  /// Events scheduled exactly at `deadline` are executed.
  std::size_t run_until(SimTime deadline, std::size_t max_events = kDefaultMaxEvents);

  static constexpr std::size_t kDefaultMaxEvents = 500'000'000;

 private:
  struct PendingEvent {
    SimTime time;
    EventId id;
    Callback callback;
  };
  struct Later {
    bool operator()(const PendingEvent& a, const PendingEvent& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among equal-time events.
    }
  };

  /// Pops cancelled entries off the heap head, retiring their tombstones.
  void drop_cancelled_head();

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t processed_ = 0;
  std::size_t cancel_count_ = 0;
  EventObserver* observer_ = nullptr;
  std::priority_queue<PendingEvent, std::vector<PendingEvent>, Later> queue_;
  /// Ids currently in the heap and not cancelled. Membership is what makes
  /// cancel() exact: cancelling a fired or unknown id must not leave a
  /// tombstone in cancelled_ (those would accumulate forever — their queue
  /// entries, which retire tombstones at pop time, are long gone).
  std::unordered_set<EventId> live_;
  /// Ids cancelled while still in the heap; retired when their entry pops.
  std::unordered_set<EventId> cancelled_;
};

}  // namespace rumr::des
